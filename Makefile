# ShareStreams-Go convenience targets (plain `go` commands work too).

.PHONY: all build test race bench report experiments cover fuzz

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

report:
	go run ./cmd/ssreport -full > report.md
	@echo wrote report.md

experiments:
	go run ./cmd/ssbench all

cover:
	go test -cover ./...

fuzz:
	go test -fuzz FuzzWinnerCorrect -fuzztime 30s ./internal/shuffle/
	go test -fuzz FuzzCompareConsistency -fuzztime 30s ./internal/decision/
