# ShareStreams-Go convenience targets (plain `go` commands work too).

.PHONY: all check build test race bench bench-check perf report experiments cover fuzz fuzz-smoke lint

all: build test race lint

# check is the full pre-merge gate: everything in all plus the perf
# regression guards and a short fuzz of the decision fast path.
check: all bench-check fuzz-smoke

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Everything under the race detector: the concurrent packages (SPSC rings,
# pipeline goroutines, sharded router) are the point, but the aliasing
# contracts in shuffle/core matter under -race too.
race:
	go test -race ./...

# Static-analysis gate: formatting, go vet, and the project-specific sslint
# suite (see DESIGN.md "Static analysis: the enforced invariants").
# Unformatted files fail the build rather than just being listed.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/sslint ./...

bench:
	go test -bench=. -benchmem ./...

# Quick perf-regression gate: the zero-allocation and accounting guards, the
# fast-path-equals-cascade differential tests, and one pass of the headline
# benchmarks with allocation reporting. Cheap enough for every PR.
bench-check:
	go test -run 'TestZeroAllocSteadyState|TestHWCyclesAccounting' ./internal/core/
	go test -run 'TestFastOrderDifferential|TestLessStrictWeakOrdering' ./internal/decision/
	go test -run 'TestBlockAliasingContract' ./internal/shuffle/
	go test -run xxx -bench 'BenchmarkDecisionCycle' -benchtime 100x -benchmem .

# Full perf harness: sweeps N=4..1024 × {DWCS,TagOnly} × {WR,BA} and writes
# BENCH_PR2.json (see EXPERIMENTS.md "Performance trajectory").
perf:
	go run ./cmd/ssbench perf

report:
	go run ./cmd/ssreport -full > report.md
	@echo wrote report.md

experiments:
	go run ./cmd/ssbench all

cover:
	go test -cover ./...

fuzz:
	go test -fuzz FuzzWinnerCorrect -fuzztime 30s ./internal/shuffle/
	go test -fuzz FuzzCompareConsistency -fuzztime 30s ./internal/decision/

# Ten-second fuzz of the decision-rule consistency property — cheap enough
# for the check umbrella.
fuzz-smoke:
	go test -run xxx -fuzz FuzzCompareConsistency -fuzztime 10s ./internal/decision/
