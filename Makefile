# ShareStreams-Go convenience targets (plain `go` commands work too).

.PHONY: all check ci build test race bench bench-check perf perf-check report experiments cover fuzz fuzz-smoke lint lint-ci lint-stats chaos soak crash smoke

all: build test race lint

# check is the full pre-merge gate: everything in all plus the perf
# regression guards, the recorded-baseline perf gate, the coverage floor,
# the chaos suite, the control-plane soak, the crash-recovery gate, the
# service smoke (which includes the kill -9 recovery drill), and a short
# fuzz of the decision fast path.
check: all bench-check perf-check cover chaos soak crash smoke fuzz-smoke

# ci mirrors .github/workflows/ci.yml locally: the same steps its required
# jobs run, in one invocation (the workflow's perf job is advisory and is
# reproduced by `make perf-check`). lint-ci is the workflow's lint step:
# the same suite as lint plus the sslint.json artifact and the suppression
# audit.
ci: build test smoke race lint-ci bench-check cover chaos soak crash

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Everything under the race detector: the concurrent packages (SPSC rings,
# pipeline goroutines, sharded router) are the point, but the aliasing
# contracts in shuffle/core matter under -race too.
race:
	go test -race ./...

# Static-analysis gate: formatting, go vet, and the project-specific sslint
# suite (see DESIGN.md "Static analysis: the enforced invariants").
# Unformatted files fail the build rather than just being listed.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/sslint ./...

# lint-ci is the CI flavor of lint: findings also land in sslint.json (the
# uploaded artifact) and as GitHub ::error annotations on the PR diff, and
# the //sslint:allow suppression audit runs so a reasonless allow fails the
# job even when the analyzers themselves are clean.
lint-ci:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/sslint -json sslint.json -github ./...
	go run ./cmd/sslint -stats ./...

# lint-stats audits the //sslint:allow suppressions: per-analyzer counts
# plus every annotation's site and reason, failing on any allow whose
# reason clause is empty or malformed. The current snapshot is recorded in
# DESIGN.md §10 — refresh it there when this output changes.
lint-stats:
	go run ./cmd/sslint -stats ./...

bench:
	go test -bench=. -benchmem ./...

# Quick perf-regression gate: the zero-allocation and accounting guards, the
# fast-path-equals-cascade differential tests, and one pass of the headline
# benchmarks with allocation reporting. Cheap enough for every PR.
bench-check:
	go test -run 'TestZeroAllocSteadyState|TestHWCyclesAccounting' ./internal/core/
	go test -run 'TestFastOrderDifferential|TestLessStrictWeakOrdering' ./internal/decision/
	go test -run 'TestBlockAliasingContract' ./internal/shuffle/
	go test -run xxx -bench 'BenchmarkDecisionCycle' -benchtime 100x -benchmem .

# Full perf harness: sweeps N=4..1024 × {DWCS,TagOnly} × {WR,BA} and writes
# BENCH_PR2.json (see EXPERIMENTS.md "Performance trajectory").
perf:
	go run ./cmd/ssbench perf

# Perf-regression gate: re-measure the sweep and compare against the
# recorded BENCH_PR2.json, failing on >25% ns/decision growth or any
# allocs/cycle above the recorded zeros. Regenerate the baseline with
# `make perf` after an intentional perf change.
perf-check:
	go run ./cmd/ssbench -baseline BENCH_PR2.json perf
	go run ./cmd/ssbench -baseline BENCH_PR6.json rank

report:
	go run ./cmd/ssreport -full > report.md
	@echo wrote report.md

experiments:
	go run ./cmd/ssbench all

# Coverage floor for the library packages. The baseline was measured at
# 85.3%; the floor leaves a little room for refactors that move lines
# without losing tests. Raise it when coverage durably improves.
COVER_FLOOR := 82.0

# cover writes coverage.out for internal/... and fails when total statement
# coverage drops below $(COVER_FLOOR).
cover:
	go test -coverprofile=coverage.out ./internal/...
	@total=$$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal/... statement coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Chaos gate: the fault-injection suite under the race detector (trace
# determinism, frame conservation, bounded recovery, nil-injector parity
# with the paper figures), then a seeded end-to-end fault sweep through
# ssbench. The same seed replays the same fault/recovery trace — a chaos
# failure is reproducible from its seed alone.
chaos:
	go test -race -run 'TestChaos|TestSupervised|TestReuseAfterRestart' \
		./internal/fault/ ./internal/shard/ ./internal/ringbuf/
	go run ./cmd/ssbench -shards 2 -seed 1 faults
	go run ./cmd/ssbench -shards 3 -seed 42 faults

# Control-plane churn soak: SOAK_EVENTS seeded admin events through the live
# engine, twice, requiring zero conservation violations and a byte-identical
# journal replay (delivered+dropped+evicted+in-flight == offered at every
# epoch fence). On failure the journal lands in soak-journal.txt — CI's
# uploaded artifact. Deterministic: a failure replays from the seed alone.
SOAK_EVENTS := 1000000
SOAK_SEED := 1

soak:
	go run ./cmd/ssbench -seed $(SOAK_SEED) -events $(SOAK_EVENTS) -journal soak-journal.txt soak

# Crash-recovery gate: one CRASH_EVENTS-event churn soak as the reference,
# then a simulated kill -9 at CRASH_POINTS sampled byte offsets of its
# journal — each crash replays the surviving prefix (torn tail truncated,
# uncommitted epoch block dropped) and resumes through the full journal,
# and must recover to the reference's journal hash, conservation ledger,
# and admitted offering exactly. On divergence the reference journal lands
# in crash-journal.txt — CI's uploaded artifact — and the failure replays
# from the seed and reported crash offset alone.
CRASH_EVENTS := 100000
CRASH_POINTS := 100
CRASH_SEED := 1

crash:
	go run ./cmd/ssbench -seed $(CRASH_SEED) -events $(CRASH_EVENTS) -points $(CRASH_POINTS) -journal crash-journal.txt crash

# Service smoke: start cmd/ssserved on a random port, drive the admin API
# end to end with curl (admits, retunes, a program switch, pool resize,
# drain/restart, evictions, deliberate errors), kill it with SIGKILL and
# tear the journal's final write, restart with -recover, and require the
# replayed daemon to carry the pre-crash state and exit cleanly with
# balanced books. SMOKE_DIR=... pins the artifact directory (CI points it
# at a workspace path for upload).
smoke:
	./scripts/smoke_ssserved.sh

fuzz:
	go test -fuzz FuzzWinnerCorrect -fuzztime 30s ./internal/shuffle/
	go test -fuzz FuzzCompareConsistency -fuzztime 30s ./internal/decision/
	go test -fuzz FuzzKeyTieDifferential -fuzztime 30s ./internal/decision/
	go test -fuzz FuzzProgramRank -fuzztime 30s ./internal/decision/

# Ten-second fuzzes of the decision-rule consistency properties — cheap
# enough for the check umbrella. FuzzProgramRank draws its program from the
# fuzzed input modulo NumPrograms, so every registered rank program is
# exercised; FuzzKeyTieDifferential pins the tie fast path to the cascade.
fuzz-smoke:
	go test -run xxx -fuzz FuzzCompareConsistency -fuzztime 10s ./internal/decision/
	go test -run xxx -fuzz FuzzKeyTieDifferential -fuzztime 10s ./internal/decision/
	go test -run xxx -fuzz FuzzProgramRank -fuzztime 10s ./internal/decision/
