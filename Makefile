# ShareStreams-Go convenience targets (plain `go` commands work too).

.PHONY: all build test race race-full bench report experiments cover fuzz

all: build test race

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# The concurrent packages (SPSC rings, pipeline goroutines, sharded router)
# plus the facade benchmarks under the race detector — fast enough to run on
# every verify.
race:
	go test -race ./internal/ringbuf/ ./internal/endsystem/ ./internal/shard/ .

race-full:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

report:
	go run ./cmd/ssreport -full > report.md
	@echo wrote report.md

experiments:
	go run ./cmd/ssbench all

cover:
	go test -cover ./...

fuzz:
	go test -fuzz FuzzWinnerCorrect -fuzztime 30s ./internal/shuffle/
	go test -fuzz FuzzCompareConsistency -fuzztime 30s ./internal/decision/
