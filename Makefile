# ShareStreams-Go convenience targets (plain `go` commands work too).

.PHONY: all build test race race-full bench bench-check perf report experiments cover fuzz

all: build test race

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# The concurrent packages (SPSC rings, pipeline goroutines, sharded router)
# plus shuffle/core (whose buffer-aliasing contracts the batch drivers lean
# on) and the facade benchmarks, all under the race detector — fast enough
# to run on every verify.
race:
	go test -race ./internal/ringbuf/ ./internal/endsystem/ ./internal/shard/ ./internal/shuffle/ ./internal/core/ .

race-full:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Quick perf-regression gate: the zero-allocation and accounting guards, the
# fast-path-equals-cascade differential tests, and one pass of the headline
# benchmarks with allocation reporting. Cheap enough for every PR.
bench-check:
	go test -run 'TestZeroAllocSteadyState|TestHWCyclesAccounting' ./internal/core/
	go test -run 'TestFastOrderDifferential|TestLessStrictWeakOrdering' ./internal/decision/
	go test -run 'TestBlockAliasingContract' ./internal/shuffle/
	go test -run xxx -bench 'BenchmarkDecisionCycle' -benchtime 100x -benchmem .

# Full perf harness: sweeps N=4..1024 × {DWCS,TagOnly} × {WR,BA} and writes
# BENCH_PR2.json (see EXPERIMENTS.md "Performance trajectory").
perf:
	go run ./cmd/ssbench perf

report:
	go run ./cmd/ssreport -full > report.md
	@echo wrote report.md

experiments:
	go run ./cmd/ssbench all

cover:
	go test -cover ./...

fuzz:
	go test -fuzz FuzzWinnerCorrect -fuzztime 30s ./internal/shuffle/
	go test -fuzz FuzzCompareConsistency -fuzztime 30s ./internal/decision/
