package sharestreams

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§5), plus the §3/§4 supporting comparisons. Each benchmark
// regenerates its table/figure from scratch and reports the headline
// quantities as custom metrics so `go test -bench=.` reproduces the
// paper's rows; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fpga"
	"repro/internal/pci"
)

// BenchmarkTable3_MaxFinding regenerates Table 3's max-finding (winner-only
// routing) column: 4 EDF streams, deadlines one unit apart, requested every
// cycle, 64000 frames in 64000 decision cycles, ≈255,950/256,000 deadlines
// missed.
func BenchmarkTable3_MaxFinding(b *testing.B) {
	var missed, cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.DefaultTable3())
		if err != nil {
			b.Fatal(err)
		}
		missed, cycles = 0, res.TotalCyclesMax
		for _, row := range res.Rows {
			missed += row.MissedMax
		}
	}
	b.ReportMetric(float64(missed), "missed")
	b.ReportMetric(float64(cycles), "decision-cycles")
}

// BenchmarkTable3_BlockMaxFirst regenerates Table 3's block (max-first)
// column: 64000 frames in 16000 decision cycles, zero missed deadlines.
func BenchmarkTable3_BlockMaxFirst(b *testing.B) {
	var missed, cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.DefaultTable3())
		if err != nil {
			b.Fatal(err)
		}
		missed, cycles = 0, res.TotalCyclesBlock
		for _, row := range res.Rows {
			missed += row.MissedMaxFirst
		}
	}
	b.ReportMetric(float64(missed), "missed")
	b.ReportMetric(float64(cycles), "decision-cycles")
}

// BenchmarkTable3_BlockMinFirst regenerates Table 3's min-first column:
// circulating (and transmitting from) the block tail violates the
// earliest-deadline stream every cycle.
func BenchmarkTable3_BlockMinFirst(b *testing.B) {
	var missed uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(experiments.DefaultTable3())
		if err != nil {
			b.Fatal(err)
		}
		missed = 0
		for _, row := range res.Rows {
			missed += row.MissedMinFirst
		}
	}
	b.ReportMetric(float64(missed), "missed")
}

// BenchmarkFig7_AreaClock regenerates Figure 7: area and clock rate of the
// BA and WR configurations from 4 to 32 stream-slots on the Virtex-I.
func BenchmarkFig7_AreaClock(b *testing.B) {
	var ba32Slices int
	var ba32Clock float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(nil, fpga.VirtexI)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Slots == 32 && r.Routing == fpga.BA {
				ba32Slices, ba32Clock = r.Slices, r.ClockMHz
			}
		}
	}
	b.ReportMetric(float64(ba32Slices), "BA32-slices")
	b.ReportMetric(ba32Clock, "BA32-MHz")
}

// BenchmarkFig8_FairBandwidth regenerates Figure 8: four streams allocated
// 1:1:2:4 (2/2/4/8 MB/s), 64000 frames per queue.
func BenchmarkFig8_FairBandwidth(b *testing.B) {
	var mean [4]float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Config{})
		if err != nil {
			b.Fatal(err)
		}
		copy(mean[:], res.MeanActive)
	}
	for i, m := range mean {
		b.ReportMetric(m, []string{"s1-MBps", "s2-MBps", "s3-MBps", "s4-MBps"}[i])
	}
}

// BenchmarkFig9_QueuingDelay regenerates Figure 9: the Figure 8 workload
// under the bursty generator; delay zig-zags and stream 4 sees the least.
func BenchmarkFig9_QueuingDelay(b *testing.B) {
	var mean1, peak1, mean4 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Config{})
		if err != nil {
			b.Fatal(err)
		}
		mean1, peak1, mean4 = res.Mean[0], res.Peak[0], res.Mean[3]
	}
	b.ReportMetric(mean1, "s1-mean-ms")
	b.ReportMetric(peak1, "s1-peak-ms")
	b.ReportMetric(mean4, "s4-mean-ms")
}

// BenchmarkFig10_Aggregation regenerates Figure 10: 100 streamlets per
// stream-slot at 2/2/4/8 MB/s, slot 4 carrying two sets at 2:1.
func BenchmarkFig10_Aggregation(b *testing.B) {
	var sl1, set1, set2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.Fig10Config{})
		if err != nil {
			b.Fatal(err)
		}
		sl1 = res.StreamletMBps[0][0]
		set1, set2 = res.StreamletMBps[3][0], res.StreamletMBps[3][1]
	}
	b.ReportMetric(sl1, "slot1-streamlet-MBps")
	b.ReportMetric(set1, "slot4-set1-MBps")
	b.ReportMetric(set2, "slot4-set2-MBps")
}

// BenchmarkSec52_Throughput regenerates the §5.2 comparison: line-card
// 7.6 M pps, endsystem 469,483 pps, endsystem+PIO 299,065 pps.
func BenchmarkSec52_Throughput(b *testing.B) {
	var lineCard, none, pio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec52()
		if err != nil {
			b.Fatal(err)
		}
		lineCard, none, pio = rows[0].PacketsPerS, rows[1].PacketsPerS, rows[2].PacketsPerS
	}
	b.ReportMetric(lineCard, "linecard-pps")
	b.ReportMetric(none, "endsystem-pps")
	b.ReportMetric(pio, "endsystem-pio-pps")
}

// BenchmarkSec52_Pipeline drives the functional endsystem pipeline
// (producer → rings → scheduler → tx ring → engine) end to end.
func BenchmarkSec52_Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PipelineRun(4, 8000, pci.ModePIO)
		if err != nil {
			b.Fatal(err)
		}
		if res.Frames != 32000 {
			b.Fatalf("frames = %d", res.Frames)
		}
	}
}

// BenchmarkSec41_SoftwareSchedulers regenerates the §4.1 comparison:
// processor-resident scheduler decision latencies against packet-time
// budgets.
func BenchmarkSec41_SoftwareSchedulers(b *testing.B) {
	var dwcsNs float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec41(32, 5000)
		if err != nil {
			b.Fatal(err)
		}
		dwcsNs = rows[0].PerDecisionNs
	}
	b.ReportMetric(dwcsNs, "dwcs-ns/decision")
}

// BenchmarkAblation_PriorityQueues regenerates the §3 architecture
// comparison: comparator replication and per-decision cycles of the
// recirculating shuffle vs heap/systolic/shift-register structures, with
// and without per-cycle priority updates.
func BenchmarkAblation_PriorityQueues(b *testing.B) {
	var shuffleWin, chainWin float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation([]int{32})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Architecture {
			case "recirculating-shuffle":
				shuffleWin = float64(r.CyclesWindow)
			case "shift-register-chain":
				chainWin = float64(r.CyclesWindow)
			}
		}
	}
	b.ReportMetric(shuffleWin, "shuffle-cycles")
	b.ReportMetric(chainWin, "chain-cycles")
}

// BenchmarkFig1_Framework regenerates Figure 1's scheduling-rate
// feasibility sweep.
func BenchmarkFig1_Framework(b *testing.B) {
	var feasible int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		feasible = 0
		for _, r := range rows {
			if r.MeetsBA {
				feasible++
			}
		}
	}
	b.ReportMetric(float64(feasible), "BA-feasible-points")
}

// BenchmarkSec52_LineCardIsolation regenerates the 10 Gbps line-card
// contrast: per-flow queuing (ShareStreams, 32 queues) vs the GSR's 8
// DRR+RED queues vs Teracross's 4 service classes, under a misbehaving
// flow.
func BenchmarkSec52_LineCardIsolation(b *testing.B) {
	var ssLoss, gsrLoss float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GSRComparison(20000)
		if err != nil {
			b.Fatal(err)
		}
		ssLoss, gsrLoss = rows[0].VictimLossPct, rows[1].VictimLossPct
	}
	b.ReportMetric(ssLoss, "sharestreams-victim-loss-%")
	b.ReportMetric(gsrLoss, "gsr-victim-loss-%")
}

// BenchmarkExtensions_ComputeAhead regenerates the §6 extensions ablation:
// compute-ahead Register Base blocks, Virtex-II hard multipliers, exact
// block sorting.
func BenchmarkExtensions_ComputeAhead(b *testing.B) {
	var base, ahead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extensions([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Label {
			case "baseline (Virtex-I)":
				base = r.DecisionsPerS
			case "compute-ahead":
				ahead = r.DecisionsPerS
			}
		}
	}
	b.ReportMetric(base/1e6, "baseline-Mdec/s")
	b.ReportMetric(ahead/1e6, "computeahead-Mdec/s")
}

// BenchmarkScale_HundredsOfStreams runs the §6 scale demonstration: 512
// streams (64 slots × 8 streamlets) through the cycle-accurate model.
func BenchmarkScale_HundredsOfStreams(b *testing.B) {
	var fairness float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scale(64, 8, 32000)
		if err != nil {
			b.Fatal(err)
		}
		fairness = res.PerSlotFairness
	}
	b.ReportMetric(512, "streams")
	b.ReportMetric(fairness, "win-fairness")
}

// BenchmarkTable3_Sweep runs the Table 3 comparison at larger slot counts
// (the "extension of results" direction: the block advantage scales with
// the block size).
func BenchmarkTable3_Sweep(b *testing.B) {
	for _, streams := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N%d", streams), func(b *testing.B) {
			var blockCycles, maxCycles uint64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Table3(experiments.Table3Config{Streams: streams, Frames: 32000})
				if err != nil {
					b.Fatal(err)
				}
				blockCycles, maxCycles = res.TotalCyclesBlock, res.TotalCyclesMax
				var missed uint64
				for _, row := range res.Rows {
					missed += row.MissedMaxFirst
				}
				if missed != 0 {
					b.Fatalf("N=%d block max-first missed %d", streams, missed)
				}
			}
			b.ReportMetric(float64(maxCycles)/float64(blockCycles), "speedup")
		})
	}
}

// BenchmarkShardedThroughput measures the sharded endsystem's aggregate
// decision rate as the shard count grows, holding total streams fixed (16
// streams spread over k pipelines). Wall-clock decisions/s should scale
// roughly monotonically 1 → NumCPU shards on a multi-core runner; on a
// single core the shards time-slice and the curve flattens.
func BenchmarkShardedThroughput(b *testing.B) {
	const (
		totalStreams    = 16
		framesPerStream = 2000
	)
	for _, k := range []int{1, 2, 4, 8} {
		slotsPerShard := totalStreams / k
		b.Run(fmt.Sprintf("shards%d", k), func(b *testing.B) {
			var modeled, wall float64
			for i := 0; i < b.N; i++ {
				res, err := RunSharded(k, slotsPerShard, framesPerStream, TransferNone)
				if err != nil {
					b.Fatal(err)
				}
				if res.Frames != totalStreams*framesPerStream {
					b.Fatalf("frames = %d", res.Frames)
				}
				modeled, wall = res.PacketsPerS, res.WallPacketsPerS
			}
			b.ReportMetric(modeled, "modeled-pps")
			b.ReportMetric(wall, "decisions/s")
		})
	}
}

// BenchmarkDecisionCycle measures the simulator's own hot path: one full
// decision cycle of the hardware model.
func BenchmarkDecisionCycle(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"WR4", Config{Slots: 4, Routing: WinnerOnly}},
		{"BA4", Config{Slots: 4, Routing: BlockRouting}},
		{"WR32", Config{Slots: 32, Routing: WinnerOnly}},
		{"BA32", Config{Slots: 32, Routing: BlockRouting}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sched, err := NewScheduler(c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < c.cfg.Slots; i++ {
				src := &PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
				if err := sched.Admit(i, EDFStream(1), src); err != nil {
					b.Fatal(err)
				}
			}
			if err := sched.Start(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.RunCycle()
			}
		})
	}
}
