// Command ssarea explores the ShareStreams design space: for a requested
// configuration it reports Virtex area, modeled clock rate, decision and
// frame rates, and which link/frame-size combinations the design serves at
// wire speed — the Figure 1 framework as a calculator.
//
//	ssarea -slots 32 -routing ba
//	ssarea -slots 64 -routing wr -device v2
//	ssarea -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/fpga"
)

func main() {
	var (
		slots   = flag.Int("slots", 4, "stream-slot count (power of two)")
		routing = flag.String("routing", "ba", "ba or wr")
		device  = flag.String("device", "v1", "v1 (Virtex-I) or v2 (Virtex-II)")
		sweep   = flag.Bool("sweep", false, "print the full Figure 1 feasibility sweep and exit")
	)
	flag.Parse()

	if *sweep {
		rows, err := experiments.Fig1(nil, nil, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("Figure 1 — scheduling-rate feasibility sweep (Virtex-I)")
		fmt.Print(experiments.FormatFig1(rows))
		return
	}

	r := fpga.BA
	if *routing == "wr" {
		r = fpga.WR
	} else if *routing != "ba" {
		fail(fmt.Errorf("unknown -routing %q", *routing))
	}
	dev := fpga.VirtexI
	if *device == "v2" {
		dev = fpga.VirtexII
	} else if *device != "v1" {
		fail(fmt.Errorf("unknown -device %q", *device))
	}

	area, err := fpga.EstimateArea(*slots, r)
	if err != nil {
		fail(err)
	}
	mhz, err := fpga.ClockMHz(*slots, r, dev)
	if err != nil {
		fail(err)
	}
	k := 0
	for 1<<k < *slots {
		k++
	}
	cycles := k + 2 + *slots
	block := 1
	if r == fpga.BA {
		block = *slots
	}

	fmt.Printf("ShareStreams %s design, %d stream-slots on %s\n\n", r, *slots, dev)
	fmt.Printf("Area:   %d slices = %d Register Base (%d), %d Decision (%d), %d control, %d wiring\n",
		area.TotalSlices(), area.RegBaseSlices, fpga.SlicesRegBase,
		area.DecisionSlices, fpga.SlicesDecision, area.ControlSlices, area.WiringSlices)
	fmt.Printf("        %d CLBs, %.0f%% of a Virtex-1000, fits=%v\n",
		area.CLBs(), area.Utilization()*100, area.FitsVirtex1000())
	fmt.Printf("Clock:  %.1f MHz; decision cycle = %d clocks (%d sort + 2 + %d ingest)\n",
		mhz, cycles, k, *slots)
	fmt.Printf("Rates:  %.2fM decisions/s, %.2fM frames/s with block transactions\n\n",
		fpga.DecisionRate(mhz, cycles)/1e6, fpga.PacketRate(mhz, cycles, block)/1e6)

	fmt.Printf("%-10s %-8s %14s %10s\n", "Frame", "Link", "packet-time", "wire-speed")
	for _, fb := range []int{64, 1500, 9000} {
		for _, g := range []float64{1e9, 1e10} {
			pt := fpga.PacketTimeSeconds(fb, g)
			ok := fpga.MeetsPacketTime(mhz, cycles, block, fb, g)
			fmt.Printf("%-10s %-8s %12.2fns %10v\n",
				fmt.Sprintf("%dB", fb), fmt.Sprintf("%.0fG", g/1e9), pt*1e9, ok)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ssarea: %v\n", err)
	os.Exit(1)
}
