package main

// The perf-regression gate: `ssbench perf -baseline BENCH_PR2.json
// [-tolerance 0.25]` re-measures the decision hot path and compares each
// (slots, mode, routing) row against the recorded baseline. A row regresses
// when its ns/decision exceeds baseline×(1+tolerance) or its allocs/cycle
// exceeds baseline+tolerance (the alloc budget is absolute: the recorded
// baselines are 0, and tolerance 0 means "still zero"). Any regression makes
// the command exit nonzero, which is what lets make check and CI gate on it.

import (
	"encoding/json"
	"fmt"
	"os"
)

// rowKey identifies a measurement across reports.
type rowKey struct {
	Slots   int
	Mode    string
	Routing string
}

// checkBaseline compares cur against the report recorded at path.
func checkBaseline(cur PerfReport, path string, tolerance float64) error {
	if tolerance < 0 {
		return fmt.Errorf("-tolerance %v: must be ≥ 0", tolerance)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	defer f.Close()
	var base PerfReport
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("-baseline %s: no rows", path)
	}
	baseRows := make(map[rowKey]PerfRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[rowKey{r.Slots, r.Mode, r.Routing}] = r
	}

	fmt.Printf("\nBaseline comparison vs %s (%s %s/%s, tolerance %.0f%%):\n",
		path, base.GoVersion, base.GOOS, base.GOARCH, tolerance*100)
	fmt.Println("slots  mode     routing  ns/decision      baseline     delta    allocs  verdict")
	var regressions, missing int
	for _, r := range cur.Rows {
		b, ok := baseRows[rowKey{r.Slots, r.Mode, r.Routing}]
		if !ok {
			missing++
			fmt.Printf("%5d  %-7s  %-7s  %11.1f  %12s  %8s  %8.2f  no baseline row\n",
				r.Slots, r.Mode, r.Routing, r.NsPerDecision, "-", "-", r.AllocsPerCycle)
			continue
		}
		delta := r.NsPerDecision/b.NsPerDecision - 1
		verdict := "ok"
		if r.NsPerDecision > b.NsPerDecision*(1+tolerance) {
			verdict = "REGRESSION: ns/decision"
			regressions++
		}
		if r.AllocsPerCycle > b.AllocsPerCycle+tolerance {
			verdict = fmt.Sprintf("REGRESSION: allocs/cycle %.2f > %.2f", r.AllocsPerCycle, b.AllocsPerCycle+tolerance)
			regressions++
		}
		fmt.Printf("%5d  %-7s  %-7s  %11.1f  %12.1f  %+7.1f%%  %8.2f  %s\n",
			r.Slots, r.Mode, r.Routing, r.NsPerDecision, b.NsPerDecision, delta*100, r.AllocsPerCycle, verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("perf gate: %d row(s) regressed beyond tolerance %.0f%%", regressions, tolerance*100)
	}
	fmt.Printf("perf gate: %d row(s) within tolerance", len(cur.Rows)-missing)
	if missing > 0 {
		fmt.Printf(" (%d without a baseline row, not gated)", missing)
	}
	fmt.Println()
	return nil
}
