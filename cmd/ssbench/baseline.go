package main

// The perf-regression gate: `ssbench perf -baseline BENCH_PR2.json
// [-tolerance 0.25]` re-measures the decision hot path and compares each
// (slots, mode, routing) row against the recorded baseline. A row regresses
// when its ns/decision exceeds baseline×(1+tolerance) or its allocs/cycle
// exceeds baseline+tolerance (the alloc budget is absolute: the recorded
// baselines are 0, and tolerance 0 means "still zero"). Any regression makes
// the command exit nonzero, which is what lets make check and CI gate on it.
//
// The same file holds the rank gate: `ssbench rank -baseline BENCH_PR6.json`
// compares the PR-6 sweep's fast-path hit rates row by row. Timing is gated
// with a relative tolerance because it is host-noise-bound; hit rates are
// gated with a tight absolute epsilon because they are counter-derived and
// deterministic for a fixed load.

import (
	"encoding/json"
	"fmt"
	"os"
)

// rowKey identifies a measurement across reports.
type rowKey struct {
	Slots   int
	Mode    string
	Routing string
}

// checkBaseline compares cur against the report recorded at path.
func checkBaseline(cur PerfReport, path string, tolerance float64) error {
	if tolerance < 0 {
		return fmt.Errorf("-tolerance %v: must be ≥ 0", tolerance)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	defer f.Close()
	var base PerfReport
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("-baseline %s: no rows", path)
	}
	baseRows := make(map[rowKey]PerfRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[rowKey{r.Slots, r.Mode, r.Routing}] = r
	}

	fmt.Printf("\nBaseline comparison vs %s (%s %s/%s, tolerance %.0f%%):\n",
		path, base.GoVersion, base.GOOS, base.GOARCH, tolerance*100)
	fmt.Println("slots  mode     routing  ns/decision      baseline     delta    allocs  verdict")
	var regressions, missing int
	for _, r := range cur.Rows {
		b, ok := baseRows[rowKey{r.Slots, r.Mode, r.Routing}]
		if !ok {
			missing++
			fmt.Printf("%5d  %-7s  %-7s  %11.1f  %12s  %8s  %8.2f  no baseline row\n",
				r.Slots, r.Mode, r.Routing, r.NsPerDecision, "-", "-", r.AllocsPerCycle)
			continue
		}
		delta := r.NsPerDecision/b.NsPerDecision - 1
		verdict := "ok"
		if r.NsPerDecision > b.NsPerDecision*(1+tolerance) {
			verdict = "REGRESSION: ns/decision"
			regressions++
		}
		if r.AllocsPerCycle > b.AllocsPerCycle+tolerance {
			verdict = fmt.Sprintf("REGRESSION: allocs/cycle %.2f > %.2f", r.AllocsPerCycle, b.AllocsPerCycle+tolerance)
			regressions++
		}
		fmt.Printf("%5d  %-7s  %-7s  %11.1f  %12.1f  %+7.1f%%  %8.2f  %s\n",
			r.Slots, r.Mode, r.Routing, r.NsPerDecision, b.NsPerDecision, delta*100, r.AllocsPerCycle, verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("perf gate: %d row(s) regressed beyond tolerance %.0f%%", regressions, tolerance*100)
	}
	fmt.Printf("perf gate: %d row(s) within tolerance", len(cur.Rows)-missing)
	if missing > 0 {
		fmt.Printf(" (%d without a baseline row, not gated)", missing)
	}
	fmt.Println()
	return nil
}

// rankKey identifies a rank-sweep measurement across reports.
type rankKey struct {
	Slots   int
	Program string
	Routing string
}

// hitRateEpsilon is the rank gate's tolerance, absolute in hit-rate units.
// Hit rates are derived from the Decision blocks' own compare/tie/fallback
// counters over a fixed deterministic load, so run-to-run they are exact;
// the epsilon only absorbs cycle-budget edge effects (the timed region's
// boundary lands mid-epoch at different points when the budget changes).
// Anything beyond it means the fast path genuinely declines more often —
// exactly the regression that used to pass CI silently.
const hitRateEpsilon = 0.005

// checkRankBaseline compares cur's fast-path hit rates against the report
// recorded at path. Only the counter-derived columns gate — ns/decision is
// host-noise-bound and stays the perf command's (tolerance-scaled) concern.
// Both hit-rate columns are checked: the current fast path, and the pre-fix
// prefix rate, which guards the tie short-circuit's accounting itself (a
// bug that reclassified fallbacks as ties would hold fastpath_hit_rate
// steady while the prefix column collapsed).
func checkRankBaseline(cur RankReport, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	defer f.Close()
	var base RankReport
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("-baseline %s: no rows", path)
	}
	baseRows := make(map[rankKey]RankRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[rankKey{r.Slots, r.Program, r.Routing}] = r
	}

	fmt.Printf("\nRank gate vs %s (%s %s/%s, epsilon %.3f):\n",
		path, base.GoVersion, base.GOOS, base.GOARCH, hitRateEpsilon)
	fmt.Println("slots  program          routing  fastpath  baseline   pre-fix  baseline  verdict")
	var regressions, missing int
	for _, r := range cur.Rows {
		b, ok := baseRows[rankKey{r.Slots, r.Program, r.Routing}]
		if !ok {
			missing++
			fmt.Printf("%5d  %-15s  %-7s  %7.1f%%  %8s  %7.1f%%  %8s  no baseline row\n",
				r.Slots, r.Program, r.Routing, 100*r.FastpathHitRate, "-",
				100*r.FastpathHitRatePrefix, "-")
			continue
		}
		verdict := "ok"
		if r.FastpathHitRate < b.FastpathHitRate-hitRateEpsilon {
			verdict = "REGRESSION: fastpath hit rate"
			regressions++
		} else if r.FastpathHitRatePrefix < b.FastpathHitRatePrefix-hitRateEpsilon {
			verdict = "REGRESSION: pre-fix hit rate"
			regressions++
		}
		fmt.Printf("%5d  %-15s  %-7s  %7.1f%%  %7.1f%%  %7.1f%%  %7.1f%%  %s\n",
			r.Slots, r.Program, r.Routing, 100*r.FastpathHitRate, 100*b.FastpathHitRate,
			100*r.FastpathHitRatePrefix, 100*b.FastpathHitRatePrefix, verdict)
	}
	if regressions > 0 {
		return fmt.Errorf("rank gate: %d row(s) regressed beyond epsilon %.3f", regressions, hitRateEpsilon)
	}
	fmt.Printf("rank gate: %d row(s) within epsilon", len(cur.Rows)-missing)
	if missing > 0 {
		fmt.Printf(" (%d without a baseline row, not gated)", missing)
	}
	fmt.Println()
	return nil
}
