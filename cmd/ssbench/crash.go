package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/ctlplane"
)

// crashCmd is CI's crash-recovery gate: it runs one seeded churn soak to
// completion as the reference, then simulates a kill -9 at -points sampled
// byte offsets of the journal — replaying the surviving prefix (torn tail
// truncated, uncommitted epoch block dropped) and resuming through the full
// journal — and requires every recovered engine to match the reference in
// journal hash, line count, conservation ledger, and admitted offering. On
// any divergence the reference journal is written to -journal so CI can
// upload it as the debugging artifact; the failure is reproducible from the
// seed and the reported crash offset alone.
func crashCmd(rc runConfig) error {
	if rc.events < 1 {
		return fmt.Errorf("-events %d", rc.events)
	}
	if rc.points < 1 {
		return fmt.Errorf("-points %d", rc.points)
	}
	fmt.Printf("Crash-recovery soak — %d events, seed %d, %d crash points\n",
		rc.events, rc.seed, rc.points)

	var text bytes.Buffer
	cfg := ctlplane.CrashSoakConfig{
		Soak:   ctlplane.SoakConfig{Seed: uint64(rc.seed), Events: rc.events, Journal: &text},
		Points: rc.points,
	}
	res, err := ctlplane.CrashSoak(cfg)
	ref := res.Reference
	fmt.Printf("reference: %d epochs, %d applied / %d refused, journal %016x (%d lines, %d bytes)\n",
		ref.Epochs, ref.Applied, ref.Failed, ref.JournalHash, ref.JournalLines, text.Len())
	if err != nil {
		if rc.journalPath != "" && text.Len() > 0 {
			if werr := os.WriteFile(rc.journalPath, text.Bytes(), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "crash: journal artifact: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "crash: reference journal written to %s (%d bytes)\n",
					rc.journalPath, text.Len())
			}
		}
		return err
	}

	var minC, maxC int64 = int64(^uint64(0) >> 1), 0
	var epochs uint64
	for _, pt := range res.Points {
		if pt.Committed < minC {
			minC = pt.Committed
		}
		if pt.Committed > maxC {
			maxC = pt.Committed
		}
		epochs += pt.Epochs
	}
	fmt.Printf("recovered %d/%d crash points (%d with torn tails); committed prefixes %d–%d bytes, %d epochs re-executed\n",
		len(res.Points), rc.points, res.TornPoints, minC, maxC, epochs)
	fmt.Printf("every point recovered to the reference identity: journal %016x, ledger closed, 0 violations\n",
		ref.JournalHash)
	return nil
}
