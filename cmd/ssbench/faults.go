package main

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/fault"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/shard"
	"repro/internal/stats"
)

// faults sweeps fault intensity over the supervised sharded endsystem: at
// each level the deterministic schedule injects proportionally more PCI
// failures, bank-switch timeouts, pipeline crashes and QM saturation
// bursts, and the table reports how throughput and the frame ledger
// degrade as the self-healing machinery absorbs them. The same seed
// reproduces the same sweep bit for bit; the heaviest level's recovery
// trace is printed for inspection.
func faults(csvPath string, shards int, seed int64) error {
	if shards < 1 {
		return fmt.Errorf("-shards %d", shards)
	}
	const (
		slotsPerShard   = 4
		framesPerStream = 2000
		levels          = 5
	)
	fmt.Printf("Fault-injection sweep — %d shards × %d streams, %d frames/stream, seed %d, RejectNew overload policy\n",
		shards, slotsPerShard, framesPerStream, seed)
	fmt.Println("level  crashes  pci  sat  delivered   dropped  restarts  dead  reagg  rounds  modeled_pps")

	var pps, dropped []stats.Point
	var lastTrace string
	for lvl := 0; lvl < levels; lvl++ {
		var sched *fault.Schedule
		profile := fault.Profile{
			Seed:          seed + int64(lvl),
			Shards:        shards,
			ShardCrashes:  lvl,
			PCIFails:      2 * lvl,
			BankTimeouts:  lvl,
			QMSaturations: lvl,
			Horizon:       uint64(framesPerStream),
		}
		if lvl > 0 {
			var err error
			sched, err = fault.NewSchedule(profile)
			if err != nil {
				return err
			}
		}
		var tr fault.Trace
		res, err := endsystem.RunShardedSupervised(
			shards, slotsPerShard, framesPerStream, pci.ModePIO,
			sched, shard.RecoveryConfig{Policy: qm.RejectNew}, &tr)
		if err != nil {
			return fmt.Errorf("level %d: %w\n%s", lvl, err, tr.String())
		}
		if res.Delivered+res.Dropped != res.Target {
			return fmt.Errorf("level %d: conservation violated: %d + %d != %d",
				lvl, res.Delivered, res.Dropped, res.Target)
		}
		fmt.Printf("%5d  %7d  %3d  %3d  %9d  %8d  %8d  %4d  %5d  %6d  %11.0f\n",
			lvl, profile.ShardCrashes, profile.PCIFails+profile.BankTimeouts,
			profile.QMSaturations, res.Delivered, res.Dropped, res.Restarts,
			len(res.DeadShards), res.ReaggregatedSlots, res.Rounds, res.PacketsPerS)
		pps = append(pps, stats.Point{X: float64(lvl), Y: res.PacketsPerS})
		dropped = append(dropped, stats.Point{X: float64(lvl), Y: float64(res.Dropped)})
		if tr.Len() > 0 {
			lastTrace = tr.String()
		}
	}
	fmt.Println("(conservation held at every level: delivered + dropped == streams × frames)")
	if lastTrace != "" {
		fmt.Println("\nRecovery trace of the heaviest faulted level (replayable from the seed):")
		fmt.Print(lastTrace)
	}
	if csvPath != "" {
		if err := writeCSV(csvPath, "fault_level",
			[]string{"modeled_pps", "dropped_frames"},
			[][]stats.Point{pps, dropped}, 1); err != nil {
			return err
		}
	}
	return faultsPerProgram(shards, seed)
}

// faultsPerProgram reruns a mid-intensity fault mix once under every
// registered rank program: recovery and conservation are supervisor
// properties that must hold for all disciplines, so any program whose row
// breaks the ledger is a program bug, not a fault-injection artifact.
func faultsPerProgram(shards int, seed int64) error {
	const (
		slotsPerShard   = 4
		framesPerStream = 2000
	)
	profile := fault.Profile{
		Seed:          seed + 2,
		Shards:        shards,
		ShardCrashes:  2,
		PCIFails:      4,
		BankTimeouts:  2,
		QMSaturations: 2,
		Horizon:       uint64(framesPerStream),
	}
	fmt.Println("\nPer-program conservation pass (level-2 fault mix under every rank program):")
	fmt.Println("program          delivered   dropped  restarts  dead  rounds  modeled_pps")
	for _, p := range decision.Programs() {
		sched, err := fault.NewSchedule(profile)
		if err != nil {
			return err
		}
		var tr fault.Trace
		res, err := endsystem.RunShardedSupervisedProgram(
			shards, slotsPerShard, framesPerStream, pci.ModePIO, p,
			sched, shard.RecoveryConfig{Policy: qm.RejectNew}, &tr)
		if err != nil {
			return fmt.Errorf("program %v: %w\n%s", p, err, tr.String())
		}
		if res.Delivered+res.Dropped != res.Target {
			return fmt.Errorf("program %v: conservation violated: %d + %d != %d",
				p, res.Delivered, res.Dropped, res.Target)
		}
		fmt.Printf("%-15s  %9d  %8d  %8d  %4d  %6d  %11.0f\n",
			p, res.Delivered, res.Dropped, res.Restarts,
			len(res.DeadShards), res.Rounds, res.PacketsPerS)
	}
	fmt.Println("(conservation held under every program)")
	return nil
}
