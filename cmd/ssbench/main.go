// Command ssbench regenerates every table and figure from the paper's
// evaluation (§5) and the supporting comparisons:
//
//	ssbench table3       Table 3  — block decisions vs max-finding
//	ssbench fig1         Figure 1 — scheduling-rate feasibility framework
//	ssbench fig7         Figure 7 — area/clock of BA vs WR, 4–32 slots
//	ssbench fig8         Figure 8 — 1:1:2:4 fair bandwidth allocation
//	ssbench fig9         Figure 9 — queuing delay under bursty traffic
//	ssbench fig10        Figure 10 — 100 streamlets per stream-slot
//	ssbench throughput   §5.2 — line-card & endsystem vs software routers
//	ssbench latency      §4.1 — processor-resident scheduler latencies
//	ssbench ablation     §3   — shuffle vs heap/systolic/shift-register
//	ssbench sharded      sharded endsystem: K scheduler pipelines in parallel
//	ssbench faults       chaos sweep: fault injection vs throughput/drops
//	ssbench perf         PR-2 perf-regression harness, single-pipeline and
//	                     sharded rows (writes BENCH_PR2.json)
//	ssbench rank         PR-6 rank-program sweep: N × program × fast-path hit
//	                     rate (writes BENCH_PR6.json)
//	ssbench soak         control-plane churn soak: -events seeded admin events
//	                     twice, requiring conservation and a byte-identical
//	                     journal replay (-journal names the failure artifact)
//	ssbench crash        crash-recovery soak: one churn run, then simulated
//	                     crashes at -points journal offsets, each replayed
//	                     and resumed to the reference identity
//	ssbench all          everything above (perf and rank excluded; run them
//	                     explicitly)
//
// Flags: -csv FILE writes the active figure's series as CSV; -shards K sets
// the shard count for the sharded and faults commands (default: host
// cores); -seed N sets the faults command's deterministic schedule seed —
// the same seed replays the same fault and recovery sequence; -json FILE
// sets the perf command's report path; -baseline FILE compares the perf or
// rank run against a recorded report and exits nonzero on regression — perf
// gates ns/decision and allocs/cycle (-tolerance sets the allowed slack,
// default 25%), rank gates the counter-derived fast-path hit rates with a
// tight absolute epsilon; -metrics ADDR serves the observability
// registry (JSON /metrics plus net/http/pprof) for the duration of the run
// and instruments the perf and sharded commands; -cpuprofile/-memprofile
// FILE write pprof profiles of whichever command ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/endsystem"
	"repro/internal/experiments"
	"repro/internal/fpga"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/stats"
)

func main() {
	csvPath := flag.String("csv", "", "write the figure's series to this CSV file (fig8/fig9/fig10/sharded)")
	shards := flag.Int("shards", runtime.NumCPU(), "scheduler shard count for the sharded command")
	jsonPath := flag.String("json", "BENCH_PR2.json", "perf command: write the machine-readable report here (empty to skip)")
	baseline := flag.String("baseline", "", "perf command: compare against this recorded report; exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.25, "perf gate slack: allowed ns/decision growth ratio and allocs/cycle budget")
	metricsAddr := flag.String("metrics", "", "serve the obs registry and pprof on this address (e.g. :9090) for the run")
	seed := flag.Int64("seed", 1, "faults/soak commands: base seed for the deterministic schedule")
	events := flag.Int("events", 1000000, "soak command: control events to churn through the live engine")
	soakJournal := flag.String("journal", "", "soak/crash commands: write the journal text here on failure (CI's artifact)")
	points := flag.Int("points", 100, "crash command: crash offsets to sample over the reference journal")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	// Gate runs leave the recorded baseline untouched unless the user asked
	// for a rewrite by naming -json explicitly.
	jsonExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json" {
			jsonExplicit = true
		}
	})

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		bound, closeFn, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: -metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ssbench: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
		defer closeFn()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err := run(cmd, runConfig{
		csvPath:      *csvPath,
		shards:       *shards,
		jsonPath:     *jsonPath,
		jsonExplicit: jsonExplicit,
		baseline:     *baseline,
		tolerance:    *tolerance,
		reg:          reg,
		seed:         *seed,
		events:       *events,
		journalPath:  *soakJournal,
		points:       *points,
	})

	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "ssbench: -memprofile: %v\n", ferr)
			os.Exit(1)
		}
		runtime.GC() // materialize the live heap before snapshotting
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintf(os.Stderr, "ssbench: -memprofile: %v\n", werr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintf(os.Stderr, "ssbench %s: %v\n", cmd, err)
		pprof.StopCPUProfile() // deferred exit path: flush any open profile
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ssbench [-csv file] [-shards K] [-seed n] [-events n] [-points n] [-journal file] [-json file] [-baseline file] [-tolerance x] [-metrics addr] [-cpuprofile file] [-memprofile file] {table3|fig1|fig7|fig8|fig9|fig10|throughput|latency|ablation|extensions|scale|gsr|sortquality|sharded|faults|soak|crash|perf|rank|all}")
}

// runConfig carries the flag values down to the per-command drivers.
type runConfig struct {
	csvPath      string
	shards       int
	jsonPath     string
	jsonExplicit bool
	baseline     string
	tolerance    float64
	reg          *obs.Registry
	seed         int64
	events       int
	journalPath  string
	points       int
}

func run(cmd string, rc runConfig) error {
	csvPath, shards := rc.csvPath, rc.shards
	switch cmd {
	case "table3":
		return table3()
	case "fig1":
		return fig1()
	case "fig7":
		return fig7(csvPath)
	case "fig8":
		return fig8(csvPath)
	case "fig9":
		return fig9(csvPath)
	case "fig10":
		return fig10(csvPath)
	case "throughput":
		return throughput()
	case "latency":
		return latency()
	case "ablation":
		return ablation()
	case "extensions":
		return extensions()
	case "scale":
		return scale()
	case "gsr":
		return gsr()
	case "sortquality":
		return sortQuality()
	case "sharded":
		return sharded(csvPath, shards, rc.reg)
	case "faults":
		return faults(csvPath, shards, rc.seed)
	case "soak":
		return soakCmd(rc)
	case "crash":
		return crashCmd(rc)
	case "perf":
		return perf(rc)
	case "rank":
		return rank(rc)
	case "all":
		for _, c := range []string{"table3", "fig1", "fig7", "fig8", "fig9", "fig10", "throughput", "latency", "ablation", "extensions", "scale", "gsr", "sortquality", "sharded", "faults"} {
			fmt.Printf("════ %s ════\n", c)
			sub := rc
			sub.csvPath = ""
			if err := run(c, sub); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func table3() error {
	fmt.Println("Table 3 — Comparing Block Decisions and Max-finding")
	fmt.Println("(4 EDF streams, deadlines 1 apart, requested every cycle, 64000 frames)")
	res, err := experiments.Table3(experiments.DefaultTable3())
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func fig1() error {
	fmt.Println("Figure 1 — ShareStreams architectural-solutions framework")
	rows, err := experiments.Fig1(nil, nil, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig1(rows))
	return nil
}

func fig7(csvPath string) error {
	fmt.Println("Figure 7 — Area/clock-rate characteristics (Virtex-I)")
	rows, err := experiments.Fig7(nil, fpga.VirtexI)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig7(rows))
	if csvPath != "" {
		series := make([][]stats.Point, 4)
		labels := []string{"BA_slices", "BA_MHz", "WR_slices", "WR_MHz"}
		for _, r := range rows {
			base := 0
			if r.Routing == fpga.WR {
				base = 2
			}
			series[base] = append(series[base], stats.Point{X: float64(r.Slots), Y: float64(r.Slices)})
			series[base+1] = append(series[base+1], stats.Point{X: float64(r.Slots), Y: r.ClockMHz})
		}
		if err := writeCSV(csvPath, "slots", labels, series, 1); err != nil {
			return err
		}
	}
	fmt.Println("\nVirtex-II extension (§6, hard multipliers):")
	rows2, err := experiments.Fig7(nil, fpga.VirtexII)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig7(rows2))
	return nil
}

func fig8(csvPath string) error {
	fmt.Println("Figure 8 — Fair bandwidth allocation 1:1:2:4 (2/2/4/8 MB/s)")
	res, err := experiments.Fig8(experiments.Fig8Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if csvPath != "" {
		return writeCSV(csvPath, "time_s",
			[]string{"stream1_MBps", "stream2_MBps", "stream3_MBps", "stream4_MBps"},
			res.Bandwidth, 1)
	}
	return nil
}

func fig9(csvPath string) error {
	fmt.Println("Figure 9 — Queuing delay under bursty traffic (zig-zag)")
	res, err := experiments.Fig9(experiments.Fig9Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if csvPath != "" {
		return writeCSV(csvPath, "packet",
			[]string{"stream1_ms", "stream2_ms", "stream3_ms", "stream4_ms"},
			res.Delays, 64)
	}
	return nil
}

func fig10(csvPath string) error {
	fmt.Println("Figure 10 — Aggregation of 100 streamlets into a stream-slot")
	res, err := experiments.Fig10(experiments.Fig10Config{})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if csvPath != "" {
		// Streamlet means as single-point series.
		var series [][]stats.Point
		var labels []string
		for i, sets := range res.StreamletMBps {
			for s, v := range sets {
				labels = append(labels, fmt.Sprintf("slot%d_set%d_MBps", i+1, s+1))
				series = append(series, []stats.Point{{X: 0, Y: v}})
			}
		}
		return writeCSV(csvPath, "x", labels, series, 1)
	}
	return nil
}

func throughput() error {
	fmt.Println("§5.2 — Performance comparison")
	rows, err := experiments.Sec52()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatThroughput(rows))
	fmt.Println("\nLine-card scaling:")
	lc, err := experiments.LineCardRates()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatThroughput(lc))
	return nil
}

func latency() error {
	fmt.Println("§4.1 — Processor-resident scheduler latencies")
	rows, err := experiments.Sec41(32, 20000)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatLatency(rows))
	return nil
}

func ablation() error {
	fmt.Println("§3 — Queuing/scheduling architecture comparison")
	rows, err := experiments.Ablation(nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatAblation(rows))
	return nil
}

func extensions() error {
	fmt.Println("§6 — Microarchitectural extensions ablation (BA configuration)")
	rows, err := experiments.Extensions(nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatExtensions(rows))
	return nil
}

func sortQuality() error {
	fmt.Println("Block orderedness: the paper's log2(N) passes vs the exact bitonic schedule")
	rows, err := experiments.SortQuality(nil, 5000, 1)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSortQuality(rows))
	fmt.Println("(the head and tail of the block — the circulation targets — are always exact)")
	return nil
}

func gsr() error {
	fmt.Println("§5.2 — 10Gbps line-card isolation (per-flow vs 8-queue DRR+RED vs 4-class)")
	rows, err := experiments.GSRComparison(50000)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatGSR(rows))
	return nil
}

func scale() error {
	fmt.Println("§6 — Hundreds of streams (64 slots × 8 streamlets)")
	res, err := experiments.Scale(64, 8, 64000)
	if err != nil {
		return err
	}
	fmt.Printf("streams: %d across %d stream-slots; %d decision cycles, %d services, win fairness (max/min) %.3f\n",
		res.AggregatedStreams, res.DirectSlots, res.Cycles, res.Services, res.PerSlotFairness)
	return nil
}

func sharded(csvPath string, shards int, reg *obs.Registry) error {
	if shards < 1 {
		return fmt.Errorf("-shards %d", shards)
	}
	const (
		slotsPerShard   = 4
		framesPerStream = 5000
	)
	fmt.Printf("Sharded endsystem — %d scheduler pipelines × %d streams, %d frames/stream, PIO batching\n",
		shards, slotsPerShard, framesPerStream)
	res, err := endsystem.RunShardedInstrumented(shards, slotsPerShard, framesPerStream, pci.ModePIO, reg)
	if err != nil {
		return err
	}
	fmt.Println("shard  streams  frames    decisions  transfer_ms  virtual_ms")
	for _, sr := range res.PerShard {
		fmt.Printf("%5d  %7d  %8d  %9d  %11.2f  %10.2f\n",
			sr.Shard, sr.Streams, sr.Frames, sr.Decisions, sr.TransferNs/1e6, sr.VirtualNs/1e6)
	}
	fmt.Printf("aggregate: %d frames, counters %+v\n", res.Frames, res.Counters)
	fmt.Printf("modeled:    %10.0f packets/s (completion = max over shards, §5.2-comparable)\n", res.PacketsPerS)
	fmt.Printf("wall-clock: %10.0f packets/s (simulation itself, %.1f ms on %d cores)\n",
		res.WallPacketsPerS, res.WallNs/1e6, runtime.NumCPU())

	fmt.Println("\nScaling sweep (ModeNone):")
	fmt.Println("shards  modeled_pps  wall_pps")
	var modeled, wall []stats.Point
	for k := 1; k <= shards; k *= 2 {
		r, err := endsystem.RunSharded(k, slotsPerShard, framesPerStream, pci.ModeNone)
		if err != nil {
			return err
		}
		fmt.Printf("%6d  %11.0f  %8.0f\n", k, r.PacketsPerS, r.WallPacketsPerS)
		modeled = append(modeled, stats.Point{X: float64(k), Y: r.PacketsPerS})
		wall = append(wall, stats.Point{X: float64(k), Y: r.WallPacketsPerS})
	}
	if csvPath != "" {
		return writeCSV(csvPath, "shards",
			[]string{"modeled_pps", "wall_pps"},
			[][]stats.Point{modeled, wall}, 1)
	}
	return nil
}

func writeCSV(path, xLabel string, labels []string, series [][]stats.Point, downsample int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds := make([][]stats.Point, len(series))
	for i, s := range series {
		ds[i] = stats.Downsample(s, downsample)
	}
	if err := stats.WriteCSV(f, xLabel, labels, ds); err != nil {
		return err
	}
	fmt.Printf("(series written to %s)\n", path)
	return nil
}
