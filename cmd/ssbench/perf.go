package main

// The perf command is the PR-2 perf-regression harness: it measures the
// decision hot path (steady-state backlogged EDF streams, every cycle a
// decision) across slot counts, decision modes, and routing disciplines,
// and emits the results both as a human-readable table and as
// machine-readable JSON (BENCH_PR2.json by default) so successive PRs can
// diff decisions/sec, ns/decision, and allocs/cycle against a recorded
// baseline. testing.AllocsPerRun is usable outside `go test`, which is what
// makes the allocation column available from a plain binary.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/traffic"
)

// perfSlots is the N sweep: every power of four from the paper's prototype
// size (4) to core.MaxSlots.
var perfSlots = []int{4, 16, 64, 256, 1024}

// PerfRow is one (N, mode, routing) measurement.
type PerfRow struct {
	Slots           int     `json:"slots"`
	Mode            string  `json:"mode"`    // "DWCS" or "TagOnly"
	Routing         string  `json:"routing"` // "WR" or "BA"
	Cycles          int     `json:"cycles"`
	NsPerDecision   float64 `json:"ns_per_decision"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	AllocsPerCycle  float64 `json:"allocs_per_cycle"`
}

// PerfReport is the BENCH_PR2.json document.
type PerfReport struct {
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Rows      []PerfRow `json:"rows"`
}

func perf(rc runConfig) error {
	fmt.Println("PR-2 perf harness — steady-state decision hot path")
	fmt.Println("(backlogged EDF streams, one decision per cycle; allocs via testing.AllocsPerRun)")
	fmt.Println()
	fmt.Println("slots  mode     routing  cycles   ns/decision  decisions/s  allocs/cycle")

	rep := PerfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, n := range perfSlots {
		for _, mode := range []decision.Mode{decision.DWCS, decision.TagOnly} {
			for _, routing := range []core.Routing{core.WinnerOnly, core.BlockRouting} {
				row, err := perfOne(n, mode, routing, rc.reg)
				if err != nil {
					return err
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Printf("%5d  %-7s  %-7s  %7d  %11.1f  %11.0f  %12.2f\n",
					row.Slots, row.Mode, row.Routing, row.Cycles,
					row.NsPerDecision, row.DecisionsPerSec, row.AllocsPerCycle)
			}
		}
	}

	// Sharded sweep: the same 1024 decision slots split across run-to-
	// completion pipelines, so the report carries the decision fabric's
	// sharded operating points next to the single-pipeline ones. These rows
	// have no BENCH_PR2 counterpart (the gate reports them "not gated");
	// they are recorded for BENCH_PR7.json and later baselines.
	fmt.Println()
	fmt.Println("slots  mode     routing   cycles   ns/decision  decisions/s  allocs/cycle")
	for _, rtc := range []bool{false, true} {
		row, err := perfSharded(4, 256, rtc)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%5d  %-7s  %-8s  %7d  %11.1f  %11.0f  %12.2f\n",
			row.Slots, row.Mode, row.Routing, row.Cycles,
			row.NsPerDecision, row.DecisionsPerSec, row.AllocsPerCycle)
	}

	// A gate run compares; it only rewrites the recorded baseline when -json
	// was named explicitly (a fresh measurement on a regressed machine would
	// otherwise silently ratchet the baseline down to the regression).
	writeJSON := rc.jsonPath != "" && (rc.baseline == "" || rc.jsonExplicit)
	if writeJSON {
		f, err := os.Create(rc.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("\n(report written to %s)\n", rc.jsonPath)
	}
	if rc.baseline != "" {
		return checkBaseline(rep, rc.baseline, rc.tolerance)
	}
	return nil
}

// perfOne builds a backlogged scheduler and measures its steady state. With
// a registry attached the scheduler records the shared core.* bundle
// (registration is idempotent, so all rows aggregate into one view) and the
// timed region feeds perf.decision_ns, a wall-clock histogram of per-chunk
// mean decision latency.
func perfOne(n int, mode decision.Mode, routing core.Routing, reg *obs.Registry) (PerfRow, error) {
	sched, err := perfScheduler(n, mode, routing)
	if err != nil {
		return PerfRow{}, err
	}
	var nsHist *obs.Histogram
	if reg != nil {
		m, err := core.NewMetrics(reg, "core", 256)
		if err != nil {
			return PerfRow{}, err
		}
		if err := sched.Instrument(m); err != nil {
			return PerfRow{}, err
		}
		nsHist = reg.Histogram("perf.decision_ns", "ns")
	}

	// Cycle budget: roughly constant total comparator work across N, with a
	// floor so small configurations still average over a long run.
	cycles := 4_000_000 / n
	if cycles < 4000 {
		cycles = 4000
	}

	// Warm up past the first key-refresh epoch so the timed region is pure
	// steady state.
	sched.RunCycles(cycles/4+16, nil)

	// Best-of-3: the minimum over repetitions is the run least disturbed by
	// the host (scheduler preemptions, frequency ramps), which is what makes
	// baseline comparisons across runs stable enough to gate on.
	timed := func() time.Duration {
		if nsHist == nil {
			start := time.Now()
			sched.RunCycles(cycles, nil)
			return time.Since(start)
		}
		// Chunked timing so the histogram sees per-chunk mean latency while
		// the repetition total stays the same sum.
		const chunk = 1 << 14
		var total time.Duration
		for done := 0; done < cycles; {
			batch := cycles - done
			if batch > chunk {
				batch = chunk
			}
			start := time.Now()
			sched.RunCycles(batch, nil)
			d := time.Since(start)
			total += d
			nsHist.Observe(uint64(d.Nanoseconds()) / uint64(batch))
			done += batch
		}
		return total
	}
	elapsed := timed()
	for rep := 1; rep < 3; rep++ {
		if d := timed(); d < elapsed {
			elapsed = d
		}
	}

	// Allocation accounting on a fresh scheduler: AllocsPerRun pins
	// GOMAXPROCS to 1, and a short batch per run keeps the probe cheap.
	sched2, err := perfScheduler(n, mode, routing)
	if err != nil {
		return PerfRow{}, err
	}
	const probeBatch = 64
	sched2.RunCycles(probeBatch, nil) // settle startup allocations
	allocs := testing.AllocsPerRun(32, func() {
		sched2.RunCycles(probeBatch, nil)
	}) / probeBatch

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	row := PerfRow{
		Slots:           n,
		Mode:            "DWCS",
		Routing:         "WR",
		Cycles:          cycles,
		NsPerDecision:   ns,
		DecisionsPerSec: 1e9 / ns,
		AllocsPerCycle:  allocs,
	}
	if mode == decision.TagOnly {
		row.Mode = "TagOnly"
	}
	if routing == core.BlockRouting {
		row.Routing = "BA"
	}
	return row, nil
}

// perfSharded measures the sharded decision fabric end to end: shards
// evenly-loaded pipelines (shards×slotsPerShard streams, the same total as
// the largest single-pipeline row) driven by the endsystem's §5.2
// calibration with PCI metering off, so the row isolates decision + queueing
// work. The routing label distinguishes the shard loop — "SH4" is the
// classic three-goroutine pipeline, "SH4-RTC" the run-to-completion loop —
// and ns/decision is wall time over the summed per-shard decision counts
// (the shards share the host, so wall time is the honest denominator).
// Allocations are a Mallocs delta amortized over the run: it includes
// construction, which is the point — steady-state zero-alloc claims are
// covered by TestZeroAlloc*, while this column watches the whole fabric.
func perfSharded(shards, slotsPerShard int, rtc bool) (PerfRow, error) {
	const framesPerStream = 1000
	routing := "SH" + fmt.Sprint(shards)
	if rtc {
		routing += "-RTC"
	}

	run := func() (*PerfRow, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := endsystem.RunShardedOpts(shards, slotsPerShard, framesPerStream,
			endsystem.ShardedOptions{Mode: pci.ModeNone, RunToCompletion: rtc})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}
		var decisions uint64
		for _, s := range res.PerShard {
			decisions += s.Decisions
		}
		if decisions == 0 {
			return nil, fmt.Errorf("perf: sharded run made no decisions")
		}
		ns := float64(elapsed.Nanoseconds()) / float64(decisions)
		return &PerfRow{
			Slots:           shards * slotsPerShard,
			Mode:            "DWCS",
			Routing:         routing,
			Cycles:          int(decisions),
			NsPerDecision:   ns,
			DecisionsPerSec: 1e9 / ns,
			AllocsPerCycle:  float64(after.Mallocs-before.Mallocs) / float64(decisions),
		}, nil
	}

	// Best-of-3, same as the single-pipeline rows: each repetition is a full
	// fresh run (router construction included), minimum wall time wins.
	best, err := run()
	if err != nil {
		return PerfRow{}, err
	}
	for rep := 1; rep < 3; rep++ {
		row, err := run()
		if err != nil {
			return PerfRow{}, err
		}
		if row.NsPerDecision < best.NsPerDecision {
			best = row
		}
	}
	return *best, nil
}

// perfScheduler builds an N-slot scheduler with every slot backlogged: EDF
// periods staggered 1..16 so deadlines keep interleaving, arrivals released
// immediately, so every cycle resolves a full block decision.
func perfScheduler(n int, mode decision.Mode, routing core.Routing) (*core.Scheduler, error) {
	sched, err := core.New(core.Config{Slots: n, Mode: mode, Routing: routing})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i % 7), Backlogged: true}
		spec := attr.Spec{Class: attr.EDF, Period: uint16(1 + i%16)}
		if err := sched.Admit(i, spec, src); err != nil {
			return nil, err
		}
	}
	if err := sched.Start(); err != nil {
		return nil, err
	}
	return sched, nil
}
