package main

// The rank command is the PR-6 rank-program sweep: every registered rank
// program (DWCS, tag-only, STFQ, EDF, strict-priority-with-guard) driven
// through the unchanged shuffle-network hot path across slot counts and
// routing disciplines, with the decision fast-path hit rate measured from
// the Decision blocks' own counters. Two hit-rate columns are emitted:
//
//   - fastpath_hit_rate: the current fast path (packed-key compare plus the
//     tie short-circuit that resolves masked-key-equal pairs by slot ID).
//   - fastpath_hit_rate_prefix: what the rate would have been before the
//     tie short-circuit, reconstructed from the same run as
//     1 − (CascadeFallbacks+TieHits)/Compares — every tie used to fall back
//     to the full rule cascade, which is exactly the N>127 slot-field
//     saturation collapse the PR-6 bugfix removed.
//
// The gap between the two columns is the bugfix, visible at N=1024 where
// the 7-bit slot field saturates and masked-key ties become common. Results
// land in BENCH_PR6.json (override with -json). With -baseline the sweep
// gates instead: each row's hit rates are compared against the recorded
// report and any drop beyond a small absolute epsilon fails the run (hit
// rates are counter-derived and deterministic, so unlike the perf gate's
// timing columns they admit a tight gate — see checkRankBaseline).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/traffic"
)

// RankRow is one (N, program, routing) measurement.
type RankRow struct {
	Slots                 int     `json:"slots"`
	Program               string  `json:"program"`
	Routing               string  `json:"routing"` // "WR" or "BA"
	Cycles                int     `json:"cycles"`
	PassesPerCycle        int     `json:"passes_per_cycle"`
	NsPerDecision         float64 `json:"ns_per_decision"`
	DecisionsPerSec       float64 `json:"decisions_per_sec"`
	Compares              uint64  `json:"compares"`
	TieHits               uint64  `json:"tie_hits"`
	CascadeFallbacks      uint64  `json:"cascade_fallbacks"`
	FastpathHitRate       float64 `json:"fastpath_hit_rate"`
	FastpathHitRatePrefix float64 `json:"fastpath_hit_rate_prefix"`
}

// RankReport is the BENCH_PR6.json document.
type RankReport struct {
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Rows      []RankRow `json:"rows"`
}

func rank(rc runConfig) error {
	fmt.Println("PR-6 rank-program sweep — every registered program through the shuffle hot path")
	fmt.Println("(steady-state backlogged streams; hit rates from the Decision blocks' own counters)")
	fmt.Println()
	fmt.Println("slots  program          routing  ns/decision  decisions/s  fastpath  pre-fix")

	rep := RankReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, n := range perfSlots {
		for _, p := range decision.Programs() {
			for _, routing := range []core.Routing{core.WinnerOnly, core.BlockRouting} {
				row, err := rankOne(n, p, routing)
				if err != nil {
					return err
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Printf("%5d  %-15s  %-7s  %11.1f  %11.0f  %7.1f%%  %6.1f%%\n",
					row.Slots, row.Program, row.Routing, row.NsPerDecision,
					row.DecisionsPerSec, 100*row.FastpathHitRate, 100*row.FastpathHitRatePrefix)
			}
		}
	}

	// Like perf, a gate run (-baseline) compares and only rewrites the
	// recorded report when -json was named explicitly — a regressed run must
	// not silently ratchet BENCH_PR6.json's hit rates down to the regression.
	path := rc.jsonPath
	if !rc.jsonExplicit {
		path = "BENCH_PR6.json"
	}
	if rc.baseline != "" && !rc.jsonExplicit {
		path = ""
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Printf("\n(report written to %s)\n", path)
	}
	if rc.baseline != "" {
		return checkRankBaseline(rep, rc.baseline)
	}
	return nil
}

// rankOne builds a backlogged scheduler running program p and measures its
// steady state; the fast-path columns are counter deltas over the timed
// region only, so warmup does not dilute them.
func rankOne(n int, p decision.Program, routing core.Routing) (RankRow, error) {
	sched, err := rankScheduler(n, p, routing)
	if err != nil {
		return RankRow{}, err
	}

	cycles := 2_000_000 / n
	if cycles < 4000 {
		cycles = 4000
	}
	// Warm past the first key-refresh epoch so only steady state is timed.
	sched.RunCycles(cycles/4+16, nil)

	nw := sched.Network()
	c0, t0, f0 := nw.Compares(), nw.TieHits(), nw.CascadeFallbacks()
	start := time.Now()
	sched.RunCycles(cycles, nil)
	elapsed := time.Since(start)
	compares := nw.Compares() - c0
	ties := nw.TieHits() - t0
	fallbacks := nw.CascadeFallbacks() - f0

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	row := RankRow{
		Slots:           n,
		Program:         p.String(),
		Routing:         "WR",
		Cycles:          cycles,
		PassesPerCycle:  nw.PassesPerCycle(),
		NsPerDecision:   ns,
		DecisionsPerSec: 1e9 / ns,
		Compares:        compares,
		TieHits:         ties,
	}
	if routing == core.BlockRouting {
		row.Routing = "BA"
	}
	row.CascadeFallbacks = fallbacks
	if compares > 0 {
		row.FastpathHitRate = 1 - float64(fallbacks)/float64(compares)
		row.FastpathHitRatePrefix = 1 - float64(fallbacks+ties)/float64(compares)
	}
	return row, nil
}

// rankScheduler builds an N-slot scheduler running rank program p with every
// slot backlogged under the program's natural attribute class, mirroring the
// perf harness's staggered-period load.
func rankScheduler(n int, p decision.Program, routing core.Routing) (*core.Scheduler, error) {
	sched, err := core.New(core.ProgramConfig(n, p, routing))
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i % 7), Backlogged: true}
		var spec attr.Spec
		switch p.Class() {
		case attr.EDF:
			spec = attr.Spec{Class: attr.EDF, Period: uint16(1 + i%16)}
		case attr.StaticPriority:
			spec = attr.Spec{Class: attr.StaticPriority, Priority: uint16(i % 8), Guard: 32}
		case attr.FairTag:
			spec = attr.Spec{Class: attr.FairTag, Weight: uint16(1 + i%4)}
		default: // WindowConstrained (the DWCS program)
			spec = attr.Spec{Class: attr.WindowConstrained, Period: uint16(1 + i%16),
				Constraint: attr.Constraint{Num: 1, Den: 2}}
		}
		if err := sched.Admit(i, spec, src); err != nil {
			return nil, err
		}
	}
	if err := sched.Start(); err != nil {
		return nil, err
	}
	return sched, nil
}
