package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/ctlplane"
)

// soakCmd is CI's control-plane endurance gate: it churns rc.events seeded
// admin events (admits, evicts, retunes, program switches, pool resizes,
// drains, restarts — malformed ones included) through a live engine twice
// with the same seed, requiring zero conservation violations, books that
// close exactly at quiescence, and a byte-identical journal across the two
// runs. On any failure the captured journals are written to rc.journalPath
// (and .replay for the second run) so CI can upload them as the debugging
// artifact; a divergence is reproducible from the seed alone.
func soakCmd(rc runConfig) error {
	if rc.events < 1 {
		return fmt.Errorf("-events %d", rc.events)
	}
	cfg := ctlplane.SoakConfig{Seed: uint64(rc.seed), Events: rc.events}
	fmt.Printf("Control-plane churn soak — %d events, seed %d, %d shards × %d slots\n",
		rc.events, rc.seed, 4, 16)

	var first, second bytes.Buffer
	capture := rc.journalPath != ""
	if capture {
		cfg.Journal = &first
	}
	dump := func(buf *bytes.Buffer, path string) {
		if !capture || buf.Len() == 0 {
			return
		}
		if werr := os.WriteFile(path, buf.Bytes(), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "soak: journal artifact: %v\n", werr)
			return
		}
		fmt.Fprintf(os.Stderr, "soak: journal written to %s (%d bytes)\n", path, buf.Len())
	}

	a, err := ctlplane.Soak(cfg)
	report := func(tag string, r ctlplane.SoakResult) {
		fmt.Printf("%s: %d epochs, %d applied / %d refused, journal %016x (%d lines)\n",
			tag, r.Epochs, r.Applied, r.Failed, r.JournalHash, r.JournalLines)
		fmt.Printf("      ledger %+v\n", r.Final)
	}
	report("run 1", a)
	if err != nil {
		dump(&first, rc.journalPath)
		return err
	}

	if capture {
		cfg.Journal = &second
	}
	b, err := ctlplane.Soak(cfg)
	report("run 2", b)
	if err != nil {
		dump(&second, rc.journalPath)
		return err
	}

	if a.JournalHash != b.JournalHash || a.JournalLines != b.JournalLines || a.Final != b.Final {
		dump(&first, rc.journalPath)
		dump(&second, rc.journalPath+".replay")
		return fmt.Errorf("soak: same seed diverged: %016x/%d lines vs %016x/%d lines",
			a.JournalHash, a.JournalLines, b.JournalHash, b.JournalLines)
	}
	fmt.Printf("replay identical: journal %016x, %d lines, 0 conservation violations\n",
		a.JournalHash, a.JournalLines)
	return nil
}
