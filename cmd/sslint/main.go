// Command sslint is the ShareStreams-Go static-analysis gate: a
// multichecker over the project-specific analyzers in internal/lint that
// machine-checks the scheduler's otherwise unwritten invariants.
//
// Usage:
//
//	go run ./cmd/sslint [packages]     # default ./...
//	go run ./cmd/sslint -list          # describe the analyzers
//
// The suite (see DESIGN.md "Static analysis: the enforced invariants"):
//
//	retainalias   copy-on-retain contract for cycle-aliased result slices
//	hotpathalloc  no allocation-inducing constructs in the decision hot path
//	walltime      no wall clock / global rand in modeled-time code
//	spscatomic    atomic, method-confined SPSC ring pointer access
//	exhaustdisc   exhaustive switches over discipline/configuration enums
//
// Findings are suppressed only by an explicit annotation with a reason —
// `//sslint:allow <analyzer> — <reason>` — and unused or malformed
// annotations are findings themselves. walltime is scoped away from
// repro/cmd/...: the benchmark harnesses there measure wall time by design.
// Test files are never analyzed (tests probe the contracts deliberately).
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/exhaustdisc"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/retainalias"
	"repro/internal/lint/spscatomic"
	"repro/internal/lint/walltime"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	retainalias.Analyzer,
	hotpathalloc.Analyzer,
	walltime.Analyzer,
	spscatomic.Analyzer,
	exhaustdisc.Analyzer,
}

// skipFor lists analyzer names not applied to packages matching a path
// prefix.
var skipFor = map[string][]string{
	"walltime": {"repro/cmd/"}, // wall-clock benchmark harnesses live under cmd/
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sslint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		run := applicable(pkg.Path)
		diags, err := analysis.Run(pkg, run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
			os.Exit(2)
		}
		cwd, _ := os.Getwd()
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			name := p.Filename
			if cwd != "" && strings.HasPrefix(name, cwd+string(os.PathSeparator)) {
				name = name[len(cwd)+1:]
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", name, p.Line, p.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// applicable returns the analyzers to run on the package at path.
func applicable(path string) []*analysis.Analyzer {
	var run []*analysis.Analyzer
	for _, a := range analyzers {
		skip := false
		for _, prefix := range skipFor[a.Name] {
			if strings.HasPrefix(path, prefix) {
				skip = true
			}
		}
		if !skip {
			run = append(run, a)
		}
	}
	sort.SliceStable(run, func(i, j int) bool { return run[i].Name < run[j].Name })
	return run
}
