// Command sslint is the ShareStreams-Go static-analysis gate: a
// multichecker over the project-specific analyzers in internal/lint that
// machine-checks the scheduler's otherwise unwritten invariants.
//
// Usage:
//
//	go run ./cmd/sslint [packages]          # default ./...
//	go run ./cmd/sslint -list               # describe the analyzers
//	go run ./cmd/sslint -json out.json ./...# machine-readable findings
//	go run ./cmd/sslint -github ./...       # GitHub Actions annotations
//	go run ./cmd/sslint -stats ./...        # //sslint:allow suppression audit
//
// The suite (see DESIGN.md §10 "Static verification"):
//
//	retainalias   copy-on-retain contract for cycle-aliased result slices
//	hotpathalloc  no allocation-inducing constructs in the decision hot path
//	walltime      no wall clock / global rand in modeled-time code
//	spscatomic    atomic, method-confined SPSC ring pointer access
//	exhaustdisc   exhaustive switches over discipline/configuration enums
//	allocproof    flow-sensitive allocation proof over warm CFG paths
//	conserve      ring removals reach a ledger, pool borrows reach a reclaim
//	spscflow      head/tail stores dominated by a load on all paths
//	boundedloop   provably bounded trip counts for hot-set loops
//
// Findings are suppressed only by an explicit annotation with a reason —
// `//sslint:allow <analyzer> — <reason>` — and unused or malformed
// annotations are findings themselves. walltime is scoped away from
// repro/cmd/...: the benchmark harnesses there measure wall time by design.
// Test files are never analyzed (tests probe the contracts deliberately).
//
// The -json schema is versioned and stable: {"version": 1, "findings":
// [{"file", "line", "col", "analyzer", "message"}...], "count": N} with
// cwd-relative file paths sorted by (file, line, col). -github emits one
// `::error file=...,line=...,col=...` workflow command per finding so CI
// annotates pull requests in place. -stats prints per-analyzer
// //sslint:allow counts and fails (exit 1) on any allow whose reason clause
// is empty or malformed — suppression growth stays visible and argued.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/allocproof"
	"repro/internal/lint/analysis"
	"repro/internal/lint/boundedloop"
	"repro/internal/lint/conserve"
	"repro/internal/lint/exhaustdisc"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/retainalias"
	"repro/internal/lint/spscatomic"
	"repro/internal/lint/spscflow"
	"repro/internal/lint/walltime"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	retainalias.Analyzer,
	hotpathalloc.Analyzer,
	walltime.Analyzer,
	spscatomic.Analyzer,
	exhaustdisc.Analyzer,
	allocproof.Analyzer,
	conserve.Analyzer,
	spscflow.Analyzer,
	boundedloop.Analyzer,
}

// skipFor lists analyzer names not applied to packages matching a path
// prefix.
var skipFor = map[string][]string{
	"walltime": {"repro/cmd/"}, // wall-clock benchmark harnesses live under cmd/
}

// finding is one diagnostic in the stable -json schema.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json document.
type report struct {
	Version  int       `json:"version"`
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.String("json", "", "write findings as JSON to this file ('-' for stdout)")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations for findings")
	stats := flag.Bool("stats", false, "audit //sslint:allow suppressions instead of reporting findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sslint [-list] [-json file] [-github] [-stats] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
		os.Exit(2)
	}

	if *stats {
		os.Exit(runStats(pkgs))
	}

	cwd, _ := os.Getwd()
	all := []finding{} // non-nil so an empty run marshals as [], not null
	for _, pkg := range pkgs {
		run := applicable(pkg.Path)
		diags, err := analysis.Run(pkg, run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			all = append(all, finding{
				File:     relPath(cwd, p.Filename),
				Line:     p.Line,
				Col:      p.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})

	for _, f := range all {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=sslint %s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, escapeWorkflow(f.Message))
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, report{Version: 1, Findings: all, Count: len(all)}); err != nil {
			fmt.Fprintf(os.Stderr, "sslint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// runStats audits //sslint:allow suppressions across the loaded packages:
// per-analyzer counts plus every annotation's site and reason. Malformed
// annotations (no analyzer, no dash, or an empty reason clause) fail the
// audit.
func runStats(pkgs []*analysis.Package) int {
	cwd, _ := os.Getwd()
	counts := map[string]int{}
	bad := 0
	type row struct{ analyzer, site, reason string }
	var rows []row
	for _, pkg := range pkgs {
		allows, problems := analysis.Allows(pkg)
		for _, a := range allows {
			counts[a.Analyzer]++
			rows = append(rows, row{
				analyzer: a.Analyzer,
				site:     fmt.Sprintf("%s:%d", relPath(cwd, a.File), a.Line),
				reason:   a.Reason,
			})
		}
		for _, p := range problems {
			pos := pkg.Fset.Position(p.Pos)
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", relPath(cwd, pos.Filename), pos.Line, pos.Column, p.Message)
			bad++
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].analyzer != rows[j].analyzer {
			return rows[i].analyzer < rows[j].analyzer
		}
		return rows[i].site < rows[j].site
	})
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0
	for _, n := range names {
		fmt.Printf("%-14s %d\n", n, counts[n])
		total += counts[n]
	}
	fmt.Printf("%-14s %d\n", "total", total)
	for _, r := range rows {
		fmt.Printf("  %-12s %s — %s\n", r.analyzer, r.site, r.reason)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d malformed suppression(s)\n", bad)
		return 1
	}
	return 0
}

// relPath strips the working directory prefix for stable, repo-relative
// output.
func relPath(cwd, name string) string {
	if cwd != "" && strings.HasPrefix(name, cwd+string(os.PathSeparator)) {
		return name[len(cwd)+1:]
	}
	return name
}

// writeJSON writes the report to path, or stdout for "-".
func writeJSON(path string, r report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// escapeWorkflow escapes a message for a GitHub workflow-command value.
func escapeWorkflow(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// applicable returns the analyzers to run on the package at path.
func applicable(path string) []*analysis.Analyzer {
	var run []*analysis.Analyzer
	for _, a := range analyzers {
		skip := false
		for _, prefix := range skipFor[a.Name] {
			if strings.HasPrefix(path, prefix) {
				skip = true
			}
		}
		if !skip {
			run = append(run, a)
		}
	}
	sort.SliceStable(run, func(i, j int) bool { return run[i].Name < run[j].Name })
	return run
}
