package main

import (
	"testing"

	"repro/internal/lint/analysis"
)

// TestFaultLayerClean asserts the fault-injection layer and the packages
// it instruments pass the full applicable analyzer suite with zero
// findings — in particular walltime (seeded schedules only, backoff in
// virtual ns) and hotpathalloc (the disabled injector costs nothing on
// the transfer hot path). `make lint` checks ./... too; this test keeps
// the guarantee local to `go test` so a regression names the contract.
func TestFaultLayerClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", []string{
		"repro/internal/fault",
		"repro/internal/pci",
		"repro/internal/shard",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, applicable(pkg.Path))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: [%s] %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
}
