// Command ssreport regenerates the full evaluation report as markdown on
// stdout: every paper table and figure plus this reproduction's ablations,
// computed live.
//
//	ssreport           > report.md   # scaled-down runs (seconds)
//	ssreport -full     > report.md   # paper-scale runs
//	ssreport -metrics  > report.md   # append an observability snapshot
//
// -metrics drives an instrumented endsystem pipeline run and appends the
// registry's text summary (counters, histogram quantiles, cycle-trace tail)
// as a final report section.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/endsystem"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/report"
)

func main() {
	full := flag.Bool("full", false, "run every experiment at paper scale")
	metrics := flag.Bool("metrics", false, "append the observability summary of an instrumented pipeline run")
	flag.Parse()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := report.Generate(w, report.Options{Full: *full}); err != nil {
		fmt.Fprintf(os.Stderr, "ssreport: %v\n", err)
		os.Exit(1)
	}
	if *metrics {
		if err := metricsSection(w, *full); err != nil {
			fmt.Fprintf(os.Stderr, "ssreport: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// metricsSection runs the concurrent endsystem pipeline with the obs
// registry attached and renders the scraped snapshot as a report section.
func metricsSection(w *bufio.Writer, full bool) error {
	slots, frames := 8, 2000
	if full {
		slots, frames = 32, 64000
	}
	reg := obs.NewRegistry()
	res, err := endsystem.RunPipelineInstrumented(slots, frames, pci.ModePIO, reg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## Observability snapshot\n\n")
	fmt.Fprintf(w, "Instrumented pipeline run: %d slots × %d frames, PIO batching — %d frames delivered, %.0f packets/s modeled.\n\n",
		slots, frames, res.Frames, res.PacketsPerS)
	fmt.Fprintf(w, "```\n")
	if err := reg.Snapshot().WriteText(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "```\n")
	return nil
}
