// Command ssreport regenerates the full evaluation report as markdown on
// stdout: every paper table and figure plus this reproduction's ablations,
// computed live.
//
//	ssreport        > report.md   # scaled-down runs (seconds)
//	ssreport -full  > report.md   # paper-scale runs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	full := flag.Bool("full", false, "run every experiment at paper scale")
	flag.Parse()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := report.Generate(w, report.Options{Full: *full}); err != nil {
		fmt.Fprintf(os.Stderr, "ssreport: %v\n", err)
		os.Exit(1)
	}
}
