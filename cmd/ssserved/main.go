// Command ssserved hosts the sharded supervised endsystem as a long-running
// service: a ctlplane.Engine stepped on a wall-clock epoch ticker, with an
// HTTP admin API for live mutation — admit and evict streams, retune
// attribute specs, switch a slot's rank program, resize a shard's shared
// buffer pool, drain and restart shards — layered on the observability
// endpoint (JSON /metrics plus pprof).
//
// Every admin request is enqueued on the control plane and applies at the
// next epoch fence; the handler blocks until its response comes back from
// the fence, so a 200 means the mutation is live (and a 409 carries the
// control plane's deterministic error string). The full transition journal
// streams to -journal under the -sync durability policy, and on shutdown
// (SIGINT/SIGTERM or POST /admin/shutdown) the daemon pauses traffic, runs
// the backlog out, prints the final conservation ledger as JSON on stdout,
// and exits 0 only if the books close: offered == delivered + dropped +
// evicted with nothing in flight and zero epoch violations.
//
// Crash recovery: with -recover, the daemon replays the -journal file at
// boot — the control plane is reconstructed by deterministic re-execution,
// the file is truncated to its committed prefix (a kill -9 tears the final
// write; see DESIGN.md §12), and journaling resumes in append mode. The
// HTTP endpoint is up during replay in degraded mode: admin routes answer
// 503 with Retry-After, and GET /admin/recovery reports progress, seeded
// from the journal's latest checkpoint before a single epoch re-executes.
//
// Admin API (all mutations are POST; parameters are query params):
//
//	POST /admin/admit?id=N&class=edf|wc|static|fair&...   admit a stream
//	POST /admin/evict?id=N                                evict, drain its ring
//	POST /admin/retune?id=N&class=...&...                 retune (same class)
//	POST /admin/program?id=N&program=dwcs|tag-only|stfq   switch rank program
//	POST /admin/pool?shard=K&burst=B                      resize shared pool
//	POST /admin/drain?shard=K                             quiesce a shard
//	POST /admin/restart?shard=K                           resume a shard
//	POST /admin/offering?frames=N                         offered load per slot
//	POST /admin/shutdown                                  graceful exit
//	GET  /admin/ledger                                    conservation snapshot
//	GET  /admin/recovery                                  recovery state
//
// Spec parameters per class: edf takes period; wc takes period, num, den;
// static takes priority and optional guard; fair takes weight.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attr"
	"repro/internal/ctlplane"
	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the admin/metrics endpoint")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for test harnesses)")
	shards := flag.Int("shards", 4, "scheduler shard count")
	slots := flag.Int("slots", 16, "stream-slots per shard")
	program := flag.String("program", "dwcs", "initial rank program for every shard")
	policy := flag.String("policy", "drop-oldest", "overload policy: drop-oldest or reject-new")
	epochMs := flag.Int("epoch-ms", 5, "wall-clock milliseconds per control epoch")
	cycles := flag.Int("cycles", 128, "decision cycles per shard per epoch")
	frames := flag.Int("frames", 1, "frames offered per occupied slot per epoch")
	journalPath := flag.String("journal", "", "stream the control-plane transition journal to this file")
	ckpt := flag.Int("ckpt", 0, "journal checkpoint cadence in epoch fences (0: control-plane default; negative: disabled)")
	recoverJournal := flag.Bool("recover", false, "replay the -journal file at boot and resume from its committed prefix")
	syncMode := flag.String("sync", "fence", "journal durability: none (OS buffering), fence (fsync at each epoch fence), line (fsync every line)")
	strict := flag.Bool("journal-strict", false, "treat any journal sink write loss as fatal: settle and exit non-zero")
	flag.Parse()
	if err := serve(*addr, *addrFile, *journalPath, serveConfig{
		shards: *shards, slots: *slots, program: *program, policy: *policy,
		epochMs: *epochMs, cycles: *cycles, frames: *frames, ckpt: *ckpt,
		recover: *recoverJournal, sync: *syncMode, strict: *strict,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ssserved: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	shards, slots                 int
	program, policy               string
	epochMs, cycles, frames, ckpt int
	recover                       bool
	sync                          string
	strict                        bool
}

// submission is one admin request in flight to the engine goroutine; the
// response channel is buffered so the engine never blocks on a departed
// client.
type submission struct {
	req  ctlplane.Request
	resp chan ctlplane.Response
}

func serve(addr, addrFile, journalPath string, cfg serveConfig) error {
	prog, err := decision.ParseProgram(cfg.program)
	if err != nil {
		return err
	}
	var pol qm.Policy
	switch cfg.policy {
	case "drop-oldest":
		pol = qm.DropOldest
	case "reject-new":
		pol = qm.RejectNew
	default:
		return fmt.Errorf("-policy %q: want drop-oldest or reject-new", cfg.policy)
	}
	if cfg.epochMs < 1 {
		return fmt.Errorf("-epoch-ms %d: want >= 1", cfg.epochMs)
	}
	sync, err := parseSyncPolicy(cfg.sync)
	if err != nil {
		return err
	}
	if cfg.recover && journalPath == "" {
		return fmt.Errorf("-recover needs -journal: there is nothing to replay")
	}

	reg := obs.NewRegistry()
	adminNs := reg.Histogram("ssserved.admin_latency", "ns")

	// The engine does not exist until recovery finishes; handlers reach it
	// through an atomic pointer behind the ready gate. Until then the HTTP
	// endpoint is up in degraded mode: admin routes answer 503 with
	// Retry-After, and /admin/recovery reports progress.
	var engp atomic.Pointer[ctlplane.Engine]
	var ready atomic.Bool
	var recovery atomic.Pointer[map[string]any]
	recovery.Store(&map[string]any{"state": "starting"})

	// The engine goroutine owns the engine exclusively: admin handlers hand
	// it requests over submit and wait for the fence to answer. Shutdown is
	// a context cancel — from a signal or the /admin/shutdown route.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	submit := make(chan submission)
	offer := make(chan int)
	done := make(chan ctlplane.Ledger, 1)

	// degraded answers for the recovery window and reports whether the
	// caller should return (the daemon is not ready to serve).
	degraded := func(w http.ResponseWriter) bool {
		if ready.Load() {
			return false
		}
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		return true
	}

	mux := obs.NewMux(reg)
	admin := func(route string, h func(url.Values) (ctlplane.Request, error)) {
		mux.HandleFunc("/admin/"+route, func(w http.ResponseWriter, r *http.Request) {
			start := obs.WallClock()
			defer func() { adminNs.Observe(obs.WallClock() - start) }()
			if degraded(w) {
				return
			}
			if r.Method != http.MethodPost {
				httpError(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			req, err := h(r.URL.Query())
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			sub := submission{req: req, resp: make(chan ctlplane.Response, 1)}
			select {
			case submit <- sub:
			case <-ctx.Done():
				httpError(w, http.StatusServiceUnavailable, "shutting down")
				return
			}
			select {
			case resp := <-sub.resp:
				code := http.StatusOK
				if !resp.OK() {
					code = http.StatusConflict
				}
				writeJSON(w, code, resp)
			case <-time.After(30 * time.Second):
				httpError(w, http.StatusGatewayTimeout, "no epoch fence within 30s")
			}
		})
	}
	admin("admit", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		spec, err := parseSpec(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpAdmit, Stream: id, Spec: spec}, nil
	})
	admin("evict", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		return ctlplane.Request{Op: ctlplane.OpEvict, Stream: id}, err
	})
	admin("retune", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		spec, err := parseSpec(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpRetune, Stream: id, Spec: spec}, nil
	})
	admin("program", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		p, err := decision.ParseProgram(q.Get("program"))
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpSetProgram, Stream: id, Program: p}, nil
	})
	admin("pool", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		if err != nil {
			return ctlplane.Request{}, err
		}
		burst, err := intParam(q, "burst")
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpResizePool, Shard: k, Burst: burst}, nil
	})
	admin("drain", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		return ctlplane.Request{Op: ctlplane.OpDrainShard, Shard: k}, err
	})
	admin("restart", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		return ctlplane.Request{Op: ctlplane.OpRestartShard, Shard: k}, err
	})
	mux.HandleFunc("/admin/offering", func(w http.ResponseWriter, r *http.Request) {
		if degraded(w) {
			return
		}
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		n, err := intParam(r.URL.Query(), "frames")
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		select {
		case offer <- n:
			writeJSON(w, http.StatusOK, map[string]int{"frames": n})
		case <-ctx.Done():
			httpError(w, http.StatusServiceUnavailable, "shutting down")
		}
	})
	mux.HandleFunc("/admin/ledger", func(w http.ResponseWriter, r *http.Request) {
		if degraded(w) {
			return
		}
		eng := engp.Load()
		led := eng.Ledger() // atomic snapshot from the last fence: any-goroutine safe
		writeJSON(w, http.StatusOK, ledgerDoc(eng, led))
	})
	mux.HandleFunc("/admin/recovery", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, *recovery.Load())
	})
	mux.HandleFunc("/admin/shutdown", func(w http.ResponseWriter, r *http.Request) {
		if degraded(w) {
			return
		}
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
		stop()
	})

	bound, shutdownHTTP, err := obs.ServeHandler(addr, mux)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "ssserved: %d shards × %d slots, program %s, policy %s; admin on http://%s/admin/, metrics on /metrics\n",
		cfg.shards, cfg.slots, prog, pol, bound)

	// Build or recover the engine while the endpoint answers degraded.
	eng, rep, closeJournal, err := openEngine(journalPath, sync, cfg, prog, pol, &recovery)
	if err != nil {
		httpCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = shutdownHTTP(httpCtx)
		return err
	}
	defer closeJournal()
	engp.Store(eng)
	eng.RegisterMetrics(reg, "ctl")
	eng.Router().RegisterMetrics(reg, "shard")
	reg.GaugeFunc("ssserved.recovery.replayed_epochs", "epochs", func() float64 {
		if rep == nil {
			return 0
		}
		return float64(rep.Epochs)
	})
	reg.GaugeFunc("ssserved.recovery.torn_bytes", "bytes", func() float64 {
		if rep == nil {
			return 0
		}
		return float64(rep.TornBytes)
	})
	recovery.Store(&map[string]any{"state": "serving", "recovered": recoveredDoc(rep)})
	ready.Store(true)
	if rep != nil {
		fmt.Fprintf(os.Stderr, "ssserved: recovered %d epochs from %s (%d bytes committed, %d torn)\n",
			rep.Epochs, journalPath, rep.CommittedBytes, rep.TornBytes)
	}

	// After each fence the loop consults the sink watchdog: under
	// -journal-strict the first lost journal line settles and exits.
	watchdog := func() {
		if cfg.strict && eng.SinkErrors() > 0 {
			stop()
		}
	}
	go engineLoop(eng, time.Duration(cfg.epochMs)*time.Millisecond, submit, offer, ctx.Done(), done, watchdog)

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills hard
	fmt.Fprintln(os.Stderr, "ssserved: shutting down, settling the pipelines")
	httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = shutdownHTTP(httpCtx)
	final := <-done

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ledgerDoc(eng, final)); err != nil {
		return err
	}
	if !final.Balanced() || final.InFlight != 0 || eng.Violations() != 0 {
		return fmt.Errorf("conservation did not close: %d violations, %d in flight",
			eng.Violations(), final.InFlight)
	}
	if cfg.strict && eng.SinkErrors() > 0 {
		return fmt.Errorf("journal sink lost %d lines (-journal-strict)", eng.SinkErrors())
	}
	return nil
}

// openEngine builds the control plane: a fresh engine journaling to
// journalPath, or — under -recover, when the file holds a journal — one
// reconstructed by replaying it, with the file truncated to its committed
// prefix and reattached in append mode under the -sync policy. The replay
// report is nil on a fresh start.
func openEngine(journalPath string, sync syncPolicy, cfg serveConfig, prog decision.Program, pol qm.Policy,
	recovery *atomic.Pointer[map[string]any]) (*ctlplane.Engine, *ctlplane.ReplayReport, func(), error) {
	fresh := func(w *os.File) (*ctlplane.Engine, *ctlplane.ReplayReport, func(), error) {
		var journal io.Writer
		if w != nil {
			journal = &syncWriter{f: w, policy: sync}
		}
		eng, err := endsystem.NewService(endsystem.ServiceConfig{
			Shards:          cfg.shards,
			SlotsPerShard:   cfg.slots,
			Program:         prog,
			Policy:          pol,
			CyclesPerEpoch:  cfg.cycles,
			FramesPerStream: cfg.frames,
			CheckpointEvery: cfg.ckpt,
			Journal:         journal,
		})
		if err != nil {
			if w != nil {
				w.Close()
			}
			return nil, nil, nil, err
		}
		closer := func() {}
		if w != nil {
			closer = func() { w.Close() }
		}
		return eng, nil, closer, nil
	}

	if journalPath == "" {
		return fresh(nil)
	}
	if cfg.recover {
		if st, err := os.Stat(journalPath); err == nil && st.Size() > 0 {
			return recoverEngine(journalPath, sync, recovery)
		}
		// Nothing survived to replay; start fresh below.
		fmt.Fprintf(os.Stderr, "ssserved: -recover: %s is missing or empty, starting fresh\n", journalPath)
	}
	f, err := os.Create(journalPath)
	if err != nil {
		return nil, nil, nil, err
	}
	return fresh(f)
}

// recoverEngine replays journalPath into a fresh engine. Before the replay
// proper it scans for the latest checkpoint — bounded-time state the
// /admin/recovery endpoint reports while re-execution runs.
func recoverEngine(journalPath string, sync syncPolicy,
	recovery *atomic.Pointer[map[string]any]) (*ctlplane.Engine, *ctlplane.ReplayReport, func(), error) {
	f, err := os.Open(journalPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()

	doc := map[string]any{"state": "replaying", "journal": journalPath}
	if ck, ok, err := ctlplane.LatestCheckpoint(f); err == nil && ok {
		doc["checkpoint"] = map[string]any{
			"epoch": ck.Epoch, "seq": ck.Seq, "streams": len(ck.Streams),
		}
	}
	recovery.Store(&doc)

	if _, err := f.Seek(0, 0); err != nil {
		return nil, nil, nil, err
	}
	eng, rep, err := ctlplane.Replay(f)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("recover %s: %w", journalPath, err)
	}

	// Drop the torn tail and any uncommitted block from the durable copy,
	// then resume journaling where the committed prefix ends.
	if err := os.Truncate(journalPath, rep.CommittedBytes); err != nil {
		return nil, nil, nil, err
	}
	af, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	eng.SetJournalSink(&syncWriter{f: af, policy: sync})
	return eng, rep, func() { af.Close() }, nil
}

// recoveredDoc summarizes a replay report for /admin/recovery (nil on a
// fresh start).
func recoveredDoc(rep *ctlplane.ReplayReport) any {
	if rep == nil {
		return nil
	}
	return map[string]any{
		"epochs":          rep.Epochs,
		"requests":        rep.Requests,
		"checkpoints":     rep.Checkpoints,
		"committed_bytes": rep.CommittedBytes,
		"torn_bytes":      rep.TornBytes,
		"dropped_lines":   rep.DroppedLines,
	}
}

// syncPolicy selects when the journal file is fsynced.
type syncPolicy uint8

const (
	// syncNone leaves durability to the OS page cache.
	syncNone syncPolicy = iota
	// syncFence fsyncs when an epoch block completes (its ledger and
	// checkpoint lines), so every acknowledged fence is durable before its
	// responses unblock — the durability-before-ack contract.
	syncFence
	// syncLine fsyncs every journal line.
	syncLine
)

func parseSyncPolicy(name string) (syncPolicy, error) {
	switch name {
	case "none":
		return syncNone, nil
	case "fence":
		return syncFence, nil
	case "line":
		return syncLine, nil
	default:
		return 0, fmt.Errorf("-sync %q: want none, fence, or line", name)
	}
}

// syncWriter writes journal lines to a file under a sync policy. Each Write
// is exactly one journal line, so fence policy keys on the line kinds that
// end an epoch block.
type syncWriter struct {
	f      *os.File
	policy syncPolicy
}

func (s *syncWriter) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	if err != nil || n != len(p) {
		return n, err
	}
	switch s.policy {
	case syncLine:
		err = s.f.Sync()
	case syncFence:
		if bytes.Contains(p, []byte(" ledger ")) || bytes.Contains(p, []byte(" checkpoint ")) {
			err = s.f.Sync()
		}
	}
	if err != nil {
		return 0, err // a failed sync means the line is not durable
	}
	return n, nil
}

// engineLoop owns the control-plane engine: it alone enqueues and steps.
// Requests arriving between ticks land at the next fence; their responses
// are correlated back to the waiting handler by sequence number. After each
// fence it runs the watchdog (the -journal-strict sink check). On shutdown
// it pauses traffic and steps until nothing is in flight so the final
// ledger closes exactly.
func engineLoop(eng *ctlplane.Engine, epoch time.Duration, submit chan submission, offer chan int,
	quit <-chan struct{}, done chan<- ctlplane.Ledger, watchdog func()) {
	pending := make(map[uint64]chan ctlplane.Response)
	tick := time.NewTicker(epoch)
	defer tick.Stop()
	step := func() ctlplane.Ledger {
		rep := eng.Step()
		for _, resp := range rep.Responses {
			if ch, ok := pending[resp.Seq]; ok {
				ch <- resp // buffered: never blocks on a departed client
				delete(pending, resp.Seq)
			}
		}
		return rep.Ledger
	}
	for {
		select {
		case sub := <-submit:
			pending[eng.Enqueue(sub.req)] = sub.resp
		case n := <-offer:
			eng.SetOffering(n)
		case <-tick.C:
			step()
			watchdog()
		case <-quit:
			// Settle: answer anything queued, stop offering, run the
			// backlog out. Bounded so a wedged pipeline still exits (the
			// unbalanced ledger then fails the process).
			eng.SetOffering(0)
			led := step()
			for i := 0; led.InFlight > 0 && i < 1<<14; i++ {
				led = step()
			}
			done <- led
			return
		}
	}
}

// streamParam parses the id query parameter.
func streamParam(q url.Values) (shard.StreamID, error) {
	v, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("id: %v", err)
	}
	return shard.StreamID(v), nil
}

// intParam parses a required integer query parameter.
func intParam(q url.Values, name string) (int, error) {
	v, err := strconv.Atoi(q.Get(name))
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return v, nil
}

// uintParam parses an optional uint16 query parameter (0 when absent).
func uintParam(q url.Values, name string) (uint16, error) {
	s := q.Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return uint16(v), nil
}

// parseSpec builds an attribute spec from class-specific query parameters.
// Validation proper happens at the fence (attr.Spec.Validate via the
// scheduler); this only maps names to fields.
func parseSpec(q url.Values) (attr.Spec, error) {
	period, err := uintParam(q, "period")
	if err != nil {
		return attr.Spec{}, err
	}
	priority, err := uintParam(q, "priority")
	if err != nil {
		return attr.Spec{}, err
	}
	weight, err := uintParam(q, "weight")
	if err != nil {
		return attr.Spec{}, err
	}
	guard, err := uintParam(q, "guard")
	if err != nil {
		return attr.Spec{}, err
	}
	num, err := uintParam(q, "num")
	if err != nil {
		return attr.Spec{}, err
	}
	den, err := uintParam(q, "den")
	if err != nil {
		return attr.Spec{}, err
	}
	switch c := q.Get("class"); c {
	case "edf":
		return attr.Spec{Class: attr.EDF, Period: period}, nil
	case "wc", "dwcs", "window-constrained":
		return attr.Spec{
			Class:      attr.WindowConstrained,
			Period:     period,
			Constraint: attr.Constraint{Num: uint8(num), Den: uint8(den)},
		}, nil
	case "static", "static-priority":
		return attr.Spec{Class: attr.StaticPriority, Priority: priority, Guard: guard}, nil
	case "fair", "fair-tag":
		return attr.Spec{Class: attr.FairTag, Weight: weight}, nil
	default:
		return attr.Spec{}, fmt.Errorf("class %q: want edf, wc, static, or fair", c)
	}
}

// ledgerDoc is the JSON served by /admin/ledger and printed at exit: the
// conservation snapshot plus the journal replay identity and sink health.
func ledgerDoc(eng *ctlplane.Engine, led ctlplane.Ledger) map[string]any {
	hash, lines := eng.JournalSum()
	return map[string]any{
		"ledger":        led,
		"balanced":      led.Balanced(),
		"violations":    eng.Violations(),
		"journal_hash":  fmt.Sprintf("%016x", hash),
		"journal_lines": lines,
		"sink_errors":   eng.SinkErrors(),
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
