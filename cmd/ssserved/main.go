// Command ssserved hosts the sharded supervised endsystem as a long-running
// service: a ctlplane.Engine stepped on a wall-clock epoch ticker, with an
// HTTP admin API for live mutation — admit and evict streams, retune
// attribute specs, switch a slot's rank program, resize a shard's shared
// buffer pool, drain and restart shards — layered on the observability
// endpoint (JSON /metrics plus pprof).
//
// Every admin request is enqueued on the control plane and applies at the
// next epoch fence; the handler blocks until its response comes back from
// the fence, so a 200 means the mutation is live (and a 409 carries the
// control plane's deterministic error string). The full transition journal
// streams to -journal, and on shutdown (SIGINT/SIGTERM or POST
// /admin/shutdown) the daemon pauses traffic, runs the backlog out, prints
// the final conservation ledger as JSON on stdout, and exits 0 only if the
// books close: offered == delivered + dropped + evicted with nothing in
// flight and zero epoch violations.
//
// Admin API (all mutations are POST; parameters are query params):
//
//	POST /admin/admit?id=N&class=edf|wc|static|fair&...   admit a stream
//	POST /admin/evict?id=N                                evict, drain its ring
//	POST /admin/retune?id=N&class=...&...                 retune (same class)
//	POST /admin/program?id=N&program=dwcs|tag-only|stfq   switch rank program
//	POST /admin/pool?shard=K&burst=B                      resize shared pool
//	POST /admin/drain?shard=K                             quiesce a shard
//	POST /admin/restart?shard=K                           resume a shard
//	POST /admin/offering?frames=N                         offered load per slot
//	POST /admin/shutdown                                  graceful exit
//	GET  /admin/ledger                                    conservation snapshot
//
// Spec parameters per class: edf takes period; wc takes period, num, den;
// static takes priority and optional guard; fair takes weight.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/attr"
	"repro/internal/ctlplane"
	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the admin/metrics endpoint")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for test harnesses)")
	shards := flag.Int("shards", 4, "scheduler shard count")
	slots := flag.Int("slots", 16, "stream-slots per shard")
	program := flag.String("program", "dwcs", "initial rank program for every shard")
	policy := flag.String("policy", "drop-oldest", "overload policy: drop-oldest or reject-new")
	epochMs := flag.Int("epoch-ms", 5, "wall-clock milliseconds per control epoch")
	cycles := flag.Int("cycles", 128, "decision cycles per shard per epoch")
	frames := flag.Int("frames", 1, "frames offered per occupied slot per epoch")
	journalPath := flag.String("journal", "", "stream the control-plane transition journal to this file")
	flag.Parse()
	if err := serve(*addr, *addrFile, *journalPath, serveConfig{
		shards: *shards, slots: *slots, program: *program, policy: *policy,
		epochMs: *epochMs, cycles: *cycles, frames: *frames,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ssserved: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	shards, slots           int
	program, policy         string
	epochMs, cycles, frames int
}

// submission is one admin request in flight to the engine goroutine; the
// response channel is buffered so the engine never blocks on a departed
// client.
type submission struct {
	req  ctlplane.Request
	resp chan ctlplane.Response
}

func serve(addr, addrFile, journalPath string, cfg serveConfig) error {
	prog, err := decision.ParseProgram(cfg.program)
	if err != nil {
		return err
	}
	var pol qm.Policy
	switch cfg.policy {
	case "drop-oldest":
		pol = qm.DropOldest
	case "reject-new":
		pol = qm.RejectNew
	default:
		return fmt.Errorf("-policy %q: want drop-oldest or reject-new", cfg.policy)
	}
	if cfg.epochMs < 1 {
		return fmt.Errorf("-epoch-ms %d: want >= 1", cfg.epochMs)
	}

	var journal *os.File
	if journalPath != "" {
		journal, err = os.Create(journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
	}

	eng, err := endsystem.NewService(endsystem.ServiceConfig{
		Shards:          cfg.shards,
		SlotsPerShard:   cfg.slots,
		Program:         prog,
		Policy:          pol,
		CyclesPerEpoch:  cfg.cycles,
		FramesPerStream: cfg.frames,
		Journal:         journal,
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	eng.RegisterMetrics(reg, "ctl")
	eng.Router().RegisterMetrics(reg, "shard")
	adminNs := reg.Histogram("ssserved.admin_latency", "ns")

	// The engine goroutine owns eng exclusively: admin handlers hand it
	// requests over submit and wait for the fence to answer. Shutdown is a
	// context cancel — from a signal or the /admin/shutdown route.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	submit := make(chan submission)
	offer := make(chan int)
	done := make(chan ctlplane.Ledger, 1)

	mux := obs.NewMux(reg)
	admin := func(route string, h func(url.Values) (ctlplane.Request, error)) {
		mux.HandleFunc("/admin/"+route, func(w http.ResponseWriter, r *http.Request) {
			start := obs.WallClock()
			defer func() { adminNs.Observe(obs.WallClock() - start) }()
			if r.Method != http.MethodPost {
				httpError(w, http.StatusMethodNotAllowed, "POST only")
				return
			}
			req, err := h(r.URL.Query())
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			sub := submission{req: req, resp: make(chan ctlplane.Response, 1)}
			select {
			case submit <- sub:
			case <-ctx.Done():
				httpError(w, http.StatusServiceUnavailable, "shutting down")
				return
			}
			select {
			case resp := <-sub.resp:
				code := http.StatusOK
				if !resp.OK() {
					code = http.StatusConflict
				}
				writeJSON(w, code, resp)
			case <-time.After(30 * time.Second):
				httpError(w, http.StatusGatewayTimeout, "no epoch fence within 30s")
			}
		})
	}
	admin("admit", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		spec, err := parseSpec(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpAdmit, Stream: id, Spec: spec}, nil
	})
	admin("evict", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		return ctlplane.Request{Op: ctlplane.OpEvict, Stream: id}, err
	})
	admin("retune", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		spec, err := parseSpec(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpRetune, Stream: id, Spec: spec}, nil
	})
	admin("program", func(q url.Values) (ctlplane.Request, error) {
		id, err := streamParam(q)
		if err != nil {
			return ctlplane.Request{}, err
		}
		p, err := decision.ParseProgram(q.Get("program"))
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpSetProgram, Stream: id, Program: p}, nil
	})
	admin("pool", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		if err != nil {
			return ctlplane.Request{}, err
		}
		burst, err := intParam(q, "burst")
		if err != nil {
			return ctlplane.Request{}, err
		}
		return ctlplane.Request{Op: ctlplane.OpResizePool, Shard: k, Burst: burst}, nil
	})
	admin("drain", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		return ctlplane.Request{Op: ctlplane.OpDrainShard, Shard: k}, err
	})
	admin("restart", func(q url.Values) (ctlplane.Request, error) {
		k, err := intParam(q, "shard")
		return ctlplane.Request{Op: ctlplane.OpRestartShard, Shard: k}, err
	})
	mux.HandleFunc("/admin/offering", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		n, err := intParam(r.URL.Query(), "frames")
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		select {
		case offer <- n:
			writeJSON(w, http.StatusOK, map[string]int{"frames": n})
		case <-ctx.Done():
			httpError(w, http.StatusServiceUnavailable, "shutting down")
		}
	})
	mux.HandleFunc("/admin/ledger", func(w http.ResponseWriter, r *http.Request) {
		led := eng.Ledger() // atomic snapshot from the last fence: any-goroutine safe
		writeJSON(w, http.StatusOK, ledgerDoc(eng, led))
	})
	mux.HandleFunc("/admin/shutdown", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
		stop()
	})

	bound, shutdownHTTP, err := obs.ServeHandler(addr, mux)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "ssserved: %d shards × %d slots, program %s, policy %s; admin on http://%s/admin/, metrics on /metrics\n",
		cfg.shards, cfg.slots, prog, pol, bound)

	go engineLoop(eng, time.Duration(cfg.epochMs)*time.Millisecond, submit, offer, ctx.Done(), done)

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills hard
	fmt.Fprintln(os.Stderr, "ssserved: shutting down, settling the pipelines")
	httpCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = shutdownHTTP(httpCtx)
	final := <-done

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ledgerDoc(eng, final)); err != nil {
		return err
	}
	if !final.Balanced() || final.InFlight != 0 || eng.Violations() != 0 {
		return fmt.Errorf("conservation did not close: %d violations, %d in flight",
			eng.Violations(), final.InFlight)
	}
	return nil
}

// engineLoop owns the control-plane engine: it alone enqueues and steps.
// Requests arriving between ticks land at the next fence; their responses
// are correlated back to the waiting handler by sequence number. On
// shutdown it pauses traffic and steps until nothing is in flight so the
// final ledger closes exactly.
func engineLoop(eng *ctlplane.Engine, epoch time.Duration, submit chan submission, offer chan int, quit <-chan struct{}, done chan<- ctlplane.Ledger) {
	pending := make(map[uint64]chan ctlplane.Response)
	tick := time.NewTicker(epoch)
	defer tick.Stop()
	step := func() ctlplane.Ledger {
		rep := eng.Step()
		for _, resp := range rep.Responses {
			if ch, ok := pending[resp.Seq]; ok {
				ch <- resp // buffered: never blocks on a departed client
				delete(pending, resp.Seq)
			}
		}
		return rep.Ledger
	}
	for {
		select {
		case sub := <-submit:
			pending[eng.Enqueue(sub.req)] = sub.resp
		case n := <-offer:
			eng.SetOffering(n)
		case <-tick.C:
			step()
		case <-quit:
			// Settle: answer anything queued, stop offering, run the
			// backlog out. Bounded so a wedged pipeline still exits (the
			// unbalanced ledger then fails the process).
			eng.SetOffering(0)
			led := step()
			for i := 0; led.InFlight > 0 && i < 1<<14; i++ {
				led = step()
			}
			done <- led
			return
		}
	}
}

// streamParam parses the id query parameter.
func streamParam(q url.Values) (shard.StreamID, error) {
	v, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("id: %v", err)
	}
	return shard.StreamID(v), nil
}

// intParam parses a required integer query parameter.
func intParam(q url.Values, name string) (int, error) {
	v, err := strconv.Atoi(q.Get(name))
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return v, nil
}

// uintParam parses an optional uint16 query parameter (0 when absent).
func uintParam(q url.Values, name string) (uint16, error) {
	s := q.Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", name, err)
	}
	return uint16(v), nil
}

// parseSpec builds an attribute spec from class-specific query parameters.
// Validation proper happens at the fence (attr.Spec.Validate via the
// scheduler); this only maps names to fields.
func parseSpec(q url.Values) (attr.Spec, error) {
	period, err := uintParam(q, "period")
	if err != nil {
		return attr.Spec{}, err
	}
	priority, err := uintParam(q, "priority")
	if err != nil {
		return attr.Spec{}, err
	}
	weight, err := uintParam(q, "weight")
	if err != nil {
		return attr.Spec{}, err
	}
	guard, err := uintParam(q, "guard")
	if err != nil {
		return attr.Spec{}, err
	}
	num, err := uintParam(q, "num")
	if err != nil {
		return attr.Spec{}, err
	}
	den, err := uintParam(q, "den")
	if err != nil {
		return attr.Spec{}, err
	}
	switch c := q.Get("class"); c {
	case "edf":
		return attr.Spec{Class: attr.EDF, Period: period}, nil
	case "wc", "dwcs", "window-constrained":
		return attr.Spec{
			Class:      attr.WindowConstrained,
			Period:     period,
			Constraint: attr.Constraint{Num: uint8(num), Den: uint8(den)},
		}, nil
	case "static", "static-priority":
		return attr.Spec{Class: attr.StaticPriority, Priority: priority, Guard: guard}, nil
	case "fair", "fair-tag":
		return attr.Spec{Class: attr.FairTag, Weight: weight}, nil
	default:
		return attr.Spec{}, fmt.Errorf("class %q: want edf, wc, static, or fair", c)
	}
}

// ledgerDoc is the JSON served by /admin/ledger and printed at exit: the
// conservation snapshot plus the journal replay identity.
func ledgerDoc(eng *ctlplane.Engine, led ctlplane.Ledger) map[string]any {
	hash, lines := eng.JournalSum()
	return map[string]any{
		"ledger":        led,
		"balanced":      led.Balanced(),
		"violations":    eng.Violations(),
		"journal_hash":  fmt.Sprintf("%016x", hash),
		"journal_lines": lines,
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
