package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/ctlplane"
)

func TestStreamParam(t *testing.T) {
	cases := []struct {
		query string
		want  uint64
		ok    bool
	}{
		{"id=7", 7, true},
		{"id=0", 0, true},
		{"id=18446744073709551615", ^uint64(0), true},
		{"", 0, false},
		{"id=", 0, false},
		{"id=-1", 0, false},
		{"id=abc", 0, false},
		{"id=1.5", 0, false},
	}
	for _, c := range cases {
		q, _ := url.ParseQuery(c.query)
		id, err := streamParam(q)
		if (err == nil) != c.ok || (c.ok && uint64(id) != c.want) {
			t.Errorf("streamParam(%q) = %d, %v; want %d, ok=%t", c.query, id, err, c.want, c.ok)
		}
	}
}

func TestIntParam(t *testing.T) {
	cases := []struct {
		query string
		want  int
		ok    bool
	}{
		{"shard=3", 3, true},
		{"shard=-1", -1, true}, // range checking is the fence's job
		{"", 0, false},
		{"shard=", 0, false},
		{"shard=x", 0, false},
		{"shard=2.0", 0, false},
	}
	for _, c := range cases {
		q, _ := url.ParseQuery(c.query)
		v, err := intParam(q, "shard")
		if (err == nil) != c.ok || (c.ok && v != c.want) {
			t.Errorf("intParam(%q) = %d, %v; want %d, ok=%t", c.query, v, err, c.want, c.ok)
		}
	}
}

func TestUintParam(t *testing.T) {
	cases := []struct {
		query string
		want  uint16
		ok    bool
	}{
		{"period=9", 9, true},
		{"period=65535", 65535, true},
		{"", 0, true}, // optional: absent means zero
		{"period=65536", 0, false},
		{"period=-3", 0, false},
		{"period=zz", 0, false},
	}
	for _, c := range cases {
		q, _ := url.ParseQuery(c.query)
		v, err := uintParam(q, "period")
		if (err == nil) != c.ok || (c.ok && v != c.want) {
			t.Errorf("uintParam(%q) = %d, %v; want %d, ok=%t", c.query, v, err, c.want, c.ok)
		}
	}
}

func TestParseSpecParams(t *testing.T) {
	good := []struct {
		query string
		want  attr.Spec
	}{
		{"class=edf&period=8", attr.Spec{Class: attr.EDF, Period: 8}},
		{"class=wc&period=5&num=1&den=4", attr.Spec{
			Class: attr.WindowConstrained, Period: 5,
			Constraint: attr.Constraint{Num: 1, Den: 4}}},
		{"class=dwcs&period=5", attr.Spec{Class: attr.WindowConstrained, Period: 5}},
		{"class=static&priority=3&guard=64", attr.Spec{Class: attr.StaticPriority, Priority: 3, Guard: 64}},
		{"class=static-priority&priority=2", attr.Spec{Class: attr.StaticPriority, Priority: 2}},
		{"class=fair&weight=6", attr.Spec{Class: attr.FairTag, Weight: 6}},
		{"class=fair-tag&weight=1", attr.Spec{Class: attr.FairTag, Weight: 1}},
	}
	for _, c := range good {
		q, _ := url.ParseQuery(c.query)
		spec, err := parseSpec(q)
		if err != nil || spec != c.want {
			t.Errorf("parseSpec(%q) = %+v, %v; want %+v", c.query, spec, err, c.want)
		}
	}
	bad := []string{
		"",                    // no class
		"class=bogus",         // unknown class
		"class=edf&period=xx", // malformed field
		"class=edf&period=70000",
		"class=wc&period=5&num=zz",
		"class=static&priority=1&guard=-2",
		"class=fair&weight=1e3",
	}
	for _, query := range bad {
		q, _ := url.ParseQuery(query)
		if spec, err := parseSpec(q); err == nil {
			t.Errorf("parseSpec(%q) accepted: %+v", query, spec)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for name, want := range map[string]syncPolicy{"none": syncNone, "fence": syncFence, "line": syncLine} {
		if got, err := parseSyncPolicy(name); err != nil || got != want {
			t.Errorf("parseSyncPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseSyncPolicy("always"); err == nil {
		t.Error("parseSyncPolicy accepted an unknown mode")
	}
}

// daemon runs serve() in a goroutine and returns its base URL and a wait
// function yielding serve's error.
func daemon(t *testing.T, journal string, cfg serveConfig) (string, func() error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	errc := make(chan error, 1)
	go func() { errc <- serve("127.0.0.1:0", addrFile, journal, cfg) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), func() error {
				select {
				case err := <-errc:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("serve did not exit")
					return nil
				}
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// post issues a POST and decodes the JSON body, asserting the status code.
func post(t *testing.T, base, route string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Post(base+route, "", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", route, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: decode: %v", route, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: %d, want %d (%v)", route, resp.StatusCode, wantCode, doc)
	}
	return doc
}

func get(t *testing.T, base, route string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + route)
	if err != nil {
		t.Fatalf("GET %s: %v", route, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("GET %s: decode: %v", route, err)
	}
	return doc
}

func testConfig() serveConfig {
	return serveConfig{
		shards: 2, slots: 8, program: "dwcs", policy: "drop-oldest",
		epochMs: 1, cycles: 64, frames: 1, ckpt: 16, sync: "none",
	}
}

// TestServeHTTPCodes pins the admin API's status codes: 400 for malformed
// parameters, 409 for fence-rejected requests, 405 for wrong methods, 200
// for applied mutations.
func TestServeHTTPCodes(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.txt")
	base, wait := daemon(t, journal, testConfig())

	post(t, base, "/admin/admit?id=1&class=edf&period=4", http.StatusOK)
	post(t, base, "/admin/admit?id=1&class=edf&period=4", http.StatusConflict) // already admitted
	post(t, base, "/admin/admit?id=zz&class=edf&period=4", http.StatusBadRequest)
	post(t, base, "/admin/admit?id=2&class=bogus", http.StatusBadRequest)
	post(t, base, "/admin/evict?id=404", http.StatusConflict) // not admitted
	post(t, base, "/admin/pool?shard=99&burst=1", http.StatusConflict)
	post(t, base, "/admin/pool?shard=0", http.StatusBadRequest) // burst missing
	post(t, base, "/admin/offering?frames=xx", http.StatusBadRequest)
	if resp, err := http.Get(base + "/admin/admit?id=3&class=edf&period=4"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET on a mutation route: %d, want 405", resp.StatusCode)
		}
	}
	if doc := get(t, base, "/admin/recovery"); doc["state"] != "serving" {
		t.Fatalf("recovery state %v, want serving", doc["state"])
	}
	if doc := get(t, base, "/admin/ledger"); doc["balanced"] != true {
		t.Fatalf("ledger not balanced: %v", doc)
	}

	post(t, base, "/admin/shutdown", http.StatusOK)
	if err := wait(); err != nil {
		t.Fatalf("clean run exited with: %v", err)
	}
}

// TestServeRecovery is the daemon-level crash drill: run a daemon, mutate
// it, tear its journal mid-line (the kill -9 aftermath), then boot a second
// daemon with -recover and require the admitted state and a balanced ledger
// to survive.
func TestServeRecovery(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.txt")
	base, wait := daemon(t, journal, testConfig())
	for i := 1; i <= 5; i++ {
		post(t, base, fmt.Sprintf("/admin/admit?id=%d&class=edf&period=4", i), http.StatusOK)
	}
	post(t, base, "/admin/evict?id=3", http.StatusOK)
	post(t, base, "/admin/shutdown", http.StatusOK)
	if err := wait(); err != nil {
		t.Fatalf("first run: %v", err)
	}

	// Tear the tail mid-line: drop the final 7 bytes, as a crash mid-write
	// would.
	text, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, text[:len(text)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.recover = true
	base2, wait2 := daemon(t, journal, cfg)
	doc := get(t, base2, "/admin/recovery")
	if doc["state"] != "serving" {
		t.Fatalf("recovery state %v, want serving", doc["state"])
	}
	rec, ok := doc["recovered"].(map[string]any)
	if !ok {
		t.Fatalf("recovery doc has no recovered summary: %v", doc)
	}
	if torn, ok := rec["torn_bytes"].(float64); !ok || torn <= 0 {
		t.Fatalf("recovery doc did not report the torn tail: %v", doc)
	}
	// Streams 1,2,4,5 survived; 3 was evicted before the crash.
	post(t, base2, "/admin/admit?id=1&class=edf&period=4", http.StatusConflict)
	post(t, base2, "/admin/evict?id=3", http.StatusConflict)
	post(t, base2, "/admin/retune?id=4&class=edf&period=9", http.StatusOK)
	if doc := get(t, base2, "/admin/ledger"); doc["balanced"] != true {
		t.Fatalf("recovered ledger not balanced: %v", doc)
	}
	post(t, base2, "/admin/shutdown", http.StatusOK)
	if err := wait2(); err != nil {
		t.Fatalf("recovered run: %v", err)
	}

	// The truncated-and-appended journal must itself replay cleanly end to
	// end: recovery left a valid journal behind.
	text2, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if _, rep, err := ctlplane.Replay(bytes.NewReader(text2)); err != nil {
		t.Fatalf("post-recovery journal does not replay: %v", err)
	} else if rep.TornBytes != 0 {
		t.Fatalf("post-recovery journal still has a torn tail: %d bytes", rep.TornBytes)
	}
}

// TestServeJournalStrict covers the healthy half of -journal-strict: a
// clean run with a working sink must still exit zero (the sink-death half
// is exercised at the engine layer by ctlplane's fault-injection tests —
// serve owns opening its own file, so a failing sink cannot be planted
// from here without racing the daemon).
func TestServeJournalStrict(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.txt")
	cfg := testConfig()
	cfg.strict = true
	base, wait := daemon(t, journal, cfg)
	post(t, base, "/admin/admit?id=1&class=edf&period=4", http.StatusOK)
	post(t, base, "/admin/shutdown", http.StatusOK)
	if err := wait(); err != nil {
		t.Fatalf("strict run with a healthy sink: %v", err)
	}
}

// TestServeConfigErrors pins the flag-validation error paths.
func TestServeConfigErrors(t *testing.T) {
	cases := []struct {
		cfg     serveConfig
		journal string
		want    string
	}{
		{serveConfig{program: "bogus", policy: "drop-oldest", epochMs: 1, sync: "none"}, "", "rank program"},
		{serveConfig{program: "dwcs", policy: "fifo", epochMs: 1, sync: "none"}, "", "-policy"},
		{serveConfig{program: "dwcs", policy: "drop-oldest", epochMs: 0, sync: "none"}, "", "-epoch-ms"},
		{serveConfig{program: "dwcs", policy: "drop-oldest", epochMs: 1, sync: "sometimes"}, "", "-sync"},
		{serveConfig{program: "dwcs", policy: "drop-oldest", epochMs: 1, sync: "none", recover: true}, "", "-recover"},
	}
	for _, c := range cases {
		err := serve("127.0.0.1:0", "", c.journal, c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("serve(%+v) = %v, want error containing %q", c.cfg, err, c.want)
		}
	}
}
