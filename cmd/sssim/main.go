// Command sssim runs a one-shot ShareStreams scheduler simulation with a
// configurable design point and workload, printing per-slot counters and
// rate estimates. It is the exploration companion to ssbench's fixed
// paper reproductions.
//
//	sssim -slots 8 -routing ba -circulate max -cycles 100000
//	sssim -slots 4 -routing wr -mix -cycles 50000
//	sssim -slots 32 -exact -trace 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/obs"
	"repro/internal/traffic"
)

func main() {
	var (
		slots     = flag.Int("slots", 4, "stream-slot count (power of two, 2..1024)")
		routing   = flag.String("routing", "wr", "routing: wr (winner-only/max-finding) or ba (block)")
		circulate = flag.String("circulate", "max", "block circulation: max (max-first) or min (min-first)")
		exact     = flag.Bool("exact", false, "use the exact bitonic sort schedule (BA extension)")
		ahead     = flag.Bool("computeahead", false, "enable compute-ahead Register Base blocks (§6)")
		cycles    = flag.Int("cycles", 10000, "decision cycles to run")
		mix       = flag.Bool("mix", false, "admit a mixed workload (EDF + window-constrained + static + fair) instead of all-EDF")
		device    = flag.String("device", "v1", "clock model device: v1 (Virtex-I) or v2 (Virtex-II)")
		trace     = flag.Int("trace", 0, "print the first N decision cycles")
		vcdPath   = flag.String("vcd", "", "dump the control-unit trace as a VCD waveform file")
		metrics   = flag.String("metrics", "", "serve the obs registry and pprof on this address (e.g. :9090) for the run, and print the metrics summary at exit")
	)
	flag.Parse()

	cfg := core.Config{Slots: *slots, ExactSort: *exact, ComputeAhead: *ahead}
	if *vcdPath != "" {
		cfg.TraceDepth = 1 << 16
	}
	switch *routing {
	case "wr":
		cfg.Routing = core.WinnerOnly
	case "ba":
		cfg.Routing = core.BlockRouting
	default:
		fatal("unknown -routing %q (wr or ba)", *routing)
	}
	switch *circulate {
	case "max":
		cfg.Circulate = core.MaxFirst
	case "min":
		cfg.Circulate = core.MinFirst
	default:
		fatal("unknown -circulate %q (max or min)", *circulate)
	}
	dev := fpga.VirtexI
	if *device == "v2" {
		dev = fpga.VirtexII
	}

	sched, err := core.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if err := admit(sched, cfg.Slots, *mix); err != nil {
		fatal("%v", err)
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		m, err := core.NewMetrics(reg, "core", 256)
		if err != nil {
			fatal("%v", err)
		}
		if err := sched.Instrument(m); err != nil {
			fatal("%v", err)
		}
		bound, closeFn, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatal("-metrics: %v", err)
		}
		fmt.Fprintf(os.Stderr, "sssim: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
		defer closeFn()
	}
	if err := sched.Start(); err != nil {
		fatal("%v", err)
	}

	for i := 0; i < *cycles; i++ {
		cr := sched.RunCycle()
		if i < *trace {
			fmt.Printf("cycle %4d: winner slot %2d, %d tx, %d hw clocks\n",
				cr.Decision, cr.Winner, len(cr.Transmissions), cr.HWCycles)
		}
	}

	fmt.Printf("\n%s configuration, %d stream-slots, %d decision cycles (%d hardware clocks)\n",
		cfg.Routing, cfg.Slots, sched.Decisions(), sched.HWCycles())
	fmt.Printf("%-6s %-22s %10s %10s %10s %10s %10s %12s\n",
		"Slot", "Class", "Wins", "Services", "Met", "Missed", "Drops", "Violations")
	for i := 0; i < cfg.Slots; i++ {
		c := sched.SlotCounters(i)
		fmt.Printf("%-6d %-22s %10d %10d %10d %10d %10d %12d\n",
			i, sched.SlotSpec(i).Class, c.Wins, c.Services, c.Met, c.Missed, c.Drops, c.Violations)
	}
	tot := sched.Totals()
	fmt.Printf("%-6s %-22s %10d %10d %10d %10d %10d %12d\n",
		"total", "", tot.Wins, tot.Services, tot.Met, tot.Missed, tot.Drops, tot.Violations)

	// Rate estimate on the modeled silicon.
	fr := fpga.BA
	if cfg.Routing == core.WinnerOnly {
		fr = fpga.WR
	}
	if mhz, err := fpga.ClockMHz(cfg.Slots, fr, dev); err == nil {
		rate := fpga.DecisionRate(mhz, sched.CyclesPerDecision())
		block := 1
		if cfg.Routing == core.BlockRouting {
			block = cfg.Slots
		}
		fmt.Printf("\n%s @ %.0f MHz: %.2fM decisions/s, %.2fM frames/s (%d clocks/decision, block %d)\n",
			dev, mhz, rate/1e6, fpga.PacketRate(mhz, sched.CyclesPerDecision(), block)/1e6,
			sched.CyclesPerDecision(), block)
	}
	if area, err := fpga.EstimateArea(cfg.Slots, fr); err == nil {
		fmt.Printf("area: %d slices (%d CLBs), %.0f%% of a Virtex-1000, fits=%v\n",
			area.TotalSlices(), area.CLBs(), area.Utilization()*100, area.FitsVirtex1000())
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := sched.Trace().WriteVCD(f, "sharestreams"); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("control-unit waveform written to %s (%d events)\n", *vcdPath, sched.Trace().Len())
	}

	if reg != nil {
		fmt.Println("\nObservability summary:")
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
}

// admit fills the scheduler with a workload: all-EDF (staggered deadlines,
// backlogged) or a 4-way mixed-discipline rotation.
func admit(sched *core.Scheduler, slots int, mix bool) error {
	for i := 0; i < slots; i++ {
		var spec attr.Spec
		switch {
		case !mix:
			spec = attr.Spec{Class: attr.EDF, Period: 1}
		default:
			switch i % 4 {
			case 0:
				spec = attr.Spec{Class: attr.EDF, Period: uint16(2 + i%3)}
			case 1:
				spec = attr.Spec{Class: attr.WindowConstrained, Period: uint16(2 + i%3),
					Constraint: attr.Constraint{Num: 1, Den: uint8(2 + i%4)}}
			case 2:
				spec = attr.Spec{Class: attr.StaticPriority, Priority: uint16(20000 + i)}
			case 3:
				spec = attr.Spec{Class: attr.FairTag, Weight: uint16(1 + i%4)}
			}
		}
		if spec.Class == attr.FairTag {
			n := 1 << 20
			arr := make([]uint64, n)
			tags := make([]uint64, n)
			for k := range arr {
				arr[k] = uint64(k)
				tags[k] = uint64(10000 + 10*k)
			}
			tagged, err := traffic.NewTagged(arr, tags)
			if err != nil {
				return err
			}
			if err := sched.Admit(i, spec, tagged); err != nil {
				return err
			}
			continue
		}
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if mix && (spec.Class == attr.EDF || spec.Class == attr.WindowConstrained) {
			// Rate-gated real-time sources: the mix stays schedulable and
			// the background classes absorb the residual capacity.
			src = &traffic.Periodic{Gap: uint64(spec.Period), Phase: uint64(i)}
		}
		if err := sched.Admit(i, spec, src); err != nil {
			return err
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sssim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
