package sharestreams_test

import (
	"fmt"

	sharestreams "repro"
)

// The package-level example: build a block-routing scheduler, admit four
// EDF streams with staggered deadlines, run one decision cycle and read the
// sorted block transaction.
func Example() {
	sched, _ := sharestreams.NewScheduler(sharestreams.Config{
		Slots:   4,
		Routing: sharestreams.BlockRouting,
	})
	for i := 0; i < 4; i++ {
		src := &sharestreams.PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
		_ = sched.Admit(i, sharestreams.EDFStream(1), src)
	}
	_ = sched.Start()
	cr := sched.RunCycle()
	fmt.Println("winner:", cr.Winner)
	for _, tx := range cr.Transmissions {
		fmt.Printf("rank %d: slot %d late=%v\n", tx.Rank, tx.Slot, tx.Late)
	}
	// Output:
	// winner: 0
	// rank 0: slot 0 late=false
	// rank 1: slot 1 late=false
	// rank 2: slot 2 late=false
	// rank 3: slot 3 late=false
}

// ExampleNewScheduler_winnerOnly shows the max-finding (WR) configuration:
// one frame per decision cycle, losers charged per-cycle misses when due.
func ExampleNewScheduler_winnerOnly() {
	sched, _ := sharestreams.NewScheduler(sharestreams.Config{
		Slots:   4,
		Routing: sharestreams.WinnerOnly,
	})
	for i := 0; i < 4; i++ {
		src := &sharestreams.PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
		_ = sched.Admit(i, sharestreams.EDFStream(1), src)
	}
	_ = sched.Start()
	sched.RunFor(4000)
	tot := sched.Totals()
	fmt.Println("frames:", tot.Services)
	fmt.Println("missed > 3x frames:", tot.Missed > 3*tot.Services)
	// Output:
	// frames: 4000
	// missed > 3x frames: true
}

// ExampleWindowConstrainedStream shows a DWCS loss-tolerance spec.
func ExampleWindowConstrainedStream() {
	spec := sharestreams.WindowConstrainedStream(4, 1, 4)
	fmt.Println(spec.Class, spec.Constraint, spec.Period)
	// Output: window-constrained 1/4 4
}

// ExampleEndsystemThroughput reproduces the §5.2 operating points.
func ExampleEndsystemThroughput() {
	none, _ := sharestreams.EndsystemThroughput(sharestreams.TransferNone)
	pio, _ := sharestreams.EndsystemThroughput(sharestreams.TransferPIO)
	fmt.Printf("no transfers: %d pps\n", int(none.PacketsPerS))
	fmt.Printf("PIO:          %d pps\n", int(pio.PacketsPerS))
	// Output:
	// no transfers: 469483 pps
	// PIO:          299065 pps
}

// ExampleAggregate binds six streamlets (two weighted sets) to one
// stream-slot.
func ExampleAggregate() {
	mk := func(n int) []sharestreams.HeadSource {
		srcs := make([]sharestreams.HeadSource, n)
		for i := range srcs {
			srcs[i] = &sharestreams.PeriodicTraffic{Gap: 1, Backlogged: true}
		}
		return srcs
	}
	set1, _ := sharestreams.NewStreamletSet(2, mk(3))
	set2, _ := sharestreams.NewStreamletSet(1, mk(3))
	agg, _ := sharestreams.Aggregate(set1, set2)
	for i := 0; i < 9; i++ {
		agg.NextHead()
	}
	s1 := set1.Streamlet(0).Served + set1.Streamlet(1).Served + set1.Streamlet(2).Served
	s2 := set2.Streamlet(0).Served + set2.Streamlet(1).Served + set2.Streamlet(2).Served
	fmt.Printf("set1:set2 = %d:%d\n", s1, s2)
	// Output: set1:set2 = 6:3
}

// ExampleEstimateArea reproduces the §5.1 area accounting.
func ExampleEstimateArea() {
	area, _ := sharestreams.EstimateArea(32, 0) // BA
	fmt.Println("slices:", area.TotalSlices())
	fmt.Println("fits Virtex-1000:", area.FitsVirtex1000())
	// Output:
	// slices: 8630
	// fits Virtex-1000: true
}
