// Aggregation: the Figure 10 scenario — scale beyond the FPGA's stream-slot
// count by binding many streamlets to each Register Base block. 100
// best-effort streamlets share each of four stream-slots allocated 2/2/4/8
// MB/s; slot 4 carries two weighted streamlet sets (set 1 at double set 2's
// bandwidth). The round-robin among streamlets runs on cheap processor
// memory while the FPGA provides aggregate QoS per slot.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
	"repro/internal/experiments"
)

func main() {
	// The aggregation machinery directly: 6 streamlets in two sets (2:1).
	mk := func(n int) []sharestreams.HeadSource {
		srcs := make([]sharestreams.HeadSource, n)
		for i := range srcs {
			srcs[i] = &sharestreams.PeriodicTraffic{Gap: 1, Backlogged: true}
		}
		return srcs
	}
	set1, err := sharestreams.NewStreamletSet(2, mk(3))
	if err != nil {
		log.Fatal(err)
	}
	set2, err := sharestreams.NewStreamletSet(1, mk(3))
	if err != nil {
		log.Fatal(err)
	}
	agg, err := sharestreams.Aggregate(set1, set2)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := sharestreams.NewScheduler(sharestreams.Config{Slots: 2, Routing: sharestreams.WinnerOnly})
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Admit(0, sharestreams.EDFStream(1), agg); err != nil {
		log.Fatal(err)
	}
	if err := sched.Start(); err != nil {
		log.Fatal(err)
	}
	sched.RunFor(900)
	fmt.Println("one stream-slot, two streamlet sets (weights 2:1), 900 services:")
	for s := 0; s < agg.Sets(); s++ {
		set := agg.Set(s)
		for k := 0; k < set.Size(); k++ {
			fmt.Printf("  set %d streamlet %d: served %d\n", s+1, k+1, set.Streamlet(k).Served)
		}
	}

	// The full Figure 10 run.
	fmt.Println("\nFigure 10 — 100 streamlets per slot over 2/2/4/8 MB/s:")
	res, err := experiments.Fig10(experiments.Fig10Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}
