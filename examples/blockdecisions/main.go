// Blockdecisions: the Table 3 experiment — deadline-constrained real-time
// streams under the three architectural configurations of §5.1:
//
//   - max-finding (winner-only routing): one frame per decision cycle; with
//     four streams requested every cycle, nearly every deadline misses;
//   - block max-first: the whole sorted block transmits as one transaction
//     per decision cycle, head first — every deadline met, 4x scheduler
//     throughput;
//   - block min-first: circulating/transmitting from the block tail
//     violates the earliest-deadline stream every cycle.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
)

func main() {
	res, err := sharestreams.Table3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 3 — Comparing Block Decisions and Max-finding")
	fmt.Println("(4 EDF streams, successive deadlines 1 apart, T_i = 1, 64000 frames)")
	fmt.Println()
	fmt.Print(res.Format())
	fmt.Println("\nReading the table:")
	fmt.Println(" - max-finding needs 64000 decision cycles for 64000 frames and misses ~256k deadlines;")
	fmt.Println(" - block max-first needs only 16000 cycles (throughput x block size) and misses none;")
	fmt.Println(" - block min-first shows why the circulated end matters: the earliest-deadline")
	fmt.Println("   stream leaves the transaction last and misses every cycle.")
}
