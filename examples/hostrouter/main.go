// Hostrouter: the full Endsystem/Host-router realization of Figure 3 — a
// producer filling per-stream queues, the FPGA scheduler draining them
// through the Queue Manager, and a Transmission Engine streaming scheduled
// frames to the network, all concurrently over synchronization-free rings.
//
// It prints the §5.2 operating points (packets/second with PCI transfers
// excluded, with PIO, and with pull DMA) and then actually runs the
// three-stage pipeline to demonstrate frame conservation under concurrency.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
	"repro/internal/endsystem"
)

func main() {
	fmt.Println("ShareStreams endsystem operating points (Pentium III 550 class host):")
	for _, mode := range []sharestreams.TransferMode{
		sharestreams.TransferNone, sharestreams.TransferPIO, sharestreams.TransferDMA,
	} {
		op, err := sharestreams.EndsystemThroughput(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  transfers=%-5s host %.2fµs + pci %.2fµs per packet -> %8.0f packets/s\n",
			op.Mode, op.HostNs/1e3, op.TransferNs/1e3, op.PacketsPerS)
	}

	fmt.Println("\nrunning the concurrent pipeline (4 streams x 16000 frames)...")
	res, err := endsystem.RunPipeline(4, 16000, sharestreams.TransferPIO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d frames (", res.Frames)
	for i, n := range res.PerStream {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("stream %d: %d", i+1, n)
	}
	fmt.Printf(")\nmodeled time %.1f ms at %.0f packets/s\n", res.VirtualNs/1e6, res.PacketsPerS)
}
