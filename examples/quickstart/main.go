// Quickstart: build a 4-slot ShareStreams scheduler in the block (BA)
// configuration, admit four EDF streams with staggered deadlines, and watch
// a few decision cycles produce sorted block transactions.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
)

func main() {
	sched, err := sharestreams.NewScheduler(sharestreams.Config{
		Slots:   4,
		Routing: sharestreams.BlockRouting, // BA: the whole sorted block per cycle
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four always-backlogged EDF streams whose initial deadlines are one
	// time unit apart (the Table 3 workload shape).
	for i := 0; i < 4; i++ {
		src := &sharestreams.PeriodicTraffic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := sched.Admit(i, sharestreams.EDFStream(1), src); err != nil {
			log.Fatal(err)
		}
	}
	if err := sched.Start(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycle | circulated winner | block transaction (slot@rank, *=late)")
	for c := 0; c < 8; c++ {
		cr := sched.RunCycle()
		fmt.Printf("%5d | slot %d            |", cr.Decision, cr.Winner)
		for _, tx := range cr.Transmissions {
			late := " "
			if tx.Late {
				late = "*"
			}
			fmt.Printf(" %d@%d%s", tx.Slot, tx.Rank, late)
		}
		fmt.Println()
	}

	sched.RunFor(10000)
	tot := sched.Totals()
	fmt.Printf("\nafter %d decision cycles: %d frames, %d met, %d missed (%d hardware clocks)\n",
		sched.Decisions(), tot.Services, tot.Met, tot.Missed, sched.HWCycles())
}
