// Videoserver: the paper's §1 motivating workload — a server cluster
// serving a mix of real-time media streams, best-effort web traffic and
// background transfers through one ShareStreams scheduler.
//
// One DWCS datapath serves:
//   - two EDF video streams (30 fps and 60 fps frame deadlines),
//   - a window-constrained stream that tolerates 1 loss per window of 4
//     (e.g. a lossy telemetry feed),
//   - a static-priority control channel,
//   - fair-share best-effort web traffic on the remaining bandwidth.
//
// The example then runs the Figure 8-style allocation to show the
// bandwidth split the scheduler enforces.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
)

func main() {
	sched, err := sharestreams.NewScheduler(sharestreams.Config{
		Slots:   8,
		Routing: sharestreams.WinnerOnly,
	})
	if err != nil {
		log.Fatal(err)
	}

	admit := func(slot int, spec sharestreams.StreamSpec, src sharestreams.HeadSource) {
		if err := sched.Admit(slot, spec, src); err != nil {
			log.Fatal(err)
		}
	}

	// Real-time video: a frame due every period. 60 fps gets a period of
	// 8 time units, 30 fps a period of 16 (time unit ≈ 2 ms here). The
	// sources are rate-gated — real encoders emit frames on schedule —
	// so the scheduler hands unused cycles to best-effort traffic.
	admit(0, sharestreams.EDFStream(8), &sharestreams.PeriodicTraffic{Gap: 8})
	admit(1, sharestreams.EDFStream(16), &sharestreams.PeriodicTraffic{Gap: 16})

	// Lossy telemetry: deadline every 4 units, tolerate 1 late per 4.
	admit(2, sharestreams.WindowConstrainedStream(4, 1, 4),
		&sharestreams.PeriodicTraffic{Gap: 4})

	// Control channel: static priority, ahead of best-effort when due.
	admit(3, sharestreams.StaticPriorityStream(20000),
		&sharestreams.PeriodicTraffic{Gap: 64})

	// Best-effort web traffic: fair-share tags from the Queue Manager.
	// Tags are virtual times and must advance at most as fast as the
	// clock so the 16-bit comparator never sees them wrap past the
	// real-time deadlines.
	arr := make([]uint64, 1<<16)
	tags := make([]uint64, 1<<16)
	for i := range arr {
		arr[i] = uint64(i)
		tags[i] = uint64(30000 + i)
	}
	web, err := sharestreams.NewTaggedTraffic(arr, tags)
	if err != nil {
		log.Fatal(err)
	}
	admit(4, sharestreams.FairShareStream(2), web)

	if err := sched.Start(); err != nil {
		log.Fatal(err)
	}
	sched.RunFor(20000)

	fmt.Println("mixed-discipline schedule after 20000 decision cycles:")
	names := []string{"video 60fps (EDF)", "video 30fps (EDF)", "telemetry (DWCS 1/4)",
		"control (static)", "web (fair-share)"}
	for i, name := range names {
		c := sched.SlotCounters(i)
		fmt.Printf("  %-22s served %6d, met %6d, missed %6d, violations %d\n",
			name, c.Services, c.Met, c.Missed, c.Violations)
	}

	// Bandwidth enforcement: the Figure 8 scenario — 1:1:2:4 over 16 MB/s.
	fmt.Println("\nfair bandwidth allocation (1:1:2:4 over a 16 MB/s link):")
	res, err := sharestreams.RunAllocation(sharestreams.AllocationConfig{
		RatesMBps:     []float64{2, 2, 4, 8},
		FramesPerSlot: 16000,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, want := range []float64{2, 2, 4, 8} {
		pts := res.TE.Bandwidth(i)
		var early float64
		n := len(pts) / 5
		for _, p := range pts[:n] {
			early += p.Y
		}
		fmt.Printf("  stream %d: target %.0f MB/s, measured %.2f MB/s\n", i+1, want, early/float64(n))
	}
}
