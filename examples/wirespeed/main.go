// Wirespeed: the switch line-card realization of Figure 2 — no host in the
// scheduling loop, dual-ported SRAM between the switch fabric and the FPGA
// scheduler, admission control sizing the stream set, and the wire-speed
// feasibility calculator of Figure 1.
package main

import (
	"fmt"
	"log"

	sharestreams "repro"
	"repro/internal/core"
	"repro/internal/fpga"
)

func main() {
	// Admission control first: a 32-slot card; admit real-time streams
	// until the link saturates.
	ctrl, err := sharestreams.NewAdmissionController(32)
	if err != nil {
		log.Fatal(err)
	}
	var specs []sharestreams.StreamSpec
	for i := 0; ; i++ {
		spec := sharestreams.EDFStream(uint16(8 + i%16)) // periods 8..23
		if err := ctrl.TryAdmit(spec); err != nil {
			fmt.Printf("admission stopped after %d streams: %v\n", len(specs), err)
			break
		}
		specs = append(specs, spec)
	}
	fmt.Printf("residual best-effort capacity: %.1f%%\n\n", ctrl.Residual()*100)

	// Build the card with the admitted set.
	card, err := sharestreams.NewLineCard(sharestreams.LineCardConfig{
		Slots:   32,
		Routing: core.BlockRouting,
		Device:  fpga.VirtexI,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, spec := range specs {
		if err := card.Admit(i, spec); err != nil {
			log.Fatal(err)
		}
	}
	if err := card.Start(); err != nil {
		log.Fatal(err)
	}

	// A two-ingress VOQ crossbar feeds the card (Figure 2's switch
	// fabric): packets arrive at the input ports, win crossbar grants,
	// land in the card's dual-ported SRAM, and the scheduler drains them.
	fab, err := sharestreams.NewSwitchFabric(2, []sharestreams.SwitchFabricOutput{card.SRAM()})
	if err != nil {
		log.Fatal(err)
	}
	const cycles = 20000
	for n := 0; n < cycles; n++ {
		if err := fab.Ingest(n%2, sharestreams.FabricPacket{
			Output: 0, Stream: n % len(specs), Arrival: uint64(n),
		}); err != nil {
			log.Fatal(err)
		}
		fab.Step()
		card.RunCycle()
	}
	card.DrainTransceiver()
	fmt.Printf("fabric: %d ingress, %d delivered, %d drops\n\n",
		fab.Ingress, fab.Delivered, fab.CardDrops)

	fmt.Println(card)
	r := card.Rates()
	fmt.Printf("decision: %d clocks at %.0f MHz -> %.2fM decisions/s, %.1fM frames/s\n\n",
		r.CyclesPerDec, r.ClockMHz, r.DecisionsPerS/1e6, r.FramesPerS/1e6)

	fmt.Printf("%-10s %-8s %s\n", "frame", "link", "wire-speed?")
	for _, fb := range []int{64, 1500} {
		for _, g := range []float64{fpga.Gigabit, fpga.TenGigabit} {
			fmt.Printf("%-10s %-8s %v\n",
				fmt.Sprintf("%dB", fb), fmt.Sprintf("%.0fG", g/1e9), card.MeetsWireSpeed(fb, g))
		}
	}

	// Aggregation delay bound (§6): what a 100-streamlet slot can promise.
	d, _ := sharestreams.AggregateDelayBound(100, 8)
	fmt.Printf("\na 100-streamlet aggregate at period 8 guarantees delay ≤ %.0f time units\n", d)
}
