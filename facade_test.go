package sharestreams

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fpga"
)

func TestLineCardFacade(t *testing.T) {
	card, err := NewLineCard(LineCardConfig{Slots: 4, Routing: core.BlockRouting})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := card.Admit(i, EDFStream(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := card.Start(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		for i := 0; i < 4; i++ {
			card.SRAM().FabricArrival(i, uint64(n))
		}
		card.RunCycle()
	}
	card.DrainTransceiver()
	var total uint64
	for i := 0; i < 4; i++ {
		total += card.Drained(i)
	}
	if total != 400 {
		t.Fatalf("line card drained %d frames, want 400", total)
	}
	if !card.MeetsWireSpeed(1500, fpga.TenGigabit) {
		t.Error("4-slot BA card should meet 1500B@10G")
	}
}

func TestAdmissionFacade(t *testing.T) {
	ctrl, err := NewAdmissionController(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.TryAdmit(EDFStream(2)); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.TryAdmit(EDFStream(2)); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.TryAdmit(EDFStream(4)); err == nil {
		t.Fatal("overcommit admitted")
	}
	d, err := AggregateDelayBound(100, 8)
	if err != nil || d != 800 {
		t.Fatalf("delay bound = %v (%v)", d, err)
	}
}

func TestRunAllocationFacade(t *testing.T) {
	res, err := RunAllocation(AllocationConfig{RatesMBps: []float64{2, 2, 4}, FramesPerSlot: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.TE.Frames(0)+res.TE.Frames(1)+res.TE.Frames(2) != 1200 {
		t.Fatalf("frames = %d", res.TE.Frames(0)+res.TE.Frames(1)+res.TE.Frames(2))
	}
}

func TestHeavyExperimentFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale runs")
	}
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCyclesBlock != 16000 {
		t.Fatalf("block cycles = %d", res.TotalCyclesBlock)
	}
	f9, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if f9.Mean[3] >= f9.Mean[0] {
		t.Error("fig9 stream-4 delay ordering broken")
	}
	f10, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.SetShare[3]) != 2 {
		t.Error("fig10 slot 4 sets missing")
	}
}
