// Package admission provides the schedulability checks behind Figure 1's
// framework ("QoS bounds" × "scale" × "scheduling rate"): before a stream
// is bound to a stream-slot, the Queue Manager can verify that the
// requested service constraints are jointly feasible on the output link.
//
// Checks implemented:
//
//   - EDF streams demand one frame per request period; their bandwidth
//     utilization Σ 1/Tᵢ must not exceed 1 (frame times per time unit).
//   - Window-constrained (DWCS) streams may lose xᵢ of every yᵢ frames, so
//     their *minimum* demand is (1 − xᵢ/yᵢ)/Tᵢ; the feasibility condition
//     from the DWCS analysis is Σ (1 − xᵢ/yᵢ)/Tᵢ ≤ 1 for unit-size frames.
//   - Static-priority and fair-share streams are best-effort from the
//     real-time test's point of view: they consume the residual capacity
//     and are always admissible, but the controller reports the residual
//     so callers can size their weights.
//
// The package also computes the aggregate delay bound a stream-slot can
// promise under aggregation (§6: "Stream-specific deadlines are not
// possible with aggregation, although the stream-slot they are bound to
// will be guaranteed a delay-bound").
package admission

import (
	"fmt"

	"repro/internal/attr"
)

// Controller tracks admitted specs against a slot budget and the link's
// real-time capacity.
type Controller struct {
	slots    int
	admitted []attr.Spec
}

// New builds a controller for a scheduler with the given stream-slot count.
func New(slots int) (*Controller, error) {
	if slots < 1 {
		return nil, fmt.Errorf("admission: %d slots", slots)
	}
	return &Controller{slots: slots}, nil
}

// demand returns a spec's guaranteed-rate demand in frames per time unit.
func demand(s attr.Spec) float64 {
	switch s.Class {
	case attr.EDF:
		return 1 / float64(s.Period)
	case attr.WindowConstrained:
		w := 0.0
		if s.Constraint.Den != 0 {
			w = float64(s.Constraint.Num) / float64(s.Constraint.Den)
		}
		return (1 - w) / float64(s.Period)
	default:
		return 0 // best-effort: no guaranteed demand
	}
}

// Utilization returns the total guaranteed-rate demand of a spec set.
func Utilization(specs []attr.Spec) float64 {
	var u float64
	for _, s := range specs {
		u += demand(s)
	}
	return u
}

// Admitted returns the number of admitted streams.
func (c *Controller) Admitted() int { return len(c.admitted) }

// Residual returns the link capacity left for best-effort traffic
// (1 − utilization, clamped at 0).
func (c *Controller) Residual() float64 {
	r := 1 - Utilization(c.admitted)
	if r < 0 {
		return 0
	}
	return r
}

// TryAdmit checks spec against the slot budget and the schedulability
// condition and, if feasible, records it. The returned error explains the
// rejection.
func (c *Controller) TryAdmit(spec attr.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(c.admitted) >= c.slots {
		return fmt.Errorf("admission: all %d stream-slots bound (aggregate with streamlets instead)", c.slots)
	}
	if u := Utilization(c.admitted) + demand(spec); u > 1+1e-12 {
		return fmt.Errorf("admission: utilization %.3f would exceed the link (class %v, demand %.3f)",
			u, spec.Class, demand(spec))
	}
	c.admitted = append(c.admitted, spec)
	return nil
}

// Release removes the most recently admitted matching spec (stream
// departure). It reports whether a stream was released.
func (c *Controller) Release(spec attr.Spec) bool {
	for i := len(c.admitted) - 1; i >= 0; i-- {
		if c.admitted[i] == spec {
			c.admitted = append(c.admitted[:i], c.admitted[i+1:]...)
			return true
		}
	}
	return false
}

// AggregateDelayBound returns the worst-case queuing delay (in time units)
// a frame entering a stream-slot aggregate of n round-robin streamlets can
// see, given the slot's request period T: the slot is served once per T in
// the worst case, and a newly arrived frame waits behind at most one frame
// from each other streamlet plus its own slot turn:
//
//	D ≤ (n) · T
//
// This is the "delay-bound the stream-slot is guaranteed" under
// aggregation; per-streamlet deadlines are not expressible (§6).
func AggregateDelayBound(streamlets int, period uint16) (float64, error) {
	if streamlets < 1 {
		return 0, fmt.Errorf("admission: %d streamlets", streamlets)
	}
	if period == 0 {
		return 0, fmt.Errorf("admission: zero period")
	}
	return float64(streamlets) * float64(period), nil
}
