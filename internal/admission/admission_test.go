package admission

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

func edf(period uint16) attr.Spec { return attr.Spec{Class: attr.EDF, Period: period} }

func wc(period uint16, x, y uint8) attr.Spec {
	return attr.Spec{Class: attr.WindowConstrained, Period: period, Constraint: attr.Constraint{Num: x, Den: y}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted zero slots")
	}
}

func TestUtilization(t *testing.T) {
	specs := []attr.Spec{
		edf(4),      // 0.25
		edf(2),      // 0.5
		wc(4, 1, 4), // (1-0.25)/4 = 0.1875
		{Class: attr.StaticPriority, Priority: 1}, // 0
		{Class: attr.FairTag, Weight: 3},          // 0
	}
	if got := Utilization(specs); math.Abs(got-0.9375) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.9375", got)
	}
}

func TestWCLossToleranceReducesDemand(t *testing.T) {
	// A DWCS stream that tolerates half its frames being lost demands
	// half the bandwidth of the equivalent EDF stream.
	strict := Utilization([]attr.Spec{edf(4)})
	lossy := Utilization([]attr.Spec{wc(4, 2, 4)})
	if math.Abs(lossy-strict/2) > 1e-12 {
		t.Fatalf("lossy demand %v, want %v", lossy, strict/2)
	}
	// Undefined constraint (y=0) counts as zero tolerance.
	undef := Utilization([]attr.Spec{wc(4, 3, 0)})
	if math.Abs(undef-strict) > 1e-12 {
		t.Fatalf("undefined-constraint demand %v, want %v", undef, strict)
	}
}

func TestTryAdmitCapacity(t *testing.T) {
	c, _ := New(4)
	// 2 streams at T=2 fill the link exactly.
	if err := c.TryAdmit(edf(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.TryAdmit(edf(2)); err != nil {
		t.Fatal(err)
	}
	// Any further guaranteed demand must be rejected…
	if err := c.TryAdmit(edf(1000)); err == nil {
		t.Fatal("overcommitted the link")
	}
	// …but best-effort streams still fit.
	if err := c.TryAdmit(attr.Spec{Class: attr.FairTag, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if c.Admitted() != 3 {
		t.Fatalf("admitted = %d", c.Admitted())
	}
	if r := c.Residual(); r != 0 {
		t.Fatalf("residual = %v, want 0", r)
	}
}

func TestTryAdmitSlotBudget(t *testing.T) {
	c, _ := New(2)
	if err := c.TryAdmit(edf(8)); err != nil {
		t.Fatal(err)
	}
	if err := c.TryAdmit(edf(8)); err != nil {
		t.Fatal(err)
	}
	if err := c.TryAdmit(edf(8)); err == nil {
		t.Fatal("exceeded the slot budget")
	}
}

func TestTryAdmitRejectsInvalidSpec(t *testing.T) {
	c, _ := New(4)
	if err := c.TryAdmit(attr.Spec{Class: attr.EDF}); err == nil {
		t.Fatal("accepted invalid spec")
	}
}

func TestRelease(t *testing.T) {
	c, _ := New(4)
	c.TryAdmit(edf(2))
	c.TryAdmit(edf(4))
	if !c.Release(edf(2)) {
		t.Fatal("release failed")
	}
	if c.Release(edf(2)) {
		t.Fatal("double release succeeded")
	}
	if got := c.Residual(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("residual after release = %v", got)
	}
}

// TestAdmittedSetsAreSchedulable is the integration property: any EDF set
// the controller admits actually meets every deadline on the cycle-accurate
// scheduler when sources arrive at their declared rates.
func TestAdmittedSetsAreSchedulable(t *testing.T) {
	f := func(raw [4]uint8) bool {
		c, _ := New(4)
		var periods []uint16
		for _, r := range raw {
			p := uint16(r%16) + 2 // 2..17
			if c.TryAdmit(edf(p)) == nil {
				periods = append(periods, p)
			}
		}
		if len(periods) == 0 {
			return true
		}
		sched, err := core.New(core.Config{Slots: 4, Routing: core.WinnerOnly})
		if err != nil {
			return false
		}
		for i, p := range periods {
			src := &traffic.Periodic{Gap: uint64(p), Phase: uint64(i)}
			if err := sched.Admit(i, edf(p), src); err != nil {
				return false
			}
		}
		if err := sched.Start(); err != nil {
			return false
		}
		sched.RunFor(2000)
		return sched.Totals().Missed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAggregateDelayBound(t *testing.T) {
	if _, err := AggregateDelayBound(0, 4); err == nil {
		t.Error("accepted zero streamlets")
	}
	if _, err := AggregateDelayBound(10, 0); err == nil {
		t.Error("accepted zero period")
	}
	d, err := AggregateDelayBound(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 800 {
		t.Fatalf("bound = %v, want 800", d)
	}
}
