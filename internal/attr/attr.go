// Package attr defines the per-stream service attributes that flow through
// the ShareStreams datapath and the bit-level encodings the hardware uses.
//
// A Register Base block supplies a 53-bit attribute word to its Decision
// block each cycle (Figure 4 of the paper): a 16-bit packet deadline, an
// 8-bit loss numerator, an 8-bit loss denominator, a 16-bit arrival time and
// a 5-bit register (stream-slot) ID. This package provides the field types,
// the packed word layout, and the wrap-aware 16-bit time arithmetic the
// hardware comparators use.
//
// Deadlines and arrival times are free-running 16-bit counters, so long runs
// wrap. Comparisons therefore use serial-number arithmetic (RFC 1982 style):
// a is "before" b iff the signed 16-bit difference a-b is negative. This is
// exactly what a hardware subtract-and-test-sign comparator computes, and it
// is correct as long as live deadlines stay within half the wrap period
// (32768 ticks) of each other.
package attr

import (
	"fmt"
	"strings"
)

// SlotID identifies a Register Base block (stream-slot). The paper's
// prototype exchanges 5-bit stream IDs with the host, supporting up to 32
// slots on a Virtex-1000; the model widens the type so larger synthetic
// designs can be explored, while EncodeWord enforces the 5-bit prototype
// layout.
type SlotID uint16

// Time16 is a free-running 16-bit hardware time value (deadline or arrival
// time). Arithmetic wraps modulo 2^16.
type Time16 uint16

// Before reports whether t is strictly earlier than u in wrap-aware
// (serial-number) order.
func (t Time16) Before(u Time16) bool { return int16(t-u) < 0 }

// After reports whether t is strictly later than u in wrap-aware order.
func (t Time16) After(u Time16) bool { return int16(t-u) > 0 }

// Add advances t by d ticks, wrapping.
func (t Time16) Add(d uint16) Time16 { return t + Time16(d) }

// Sub returns the signed distance t-u, valid while |t-u| < 2^15.
func (t Time16) Sub(u Time16) int { return int(int16(t - u)) }

// WrapTime truncates a 64-bit virtual time to the 16-bit hardware field, the
// way the Stream processor truncates arrival-time offsets before pushing
// them over PCI.
func WrapTime(v uint64) Time16 { return Time16(v & 0xFFFF) }

// Class selects how a stream-slot's attribute word is interpreted and
// updated. This is the paper's "unified canonical architecture" insight: one
// datapath serves every discipline; only attribute loading/update differs.
type Class uint8

const (
	// WindowConstrained is full DWCS: deadlines plus loss-tolerance
	// (window-constraint) attributes, updated every decision cycle.
	WindowConstrained Class = iota
	// EDF uses deadlines only; the loss fields are zeroed and the winner's
	// deadline advances by its request period on service.
	EDF
	// StaticPriority stores a time-invariant priority in the deadline
	// field; PRIORITY_UPDATE is bypassed.
	StaticPriority
	// FairTag stores a per-packet service tag (virtual start/finish time)
	// in the deadline field, computed by the Queue Manager; the tag does
	// not change once the packet is queued, so PRIORITY_UPDATE is bypassed
	// and new tags are loaded as packets are dequeued.
	FairTag
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case WindowConstrained:
		return "window-constrained"
	case EDF:
		return "edf"
	case StaticPriority:
		return "static-priority"
	case FairTag:
		return "fair-tag"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Attributes is the unpacked per-stream service attribute set held in a
// Register Base block and compared by a Decision block.
type Attributes struct {
	Deadline Time16 // packet deadline (EDF/DWCS), priority (static), or service tag (fair)
	LossNum  uint8  // window-constraint numerator x: packets that may be late/lost...
	LossDen  uint8  // ...per window of y=LossDen consecutive packets in the stream
	Arrival  Time16 // head-packet arrival time (FCFS tie-break)
	Slot     SlotID // owning Register Base block
	Valid    bool   // slot holds a backlogged stream (empty slots always lose)
}

// Word is the packed 53-bit attribute word on the Decision block input bus,
// stored in a uint64. Bit layout (LSB first):
//
//	[15:0]  deadline
//	[23:16] loss numerator
//	[31:24] loss denominator
//	[47:32] arrival time
//	[52:48] slot ID (5 bits)
//	[53]    valid
type Word uint64

const (
	wordDeadlineShift = 0
	wordLossNumShift  = 16
	wordLossDenShift  = 24
	wordArrivalShift  = 32
	wordSlotShift     = 48
	wordValidShift    = 53

	// MaxPrototypeSlots is the largest slot count addressable by the
	// 5-bit stream IDs of the Virtex-I prototype.
	MaxPrototypeSlots = 32
)

// EncodeWord packs a into the prototype's 53-bit bus layout. It returns an
// error if the slot ID does not fit the 5-bit field.
func EncodeWord(a Attributes) (Word, error) {
	if a.Slot >= MaxPrototypeSlots {
		return 0, fmt.Errorf("attr: slot %d exceeds 5-bit prototype field (max %d)", a.Slot, MaxPrototypeSlots-1)
	}
	w := Word(a.Deadline)<<wordDeadlineShift |
		Word(a.LossNum)<<wordLossNumShift |
		Word(a.LossDen)<<wordLossDenShift |
		Word(a.Arrival)<<wordArrivalShift |
		Word(a.Slot)<<wordSlotShift
	if a.Valid {
		w |= 1 << wordValidShift
	}
	return w, nil
}

// DecodeWord unpacks a 53-bit attribute word.
func DecodeWord(w Word) Attributes {
	return Attributes{
		Deadline: Time16(w >> wordDeadlineShift),
		LossNum:  uint8(w >> wordLossNumShift),
		LossDen:  uint8(w >> wordLossDenShift),
		Arrival:  Time16(w >> wordArrivalShift),
		Slot:     SlotID((w >> wordSlotShift) & 0x1F),
		Valid:    w>>wordValidShift&1 == 1,
	}
}

// Constraint is a stream's window-constraint (loss-tolerance) W = x/y: up to
// x of every y consecutive packets may be late or lost.
type Constraint struct {
	Num uint8 // x, loss numerator
	Den uint8 // y, loss denominator (window)
}

// Zero reports whether the constraint is the zero tolerance W = 0 (no losses
// permitted). The paper's ordering rules special-case this.
func (c Constraint) Zero() bool { return c.Num == 0 }

// Cmp orders two window-constraints by value without division, the way the
// Decision block's cross-multiplier does: it returns -1 if c < d (c is the
// tighter/lower constraint, i.e. higher priority under "lowest
// window-constraint first"), 0 if equal, +1 if c > d.
//
// A zero denominator makes the ratio undefined; hardware treats x/0 as the
// loosest possible constraint (it never demands service), ordering it after
// every well-formed constraint. Two undefined constraints compare equal.
func (c Constraint) Cmp(d Constraint) int {
	cUndef, dUndef := c.Den == 0, d.Den == 0
	switch {
	case cUndef && dUndef:
		return 0
	case cUndef:
		return 1
	case dUndef:
		return -1
	}
	// Cross-multiply: c.Num/c.Den <=> d.Num/d.Den  ==>  c.Num*d.Den <=> d.Num*c.Den.
	// 8-bit operands keep the products in 16 bits — the Virtex-II
	// extension maps these onto hard multipliers.
	lhs := uint16(c.Num) * uint16(d.Den)
	rhs := uint16(d.Num) * uint16(c.Den)
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// String formats the constraint as "x/y".
func (c Constraint) String() string { return fmt.Sprintf("%d/%d", c.Num, c.Den) }

// Constraint returns the attribute word's window-constraint.
func (a Attributes) Constraint() Constraint { return Constraint{Num: a.LossNum, Den: a.LossDen} }

// String renders the word for traces and diagnostics.
func (a Attributes) String() string {
	if !a.Valid {
		return fmt.Sprintf("slot%d<empty>", a.Slot)
	}
	return fmt.Sprintf("slot%d{d=%d w=%d/%d a=%d}", a.Slot, a.Deadline, a.LossNum, a.LossDen, a.Arrival)
}

// Spec is the user-facing stream specification handed to the Queue Manager
// when a stream is admitted: the service constraints of §2 ("DWCS
// Background") plus the attribute class that selects the discipline.
type Spec struct {
	Class Class
	// Period is the request period T: the interval between deadlines of
	// successive packets in the stream (EDF and window-constrained
	// classes). The end of each period is the deadline by which the next
	// packet must be scheduled.
	Period uint16
	// Constraint is the loss-tolerance W = x/y (window-constrained class).
	Constraint Constraint
	// Priority is the static priority (StaticPriority class); lower values
	// are served first, matching earliest-deadline-first comparison on the
	// shared deadline field.
	Priority uint16
	// Weight is the fair-share weight (FairTag class); service tags are
	// computed as virtual times advancing inversely to Weight.
	Weight uint16
	// Guard is the starvation guard for StaticPriority streams: a head that
	// has waited Guard virtual ticks past its arrival is boosted to the
	// front (deadline field 0) until served, bounding the starvation a
	// low-priority stream can suffer under sustained high-priority load.
	// Zero disables the guard. When set, Priority must stay below 2^15 so
	// the boosted value 0 orders before every unboosted priority under the
	// wrap-aware compare.
	Guard uint16
}

// String summarizes the spec in the class's natural terms.
func (s Spec) String() string {
	switch s.Class {
	case WindowConstrained:
		return fmt.Sprintf("dwcs(T=%d, W=%s)", s.Period, s.Constraint)
	case EDF:
		return fmt.Sprintf("edf(T=%d)", s.Period)
	case StaticPriority:
		if s.Guard != 0 {
			return fmt.Sprintf("static(p=%d, guard=%d)", s.Priority, s.Guard)
		}
		return fmt.Sprintf("static(p=%d)", s.Priority)
	case FairTag:
		return fmt.Sprintf("fair(w=%d)", s.Weight)
	default:
		return fmt.Sprintf("spec(class=%d)", uint8(s.Class))
	}
}

// ParseSpec is the inverse of Spec.String: it resolves the class from the
// leading keyword, scans the class's natural terms, and accepts a string
// exactly when re-rendering the parsed spec reproduces it byte for byte.
// That round-trip rule is what lets the control-plane journal embed specs in
// transition lines and replay them without a second grammar.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	switch {
	case strings.HasPrefix(s, "dwcs("):
		spec.Class = WindowConstrained
		if _, err := fmt.Sscanf(s, "dwcs(T=%d, W=%d/%d)",
			&spec.Period, &spec.Constraint.Num, &spec.Constraint.Den); err != nil {
			return Spec{}, fmt.Errorf("attr: malformed dwcs spec %q: %v", s, err)
		}
	case strings.HasPrefix(s, "edf("):
		spec.Class = EDF
		if _, err := fmt.Sscanf(s, "edf(T=%d)", &spec.Period); err != nil {
			return Spec{}, fmt.Errorf("attr: malformed edf spec %q: %v", s, err)
		}
	case strings.HasPrefix(s, "static("):
		spec.Class = StaticPriority
		if strings.Contains(s, "guard=") {
			if _, err := fmt.Sscanf(s, "static(p=%d, guard=%d)", &spec.Priority, &spec.Guard); err != nil {
				return Spec{}, fmt.Errorf("attr: malformed static spec %q: %v", s, err)
			}
		} else if _, err := fmt.Sscanf(s, "static(p=%d)", &spec.Priority); err != nil {
			return Spec{}, fmt.Errorf("attr: malformed static spec %q: %v", s, err)
		}
	case strings.HasPrefix(s, "fair("):
		spec.Class = FairTag
		if _, err := fmt.Sscanf(s, "fair(w=%d)", &spec.Weight); err != nil {
			return Spec{}, fmt.Errorf("attr: malformed fair spec %q: %v", s, err)
		}
	default:
		return Spec{}, fmt.Errorf("attr: unknown spec class in %q", s)
	}
	if got := spec.String(); got != s {
		return Spec{}, fmt.Errorf("attr: spec %q does not round-trip (canonical form %q)", s, got)
	}
	return spec, nil
}

// Validate checks that the spec is self-consistent for its class.
func (s Spec) Validate() error {
	switch s.Class {
	case WindowConstrained:
		if s.Period == 0 {
			return fmt.Errorf("attr: window-constrained stream needs a nonzero request period")
		}
		if s.Constraint.Den != 0 && s.Constraint.Num > s.Constraint.Den {
			return fmt.Errorf("attr: loss numerator %d exceeds denominator %d", s.Constraint.Num, s.Constraint.Den)
		}
	case EDF:
		if s.Period == 0 {
			return fmt.Errorf("attr: EDF stream needs a nonzero request period")
		}
	case StaticPriority:
		// Any priority is fine without a guard; with one, the boosted
		// deadline 0 must order before the priority in serial-number order.
		if s.Guard != 0 && s.Priority >= 1<<15 {
			return fmt.Errorf("attr: guarded static priority %d must stay below 2^15", s.Priority)
		}
	case FairTag:
		if s.Weight == 0 {
			return fmt.Errorf("attr: fair-share stream needs a nonzero weight")
		}
	default:
		return fmt.Errorf("attr: unknown class %d", s.Class)
	}
	if s.Guard != 0 && s.Class != StaticPriority {
		return fmt.Errorf("attr: starvation guard is a static-priority knob (class %v)", s.Class)
	}
	return nil
}
