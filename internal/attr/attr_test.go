package attr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTime16BeforeBasic(t *testing.T) {
	cases := []struct {
		a, b   Time16
		before bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{0xFFFF, 0, true},   // wrap: 65535 is just before 0
		{0, 0xFFFF, false},  // and 0 is after 65535
		{0x7FFF, 0, false},  // half-range boundary: 32767 - 0 = 32767 > 0
		{0x8000, 0, true},   // 32768 - 0 wraps negative
		{100, 0x8000, true}, // far apart within half range
		{0xFFF0, 16, true},  // wrap across zero
		{16, 0xFFF0, false}, // symmetric
		{40000, 39999, false},
		{39999, 40000, true},
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.before {
			t.Errorf("Time16(%d).Before(%d) = %v, want %v", c.a, c.b, got, c.before)
		}
	}
}

func TestTime16BeforeAfterAntisymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Time16(a), Time16(b)
		if a == b {
			return !x.Before(y) && !x.After(y)
		}
		// Exactly at half range the pair is ambiguous both ways in
		// serial-number arithmetic: a-b == b-a == 0x8000, both negative
		// as int16, so both report Before. That is an accepted property
		// of the 16-bit hardware comparator; live deadlines must stay
		// within the half window.
		if uint16(a-b) == 0x8000 {
			return x.Before(y) && y.Before(x)
		}
		return x.Before(y) != y.Before(x) && x.After(y) == y.Before(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTime16AddSub(t *testing.T) {
	f := func(a uint16, d uint16) bool {
		t0 := Time16(a)
		t1 := t0.Add(d)
		want := int(int16(d))
		return t1.Sub(t0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTime16AddPreservesOrderWithinWindow(t *testing.T) {
	// Advancing a deadline by a small period keeps it after the old one,
	// across wrap.
	f := func(a uint16, d uint16) bool {
		step := d%0x7FFF + 1 // 1..32767
		t0 := Time16(a)
		return t0.Before(t0.Add(step))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapTime(t *testing.T) {
	if WrapTime(0x12345) != 0x2345 {
		t.Errorf("WrapTime(0x12345) = %#x, want 0x2345", WrapTime(0x12345))
	}
	if WrapTime(math.MaxUint64) != 0xFFFF {
		t.Errorf("WrapTime(max) = %#x, want 0xFFFF", WrapTime(math.MaxUint64))
	}
}

func TestWordRoundTrip(t *testing.T) {
	f := func(deadline uint16, num, den uint8, arrival uint16, slot uint8, valid bool) bool {
		a := Attributes{
			Deadline: Time16(deadline),
			LossNum:  num,
			LossDen:  den,
			Arrival:  Time16(arrival),
			Slot:     SlotID(slot % MaxPrototypeSlots),
			Valid:    valid,
		}
		w, err := EncodeWord(a)
		if err != nil {
			return false
		}
		return DecodeWord(w) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeWordRejectsWideSlot(t *testing.T) {
	_, err := EncodeWord(Attributes{Slot: MaxPrototypeSlots})
	if err == nil {
		t.Fatal("EncodeWord accepted a slot ID beyond the 5-bit prototype field")
	}
}

func TestWordFieldIsolation(t *testing.T) {
	// Changing one field must not disturb the others (catches shift/mask bugs).
	base := Attributes{Deadline: 0xAAAA, LossNum: 0xBB, LossDen: 0xCC, Arrival: 0xDDDD, Slot: 21, Valid: true}
	mut := base
	mut.LossNum = 0x11
	wb, err := EncodeWord(base)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := EncodeWord(mut)
	if err != nil {
		t.Fatal(err)
	}
	db, dm := DecodeWord(wb), DecodeWord(wm)
	if db.Deadline != dm.Deadline || db.LossDen != dm.LossDen || db.Arrival != dm.Arrival || db.Slot != dm.Slot || db.Valid != dm.Valid {
		t.Errorf("mutating LossNum disturbed other fields: %+v vs %+v", db, dm)
	}
	if dm.LossNum != 0x11 {
		t.Errorf("LossNum = %#x, want 0x11", dm.LossNum)
	}
}

func TestConstraintCmpBasic(t *testing.T) {
	cases := []struct {
		c, d Constraint
		want int
	}{
		{Constraint{1, 2}, Constraint{1, 2}, 0},
		{Constraint{1, 4}, Constraint{1, 2}, -1}, // 0.25 < 0.5
		{Constraint{1, 2}, Constraint{1, 4}, 1},
		{Constraint{2, 4}, Constraint{1, 2}, 0}, // equal ratios
		{Constraint{0, 5}, Constraint{1, 100}, -1},
		{Constraint{0, 5}, Constraint{0, 9}, 0},     // both zero tolerance: equal by value
		{Constraint{1, 0}, Constraint{200, 201}, 1}, // undefined orders last
		{Constraint{3, 0}, Constraint{7, 0}, 0},
		{Constraint{255, 255}, Constraint{1, 1}, 0},
	}
	for _, c := range cases {
		if got := c.c.Cmp(c.d); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.c, c.d, got, c.want)
		}
	}
}

func TestConstraintCmpAntisymmetric(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x, y := Constraint{a, b}, Constraint{c, d}
		return x.Cmp(y) == -y.Cmp(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstraintCmpMatchesFloat(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x, y := Constraint{a, b}, Constraint{c, d}
		if b == 0 || d == 0 {
			return true // undefined handled by dedicated cases above
		}
		fx, fy := float64(a)/float64(b), float64(c)/float64(d)
		want := 0
		if fx < fy {
			want = -1
		} else if fx > fy {
			want = 1
		}
		return x.Cmp(y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstraintZero(t *testing.T) {
	if !(Constraint{0, 10}).Zero() {
		t.Error("0/10 should be zero tolerance")
	}
	if (Constraint{1, 10}).Zero() {
		t.Error("1/10 should not be zero tolerance")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"wc ok", Spec{Class: WindowConstrained, Period: 4, Constraint: Constraint{1, 4}}, true},
		{"wc zero period", Spec{Class: WindowConstrained, Constraint: Constraint{1, 4}}, false},
		{"wc num>den", Spec{Class: WindowConstrained, Period: 4, Constraint: Constraint{5, 4}}, false},
		{"wc undefined den ok", Spec{Class: WindowConstrained, Period: 4, Constraint: Constraint{5, 0}}, true},
		{"edf ok", Spec{Class: EDF, Period: 1}, true},
		{"edf zero period", Spec{Class: EDF}, false},
		{"static ok", Spec{Class: StaticPriority, Priority: 9}, true},
		{"fair ok", Spec{Class: FairTag, Weight: 2}, true},
		{"fair zero weight", Spec{Class: FairTag}, false},
		{"bad class", Spec{Class: Class(99)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		WindowConstrained: "window-constrained",
		EDF:               "edf",
		StaticPriority:    "static-priority",
		FairTag:           "fair-tag",
		Class(42):         "class(42)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"dwcs(T=4, W=1/4)": {Class: WindowConstrained, Period: 4, Constraint: Constraint{1, 4}},
		"edf(T=2)":         {Class: EDF, Period: 2},
		"static(p=9)":      {Class: StaticPriority, Priority: 9},
		"fair(w=3)":        {Class: FairTag, Weight: 3},
		"spec(class=77)":   {Class: Class(77)},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAttributesString(t *testing.T) {
	a := Attributes{Deadline: 5, LossNum: 1, LossDen: 4, Arrival: 3, Slot: 2, Valid: true}
	if got := a.String(); got != "slot2{d=5 w=1/4 a=3}" {
		t.Errorf("String() = %q", got)
	}
	a.Valid = false
	if got := a.String(); got != "slot2<empty>" {
		t.Errorf("invalid String() = %q", got)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Class: WindowConstrained, Period: 4, Constraint: Constraint{Num: 1, Den: 4}},
		{Class: WindowConstrained, Period: 15, Constraint: Constraint{Num: 0, Den: 6}},
		{Class: EDF, Period: 3},
		{Class: StaticPriority, Priority: 512},
		{Class: StaticPriority, Priority: 7, Guard: 200},
		{Class: FairTag, Weight: 8},
	}
	for _, want := range specs {
		got, err := ParseSpec(want.String())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", want.String(), err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", want.String(), got, want)
		}
	}
	for _, bad := range []string{
		"", "bogus(T=3)", "edf(T=)", "edf(T=3", "edf(t=3)",
		"dwcs(T=4)", "static(p=1, guard=)", "fair(w=2) trailing",
		"spec(class=9)",
	} {
		if spec, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted as %+v, want error", bad, spec)
		}
	}
}
