// Packed sortable rank keys.
//
// A Decision block resolves most pairwise orders on the first one or two
// rules of Table 2, yet the software cascade in package decision evaluates
// a branchy rule chain for every comparison. Following the rank-based view
// of hardware schedulers (compute a rank once, compare ranks cheaply — the
// PIFO insight), this file packs a stream's entire Table-2 ordering state
// into one uint64 whose *unsigned integer order equals the cascade order*
// whenever the wrapped time fields are serial-comparable. The key is
// recomputed only when the attribute word changes (PRIORITY_UPDATE /
// INGEST), so a decision cycle's log₂N network passes reduce to single
// integer compares.
//
// Layout (MSB first; smaller key = higher priority = earlier in the block):
//
//	[63]    invalid flag (empty slots sort after every backlogged one)
//	[62:47] deadline, normalized: uint16(Deadline - ref)        (rule 1)
//	[46:31] window-constraint ratio rank (see below)            (rule 2)
//	[30:23] rule-3/4 tie-break: ^LossDen if W = 0, else LossNum (rules 3, 4)
//	[22:7]  arrival time, normalized: uint16(Arrival - ref)     (rule 5)
//	[6:0]   slot ID, saturating at 127                          (final tie)
//
// Every field above the slot is exact: two keys tie in a field if and only
// if the cascade ties at the corresponding rule. The slot field saturates,
// so two slots ≥ 127 compare equal here and fall back to the cascade —
// which is always the last word (decision.FastOrder declines to decide on
// equal keys or window-straddling time fields). The reference time ref is
// therefore purely a performance hint: a well-chosen ref (near the current
// virtual time) makes the normalized fields agree with serial-number order
// for all live heads; a badly chosen one only increases fallbacks, never
// changes an ordering.
//
// The window-constraint ratio W = x/y orders by value via the cross
// multiplier, with equal values (1/2 vs 2/4) comparing equal and undefined
// x/0 after everything. A 16-bit dense rank of all 2^16 (x, y) encodings —
// precomputed once at package init — gives exactly that: equal ratios share
// a rank, order follows the ratio, and y = 0 maps to the maximum rank.
package attr

import "sort"

// Key is a packed sortable rank key: the Table-2 ordering state of one
// attribute word, encoded so that smaller unsigned values order first.
type Key uint64

// Key field layout constants, exported for the decision package's fast-path
// comparator (guards and mode masks need field positions).
const (
	KeySlotBits      = 7  // saturating slot field width
	KeyArrivalShift  = 7  // 16-bit normalized arrival
	KeyTieShift      = 23 // 8-bit rule-3/4 tie-break
	KeyRankShift     = 31 // 16-bit constraint ratio rank
	KeyDeadlineShift = 47 // 16-bit normalized deadline
	KeyInvalidBit    = 63 // empty-slot flag

	// KeyConstraintMask covers the fields only the DWCS datapath compares
	// (ratio rank and rule-3/4 tie-break); the TagOnly fast path masks
	// them out, mirroring the simple comparator's deadline/FCFS/slot order.
	KeyConstraintMask Key = ((1<<16-1)<<KeyRankShift | (1<<8-1)<<KeyTieShift)

	keySlotMax = 1<<KeySlotBits - 1
)

// ratioRank maps the 16-bit encoding x<<8|y of a window-constraint W = x/y
// to its dense rank among all distinct ratio values: equal ratios share a
// rank, lower ratios rank lower, and the undefined y = 0 encodings all take
// rank 0xFFFF (the hardware treats x/0 as the loosest constraint). Built
// once at package init.
var ratioRank [1 << 16]uint16

func init() {
	// Sort the 255·256 defined (x, y) encodings by ratio value using the
	// same cross-multiplication the Decision block's comparator performs,
	// then assign dense ranks so exact-equal ratios collide.
	idx := make([]int, 0, 255*256)
	for x := 0; x < 256; x++ {
		for y := 1; y < 256; y++ {
			idx = append(idx, x<<8|y)
		}
	}
	cross := func(i, j int) (uint32, uint32) {
		xi, yi := uint32(i>>8), uint32(i&0xFF)
		xj, yj := uint32(j>>8), uint32(j&0xFF)
		return xi * yj, xj * yi
	}
	sort.Slice(idx, func(a, b int) bool {
		l, r := cross(idx[a], idx[b])
		return l < r
	})
	rank := uint16(0)
	for k, enc := range idx {
		if k > 0 {
			if l, r := cross(idx[k-1], enc); l != r {
				rank++
			}
		}
		ratioRank[enc] = rank
	}
	for x := 0; x < 256; x++ {
		ratioRank[x<<8] = 0xFFFF // y = 0: undefined, after everything
	}
}

// Key packs a into its sortable rank key. ref is the normalization base for
// the wrapped time fields — callers hold it near (current virtual time −
// 2^15) so live deadlines and arrivals land mid-window; see the file
// comment for why any ref is correct.
func (a Attributes) Key(ref Time16) Key {
	return a.KeyWith(KeyConstraint(a.LossNum, a.LossDen), ref)
}

// KeyConstraint packs just the window-constraint fields of a key (ratio rank
// plus the rule-3/4 tie-break) for numerator x over denominator y. These
// fields change only on window adjustments — far rarer than head advances —
// so stateful callers cache this part and repack the rest with KeyWith,
// keeping the dense-rank table lookup off the per-head path.
func KeyConstraint(x, y uint8) Key {
	var tie uint64
	switch {
	case y == 0:
		// Undefined constraints compare equal (max rank) and then order by
		// lowest numerator (rule 4's branch — note Constraint.Zero is
		// false for x/0 with x > 0, and the 0/0-vs-x/0 pair also resolves
		// through the numerator compare).
		tie = uint64(x)
	case x == 0:
		// W = 0: rule 3 orders the highest denominator first.
		tie = uint64(^y)
	default:
		// Equal non-zero constraints: rule 4 orders the lowest numerator
		// first.
		tie = uint64(x)
	}
	return Key(ratioRank[uint16(x)<<8|uint16(y)])<<KeyRankShift | Key(tie)<<KeyTieShift
}

// KeyWith packs a's key around a precomputed constraint part, which must be
// KeyConstraint(a.LossNum, a.LossDen). Key == KeyWith∘KeyConstraint; the
// split exists so the hot rekey after every head advance is pure shifts.
func (a Attributes) KeyWith(constraint Key, ref Time16) Key {
	slot := uint64(a.Slot)
	if slot > keySlotMax {
		slot = keySlotMax
	}
	if !a.Valid {
		// The cascade ignores an empty slot's attributes entirely: only
		// the invalid flag and the slot tie-break may influence the order.
		return 1<<KeyInvalidBit | Key(slot)
	}
	return Key(uint16(a.Deadline-ref))<<KeyDeadlineShift |
		constraint |
		Key(uint16(a.Arrival-ref))<<KeyArrivalShift |
		Key(slot)
}
