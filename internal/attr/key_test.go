package attr

import (
	"math/rand"
	"testing"
)

// TestRatioRankMatchesCmp checks the precomputed dense rank against the
// cross-multiplying comparator: rank order must equal Constraint.Cmp order
// for every pair, including equal-value fractions and undefined x/0.
func TestRatioRankMatchesCmp(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 500000; trial++ {
		c := Constraint{Num: uint8(rng.Intn(256)), Den: uint8(rng.Intn(256))}
		d := Constraint{Num: uint8(rng.Intn(256)), Den: uint8(rng.Intn(256))}
		rc := ratioRank[uint16(c.Num)<<8|uint16(c.Den)]
		rd := ratioRank[uint16(d.Num)<<8|uint16(d.Den)]
		var got int
		switch {
		case rc < rd:
			got = -1
		case rc > rd:
			got = 1
		}
		if want := c.Cmp(d); got != want {
			t.Fatalf("rank order of %v vs %v = %d, Cmp = %d (ranks %d, %d)", c, d, got, want, rc, rd)
		}
	}
}

// TestRatioRankEqualFractions pins the collision property directly: scaled
// representations of the same ratio share a rank.
func TestRatioRankEqualFractions(t *testing.T) {
	for _, pair := range [][4]uint8{{1, 2, 2, 4}, {1, 2, 100, 200}, {3, 9, 1, 3}, {2, 3, 84, 126}, {0, 1, 0, 255}} {
		ra := ratioRank[uint16(pair[0])<<8|uint16(pair[1])]
		rb := ratioRank[uint16(pair[2])<<8|uint16(pair[3])]
		if ra != rb {
			t.Errorf("%d/%d rank %d != %d/%d rank %d", pair[0], pair[1], ra, pair[2], pair[3], rb)
		}
	}
	if got := ratioRank[uint16(7)<<8|0]; got != 0xFFFF {
		t.Errorf("undefined 7/0 rank = %d, want 0xFFFF", got)
	}
	// The defined ranks must stay strictly below the undefined sentinel.
	max := uint16(0)
	for x := 0; x < 256; x++ {
		for y := 1; y < 256; y++ {
			if r := ratioRank[x<<8|y]; r > max {
				max = r
			}
		}
	}
	if max >= 0xFFFF {
		t.Fatalf("defined rank %d collides with the undefined sentinel", max)
	}
}

// TestKeyFieldExactness checks that every key field above the slot ties if
// and only if the corresponding cascade rule ties — the property that makes
// a lower field safe to consult.
func TestKeyFieldExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ref = Time16(0x1234)
	for trial := 0; trial < 200000; trial++ {
		a := Attributes{
			Deadline: Time16(rng.Intn(1 << 16)), LossNum: uint8(rng.Intn(256)), LossDen: uint8(rng.Intn(256)),
			Arrival: Time16(rng.Intn(1 << 16)), Slot: SlotID(rng.Intn(1024)), Valid: true,
		}
		b := a
		if rng.Intn(2) == 0 { // force frequent field ties
			b.Deadline = Time16(rng.Intn(1 << 16))
			b.LossNum, b.LossDen = uint8(rng.Intn(4)), uint8(rng.Intn(4))
			b.Arrival = Time16(rng.Intn(1 << 16))
		}
		b.Slot = SlotID(rng.Intn(1024))
		ka, kb := a.Key(ref), b.Key(ref)
		field := func(k Key, shift, width uint) uint64 { return uint64(k>>Key(shift)) & (1<<width - 1) }

		if tie := field(ka, KeyDeadlineShift, 16) == field(kb, KeyDeadlineShift, 16); tie != (a.Deadline == b.Deadline) {
			t.Fatalf("deadline field tie=%v for %v vs %v", tie, a, b)
		}
		if tie := field(ka, KeyRankShift, 16) == field(kb, KeyRankShift, 16); tie != (a.Constraint().Cmp(b.Constraint()) == 0) {
			t.Fatalf("rank field tie=%v for %v vs %v", tie, a, b)
		}
		if tie := field(ka, KeyArrivalShift, 16) == field(kb, KeyArrivalShift, 16); tie != (a.Arrival == b.Arrival) {
			t.Fatalf("arrival field tie=%v for %v vs %v", tie, a, b)
		}
	}
}

// TestKeyInvalid checks the empty-slot encoding: the invalid bit dominates
// every valid key, attributes are ignored, and empty slots order by slot ID.
func TestKeyInvalid(t *testing.T) {
	empty := Attributes{Deadline: 0xFFFF, LossNum: 9, LossDen: 3, Arrival: 0xFFFF, Slot: 5}
	valid := Attributes{Deadline: 0xFFFF, Arrival: 0xFFFF, Slot: 31, Valid: true}
	const ref = Time16(7)
	if !(valid.Key(ref) < empty.Key(ref)) {
		t.Fatal("valid key does not order before an empty slot's key")
	}
	other := Attributes{Slot: 6}
	if !(empty.Key(ref) < other.Key(ref)) {
		t.Fatal("empty slots must order by slot ID")
	}
	if empty.Key(ref) != empty.Key(ref+999) {
		t.Fatal("empty-slot key must not depend on the normalization reference")
	}
}

// TestKeySlotSaturation: slots ≥ 127 share the saturated field (forcing the
// cascade fallback on full ties) but still order correctly against smaller
// slots.
func TestKeySlotSaturation(t *testing.T) {
	mk := func(slot SlotID) Key { return Attributes{Slot: slot, Valid: true}.Key(0) }
	if mk(130) != mk(900) {
		t.Fatal("saturated slots must encode equal")
	}
	if !(mk(5) < mk(130)) {
		t.Fatal("unsaturated slot must order before a saturated one")
	}
}

// TestKeySplitComposition pins Key == KeyWith ∘ KeyConstraint — the split
// the Register Base block's cached-constraint rekey relies on.
func TestKeySplitComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100000; trial++ {
		a := Attributes{
			Deadline: Time16(rng.Intn(1 << 16)), LossNum: uint8(rng.Intn(256)), LossDen: uint8(rng.Intn(256)),
			Arrival: Time16(rng.Intn(1 << 16)), Slot: SlotID(rng.Intn(1024)), Valid: rng.Intn(4) != 0,
		}
		ref := Time16(rng.Intn(1 << 16))
		if got, want := a.KeyWith(KeyConstraint(a.LossNum, a.LossDen), ref), a.Key(ref); got != want {
			t.Fatalf("split key %#x != direct key %#x for %+v ref %d", got, want, a, ref)
		}
	}
}
