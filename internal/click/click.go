// Package click implements a miniature modular software router in the
// style of Click (Kohler et al. [11]) — the §5.2 endsystem comparison point
// ("333,000 64-byte packets/second … close to 300,000 packets/second with
// the Stochastic Fairness Queuing module").
//
// The Click architecture composes a router from elements connected into a
// graph, with *push* processing from sources downstream and *pull*
// processing upstream from sinks; queues convert between the two
// disciplines. This model keeps exactly that structure:
//
//	FromDevice -> Classifier -> [Queue_0..Queue_k] -> Scheduler -> ToDevice
//	   (push)       (push)        (push|pull)         (pull)       (pull)
//
// so the reproduction can measure, on the same host, what an element-graph
// software path costs per packet next to the ShareStreams split
// (queuing/movement on the host, decisions in hardware).
package click

import (
	"fmt"

	"repro/internal/fairqueue"
)

// Packet is the unit flowing through the element graph.
type Packet struct {
	Flow    int
	Size    int
	Arrival uint64
}

// PushElement receives packets pushed from upstream.
type PushElement interface {
	Push(p Packet)
}

// PullElement yields packets when pulled from downstream.
type PullElement interface {
	Pull() (Packet, bool)
}

// Counter counts packets and bytes through a point in the graph.
type Counter struct {
	Packets uint64
	Bytes   uint64
	next    PushElement
}

// NewCounter builds a counting pass-through element.
func NewCounter(next PushElement) *Counter { return &Counter{next: next} }

// Push implements PushElement.
func (c *Counter) Push(p Packet) {
	c.Packets++
	c.Bytes += uint64(p.Size)
	if c.next != nil {
		c.next.Push(p)
	}
}

// Classifier routes packets to one of its outputs by flow hash (Click's
// Classifier/HashSwitch).
type Classifier struct {
	outputs []PushElement
}

// NewClassifier builds a classifier over the outputs.
func NewClassifier(outputs ...PushElement) (*Classifier, error) {
	if len(outputs) == 0 {
		return nil, fmt.Errorf("click: classifier needs outputs")
	}
	for i, o := range outputs {
		if o == nil {
			return nil, fmt.Errorf("click: nil output %d", i)
		}
	}
	return &Classifier{outputs: outputs}, nil
}

// Push implements PushElement.
func (c *Classifier) Push(p Packet) {
	c.outputs[p.Flow%len(c.outputs)].Push(p)
}

// Queue is the push-to-pull conversion element: a bounded FIFO that drops
// from the tail when full (Click's Queue).
type Queue struct {
	pkts    []Packet
	head    int
	cap     int
	Drops   uint64
	Entered uint64
}

// NewQueue builds a queue with the given capacity.
func NewQueue(capacity int) (*Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("click: queue capacity %d", capacity)
	}
	return &Queue{cap: capacity}, nil
}

// Len returns the queue occupancy.
func (q *Queue) Len() int { return len(q.pkts) - q.head }

// Push implements PushElement.
func (q *Queue) Push(p Packet) {
	if q.Len() >= q.cap {
		q.Drops++
		return
	}
	q.pkts = append(q.pkts, p)
	q.Entered++
}

// Pull implements PullElement.
func (q *Queue) Pull() (Packet, bool) {
	if q.head >= len(q.pkts) {
		return Packet{}, false
	}
	p := q.pkts[q.head]
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p, true
}

// RoundRobinSched pulls from its inputs round robin (Click's RoundRobinSched).
type RoundRobinSched struct {
	inputs []PullElement
	cursor int
}

// NewRoundRobinSched builds the scheduler over the inputs.
func NewRoundRobinSched(inputs ...PullElement) (*RoundRobinSched, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("click: scheduler needs inputs")
	}
	return &RoundRobinSched{inputs: inputs}, nil
}

// Pull implements PullElement.
func (s *RoundRobinSched) Pull() (Packet, bool) {
	for k := 0; k < len(s.inputs); k++ {
		i := (s.cursor + k) % len(s.inputs)
		if p, ok := s.inputs[i].Pull(); ok {
			s.cursor = (i + 1) % len(s.inputs)
			return p, true
		}
	}
	return Packet{}, false
}

// SFQSched adapts the fair-queuing SFQ scheduler as a pull element — the
// configuration of Click's SFQ measurement in §5.2. Packets are pushed into
// the underlying scheduler (one stream per flow bucket) and pulled in
// virtual-start-time order.
type SFQSched struct {
	sfq     *fairqueue.SFQ
	buckets int
	Drops   uint64
	maxQ    int
	perQ    []int
}

// NewSFQSched builds an SFQ element with the given flow-bucket count and
// per-bucket queue bound.
func NewSFQSched(buckets, perBucket int) (*SFQSched, error) {
	if buckets < 1 || perBucket < 1 {
		return nil, fmt.Errorf("click: sfq %d buckets, %d per bucket", buckets, perBucket)
	}
	weights := make([]float64, buckets)
	for i := range weights {
		weights[i] = 1
	}
	s, err := fairqueue.NewSFQ(weights)
	if err != nil {
		return nil, err
	}
	return &SFQSched{sfq: s, buckets: buckets, maxQ: perBucket, perQ: make([]int, buckets)}, nil
}

// Push implements PushElement.
func (s *SFQSched) Push(p Packet) {
	b := p.Flow % s.buckets
	if s.perQ[b] >= s.maxQ {
		s.Drops++
		return
	}
	if err := s.sfq.Enqueue(fairqueue.Packet{Stream: b, Size: p.Size, Arrival: p.Arrival}); err != nil {
		s.Drops++
		return
	}
	s.perQ[b]++
}

// Pull implements PullElement.
func (s *SFQSched) Pull() (Packet, bool) {
	p, ok := s.sfq.Dequeue()
	if !ok {
		return Packet{}, false
	}
	s.perQ[p.Stream]--
	return Packet{Flow: p.Stream, Size: p.Size, Arrival: p.Arrival}, true
}

// ToDevice drains a pull path, counting delivered packets (the sink).
type ToDevice struct {
	src       PullElement
	Delivered uint64
	Bytes     uint64
}

// NewToDevice builds the sink over a pull source.
func NewToDevice(src PullElement) (*ToDevice, error) {
	if src == nil {
		return nil, fmt.Errorf("click: nil source")
	}
	return &ToDevice{src: src}, nil
}

// Run pulls up to n packets (one "transmit ready" interrupt batch).
func (d *ToDevice) Run(n int) int {
	got := 0
	for ; got < n; got++ {
		p, ok := d.src.Pull()
		if !ok {
			break
		}
		d.Delivered++
		d.Bytes += uint64(p.Size)
	}
	return got
}

// Router is the assembled forwarding path used by the §5.2 comparison
// bench: classifier over k queues, a scheduler, a sink.
type Router struct {
	In  PushElement
	Out *ToDevice

	queues []*Queue
	sfq    *SFQSched
}

// NewRouter assembles the graph. With useSFQ the scheduler is the SFQ
// element (the Click+SFQ configuration); otherwise round robin over plain
// queues.
func NewRouter(flowsQueues int, useSFQ bool) (*Router, error) {
	if useSFQ {
		sfq, err := NewSFQSched(flowsQueues, 256)
		if err != nil {
			return nil, err
		}
		out, err := NewToDevice(sfq)
		if err != nil {
			return nil, err
		}
		return &Router{In: sfq, Out: out, sfq: sfq}, nil
	}
	queues := make([]*Queue, flowsQueues)
	pulls := make([]PullElement, flowsQueues)
	pushes := make([]PushElement, flowsQueues)
	for i := range queues {
		q, err := NewQueue(256)
		if err != nil {
			return nil, err
		}
		queues[i] = q
		pulls[i] = q
		pushes[i] = q
	}
	cls, err := NewClassifier(pushes...)
	if err != nil {
		return nil, err
	}
	sched, err := NewRoundRobinSched(pulls...)
	if err != nil {
		return nil, err
	}
	out, err := NewToDevice(sched)
	if err != nil {
		return nil, err
	}
	return &Router{In: cls, Out: out, queues: queues}, nil
}

// Drops returns the graph's total queue drops.
func (r *Router) Drops() uint64 {
	if r.sfq != nil {
		return r.sfq.Drops
	}
	var d uint64
	for _, q := range r.queues {
		d += q.Drops
	}
	return d
}
