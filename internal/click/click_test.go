package click

import (
	"testing"
)

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewClassifier(); err == nil {
		t.Error("empty classifier accepted")
	}
	if _, err := NewClassifier(nil); err == nil {
		t.Error("nil classifier output accepted")
	}
	if _, err := NewQueue(0); err == nil {
		t.Error("zero-capacity queue accepted")
	}
	if _, err := NewRoundRobinSched(); err == nil {
		t.Error("empty scheduler accepted")
	}
	if _, err := NewSFQSched(0, 1); err == nil {
		t.Error("zero-bucket sfq accepted")
	}
	if _, err := NewToDevice(nil); err == nil {
		t.Error("nil sink source accepted")
	}
}

func TestQueueFIFOAndDrops(t *testing.T) {
	q, _ := NewQueue(2)
	q.Push(Packet{Flow: 1})
	q.Push(Packet{Flow: 2})
	q.Push(Packet{Flow: 3}) // dropped
	if q.Drops != 1 || q.Len() != 2 {
		t.Fatalf("drops %d len %d", q.Drops, q.Len())
	}
	p, ok := q.Pull()
	if !ok || p.Flow != 1 {
		t.Fatalf("pull = %+v %v", p, ok)
	}
	q.Push(Packet{Flow: 4})
	if q.Len() != 2 {
		t.Fatalf("len after refill = %d", q.Len())
	}
	if p, _ := q.Pull(); p.Flow != 2 {
		t.Fatal("not FIFO")
	}
}

func TestClassifierSpreadsByFlow(t *testing.T) {
	q1, _ := NewQueue(16)
	q2, _ := NewQueue(16)
	cls, _ := NewClassifier(q1, q2)
	for f := 0; f < 10; f++ {
		cls.Push(Packet{Flow: f})
	}
	if q1.Len() != 5 || q2.Len() != 5 {
		t.Fatalf("spread = %d/%d", q1.Len(), q2.Len())
	}
}

func TestRoundRobinSchedFair(t *testing.T) {
	q1, _ := NewQueue(16)
	q2, _ := NewQueue(16)
	for i := 0; i < 8; i++ {
		q1.Push(Packet{Flow: 0})
		q2.Push(Packet{Flow: 1})
	}
	s, _ := NewRoundRobinSched(q1, q2)
	var from [2]int
	for i := 0; i < 16; i++ {
		p, ok := s.Pull()
		if !ok {
			t.Fatal("pull failed")
		}
		from[p.Flow]++
	}
	if from[0] != 8 || from[1] != 8 {
		t.Fatalf("rr split = %v", from)
	}
	// Skips empty inputs.
	q1.Push(Packet{Flow: 0})
	if p, ok := s.Pull(); !ok || p.Flow != 0 {
		t.Fatal("did not skip empty input")
	}
	if _, ok := s.Pull(); ok {
		t.Fatal("pulled from empty graph")
	}
}

func TestCounterPassThrough(t *testing.T) {
	q, _ := NewQueue(4)
	c := NewCounter(q)
	c.Push(Packet{Size: 100})
	c.Push(Packet{Size: 50})
	if c.Packets != 2 || c.Bytes != 150 || q.Len() != 2 {
		t.Fatalf("counter %d/%d queue %d", c.Packets, c.Bytes, q.Len())
	}
	// Terminal counter (nil next) must not panic.
	NewCounter(nil).Push(Packet{Size: 1})
}

func TestRouterForwardsAndConserves(t *testing.T) {
	for _, useSFQ := range []bool{false, true} {
		r, err := NewRouter(8, useSFQ)
		if err != nil {
			t.Fatal(err)
		}
		const total = 4000
		sent := 0
		for sent < total {
			// Interleave bursts of arrivals with transmit batches, as a
			// device driver would.
			for b := 0; b < 16 && sent < total; b++ {
				r.In.Push(Packet{Flow: sent % 32, Size: 64, Arrival: uint64(sent)})
				sent++
			}
			r.Out.Run(16)
		}
		for r.Out.Run(64) > 0 {
		}
		if r.Out.Delivered+r.Drops() != total {
			t.Fatalf("useSFQ=%v: delivered %d + drops %d != %d",
				useSFQ, r.Out.Delivered, r.Drops(), total)
		}
		if r.Out.Delivered < total*9/10 {
			t.Fatalf("useSFQ=%v: excessive drops (%d delivered)", useSFQ, r.Out.Delivered)
		}
	}
}

func TestSFQSchedDropsWhenBucketFull(t *testing.T) {
	s, _ := NewSFQSched(2, 2)
	for i := 0; i < 5; i++ {
		s.Push(Packet{Flow: 0, Size: 10})
	}
	if s.Drops != 3 {
		t.Fatalf("drops = %d", s.Drops)
	}
}

// BenchmarkRouterForward measures the per-packet cost of the element graph
// — the software path the §5.2 comparison sets against the ShareStreams
// split. Run next to BenchmarkDecisionCycle for the contrast.
func BenchmarkRouterForward(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		useSFQ bool
	}{{"RR8", false}, {"SFQ8", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			r, err := NewRouter(8, cfg.useSFQ)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.In.Push(Packet{Flow: i % 32, Size: 64, Arrival: uint64(i)})
				r.Out.Run(1)
			}
		})
	}
}
