package core

// PR-2 regression guards for the zero-allocation decision hot path and the
// hoisted cycles-per-decision accounting. These are tests, not benchmarks,
// so `go test ./internal/core/` fails the moment a steady-state decision
// cycle allocates or the HWCycles bookkeeping drifts from the Table-1 model.

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/traffic"
)

// backloggedScheduler builds an n-slot scheduler with every slot holding a
// backlogged EDF stream (staggered periods), started and warmed past the
// first key-refresh epoch so only steady-state work remains.
func backloggedScheduler(t *testing.T, n int, mode decision.Mode, routing Routing) *Scheduler {
	t.Helper()
	s, err := New(Config{Slots: n, Mode: mode, Routing: routing})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i % 7), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: uint16(1 + i%16)}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunCycles(keyRefreshPeriod+64, nil)
	return s
}

// TestZeroAllocSteadyState asserts the tentpole contract: a steady-state
// decision cycle performs no heap allocations, for both routing disciplines
// and both decision modes, at the paper's prototype size and at N=32.
func TestZeroAllocSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		mode    decision.Mode
		routing Routing
	}{
		{"WR4", 4, decision.DWCS, WinnerOnly},
		{"BA4", 4, decision.DWCS, BlockRouting},
		{"WR32", 32, decision.DWCS, WinnerOnly},
		{"BA32", 32, decision.DWCS, BlockRouting},
		{"TagOnlyWR32", 32, decision.TagOnly, WinnerOnly},
		{"TagOnlyBA32", 32, decision.TagOnly, BlockRouting},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := backloggedScheduler(t, tc.n, tc.mode, tc.routing)
			// Batch per probe so a key-refresh epoch landing inside the
			// window is averaged in rather than dodged: refresh must also
			// be allocation-free.
			const batch = 128
			allocs := testing.AllocsPerRun(50, func() {
				s.RunCycles(batch, nil)
			})
			if allocs != 0 {
				t.Fatalf("steady-state RunCycles(%d) allocated %.2f times (want 0)", batch, allocs)
			}
			// RunCycle's copy-out path must stay clean too.
			allocs = testing.AllocsPerRun(50, func() {
				for i := 0; i < batch; i++ {
					s.RunCycle()
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state RunCycle allocated %.2f times (want 0)", allocs)
			}
		})
	}
}

// programScheduler builds an n-slot scheduler running rank program p, every
// slot backlogged with a stream of p's attribute class, warmed past the
// first key-refresh epoch.
func programScheduler(t *testing.T, n int, p decision.Program, routing Routing) *Scheduler {
	t.Helper()
	s, err := New(ProgramConfig(n, p, routing))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i % 7), Backlogged: true}
		var spec attr.Spec
		switch p.Class() {
		case attr.EDF:
			spec = attr.Spec{Class: attr.EDF, Period: uint16(1 + i%16)}
		case attr.StaticPriority:
			spec = attr.Spec{Class: attr.StaticPriority, Priority: uint16(i % 8), Guard: 32}
		case attr.FairTag:
			spec = attr.Spec{Class: attr.FairTag, Weight: uint16(1 + i%4)}
		default: // WindowConstrained
			spec = attr.Spec{Class: attr.WindowConstrained, Period: uint16(1 + i%16),
				Constraint: attr.Constraint{Num: 1, Den: 2}}
		}
		if err := s.Admit(i, spec, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunCycles(keyRefreshPeriod+64, nil)
	return s
}

// TestZeroAllocPrograms extends the zero-allocation contract to the new
// rank programs: EDF, strict-priority-with-starvation-guard (the per-cycle
// guard check must be allocation-free, boosts included) and STFQ all run
// the steady-state decision cycle without a single heap allocation.
func TestZeroAllocPrograms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		p       decision.Program
		routing Routing
	}{
		{"EDF-WR32", decision.ProgramEDF, WinnerOnly},
		{"EDF-BA32", decision.ProgramEDF, BlockRouting},
		{"StrictGuard-WR32", decision.ProgramStrictPriority, WinnerOnly},
		{"StrictGuard-BA32", decision.ProgramStrictPriority, BlockRouting},
		{"STFQ-WR32", decision.ProgramSTFQ, WinnerOnly},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := programScheduler(t, 32, tc.p, tc.routing)
			const batch = 128
			allocs := testing.AllocsPerRun(50, func() {
				s.RunCycles(batch, nil)
			})
			if allocs != 0 {
				t.Fatalf("program %v: steady-state RunCycles(%d) allocated %.2f times (want 0)", tc.p, batch, allocs)
			}
		})
	}
}

// TestHWCyclesAccounting asserts that hoisting cyclesPerDecision into New
// left the Table-1 accounting untouched: every decision cycle costs exactly
// CyclesPerDecision() hardware clocks, however it is driven.
func TestHWCyclesAccounting(t *testing.T) {
	for _, routing := range []Routing{WinnerOnly, BlockRouting} {
		s, err := New(Config{Slots: 8, Routing: routing})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			src := &traffic.Periodic{Gap: 2, Phase: uint64(i), Backlogged: i%2 == 0}
			if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 4}, src); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		cpd := uint64(s.CyclesPerDecision())
		if cpd == 0 {
			t.Fatalf("routing %v: CyclesPerDecision() = 0", routing)
		}

		// Mix the drivers: singles, a batch, an early-exited batch, RunFor.
		var fromResults uint64
		for i := 0; i < 10; i++ {
			cr := s.RunCycle()
			fromResults += uint64(cr.HWCycles)
		}
		s.RunCycles(100, func(cr *CycleResult) bool {
			fromResults += uint64(cr.HWCycles)
			return true
		})
		stopAt := 0
		s.RunCycles(50, func(cr *CycleResult) bool {
			fromResults += uint64(cr.HWCycles)
			stopAt++
			return stopAt < 25
		})
		before := s.HWCycles()
		s.RunFor(40)
		fromResults += s.HWCycles() - before

		wantDecisions := uint64(10 + 100 + 25 + 40)
		if got := s.Decisions(); got != wantDecisions {
			t.Fatalf("routing %v: Decisions() = %d, want %d", routing, got, wantDecisions)
		}
		// Start charges one LOAD clock per slot before the first decision
		// (seed behavior, unchanged by the batch driver).
		if got, want := s.HWCycles(), 8+wantDecisions*cpd; got != want {
			t.Fatalf("routing %v: HWCycles() = %d, want %d (= 8 loads + %d decisions × %d)", routing, got, want, wantDecisions, cpd)
		}
		if fromResults != wantDecisions*cpd {
			t.Fatalf("routing %v: per-result HWCycles sum = %d, want %d", routing, fromResults, wantDecisions*cpd)
		}
	}
}
