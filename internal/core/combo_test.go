package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/traffic"
)

// TestOptionCombosFunctionallyEquivalent checks that the §6 options
// (compute-ahead, exact sort) change timing and block interiors but never
// the circulated winner sequence or the miss accounting on the Table 3
// workload, across both circulation modes.
func TestOptionCombosFunctionallyEquivalent(t *testing.T) {
	type combo struct {
		name string
		cfg  Config
	}
	for _, circ := range []Circulate{MaxFirst, MinFirst} {
		base := runCombo(t, Config{Slots: 8, Routing: BlockRouting, Circulate: circ})
		combos := []combo{
			{"compute-ahead", Config{Slots: 8, Routing: BlockRouting, Circulate: circ, ComputeAhead: true}},
			{"exact-sort", Config{Slots: 8, Routing: BlockRouting, Circulate: circ, ExactSort: true}},
			{"both", Config{Slots: 8, Routing: BlockRouting, Circulate: circ, ComputeAhead: true, ExactSort: true}},
		}
		for _, c := range combos {
			got := runCombo(t, c.cfg)
			if len(got.winners) != len(base.winners) {
				t.Fatalf("%v/%s: cycle counts differ", circ, c.name)
			}
			for i := range base.winners {
				if got.winners[i] != base.winners[i] {
					t.Fatalf("%v/%s: winner diverged at cycle %d: %d vs %d",
						circ, c.name, i, got.winners[i], base.winners[i])
				}
			}
			if got.missed != base.missed {
				t.Errorf("%v/%s: missed %d vs baseline %d", circ, c.name, got.missed, base.missed)
			}
			if got.services != base.services {
				t.Errorf("%v/%s: services %d vs baseline %d", circ, c.name, got.services, base.services)
			}
		}
	}
}

type comboResult struct {
	winners  []attr.SlotID
	missed   uint64
	services uint64
}

func runCombo(t *testing.T, cfg Config) comboResult {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Slots; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var res comboResult
	for c := 0; c < 2000; c++ {
		cr := s.RunCycle()
		res.winners = append(res.winners, cr.Winner)
	}
	tot := s.Totals()
	res.missed, res.services = tot.Missed, tot.Services
	return res
}

// TestExactSortMinFirstStillViolates pins that the exact-block extension
// does not change the min-first conclusion: transmitting tail-first still
// violates the earliest-deadline stream.
func TestExactSortMinFirstStillViolates(t *testing.T) {
	s, err := New(Config{Slots: 4, Routing: BlockRouting, Circulate: MinFirst, ExactSort: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(1000)
	if got := s.SlotCounters(0).Missed; got != 1000 {
		t.Fatalf("slot 0 missed %d, want 1000 (one per cycle)", got)
	}
	for i := 1; i < 4; i++ {
		if got := s.SlotCounters(i).Missed; got != 0 {
			t.Errorf("slot %d missed %d, want 0", i, got)
		}
	}
}
