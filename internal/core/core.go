// Package core implements the ShareStreams unified canonical scheduler: the
// paper's primary contribution. It glues N Register Base blocks
// (stream-slots) to the recirculating shuffle-exchange network of Decision
// blocks under a Control & Steering FSM, and realizes priority-class,
// fair-queuing, EDF and window-constrained scheduling on the single
// datapath.
//
// # FSM timeline (Figure 6)
//
// The control unit begins in LOAD — every slot's first head and service
// attributes are ingested — then alternates SCHEDULE and PRIORITY_UPDATE:
//
//	SCHEDULE        log₂N network passes (one clock each) order the slots;
//	CIRCULATE       one clock returns the winning slot ID to every
//	                Register Base block and the memory interface;
//	PRIORITY_UPDATE one clock applies winner/loser attribute adjustments
//	                concurrently in all slots (bypassed for fair-queuing
//	                and priority-class mappings, and folded into CIRCULATE
//	                by the compute-ahead extension);
//	INGEST          N clocks exchange new arrival times and scheduled
//	                stream IDs with the memory interface, one slot per
//	                clock on the single SRAM port.
//
// # Block decisions vs max-finding (§4.3, §5.1)
//
// In the BA configuration (BlockRouting) each decision cycle yields the
// whole ordered block, and the block is transmitted in a single transaction:
// the member at transmission rank r goes out r packet-times into the cycle,
// so it meets its deadline iff deadline ≥ now + r. In max-first mode the
// block head (highest priority) is circulated and the block transmits
// head-first; in min-first mode the block tail is circulated and the block
// transmits tail-first — the configuration Table 3 shows violating
// deadlines. In the WR configuration (WinnerOnly) only the winner is routed
// and transmitted; losers whose deadlines expire drop their heads and charge
// the missed-deadline counters.
//
// Time is virtual: one time unit per decision cycle, with a 64-bit virtual
// clock wrapped to the 16-bit hardware fields exactly as the Stream
// processor truncates arrival-time offsets. Hardware clock-cycle costs are
// accounted per the timeline above so package fpga can convert cycle counts
// into wall-clock rates for any modeled clock frequency.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/hwsim"
	"repro/internal/regblock"
	"repro/internal/shuffle"
)

// Routing selects block (BA) or winner-only (WR) routing through the
// shuffle-exchange network.
type Routing uint8

const (
	// BlockRouting (BA) routes winners and losers, producing the sorted
	// block each decision cycle.
	BlockRouting Routing = iota
	// WinnerOnly (WR) routes winners only — the max-finding configuration.
	WinnerOnly
)

// String returns the configuration name used in the paper's figures.
func (r Routing) String() string {
	switch r {
	case BlockRouting:
		return "BA"
	case WinnerOnly:
		return "WR"
	default:
		return fmt.Sprintf("routing(%d)", uint8(r))
	}
}

// Circulate selects which end of the block is circulated during
// PRIORITY_UPDATE (BA configuration only).
type Circulate uint8

const (
	// MaxFirst circulates the highest-priority stream and transmits the
	// block head-first (Table 3: all deadlines met).
	MaxFirst Circulate = iota
	// MinFirst circulates the lowest-priority stream and transmits the
	// block tail-first (Table 3: deadlines violated).
	MinFirst
)

// String returns the mode name.
func (c Circulate) String() string {
	switch c {
	case MaxFirst:
		return "max-first"
	case MinFirst:
		return "min-first"
	default:
		return fmt.Sprintf("circulate(%d)", uint8(c))
	}
}

// Config parameterizes a scheduler instance.
type Config struct {
	// Slots is the stream-slot count N: a power of two, 2..MaxSlots. The
	// Virtex-I prototype scales 4..32 on a single chip.
	Slots int
	// Mode selects the Decision-block datapath: decision.DWCS for the full
	// multi-attribute rules, decision.TagOnly for the simple-comparator
	// fair-queuing/priority-class mapping.
	Mode decision.Mode
	// Routing selects BA (block) or WR (winner-only/max-finding).
	Routing Routing
	// Circulate selects max-first or min-first circulation (BA only).
	Circulate Circulate
	// ExactSort uses the bitonic steering schedule instead of the paper's
	// log₂N passes, guaranteeing a fully sorted block (BA extension).
	ExactSort bool
	// ComputeAhead enables the §6 compute-ahead Register Base blocks:
	// next-state attribute words are predicated a cycle early, folding
	// PRIORITY_UPDATE into the circulate clock.
	ComputeAhead bool
	// TraceDepth, when positive, keeps a bounded trace of control-unit
	// events (state transitions, circulated winners, transmissions) for
	// inspection via Trace().
	TraceDepth int
}

// MaxSlots bounds synthetic designs; the 5-bit prototype ID field is
// enforced only by attr.EncodeWord, not here, so large explorations work.
const MaxSlots = 1024

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Slots < 2 || c.Slots > MaxSlots || bits.OnesCount(uint(c.Slots)) != 1 {
		return fmt.Errorf("core: slot count %d must be a power of two in [2, %d]", c.Slots, MaxSlots)
	}
	if c.Routing == WinnerOnly && c.ExactSort {
		return fmt.Errorf("core: exact sort requires block routing (WR routes winners only)")
	}
	if c.Routing > WinnerOnly {
		return fmt.Errorf("core: unknown routing %d", c.Routing)
	}
	if c.Circulate > MinFirst {
		return fmt.Errorf("core: unknown circulate mode %d", c.Circulate)
	}
	if c.Mode > decision.TagOnly {
		return fmt.Errorf("core: unknown decision mode %d", c.Mode)
	}
	return nil
}

// ProgramConfig returns the scheduler configuration that runs slots under
// rank program p with the given routing: the Decision-block mode follows
// from the program (only ProgramDWCS needs the multi-attribute datapath).
// The rest of a discipline is per-slot state, set up by admitting specs of
// p's attribute class (decision.Program.Class) and — for the tag programs —
// pointing fair-tag streams at a Queue Manager with the matching
// per-stream program installed (qm.Manager.SetProgram).
func ProgramConfig(slots int, p decision.Program, routing Routing) Config {
	return Config{Slots: slots, Mode: p.Mode(), Routing: routing}
}

// TimedSource is an optional extension of regblock.HeadSource for
// time-gated traffic: before each decision cycle the scheduler advances
// every timed source to the current virtual time, releasing packets that
// have "arrived".
type TimedSource interface {
	regblock.HeadSource
	Advance(now uint64)
}

// Transmission records one frame leaving the scheduler in a decision cycle.
type Transmission struct {
	Slot attr.SlotID
	// Rank is the frame's position in the outgoing block transaction
	// (always 0 in the WR configuration).
	Rank int
	// Late reports a missed deadline: the frame went out at virtual time
	// now+Rank, after its deadline.
	Late bool
	// Deadline is the frame's deadline at transmission (diagnostic).
	Deadline attr.Time16
	// Arrival is the frame's 16-bit datapath arrival time.
	Arrival attr.Time16
	// Arrival64 is the unwrapped virtual arrival time (for delay
	// measurement; the 16-bit field wraps over long runs).
	Arrival64 uint64
}

// CycleResult reports one decision cycle. Transmissions aliases an internal
// buffer that is overwritten by the next RunCycle; callers that retain it
// must copy.
type CycleResult struct {
	// Decision is the zero-based decision-cycle index.
	Decision uint64
	// Time is the virtual time at which the cycle ran.
	Time uint64
	// Winner is the circulated slot; valid only when Idle is false.
	Winner attr.SlotID
	// Idle reports a cycle in which no slot was backlogged.
	Idle bool
	// Transmissions lists the frames sent this cycle in transmission
	// order: the single winner (WR) or the block transaction (BA).
	Transmissions []Transmission
	// HWCycles is the number of hardware clock cycles the decision cycle
	// consumed under the FSM timeline.
	HWCycles int
}

// Scheduler is a ShareStreams scheduler instance.
type Scheduler struct {
	cfg   Config
	slots []*regblock.Block
	srcs  []regblock.HeadSource
	timed []TimedSource // srcs[i].(TimedSource) cached at Admit/Start; nil if untimed
	nw    *shuffle.Network

	// Per-slot class facts cached off the admitted spec (Rebind keeps the
	// spec, so only Admit/AdmitDynamic write them): expirable marks the
	// deadline-bearing classes ExpireCheck acts on (EDF, window-
	// constrained), wcClass the window-constrained subset that drops and
	// re-advances on expiry, guarded the static-priority slots whose
	// starvation guard needs a Refill tick while valid. The lean cycle path
	// branches on these instead of re-deriving them per slot per cycle.
	expirable []bool
	wcClass   []bool
	guarded   []bool

	started bool
	vnow    uint64 // virtual time, one unit per decision cycle

	decisions uint64
	hwCycles  uint64
	idleCount uint64

	cpd          int         // hardware clocks per decision cycle, fixed at New
	keyRef       attr.Time16 // current key-normalization reference
	nextRekey    uint64      // vnow at which to refresh keyRef next
	arrHint      uint64      // arrival time of the most recently transmitted head
	dlHint       uint64      // deadline of the most recently transmitted head
	nextRecenter uint64      // vnow at which to re-center the safety windows next

	// rebindEpoch counts Rebind calls. Results produced before a rebind
	// belong to the previous epoch; supervisors stamp re-aggregation
	// decisions with the epoch so in-flight attribution stays unambiguous.
	rebindEpoch uint64

	trace *hwsim.Trace // nil unless Config.TraceDepth > 0

	// obs is the attached metrics bundle (nil when uninstrumented); the
	// cycle* fields stage per-cycle telemetry — loser expiries, the
	// winner's packed rank key as latched for the decision — between the
	// routing handlers and observe.
	obs            *Metrics
	cycleExpiries  uint16
	cycleWinnerKey attr.Key

	// gens[i] is slots[i].Gen() as of its last latch onto the network bus;
	// genReload forces a relatch (fresh scheduler, dynamic admission).
	// wordsStale records that the lean path has latched keys only since the
	// last full latch, so the network's word plane must be redriven before
	// the next word-materializing cycle.
	gens       []uint64
	wordsStale bool
	txBuf      []Transmission // reused CycleResult buffer
	crBuf      CycleResult    // RunCycles' reused result (avoids a per-batch escape)
}

// genReload never equals uint64(regblock.Block.Gen()), so a gens entry set
// to it guarantees the slot is relatched on the next cycle.
const genReload = ^uint64(0)

// keyRefreshPeriod is how often (in decision cycles) the scheduler re-centers
// the key-normalization reference on the virtual clock. Any period is
// correct — stale references only increase decision.FastOrder's cascade
// fallbacks, never change an ordering — so the refresh is sized to be
// amortized noise: one N-slot repack every 8192 cycles.
const keyRefreshPeriod = 8192

// centerRefreshPeriod is how often (in decision cycles) the scheduler
// re-centers the network's serial-safety windows on the service frontier.
// Centers are a pure speed hint (see shuffle.SetFieldCenters); the period
// just has to beat the fastest sustained field drift across a half window
// (0x4000 ticks), which chained deadlines at large admitted periods can
// approach. The O(N) flag rescan amortizes to ~2 slot visits per cycle.
const centerRefreshPeriod = 512

// nullSource backs un-admitted slots: always empty.
type nullSource struct{}

func (nullSource) NextHead() (regblock.Head, bool) { return regblock.Head{}, false }

// New builds a scheduler. Slots start un-admitted (permanently idle until
// Admit).
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	schedule := shuffle.PaperLogN
	switch {
	case cfg.Routing == WinnerOnly:
		schedule = shuffle.Tournament
	case cfg.ExactSort:
		schedule = shuffle.Bitonic
	}
	nw, err := shuffle.New(cfg.Slots, cfg.Mode, schedule)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:       cfg,
		slots:     make([]*regblock.Block, cfg.Slots),
		srcs:      make([]regblock.HeadSource, cfg.Slots),
		timed:     make([]TimedSource, cfg.Slots),
		nw:        nw,
		expirable: make([]bool, cfg.Slots),
		wcClass:   make([]bool, cfg.Slots),
		guarded:   make([]bool, cfg.Slots),
		gens:      make([]uint64, cfg.Slots),
		txBuf:     make([]Transmission, 0, cfg.Slots),
	}
	for i := range s.gens {
		s.gens[i] = genReload
	}
	s.cpd = s.computeCyclesPerDecision()
	if cfg.TraceDepth > 0 {
		s.trace = hwsim.NewTrace(cfg.TraceDepth)
	}
	for i := range s.slots {
		spec := attr.Spec{Class: attr.EDF, Period: 1}
		b, err := regblock.New(attr.SlotID(i), spec, nullSource{})
		if err != nil {
			return nil, err
		}
		s.slots[i] = b
		s.srcs[i] = nullSource{}
		s.cacheSpec(i, spec)
	}
	return s, nil
}

// cacheSpec refreshes slot i's class-fact caches from its admitted spec.
func (s *Scheduler) cacheSpec(i int, spec attr.Spec) {
	s.expirable[i] = spec.Class == attr.EDF || spec.Class == attr.WindowConstrained
	s.wcClass[i] = spec.Class == attr.WindowConstrained
	s.guarded[i] = spec.Class == attr.StaticPriority && spec.Guard != 0
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Admit binds a stream (or streamlet aggregate) to stream-slot i. It must
// be called before Start.
func (s *Scheduler) Admit(i int, spec attr.Spec, src regblock.HeadSource) error {
	if s.started {
		return fmt.Errorf("core: Admit after Start (dynamic admission goes through the Queue Manager)")
	}
	if i < 0 || i >= s.cfg.Slots {
		return fmt.Errorf("core: slot %d out of range [0, %d)", i, s.cfg.Slots)
	}
	if s.cfg.Mode == decision.TagOnly && spec.Class == attr.WindowConstrained {
		return fmt.Errorf("core: window-constrained streams need the DWCS decision datapath, not tag-only")
	}
	b, err := regblock.New(attr.SlotID(i), spec, src)
	if err != nil {
		return err
	}
	s.slots[i] = b
	s.srcs[i] = src
	s.timed[i], _ = src.(TimedSource)
	s.cacheSpec(i, spec)
	return nil
}

// Start runs the LOAD state: every slot ingests its first head. It costs N
// hardware cycles (one slot per clock on the memory interface).
func (s *Scheduler) Start() error {
	if s.started {
		return fmt.Errorf("core: already started")
	}
	s.started = true
	for _, ts := range s.timed {
		if ts != nil {
			ts.Advance(s.vnow)
		}
	}
	for _, b := range s.slots {
		b.Load(s.vnow)
	}
	s.hwCycles += uint64(s.cfg.Slots)
	return nil
}

// computeCyclesPerDecision derives the hardware clock cost of one decision
// cycle under the FSM timeline documented in the package comment. Every
// input is fixed by Config, so New computes it once and the hot path reads
// the cached value.
func (s *Scheduler) computeCyclesPerDecision() int {
	passes := s.nw.PassesPerCycle()
	circulate := 1
	update := 1
	if s.cfg.Mode == decision.TagOnly || s.cfg.ComputeAhead {
		// Fair-queuing/priority-class mappings bypass PRIORITY_UPDATE
		// ("the packet priority does not change after each packet is
		// queued"); compute-ahead folds it into the circulate clock.
		update = 0
	}
	ingest := s.cfg.Slots
	return passes + circulate + update + ingest
}

// CyclesPerDecision exposes the FSM cost model (used by package fpga to
// derive decision rates from clock frequencies).
func (s *Scheduler) CyclesPerDecision() int { return s.cpd }

// PipelinedInitiationInterval returns the clocks between successive
// decisions when the FSM stages overlap — Table 1's concurrency row made
// concrete. Fair-queuing and priority-class mappings (TagOnly) have no
// winner-to-priority feedback, so SCHEDULE of decision n+1 can overlap
// INGEST of decision n and the initiation interval collapses to the
// longest stage. Window-constrained disciplines serialize successive
// decisions (the circulated winner must update priorities before the next
// SCHEDULE), so the interval equals the full serialized cycle — exactly
// why a pipelined Decision-block tree "wastes area" (§3).
func (s *Scheduler) PipelinedInitiationInterval() int {
	full := s.cpd
	if s.cfg.Mode != decision.TagOnly {
		return full // successive decisions are serialized
	}
	passes := s.nw.PassesPerCycle()
	ingest := s.cfg.Slots
	ii := passes
	if ingest > ii {
		ii = ingest
	}
	// The circulate clock pipelines away; the bound is the slowest stage.
	return ii
}

// RunCycle executes one decision cycle. It panics if Start was not called
// (a harness wiring error). Bulk drivers use RunCycles, which reuses one
// CycleResult across the batch instead of returning a fresh value per cycle.
func (s *Scheduler) RunCycle() CycleResult {
	if !s.started {
		panic("core: RunCycle before Start")
	}
	var cr CycleResult
	s.runCycle(&cr)
	return cr
}

// RunCycles executes up to n decision cycles, invoking visit (when non-nil)
// after each with a pointer to a CycleResult reused across the whole batch —
// the result, like its Transmissions slice, is valid only until the next
// cycle runs; callers that retain either must copy. visit returning false
// stops the batch early. RunCycles reports the number of cycles executed.
//
// This is the bulk decision driver: the per-cycle work is exactly RunCycle's,
// but the result value is not copied out per cycle and the endsystem/shard
// pipelines and RunFor all feed through here.
func (s *Scheduler) RunCycles(n int, visit func(*CycleResult) bool) int {
	if !s.started {
		panic("core: RunCycles before Start")
	}
	// Blind batches — no visitor, no trace, no metrics — take the lean
	// cycle path: nothing observes per-cycle results, so the scheduler
	// skips materializing them (and the network skips gathering the
	// ordered block) while producing bit-identical slot state, counters
	// and clocks. See runCycleLean for the equivalence argument.
	if visit == nil && s.trace == nil && s.obs == nil {
		s.wordsStale = true // lean latches drive keys only; see runCycle
		for i := 0; i < n; i++ {
			s.runCycleLean()
		}
		s.syncSources()
		return n
	}
	// The batch result lives in the scheduler, not the stack: &cr handed to
	// the visit closure would force a heap allocation per RunCycles call,
	// which the zero-alloc guarantee (and its AllocsPerRun guards) forbid.
	cr := &s.crBuf
	for i := 0; i < n; i++ {
		s.runCycle(cr)
		if visit != nil && !visit(cr) {
			return i + 1
		}
	}
	return n
}

// recenter re-centers the network's serial-safety windows on the most
// recently transmitted head's deadline and arrival (in current packed-field
// space) and schedules the next refresh.
func (s *Scheduler) recenter(t uint64) {
	s.nw.SetFieldCenters(
		uint16(attr.WrapTime(s.dlHint)-s.keyRef),
		uint16(attr.WrapTime(s.arrHint)-s.keyRef),
	)
	s.nextRecenter = t + centerRefreshPeriod
}

// syncSources advances every timed source to the last executed cycle's
// virtual time. The lean cycle path advances a source only when the cycle
// pulls from it (lazy advance); this batch-end sync restores the invariant
// the eager path maintains — all sources current as of the latest cycle — so
// source-side observers (traffic.Periodic.Generated and friends) read
// identical values at every public-call boundary.
func (s *Scheduler) syncSources() {
	if s.vnow == 0 {
		return
	}
	t := s.vnow - 1
	for _, ts := range s.timed {
		if ts != nil {
			ts.Advance(t)
		}
	}
}

// runCycleLean executes one decision cycle with no observers attached,
// producing the same slot state, counters, virtual clock and hardware-clock
// accounting as runCycle while skipping everything only observers consume:
// the CycleResult and its Transmissions, the metrics staging, and the
// materialized block order (RunLoadedLight routes the key plane but not the
// attribute words; members are read positionally via BlockSlotAt).
//
// Source advances are lazy: a timed source is advanced exactly when the
// cycle is about to pull a head from it — refill of an empty slot, service
// of a block member or winner, expiry drop of a window-constrained loser —
// and all sources re-sync at batch end. Every TimedSource in the tree
// advances latest-wins (an Advance to t' ≥ t leaves identical state whether
// or not Advance(t) ran in between; package tests pin this), so skipped
// intermediate advances are unobservable. Per-slot class facts come from
// the cacheSpec caches; a valid slot is refilled only when its starvation
// guard needs the tick, exactly the cases Refill acts on.
func (s *Scheduler) runCycleLean() {
	t := s.vnow

	if t >= s.nextRekey {
		s.keyRef = attr.WrapTime(t) - 0x8000
		s.recenter(t)
		for _, b := range s.slots {
			b.SetKeyRef(s.keyRef)
		}
		s.nextRekey = t + keyRefreshPeriod
	} else if t >= s.nextRecenter {
		s.recenter(t)
	}

	for i, b := range s.slots {
		if !b.Valid() {
			if ts := s.timed[i]; ts != nil {
				ts.Advance(t)
			}
			b.Refill(t)
		} else if s.guarded[i] {
			b.Refill(t)
		}
		if g := uint64(b.Gen()); g != s.gens[i] {
			s.gens[i] = g
			s.nw.SetInputKey(i, b.Key())
		}
	}
	lt := s.nw.RunLoadedLight()

	switch {
	case s.cfg.Routing == WinnerOnly && !lt.Idle:
		w := lt.WinnerSlot
		wb := s.slots[w]
		if ts := s.timed[w]; ts != nil {
			ts.Advance(t)
		}
		s.arrHint, s.dlHint = wb.Arrival64(), wb.Deadline64()
		wb.Service(wb.Deadline64() < t, true)
		exp := t + 1
		for i, b := range s.slots {
			if !s.expirable[i] || i == int(w) || !b.Valid() || b.Deadline64() >= exp {
				continue
			}
			if s.wcClass[i] {
				if ts := s.timed[i]; ts != nil {
					ts.Advance(t)
				}
				b.ExpireCheck(exp)
			} else {
				// ExpireCheck's EDF arm: charge the miss, keep the head.
				b.Counters.Missed++
			}
		}
	case s.cfg.Routing != WinnerOnly && lt.Valid > 0:
		valid := lt.Valid
		var circulated attr.SlotID
		if s.cfg.Circulate == MaxFirst {
			circulated = s.nw.BlockSlotAt(0)
		} else {
			circulated = s.nw.BlockSlotAt(valid - 1)
		}
		for r := 0; r < valid; r++ {
			pos := r
			if s.cfg.Circulate == MinFirst {
				pos = valid - 1 - r // tail-first transaction
			}
			slot := s.nw.BlockSlotAt(pos)
			mb := s.slots[slot]
			if ts := s.timed[slot]; ts != nil {
				ts.Advance(t)
			}
			if r == 0 {
				s.arrHint, s.dlHint = mb.Arrival64(), mb.Deadline64()
			}
			mb.Service(mb.Deadline64() < t+uint64(r), slot == circulated)
		}
	default:
		s.idleCount++
	}

	s.decisions++
	s.hwCycles += uint64(s.cpd)
	s.vnow++
}

// runCycle executes one decision cycle into cr (overwriting it entirely).
func (s *Scheduler) runCycle(cr *CycleResult) {
	t := s.vnow

	// Epochal key-reference refresh: re-center the packed-key normalization
	// window on the virtual clock so live deadlines keep resolving on the
	// fast path (see keyRefreshPeriod).
	if t >= s.nextRekey {
		s.keyRef = attr.WrapTime(t) - 0x8000
		s.recenter(t)
		for _, b := range s.slots {
			b.SetKeyRef(s.keyRef)
		}
		s.nextRekey = t + keyRefreshPeriod
	} else if t >= s.nextRecenter {
		s.recenter(t)
	}

	// A lean batch ran since the last full cycle: its latches drove keys
	// only (the Light path never reads the attribute words), so force every
	// slot's word back onto the bus before a word-materializing run.
	if s.wordsStale {
		for i := range s.gens {
			s.gens[i] = genReload
		}
		s.wordsStale = false
	}

	// INGEST half 1 fused with the SCHEDULE latch: release newly arrived
	// traffic, refill idle slots (the Streaming unit keeping card queues
	// full), and drive each slot's attribute word and cached rank key onto
	// the network's input registers — one pass over the slots, slots being
	// mutually independent until the network runs. A slot whose mutation
	// generation is unchanged since its last latch is already on the bus
	// and is skipped.
	for i, b := range s.slots {
		if ts := s.timed[i]; ts != nil {
			ts.Advance(t)
		}
		b.Refill(t)
		if g := uint64(b.Gen()); g != s.gens[i] {
			s.gens[i] = g
			s.nw.SetInput(i, b.Out(), b.Key())
		}
	}
	res := s.nw.RunLoaded()

	*cr = CycleResult{
		Decision: s.decisions,
		Time:     t,
		HWCycles: s.cpd,
	}
	s.txBuf = s.txBuf[:0]
	s.cycleExpiries = 0
	s.cycleWinnerKey = 0

	switch s.cfg.Routing {
	case WinnerOnly:
		s.runWinnerOnly(t, res, cr)
	default:
		s.runBlock(t, res, cr)
	}

	s.decisions++
	s.hwCycles += uint64(cr.HWCycles)
	s.vnow++
	if cr.Idle {
		s.idleCount++
	}
	cr.Transmissions = s.txBuf
	if s.trace != nil {
		s.emitTrace(cr) //sslint:allow allocproof — tracing is a debug facility; trace is nil on measured runs
	}
	if s.obs != nil {
		s.observe(cr)
	}
}

// emitTrace records the cycle's control-unit events.
func (s *Scheduler) emitTrace(cr *CycleResult) {
	if cr.Idle {
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: "IDLE"})
		return
	}
	s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: "SCHEDULE"})
	s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.winner", Value: fmt.Sprint(cr.Winner)})
	for _, tx := range cr.Transmissions {
		val := fmt.Sprintf("slot=%d rank=%d late=%v", tx.Slot, tx.Rank, tx.Late)
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "tx", Value: val})
	}
	if s.cfg.Mode != decision.TagOnly {
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: "PRIORITY_UPDATE"})
	}
}

// Trace returns the control-unit trace buffer (nil unless Config.TraceDepth
// was set).
func (s *Scheduler) Trace() *hwsim.Trace { return s.trace }

// AdmitDynamic binds a new stream to slot i while the scheduler is running
// — the paper's operational model ("as streams arrive, their service
// attributes are transferred to the FPGA PCI card"). The control unit
// re-enters the LOAD state for that slot, which costs one hardware clock;
// any stream previously bound to the slot departs, its counters discarded
// with it.
func (s *Scheduler) AdmitDynamic(i int, spec attr.Spec, src regblock.HeadSource) error {
	if !s.started {
		return fmt.Errorf("core: AdmitDynamic before Start (use Admit)")
	}
	if i < 0 || i >= s.cfg.Slots {
		return fmt.Errorf("core: slot %d out of range [0, %d)", i, s.cfg.Slots)
	}
	if s.cfg.Mode == decision.TagOnly && spec.Class == attr.WindowConstrained {
		return fmt.Errorf("core: window-constrained streams need the DWCS decision datapath, not tag-only")
	}
	b, err := regblock.New(attr.SlotID(i), spec, src)
	if err != nil {
		return err
	}
	s.slots[i] = b
	s.srcs[i] = src
	s.timed[i], _ = src.(TimedSource)
	s.cacheSpec(i, spec)
	s.gens[i] = genReload // new block: its generation counter starts over
	b.SetKeyRef(s.keyRef)
	if ts := s.timed[i]; ts != nil {
		ts.Advance(s.vnow)
	}
	b.Load(s.vnow)
	s.hwCycles++
	if s.trace != nil {
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: fmt.Sprintf("LOAD[slot %d]", i)})
	}
	return nil
}

// Rebind swaps slot i's head source while the scheduler runs, keeping the
// slot's stream identity: spec, window registers, and performance counters
// survive (unlike AdmitDynamic, which replaces the Register Base block and
// discards its counters). The slot's in-flight head, if any, is flushed —
// the caller owns conservation for it — and the slot reloads from the new
// source, costing one LOAD clock. Each successful rebind bumps the rebind
// epoch, the attribution fence for in-flight results.
//
// This is the re-aggregation hook (§4.2): a surviving slot's source becomes
// a streamlet aggregator spanning its own queue plus a dead shard's
// re-homed flows, while the slot itself keeps its QoS state. It reports
// whether an in-flight head was flushed, so the caller can compensate.
func (s *Scheduler) Rebind(i int, src regblock.HeadSource) (bool, error) {
	if !s.started {
		return false, fmt.Errorf("core: Rebind before Start (use Admit)")
	}
	if i < 0 || i >= s.cfg.Slots {
		return false, fmt.Errorf("core: slot %d out of range [0, %d)", i, s.cfg.Slots)
	}
	if src == nil {
		return false, fmt.Errorf("core: Rebind slot %d to nil source", i)
	}
	s.srcs[i] = src
	s.timed[i], _ = src.(TimedSource)
	if ts := s.timed[i]; ts != nil {
		ts.Advance(s.vnow)
	}
	flushed, err := s.slots[i].Rebind(src, s.vnow)
	if err != nil {
		return false, err
	}
	s.gens[i] = genReload
	s.rebindEpoch++
	s.hwCycles++
	if s.trace != nil {
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: fmt.Sprintf("REBIND[slot %d epoch %d]", i, s.rebindEpoch)})
	}
	return flushed, nil
}

// RebindEpoch returns how many source rebinds the scheduler has performed.
// Zero means every result ever produced belongs to the original binding.
func (s *Scheduler) RebindEpoch() uint64 { return s.rebindEpoch }

// Retune swaps slot i's service attributes while the scheduler runs, keeping
// the slot's head source, in-flight head, and performance counters — the
// counter-preserving spec change live control planes apply at epoch fences
// (weights, periods, priorities, window constraints). The new spec must keep
// the stream's attribute class (regblock enforces it; changing discipline
// mid-stream is an evict + re-admit). The slot's window registers reset to
// the new constraint; its current head keeps the deadline it was admitted
// under, successors synthesize from the new spec. Costs one hardware clock
// (the descriptor rewrite on the memory interface).
func (s *Scheduler) Retune(i int, spec attr.Spec) error {
	if !s.started {
		return fmt.Errorf("core: Retune before Start (use Admit)")
	}
	if i < 0 || i >= s.cfg.Slots {
		return fmt.Errorf("core: slot %d out of range [0, %d)", i, s.cfg.Slots)
	}
	if s.cfg.Mode == decision.TagOnly && spec.Class == attr.WindowConstrained {
		return fmt.Errorf("core: window-constrained streams need the DWCS decision datapath, not tag-only")
	}
	if err := s.slots[i].Retune(spec); err != nil {
		return err
	}
	s.cacheSpec(i, spec)
	s.gens[i] = genReload
	s.hwCycles++
	if s.trace != nil {
		s.trace.Add(hwsim.Event{Cycle: s.hwCycles, Signal: "ctl.state", Value: fmt.Sprintf("RETUNE[slot %d]", i)})
	}
	return nil
}

// runWinnerOnly transmits the single winner and expire-checks the losers.
func (s *Scheduler) runWinnerOnly(now uint64, res shuffle.Result, cr *CycleResult) {
	if !res.Winner.Valid {
		cr.Idle = true
		return
	}
	w := res.Winner
	cr.Winner = w.Slot
	wb := s.slots[w.Slot]
	s.cycleWinnerKey = wb.Key()
	s.arrHint, s.dlHint = wb.Arrival64(), wb.Deadline64()
	late := wb.Deadline64() < now
	s.txBuf = append(s.txBuf, Transmission{
		Slot: w.Slot, Rank: 0, Late: late, Deadline: w.Deadline,
		Arrival: w.Arrival, Arrival64: wb.Arrival64(),
	})
	wb.Service(late, true)
	// PRIORITY_UPDATE, loser side: a head that can no longer be scheduled
	// by its deadline (the next opportunity is now+1) charges the
	// missed-deadline counter — per decision cycle, the paper's Table 3
	// accounting — and, for window-constrained streams, is dropped.
	for _, b := range s.slots {
		if b.Slot() == w.Slot {
			continue
		}
		if b.ExpireCheck(now + 1) {
			s.cycleExpiries++
		}
	}
}

// runBlock transmits the whole block as one transaction, in head-first
// (max-first) or tail-first (min-first) order, circulating the
// corresponding end of the block for PRIORITY_UPDATE.
func (s *Scheduler) runBlock(now uint64, res shuffle.Result, cr *CycleResult) {
	// Invalid slots sink to the block tail (Decision validity rule), so
	// the valid prefix is the transaction.
	valid := len(res.Block)
	for valid > 0 && !res.Block[valid-1].Valid { //sslint:bounded valid strictly decreases toward its zero floor
		valid--
	}
	if valid == 0 {
		cr.Idle = true
		return
	}
	var circulated attr.SlotID
	if s.cfg.Circulate == MaxFirst {
		circulated = res.Block[0].Slot
	} else {
		circulated = res.Block[valid-1].Slot
	}
	cr.Winner = circulated
	s.cycleWinnerKey = s.slots[circulated].Key()
	for r := 0; r < valid; r++ {
		member := res.Block[r]
		if s.cfg.Circulate == MinFirst {
			member = res.Block[valid-1-r] // tail-first transaction
		}
		mb := s.slots[member.Slot]
		if r == 0 {
			s.arrHint, s.dlHint = mb.Arrival64(), mb.Deadline64()
		}
		late := mb.Deadline64() < now+uint64(r)
		s.txBuf = append(s.txBuf, Transmission{
			Slot: member.Slot, Rank: r, Late: late, Deadline: member.Deadline,
			Arrival: member.Arrival, Arrival64: mb.Arrival64(),
		})
		s.slots[member.Slot].Service(late, member.Slot == circulated)
	}
}

// RunFor executes n decision cycles, discarding per-cycle results (counters
// keep accumulating). It is the bulk driver for the Table 3 and throughput
// experiments.
func (s *Scheduler) RunFor(n int) {
	s.RunCycles(n, nil)
}

// Now returns the current virtual time (decision-cycle units).
func (s *Scheduler) Now() uint64 { return s.vnow }

// Decisions returns the number of completed decision cycles.
func (s *Scheduler) Decisions() uint64 { return s.decisions }

// HWCycles returns the cumulative hardware clock cycles consumed (LOAD plus
// every decision cycle).
func (s *Scheduler) HWCycles() uint64 { return s.hwCycles }

// IdleCycles returns the number of decision cycles with no backlogged slot.
func (s *Scheduler) IdleCycles() uint64 { return s.idleCount }

// SlotCounters returns slot i's hardware performance counters. An
// out-of-range index (validated like Admit's) returns the zero value — the
// hardware returns nothing for a register address that doesn't exist.
func (s *Scheduler) SlotCounters(i int) regblock.Counters {
	if i < 0 || i >= len(s.slots) {
		return regblock.Counters{}
	}
	return s.slots[i].Counters
}

// SlotAttributes returns slot i's current attribute word (diagnostics), or
// the zero word when i is out of range.
func (s *Scheduler) SlotAttributes(i int) attr.Attributes {
	if i < 0 || i >= len(s.slots) {
		return attr.Attributes{}
	}
	return s.slots[i].Out()
}

// SlotSpec returns the stream specification admitted to slot i, or the zero
// spec when i is out of range.
func (s *Scheduler) SlotSpec(i int) attr.Spec {
	if i < 0 || i >= len(s.slots) {
		return attr.Spec{}
	}
	return s.slots[i].Spec()
}

// Network exposes the shuffle-exchange network (comparison counters,
// schedule introspection).
func (s *Scheduler) Network() *shuffle.Network { return s.nw }

// Totals aggregates the per-slot counters.
func (s *Scheduler) Totals() regblock.Counters {
	var total regblock.Counters
	for _, b := range s.slots {
		c := b.Counters
		total.Wins += c.Wins
		total.Services += c.Services
		total.Met += c.Met
		total.Missed += c.Missed
		total.Drops += c.Drops
		total.Violations += c.Violations
	}
	return total
}
