package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/regblock"
	"repro/internal/traffic"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"4 slots ok", Config{Slots: 4}, true},
		{"32 slots ok", Config{Slots: 32}, true},
		{"1024 ok", Config{Slots: 1024}, true},
		{"too small", Config{Slots: 1}, false},
		{"not pow2", Config{Slots: 12}, false},
		{"too big", Config{Slots: 2048}, false},
		{"wr exact sort", Config{Slots: 4, Routing: WinnerOnly, ExactSort: true}, false},
		{"ba exact sort ok", Config{Slots: 4, ExactSort: true}, true},
		{"bad routing", Config{Slots: 4, Routing: Routing(7)}, false},
		{"bad circulate", Config{Slots: 4, Circulate: Circulate(7)}, false},
		{"bad mode", Config{Slots: 4, Mode: decision.Mode(7)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestStrings(t *testing.T) {
	if BlockRouting.String() != "BA" || WinnerOnly.String() != "WR" || Routing(9).String() != "routing(9)" {
		t.Error("Routing.String misbehaved")
	}
	if MaxFirst.String() != "max-first" || MinFirst.String() != "min-first" || Circulate(9).String() != "circulate(9)" {
		t.Error("Circulate.String misbehaved")
	}
}

// edfScheduler builds an n-slot scheduler with backlogged EDF streams whose
// deadlines start one time unit apart (the Table 3 workload shape).
func edfScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Slots; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdmitErrors(t *testing.T) {
	s, err := New(Config{Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := &traffic.Periodic{Gap: 1, Backlogged: true}
	if err := s.Admit(-1, attr.Spec{Class: attr.EDF, Period: 1}, src); err == nil {
		t.Error("negative slot accepted")
	}
	if err := s.Admit(4, attr.Spec{Class: attr.EDF, Period: 1}, src); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF}, src); err == nil {
		t.Error("invalid spec accepted")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 1}, src); err == nil {
		t.Error("Admit after Start accepted")
	}
	if err := s.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestTagOnlyRejectsWindowConstrained(t *testing.T) {
	s, _ := New(Config{Slots: 4, Mode: decision.TagOnly})
	spec := attr.Spec{Class: attr.WindowConstrained, Period: 1, Constraint: attr.Constraint{Num: 1, Den: 2}}
	if err := s.Admit(0, spec, &traffic.Periodic{Gap: 1, Backlogged: true}); err == nil {
		t.Error("tag-only datapath accepted a window-constrained stream")
	}
}

func TestRunCycleBeforeStartPanics(t *testing.T) {
	s, _ := New(Config{Slots: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("RunCycle before Start did not panic")
		}
	}()
	s.RunCycle()
}

func TestWinnerOnlyBasicEDF(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	cr := s.RunCycle()
	if cr.Idle {
		t.Fatal("cycle idle with backlogged streams")
	}
	if cr.Winner != 0 {
		t.Fatalf("first winner = slot %d, want 0 (earliest deadline)", cr.Winner)
	}
	if len(cr.Transmissions) != 1 {
		t.Fatalf("WR transmitted %d frames, want 1", len(cr.Transmissions))
	}
	tx := cr.Transmissions[0]
	if tx.Late {
		t.Fatal("first transmission late (deadline 1 at time 0)")
	}
	if tx.Rank != 0 {
		t.Fatalf("WR rank = %d, want 0", tx.Rank)
	}
}

func TestBlockTransmitsWholeBacklog(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: BlockRouting, Circulate: MaxFirst})
	cr := s.RunCycle()
	if len(cr.Transmissions) != 4 {
		t.Fatalf("BA transmitted %d frames, want 4", len(cr.Transmissions))
	}
	// Max-first transmits head-first: slots in deadline order 0,1,2,3.
	for r, tx := range cr.Transmissions {
		if int(tx.Slot) != r || tx.Rank != r {
			t.Fatalf("rank %d: slot %d rank %d", r, tx.Slot, tx.Rank)
		}
		if tx.Late {
			t.Fatalf("rank %d late (deadline %d at time 0)", r, tx.Deadline)
		}
	}
	if cr.Winner != 0 {
		t.Fatalf("max-first circulated slot %d, want 0", cr.Winner)
	}
}

func TestBlockMinFirstTailCirculationAndOrder(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: BlockRouting, Circulate: MinFirst})
	cr := s.RunCycle()
	if cr.Winner != 3 {
		t.Fatalf("min-first circulated slot %d, want 3 (latest deadline)", cr.Winner)
	}
	// Tail-first transmission: 3,2,1,0.
	wantOrder := []attr.SlotID{3, 2, 1, 0}
	for r, tx := range cr.Transmissions {
		if tx.Slot != wantOrder[r] {
			t.Fatalf("rank %d: slot %d, want %d", r, tx.Slot, wantOrder[r])
		}
	}
	// Slot 0 (deadline 1) goes out at rank 3 => time 3 > deadline 1: late.
	last := cr.Transmissions[3]
	if !last.Late {
		t.Fatal("min-first tail-first order must violate slot 0's deadline")
	}
}

func TestIdleWhenNoTraffic(t *testing.T) {
	s, _ := New(Config{Slots: 4})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	cr := s.RunCycle()
	if !cr.Idle || len(cr.Transmissions) != 0 {
		t.Fatalf("expected idle cycle, got %+v", cr)
	}
	if s.IdleCycles() != 1 {
		t.Fatalf("IdleCycles = %d, want 1", s.IdleCycles())
	}
}

func TestPartialBacklogSkipsInvalidSlots(t *testing.T) {
	s, _ := New(Config{Slots: 4, Routing: BlockRouting})
	// Only slots 1 and 2 admitted.
	for _, i := range []int{1, 2} {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	cr := s.RunCycle()
	if len(cr.Transmissions) != 2 {
		t.Fatalf("transmitted %d frames, want 2 (invalid slots excluded)", len(cr.Transmissions))
	}
	for _, tx := range cr.Transmissions {
		if tx.Slot != 1 && tx.Slot != 2 {
			t.Fatalf("transmitted un-admitted slot %d", tx.Slot)
		}
	}
}

func TestTimeGatedArrivalRefill(t *testing.T) {
	// A stream whose first packet arrives at t=3: the slot idles, then
	// refills.
	s, _ := New(Config{Slots: 2, Routing: WinnerOnly})
	src := &traffic.Periodic{Gap: 10, Phase: 3}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 10}, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if cr := s.RunCycle(); !cr.Idle {
			t.Fatalf("cycle %d not idle before first arrival", i)
		}
	}
	cr := s.RunCycle() // t=3: packet released
	if cr.Idle || cr.Winner != 0 {
		t.Fatalf("t=3 cycle: %+v, want slot 0 transmission", cr)
	}
	if got := s.SlotCounters(0); got.Services != 1 || got.Met != 1 {
		t.Fatalf("slot counters = %+v", got)
	}
}

func TestHWCycleAccounting(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int // per decision cycle
	}{
		// log2(4)=2 passes + 1 circulate + 1 update + 4 ingest = 8
		{Config{Slots: 4}, 8},
		// WR same timeline at N=4
		{Config{Slots: 4, Routing: WinnerOnly}, 8},
		// 32 slots: 5 + 1 + 1 + 32 = 39
		{Config{Slots: 32}, 39},
		// tag-only bypasses PRIORITY_UPDATE: 2 + 1 + 0 + 4 = 7
		{Config{Slots: 4, Mode: decision.TagOnly}, 7},
		// compute-ahead folds the update cycle: 7
		{Config{Slots: 4, ComputeAhead: true}, 7},
		// exact sort: 3 passes + 1 + 1 + 4 = 9
		{Config{Slots: 4, ExactSort: true}, 9},
	}
	for _, c := range cases {
		s, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.CyclesPerDecision(); got != c.want {
			t.Errorf("%+v: CyclesPerDecision = %d, want %d", c.cfg, got, c.want)
		}
	}
	// Cumulative accounting: LOAD(N) + n cycles * per-cycle.
	s := edfScheduler(t, Config{Slots: 4})
	s.RunFor(10)
	if got, want := s.HWCycles(), uint64(4+10*8); got != want {
		t.Errorf("HWCycles = %d, want %d", got, want)
	}
	if s.Decisions() != 10 || s.Now() != 10 {
		t.Errorf("Decisions/Now = %d/%d, want 10/10", s.Decisions(), s.Now())
	}
}

func TestBlockMaxFirstMeetsAllDeadlines(t *testing.T) {
	// The Table 3 headline at small scale: staggered EDF backlogged
	// streams, block max-first, zero misses.
	s := edfScheduler(t, Config{Slots: 4, Routing: BlockRouting, Circulate: MaxFirst})
	s.RunFor(1000)
	tot := s.Totals()
	if tot.Missed != 0 {
		t.Fatalf("block max-first missed %d deadlines, want 0", tot.Missed)
	}
	if tot.Services != 4000 {
		t.Fatalf("services = %d, want 4000", tot.Services)
	}
}

func TestBlockMinFirstViolatesDeadlines(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: BlockRouting, Circulate: MinFirst})
	s.RunFor(1000)
	tot := s.Totals()
	if tot.Missed == 0 {
		t.Fatal("block min-first missed no deadlines; expected violations")
	}
	// The earliest-deadline stream (slot 0) bears the misses.
	if c := s.SlotCounters(0); c.Missed == 0 {
		t.Fatalf("slot 0 counters = %+v, expected misses", c)
	}
}

func TestMaxFindingOverloadMissesNearlyAll(t *testing.T) {
	// 4x overload in WR: per-stream missed ≈ cycles - met, met small.
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	const cycles = 1000
	s.RunFor(cycles)
	tot := s.Totals()
	if tot.Services != cycles {
		t.Fatalf("WR transmitted %d frames in %d cycles", tot.Services, cycles)
	}
	missRate := float64(tot.Missed) / float64(4*cycles)
	if missRate < 0.95 {
		t.Fatalf("miss rate = %.3f, want ≈1 under 4x overload", missRate)
	}
}

func TestComputeAheadPreservesSchedule(t *testing.T) {
	// Compute-ahead is a timing optimization; the decision sequence must
	// be identical.
	run := func(ca bool) []attr.SlotID {
		s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly, ComputeAhead: ca})
		var winners []attr.SlotID
		for i := 0; i < 200; i++ {
			cr := s.RunCycle()
			winners = append(winners, cr.Winner)
		}
		return winners
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: winner %d vs %d with compute-ahead", i, a[i], b[i])
		}
	}
}

func TestExactSortBlockOrderSorted(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 8, Routing: BlockRouting, ExactSort: true})
	for i := 0; i < 100; i++ {
		cr := s.RunCycle()
		for r := 1; r < len(cr.Transmissions); r++ {
			a, b := cr.Transmissions[r-1], cr.Transmissions[r]
			if b.Deadline.Before(a.Deadline) {
				t.Fatalf("cycle %d: exact-sort block out of order at rank %d", i, r)
			}
		}
	}
}

func TestWindowConstrainedMixedStreams(t *testing.T) {
	// A DWCS scheduler serving a mix: one EDF, one window-constrained,
	// one static-priority, one fair-tag stream — the paper's headline
	// "mix of EDF, static-priority and fair-share streams" claim.
	s, err := New(Config{Slots: 4, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	admit := func(i int, spec attr.Spec, src regblock.HeadSource) {
		t.Helper()
		if err := s.Admit(i, spec, src); err != nil {
			t.Fatal(err)
		}
	}
	admit(0, attr.Spec{Class: attr.EDF, Period: 4}, &traffic.Periodic{Gap: 4, Backlogged: true})
	admit(1, attr.Spec{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 1, Den: 2}},
		&traffic.Periodic{Gap: 4, Backlogged: true})
	// Background classes use large-but-wrap-safe tag values: the 16-bit
	// comparator is only valid within half the wrap window of the
	// real-time deadlines (which stay small here).
	admit(2, attr.Spec{Class: attr.StaticPriority, Priority: 30000}, &traffic.Periodic{Gap: 1, Backlogged: true})
	tags := make([]uint64, 100)
	arrs := make([]uint64, 100)
	for i := range tags {
		arrs[i] = uint64(i)
		tags[i] = uint64(20000 + i*10)
	}
	tagged, err := traffic.NewTagged(arrs, tags)
	if err != nil {
		t.Fatal(err)
	}
	admit(3, attr.Spec{Class: attr.FairTag, Weight: 1}, tagged)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(100)
	// Real-time streams (earlier deadlines) must dominate service; the
	// static-priority (60000) and fair-tag (≥50000) streams only fill
	// gaps, and the scheduler must not wedge.
	c0, c1 := s.SlotCounters(0), s.SlotCounters(1)
	if c0.Services == 0 || c1.Services == 0 {
		t.Fatalf("real-time streams starved: %+v %+v", c0, c1)
	}
	if s.Totals().Services != 100 {
		t.Fatalf("total services = %d, want 100 (one per WR cycle)", s.Totals().Services)
	}
}

func TestTotalsAggregation(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	s.RunFor(50)
	tot := s.Totals()
	var sum regblock.Counters
	for i := 0; i < 4; i++ {
		c := s.SlotCounters(i)
		sum.Wins += c.Wins
		sum.Services += c.Services
		sum.Met += c.Met
		sum.Missed += c.Missed
		sum.Drops += c.Drops
		sum.Violations += c.Violations
	}
	if tot != sum {
		t.Fatalf("Totals %+v != per-slot sum %+v", tot, sum)
	}
	if tot.Wins != 50 {
		t.Fatalf("wins = %d, want 50", tot.Wins)
	}
}

func TestTransmissionsBufferReused(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: BlockRouting})
	cr1 := s.RunCycle()
	first := cr1.Transmissions[0].Slot
	_ = first
	ptr1 := &cr1.Transmissions[0]
	cr2 := s.RunCycle()
	ptr2 := &cr2.Transmissions[0]
	if ptr1 != ptr2 {
		t.Log("buffer not reused; acceptable but unexpected")
	}
	// Documented contract: results must be copied to be retained. This
	// test just pins that the buffer has stable capacity (no growth).
	if cap(cr2.Transmissions) != 4 {
		t.Fatalf("transmission buffer capacity = %d, want 4", cap(cr2.Transmissions))
	}
}

func TestSlotAttributesExposed(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4})
	a := s.SlotAttributes(2)
	if !a.Valid || a.Slot != 2 {
		t.Fatalf("SlotAttributes(2) = %+v", a)
	}
	if s.Network() == nil || s.Network().Slots() != 4 {
		t.Fatal("Network accessor broken")
	}
	if s.Config().Slots != 4 {
		t.Fatal("Config accessor broken")
	}
}

// TestSlotAccessorsOutOfRange: the diagnostic accessors validate their slot
// index like Admit does, returning zero values instead of panicking on bad
// input.
func TestSlotAccessorsOutOfRange(t *testing.T) {
	s, err := New(Config{Slots: 4, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 2},
		&traffic.Periodic{Gap: 1, Backlogged: true}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 4, 1000} {
		if c := s.SlotCounters(i); c != (regblock.Counters{}) {
			t.Errorf("SlotCounters(%d) = %+v, want zero", i, c)
		}
		if a := s.SlotAttributes(i); a != (attr.Attributes{}) {
			t.Errorf("SlotAttributes(%d) = %+v, want zero", i, a)
		}
		if sp := s.SlotSpec(i); sp != (attr.Spec{}) {
			t.Errorf("SlotSpec(%d) = %+v, want zero", i, sp)
		}
	}
	// In-range accessors still report the admitted stream.
	if sp := s.SlotSpec(0); sp.Class != attr.EDF || sp.Period != 2 {
		t.Errorf("SlotSpec(0) = %+v", sp)
	}
}
