package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/traffic"
)

// TestFullDeterminism pins the reproduction's determinism guarantee: two
// identically configured schedulers over identical workloads produce
// byte-identical decision sequences, transmissions and counters — no maps,
// wall clocks or unseeded randomness anywhere in the decision path.
func TestFullDeterminism(t *testing.T) {
	build := func() *Scheduler {
		s, err := New(Config{Slots: 8, Routing: BlockRouting, Circulate: MinFirst})
		if err != nil {
			t.Fatal(err)
		}
		specs := []attr.Spec{
			{Class: attr.EDF, Period: 3},
			{Class: attr.WindowConstrained, Period: 2, Constraint: attr.Constraint{Num: 1, Den: 3}},
			{Class: attr.StaticPriority, Priority: 20000},
			{Class: attr.EDF, Period: 5},
			{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 2, Den: 4}},
			{Class: attr.EDF, Period: 2},
			{Class: attr.EDF, Period: 7},
			{Class: attr.StaticPriority, Priority: 25000},
		}
		for i, spec := range specs {
			if err := s.Admit(i, spec, &traffic.Bursty{
				BurstLen: 50, Gap: uint64(1 + i%3), InterBurst: 40, Phase: uint64(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	for c := 0; c < 5000; c++ {
		ra := a.RunCycle()
		rb := b.RunCycle()
		if ra.Winner != rb.Winner || ra.Idle != rb.Idle || len(ra.Transmissions) != len(rb.Transmissions) {
			t.Fatalf("cycle %d diverged: %+v vs %+v", c, ra, rb)
		}
		for k := range ra.Transmissions {
			if ra.Transmissions[k] != rb.Transmissions[k] {
				t.Fatalf("cycle %d tx %d diverged", c, k)
			}
		}
	}
	for i := 0; i < 8; i++ {
		if a.SlotCounters(i) != b.SlotCounters(i) {
			t.Fatalf("slot %d counters diverged", i)
		}
	}
	if a.HWCycles() != b.HWCycles() {
		t.Fatal("hardware cycle counts diverged")
	}
}

// TestConservationUnderRandomStarvation property-checks that frames are
// neither created nor destroyed when sources starve and refill arbitrarily:
// services + retained backlog == consumed heads.
func TestConservationUnderRandomStarvation(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		src0 := &traffic.Bursty{BurstLen: 7, Gap: 2, InterBurst: 13 * seed, Limit: 200}
		src1 := &traffic.Bursty{BurstLen: 3, Gap: 5, InterBurst: 7 * seed, Limit: 200}
		s, err := New(Config{Slots: 2, Routing: WinnerOnly})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 2}, src0); err != nil {
			t.Fatal(err)
		}
		if err := s.Admit(1, attr.Spec{Class: attr.EDF, Period: 5}, src1); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for s.Totals().Services < 400 {
			s.RunCycle()
			if s.Now() > 100000 {
				t.Fatalf("seed %d: wedged at %d services", seed, s.Totals().Services)
			}
		}
		// EDF never drops: every consumed head is eventually serviced.
		consumed := src0.Consumed() + src1.Consumed()
		services := s.Totals().Services
		// The two heads still resident in the slots are consumed but
		// not yet serviced.
		resident := uint64(0)
		for i := 0; i < 2; i++ {
			if s.SlotAttributes(i).Valid {
				resident++
			}
		}
		if services+resident != consumed {
			t.Fatalf("seed %d: %d services + %d resident != %d consumed",
				seed, services, resident, consumed)
		}
	}
}
