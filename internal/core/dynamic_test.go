package core

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/traffic"
)

func TestTraceRecordsFSM(t *testing.T) {
	s, err := New(Config{Slots: 4, Routing: WinnerOnly, TraceDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(3)
	tr := s.Trace()
	if tr == nil {
		t.Fatal("trace not enabled")
	}
	dump := tr.Dump("")
	for _, want := range []string{"ctl.state=SCHEDULE", "ctl.state=PRIORITY_UPDATE", "ctl.winner=0", "tx=slot=0 rank=0 late=false"} {
		if !strings.Contains(dump, want) {
			t.Errorf("trace missing %q:\n%s", want, dump)
		}
	}
}

func TestTraceIdleState(t *testing.T) {
	s, _ := New(Config{Slots: 2, TraceDepth: 8})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunCycle()
	if !strings.Contains(s.Trace().Dump(""), "ctl.state=IDLE") {
		t.Fatal("idle cycle not traced")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	s, _ := New(Config{Slots: 2})
	if s.Trace() != nil {
		t.Fatal("trace enabled without TraceDepth")
	}
}

func TestAdmitDynamicReplacesStream(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	s.RunFor(20)
	// A new stream arrives and takes over slot 2 mid-operation. Its
	// deadline anchors at arrival+period, so under EDF it first waits for
	// the established backlog's earlier deadlines to be worked off — then
	// joins the rotation.
	src := &traffic.Periodic{Gap: 1, Phase: s.Now(), Backlogged: true}
	if err := s.AdmitDynamic(2, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
		t.Fatal(err)
	}
	if got := s.SlotCounters(2); got.Services != 0 {
		t.Fatalf("new stream inherited old counters: %+v", got)
	}
	s.RunFor(300)
	if got := s.SlotCounters(2).Services; got == 0 {
		t.Fatal("dynamically admitted stream never served")
	}
	// Scheduling must remain conservative: one service per WR cycle.
	if tot := s.Totals().Services; tot > 320 {
		t.Fatalf("services = %d across 320 cycles", tot)
	}
}

func TestAdmitDynamicValidation(t *testing.T) {
	s, _ := New(Config{Slots: 2})
	src := &traffic.Periodic{Gap: 1, Backlogged: true}
	if err := s.AdmitDynamic(0, attr.Spec{Class: attr.EDF, Period: 1}, src); err == nil {
		t.Error("AdmitDynamic before Start accepted")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.AdmitDynamic(5, attr.Spec{Class: attr.EDF, Period: 1}, src); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := s.AdmitDynamic(0, attr.Spec{Class: attr.EDF}, src); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestAdmitDynamicCostsOneLoadClock(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	before := s.HWCycles()
	src := &traffic.Periodic{Gap: 1, Backlogged: true}
	if err := s.AdmitDynamic(0, attr.Spec{Class: attr.EDF, Period: 2}, src); err != nil {
		t.Fatal(err)
	}
	if got := s.HWCycles() - before; got != 1 {
		t.Fatalf("dynamic admission cost %d clocks, want 1 (single-slot LOAD)", got)
	}
}

func TestLongRunWrapSafety(t *testing.T) {
	// Run well past the 16-bit wrap (65536) and verify the counters stay
	// coherent: the datapath compares wrapped fields, the instrumentation
	// uses the 64-bit shadows.
	if testing.Short() {
		t.Skip("200k-cycle run")
	}
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	const cycles = 200000
	s.RunFor(cycles)
	tot := s.Totals()
	if tot.Services != cycles {
		t.Fatalf("services = %d, want %d (one per WR cycle)", tot.Services, cycles)
	}
	// Round-robin must persist across wraps: every slot within 2% of a
	// quarter share.
	for i := 0; i < 4; i++ {
		w := s.SlotCounters(i).Wins
		if w < cycles/4-cycles/50 || w > cycles/4+cycles/50 {
			t.Errorf("slot %d wins = %d, want ≈%d", i, w, cycles/4)
		}
	}
	// Overload accounting: met + missed bookkeeping must not wrap
	// negative or explode. In 4x overload, misses ≈ 4/cycle.
	if tot.Missed < 4*cycles*95/100 || tot.Missed > 4*cycles {
		t.Errorf("missed = %d, want ≈%d", tot.Missed, 4*cycles)
	}
}
