package core_test

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

// Example builds the Table 3 workload on the block (BA) configuration and
// shows one sorted block transaction.
func Example() {
	sched, _ := core.New(core.Config{Slots: 4, Routing: core.BlockRouting})
	for i := 0; i < 4; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		_ = sched.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src)
	}
	_ = sched.Start()
	cr := sched.RunCycle()
	fmt.Printf("circulated winner: slot %d\n", cr.Winner)
	fmt.Printf("block size: %d, hardware clocks: %d\n", len(cr.Transmissions), cr.HWCycles)
	// Output:
	// circulated winner: slot 0
	// block size: 4, hardware clocks: 8
}

// ExampleScheduler_AdmitDynamic replaces a stream while the scheduler runs
// — the paper's operational model of streams arriving at the card.
func ExampleScheduler_AdmitDynamic() {
	sched, _ := core.New(core.Config{Slots: 2, Routing: core.WinnerOnly})
	_ = sched.Admit(0, attr.Spec{Class: attr.EDF, Period: 2},
		&traffic.Periodic{Gap: 2, Backlogged: true})
	_ = sched.Start()
	sched.RunFor(10)
	// A new stream takes over slot 1 mid-operation.
	err := sched.AdmitDynamic(1, attr.Spec{Class: attr.EDF, Period: 4},
		&traffic.Periodic{Gap: 4, Phase: sched.Now(), Backlogged: true})
	fmt.Println("admitted:", err == nil)
	sched.RunFor(40)
	fmt.Println("slot 1 served:", sched.SlotCounters(1).Services > 0)
	// Output:
	// admitted: true
	// slot 1 served: true
}

// ExampleScheduler_Trace captures the control unit's FSM activity.
func ExampleScheduler_Trace() {
	sched, _ := core.New(core.Config{Slots: 2, Routing: core.WinnerOnly, TraceDepth: 16})
	_ = sched.Admit(0, attr.Spec{Class: attr.EDF, Period: 1},
		&traffic.Periodic{Gap: 1, Backlogged: true})
	_ = sched.Start()
	sched.RunCycle()
	for _, e := range sched.Trace().Events() {
		if e.Signal == "ctl.state" {
			fmt.Println(e.Value)
		}
	}
	// Output:
	// SCHEDULE
	// PRIORITY_UPDATE
}
