package core

// Integration tests for the paper's "unified canonical architecture" claim
// on the fair-queuing side: priority-class and fair-queuing disciplines map
// onto the same datapath with simple comparators (TagOnly mode) and the
// PRIORITY_UPDATE cycle bypassed, service tags coming from the Queue
// Manager.

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/qm"
	"repro/internal/regblock"
)

// TestFairQueuingMappingAchievesWeightedShares drives a TagOnly scheduler
// from Queue-Manager-computed WFQ tags and checks that the hardware
// enforces the weights — fair queuing realized on the ShareStreams
// datapath.
func TestFairQueuingMappingAchievesWeightedShares(t *testing.T) {
	const n = 4
	weights := []uint16{1, 1, 2, 4}

	manager, err := qm.New(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Slots: n, Mode: decision.TagOnly, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		spec := attr.Spec{Class: attr.FairTag, Weight: weights[i]}
		if err := manager.Describe(i, spec); err != nil {
			t.Fatal(err)
		}
		if err := s.Admit(i, spec, manager.Source(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Producer keeps every queue topped up with fixed-size frames; tags
	// are stamped at arrival by the QM.
	top := func() {
		for i := 0; i < n; i++ {
			for manager.Backlog(i) < 8 {
				if !manager.Submit(i, qm.Frame{Size: 100, Arrival: s.Now()}) {
					t.Fatal("submit failed")
				}
			}
		}
	}
	top()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	const cycles = 16000
	for c := 0; c < cycles; c++ {
		top()
		s.RunCycle()
	}

	var totalW float64
	for _, w := range weights {
		totalW += float64(w)
	}
	for i := 0; i < n; i++ {
		got := float64(s.SlotCounters(i).Services) / cycles
		want := float64(weights[i]) / totalW
		if math.Abs(got-want) > 0.02 {
			t.Errorf("slot %d share = %.3f, want %.3f (weight %d)", i, got, want, weights[i])
		}
	}
}

// TestFairMappingBypassesPriorityUpdate pins the §2 insight: fair-queuing
// packets' priorities do not change after queueing, so the TagOnly mapping
// skips the PRIORITY_UPDATE clock, and the slot's attribute word only
// changes when a new packet loads.
func TestFairMappingBypassesPriorityUpdate(t *testing.T) {
	manager, _ := qm.New(2, 64)
	s, err := New(Config{Slots: 2, Mode: decision.TagOnly, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		spec := attr.Spec{Class: attr.FairTag, Weight: 1}
		manager.Describe(i, spec)
		if err := s.Admit(i, spec, manager.Source(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		manager.Submit(0, qm.Frame{Size: 100})
		manager.Submit(1, qm.Frame{Size: 100})
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// The loser's word must be bit-identical across a decision cycle it
	// loses (no update applied).
	cr := s.RunCycle()
	loser := 1 - int(cr.Winner)
	before := s.SlotAttributes(loser)
	// Run a cycle in which the loser's queue is not touched… it will win
	// now (lower tag), so compare the *other* slot across its losing
	// cycle instead:
	after := s.SlotAttributes(loser)
	if before != after {
		t.Fatalf("loser word changed without a dequeue: %+v vs %+v", before, after)
	}
	// And the FSM cost reflects the bypass: log2(2)=1 sort + 1 circulate
	// + 0 update + 2 ingest = 4 clocks.
	if got := s.CyclesPerDecision(); got != 4 {
		t.Fatalf("TagOnly cycles/decision = %d, want 4 (PRIORITY_UPDATE bypassed)", got)
	}
}

// TestStaticPriorityMapping runs the priority-class mapping: static
// priorities in the deadline field, strict priority order, no updates.
func TestStaticPriorityMapping(t *testing.T) {
	s, err := New(Config{Slots: 4, Mode: decision.TagOnly, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	prios := []uint16{300, 100, 200, 400}
	for i, p := range prios {
		src := &backlogSource{}
		if err := s.Admit(i, attr.Spec{Class: attr.StaticPriority, Priority: p}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 100; c++ {
		cr := s.RunCycle()
		// Slot 1 (priority 100) always wins while backlogged.
		if cr.Winner != 1 {
			t.Fatalf("cycle %d: winner %d, want slot 1 (highest static priority)", c, cr.Winner)
		}
	}
}

// backlogSource is an endless source with increasing arrivals.
type backlogSource struct{ k uint64 }

func (b *backlogSource) NextHead() (regblock.Head, bool) {
	h := regblock.Head{Arrival: b.k}
	b.k++
	return h, true
}

// TestPipelinedInitiationInterval pins Table 1's concurrency row: tag-only
// (fair-queuing/priority-class) decisions pipeline down to the slowest FSM
// stage, while the DWCS datapath serializes successive decisions.
func TestPipelinedInitiationInterval(t *testing.T) {
	tag, err := New(Config{Slots: 8, Mode: decision.TagOnly, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	// Serialized: log2(8)=3 + 1 circulate + 0 update + 8 ingest = 12;
	// pipelined: max(3, 8) = 8.
	if got := tag.CyclesPerDecision(); got != 12 {
		t.Fatalf("tag-only serialized clocks = %d, want 12", got)
	}
	if got := tag.PipelinedInitiationInterval(); got != 8 {
		t.Fatalf("tag-only pipelined interval = %d, want 8", got)
	}
	wc, err := New(Config{Slots: 8, Routing: WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	// DWCS: no pipelining — the interval equals the serialized cycle.
	if wc.PipelinedInitiationInterval() != wc.CyclesPerDecision() {
		t.Fatalf("DWCS pipelined %d != serialized %d",
			wc.PipelinedInitiationInterval(), wc.CyclesPerDecision())
	}
}
