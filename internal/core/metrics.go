package core

import (
	"fmt"

	"repro/internal/obs"
)

// Metrics is the scheduler's observability bundle: the per-cycle decision
// and block-utilization telemetry the running system keeps about itself
// (DESIGN.md §6 lists the canonical names and units). Every field except
// Tracer must be non-nil when attached; NewMetrics builds a complete bundle
// against a registry.
//
// Recording is allocation-free — TestZeroAllocInstrumented pins 0
// allocs/cycle with the whole bundle (tracer included) enabled — and all
// times are virtual: decision cycles, never the host clock.
type Metrics struct {
	// Decisions counts completed decision cycles; Idle the subset with no
	// backlogged slot.
	Decisions *obs.Counter
	Idle      *obs.Counter
	// Transmissions counts frames sent; Late the subset sent after their
	// deadline; Expiries the loser heads charged by ExpireCheck.
	Transmissions *obs.Counter
	Late          *obs.Counter
	Expiries      *obs.Counter
	// HW accumulates modeled hardware clock cycles (the Table-1 FSM cost).
	HW *obs.Counter
	// Occupancy is the block-utilization histogram: transmissions per
	// non-idle cycle, in slots (1 for WR; up to N for BA). Utilization is
	// its mean over Config.Slots.
	Occupancy *obs.Histogram
	// WinnerWait is the decision-latency histogram in virtual cycles: how
	// long the circulated winner's head waited from arrival to decision.
	WinnerWait *obs.Histogram
	// Tracer, when non-nil, keeps the last K cycles (winner slot, block
	// occupancy, expiries, winner rank key) for post-mortem dumps.
	Tracer *obs.CycleTracer
}

// NewMetrics registers a complete scheduler bundle on reg under prefix
// (canonically "core"): prefix.decisions, prefix.idle_cycles,
// prefix.transmissions, prefix.late_transmissions, prefix.expiries,
// prefix.hw_cycles, prefix.block_occupancy, prefix.winner_wait, and — when
// traceDepth > 0 — the prefix.cycles tracer. Registration is idempotent, so
// successive schedulers can share one bundle and their counts aggregate.
func NewMetrics(reg *obs.Registry, prefix string, traceDepth int) (*Metrics, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: NewMetrics with nil registry")
	}
	m := &Metrics{
		Decisions:     reg.Counter(prefix+".decisions", "cycles"),
		Idle:          reg.Counter(prefix+".idle_cycles", "cycles"),
		Transmissions: reg.Counter(prefix+".transmissions", "frames"),
		Late:          reg.Counter(prefix+".late_transmissions", "frames"),
		Expiries:      reg.Counter(prefix+".expiries", "heads"),
		HW:            reg.Counter(prefix+".hw_cycles", "clocks"),
		Occupancy:     reg.Histogram(prefix+".block_occupancy", "slots"),
		WinnerWait:    reg.Histogram(prefix+".winner_wait", "cycles"),
	}
	if traceDepth > 0 {
		t, err := reg.Tracer(prefix+".cycles", traceDepth)
		if err != nil {
			return nil, err
		}
		m.Tracer = t
	}
	return m, nil
}

// validate rejects partially wired bundles: a nil field would panic mid-run
// on the hot path, so Instrument refuses it up front.
func (m *Metrics) validate() error {
	switch {
	case m.Decisions == nil, m.Idle == nil, m.Transmissions == nil,
		m.Late == nil, m.Expiries == nil, m.HW == nil,
		m.Occupancy == nil, m.WinnerWait == nil:
		return fmt.Errorf("core: Metrics bundle incomplete (every field except Tracer must be non-nil)")
	}
	return nil
}

// Instrument attaches a metrics bundle to the scheduler; every subsequent
// decision cycle records into it. Pass nil to detach. Instrumentation may
// be attached or swapped at any time, including mid-run — the bundle only
// accumulates from that point.
func (s *Scheduler) Instrument(m *Metrics) error {
	if m != nil {
		if err := m.validate(); err != nil {
			return err
		}
	}
	s.obs = m
	return nil
}

// observe records one completed cycle into the attached bundle. It runs on
// the decision hot path, so it is structurally allocation-free (hotpathalloc
// checks it) and guarded by the nil test in runCycle.
func (s *Scheduler) observe(cr *CycleResult) {
	m := s.obs
	m.Decisions.Inc()
	m.HW.Add(uint64(cr.HWCycles))
	occ := len(cr.Transmissions)
	if cr.Idle {
		m.Idle.Inc()
	} else {
		m.Transmissions.Add(uint64(occ))
		m.Occupancy.Observe(uint64(occ))
		var late uint64
		for i := range cr.Transmissions {
			if cr.Transmissions[i].Late {
				late++
			}
		}
		if late > 0 {
			m.Late.Add(late)
		}
		// Rank 0 is the circulated winner under every configuration (the
		// head in WR/max-first, the tail in min-first's tail-first
		// transaction).
		if a := cr.Transmissions[0].Arrival64; cr.Time >= a {
			m.WinnerWait.Observe(cr.Time - a)
		}
	}
	if s.cycleExpiries > 0 {
		m.Expiries.Add(uint64(s.cycleExpiries))
	}
	if m.Tracer != nil {
		m.Tracer.Record(obs.CycleRecord{
			Decision:  cr.Decision,
			Time:      cr.Time,
			Winner:    uint32(cr.Winner),
			Idle:      cr.Idle,
			Occupancy: uint16(occ),
			Expiries:  s.cycleExpiries,
			WinnerKey: uint64(s.cycleWinnerKey),
		})
	}
}
