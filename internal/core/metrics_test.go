package core

// Observability-layer guards: attaching the full obs bundle (counters,
// histograms, cycle tracer) must keep the steady-state decision cycle at
// zero allocations and bounded overhead, and the recorded telemetry must
// agree with the scheduler's own hardware counters.

import (
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// instrument attaches a fresh full bundle (tracer depth 256) and returns it
// with its registry.
func instrument(t *testing.T, s *Scheduler) (*Metrics, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	m, err := NewMetrics(reg, "core", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Instrument(m); err != nil {
		t.Fatal(err)
	}
	return m, reg
}

// TestZeroAllocInstrumented is the tentpole guard: with metrics and the
// cycle tracer enabled, a steady-state decision cycle still performs no heap
// allocations — observability is free of garbage, at N=32 for both routing
// disciplines and both decision modes.
func TestZeroAllocInstrumented(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		mode    decision.Mode
		routing Routing
	}{
		{"WR32", 32, decision.DWCS, WinnerOnly},
		{"BA32", 32, decision.DWCS, BlockRouting},
		{"TagOnlyWR32", 32, decision.TagOnly, WinnerOnly},
		{"TagOnlyBA32", 32, decision.TagOnly, BlockRouting},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := backloggedScheduler(t, tc.n, tc.mode, tc.routing)
			instrument(t, s)
			const batch = 128
			allocs := testing.AllocsPerRun(50, func() {
				s.RunCycles(batch, nil)
			})
			if allocs != 0 {
				t.Fatalf("instrumented RunCycles(%d) allocated %.2f times (want 0)", batch, allocs)
			}
		})
	}
}

// TestInstrumentedOverheadBounded measures the wall cost of the bundle: the
// instrumented steady state must stay within a generous constant factor of
// the uninstrumented one. The bound is deliberately loose (CI machines
// jitter); the point is to catch an accidental O(N) or allocating slip into
// the recording path, not to benchmark.
func TestInstrumentedOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	const cycles = 200_000
	run := func(instrumented bool) time.Duration {
		s := backloggedScheduler(t, 32, decision.DWCS, WinnerOnly)
		if instrumented {
			instrument(t, s)
		}
		s.RunCycles(cycles/4, nil) // warm
		start := time.Now()
		s.RunCycles(cycles, nil)
		return time.Since(start)
	}
	base := run(false)
	inst := run(true)
	perCycle := (inst - base) / cycles
	// Budget: 4× the uninstrumented cycle plus 2µs of absolute slack per
	// cycle — an order of magnitude above the real cost of a handful of
	// atomics and a mutexed ring store.
	budget := 4*base + cycles*2000
	if inst > budget {
		t.Fatalf("instrumented run %v exceeds budget %v (base %v, overhead/cycle %v)", inst, budget, base, perCycle)
	}
	t.Logf("base %v, instrumented %v, overhead/cycle ≈ %v", base, inst, perCycle)
}

// TestMetricsAgreeWithCounters cross-checks the obs view against the
// scheduler's own accounting for both routing disciplines.
func TestMetricsAgreeWithCounters(t *testing.T) {
	for _, routing := range []Routing{WinnerOnly, BlockRouting} {
		s, err := New(Config{Slots: 8, Routing: routing})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			// Half the slots gated, so idle cycles occur too.
			src := &traffic.Periodic{Gap: 3, Phase: uint64(i), Backlogged: i%2 == 0, Limit: 500}
			if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 4}, src); err != nil {
				t.Fatal(err)
			}
		}
		m, _ := instrument(t, s)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		const n = 2000
		var wantTx, wantLate, wantIdle uint64
		s.RunCycles(n, func(cr *CycleResult) bool {
			if cr.Idle {
				wantIdle++
			}
			wantTx += uint64(len(cr.Transmissions))
			for _, tx := range cr.Transmissions {
				if tx.Late {
					wantLate++
				}
			}
			return true
		})

		if got := m.Decisions.Load(); got != n {
			t.Fatalf("%v: decisions = %d, want %d", routing, got, n)
		}
		if got := m.Idle.Load(); got != wantIdle {
			t.Fatalf("%v: idle = %d, want %d", routing, got, wantIdle)
		}
		if got := m.Transmissions.Load(); got != wantTx {
			t.Fatalf("%v: transmissions = %d, want %d", routing, got, wantTx)
		}
		// Services can lag transmissions: a head that went invalid between
		// the shuffle snapshot and service time still occupies a block rank
		// but is a Service() no-op.
		if tot := s.Totals(); m.Transmissions.Load() < tot.Services {
			t.Fatalf("%v: transmissions %d < Services %d", routing, m.Transmissions.Load(), tot.Services)
		}
		if got := m.Late.Load(); got != wantLate {
			t.Fatalf("%v: late = %d, want %d", routing, got, wantLate)
		}
		if got := m.HW.Load(); got != n*uint64(s.CyclesPerDecision()) {
			t.Fatalf("%v: hw cycles = %d, want %d", routing, got, n*uint64(s.CyclesPerDecision()))
		}
		if got := m.Occupancy.Count(); got != n-wantIdle {
			t.Fatalf("%v: occupancy samples = %d, want %d non-idle cycles", routing, got, n-wantIdle)
		}
		if m.Occupancy.Sum() != wantTx {
			t.Fatalf("%v: occupancy sum = %d, want %d", routing, m.Occupancy.Sum(), wantTx)
		}
		if routing == WinnerOnly {
			// WR charges loser expiries; the obs counter must match the
			// Missed accounting net of late transmissions.
			if got, want := m.Expiries.Load(), s.Totals().Missed-wantLate; got != want {
				t.Fatalf("WR: expiries = %d, want %d (Missed %d − late %d)", got, want, s.Totals().Missed, wantLate)
			}
		}
	}
}

// TestTracerRecordsMatchCycles replays the tracer dump against retained
// cycle results: the last K records must mirror the last K cycles exactly.
func TestTracerRecordsMatchCycles(t *testing.T) {
	s := backloggedScheduler(t, 4, decision.DWCS, BlockRouting)
	m, _ := instrument(t, s)
	type kept struct {
		decision, time uint64
		winner         attr.SlotID
		occ            int
	}
	var log []kept
	s.RunCycles(1000, func(cr *CycleResult) bool {
		log = append(log, kept{cr.Decision, cr.Time, cr.Winner, len(cr.Transmissions)})
		return true
	})
	dump := m.Tracer.Dump()
	if len(dump) != m.Tracer.Cap() {
		t.Fatalf("dump len %d, want full ring %d", len(dump), m.Tracer.Cap())
	}
	tail := log[len(log)-len(dump):]
	for i, rec := range dump {
		want := tail[i]
		if rec.Decision != want.decision || rec.Time != want.time ||
			rec.Winner != uint32(want.winner) || int(rec.Occupancy) != want.occ {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
		if !rec.Idle && rec.WinnerKey == 0 {
			t.Fatalf("record %d: non-idle cycle with zero winner key", i)
		}
	}
}

// TestInstrumentValidation rejects partial bundles and accepts detach.
func TestInstrumentValidation(t *testing.T) {
	s := backloggedScheduler(t, 4, decision.DWCS, WinnerOnly)
	if err := s.Instrument(&Metrics{}); err == nil {
		t.Fatal("partial bundle must be rejected")
	}
	m, _ := instrument(t, s)
	s.RunCycles(10, nil)
	if m.Decisions.Load() != 10 {
		t.Fatalf("decisions = %d, want 10", m.Decisions.Load())
	}
	if err := s.Instrument(nil); err != nil {
		t.Fatal(err)
	}
	s.RunCycles(10, nil)
	if m.Decisions.Load() != 10 {
		t.Fatalf("detached bundle still recorded: %d", m.Decisions.Load())
	}
}
