package core

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/regblock"
	"repro/internal/traffic"
)

// fixedHeads serves a fixed list of heads, then reports empty.
type fixedHeads struct {
	heads []regblock.Head
	next  int
}

func (f *fixedHeads) NextHead() (regblock.Head, bool) {
	if f.next >= len(f.heads) {
		return regblock.Head{}, false
	}
	h := f.heads[f.next]
	f.next++
	return h, true
}

func TestRebindKeepsCountersAndSpec(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	s.RunFor(40)
	before := s.SlotCounters(2)
	if before.Services == 0 {
		t.Fatal("slot 2 never served in the warm-up")
	}
	epochBefore := s.RebindEpoch()
	src := &traffic.Periodic{Gap: 1, Phase: s.Now(), Backlogged: true}
	if _, err := s.Rebind(2, src); err != nil {
		t.Fatal(err)
	}
	if got := s.RebindEpoch(); got != epochBefore+1 {
		t.Fatalf("rebind epoch %d, want %d", got, epochBefore+1)
	}
	if got := s.SlotCounters(2); got.Services != before.Services {
		t.Fatalf("rebind must keep counters: %+v vs %+v", got, before)
	}
	s.RunFor(300)
	if got := s.SlotCounters(2).Services; got <= before.Services {
		t.Fatal("rebound slot never served from its new source")
	}
}

func TestRebindFlushesInFlightHead(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 2, Routing: WinnerOnly})
	// The slot holds an in-flight head from its backlogged source; rebinding
	// to an empty source must leave the slot idle — the stale head must not
	// be transmitted after the swap.
	if _, err := s.Rebind(0, &fixedHeads{}); err != nil {
		t.Fatal(err)
	}
	served := s.SlotCounters(0).Services
	s.RunFor(50)
	if got := s.SlotCounters(0).Services; got != served {
		t.Fatalf("flushed slot still transmitted: %d -> %d", served, got)
	}
	// Refill path still works: rebind again to a live source.
	if _, err := s.Rebind(0, &fixedHeads{heads: []regblock.Head{{Arrival: s.Now()}}}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(50)
	if got := s.SlotCounters(0).Services; got != served+1 {
		t.Fatalf("rebound head not served exactly once: %d -> %d", served, got)
	}
}

func TestRebindValidation(t *testing.T) {
	s, err := New(Config{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebind(0, &fixedHeads{}); err == nil || !strings.Contains(err.Error(), "before Start") {
		t.Fatalf("rebind before Start: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebind(-1, &fixedHeads{}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := s.Rebind(5, &fixedHeads{}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := s.Rebind(0, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestRebindTraced(t *testing.T) {
	s, err := New(Config{Slots: 2, TraceDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebind(1, &fixedHeads{}); err != nil {
		t.Fatal(err)
	}
	if dump := s.Trace().Dump(""); !strings.Contains(dump, "REBIND[slot 1 epoch 1]") {
		t.Fatalf("rebind not traced:\n%s", dump)
	}
}

func TestBlockRebindKeepsWindowRegisters(t *testing.T) {
	spec := attr.Spec{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 2, Den: 5}}
	b, err := regblock.New(3, spec, &fixedHeads{heads: []regblock.Head{{Arrival: 0}, {Arrival: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	b.Load(0)
	b.Service(false, true) // winner-adjust mutates the window registers
	wantWin := b.Out().LossDen
	flushed, err := b.Rebind(&fixedHeads{heads: []regblock.Head{{Arrival: 2}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !flushed {
		t.Fatal("a valid head was in flight; Rebind must report the flush")
	}
	if got := b.Out(); got.LossDen != wantWin || got.Slot != 3 {
		t.Fatalf("rebind disturbed identity: %+v (want den %d, slot 3)", got, wantWin)
	}
	if !b.Valid() {
		t.Fatal("slot must reload from the new source")
	}
	if _, err := b.Rebind(nil, 2); err == nil {
		t.Fatal("nil source accepted")
	}
}
