package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/traffic"
)

// TestTransmissionsAliasingContract pins CycleResult.Transmissions'
// copy-on-retain contract across RunCycles batches, one layer above
// shuffle's TestBlockAliasingContract: the slice aliases the scheduler's
// reused transmission buffer, so its contents are stable only until the
// next decision cycle; a copy taken inside the visit stays stable forever;
// and a header retained past its cycle observes later cycles through the
// same backing array (no fresh allocation per cycle). sslint's retainalias
// analyzer enforces the copy side of this contract in non-test code.
func TestTransmissionsAliasingContract(t *testing.T) {
	s, err := New(Config{Slots: 4, Routing: BlockRouting, Circulate: MinFirst})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		spec := attr.Spec{Class: attr.EDF, Period: uint16(2 + i)}
		if err := s.Admit(i, spec, &traffic.Periodic{Gap: 1, Backlogged: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// First batch: retain the raw header (contract violation on purpose)
	// and take the sanctioned snapshot.
	var retained, snap []Transmission
	s.RunCycles(1, func(cr *CycleResult) bool {
		if len(cr.Transmissions) != 4 {
			t.Fatalf("BA cycle transmitted %d frames, want the full block of 4", len(cr.Transmissions))
		}
		retained = cr.Transmissions
		snap = append(snap[:0], cr.Transmissions...)
		return true
	})

	// Second batch: the buffer must be reused in place across batches.
	var last []Transmission
	var lastVals [4]Transmission
	s.RunCycles(3, func(cr *CycleResult) bool {
		last = cr.Transmissions
		copy(lastVals[:], cr.Transmissions)
		return true
	})
	if &retained[0] != &last[0] {
		t.Fatal("RunCycles allocated a fresh Transmissions buffer instead of reusing it")
	}
	for k := range retained {
		if retained[k] != lastVals[k] {
			t.Fatalf("retained header [%d] = %+v, want the latest cycle's %+v (buffer not shared?)",
				k, retained[k], lastVals[k])
		}
	}
	differs := false
	for k := range snap {
		if snap[k] != lastVals[k] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("cycles 1 and 4 emitted identical transmissions; aliasing not exercised")
	}
}
