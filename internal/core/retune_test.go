package core

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/regblock"
)

func TestRetuneKeepsCountersAndHead(t *testing.T) {
	s := edfScheduler(t, Config{Slots: 4, Routing: WinnerOnly})
	s.RunFor(40)
	before := s.SlotCounters(1)
	if before.Services == 0 {
		t.Fatal("slot 1 never served in the warm-up")
	}
	if !s.SlotAttributes(1).Valid {
		t.Fatal("slot 1 should hold an in-flight head")
	}
	if err := s.Retune(1, attr.Spec{Class: attr.EDF, Period: 7}); err != nil {
		t.Fatal(err)
	}
	if got := s.SlotCounters(1); got.Services != before.Services {
		t.Fatalf("retune must keep counters: %+v vs %+v", got, before)
	}
	if !s.SlotAttributes(1).Valid {
		t.Fatal("retune must keep the in-flight head")
	}
	if got := s.SlotSpec(1).Period; got != 7 {
		t.Fatalf("retuned period %d, want 7", got)
	}
	s.RunFor(100)
	if got := s.SlotCounters(1).Services; got <= before.Services {
		t.Fatal("retuned slot never served again")
	}
}

func TestRetuneResetsWindowRegisters(t *testing.T) {
	spec := attr.Spec{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 2, Den: 5}}
	b, err := regblock.New(0, spec, &fixedHeads{heads: []regblock.Head{{Arrival: 0}, {Arrival: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	b.Load(0)
	b.Service(false, true) // winner-adjust consumes a window slot
	served := b.Counters.Services
	next := attr.Spec{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 1, Den: 3}}
	if err := b.Retune(next); err != nil {
		t.Fatal(err)
	}
	if got := b.Out(); got.LossNum != 1 || got.LossDen != 3 {
		t.Fatalf("retune must restart the window at the new constraint: %+v", got)
	}
	if b.Counters.Services != served {
		t.Fatal("retune must keep counters")
	}
	if !b.Valid() {
		t.Fatal("retune must keep the in-flight head")
	}
	if b.Spec().Constraint != next.Constraint {
		t.Fatalf("spec not updated: %+v", b.Spec())
	}
}

func TestRetuneValidation(t *testing.T) {
	s, err := New(Config{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	edf := attr.Spec{Class: attr.EDF, Period: 1}
	if err := s.Retune(0, edf); err == nil || !strings.Contains(err.Error(), "before Start") {
		t.Fatalf("retune before Start: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Retune(-1, edf); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := s.Retune(2, edf); err == nil {
		t.Error("out-of-range slot accepted")
	}
	// Class changes are an evict + re-admit, not a retune.
	if err := s.Retune(0, attr.Spec{Class: attr.FairTag, Weight: 1}); err == nil ||
		!strings.Contains(err.Error(), "class") {
		t.Errorf("class change accepted: %v", err)
	}
	// Invalid specs are rejected before any state mutates.
	if err := s.Retune(0, attr.Spec{Class: attr.EDF}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRetuneRejectsWCOnTagOnly(t *testing.T) {
	s, err := New(Config{Slots: 2, Mode: decision.TagOnly})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(0, attr.Spec{Class: attr.FairTag, Weight: 2}, &fixedHeads{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	wc := attr.Spec{Class: attr.WindowConstrained, Period: 4}
	if err := s.Retune(0, wc); err == nil || !strings.Contains(err.Error(), "DWCS") {
		t.Fatalf("WC retune on tag-only datapath accepted: %v", err)
	}
}
