package ctlplane

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/shard"
)

// A checkpoint is the journal's periodic full-state record: every
// CheckpointEvery fences the engine renders its complete control-plane view
// — the admitted offering (every stream's placement, rank program, and
// spec), the drained-shard set, the per-shard pool bursts, the offered load,
// the request sequence number, and the conservation ledger — as one
// self-checking journal line. Checkpoints serve two recovery roles:
//
//   - bounded-time state inspection: LatestCheckpoint scans a journal (or
//     its torn prefix) and returns the last recorded control state without
//     re-executing a single epoch — what a recovering daemon reports while
//     replay proper is still running;
//   - divergence localization: replay re-derives each checkpoint from the
//     reconstructed engine and compares field by field, so a divergent
//     replay fails within CheckpointEvery fences of the first bad epoch
//     with a structured diff rather than a bare hash mismatch.
//
// The datapath residue (ring contents, latched heads, virtual time, fair
// tags, window state) is deliberately NOT in the checkpoint: re-execution
// from the journal reconstructs it exactly, and serializing it would freeze
// every internal representation into the journal format. See DESIGN.md §12.

// StreamEntry is one admitted stream in an offering snapshot: identity,
// placement, rank program, and service spec.
type StreamEntry struct {
	ID      shard.StreamID
	Shard   int
	Slot    int
	Program decision.Program
	Spec    attr.Spec
}

// Checkpoint is the full control-plane state at one epoch fence.
type Checkpoint struct {
	Epoch    uint64
	Seq      uint64        // last assigned (== last applied) request sequence
	Offering int           // frames offered per occupied slot per epoch
	Drained  []bool        // per-shard drain flags
	Pool     []int         // per-shard shared-pool burst targets
	Ledger   Ledger        // conservation snapshot at this fence
	Streams  []StreamEntry // admitted offering in (shard, slot) order
}

// render serializes the checkpoint as one journal-line payload (no newline,
// no per-line checksum — the journal adds that).
func (ck Checkpoint) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E%d checkpoint seq=%d offering=%d drained=", ck.Epoch, ck.Seq, ck.Offering)
	for _, d := range ck.Drained {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString(" pool=")
	for i, p := range ck.Pool {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	l := ck.Ledger
	fmt.Fprintf(&b, " ledger=%d/%d/%d/%d/%d/%d/%d",
		l.Offered, l.Delivered, l.DroppedQM, l.DroppedSched, l.Evicted, l.InFlight, l.Streams)
	b.WriteString(" streams=[")
	for i, st := range ck.Streams {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d@%d.%d|%v|%s", st.ID, st.Shard, st.Slot, st.Program, st.Spec)
	}
	b.WriteByte(']')
	return b.String()
}

// parseCheckpoint is the inverse of render. payload is the line text after
// "E<epoch> checkpoint " (the shared record parser has already consumed the
// epoch prefix).
func parseCheckpoint(epoch uint64, payload string) (Checkpoint, error) {
	ck := Checkpoint{Epoch: epoch}
	bad := func(format string, args ...any) (Checkpoint, error) {
		return Checkpoint{}, fmt.Errorf("ctlplane: E%d checkpoint: %s", epoch, fmt.Sprintf(format, args...))
	}
	fields := strings.SplitN(payload, " ", 5)
	if len(fields) != 5 {
		return bad("want 5 fields, got %d", len(fields))
	}
	if _, err := fmt.Sscanf(fields[0], "seq=%d", &ck.Seq); err != nil {
		return bad("seq: %v", err)
	}
	if _, err := fmt.Sscanf(fields[1], "offering=%d", &ck.Offering); err != nil {
		return bad("offering: %v", err)
	}
	drained, ok := strings.CutPrefix(fields[2], "drained=")
	if !ok {
		return bad("missing drained field in %q", fields[2])
	}
	for _, c := range drained {
		switch c {
		case '0':
			ck.Drained = append(ck.Drained, false)
		case '1':
			ck.Drained = append(ck.Drained, true)
		default:
			return bad("drained bit %q", c)
		}
	}
	pool, ok := strings.CutPrefix(fields[3], "pool=")
	if !ok {
		return bad("missing pool field in %q", fields[3])
	}
	for _, p := range strings.Split(pool, ",") {
		n, err := strconv.Atoi(p)
		if err != nil {
			return bad("pool burst %q: %v", p, err)
		}
		ck.Pool = append(ck.Pool, n)
	}
	rest := fields[4]
	l := &ck.Ledger
	l.Epoch = epoch
	ledgerPart, streamsPart, ok := strings.Cut(rest, " streams=[")
	if !ok {
		return bad("missing streams list in %q", rest)
	}
	if _, err := fmt.Sscanf(ledgerPart, "ledger=%d/%d/%d/%d/%d/%d/%d",
		&l.Offered, &l.Delivered, &l.DroppedQM, &l.DroppedSched, &l.Evicted, &l.InFlight, &l.Streams); err != nil {
		return bad("ledger: %v", err)
	}
	streams, ok := strings.CutSuffix(streamsPart, "]")
	if !ok {
		return bad("unterminated streams list")
	}
	if streams != "" {
		for _, entry := range strings.Split(streams, ";") {
			st, err := parseStreamEntry(entry)
			if err != nil {
				return bad("%v", err)
			}
			ck.Streams = append(ck.Streams, st)
		}
	}
	if ck.render() != "E"+strconv.FormatUint(epoch, 10)+" checkpoint "+payload {
		return bad("does not round-trip")
	}
	return ck, nil
}

// parseStreamEntry parses one "id@shard.slot|program|spec" offering entry.
func parseStreamEntry(s string) (StreamEntry, error) {
	var st StreamEntry
	head, rest, ok := strings.Cut(s, "|")
	if !ok {
		return st, fmt.Errorf("stream entry %q: missing program", s)
	}
	if _, err := fmt.Sscanf(head, "%d@%d.%d", &st.ID, &st.Shard, &st.Slot); err != nil {
		return st, fmt.Errorf("stream entry %q: %v", s, err)
	}
	progName, specText, ok := strings.Cut(rest, "|")
	if !ok {
		return st, fmt.Errorf("stream entry %q: missing spec", s)
	}
	prog, err := decision.ParseProgram(progName)
	if err != nil {
		return st, fmt.Errorf("stream entry %q: %v", s, err)
	}
	st.Program = prog
	spec, err := attr.ParseSpec(specText)
	if err != nil {
		return st, fmt.Errorf("stream entry %q: %v", s, err)
	}
	st.Spec = spec
	return st, nil
}

// diff reports the first field-level difference between two checkpoints for
// the same epoch ("" when identical) — replay's structured divergence
// message.
func (ck Checkpoint) diff(other Checkpoint) string {
	a, b := ck.render(), other.render()
	if a == b {
		return ""
	}
	switch {
	case ck.Seq != other.Seq:
		return fmt.Sprintf("seq %d vs %d", ck.Seq, other.Seq)
	case ck.Offering != other.Offering:
		return fmt.Sprintf("offering %d vs %d", ck.Offering, other.Offering)
	case ck.Ledger != other.Ledger:
		return fmt.Sprintf("ledger %+v vs %+v", ck.Ledger, other.Ledger)
	case len(ck.Streams) != len(other.Streams):
		return fmt.Sprintf("%d streams vs %d", len(ck.Streams), len(other.Streams))
	default:
		return fmt.Sprintf("%q vs %q", a, b)
	}
}
