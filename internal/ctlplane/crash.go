package ctlplane

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/fault"
)

// This file is the crash-point recovery harness: the proof that journal
// replay is crash-safe at every byte. It runs one seeded churn soak to
// completion (the reference run), then for each of a seeded sample of byte
// offsets simulates a crash at that offset — the journal's prefix is all
// that survived — and recovers: Replay the torn prefix, Resume through the
// full journal, and require the recovered engine to match the reference in
// journal hash, line count, conservation ledger, and admitted offering.
// A single mismatch at a single offset is a divergence — recovery would
// have silently rebuilt a different control plane than the one that
// crashed.

// CrashSoakConfig parameterizes a crash-recovery soak.
type CrashSoakConfig struct {
	// Soak is the churn workload. Its Journal sink, if set, receives the
	// reference journal text (CI's failure artifact).
	Soak SoakConfig
	// Points is how many crash offsets to sample (default 16). Offsets are
	// uniform over the journal, so they land mid-line, mid-checksum, and on
	// record boundaries in proportion.
	Points int
	// PointSeed seeds the offset sampler (default: derived from Soak.Seed).
	PointSeed int64
}

// CrashPointResult records one recovered crash point.
type CrashPointResult struct {
	// Offset is the crash instant: the journal had Offset bytes on disk.
	Offset int64
	// Committed/Torn split the prefix: replay truncated it to Committed
	// bytes and dropped Torn (partial final write plus any epoch block
	// that never reached its ledger).
	Committed int64
	Torn      int64
	// Epochs counts fences re-executed during Replay (before Resume).
	Epochs uint64
}

// CrashSoakResult summarizes a crash-recovery soak: every sampled point
// recovered to the reference identity.
type CrashSoakResult struct {
	Reference SoakResult
	Points    []CrashPointResult
	// TornPoints counts points whose prefix needed truncation (Torn > 0) —
	// the sample must include some, or it never exercised the torn-tail
	// rule.
	TornPoints int
}

// CrashSoak runs the harness. It returns an error on the first divergence
// (lowest offset), on any reference-soak failure, and on a sample that
// never landed mid-record.
func CrashSoak(cfg CrashSoakConfig) (CrashSoakResult, error) {
	if cfg.Points == 0 {
		cfg.Points = 16
	}
	if cfg.PointSeed == 0 {
		cfg.PointSeed = int64(cfg.Soak.Seed) + 1
	}

	// Reference run, journal text retained (and teed to the caller's sink).
	var text bytes.Buffer
	ref := cfg.Soak
	if ref.Journal != nil {
		ref.Journal = io.MultiWriter(&text, ref.Journal)
	} else {
		ref.Journal = &text
	}
	res, err := Soak(ref)
	if err != nil {
		return CrashSoakResult{}, fmt.Errorf("ctlplane: crash soak reference run: %w", err)
	}
	out := CrashSoakResult{Reference: res}
	journal := text.Bytes()

	points := fault.CrashPoints(cfg.PointSeed, cfg.Points, int64(len(journal)))
	results := make([]*CrashPointResult, len(points))
	errs := make([]error, len(points))

	// Points are independent recoveries of independent engines: run them on
	// all cores, report deterministically by ascending offset.
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, k := range points {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k int64) {
			defer func() { <-sem; wg.Done() }()
			results[i], errs[i] = recoverPoint(journal, k, res)
		}(i, k)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("ctlplane: crash at byte %d: %w", points[i], err)
		}
		out.Points = append(out.Points, *results[i])
		if results[i].Torn > 0 {
			out.TornPoints++
		}
	}
	if len(out.Points) >= 8 && out.TornPoints == 0 {
		return out, fmt.Errorf("ctlplane: crash soak sampled %d points, none torn — the torn-tail rule went unexercised", len(out.Points))
	}
	return out, nil
}

// recoverPoint crashes at offset k and recovers: replay the surviving
// prefix, resume through the full journal, compare every observable to the
// reference.
func recoverPoint(journal []byte, k int64, ref SoakResult) (*CrashPointResult, error) {
	eng, rep, err := Replay(bytes.NewReader(journal[:k]))
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	pt := &CrashPointResult{
		Offset:    k,
		Committed: rep.CommittedBytes,
		Torn:      rep.TornBytes,
		Epochs:    rep.Epochs,
	}
	fin, err := Resume(eng, bytes.NewReader(journal), rep)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	if fin.Hash != ref.JournalHash || fin.Lines != ref.JournalLines {
		return nil, fmt.Errorf("%w: recovered journal %x/%d lines, reference %x/%d",
			ErrReplayDivergence, fin.Hash, fin.Lines, ref.JournalHash, ref.JournalLines)
	}
	if got := eng.Ledger(); got != ref.Final {
		return nil, fmt.Errorf("%w: recovered ledger %+v, reference %+v", ErrReplayDivergence, got, ref.Final)
	}
	if eng.Violations() != 0 {
		return nil, fmt.Errorf("%w: recovery manufactured %d conservation violations",
			ErrReplayDivergence, eng.Violations())
	}
	offering := eng.Offering()
	if len(offering) != len(ref.Offering) {
		return nil, fmt.Errorf("%w: recovered offering has %d streams, reference %d",
			ErrReplayDivergence, len(offering), len(ref.Offering))
	}
	for i := range offering {
		if offering[i] != ref.Offering[i] {
			return nil, fmt.Errorf("%w: recovered offering entry %d is %+v, reference %+v",
				ErrReplayDivergence, i, offering[i], ref.Offering[i])
		}
	}
	return pt, nil
}
