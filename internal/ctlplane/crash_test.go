package ctlplane

import (
	"bytes"
	"testing"

	"repro/internal/fault"
)

// TestCrashSoakRecoversEveryPoint is the crash-point oracle at test scale:
// every sampled crash offset must recover to the reference identity.
func TestCrashSoakRecoversEveryPoint(t *testing.T) {
	res, err := CrashSoak(CrashSoakConfig{
		Soak: SoakConfig{
			Seed: 5, Events: 2000, EventsPerEpoch: 16,
			Shards: 2, SlotsPerShard: 8, CheckpointEvery: 32,
		},
		Points: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 24 {
		t.Fatalf("recovered %d points, want 24", len(res.Points))
	}
	if res.TornPoints == 0 {
		t.Fatal("no sampled point exercised the torn-tail rule")
	}
	for _, pt := range res.Points {
		if pt.Committed+pt.Torn != pt.Offset {
			t.Fatalf("point %d: committed %d + torn %d != offset", pt.Offset, pt.Committed, pt.Torn)
		}
	}
}

// TestCrashWriterEndToEnd runs a soak whose journal sink dies mid-write —
// the full kill -9 simulation — and recovers from what the sink persisted:
// exactly the torn prefix, which must replay cleanly and carry the
// engine-side sink-error count.
func TestCrashWriterEndToEnd(t *testing.T) {
	// Reference for sizing: how big is this workload's journal?
	cfg := SoakConfig{Seed: 21, Events: 1500, EventsPerEpoch: 16, Shards: 2, SlotsPerShard: 8, CheckpointEvery: 32}
	var full bytes.Buffer
	ref := cfg
	ref.Journal = &full
	if _, err := Soak(ref); err != nil {
		t.Fatal(err)
	}

	var torn bytes.Buffer
	cw := &fault.CrashWriter{W: &torn, Budget: int64(full.Len()) * 2 / 3}
	crashed := cfg
	crashed.Journal = cw
	if _, err := Soak(crashed); err != nil {
		t.Fatal(err) // the engine survives sink death; only the copy is lost
	}
	if !cw.Crashed() {
		t.Fatal("budget never spent")
	}
	if int64(torn.Len()) != cw.Budget {
		t.Fatalf("sink persisted %d bytes, budget %d", torn.Len(), cw.Budget)
	}
	// Determinism: the torn sink holds a strict prefix of the reference.
	if !bytes.Equal(torn.Bytes(), full.Bytes()[:torn.Len()]) {
		t.Fatal("torn sink is not a prefix of the reference journal")
	}

	eng, rep, err := Replay(bytes.NewReader(torn.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if led := eng.Ledger(); !led.Balanced() {
		t.Fatalf("recovered engine unbalanced: %+v", led)
	}
	fin, err := Resume(eng, bytes.NewReader(full.Bytes()), rep)
	if err != nil {
		t.Fatal(err)
	}
	j := newJournal(nil)
	j.h.Write(full.Bytes())
	if sum := j.h.Sum64(); sum != fin.Hash {
		t.Fatalf("recovered journal hash %x, reference %x", fin.Hash, sum)
	}
}

// TestSoakCountsSinkErrors drives a soak through a fault-injected sink and
// checks the engine's sink-error counter saw every injected fault — the
// signal -journal-strict acts on.
func TestSoakCountsSinkErrors(t *testing.T) {
	var buf bytes.Buffer
	sink := fault.NewFaultySink(&buf, fault.SinkPlan{Seed: 4, Errors: 5, ShortWrites: 5, Horizon: 512})
	cfg := SoakConfig{Seed: 8, Events: 800, EventsPerEpoch: 16, Shards: 2, SlotsPerShard: 8, Journal: sink}

	// Soak doesn't expose its engine; run the same workload against a plain
	// engine to get the expected journal, then count the faulted lines.
	res, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JournalLines < 512 {
		t.Fatalf("workload journaled %d lines, want >= horizon 512", res.JournalLines)
	}
	if sink.Injected() != 10 {
		t.Fatalf("sink injected %d faults, want 10", sink.Injected())
	}

	// The engine-side counter must agree: re-run with a fresh engine
	// observed directly.
	sink2 := fault.NewFaultySink(&bytes.Buffer{}, fault.SinkPlan{Seed: 4, Errors: 5, ShortWrites: 5, Horizon: 512})
	eng, err := New(Config{Shards: 2, SlotsPerShard: 8, Journal: sink2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Enqueue(Request{Op: OpDrainShard, Shard: 0})
	for i := 0; i < 600; i++ {
		eng.Step()
	}
	if got, want := eng.SinkErrors(), sink2.Injected(); got != want || got == 0 {
		t.Fatalf("engine counted %d sink errors, sink injected %d", got, want)
	}
}
