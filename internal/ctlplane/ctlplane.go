// Package ctlplane is the epoch-fenced control plane of the supervised
// sharded endsystem: the layer that lets a service admit, retune, and evict
// streams, switch per-stream rank programs, resize shared buffer pools, and
// drain or restart whole shards while the schedulers run.
//
// The engine advances in epochs. Each Step is one epoch: first every
// control request enqueued since the last fence is applied, in sequence
// order, at the shard barrier — no shard is mid-decision-cycle, no producer
// is mid-offer, so the counter-preserving mutations (core.Retune, the
// Rebind inside a live eviction) land on quiescent slots; then the engine
// offers the epoch's traffic to every occupied slot; then every running
// shard executes a fixed budget of decision cycles; and finally the engine
// reconciles its conservation ledger:
//
//	offered == delivered + dropped(QM) + dropped(sched) + evicted + in-flight
//
// at every epoch, with in-flight computed as queued frames minus head-drop
// eviction debt plus latched in-flight heads. A violation is a bug, never
// load: the soak harness churns ~10⁶ control events through the engine and
// requires zero.
//
// Every transition is journaled as one text line through a running FNV-64a
// hash, so two runs with the same seed must produce byte-identical journals
// — the hash, the line count, and the final ledger are the replay identity.
// Nothing in the engine reads the wall clock, iterates a map, or consults
// global randomness; determinism is structural, not statistical.
package ctlplane

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/shard"
)

// Op is a control-plane operation kind.
type Op uint8

const (
	// OpAdmit admits Stream with Spec into its flow-hashed home shard.
	OpAdmit Op = iota
	// OpEvict removes Stream, draining its queue and flushing its head.
	OpEvict
	// OpRetune swaps Stream's service attributes in place (same class).
	OpRetune
	// OpSetProgram switches Stream's per-slot rank program (STFQ/WFQ tag
	// choice).
	OpSetProgram
	// OpResizePool re-targets Shard's shared buffer pool to Burst frames.
	OpResizePool
	// OpDrainShard freezes Shard: no traffic is offered to its streams and
	// its scheduler stops stepping; queued frames stay in flight.
	OpDrainShard
	// OpRestartShard resumes a drained Shard.
	OpRestartShard
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpAdmit:
		return "admit"
	case OpEvict:
		return "evict"
	case OpRetune:
		return "retune"
	case OpSetProgram:
		return "program"
	case OpResizePool:
		return "pool"
	case OpDrainShard:
		return "drain"
	case OpRestartShard:
		return "restart"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one control-plane mutation, applied at the next epoch fence.
// Which fields matter depends on Op; the rest are ignored.
type Request struct {
	// Seq is assigned by Enqueue; requests apply in Seq order.
	Seq     uint64
	Op      Op
	Stream  shard.StreamID   // OpAdmit, OpEvict, OpRetune, OpSetProgram
	Spec    attr.Spec        // OpAdmit, OpRetune
	Program decision.Program // OpSetProgram
	Burst   int              // OpResizePool
	Shard   int              // OpResizePool, OpDrainShard, OpRestartShard
}

// Response reports one applied request. Err is a string, not an error, so
// responses serialize identically everywhere (journal, JSON, tests).
type Response struct {
	Seq    uint64
	Epoch  uint64
	Op     Op
	Stream shard.StreamID
	Err    string `json:",omitempty"`
	// Placement (OpAdmit, OpEvict); -1 when not applicable.
	Shard int
	Slot  int
	// Eviction accounting (OpEvict).
	Drained int
	Flushed bool
}

// OK reports whether the request applied cleanly.
func (r Response) OK() bool { return r.Err == "" }

// Ledger is the conservation snapshot the engine reconciles at every epoch
// fence. All counts are cumulative since New except InFlight and Streams,
// which are instantaneous.
type Ledger struct {
	Epoch uint64
	// Offered counts frames the engine handed to the Queue Managers that
	// were accepted (queued) or definitively shed by the overload policy.
	// Frames a Busy verdict turned away were never offered — the producer
	// still holds them.
	Offered uint64
	// Delivered counts transmissions the schedulers produced.
	Delivered uint64
	// DroppedQM counts frames the overload policies lost (shed arrivals,
	// evicted heads).
	DroppedQM uint64
	// DroppedSched counts frames the schedulers dropped (window-constraint
	// expiry), accumulated across slot reuse.
	DroppedSched uint64
	// Evicted counts frames removed by live stream evictions: drained
	// queues plus flushed in-flight heads.
	Evicted uint64
	// InFlight counts frames currently owed delivery: queued frames minus
	// head-drop eviction debt, plus latched in-flight heads.
	InFlight uint64
	// Streams is the admitted stream count.
	Streams uint64
}

// Balanced reports whether the ledger conserves frames.
func (l Ledger) Balanced() bool {
	return l.Offered == l.Delivered+l.DroppedQM+l.DroppedSched+l.Evicted+l.InFlight
}

// Config parameterizes an Engine. Zero fields take defaults.
type Config struct {
	// Shards, SlotsPerShard, RingCapacity, BufferPool, and Program
	// parameterize the underlying shard.Router (see shard.Config).
	Shards        int
	SlotsPerShard int
	RingCapacity  int
	BufferPool    qm.SharedConfig
	Program       decision.Program
	// Policy is the overload policy every shard runs (default Backpressure).
	Policy qm.Policy
	// CyclesPerEpoch is each running shard's decision-cycle budget per Step
	// (default 128).
	CyclesPerEpoch int
	// FramesPerStream is how many frames the engine offers to every
	// occupied slot of every running shard each epoch (default 1; 0 pauses
	// traffic, as SetOffering does live).
	FramesPerStream int
	// FrameBytes is the offered frame size (default 1500).
	FrameBytes int
	// Journal, when non-nil, receives every journal line. The running
	// FNV-64a hash and line count accumulate regardless (JournalSum), so
	// byte-identity is checkable without retaining the text.
	Journal io.Writer
	// CheckpointEvery is how many fences pass between full-state checkpoint
	// records in the journal (default 256; negative disables them).
	// Checkpoints bound how far LatestCheckpoint and replay divergence
	// localization lag behind the tail — see checkpoint.go.
	CheckpointEvery int
}

func (c Config) withDefaults() Config {
	if c.CyclesPerEpoch == 0 {
		c.CyclesPerEpoch = 128
	}
	if c.FramesPerStream == 0 {
		c.FramesPerStream = 1
	}
	if c.FrameBytes == 0 {
		c.FrameBytes = 1500
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	return c
}

// Engine is the epoch-fenced control plane. It is single-goroutine by
// design: Enqueue and Step must be called from one goroutine (a daemon puts
// a channel in front). The obs gauges read atomic snapshots published at
// each fence, so scraping never races the engine.
type Engine struct {
	cfg      Config
	r        *shard.Router
	j        *journal
	epoch    uint64
	nextSeq  uint64
	queue    []Request
	drained  []bool
	offering int

	// Conservation ledger. cumSchedDrops accumulates scheduler drops that
	// slot reuse would otherwise erase: a live eviction freezes the slot's
	// Drops counter into dropBase, and the next dynamic admission resets
	// both the hardware counter and the base, so
	// cumSchedDrops + Σ (Drops − dropBase) is reuse-proof.
	offered       uint64
	delivered     uint64
	evicted       uint64
	cumSchedDrops uint64
	dropBase      [][]uint64

	// Checkpoint state: the control plane's own record of what it has
	// admitted, per (shard, slot), plus per-shard pool bursts. The router
	// holds the live datapath truth; these mirrors exist so a checkpoint
	// line (and the Offering accessor) can be rendered without new router
	// surface, and they are updated only at the fence by apply().
	specs     [][]attr.Spec
	progs     [][]decision.Program
	poolBurst []int

	// Scrape-safe mirrors, published at each fence.
	last       atomic.Pointer[Ledger]
	requests   atomic.Uint64
	failures   atomic.Uint64
	violations atomic.Uint64
}

// New builds an engine: the sharded router is created, switched into live
// mode under cfg.Policy, and journal line zero records the configuration —
// the first byte of the replay identity.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	r, err := shard.New(shard.Config{
		Shards:        cfg.Shards,
		SlotsPerShard: cfg.SlotsPerShard,
		RingCapacity:  cfg.RingCapacity,
		BufferPool:    cfg.BufferPool,
		Program:       cfg.Program,
	})
	if err != nil {
		return nil, err
	}
	if err := r.StartLive(cfg.Policy); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		r:         r,
		j:         newJournal(cfg.Journal),
		drained:   make([]bool, cfg.Shards),
		offering:  cfg.FramesPerStream,
		dropBase:  make([][]uint64, cfg.Shards),
		specs:     make([][]attr.Spec, cfg.Shards),
		progs:     make([][]decision.Program, cfg.Shards),
		poolBurst: make([]int, cfg.Shards),
	}
	for k := range e.dropBase {
		e.dropBase[k] = make([]uint64, cfg.SlotsPerShard)
		e.specs[k] = make([]attr.Spec, cfg.SlotsPerShard)
		e.progs[k] = make([]decision.Program, cfg.SlotsPerShard)
		e.poolBurst[k] = cfg.BufferPool.Burst
	}
	e.last.Store(&Ledger{})
	e.j.printf("ssctl v2 shards=%d slots=%d ring=%d pool=%d/%d/%d program=%v policy=%v cycles=%d frames=%d bytes=%d ckpt=%d",
		cfg.Shards, cfg.SlotsPerShard, cfg.RingCapacity,
		cfg.BufferPool.Reservation, cfg.BufferPool.Burst, cfg.BufferPool.DelayTarget,
		cfg.Program, cfg.Policy, cfg.CyclesPerEpoch, cfg.FramesPerStream,
		cfg.FrameBytes, cfg.CheckpointEvery)
	return e, nil
}

// Router exposes the underlying sharded endsystem (read-only use: metrics,
// placement queries). Mutate only through requests.
func (e *Engine) Router() *shard.Router { return e.r }

// Epoch returns the completed epoch count.
func (e *Engine) Epoch() uint64 { return e.epoch }

// Enqueue queues req for the next epoch fence and returns its sequence
// number. Call from the engine goroutine only.
func (e *Engine) Enqueue(req Request) uint64 {
	e.nextSeq++
	req.Seq = e.nextSeq
	e.queue = append(e.queue, req)
	return req.Seq
}

// SetOffering changes how many frames each occupied slot is offered per
// epoch (0 pauses traffic — the settle phase of a soak). Journaled: offered
// load is part of the replay identity.
func (e *Engine) SetOffering(framesPerStream int) {
	if framesPerStream < 0 {
		framesPerStream = 0
	}
	e.offering = framesPerStream
	e.j.printf("E%d offering frames=%d", e.epoch, framesPerStream)
}

// Ledger returns the conservation snapshot published at the last fence.
// Safe from any goroutine.
func (e *Engine) Ledger() Ledger { return *e.last.Load() }

// JournalSum returns the running FNV-64a hash and line count of the
// journal — the replay identity two same-seed runs must share byte for
// byte.
func (e *Engine) JournalSum() (hash uint64, lines uint64) { return e.j.sum() }

// EpochReport is one Step's outcome.
type EpochReport struct {
	Epoch     uint64
	Responses []Response
	Ledger    Ledger
	Balanced  bool
}

// Step runs one epoch: fence (apply every queued request in sequence
// order), offer traffic, step every running shard, reconcile and journal
// the conservation ledger. Call from the engine goroutine only.
func (e *Engine) Step() EpochReport {
	e.epoch++
	rep := EpochReport{Epoch: e.epoch}

	// Fence: the shards are quiescent between Steps, so mutations land at
	// the barrier, in sequence order.
	for _, req := range e.queue {
		resp := e.apply(req)
		e.requests.Add(1)
		if !resp.OK() {
			e.failures.Add(1)
		}
		e.journalResponse(req, resp)
		rep.Responses = append(rep.Responses, resp)
	}
	e.queue = e.queue[:0]

	// Offer the epoch's traffic to every occupied slot of every running
	// shard, in (shard, slot) order — deterministic, no map iteration.
	for k := 0; k < e.cfg.Shards; k++ {
		if e.drained[k] {
			continue
		}
		m := e.r.Manager(k)
		for slot := 0; slot < e.cfg.SlotsPerShard; slot++ {
			if _, ok := e.r.SlotStream(k, slot); !ok {
				continue
			}
			for f := 0; f < e.offering; f++ {
				switch m.Offer(slot, qm.Frame{Size: e.cfg.FrameBytes, Arrival: e.epoch}) {
				case qm.Queued:
					e.offered++
				case qm.Shed:
					// Lost on arrival; the QM charged the drop.
					e.offered++
				case qm.Busy:
					// The policy held it back; the engine moves on — the
					// frame was never offered.
				default:
				}
			}
		}
	}

	// Step every running shard its cycle budget; transmissions are
	// deliveries.
	for k := 0; k < e.cfg.Shards; k++ {
		if e.drained[k] {
			continue
		}
		_, _ = e.r.StepShard(k, e.cfg.CyclesPerEpoch, func(cr *core.CycleResult) bool {
			e.delivered += uint64(len(cr.Transmissions))
			return true
		})
	}

	// Reconcile.
	led := e.snapshot()
	e.last.Store(&led)
	rep.Ledger = led
	rep.Balanced = led.Balanced()
	if !rep.Balanced {
		e.violations.Add(1)
		e.j.printf("E%d VIOLATION offered=%d delivered=%d qmdrop=%d scheddrop=%d evicted=%d inflight=%d",
			e.epoch, led.Offered, led.Delivered, led.DroppedQM, led.DroppedSched, led.Evicted, led.InFlight)
	}
	e.j.printf("E%d ledger offered=%d delivered=%d qmdrop=%d scheddrop=%d evicted=%d inflight=%d streams=%d",
		e.epoch, led.Offered, led.Delivered, led.DroppedQM, led.DroppedSched, led.Evicted, led.InFlight, led.Streams)
	if k := e.cfg.CheckpointEvery; k > 0 && e.epoch%uint64(k) == 0 {
		e.j.printf("%s", e.Checkpoint().render())
	}
	return rep
}

// Offering returns the admitted offering — every stream's placement, rank
// program, and spec — in deterministic (shard, slot) order. It reflects the
// last fence; call from the engine goroutine (or a quiesced engine).
func (e *Engine) Offering() []StreamEntry {
	var out []StreamEntry
	for k := 0; k < e.cfg.Shards; k++ {
		for slot := 0; slot < e.cfg.SlotsPerShard; slot++ {
			id, ok := e.r.SlotStream(k, slot)
			if !ok {
				continue
			}
			out = append(out, StreamEntry{
				ID: id, Shard: k, Slot: slot,
				Program: e.progs[k][slot], Spec: e.specs[k][slot],
			})
		}
	}
	return out
}

// Checkpoint assembles the full control-plane state at the current fence —
// what a periodic checkpoint record journals. Engine goroutine only.
func (e *Engine) Checkpoint() Checkpoint {
	return Checkpoint{
		Epoch:    e.epoch,
		Seq:      e.nextSeq,
		Offering: e.offering,
		Drained:  append([]bool(nil), e.drained...),
		Pool:     append([]int(nil), e.poolBurst...),
		Ledger:   *e.last.Load(),
		Streams:  e.Offering(),
	}
}

// SinkErrors returns how many journal lines the optional sink failed to
// accept in full (write error or short write). The hash-side journal is
// unaffected — the engine keeps running — but a daemon that needs the sink
// to be a faithful recovery log watches this counter (ssserved
// -journal-strict fails fast on the first loss). Safe from any goroutine.
func (e *Engine) SinkErrors() uint64 { return e.j.sinkErrors() }

// SetJournalSink replaces the journal sink (nil detaches it). The running
// hash and line count are unaffected: the sink is the durable copy, not the
// identity. Recovery uses this to attach the truncated journal file to a
// replayed engine before stepping resumes. Engine goroutine only, or before
// the engine starts stepping.
func (e *Engine) SetJournalSink(w io.Writer) { e.j.setSink(w) }

// Violations returns how many epochs failed conservation (must stay 0).
func (e *Engine) Violations() uint64 { return e.violations.Load() }

// snapshot reconciles the conservation ledger at the current fence.
func (e *Engine) snapshot() Ledger {
	led := Ledger{
		Epoch:        e.epoch,
		Offered:      e.offered,
		Delivered:    e.delivered,
		Evicted:      e.evicted,
		DroppedSched: e.cumSchedDrops,
		Streams:      uint64(e.r.Streams()),
	}
	for k := 0; k < e.cfg.Shards; k++ {
		m := e.r.Manager(k)
		led.DroppedQM += m.Totals().Dropped
		for slot := 0; slot < e.cfg.SlotsPerShard; slot++ {
			led.DroppedSched += e.r.SlotCounters(k, slot).Drops - e.dropBase[k][slot]
			if _, ok := e.r.SlotStream(k, slot); !ok {
				continue
			}
			led.InFlight += uint64(m.Backlog(slot)) - m.EvictDebt(slot)
			if e.r.SlotInFlight(k, slot) {
				led.InFlight++
			}
		}
	}
	return led
}

// apply executes one fenced request against the quiescent shards.
func (e *Engine) apply(req Request) Response {
	resp := Response{Seq: req.Seq, Epoch: e.epoch, Op: req.Op, Stream: req.Stream, Shard: -1, Slot: -1}
	fail := func(format string, args ...any) Response {
		resp.Err = fmt.Sprintf(format, args...)
		return resp
	}
	switch req.Op {
	case OpAdmit:
		if home := e.r.ShardOf(req.Stream); e.drained[home] {
			return fail("ctlplane: home shard %d is drained", home)
		}
		k, slot, err := e.r.AdmitLive(req.Stream, req.Spec)
		if err != nil {
			return fail("%s", err)
		}
		// The slot's hardware counters restarted with the new block; its
		// history is already folded into cumSchedDrops by the eviction.
		e.dropBase[k][slot] = 0
		e.specs[k][slot] = req.Spec
		e.progs[k][slot] = e.cfg.Program
		resp.Shard, resp.Slot = k, slot
	case OpEvict:
		k, slot, ok := e.r.Locate(req.Stream)
		if !ok {
			return fail("ctlplane: stream %d not admitted", req.Stream)
		}
		if e.drained[k] {
			return fail("ctlplane: stream %d's shard %d is drained", req.Stream, k)
		}
		drops := e.r.SlotCounters(k, slot).Drops
		evRep, err := e.r.EvictLive(req.Stream)
		if err != nil {
			return fail("%s", err)
		}
		// Freeze the vacated slot's scheduler drops into the cumulative
		// ledger; the slot idles (empty source) so the counter cannot move
		// until re-admission resets it.
		e.cumSchedDrops += drops - e.dropBase[k][slot]
		e.dropBase[k][slot] = drops
		e.evicted += uint64(evRep.Drained)
		if evRep.Flushed {
			e.evicted++
		}
		resp.Shard, resp.Slot = evRep.Shard, evRep.Slot
		resp.Drained, resp.Flushed = evRep.Drained, evRep.Flushed
	case OpRetune:
		k, slot, ok := e.r.Locate(req.Stream)
		if !ok {
			return fail("ctlplane: stream %d not admitted", req.Stream)
		}
		if e.drained[k] {
			return fail("ctlplane: stream %d's shard %d is drained", req.Stream, k)
		}
		if err := e.r.RetuneLive(req.Stream, req.Spec); err != nil {
			return fail("%s", err)
		}
		e.specs[k][slot] = req.Spec
	case OpSetProgram:
		k, slot, ok := e.r.Locate(req.Stream)
		if !ok {
			return fail("ctlplane: stream %d not admitted", req.Stream)
		}
		if e.drained[k] {
			return fail("ctlplane: stream %d's shard %d is drained", req.Stream, k)
		}
		if err := e.r.SetStreamProgram(req.Stream, req.Program); err != nil {
			return fail("%s", err)
		}
		e.progs[k][slot] = req.Program
	case OpResizePool:
		if req.Shard < 0 || req.Shard >= e.cfg.Shards {
			return fail("ctlplane: shard %d out of range [0, %d)", req.Shard, e.cfg.Shards)
		}
		if err := e.r.Manager(req.Shard).ResizeBurst(req.Burst); err != nil {
			return fail("%s", err)
		}
		e.poolBurst[req.Shard] = req.Burst
		resp.Shard = req.Shard
	case OpDrainShard:
		if req.Shard < 0 || req.Shard >= e.cfg.Shards {
			return fail("ctlplane: shard %d out of range [0, %d)", req.Shard, e.cfg.Shards)
		}
		if e.drained[req.Shard] {
			return fail("ctlplane: shard %d already drained", req.Shard)
		}
		e.drained[req.Shard] = true
		resp.Shard = req.Shard
	case OpRestartShard:
		if req.Shard < 0 || req.Shard >= e.cfg.Shards {
			return fail("ctlplane: shard %d out of range [0, %d)", req.Shard, e.cfg.Shards)
		}
		if !e.drained[req.Shard] {
			return fail("ctlplane: shard %d is not drained", req.Shard)
		}
		e.drained[req.Shard] = false
		resp.Shard = req.Shard
	default:
		return fail("ctlplane: unknown op %d", uint8(req.Op))
	}
	return resp
}

// journalResponse renders one applied request as a journal line. The
// rendering is total: every field that influenced the outcome appears, so
// the journal alone replays the decision sequence.
func (e *Engine) journalResponse(req Request, resp Response) {
	var target string
	switch req.Op {
	case OpAdmit, OpRetune:
		target = fmt.Sprintf("id=%d spec=%s", req.Stream, req.Spec)
	case OpEvict:
		target = fmt.Sprintf("id=%d", req.Stream)
	case OpSetProgram:
		target = fmt.Sprintf("id=%d prog=%v", req.Stream, req.Program)
	case OpResizePool:
		target = fmt.Sprintf("shard=%d burst=%d", req.Shard, req.Burst)
	case OpDrainShard, OpRestartShard:
		target = fmt.Sprintf("shard=%d", req.Shard)
	default:
		target = fmt.Sprintf("op=%d", uint8(req.Op))
	}
	var outcome string
	switch {
	case !resp.OK():
		outcome = "err: " + resp.Err
	case req.Op == OpAdmit:
		outcome = fmt.Sprintf("s%d.%d", resp.Shard, resp.Slot)
	case req.Op == OpEvict:
		outcome = fmt.Sprintf("s%d.%d drained=%d flushed=%t", resp.Shard, resp.Slot, resp.Drained, resp.Flushed)
	default:
		outcome = "ok"
	}
	e.j.printf("E%d #%d %s %s -> %s", e.epoch, req.Seq, req.Op, target, outcome)
}

// RegisterMetrics publishes the engine's control and conservation view on
// reg under prefix (canonically "ctl"). Gauges read the atomic snapshot
// published at each fence, so scrapes never race the engine goroutine.
func (e *Engine) RegisterMetrics(reg *obs.Registry, prefix string) {
	ledger := func(f func(Ledger) uint64) func() float64 {
		return func() float64 { return float64(f(e.Ledger())) }
	}
	reg.GaugeFunc(prefix+".epoch", "epochs", ledger(func(l Ledger) uint64 { return l.Epoch }))
	reg.GaugeFunc(prefix+".offered", "frames", ledger(func(l Ledger) uint64 { return l.Offered }))
	reg.GaugeFunc(prefix+".delivered", "frames", ledger(func(l Ledger) uint64 { return l.Delivered }))
	reg.GaugeFunc(prefix+".dropped_qm", "frames", ledger(func(l Ledger) uint64 { return l.DroppedQM }))
	reg.GaugeFunc(prefix+".dropped_sched", "frames", ledger(func(l Ledger) uint64 { return l.DroppedSched }))
	reg.GaugeFunc(prefix+".evicted", "frames", ledger(func(l Ledger) uint64 { return l.Evicted }))
	reg.GaugeFunc(prefix+".inflight", "frames", ledger(func(l Ledger) uint64 { return l.InFlight }))
	reg.GaugeFunc(prefix+".streams", "streams", ledger(func(l Ledger) uint64 { return l.Streams }))
	reg.GaugeFunc(prefix+".requests", "requests", func() float64 { return float64(e.requests.Load()) })
	reg.GaugeFunc(prefix+".request_errors", "requests", func() float64 { return float64(e.failures.Load()) })
	reg.GaugeFunc(prefix+".violations", "epochs", func() float64 { return float64(e.violations.Load()) })
	reg.GaugeFunc(prefix+".journal_lines", "lines", func() float64 {
		_, lines := e.j.sum()
		return float64(lines)
	})
	reg.GaugeFunc(prefix+".journal.sink_errors", "lines", func() float64 {
		return float64(e.j.sinkErrors())
	})
}
