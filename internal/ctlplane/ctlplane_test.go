package ctlplane

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/shard"
)

// apply enqueues one request and steps one epoch, returning its response.
func apply(t *testing.T, e *Engine, req Request) Response {
	t.Helper()
	e.Enqueue(req)
	rep := e.Step()
	if len(rep.Responses) != 1 {
		t.Fatalf("epoch applied %d responses, want 1", len(rep.Responses))
	}
	if !rep.Balanced {
		t.Fatalf("conservation violated at epoch %d: %+v", rep.Epoch, rep.Ledger)
	}
	return rep.Responses[0]
}

// expectErr asserts the response failed with a message containing want.
func expectErr(t *testing.T, resp Response, want string) {
	t.Helper()
	if resp.OK() {
		t.Fatalf("%v #%d applied cleanly, want error containing %q", resp.Op, resp.Seq, want)
	}
	if !strings.Contains(resp.Err, want) {
		t.Fatalf("%v error %q, want it to contain %q", resp.Op, resp.Err, want)
	}
}

// TestEngineErrorPaths walks every admin error path the daemon surfaces:
// malformed requests, unknown streams, mutations during a shard-dead
// (drained) window, double drains and spurious restarts — each must fail
// cleanly, be journaled, and leave conservation intact.
func TestEngineErrorPaths(t *testing.T) {
	e, err := New(Config{Shards: 2, SlotsPerShard: 4, RingCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	edf := attr.Spec{Class: attr.EDF, Period: 3}

	// Malformed requests.
	expectErr(t, apply(t, e, Request{Op: Op(99)}), "unknown op")
	expectErr(t, apply(t, e, Request{Op: OpAdmit, Stream: 1, Spec: attr.Spec{Class: attr.EDF}}),
		"request period")
	expectErr(t, apply(t, e, Request{Op: OpResizePool, Shard: 7, Burst: 4}), "out of range")
	expectErr(t, apply(t, e, Request{Op: OpResizePool, Shard: 0, Burst: 4}), "fixed-capacity")
	expectErr(t, apply(t, e, Request{Op: OpDrainShard, Shard: -1}), "out of range")

	// Unknown streams.
	expectErr(t, apply(t, e, Request{Op: OpEvict, Stream: 404}), "not admitted")
	expectErr(t, apply(t, e, Request{Op: OpRetune, Stream: 404, Spec: edf}), "not admitted")
	expectErr(t, apply(t, e, Request{Op: OpSetProgram, Stream: 404, Program: decision.ProgramSTFQ}),
		"not admitted")

	// A clean admission, then every mutation during its shard's dead
	// window.
	resp := apply(t, e, Request{Op: OpAdmit, Stream: 1, Spec: edf})
	if !resp.OK() {
		t.Fatalf("admit failed: %s", resp.Err)
	}
	home := e.Router().ShardOf(1)
	if resp.Shard != home {
		t.Fatalf("admitted to shard %d, home is %d", resp.Shard, home)
	}
	expectErr(t, apply(t, e, Request{Op: OpAdmit, Stream: 1, Spec: edf}), "already admitted")

	if resp := apply(t, e, Request{Op: OpDrainShard, Shard: home}); !resp.OK() {
		t.Fatalf("drain failed: %s", resp.Err)
	}
	expectErr(t, apply(t, e, Request{Op: OpRetune, Stream: 1, Spec: edf}), "drained")
	expectErr(t, apply(t, e, Request{Op: OpEvict, Stream: 1}), "drained")
	expectErr(t, apply(t, e, Request{Op: OpSetProgram, Stream: 1}), "drained")
	// Admission to a drained home shard is refused too: pick an ID homed
	// there.
	var sameHome shard.StreamID
	for id := shard.StreamID(2); ; id++ {
		if e.Router().ShardOf(id) == home {
			sameHome = id
			break
		}
	}
	expectErr(t, apply(t, e, Request{Op: OpAdmit, Stream: sameHome, Spec: edf}), "drained")

	// Double drain, spurious restart.
	expectErr(t, apply(t, e, Request{Op: OpDrainShard, Shard: home}), "already drained")
	if resp := apply(t, e, Request{Op: OpRestartShard, Shard: home}); !resp.OK() {
		t.Fatalf("restart failed: %s", resp.Err)
	}
	expectErr(t, apply(t, e, Request{Op: OpRestartShard, Shard: home}), "not drained")

	// The dead window over, the same mutations apply cleanly.
	if resp := apply(t, e, Request{Op: OpRetune, Stream: 1, Spec: attr.Spec{Class: attr.EDF, Period: 9}}); !resp.OK() {
		t.Fatalf("retune after restart failed: %s", resp.Err)
	}
	if resp := apply(t, e, Request{Op: OpEvict, Stream: 1}); !resp.OK() {
		t.Fatalf("evict after restart failed: %s", resp.Err)
	}

	if got := e.Violations(); got != 0 {
		t.Fatalf("%d conservation violations", got)
	}
	if led := e.Ledger(); !led.Balanced() {
		t.Fatalf("final ledger unbalanced: %+v", led)
	}
}

// TestRetuneAppliesAtFence pins the epoch-fence contract: a retune enqueued
// mid-epoch is invisible until the next Step applies it at the barrier.
func TestRetuneAppliesAtFence(t *testing.T) {
	e, err := New(Config{Shards: 1, SlotsPerShard: 2, RingCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if resp := apply(t, e, Request{Op: OpAdmit, Stream: 1, Spec: attr.Spec{Class: attr.EDF, Period: 3}}); !resp.OK() {
		t.Fatal(resp.Err)
	}
	e.Enqueue(Request{Op: OpRetune, Stream: 1, Spec: attr.Spec{Class: attr.EDF, Period: 11}})
	// Not yet applied: the fence hasn't passed.
	if got := e.Router().Manager(0).Spec(0).Period; got != 3 {
		t.Fatalf("retune applied before the fence: period %d", got)
	}
	rep := e.Step()
	if len(rep.Responses) != 1 || !rep.Responses[0].OK() {
		t.Fatalf("fence did not apply the retune: %+v", rep.Responses)
	}
	if got := e.Router().Manager(0).Spec(0).Period; got != 11 {
		t.Fatalf("period %d after the fence, want 11", got)
	}
}

// TestSoakDeterminism runs the churn soak twice with one seed and once with
// another: the same seed must reproduce the journal byte for byte (hash and
// line count), a different seed must not, and no run may violate
// conservation.
func TestSoakDeterminism(t *testing.T) {
	cfg := SoakConfig{Seed: 42, Events: 4000, EventsPerEpoch: 32, Shards: 2, SlotsPerShard: 8}
	a, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.JournalHash != b.JournalHash || a.JournalLines != b.JournalLines {
		t.Fatalf("same seed diverged: %x/%d lines vs %x/%d lines",
			a.JournalHash, a.JournalLines, b.JournalHash, b.JournalLines)
	}
	if a.Final != b.Final {
		t.Fatalf("same seed, different final ledgers: %+v vs %+v", a.Final, b.Final)
	}
	if a.Violations != 0 {
		t.Fatalf("%d conservation violations", a.Violations)
	}
	if a.Applied == 0 || a.Failed == 0 {
		t.Fatalf("soak exercised applied=%d failed=%d; want both nonzero", a.Applied, a.Failed)
	}
	if a.Final.InFlight != 0 {
		t.Fatalf("soak settled with %d frames in flight", a.Final.InFlight)
	}

	other := cfg
	other.Seed = 43
	c, err := Soak(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.JournalHash == a.JournalHash && c.JournalLines == a.JournalLines {
		t.Fatal("different seeds produced identical journals")
	}
}

// TestSoakJournalText checks the optional journal sink receives exactly the
// hashed lines: the newline count equals the reported line count, and the
// text re-hashes to the reported hash.
func TestSoakJournalText(t *testing.T) {
	var buf bytes.Buffer
	res, err := Soak(SoakConfig{Seed: 7, Events: 500, EventsPerEpoch: 16, Shards: 2, SlotsPerShard: 8, Journal: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(bytes.Count(buf.Bytes(), []byte("\n"))); got != res.JournalLines {
		t.Fatalf("sink saw %d lines, journal counted %d", got, res.JournalLines)
	}
	j := newJournal(nil)
	j.h.Write(buf.Bytes())
	if sum := j.h.Sum64(); sum != res.JournalHash {
		t.Fatalf("sink text hashes to %x, journal reports %x", sum, res.JournalHash)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("ssctl v2 ")) {
		t.Fatalf("journal header missing: %q", buf.Bytes()[:40])
	}
	// Every line self-checks: the " ~%08x" suffix is the FNV-32a of the
	// payload — the property torn-tail truncation stands on.
	for i, line := range bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n")) {
		if len(line) < 10 || line[len(line)-10] != ' ' || line[len(line)-9] != '~' {
			t.Fatalf("line %d lacks a checksum suffix: %q", i, line)
		}
		payload := line[:len(line)-10]
		if want := []byte(fmt.Sprintf(" ~%08x", lineSum(payload))); !bytes.Equal(line[len(line)-10:], want) {
			t.Fatalf("line %d checksum mismatch: %q", i, line)
		}
	}
}
