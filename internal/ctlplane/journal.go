package ctlplane

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sync/atomic"
)

// journal streams transition lines through a running FNV-64a hash (and an
// optional writer), tracking the line count. The hash-and-count pair is the
// replay identity: two runs whose journals agree byte for byte agree on
// both, and a 64-bit FNV collision between two different 10⁶-line journals
// is not a failure mode worth more machinery. The running sum and count are
// mirrored into atomics after each line so obs gauges can read them without
// racing the engine goroutine.
//
// Since ssctl v2 every line is self-checking: the payload is suffixed with
// " ~%08x", the FNV-32a of the payload bytes. A crash mid-write leaves a
// torn tail — a final line with no newline, or a truncated checksum, or a
// checksum that does not match its payload — and the replay parser uses the
// per-line checksum to truncate the journal at the last complete record
// instead of guessing where the damage starts.
type journal struct {
	h        hash.Hash64
	w        io.Writer
	buf      []byte
	sum64    atomic.Uint64
	lines    atomic.Uint64
	sinkErrs atomic.Uint64
}

func newJournal(w io.Writer) *journal {
	return &journal{h: fnv.New64a(), w: w}
}

// lineSum is the per-line FNV-32a self-check over the payload bytes (the
// line text before the " ~%08x" suffix).
func lineSum(payload []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range payload {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// printf appends one line (format must not contain a newline; one is
// added), suffixed with its per-line checksum. Write errors on the optional
// sink do not stop the engine — the hash is the authoritative journal, the
// sink is the durable copy — but they are counted (sinkErrors) so a strict
// daemon can fail fast instead of silently losing its recovery log.
func (j *journal) printf(format string, args ...any) {
	j.buf = j.buf[:0]
	j.buf = fmt.Appendf(j.buf, format, args...)
	j.buf = fmt.Appendf(j.buf, " ~%08x", lineSum(j.buf))
	j.buf = append(j.buf, '\n')
	j.h.Write(j.buf) // fnv's Write cannot fail
	if j.w != nil {
		if n, err := j.w.Write(j.buf); err != nil || n != len(j.buf) {
			j.sinkErrs.Add(1)
		}
	}
	j.sum64.Store(j.h.Sum64())
	j.lines.Add(1)
}

// sum returns the running hash and line count; safe from any goroutine.
func (j *journal) sum() (hash uint64, lines uint64) {
	return j.sum64.Load(), j.lines.Load()
}

// sinkErrors returns how many lines the sink failed to take in full; safe
// from any goroutine.
func (j *journal) sinkErrors() uint64 { return j.sinkErrs.Load() }

// setSink replaces the journal's sink. Engine-goroutine only (recovery
// attaches the truncated journal file here before stepping resumes).
func (j *journal) setSink(w io.Writer) { j.w = w }
