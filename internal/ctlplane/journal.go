package ctlplane

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sync/atomic"
)

// journal streams transition lines through a running FNV-64a hash (and an
// optional writer), tracking the line count. The hash-and-count pair is the
// replay identity: two runs whose journals agree byte for byte agree on
// both, and a 64-bit FNV collision between two different 10⁶-line journals
// is not a failure mode worth more machinery. The running sum and count are
// mirrored into atomics after each line so obs gauges can read them without
// racing the engine goroutine.
type journal struct {
	h     hash.Hash64
	w     io.Writer
	buf   []byte
	sum64 atomic.Uint64
	lines atomic.Uint64
}

func newJournal(w io.Writer) *journal {
	return &journal{h: fnv.New64a(), w: w}
}

// printf appends one line (format must not contain a newline; one is
// added). Write errors on the optional sink are ignored by design — the
// hash is the authoritative journal, the sink is a convenience copy.
func (j *journal) printf(format string, args ...any) {
	j.buf = j.buf[:0]
	j.buf = fmt.Appendf(j.buf, format, args...)
	j.buf = append(j.buf, '\n')
	j.h.Write(j.buf) // fnv's Write cannot fail
	if j.w != nil {
		j.w.Write(j.buf) //nolint:errcheck — see doc comment
	}
	j.sum64.Store(j.h.Sum64())
	j.lines.Add(1)
}

// sum returns the running hash and line count; safe from any goroutine.
func (j *journal) sum() (hash uint64, lines uint64) {
	return j.sum64.Load(), j.lines.Load()
}
