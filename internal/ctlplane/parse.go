package ctlplane

import (
	"bufio"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/qm"
)

// This file is the read side of the ssctl v2 journal: a checksum-validating
// line scanner (torn-tail aware) and a total parser for every record kind
// the engine emits. replay.go drives both to reconstruct an Engine.

// ErrCorruptJournal marks damage the torn-tail rule cannot excuse: a
// complete line (newline present) whose checksum does not match, a line
// that fails the grammar, or a record sequence the engine could never have
// emitted. A torn tail is legal only at end of input — a crash tears the
// final write, nothing else.
var ErrCorruptJournal = errors.New("ctlplane: corrupt journal")

// ErrReplayDivergence marks a journal that parses cleanly but disagrees
// with deterministic re-execution: the reconstructed engine produced
// different bytes than the journal records. Either the journal was edited
// or the engine is not the one that wrote it.
var ErrReplayDivergence = errors.New("ctlplane: replay divergence")

// scanner yields checksum-valid journal lines, tracking the byte offset,
// line count, and running FNV-64a over the raw consumed bytes — the same
// hash the writing engine maintains, so replay can equate "input consumed"
// with "output reproduced" at every fence.
type scanner struct {
	br       *bufio.Reader
	h        hash.Hash64
	consumed int64  // bytes of complete, valid lines returned so far
	lines    uint64 // lines returned so far
	tail     int64  // bytes in the torn tail once EOF is reached
}

func newScanner(r io.Reader) *scanner {
	return &scanner{br: bufio.NewReaderSize(r, 64<<10), h: fnv.New64a()}
}

// next returns the next line's payload (checksum suffix stripped). At end of
// input it returns io.EOF; a final partial line — no newline, or a newline
// but an unparseable or mismatched checksum suffix with nothing after it —
// is recorded as the torn tail, not an error. Any other damage is
// ErrCorruptJournal.
func (sc *scanner) next() (string, error) {
	raw, err := sc.br.ReadBytes('\n')
	if err == io.EOF {
		// No newline: whatever bytes remain are the torn tail (possibly
		// zero — clean EOF).
		sc.tail = int64(len(raw))
		return "", io.EOF
	}
	if err != nil {
		return "", err
	}
	line := raw[:len(raw)-1]
	payload, ok := checkLine(line)
	if !ok {
		// The line is newline-terminated, so the write that produced it
		// completed — unless this is the last line and the torn write
		// happened to end in a byte that looks like '\n'... which it
		// cannot: printf writes payload+checksum+'\n' in one buffer, and
		// any strict prefix of it lacks the trailing newline. A complete
		// line with a bad checksum is corruption, wherever it sits.
		return "", fmt.Errorf("%w: line %d fails its checksum: %q",
			ErrCorruptJournal, sc.lines+1, line)
	}
	sc.h.Write(raw)
	sc.consumed += int64(len(raw))
	sc.lines++
	return payload, nil
}

// sum returns the running hash over consumed lines — comparable to the
// writing engine's JournalSum at the same line count.
func (sc *scanner) sum() (uint64, uint64) { return sc.h.Sum64(), sc.lines }

// checkLine validates one line's " ~%08x" self-check and returns the
// payload.
func checkLine(line []byte) (string, bool) {
	if len(line) < 10 || line[len(line)-10] != ' ' || line[len(line)-9] != '~' {
		return "", false
	}
	want, err := strconv.ParseUint(string(line[len(line)-8:]), 16, 32)
	if err != nil {
		return "", false
	}
	payload := line[:len(line)-10]
	if lineSum(payload) != uint32(want) {
		return "", false
	}
	return string(payload), true
}

// recKind classifies a parsed journal record.
type recKind uint8

const (
	recHeader recKind = iota
	recResponse
	recOffering
	recLedger
	recViolation
	recCheckpoint
)

// record is one parsed journal line.
type record struct {
	kind   recKind
	epoch  uint64
	cfg    Config     // recHeader
	seq    uint64     // recResponse
	req    Request    // recResponse (the request side; outcome is not needed)
	frames int        // recOffering
	led    Ledger     // recLedger
	ck     Checkpoint // recCheckpoint
}

// parseRecord parses one checksum-stripped payload into a record.
func parseRecord(payload string) (record, error) {
	if strings.HasPrefix(payload, "ssctl v2 ") {
		cfg, err := parseHeader(payload)
		return record{kind: recHeader, cfg: cfg}, err
	}
	if strings.HasPrefix(payload, "ssctl ") {
		return record{}, fmt.Errorf("unsupported journal version: %q", payload)
	}
	var rec record
	rest, ok := strings.CutPrefix(payload, "E")
	if !ok {
		return rec, fmt.Errorf("unrecognized record: %q", payload)
	}
	epochText, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return rec, fmt.Errorf("truncated record: %q", payload)
	}
	epoch, err := strconv.ParseUint(epochText, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("epoch %q: %v", epochText, err)
	}
	rec.epoch = epoch
	switch {
	case strings.HasPrefix(rest, "#"):
		rec.kind = recResponse
		rec.seq, rec.req, err = parseResponse(rest)
		rec.req.Seq = rec.seq
		return rec, err
	case strings.HasPrefix(rest, "offering "):
		rec.kind = recOffering
		if _, err := fmt.Sscanf(rest, "offering frames=%d", &rec.frames); err != nil {
			return rec, fmt.Errorf("offering record %q: %v", payload, err)
		}
		return rec, nil
	case strings.HasPrefix(rest, "ledger "):
		rec.kind = recLedger
		l := &rec.led
		l.Epoch = epoch
		if _, err := fmt.Sscanf(rest, "ledger offered=%d delivered=%d qmdrop=%d scheddrop=%d evicted=%d inflight=%d streams=%d",
			&l.Offered, &l.Delivered, &l.DroppedQM, &l.DroppedSched, &l.Evicted, &l.InFlight, &l.Streams); err != nil {
			return rec, fmt.Errorf("ledger record %q: %v", payload, err)
		}
		return rec, nil
	case strings.HasPrefix(rest, "VIOLATION "):
		rec.kind = recViolation
		return rec, nil
	case strings.HasPrefix(rest, "checkpoint "):
		rec.kind = recCheckpoint
		rec.ck, err = parseCheckpoint(epoch, strings.TrimPrefix(rest, "checkpoint "))
		return rec, err
	default:
		return rec, fmt.Errorf("unrecognized record: %q", payload)
	}
}

// parseHeader parses journal line zero back into the Config that wrote it
// (Journal and sink-side fields excluded — they are not part of the replay
// identity).
func parseHeader(payload string) (Config, error) {
	var cfg Config
	var program, policy string
	if _, err := fmt.Sscanf(payload,
		"ssctl v2 shards=%d slots=%d ring=%d pool=%d/%d/%d program=%s policy=%s cycles=%d frames=%d bytes=%d ckpt=%d",
		&cfg.Shards, &cfg.SlotsPerShard, &cfg.RingCapacity,
		&cfg.BufferPool.Reservation, &cfg.BufferPool.Burst, &cfg.BufferPool.DelayTarget,
		&program, &policy, &cfg.CyclesPerEpoch, &cfg.FramesPerStream,
		&cfg.FrameBytes, &cfg.CheckpointEvery); err != nil {
		return cfg, fmt.Errorf("header %q: %v", payload, err)
	}
	prog, err := decision.ParseProgram(program)
	if err != nil {
		return cfg, fmt.Errorf("header: %v", err)
	}
	cfg.Program = prog
	pol, err := qm.ParsePolicy(policy)
	if err != nil {
		return cfg, fmt.Errorf("header: %v", err)
	}
	cfg.Policy = pol
	// The header records resolved values, so a literal zero means "none",
	// not "default": withDefaults must not re-inflate it.
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = -1
	}
	// FramesPerStream=0 cannot appear in a header (withDefaults makes it 1
	// before New journals it), so no such guard is needed there.
	return cfg, nil
}

// parseResponse parses the request side of a response record's tail
// ("#<seq> <op> <target> -> <outcome>"). The outcome is deliberately
// ignored: replay re-derives it and the hash check proves it matched.
func parseResponse(rest string) (uint64, Request, error) {
	var req Request
	seqText, rest, ok := strings.Cut(strings.TrimPrefix(rest, "#"), " ")
	if !ok {
		return 0, req, fmt.Errorf("truncated response: %q", rest)
	}
	seq, err := strconv.ParseUint(seqText, 10, 64)
	if err != nil {
		return 0, req, fmt.Errorf("response seq %q: %v", seqText, err)
	}
	opName, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return 0, req, fmt.Errorf("truncated response: %q", rest)
	}
	// Split the target from the outcome at the first " -> ": no target
	// renders the delimiter (stream IDs, specs, program and shard numbers
	// cannot contain it), and error outcomes follow it.
	target, _, ok := strings.Cut(rest, " -> ")
	if !ok {
		return 0, req, fmt.Errorf("response missing outcome: %q", rest)
	}
	fail := func(err error) (uint64, Request, error) {
		return 0, req, fmt.Errorf("%s target %q: %v", opName, target, err)
	}
	switch opName {
	case "admit", "retune":
		if opName == "admit" {
			req.Op = OpAdmit
		} else {
			req.Op = OpRetune
		}
		idText, specText, ok := strings.Cut(target, " spec=")
		if !ok {
			return fail(fmt.Errorf("missing spec"))
		}
		if _, err := fmt.Sscanf(idText, "id=%d", &req.Stream); err != nil {
			return fail(err)
		}
		spec, err := parseSpecText(specText)
		if err != nil {
			return fail(err)
		}
		req.Spec = spec
	case "evict":
		req.Op = OpEvict
		if _, err := fmt.Sscanf(target, "id=%d", &req.Stream); err != nil {
			return fail(err)
		}
	case "program":
		req.Op = OpSetProgram
		idText, progText, ok := strings.Cut(target, " prog=")
		if !ok {
			return fail(fmt.Errorf("missing prog"))
		}
		if _, err := fmt.Sscanf(idText, "id=%d", &req.Stream); err != nil {
			return fail(err)
		}
		prog, err := parseProgramText(progText)
		if err != nil {
			return fail(err)
		}
		req.Program = prog
	case "pool":
		req.Op = OpResizePool
		if _, err := fmt.Sscanf(target, "shard=%d burst=%d", &req.Shard, &req.Burst); err != nil {
			return fail(err)
		}
	case "drain", "restart":
		if opName == "drain" {
			req.Op = OpDrainShard
		} else {
			req.Op = OpRestartShard
		}
		if _, err := fmt.Sscanf(target, "shard=%d", &req.Shard); err != nil {
			return fail(err)
		}
	default:
		// Unknown ops journal as "op(N) op=N -> err: ...": reconstruct the
		// raw op so replay re-fails it identically.
		var n uint8
		if _, err := fmt.Sscanf(opName, "op(%d)", &n); err != nil {
			return 0, req, fmt.Errorf("unknown op %q", opName)
		}
		req.Op = Op(n)
	}
	return seq, req, nil
}

// parseSpecText parses a journaled spec, including the "spec(class=N)"
// rendering of an invalid-class request: the class alone determines how the
// engine rejects it, so the lossy form still re-fails identically.
func parseSpecText(s string) (attr.Spec, error) {
	if strings.HasPrefix(s, "spec(class=") {
		var n uint8
		if _, err := fmt.Sscanf(s, "spec(class=%d)", &n); err != nil {
			return attr.Spec{}, fmt.Errorf("malformed spec %q: %v", s, err)
		}
		return attr.Spec{Class: attr.Class(n)}, nil
	}
	return attr.ParseSpec(s)
}

// parseProgramText parses a journaled rank program, including the
// "program(N)" rendering of an out-of-range one.
func parseProgramText(s string) (decision.Program, error) {
	if strings.HasPrefix(s, "program(") {
		var n uint8
		if _, err := fmt.Sscanf(s, "program(%d)", &n); err != nil {
			return 0, fmt.Errorf("malformed program %q: %v", s, err)
		}
		return decision.Program(n), nil
	}
	return decision.ParseProgram(s)
}
