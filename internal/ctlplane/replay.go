package ctlplane

import (
	"fmt"
	"io"
)

// Replay reconstructs an Engine from an ssctl v2 journal by deterministic
// re-execution: the engine's only inputs are its configuration (journal
// line zero), the fenced request sequence, the offering changes, and the
// epoch boundaries — all of which the journal records — so feeding them
// back through a fresh engine reproduces every byte the original wrote.
// After every re-executed fence the reconstructed engine's JournalSum must
// equal the FNV-64a of the input consumed so far; any disagreement is
// ErrReplayDivergence, localized to within CheckpointEvery fences by the
// periodic checkpoint records (which replay re-derives and compares field
// by field).
//
// The commit unit is the epoch block: one fence's response lines, its
// optional VIOLATION line, its ledger line, and its checkpoint line when
// one is due (epoch % CheckpointEvery == 0). A crash tears the journal's
// final write, so a trailing partial line — or a trailing complete block
// that never reached its ledger (or due checkpoint) — is dropped, not an
// error: those requests were never acknowledged (responses are delivered
// only after the fence durably journals them), so dropping the tail is
// exactly-once at fence granularity. Damage anywhere else is
// ErrCorruptJournal.
//
// The returned report carries what recovery needs: CommittedBytes is where
// a daemon truncates the journal file before appending (the torn tail and
// any uncommitted block end there), and CommittedLines is where Resume
// picks up.
func Replay(r io.Reader) (*Engine, *ReplayReport, error) {
	sc := newScanner(r)
	payload, err := sc.next()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("%w: no complete header line", ErrCorruptJournal)
	}
	if err != nil {
		return nil, nil, err
	}
	rec, err := parseRecord(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptJournal, err)
	}
	if rec.kind != recHeader {
		return nil, nil, fmt.Errorf("%w: journal does not start with a header: %q", ErrCorruptJournal, payload)
	}
	cfg := rec.cfg
	cfg.Journal = nil
	eng, err := New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("ctlplane: replay: journal config rejected: %w", err)
	}
	rp := &replayer{sc: sc, eng: eng, rep: &ReplayReport{}}
	if err := rp.verifyHash("header"); err != nil {
		return nil, nil, err
	}
	rp.commit()
	if err := rp.run(); err != nil {
		return nil, nil, err
	}
	return eng, rp.rep, nil
}

// Resume continues a replayed engine through the journal's growth since the
// replay: r must yield the same journal from byte zero (the prior prefix is
// re-hashed and verified, not re-executed), and prior is the report Replay
// returned. The crash-point harness uses this to prove prefix-replay plus
// resume reproduces the uninterrupted run.
func Resume(eng *Engine, r io.Reader, prior *ReplayReport) (*ReplayReport, error) {
	sc := newScanner(r)
	for i := uint64(0); i < prior.CommittedLines; i++ {
		if _, err := sc.next(); err != nil {
			return nil, fmt.Errorf("%w: journal lost its committed prefix at line %d: %v",
				ErrCorruptJournal, i, err)
		}
	}
	if h, l := sc.sum(); h != prior.Hash || l != prior.Lines {
		return nil, fmt.Errorf("%w: resume prefix hash %x/%d lines, replayed engine has %x/%d",
			ErrReplayDivergence, h, l, prior.Hash, prior.Lines)
	}
	rep := *prior
	rp := &replayer{sc: sc, eng: eng, rep: &rep}
	if err := rp.run(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReplayReport is the outcome of a Replay (or Resume): how much of the
// journal committed, what was dropped, and the reconstructed identity.
type ReplayReport struct {
	// Epochs and Requests count re-executed fences and re-applied requests.
	Epochs   uint64
	Requests uint64
	// Checkpoints counts checkpoint records verified against the
	// reconstructed engine; Checkpoint is the last one (nil when none).
	Checkpoints int
	Checkpoint  *Checkpoint
	// CommittedBytes/CommittedLines delimit the committed prefix: recovery
	// truncates the journal file to CommittedBytes, and Resume skips
	// CommittedLines. Everything past them was torn or uncommitted.
	CommittedBytes int64
	CommittedLines uint64
	// TornBytes counts input bytes past the committed prefix: the torn
	// final write plus any complete-but-uncommitted trailing block.
	TornBytes int64
	// DroppedLines counts complete lines inside that dropped tail.
	DroppedLines uint64
	// Hash/Lines are the reconstructed engine's JournalSum at the last
	// commit — equal to the writing engine's at the same point.
	Hash  uint64
	Lines uint64
}

// replayer drives one scanner through one engine, committing epoch blocks.
type replayer struct {
	sc  *scanner
	eng *Engine
	rep *ReplayReport

	// The current uncommitted epoch block's parsed requests.
	pend     []Request
	pendSeqs []uint64
}

// commit marks everything consumed so far as committed.
func (rp *replayer) commit() {
	rp.rep.CommittedBytes = rp.sc.consumed
	rp.rep.CommittedLines = rp.sc.lines
	rp.rep.Hash, rp.rep.Lines = rp.eng.JournalSum()
}

// finish closes out the input at EOF: whatever was consumed past the last
// commit (a torn write, an epoch block with no ledger) is the dropped tail.
func (rp *replayer) finish() {
	rp.rep.TornBytes = rp.sc.consumed + rp.sc.tail - rp.rep.CommittedBytes
	rp.rep.DroppedLines = rp.sc.lines - rp.rep.CommittedLines
}

// verifyHash asserts the reconstructed engine has produced exactly the
// bytes consumed so far.
func (rp *replayer) verifyHash(at string) error {
	eh, el := rp.eng.JournalSum()
	ih, il := rp.sc.sum()
	if eh != ih || el != il {
		return fmt.Errorf("%w: at %s: journal %x/%d lines, re-execution %x/%d lines",
			ErrReplayDivergence, at, ih, il, eh, el)
	}
	return nil
}

// run re-executes records until EOF, torn tail, or damage.
func (rp *replayer) run() error {
	for {
		payload, err := rp.sc.next()
		if err == io.EOF {
			rp.finish()
			return nil
		}
		if err != nil {
			return err
		}
		rec, perr := parseRecord(payload)
		if perr != nil {
			return fmt.Errorf("%w: line %d: %v", ErrCorruptJournal, rp.sc.lines, perr)
		}
		switch rec.kind {
		case recHeader:
			return fmt.Errorf("%w: line %d: second header", ErrCorruptJournal, rp.sc.lines)
		case recResponse:
			rp.pend = append(rp.pend, rec.req)
			rp.pendSeqs = append(rp.pendSeqs, rec.seq)
		case recViolation:
			// An engine output inside the block; the fence re-derives it
			// and the hash check proves it matched.
		case recOffering:
			if len(rp.pend) > 0 {
				return fmt.Errorf("%w: line %d: offering change inside an epoch block",
					ErrCorruptJournal, rp.sc.lines)
			}
			rp.eng.SetOffering(rec.frames)
			if err := rp.verifyHash(fmt.Sprintf("offering E%d", rec.epoch)); err != nil {
				return err
			}
			rp.commit()
		case recLedger:
			if err := rp.fence(rec); err != nil {
				return err
			}
		case recCheckpoint:
			return fmt.Errorf("%w: line %d: checkpoint outside its epoch block",
				ErrCorruptJournal, rp.sc.lines)
		}
	}
}

// fence closes the current epoch block at its ledger record: consume the
// due checkpoint if any, re-execute the fence, verify byte identity, and
// commit. A block whose due checkpoint never made it to the journal is
// uncommitted — the crash tore the epoch's write mid-block — so the whole
// block is dropped, exactly as if its ledger line were missing.
func (rp *replayer) fence(rec record) error {
	var due *Checkpoint
	if k := rp.eng.cfg.CheckpointEvery; k > 0 && rec.epoch%uint64(k) == 0 {
		payload, err := rp.sc.next()
		if err == io.EOF {
			rp.finish()
			return nil // the block never committed; drop it
		}
		if err != nil {
			return err
		}
		ckRec, perr := parseRecord(payload)
		if perr != nil {
			return fmt.Errorf("%w: line %d: %v", ErrCorruptJournal, rp.sc.lines, perr)
		}
		if ckRec.kind != recCheckpoint || ckRec.epoch != rec.epoch {
			return fmt.Errorf("%w: line %d: E%d ledger not followed by its checkpoint",
				ErrCorruptJournal, rp.sc.lines, rec.epoch)
		}
		due = &ckRec.ck
	}

	for i, req := range rp.pend {
		if seq := rp.eng.Enqueue(req); seq != rp.pendSeqs[i] {
			return fmt.Errorf("%w: E%d: request re-enqueued as seq %d, journal says %d",
				ErrReplayDivergence, rec.epoch, seq, rp.pendSeqs[i])
		}
	}
	rp.eng.Step()
	rp.rep.Epochs++
	rp.rep.Requests += uint64(len(rp.pend))
	rp.pend = rp.pend[:0]
	rp.pendSeqs = rp.pendSeqs[:0]

	if err := rp.verifyHash(fmt.Sprintf("E%d fence", rec.epoch)); err != nil {
		if due != nil {
			if d := rp.eng.Checkpoint().diff(*due); d != "" {
				return fmt.Errorf("%v (checkpoint: %s)", err, d)
			}
		}
		return err
	}
	if due != nil {
		// Byte identity already proves the checkpoint matched; keep the
		// parsed copy as the report's latest verified full state.
		ck := *due
		rp.rep.Checkpoint = &ck
		rp.rep.Checkpoints++
	}
	rp.commit()
	return nil
}

// LatestCheckpoint scans a journal (or any torn prefix of one) and returns
// the last complete checkpoint record without re-executing anything — the
// bounded-time state inspection a recovering daemon reports while replay
// proper is still running. It returns ok=false when no checkpoint has been
// journaled yet. Damage before the torn tail is still ErrCorruptJournal.
func LatestCheckpoint(r io.Reader) (Checkpoint, bool, error) {
	sc := newScanner(r)
	var last Checkpoint
	var ok bool
	for {
		payload, err := sc.next()
		if err == io.EOF {
			return last, ok, nil
		}
		if err != nil {
			return Checkpoint{}, false, err
		}
		rec, perr := parseRecord(payload)
		if perr != nil {
			return Checkpoint{}, false, fmt.Errorf("%w: line %d: %v", ErrCorruptJournal, sc.lines, perr)
		}
		if rec.kind == recCheckpoint {
			last, ok = rec.ck, true
		}
	}
}
