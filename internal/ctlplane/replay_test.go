package ctlplane

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// soakJournal runs a small checkpointed soak and returns its journal text
// and result.
func soakJournal(t *testing.T) ([]byte, SoakResult) {
	t.Helper()
	var buf bytes.Buffer
	res, err := Soak(SoakConfig{
		Seed: 11, Events: 3000, EventsPerEpoch: 16,
		Shards: 2, SlotsPerShard: 8, CheckpointEvery: 32, Journal: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// sameOffering asserts two offerings match entry for entry.
func sameOffering(t *testing.T, got, want []StreamEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("offering has %d streams, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("offering entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReplayRoundTrip replays an uninterrupted soak journal and requires
// the reconstructed engine to match the original in every observable:
// journal hash and line count, conservation ledger, and admitted offering.
func TestReplayRoundTrip(t *testing.T) {
	text, res := soakJournal(t)
	eng, rep, err := Replay(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hash != res.JournalHash || rep.Lines != res.JournalLines {
		t.Fatalf("replay identity %x/%d, original %x/%d",
			rep.Hash, rep.Lines, res.JournalHash, res.JournalLines)
	}
	if rep.TornBytes != 0 || rep.DroppedLines != 0 {
		t.Fatalf("clean journal reported a dropped tail: %d bytes, %d lines",
			rep.TornBytes, rep.DroppedLines)
	}
	if rep.CommittedBytes != int64(len(text)) {
		t.Fatalf("committed %d of %d bytes", rep.CommittedBytes, len(text))
	}
	if rep.Epochs != res.Epochs {
		t.Fatalf("replayed %d epochs, original ran %d", rep.Epochs, res.Epochs)
	}
	if rep.Checkpoints == 0 || rep.Checkpoint == nil {
		t.Fatal("checkpointed journal replayed without verifying any checkpoint")
	}
	if got := eng.Ledger(); got != res.Final {
		t.Fatalf("replayed ledger %+v, original %+v", got, res.Final)
	}
	sameOffering(t, eng.Offering(), res.Offering)
	if eng.Violations() != 0 {
		t.Fatalf("replay manufactured %d conservation violations", eng.Violations())
	}
}

// TestReplayTornTail cuts a soak journal at awkward byte offsets — mid-line,
// mid-checksum, right after a newline — and requires Replay to recover the
// longest committed prefix: no error, a consistent report, and an engine
// whose journal hash equals the FNV over exactly the committed bytes.
func TestReplayTornTail(t *testing.T) {
	text, _ := soakJournal(t)
	// A spread of cuts: some mid-line, some at line boundaries, some inside
	// the trailing checksum.
	cuts := []int{
		len(text) - 1, len(text) - 3, len(text) - 40,
		len(text) / 2, len(text)/2 + 1, len(text) / 3,
		bytes.IndexByte(text, '\n') + 1, // right after the header
	}
	for _, cut := range cuts {
		eng, rep, err := Replay(bytes.NewReader(text[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if rep.CommittedBytes > int64(cut) {
			t.Fatalf("cut at %d: committed %d bytes past the cut", cut, rep.CommittedBytes)
		}
		if rep.CommittedBytes+rep.TornBytes != int64(cut) {
			t.Fatalf("cut at %d: committed %d + torn %d != input", cut, rep.CommittedBytes, rep.TornBytes)
		}
		// The committed prefix must itself replay to the same identity: the
		// reconstructed engine's journal is byte-identical to it.
		j := newJournal(nil)
		j.h.Write(text[:rep.CommittedBytes])
		if sum := j.h.Sum64(); sum != rep.Hash {
			t.Fatalf("cut at %d: committed prefix hashes to %x, engine reports %x", cut, sum, rep.Hash)
		}
		if led := eng.Ledger(); !led.Balanced() {
			t.Fatalf("cut at %d: recovered engine unbalanced: %+v", cut, led)
		}
	}
}

// TestReplayUncommittedBlockDropped hands Replay a journal ending in
// response lines whose fence never journaled its ledger: the whole trailing
// block must be dropped even though every line is complete.
func TestReplayUncommittedBlockDropped(t *testing.T) {
	text, _ := soakJournal(t)
	// Find the last ledger line whose epoch is NOT checkpoint-due, so the
	// prefix ending there is fully committed (a due ledger would await its
	// checkpoint line).
	idx := -1
	for search := 0; ; {
		j := bytes.Index(text[search:], []byte(" ledger "))
		if j < 0 {
			break
		}
		pos := search + j
		lineStart := bytes.LastIndexByte(text[:pos], '\n') + 1
		var epoch uint64
		if _, err := fmt.Sscanf(string(text[lineStart:pos]), "E%d", &epoch); err == nil && epoch%32 != 0 {
			idx = pos
		}
		search = pos + 1
	}
	if idx < 0 {
		t.Fatal("no non-checkpoint ledger line in the soak journal")
	}
	lineEnd := bytes.IndexByte(text[idx:], '\n') + idx + 1
	_, rep, err := Replay(bytes.NewReader(text[:lineEnd]))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 || rep.CommittedBytes != int64(lineEnd) {
		t.Fatalf("prefix ending at a ledger line should fully commit: committed %d of %d, torn %d",
			rep.CommittedBytes, lineEnd, rep.TornBytes)
	}

	// Append a complete response line with no ledger after it: the block
	// never committed, so replay must drop it without executing it.
	tail := append([]byte{}, text[:lineEnd]...)
	fake := []byte("E999999 #999999 evict id=12345 -> err: ctlplane: stream 12345 not admitted")
	tail = append(tail, appendChecksummed(nil, fake)...)
	_, rep2, err := Replay(bytes.NewReader(tail))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CommittedBytes != int64(lineEnd) {
		t.Fatalf("uncommitted trailing block moved the commit point: %d vs %d",
			rep2.CommittedBytes, lineEnd)
	}
	if rep2.DroppedLines != 1 {
		t.Fatalf("trailing ledger-less block: %d dropped lines, want 1", rep2.DroppedLines)
	}
}

// appendChecksummed renders line as a complete journal record (checksum
// suffix plus newline) appended to dst.
func appendChecksummed(dst, line []byte) []byte {
	dst = append(dst, line...)
	dst = append(dst, []byte{' ', '~'}...)
	const hexdigits = "0123456789abcdef"
	sum := lineSum(line)
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hexdigits[(sum>>shift)&0xf])
	}
	return append(dst, '\n')
}

// TestReplayCorruption flips a byte in the middle of a journal: a complete
// line failing its checksum is corruption, never a torn tail.
func TestReplayCorruption(t *testing.T) {
	text, _ := soakJournal(t)
	bad := append([]byte{}, text...)
	bad[len(bad)/2] ^= 0x01
	if _, _, err := Replay(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("mid-file bit flip: %v, want ErrCorruptJournal", err)
	}

	// An edited-but-rechecksummed line parses cleanly yet diverges from
	// re-execution.
	lines := bytes.SplitAfter(text, []byte("\n"))
	for i, line := range lines {
		if bytes.Contains(line, []byte(" ledger ")) {
			payload, _ := checkLine(bytes.TrimSuffix(line, []byte("\n")))
			forged := strings.Replace(payload, "ledger offered=", "ledger offered=9", 1)
			lines[i] = appendChecksummed(nil, []byte(forged))
			break
		}
	}
	forged := bytes.Join(lines, nil)
	if _, _, err := Replay(bytes.NewReader(forged)); !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("forged ledger: %v, want ErrReplayDivergence", err)
	}

	if _, _, err := Replay(bytes.NewReader(nil)); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("empty journal: %v, want ErrCorruptJournal", err)
	}
}

// TestResumeContinuesReplay replays a prefix, then resumes the same engine
// through the full journal: the result must match a full replay exactly.
func TestResumeContinuesReplay(t *testing.T) {
	text, res := soakJournal(t)
	cut := len(text) * 2 / 3
	eng, rep, err := Replay(bytes.NewReader(text[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Resume(eng, bytes.NewReader(text), rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Hash != res.JournalHash || rep2.Lines != res.JournalLines {
		t.Fatalf("resume identity %x/%d, original %x/%d",
			rep2.Hash, rep2.Lines, res.JournalHash, res.JournalLines)
	}
	if got := eng.Ledger(); got != res.Final {
		t.Fatalf("resumed ledger %+v, original %+v", got, res.Final)
	}
	sameOffering(t, eng.Offering(), res.Offering)

	// Resume against a journal that no longer matches the committed prefix
	// must refuse.
	mangled := append([]byte{}, text...)
	mangled[15] ^= 0x01
	eng2, rep3, err := Replay(bytes.NewReader(text[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(eng2, bytes.NewReader(mangled), rep3); err == nil {
		t.Fatal("resume accepted a journal that diverged from its committed prefix")
	}
}

// TestLatestCheckpoint scans journals and torn prefixes for the last full
// checkpoint without re-execution.
func TestLatestCheckpoint(t *testing.T) {
	text, _ := soakJournal(t)
	ck, ok, err := LatestCheckpoint(bytes.NewReader(text))
	if err != nil || !ok {
		t.Fatalf("clean journal: ok=%t err=%v", ok, err)
	}
	if ck.Epoch == 0 || ck.Epoch%32 != 0 {
		t.Fatalf("checkpoint at epoch %d, want a multiple of the cadence 32", ck.Epoch)
	}

	// A torn prefix still yields the last complete checkpoint before the
	// tear.
	torn, ok, err := LatestCheckpoint(bytes.NewReader(text[:len(text)-7]))
	if err != nil || !ok {
		t.Fatalf("torn journal: ok=%t err=%v", ok, err)
	}
	if torn.Epoch > ck.Epoch {
		t.Fatalf("torn prefix found a later checkpoint (%d) than the full journal (%d)", torn.Epoch, ck.Epoch)
	}

	// Before the first checkpoint there is nothing to report.
	first := bytes.Index(text, []byte(" checkpoint "))
	lineStart := bytes.LastIndexByte(text[:first], '\n') + 1
	if _, ok, err := LatestCheckpoint(bytes.NewReader(text[:lineStart])); ok || err != nil {
		t.Fatalf("pre-checkpoint prefix: ok=%t err=%v, want none", ok, err)
	}
}
