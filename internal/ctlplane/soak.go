package ctlplane

import (
	"fmt"
	"io"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/qm"
	"repro/internal/shard"
)

// This file is the seeded churn soak: a deterministic event generator that
// batters the control plane with admit/evict/retune/program/pool/drain
// events — a configurable count, canonically 10⁶ — while traffic flows, and
// requires zero conservation violations and a byte-identical journal on
// replay. The generator's randomness is a private splitmix64 stream seeded
// from the config (sslint's walltime rule bans global math/rand in internal
// packages, and a global source would break replay anyway); every choice,
// including the deliberately malformed events that exercise the error
// paths, derives from it.

// prng is a splitmix64 sequence — tiny, fast, and fully determined by its
// seed.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a uniform value in [0, n).
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// SoakConfig parameterizes a churn soak. Zero fields take defaults.
type SoakConfig struct {
	// Seed drives every generator choice; same seed, same journal bytes.
	Seed uint64
	// Events is the control-event count to generate (default 100000; CI's
	// make soak runs 1000000).
	Events int
	// EventsPerEpoch is how many events land at each epoch fence (default
	// 64).
	EventsPerEpoch int
	// Shards / SlotsPerShard size the endsystem (defaults 4 × 16).
	Shards        int
	SlotsPerShard int
	// CyclesPerEpoch is each shard's decision budget per epoch (default
	// 128).
	CyclesPerEpoch int
	// CheckpointEvery is the engine's checkpoint cadence in fences (default
	// 0 — the engine's own default; negative disables checkpoints). The
	// crash harness uses a dense cadence so sampled crash points land on
	// every side of a checkpoint boundary.
	CheckpointEvery int
	// Journal, when non-nil, receives the full journal text (CI uploads it
	// as the failure artifact). The hash accumulates regardless.
	Journal io.Writer
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Events == 0 {
		c.Events = 100000
	}
	if c.EventsPerEpoch == 0 {
		c.EventsPerEpoch = 64
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.SlotsPerShard == 0 {
		c.SlotsPerShard = 16
	}
	if c.CyclesPerEpoch == 0 {
		c.CyclesPerEpoch = 128
	}
	return c
}

// SoakResult summarizes a soak run. JournalHash/JournalLines are the replay
// identity; Violations must be zero.
type SoakResult struct {
	Events       int
	Epochs       uint64
	Applied      uint64
	Failed       uint64
	Violations   uint64
	JournalHash  uint64
	JournalLines uint64
	Final        Ledger
	// Offering is the admitted offering at quiescence — the crash-point
	// harness's divergence oracle compares it entry for entry against a
	// recovered engine's.
	Offering []StreamEntry
}

// soakState tracks the generator's view of the admitted stream population:
// an order-preserving slice for deterministic random picks plus an index
// map (never iterated) for O(1) removal.
type soakState struct {
	ids    []shard.StreamID
	pos    map[shard.StreamID]int
	class  map[shard.StreamID]attr.Class
	nextID shard.StreamID
}

func (st *soakState) add(id shard.StreamID, c attr.Class) {
	st.pos[id] = len(st.ids)
	st.ids = append(st.ids, id)
	st.class[id] = c
}

func (st *soakState) remove(id shard.StreamID) {
	i, ok := st.pos[id]
	if !ok {
		return
	}
	last := len(st.ids) - 1
	st.ids[i] = st.ids[last]
	st.pos[st.ids[i]] = i
	st.ids = st.ids[:last]
	delete(st.pos, id)
	delete(st.class, id)
}

// pick returns a uniformly chosen admitted stream (ok=false when none).
func (st *soakState) pick(r *prng) (shard.StreamID, bool) {
	if len(st.ids) == 0 {
		return 0, false
	}
	return st.ids[r.intn(len(st.ids))], true
}

// randomSpec synthesizes a valid spec of class c.
func randomSpec(r *prng, c attr.Class) attr.Spec {
	switch c {
	case attr.WindowConstrained:
		den := uint8(3 + r.intn(4))
		return attr.Spec{
			Class:      attr.WindowConstrained,
			Period:     uint16(2 + r.intn(14)),
			Constraint: attr.Constraint{Num: uint8(r.intn(3)), Den: den},
		}
	case attr.EDF:
		return attr.Spec{Class: attr.EDF, Period: uint16(1 + r.intn(15))}
	case attr.StaticPriority:
		return attr.Spec{Class: attr.StaticPriority, Priority: uint16(r.intn(1024))}
	case attr.FairTag:
		return attr.Spec{Class: attr.FairTag, Weight: uint16(1 + r.intn(8))}
	default:
		return attr.Spec{Class: attr.EDF, Period: 1}
	}
}

// soakClasses is the class mix admitted by the soak — every discipline the
// DWCS datapath hosts.
var soakClasses = [...]attr.Class{
	attr.WindowConstrained, attr.EDF, attr.StaticPriority, attr.FairTag,
}

// event generates one control request. The mix leans on admit/evict/retune
// churn, with a tail of program switches, pool resizes, shard
// drain/restart, and deliberately malformed events (unknown streams,
// oversized pool bursts, class-changing retunes) so the error paths are
// journaled too.
func event(r *prng, st *soakState, cfg SoakConfig) Request {
	switch roll := r.intn(100); {
	case roll < 28: // admit a fresh stream
		id := st.nextID
		st.nextID++
		c := soakClasses[r.intn(len(soakClasses))]
		return Request{Op: OpAdmit, Stream: id, Spec: randomSpec(r, c)}
	case roll < 48: // evict a known stream
		if id, ok := st.pick(r); ok {
			return Request{Op: OpEvict, Stream: id}
		}
		return Request{Op: OpEvict, Stream: 1 << 40} // nothing admitted: unknown-stream error path
	case roll < 50: // evict an unknown stream (error path)
		return Request{Op: OpEvict, Stream: shard.StreamID(1<<40 + r.intn(100))}
	case roll < 72: // retune a known stream, same class
		if id, ok := st.pick(r); ok {
			return Request{Op: OpRetune, Stream: id, Spec: randomSpec(r, st.class[id])}
		}
		return Request{Op: OpRetune, Stream: 1 << 40, Spec: randomSpec(r, attr.EDF)}
	case roll < 75: // retune with a class change (error path)
		if id, ok := st.pick(r); ok {
			next := soakClasses[(int(st.class[id])+1)%len(soakClasses)]
			return Request{Op: OpRetune, Stream: id, Spec: randomSpec(r, next)}
		}
		return Request{Op: OpRetune, Stream: 1 << 40, Spec: randomSpec(r, attr.EDF)}
	case roll < 83: // switch a known stream's rank program
		id, _ := st.pick(r)
		p := decision.ProgramSTFQ
		if r.next()&1 == 0 {
			p = decision.ProgramDWCS
		}
		return Request{Op: OpSetProgram, Stream: id, Program: p}
	case roll < 89: // resize a shard's pool (sometimes past the slack: error path)
		return Request{Op: OpResizePool, Shard: r.intn(cfg.Shards), Burst: r.intn(140)}
	case roll < 95: // drain (double-drain errors included by construction)
		return Request{Op: OpDrainShard, Shard: r.intn(cfg.Shards)}
	default: // restart (not-drained errors included by construction)
		return Request{Op: OpRestartShard, Shard: r.intn(cfg.Shards)}
	}
}

// settleLimit bounds the settle phase: epochs with traffic paused before
// the soak declares the pipelines wedged.
const settleLimit = 1 << 14

// Soak churns cfg.Events control events through a fresh engine, one
// EventsPerEpoch batch per fence, with one frame per occupied slot offered
// each epoch. After the last event it restarts every drained shard, pauses
// traffic, and steps until nothing is in flight — conservation must then
// close the books exactly: offered == delivered + dropped + evicted. It
// returns an error on any conservation violation or a failure to settle;
// journal identity is left to the caller (run it twice, compare
// SoakResult.JournalHash and JournalLines).
func Soak(cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.withDefaults()
	eng, err := New(Config{
		Shards:          cfg.Shards,
		SlotsPerShard:   cfg.SlotsPerShard,
		BufferPool:      qm.SharedConfig{Reservation: 8, Burst: 64, DelayTarget: 64},
		Program:         decision.ProgramDWCS,
		Policy:          qm.DropOldest,
		CyclesPerEpoch:  cfg.CyclesPerEpoch,
		FramesPerStream: 1,
		Journal:         cfg.Journal,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return SoakResult{}, err
	}
	r := &prng{s: cfg.Seed}
	st := &soakState{
		pos:    make(map[shard.StreamID]int),
		class:  make(map[shard.StreamID]attr.Class),
		nextID: 1,
	}
	res := SoakResult{Events: cfg.Events}

	digest := func(rep EpochReport) {
		for _, resp := range rep.Responses {
			if !resp.OK() {
				res.Failed++
				continue
			}
			res.Applied++
			switch resp.Op {
			case OpAdmit:
				// The generator recorded the class at generation time; keep
				// the population in sync with what actually admitted.
				if _, tracked := st.pos[resp.Stream]; !tracked {
					st.add(resp.Stream, st.class[resp.Stream])
				}
			case OpEvict:
				st.remove(resp.Stream)
			default:
			}
		}
	}

	for produced := 0; produced < cfg.Events; {
		n := cfg.EventsPerEpoch
		if rest := cfg.Events - produced; n > rest {
			n = rest
		}
		for i := 0; i < n; i++ {
			req := event(r, st, cfg)
			if req.Op == OpAdmit {
				// Track the class before the fence so digest can admit it
				// into the population.
				st.class[req.Stream] = req.Spec.Class
			}
			eng.Enqueue(req)
		}
		produced += n
		rep := eng.Step()
		digest(rep)
		if !rep.Balanced {
			res.Violations++
		}
	}

	// Settle: resume every drained shard, stop offering, and run the
	// backlog out. The books must close exactly at quiescence.
	led := eng.Ledger()
	for k := 0; k < cfg.Shards; k++ {
		eng.Enqueue(Request{Op: OpRestartShard, Shard: k})
	}
	eng.SetOffering(0)
	for i := 0; ; i++ {
		rep := eng.Step()
		digest(rep)
		if !rep.Balanced {
			res.Violations++
		}
		led = rep.Ledger
		if led.InFlight == 0 {
			break
		}
		if i >= settleLimit {
			return res, fmt.Errorf("ctlplane: soak failed to settle: %d frames in flight after %d extra epochs",
				led.InFlight, i+1)
		}
	}

	res.Epochs = eng.Epoch()
	res.Violations = eng.Violations()
	res.JournalHash, res.JournalLines = eng.JournalSum()
	res.Final = led
	res.Offering = eng.Offering()
	if res.Violations != 0 {
		return res, fmt.Errorf("ctlplane: soak saw %d conservation violations", res.Violations)
	}
	if led.Offered != led.Delivered+led.DroppedQM+led.DroppedSched+led.Evicted {
		return res, fmt.Errorf("ctlplane: books do not close at quiescence: %+v", led)
	}
	return res, nil
}
