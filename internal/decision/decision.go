// Package decision implements the ShareStreams Decision block: a
// combinational unit that orders two streams' attribute words in a single
// hardware cycle (Figure 5 of the paper).
//
// Unlike the simple comparators of fair-queuing hardware, a Decision block
// compares multiple service attributes simultaneously. All of Table 2's
// pairwise ordering rules are evaluated concurrently and the valid rule's
// output is selected by a mux; in this model that mux is a prioritized
// selection that records which rule fired, so tests and traces can see the
// datapath's reasoning.
//
// Table 2 (pairwise ordering for streams):
//
//  1. Earliest-deadline first.
//  2. Equal deadlines: order lowest window-constraint (W = x/y) first.
//  3. Equal deadlines and zero window-constraints: order highest
//     window-denominator first.
//  4. Equal deadlines and equal non-zero window-constraints: order lowest
//     window-numerator first.
//  5. All other cases: first-come-first-serve (earliest arrival first).
//
// The model adds two hardware-necessary rules the paper leaves implicit:
// validity (an empty stream-slot always loses so backlogged slots bubble to
// the front) and a final slot-ID tie-break (hardware must emit *some*
// deterministic order when every attribute matches).
package decision

import (
	"fmt"

	"repro/internal/attr"
)

// Mode selects the comparison datapath.
type Mode uint8

const (
	// DWCS evaluates the full multi-attribute rule set of Table 2 —
	// required for window-constrained scheduling.
	DWCS Mode = iota
	// TagOnly is the simple-comparator configuration used when mapping
	// priority-class and fair-queuing disciplines: only the deadline field
	// (holding a static priority or a service tag) is compared, with FCFS
	// and slot-ID tie-breaks. This is the cheaper comparator §3 contrasts
	// with full Decision blocks.
	TagOnly
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case DWCS:
		return "dwcs"
	case TagOnly:
		return "tag-only"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Rule identifies which concurrently-evaluated ordering rule selected the
// winner.
type Rule uint8

const (
	// RuleValidity fired because exactly one input held a backlogged stream.
	RuleValidity Rule = iota
	// RuleEDF fired on strictly earlier deadline.
	RuleEDF
	// RuleLowestConstraint fired on equal deadlines, lower W.
	RuleLowestConstraint
	// RuleHighestDenominator fired on equal deadlines, both W zero, higher y.
	RuleHighestDenominator
	// RuleLowestNumerator fired on equal deadlines, equal non-zero W, lower x.
	RuleLowestNumerator
	// RuleFCFS fired on earlier arrival time.
	RuleFCFS
	// RuleSlotID fired as the final deterministic tie-break.
	RuleSlotID
)

var ruleNames = [...]string{
	RuleValidity:           "validity",
	RuleEDF:                "edf",
	RuleLowestConstraint:   "lowest-constraint",
	RuleHighestDenominator: "highest-denominator",
	RuleLowestNumerator:    "lowest-numerator",
	RuleFCFS:               "fcfs",
	RuleSlotID:             "slot-id",
}

// String returns the rule name.
func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// NumRules is the number of distinct ordering rules, for sizing counters.
const NumRules = len(ruleNames)

// Verdict is a Decision block's single-cycle output: the pairwise order of
// its two inputs and the rule that determined it.
type Verdict struct {
	Winner, Loser attr.Attributes
	Rule          Rule
	// Swapped reports whether the winner came from the block's second
	// input port (the exchange output of the shuffle-exchange stage).
	Swapped bool
}

// Block is one Decision block instance. It is purely combinational; the
// counters exist for tests, traces and the ablation benches. The zero value
// is a DWCS-mode block.
type Block struct {
	Mode Mode
	// Compares counts invocations; RuleHits counts, per rule, how often
	// that rule resolved the order. TieHits counts keyed compares resolved
	// by the equal-key slot tie-break (KeyTie) — decisions that stayed on
	// the fast path but would have fallen back to the cascade before the
	// tie-break existed, so pre-fix hit rates remain reconstructible from
	// one run.
	Compares uint64
	TieHits  uint64
	RuleHits [NumRules]uint64
}

// Compare orders a against b in one simulated cycle and returns the verdict.
func (bl *Block) Compare(a, b attr.Attributes) Verdict {
	v := compare(bl.Mode, a, b)
	bl.Compares++
	bl.RuleHits[v.Rule]++
	return v
}

// Compare is the stateless form of (*Block).Compare, for callers that do not
// need counters (property tests, reference models).
func Compare(mode Mode, a, b attr.Attributes) Verdict {
	return compare(mode, a, b)
}

// CompareKeyed orders a against b using their packed rank keys: one
// unsigned integer compare when FastOrder can prove the order, a slot-ID
// tie-break when the masked keys are exactly equal (KeyTie — every cascade
// rule ties, so only the deterministic slot order remains), and the full
// Table-2 cascade otherwise — exactly equivalent to Compare in every case
// (see the differential tests). It reports whether a orders first.
//
// Compares counts every invocation either way; RuleHits attributes a rule
// only on the cascade fallback, since the fast paths — like the hardware's
// flattened comparator — do not know which rule would have fired. Callers
// that need full rule traces use Compare.
func (bl *Block) CompareKeyed(a, b attr.Attributes, ka, kb attr.Key) (aFirst bool) {
	if first, decided := FastOrder(bl.Mode, ka, kb); decided {
		bl.Compares++
		return first
	}
	if KeyTie(bl.Mode, ka, kb) {
		bl.Compares++
		bl.TieHits++
		return a.Slot < b.Slot
	}
	return !bl.Compare(a, b).Swapped
}

func compare(mode Mode, a, b attr.Attributes) Verdict {
	if first, rule, decided := order(mode, a, b); decided {
		if first {
			return Verdict{Winner: a, Loser: b, Rule: rule}
		}
		return Verdict{Winner: b, Loser: a, Rule: rule, Swapped: true}
	}
	// order always decides via the slot-ID rule; unreachable.
	panic("decision: undecided comparison")
}

// order returns (a-first?, rule, decided). It is written as a cascade of the
// concurrently-evaluated rule outputs in mux-priority order.
func order(mode Mode, a, b attr.Attributes) (bool, Rule, bool) {
	// Validity: an empty slot always loses.
	if a.Valid != b.Valid {
		return a.Valid, RuleValidity, true
	}
	if !a.Valid { // both empty: deterministic order by slot ID
		return a.Slot < b.Slot, RuleSlotID, true
	}

	// Rule 1: earliest deadline first (wrap-aware 16-bit compare).
	if a.Deadline != b.Deadline {
		return a.Deadline.Before(b.Deadline), RuleEDF, true
	}

	if mode == DWCS {
		ca, cb := a.Constraint(), b.Constraint()
		switch ca.Cmp(cb) {
		case -1:
			// Rule 2: lowest window-constraint first.
			return true, RuleLowestConstraint, true
		case 1:
			return false, RuleLowestConstraint, true
		}
		// Equal constraint values.
		if ca.Zero() && cb.Zero() {
			// Rule 3: zero constraints — highest denominator first.
			if a.LossDen != b.LossDen {
				return a.LossDen > b.LossDen, RuleHighestDenominator, true
			}
		} else {
			// Rule 4: equal non-zero constraints — lowest numerator first.
			if a.LossNum != b.LossNum {
				return a.LossNum < b.LossNum, RuleLowestNumerator, true
			}
		}
	}

	// Rule 5: first-come-first-serve by arrival time.
	if a.Arrival != b.Arrival {
		return a.Arrival.Before(b.Arrival), RuleFCFS, true
	}

	// Deterministic hardware tie-break.
	return a.Slot < b.Slot, RuleSlotID, true
}

// Less reports whether a orders strictly before b under mode — the
// comparator-predicate view of the Decision block, used by reference sorts
// and the software DWCS baseline. Note Less(a,b) and Less(b,a) are never
// both true and never both false unless a and b are the same slot.
func Less(mode Mode, a, b attr.Attributes) bool {
	first, _, _ := order(mode, a, b)
	return first
}
