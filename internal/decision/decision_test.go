package decision

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
)

func at(deadline uint16, num, den uint8, arrival uint16, slot attr.SlotID) attr.Attributes {
	return attr.Attributes{
		Deadline: attr.Time16(deadline),
		LossNum:  num,
		LossDen:  den,
		Arrival:  attr.Time16(arrival),
		Slot:     slot,
		Valid:    true,
	}
}

func TestRule1EarliestDeadlineFirst(t *testing.T) {
	a := at(10, 1, 2, 0, 0)
	b := at(11, 0, 9, 0, 1)
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 0 || v.Rule != RuleEDF {
		t.Fatalf("winner=%d rule=%v, want slot 0 via edf", v.Winner.Slot, v.Rule)
	}
	// Deadline dominates everything else, including a "better" constraint.
	v = Compare(DWCS, b, a)
	if v.Winner.Slot != 0 || !v.Swapped {
		t.Fatalf("winner=%d swapped=%v, want slot 0 swapped", v.Winner.Slot, v.Swapped)
	}
}

func TestRule1WrapAwareDeadline(t *testing.T) {
	// 0xFFFE is earlier than 0x0002 across the wrap.
	a := at(0xFFFE, 0, 0, 0, 0)
	b := at(0x0002, 0, 0, 0, 1)
	if v := Compare(DWCS, a, b); v.Winner.Slot != 0 {
		t.Fatalf("wrap-aware EDF picked slot %d, want 0", v.Winner.Slot)
	}
}

func TestRule2LowestConstraintFirst(t *testing.T) {
	a := at(5, 1, 4, 9, 0) // W = 0.25
	b := at(5, 1, 2, 0, 1) // W = 0.5
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 0 || v.Rule != RuleLowestConstraint {
		t.Fatalf("winner=%d rule=%v, want slot 0 via lowest-constraint", v.Winner.Slot, v.Rule)
	}
}

func TestRule3ZeroConstraintsHighestDenominator(t *testing.T) {
	a := at(5, 0, 3, 0, 0)
	b := at(5, 0, 9, 1, 1)
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 1 || v.Rule != RuleHighestDenominator {
		t.Fatalf("winner=%d rule=%v, want slot 1 via highest-denominator", v.Winner.Slot, v.Rule)
	}
}

func TestRule4EqualNonZeroLowestNumerator(t *testing.T) {
	a := at(5, 2, 4, 9, 0) // W = 0.5
	b := at(5, 1, 2, 0, 1) // W = 0.5, lower numerator
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 1 || v.Rule != RuleLowestNumerator {
		t.Fatalf("winner=%d rule=%v, want slot 1 via lowest-numerator", v.Winner.Slot, v.Rule)
	}
}

func TestRule5FCFS(t *testing.T) {
	a := at(5, 1, 2, 7, 0)
	b := at(5, 1, 2, 3, 1) // identical constraints, earlier arrival
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 1 || v.Rule != RuleFCFS {
		t.Fatalf("winner=%d rule=%v, want slot 1 via fcfs", v.Winner.Slot, v.Rule)
	}
}

func TestSlotIDFinalTieBreak(t *testing.T) {
	a := at(5, 1, 2, 3, 4)
	b := at(5, 1, 2, 3, 2)
	v := Compare(DWCS, a, b)
	if v.Winner.Slot != 2 || v.Rule != RuleSlotID {
		t.Fatalf("winner=%d rule=%v, want slot 2 via slot-id", v.Winner.Slot, v.Rule)
	}
}

func TestValidityDominates(t *testing.T) {
	invalid := attr.Attributes{Deadline: 0, Slot: 0, Valid: false} // "best" attributes but empty
	backlogged := at(0xFFF0, 9, 9, 9, 1)
	v := Compare(DWCS, invalid, backlogged)
	if v.Winner.Slot != 1 || v.Rule != RuleValidity {
		t.Fatalf("winner=%d rule=%v, want slot 1 via validity", v.Winner.Slot, v.Rule)
	}
	// Both invalid: deterministic by slot.
	u := attr.Attributes{Slot: 3}
	w := attr.Attributes{Slot: 1}
	v = Compare(DWCS, u, w)
	if v.Winner.Slot != 1 || v.Rule != RuleSlotID {
		t.Fatalf("two empty slots: winner=%d rule=%v, want slot 1 via slot-id", v.Winner.Slot, v.Rule)
	}
}

func TestTagOnlyIgnoresConstraints(t *testing.T) {
	a := at(5, 0, 9, 7, 0) // zero W, huge denominator — would win rule 3
	b := at(5, 1, 2, 3, 1) // earlier arrival
	v := Compare(TagOnly, a, b)
	if v.Winner.Slot != 1 || v.Rule != RuleFCFS {
		t.Fatalf("tag-only winner=%d rule=%v, want slot 1 via fcfs", v.Winner.Slot, v.Rule)
	}
	// Tag (deadline field) still dominates.
	c := at(4, 9, 9, 99, 2)
	if v := Compare(TagOnly, a, c); v.Winner.Slot != 2 || v.Rule != RuleEDF {
		t.Fatalf("tag-only winner=%d rule=%v, want slot 2 via edf", v.Winner.Slot, v.Rule)
	}
}

func arb(deadline uint16, num, den uint8, arrival uint16, slot uint8, valid bool) attr.Attributes {
	return attr.Attributes{
		Deadline: attr.Time16(deadline),
		LossNum:  num,
		LossDen:  den,
		Arrival:  attr.Time16(arrival),
		Slot:     attr.SlotID(slot),
		Valid:    valid,
	}
}

func TestCompareTotalAndAntisymmetric(t *testing.T) {
	for _, mode := range []Mode{DWCS, TagOnly} {
		f := func(d1 uint16, n1, y1 uint8, a1 uint16, s1 uint8, v1 bool,
			d2 uint16, n2, y2 uint8, a2 uint16, s2 uint8, v2 bool) bool {
			a := arb(d1, n1, y1, a1, s1, v1)
			b := arb(d2, n2, y2, a2, s2, v2)
			if a.Slot == b.Slot {
				return true // same slot never meets itself in the network
			}
			va := Compare(mode, a, b)
			vb := Compare(mode, b, a)
			// Same winner regardless of port order.
			if va.Winner.Slot != vb.Winner.Slot || va.Loser.Slot != vb.Loser.Slot {
				return false
			}
			// Winner/loser partition the inputs.
			if va.Winner.Slot != a.Slot && va.Winner.Slot != b.Slot {
				return false
			}
			return va.Winner.Slot != va.Loser.Slot
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestLessMatchesCompare(t *testing.T) {
	f := func(d1 uint16, n1, y1 uint8, a1 uint16, s1 uint8,
		d2 uint16, n2, y2 uint8, a2 uint16, s2 uint8) bool {
		a := arb(d1, n1, y1, a1, s1, true)
		b := arb(d2, n2, y2, a2, s2, true)
		if a.Slot == b.Slot {
			return true
		}
		v := Compare(DWCS, a, b)
		return Less(DWCS, a, b) == (v.Winner.Slot == a.Slot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLessStrictWeakOrder checks transitivity-style sanity on random triples:
// if a<b and b<c then a<c must hold for the comparator to be usable in a
// sorting network.
func TestLessStrictWeakOrder(t *testing.T) {
	f := func(d [3]uint16, n, y [3]uint8, ar [3]uint16) bool {
		var x [3]attr.Attributes
		for i := range x {
			// Constrain deadlines/arrivals to a quarter of the wrap
			// window so serial-number order is a total order.
			x[i] = arb(d[i]%0x4000, n[i], y[i], ar[i]%0x4000, uint8(i), true)
		}
		less := func(i, j int) bool { return Less(DWCS, x[i], x[j]) }
		if less(0, 1) && less(1, 2) && !less(0, 2) {
			return false
		}
		if less(2, 1) && less(1, 0) && !less(2, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBlockCounters(t *testing.T) {
	var b Block // zero value is DWCS mode
	if b.Mode != DWCS {
		t.Fatal("zero Block should be DWCS mode")
	}
	b.Compare(at(1, 0, 0, 0, 0), at(2, 0, 0, 0, 1))
	b.Compare(at(5, 1, 4, 0, 0), at(5, 1, 2, 0, 1))
	b.Compare(at(5, 1, 2, 3, 0), at(5, 1, 2, 3, 1))
	if b.Compares != 3 {
		t.Errorf("Compares = %d, want 3", b.Compares)
	}
	if b.RuleHits[RuleEDF] != 1 || b.RuleHits[RuleLowestConstraint] != 1 || b.RuleHits[RuleSlotID] != 1 {
		t.Errorf("rule hits = %v", b.RuleHits)
	}
}

func TestRuleStrings(t *testing.T) {
	if RuleEDF.String() != "edf" || Rule(200).String() != "rule(200)" {
		t.Error("Rule.String misbehaved")
	}
	if DWCS.String() != "dwcs" || TagOnly.String() != "tag-only" || Mode(9).String() != "mode(9)" {
		t.Error("Mode.String misbehaved")
	}
}
