package decision

// Differential verification of the fast-path comparator against the Table-2
// cascade: FastOrder plus cascade fallback must be *bit-identical* to the
// cascade alone for every attribute pair, every mode and every key
// normalization reference. This is the proof obligation that lets the
// shuffle network route on packed keys without changing a single paper
// number.

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// fastOrFallback is the exact composition the network hot path uses.
func fastOrFallback(mode Mode, a, b attr.Attributes, ka, kb attr.Key) bool {
	if aFirst, decided := FastOrder(mode, ka, kb); decided {
		return aFirst
	}
	first, _, _ := order(mode, a, b)
	return first
}

func randWord(rng *rand.Rand, slot attr.SlotID) attr.Attributes {
	return attr.Attributes{
		Deadline: attr.Time16(rng.Intn(1 << 16)),
		LossNum:  uint8(rng.Intn(256)),
		LossDen:  uint8(rng.Intn(256)),
		Arrival:  attr.Time16(rng.Intn(1 << 16)),
		Slot:     slot,
		Valid:    rng.Intn(8) != 0,
	}
}

// TestFastOrderDifferential sweeps random word pairs and references —
// including adversarial near-wrap deadlines that trip the serial-window
// guard — and demands exact agreement with the cascade in both port orders.
func TestFastOrderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(1024)))
		b := randWord(rng, attr.SlotID(rng.Intn(1024)))
		if rng.Intn(4) == 0 { // force frequent upper-field ties
			b.Deadline = a.Deadline
			b.LossNum, b.LossDen = a.LossNum, a.LossDen
		}
		ref := attr.Time16(rng.Intn(1 << 16))
		ka, kb := a.Key(ref), b.Key(ref)
		for _, mode := range []Mode{DWCS, TagOnly} {
			want, _, _ := order(mode, a, b)
			if got := fastOrFallback(mode, a, b, ka, kb); got != want {
				t.Fatalf("mode %v ref %d: fast path %v, cascade %v\na=%+v\nb=%+v\nka=%064b\nkb=%064b",
					mode, ref, got, want, a, b, uint64(ka), uint64(kb))
			}
			// Port-order symmetry of the composition (slots differ unless
			// the RNG collided; skip the degenerate same-slot draw).
			if a.Slot != b.Slot {
				wantBA, _, _ := order(mode, b, a)
				if got := fastOrFallback(mode, b, a, kb, ka); got != wantBA {
					t.Fatalf("mode %v ref %d: fast path port-order mismatch for %+v vs %+v", mode, ref, a, b)
				}
			}
		}
	}
}

// FuzzFastOrderDifferential is the fuzz-driven form of the same proof, so
// `make fuzz` keeps searching the corner space (wrap straddles, saturated
// slots, undefined constraints) beyond the fixed random sweep.
func FuzzFastOrderDifferential(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint8(0), uint16(0), uint16(200), true,
		uint16(2), uint8(1), uint8(2), uint16(3), uint16(130), true, uint16(0))
	f.Add(uint16(0x8000), uint8(3), uint8(0), uint16(9), uint16(0), true,
		uint16(0), uint8(0), uint8(0), uint16(9), uint16(1), true, uint16(0x7FFF))
	f.Add(uint16(5), uint8(1), uint8(2), uint16(4), uint16(127), false,
		uint16(5), uint8(2), uint8(4), uint16(4), uint16(128), true, uint16(42))
	f.Fuzz(func(t *testing.T, d1 uint16, n1, y1 uint8, a1, s1 uint16, v1 bool,
		d2 uint16, n2, y2 uint8, a2, s2 uint16, v2 bool, ref uint16) {
		a := attr.Attributes{Deadline: attr.Time16(d1), LossNum: n1, LossDen: y1,
			Arrival: attr.Time16(a1), Slot: attr.SlotID(s1), Valid: v1}
		b := attr.Attributes{Deadline: attr.Time16(d2), LossNum: n2, LossDen: y2,
			Arrival: attr.Time16(a2), Slot: attr.SlotID(s2), Valid: v2}
		ka, kb := a.Key(attr.Time16(ref)), b.Key(attr.Time16(ref))
		for _, mode := range []Mode{DWCS, TagOnly} {
			want, _, _ := order(mode, a, b)
			if got := fastOrFallback(mode, a, b, ka, kb); got != want {
				t.Fatalf("mode %v ref %d: fast path %v, cascade %v for %+v vs %+v", mode, ref, got, want, a, b)
			}
		}
	})
}

// TestLessStrictWeakOrdering checks that Less remains a strict ordering
// over random attribute words: antisymmetric (never both Less(a,b) and
// Less(b,a)) and total (one of them holds whenever the slots differ).
// Pairs whose deadline or arrival distance is exactly 2^15 are skipped:
// serial-number order is inherently ambiguous there (the hardware
// subtract-and-test-sign sees both operands as "before" the other), and
// the architecture's half-window precondition excludes them.
func TestLessStrictWeakOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ambiguous := func(x, y attr.Time16) bool { return uint16(x-y) == 0x8000 }
	for trial := 0; trial < 200000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(64)))
		b := randWord(rng, attr.SlotID(rng.Intn(64)))
		if ambiguous(a.Deadline, b.Deadline) || ambiguous(a.Arrival, b.Arrival) {
			continue
		}
		for _, mode := range []Mode{DWCS, TagOnly} {
			ab, ba := Less(mode, a, b), Less(mode, b, a)
			if ab && ba {
				t.Fatalf("mode %v: Less antisymmetry violated for %+v vs %+v", mode, a, b)
			}
			if a.Slot != b.Slot && !ab && !ba {
				t.Fatalf("mode %v: Less totality violated for %+v vs %+v", mode, a, b)
			}
		}
	}
}
