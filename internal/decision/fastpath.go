package decision

// The fast-path comparator: most pairwise orders resolve on a single
// unsigned compare of two packed rank keys (attr.Key). The Table-2 cascade
// in order() remains the source of truth — FastOrder either agrees with it
// exactly or declines, and the differential fuzz test pins the equivalence.

import (
	"math/bits"

	"repro/internal/attr"
)

// keyTagMask keeps the fields the TagOnly datapath compares: validity,
// deadline, arrival and slot — the simple comparator of §3.
const keyTagMask = ^attr.KeyConstraintMask

// KeyMask returns the key-field mask a datapath in the given mode compares:
// all fields for DWCS, the TagOnly subset otherwise. Masking keys once at
// latch time with this mask and then comparing unmasked is exactly
// equivalent to FastOrder/KeyTie's per-compare masking — the mask is
// idempotent — which is how the shuffle key plane keeps its inner loops
// mode-oblivious.
func KeyMask(mode Mode) attr.Key {
	if mode == TagOnly {
		return keyTagMask
	}
	return ^attr.Key(0)
}

// FastOrder orders two attribute words by their packed rank keys in one
// unsigned integer compare. It reports (aFirst, decided); decided is false
// when the keys cannot prove the order, and the caller must fall back to
// the full Table-2 cascade (Compare/order). That happens in exactly two
// situations:
//
//   - the keys are equal after mode masking (all compared fields tie, or
//     both slots saturate the 7-bit slot field), or
//   - the deciding field is a wrapped time (deadline or arrival) whose two
//     operands straddle the serial-number window, so the normalized field
//     order and the hardware subtract-and-test-sign order disagree.
//
// Both checks make FastOrder + cascade-fallback *exactly* equivalent to the
// cascade alone, for every input and every normalization reference — the
// reference only shifts how often the second guard trips.
func FastOrder(mode Mode, ka, kb attr.Key) (aFirst, decided bool) {
	if mode == TagOnly {
		ka &= keyTagMask
		kb &= keyTagMask
	}
	d := ka ^ kb
	if d == 0 {
		return false, false
	}
	// The highest differing bit identifies the deciding field.
	switch hb := bits.Len64(uint64(d)) - 1; {
	case hb >= attr.KeyDeadlineShift && hb < attr.KeyInvalidBit:
		// Rule 1 decides: trust the key only if the normalized order
		// matches the wrap-aware (serial-number) order.
		da, db := uint16(ka>>attr.KeyDeadlineShift), uint16(kb>>attr.KeyDeadlineShift)
		if (da < db) != (int16(da-db) < 0) {
			return false, false
		}
	case hb >= attr.KeyArrivalShift && hb < attr.KeyTieShift:
		// Rule 5 (FCFS) decides: same serial-number guard for arrivals.
		aa, ab := uint16(ka>>attr.KeyArrivalShift), uint16(kb>>attr.KeyArrivalShift)
		if (aa < ab) != (int16(aa-ab) < 0) {
			return false, false
		}
	}
	return ka < kb, true
}

// KeyTie reports whether two packed keys are exactly equal after mode
// masking. Equality in every key field means the cascade ties at every rule
// before the final slot-ID tie-break — each field above the slot is exact
// (see the attr.Key layout comment), and field equality is
// ref-independent, so no wrap-window guard is needed. A caller seeing
// KeyTie may resolve the order as `a.Slot < b.Slot` directly, skipping the
// cascade.
//
// This is the second half of the fast path: the 7-bit key slot field
// saturates at 127, so at N > 127 a tied pair of high slots always produces
// equal keys and FastOrder must decline. Before this tie-break existed,
// every such pair paid the full Table-2 cascade — at N = 1024 that was the
// common case, collapsing the fast-path hit rate exactly in the regime the
// perf work targets. The equivalence with the cascade is pinned by
// TestKeyTieDifferential and FuzzKeyTieDifferential.
func KeyTie(mode Mode, ka, kb attr.Key) bool {
	if mode == TagOnly {
		ka &= keyTagMask
		kb &= keyTagMask
	}
	return ka == kb
}
