package decision

import (
	"testing"

	"repro/internal/attr"
)

// FuzzCompareConsistency drives the Decision block with arbitrary attribute
// words and checks the hardware-correctness invariants: the verdict
// partitions the inputs, is port-order independent, and agrees with the
// Less predicate.
func FuzzCompareConsistency(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint8(0), uint16(0), uint16(2), uint8(1), uint8(2), uint16(3), true, true)
	f.Add(uint16(5), uint8(1), uint8(4), uint16(9), uint16(5), uint8(1), uint8(2), uint16(0), true, false)
	f.Add(uint16(0xFFFE), uint8(0), uint8(9), uint16(7), uint16(2), uint8(0), uint8(3), uint16(7), false, true)
	f.Fuzz(func(t *testing.T, d1 uint16, n1, y1 uint8, a1 uint16,
		d2 uint16, n2, y2 uint8, a2 uint16, v1, v2 bool) {
		a := attr.Attributes{Deadline: attr.Time16(d1), LossNum: n1, LossDen: y1,
			Arrival: attr.Time16(a1), Slot: 0, Valid: v1}
		b := attr.Attributes{Deadline: attr.Time16(d2), LossNum: n2, LossDen: y2,
			Arrival: attr.Time16(a2), Slot: 1, Valid: v2}
		for _, mode := range []Mode{DWCS, TagOnly} {
			vab := Compare(mode, a, b)
			vba := Compare(mode, b, a)
			if vab.Winner.Slot == vab.Loser.Slot {
				t.Fatalf("mode %v: winner == loser", mode)
			}
			if vab.Winner.Slot != vba.Winner.Slot {
				t.Fatalf("mode %v: port order changed the winner", mode)
			}
			if got := Less(mode, a, b); got != (vab.Winner.Slot == a.Slot) {
				t.Fatalf("mode %v: Less inconsistent with Compare", mode)
			}
			// Validity rule: a backlogged slot never loses to an empty one.
			if a.Valid && !b.Valid && vab.Winner.Slot != a.Slot {
				t.Fatalf("mode %v: empty slot beat a backlogged one", mode)
			}
		}
	})
}

func BenchmarkCompareDWCS(b *testing.B) {
	x := attr.Attributes{Deadline: 100, LossNum: 1, LossDen: 4, Arrival: 5, Slot: 0, Valid: true}
	y := attr.Attributes{Deadline: 100, LossNum: 1, LossDen: 2, Arrival: 7, Slot: 1, Valid: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(DWCS, x, y)
	}
}

func BenchmarkCompareTagOnly(b *testing.B) {
	x := attr.Attributes{Deadline: 100, Arrival: 5, Slot: 0, Valid: true}
	y := attr.Attributes{Deadline: 101, Arrival: 7, Slot: 1, Valid: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(TagOnly, x, y)
	}
}
