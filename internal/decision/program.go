package decision

// Rank programs: the PIFO view of the Decision datapath.
//
// "Programmable Packet Scheduling at Line Rate" (Sivaraman et al.) observes
// that one priority structure hosts a whole family of disciplines if each
// discipline is expressed as a *rank program* — a pure function from stream
// state to a rank, with the structure ordering ranks. The ShareStreams
// datapath already is that structure: the shuffle network orders packed
// attr.Key ranks, and only attribute loading/update differs per discipline
// (the paper's "unified canonical architecture"). This file names the
// programs, so a discipline is selected by one enum value instead of a
// scattering of (Mode, attr.Class) pairs.
//
// The program contract (see DESIGN.md "Rank programs"):
//
//   - Rank is pure: the same attribute word and reference always produce the
//     same key, with no allocation and no state. Anything stateful (fair-tag
//     virtual time, window adjustments) lives upstream in qm/regblock, which
//     write the state *into* the attribute word before ranking.
//   - Rank's unsigned integer order must agree with the program's dispatch
//     order whenever FastOrder accepts the pair; the Table-2 cascade under
//     the program's Mode remains the source of truth for the remainder.
//   - A program's key must stay inside the attr.Key field budget; programs
//     that need fewer fields (every tag program) zero the constraint fields
//     rather than repurposing them, so the TagOnly mask stays valid.

import (
	"fmt"

	"repro/internal/attr"
)

// Program identifies a rank program: one schedulable discipline expressed as
// a pure stream-state → rank-key function over the shared datapath.
//
// The set of Program constants below is the complete registry — sslint's
// exhaustdisc analyzer requires every switch over Program to handle all of
// them (or carry an explicit default), so adding a program here surfaces
// every dispatch site that needs a decision as a build failure. Do not add
// sentinel constants of type Program; use NumPrograms and Programs instead.
type Program uint8

const (
	// ProgramDWCS is full dynamic window-constrained scheduling: the Table-2
	// multi-attribute rank (deadline, window-constraint, loss fields,
	// arrival, slot) under the DWCS comparator mode. Bit-identical to the
	// pre-program attr.Key path.
	ProgramDWCS Program = iota
	// ProgramTagOnly is the simple-comparator discipline of §3: a service
	// tag or static priority in the deadline field, FCFS and slot-ID
	// tie-breaks, constraint fields ignored. Bit-identical to the
	// pre-program TagOnly path.
	ProgramTagOnly
	// ProgramSTFQ is start-time fair queuing over the qm fair-queuing tags:
	// identical datapath to ProgramTagOnly, but the Queue Manager loads each
	// head's virtual *start* tag instead of its finish tag, which bounds the
	// unfairness a large in-service frame can impose on small ones.
	ProgramSTFQ
	// ProgramEDF is earliest-deadline-first: per-period deadlines in the
	// deadline field, no window-constraint attributes, over the simple
	// comparator.
	ProgramEDF
	// ProgramStrictPriority is strict priority with a starvation guard:
	// static priorities in the deadline field, but a head that has waited
	// Guard ticks past its arrival is boosted to the front (deadline 0)
	// until served, so low-priority streams cannot starve.
	ProgramStrictPriority
)

// NumPrograms is the number of registered rank programs, for sizing tables.
// It is deliberately untyped (not a Program constant) so exhaustive switches
// over Program need not handle it.
const NumPrograms = 5

var programNames = [NumPrograms]string{
	ProgramDWCS:           "dwcs",
	ProgramTagOnly:        "tag-only",
	ProgramSTFQ:           "stfq",
	ProgramEDF:            "edf",
	ProgramStrictPriority: "strict-priority",
}

// Programs returns the registered rank programs in enum order. It allocates
// a fresh slice; callers iterate it in tests, sweeps and CI drivers, never
// on the decision hot path.
func Programs() []Program {
	ps := make([]Program, NumPrograms)
	for i := range ps {
		ps[i] = Program(i)
	}
	return ps
}

// String returns the program name.
func (p Program) String() string {
	if int(p) < NumPrograms {
		return programNames[p]
	}
	return fmt.Sprintf("program(%d)", uint8(p))
}

// ParseProgram resolves a program by its String name.
func ParseProgram(name string) (Program, error) {
	for i, n := range programNames {
		if n == name {
			return Program(i), nil
		}
	}
	return 0, fmt.Errorf("decision: unknown rank program %q", name)
}

// Mode returns the comparator mode the program's ranks are ordered under.
// Only full DWCS needs the multi-attribute datapath; every other program is
// a §3 simple-comparator discipline.
func (p Program) Mode() Mode {
	if p == ProgramDWCS {
		return DWCS
	}
	return TagOnly
}

// Class returns the attribute class that drives a Register Base block's
// loading/update behavior for streams scheduled under p.
func (p Program) Class() attr.Class {
	switch p {
	case ProgramDWCS:
		return attr.WindowConstrained
	case ProgramTagOnly, ProgramSTFQ:
		return attr.FairTag
	case ProgramEDF:
		return attr.EDF
	case ProgramStrictPriority:
		return attr.StaticPriority
	default:
		panic("decision: rank program with no attribute class: " + p.String())
	}
}

// tagConstraint is the constraint part of every tag program's key: the
// zero-tolerance encoding KeyConstraint(0, 0), which is exactly what the
// Register Base path packs for classes whose specs carry no loss fields. The
// comparator masks these bits out under TagOnly, so they never influence a
// tag program's order; packing them identically keeps the raw key order
// equal to the masked order, which the hwpq differential benches rely on.
var tagConstraint = attr.KeyConstraint(0, 0)

// Rank is the program body: it packs a stream's attribute word into the
// uint64 rank key the priority structure orders. It is pure and
// allocation-free; state evolution happens upstream when the word is
// written. ref is the wrap-window normalization base (see attr.Key).
//
// For ProgramDWCS and ProgramTagOnly the result is bit-identical to the
// pre-program key path (attr.Key with the spec's constraint fields), pinned
// by TestProgramRankBitIdentity and the differential fuzz harness.
func (p Program) Rank(a attr.Attributes, ref attr.Time16) attr.Key {
	switch p {
	case ProgramDWCS:
		return a.Key(ref)
	case ProgramTagOnly, ProgramSTFQ, ProgramEDF, ProgramStrictPriority:
		// Tag programs differ in how the deadline field is *produced*
		// (finish tag, start tag, per-period deadline, static priority with
		// guard boost), not in how it is ranked: the word already carries
		// the produced value, so one packing serves all four.
		return a.KeyWith(tagConstraint, ref)
	default:
		panic("decision: rank program with no rank function: " + p.String())
	}
}
