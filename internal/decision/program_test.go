package decision

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// TestProgramRankBitIdentity pins the tentpole contract: ProgramDWCS ranks
// are bit-identical to attr.Key, and every tag program's rank is
// bit-identical to the pre-program TagOnly key path (KeyWith over the
// zero-constraint part), for random words and references. Re-expressing the
// two existing disciplines as programs must not move a single bit.
func TestProgramRankBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	zero := attr.KeyConstraint(0, 0)
	for trial := 0; trial < 100000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(1024)))
		ref := attr.Time16(rng.Intn(1 << 16))
		if got, want := ProgramDWCS.Rank(a, ref), a.Key(ref); got != want {
			t.Fatalf("dwcs rank %x != key %x for %+v ref %d", got, want, a, ref)
		}
		for _, p := range []Program{ProgramTagOnly, ProgramSTFQ, ProgramEDF, ProgramStrictPriority} {
			// Tag-class words carry no loss fields; zero them the way the
			// Register Base path sees them.
			w := a
			w.LossNum, w.LossDen = 0, 0
			if got, want := p.Rank(w, ref), w.Key(ref); got != want {
				t.Fatalf("%v rank %x != key %x for %+v ref %d", p, got, want, w, ref)
			}
			if got, want := p.Rank(w, ref), w.KeyWith(zero, ref); got != want {
				t.Fatalf("%v rank %x != KeyWith %x for %+v ref %d", p, got, want, w, ref)
			}
			// Even with junk loss fields, the masked (compared) bits match
			// the generic key: tag programs zero, never repurpose, the
			// constraint fields.
			if got, want := p.Rank(a, ref)&^attr.KeyConstraintMask, a.Key(ref)&^attr.KeyConstraintMask; got != want {
				t.Fatalf("%v masked rank %x != masked key %x for %+v", p, got, want, a)
			}
		}
	}
}

// TestProgramRankPurity checks the program contract's purity clause: Rank is
// a function of (word, ref) alone — repeated calls agree, and ranks of
// distinct references shift only the wrapped time fields.
func TestProgramRankPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(1024)))
		ref := attr.Time16(rng.Intn(1 << 16))
		for _, p := range Programs() {
			k1, k2 := p.Rank(a, ref), p.Rank(a, ref)
			if k1 != k2 {
				t.Fatalf("%v rank not deterministic for %+v", p, a)
			}
		}
	}
}

// TestProgramRegistry covers the enum plumbing: names round-trip through
// ParseProgram, Programs enumerates exactly NumPrograms distinct values, and
// Mode/Class dispatch for every registered program without panicking.
func TestProgramRegistry(t *testing.T) {
	ps := Programs()
	if len(ps) != NumPrograms {
		t.Fatalf("Programs() returned %d entries, want %d", len(ps), NumPrograms)
	}
	seen := map[Program]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("duplicate program %v", p)
		}
		seen[p] = true
		back, err := ParseProgram(p.String())
		if err != nil || back != p {
			t.Fatalf("ParseProgram(%q) = %v, %v", p.String(), back, err)
		}
		_ = p.Class() // must not panic
		if p == ProgramDWCS {
			if p.Mode() != DWCS || p.Class() != attr.WindowConstrained {
				t.Fatalf("dwcs program mode/class: %v/%v", p.Mode(), p.Class())
			}
		} else if p.Mode() != TagOnly {
			t.Fatalf("%v must run on the simple comparator, got %v", p, p.Mode())
		}
	}
	if _, err := ParseProgram("no-such-program"); err == nil {
		t.Fatal("ParseProgram accepted an unknown name")
	}
	if got := Program(200).String(); got != "program(200)" {
		t.Fatalf("out-of-range String: %q", got)
	}
	if ProgramSTFQ.Class() != attr.FairTag || ProgramEDF.Class() != attr.EDF ||
		ProgramStrictPriority.Class() != attr.StaticPriority {
		t.Fatal("program → attribute-class mapping drifted")
	}
}

// TestProgramRankOrdersUnderMode checks each program's rank order agrees
// with the Table-2 cascade under the program's mode whenever the composed
// fast path decides — the "rank order equals dispatch order" clause of the
// program contract, across all registered programs.
func TestProgramRankOrdersUnderMode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(1024)))
		b := randWord(rng, attr.SlotID(rng.Intn(1024)))
		if rng.Intn(3) == 0 {
			b.Deadline = a.Deadline
			b.Arrival = a.Arrival
		}
		ref := attr.Time16(rng.Intn(1 << 16))
		for _, p := range Programs() {
			mode := p.Mode()
			wa, wb := a, b
			if mode == TagOnly {
				// Tag-class words carry no loss fields.
				wa.LossNum, wa.LossDen = 0, 0
				wb.LossNum, wb.LossDen = 0, 0
			}
			ka, kb := p.Rank(wa, ref), p.Rank(wb, ref)
			if got, want := keyedOrFallback(mode, wa, wb, ka, kb), Less(mode, wa, wb); got != want {
				t.Fatalf("program %v ref %d: rank order %v, cascade %v\na=%+v\nb=%+v", p, ref, got, want, wa, wb)
			}
		}
	}
}

// FuzzProgramRank drives every registered rank program through the composed
// fast path against the cascade — the per-program arm of `make fuzz-smoke`,
// so a newly registered program is fuzzed from the day it lands.
func FuzzProgramRank(f *testing.F) {
	f.Add(uint8(0), uint16(10), uint8(0), uint8(0), uint16(5), uint16(300), true,
		uint16(10), uint8(0), uint8(0), uint16(5), uint16(900), true, uint16(0))
	f.Add(uint8(2), uint16(7), uint8(1), uint8(2), uint16(3), uint16(200), true,
		uint16(7), uint8(2), uint8(4), uint16(3), uint16(201), true, uint16(99))
	f.Add(uint8(4), uint16(0x8000), uint8(0), uint8(0), uint16(9), uint16(0), true,
		uint16(0), uint8(0), uint8(0), uint16(9), uint16(1), true, uint16(0x7FFF))
	f.Fuzz(func(t *testing.T, pi uint8, d1 uint16, n1, y1 uint8, a1, s1 uint16, v1 bool,
		d2 uint16, n2, y2 uint8, a2, s2 uint16, v2 bool, ref uint16) {
		p := Program(pi % NumPrograms)
		mode := p.Mode()
		a := attr.Attributes{Deadline: attr.Time16(d1), LossNum: n1, LossDen: y1,
			Arrival: attr.Time16(a1), Slot: attr.SlotID(s1), Valid: v1}
		b := attr.Attributes{Deadline: attr.Time16(d2), LossNum: n2, LossDen: y2,
			Arrival: attr.Time16(a2), Slot: attr.SlotID(s2), Valid: v2}
		if mode == TagOnly {
			a.LossNum, a.LossDen = 0, 0
			b.LossNum, b.LossDen = 0, 0
		}
		ka, kb := p.Rank(a, attr.Time16(ref)), p.Rank(b, attr.Time16(ref))
		want := Less(mode, a, b)
		if got := keyedOrFallback(mode, a, b, ka, kb); got != want {
			t.Fatalf("program %v ref %d: rank order %v, cascade %v for %+v vs %+v", p, ref, got, want, a, b)
		}
		if a.Slot != b.Slot {
			if got, want := keyedOrFallback(mode, b, a, kb, ka), Less(mode, b, a); got != want {
				t.Fatalf("program %v: port-order mismatch for %+v vs %+v", p, a, b)
			}
		}
	})
}
