package decision

// A structural model of the Decision block, matching Figure 5 more
// literally than the behavioral Compare: every Table 2 rule is evaluated
// as an independent combinational unit in the same cycle ("implementing
// the rules by evaluating all possibilities concurrently"), a priority mux
// selects the valid rule's output, and the verdict is latched in an output
// register on the clock edge. The behavioral and structural models are
// pinned against each other exhaustively in tests — the software analogue
// of RTL-vs-reference verification.

import (
	"repro/internal/attr"
	"repro/internal/hwsim"
)

// ruleOutput is one rule unit's combinational result: whether the rule
// resolves this input pair, and if so whether port A wins.
type ruleOutput struct {
	applies bool
	aFirst  bool
}

// RegisteredBlock is the clocked Decision block: inputs are driven on the
// bus during a cycle, all rule units evaluate concurrently, and the muxed
// verdict appears at the registered output after the clock edge.
type RegisteredBlock struct {
	Mode Mode

	inA, inB attr.Attributes
	driven   bool

	out hwsim.Reg[Verdict]
}

var _ hwsim.Component = (*RegisteredBlock)(nil)

// Drive places the two attribute words on the block's input bus for the
// current cycle.
func (b *RegisteredBlock) Drive(a, bb attr.Attributes) {
	b.inA, b.inB = a, bb
	b.driven = true
}

// Out returns the registered verdict — the comparison driven in the
// previous cycle.
func (b *RegisteredBlock) Out() Verdict { return b.out.Get() }

// Evaluate implements hwsim.Component: all rule units run concurrently on
// the driven inputs and the priority mux stages the selected verdict.
func (b *RegisteredBlock) Evaluate() {
	if !b.driven {
		return
	}
	a, bb := b.inA, b.inB

	// The concurrently-evaluated rule units (each sees only the raw
	// attribute words, as in hardware).
	units := [...]struct {
		rule Rule
		out  ruleOutput
	}{
		{RuleValidity, validityUnit(a, bb)},
		{RuleEDF, edfUnit(a, bb)},
		{RuleLowestConstraint, constraintUnit(b.Mode, a, bb)},
		{RuleHighestDenominator, denominatorUnit(b.Mode, a, bb)},
		{RuleLowestNumerator, numeratorUnit(b.Mode, a, bb)},
		{RuleFCFS, fcfsUnit(a, bb)},
		{RuleSlotID, slotUnit(a, bb)},
	}

	// Priority mux: first applicable rule wins (the slot-ID unit always
	// applies, so the mux always selects something).
	for _, u := range units {
		if !u.out.applies {
			continue
		}
		v := Verdict{Rule: u.rule}
		if u.out.aFirst {
			v.Winner, v.Loser = a, bb
		} else {
			v.Winner, v.Loser, v.Swapped = bb, a, true
		}
		b.out.Set(v)
		return
	}
}

// Commit implements hwsim.Component: the output register latches.
func (b *RegisteredBlock) Commit() {
	b.out.Commit()
	b.driven = false
}

// --- rule units -----------------------------------------------------------

func validityUnit(a, b attr.Attributes) ruleOutput {
	return ruleOutput{applies: a.Valid != b.Valid, aFirst: a.Valid}
}

func edfUnit(a, b attr.Attributes) ruleOutput {
	bothValid := a.Valid && b.Valid
	return ruleOutput{
		applies: bothValid && a.Deadline != b.Deadline,
		aFirst:  a.Deadline.Before(b.Deadline),
	}
}

func constraintUnit(mode Mode, a, b attr.Attributes) ruleOutput {
	if mode != DWCS || !(a.Valid && b.Valid) || a.Deadline != b.Deadline {
		return ruleOutput{}
	}
	cmp := a.Constraint().Cmp(b.Constraint())
	return ruleOutput{applies: cmp != 0, aFirst: cmp < 0}
}

func denominatorUnit(mode Mode, a, b attr.Attributes) ruleOutput {
	if mode != DWCS || !(a.Valid && b.Valid) || a.Deadline != b.Deadline {
		return ruleOutput{}
	}
	if a.Constraint().Cmp(b.Constraint()) != 0 {
		return ruleOutput{}
	}
	zero := a.Constraint().Zero() && b.Constraint().Zero()
	return ruleOutput{
		applies: zero && a.LossDen != b.LossDen,
		aFirst:  a.LossDen > b.LossDen,
	}
}

func numeratorUnit(mode Mode, a, b attr.Attributes) ruleOutput {
	if mode != DWCS || !(a.Valid && b.Valid) || a.Deadline != b.Deadline {
		return ruleOutput{}
	}
	if a.Constraint().Cmp(b.Constraint()) != 0 {
		return ruleOutput{}
	}
	zero := a.Constraint().Zero() && b.Constraint().Zero()
	return ruleOutput{
		applies: !zero && a.LossNum != b.LossNum,
		aFirst:  a.LossNum < b.LossNum,
	}
}

func fcfsUnit(a, b attr.Attributes) ruleOutput {
	bothValid := a.Valid && b.Valid
	return ruleOutput{
		applies: bothValid && a.Arrival != b.Arrival,
		aFirst:  a.Arrival.Before(b.Arrival),
	}
}

func slotUnit(a, b attr.Attributes) ruleOutput {
	return ruleOutput{applies: true, aFirst: a.Slot < b.Slot}
}
