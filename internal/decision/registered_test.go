package decision

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/hwsim"
)

// TestRegisteredMatchesBehavioral pins the structural (rule-unit + mux +
// output register) model against the behavioral Compare over a large random
// sample — the reproduction's RTL-vs-reference check.
func TestRegisteredMatchesBehavioral(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, mode := range []Mode{DWCS, TagOnly} {
		blk := &RegisteredBlock{Mode: mode}
		clk := hwsim.NewClock()
		clk.Attach(blk)
		for trial := 0; trial < 50000; trial++ {
			mk := func(slot attr.SlotID) attr.Attributes {
				return attr.Attributes{
					Deadline: attr.Time16(rng.Intn(1 << 16)),
					LossNum:  uint8(rng.Intn(5)),
					LossDen:  uint8(rng.Intn(5)),
					Arrival:  attr.Time16(rng.Intn(1 << 16)),
					Slot:     slot,
					Valid:    rng.Intn(5) != 0,
				}
			}
			a, b := mk(0), mk(1)
			blk.Drive(a, b)
			clk.Step()
			got := blk.Out()
			want := Compare(mode, a, b)
			if got.Winner.Slot != want.Winner.Slot || got.Rule != want.Rule || got.Swapped != want.Swapped {
				t.Fatalf("mode %v trial %d:\nstructural %+v rule %v\nbehavioral %+v rule %v\nfor a=%+v b=%+v",
					mode, trial, got.Winner, got.Rule, want.Winner, want.Rule, a, b)
			}
		}
	}
}

// TestRegisteredOutputIsRegistered verifies the pipeline property: the
// verdict visible during a cycle is the one driven in the PREVIOUS cycle.
func TestRegisteredOutputIsRegistered(t *testing.T) {
	blk := &RegisteredBlock{Mode: DWCS}
	clk := hwsim.NewClock()
	clk.Attach(blk)
	a := attr.Attributes{Deadline: 1, Slot: 0, Valid: true}
	b := attr.Attributes{Deadline: 2, Slot: 1, Valid: true}
	blk.Drive(a, b)
	// Before any clock edge the output register holds the zero verdict.
	if blk.Out().Winner.Valid {
		t.Fatal("output visible before the clock edge")
	}
	clk.Step()
	if blk.Out().Winner.Slot != 0 {
		t.Fatalf("after edge: winner %d", blk.Out().Winner.Slot)
	}
	// Reverse the inputs; the old verdict must persist until the edge.
	blk.Drive(b, a)
	if blk.Out().Winner.Slot != 0 {
		t.Fatal("output changed before the edge")
	}
	clk.Step()
	if blk.Out().Winner.Slot != 0 || !blk.Out().Swapped {
		t.Fatalf("after second edge: %+v", blk.Out())
	}
}

// TestRegisteredHoldsWithoutDrive pins that an undriven cycle leaves the
// registered verdict unchanged (the bus idles, the register holds).
func TestRegisteredHoldsWithoutDrive(t *testing.T) {
	blk := &RegisteredBlock{Mode: DWCS}
	clk := hwsim.NewClock()
	clk.Attach(blk)
	blk.Drive(
		attr.Attributes{Deadline: 5, Slot: 0, Valid: true},
		attr.Attributes{Deadline: 9, Slot: 1, Valid: true},
	)
	clk.Step()
	want := blk.Out()
	clk.StepN(3) // idle cycles
	if blk.Out() != want {
		t.Fatalf("verdict drifted across idle cycles: %+v vs %+v", blk.Out(), want)
	}
}
