package decision

// Differential verification of the equal-key slot tie-break (KeyTie): when
// the mode-masked keys are exactly equal, every Table-2 rule ties and the
// cascade's answer is the raw slot order — so the tie-break path must be
// bit-identical to the cascade for every such pair. Together with the
// FastOrder differential this proves the full three-way composition
// (FastOrder → KeyTie → cascade) used by CompareKeyed and the shuffle
// network never changes an ordering.

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
)

// keyedOrFallback is the exact three-way composition CompareKeyed and the
// network pass loops use.
func keyedOrFallback(mode Mode, a, b attr.Attributes, ka, kb attr.Key) bool {
	if aFirst, decided := FastOrder(mode, ka, kb); decided {
		return aFirst
	}
	if KeyTie(mode, ka, kb) {
		return a.Slot < b.Slot
	}
	first, _, _ := order(mode, a, b)
	return first
}

// tiedWord derives a word from a that ties every cascade rule the mode
// compares but sits in a different slot — the shape that collapsed the fast
// path at N > 127 before the tie-break existed.
func tiedWord(rng *rand.Rand, a attr.Attributes, mode Mode, slot attr.SlotID) attr.Attributes {
	b := a
	b.Slot = slot
	if mode == TagOnly {
		// TagOnly ignores the constraint fields: scrambling them must not
		// disturb the tie.
		b.LossNum = uint8(rng.Intn(256))
		b.LossDen = uint8(rng.Intn(256))
	}
	return b
}

// TestKeyTieDifferential sweeps pairs engineered to produce equal masked
// keys — saturated high slots, equal-ratio constraints (1/2 vs 2/4),
// invalid pairs — and demands the tie-break answer match the cascade in
// both port orders.
func TestKeyTieDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200000; trial++ {
		a := randWord(rng, attr.SlotID(127+rng.Intn(1024-127)))
		for _, mode := range []Mode{DWCS, TagOnly} {
			b := tiedWord(rng, a, mode, attr.SlotID(127+rng.Intn(1024-127)))
			if rng.Intn(4) == 0 && a.LossNum <= 127 && a.LossDen <= 127 {
				// Same ratio, different encoding: 2x/2y vs x/y shares the
				// dense rank (rule 2 ties) but differs in the rule-3/4 tie
				// field, exercising the near-tie edge of the key space.
				b.LossNum, b.LossDen = a.LossNum*2, a.LossDen*2
			}
			ref := attr.Time16(rng.Intn(1 << 16))
			ka, kb := a.Key(ref), b.Key(ref)
			if !KeyTie(mode, ka, kb) {
				// Engineered tie failed (constraint scramble or ratio trick
				// produced distinct keys): still a valid differential input.
				if got, want := keyedOrFallback(mode, a, b, ka, kb), Less(mode, a, b); got != want {
					t.Fatalf("mode %v ref %d: composition %v, cascade %v\na=%+v\nb=%+v", mode, ref, got, want, a, b)
				}
				continue
			}
			want := Less(mode, a, b)
			if got := keyedOrFallback(mode, a, b, ka, kb); got != want {
				t.Fatalf("mode %v ref %d: tie-break %v, cascade %v\na=%+v\nb=%+v\nka=%064b",
					mode, ref, got, want, a, b, uint64(ka))
			}
			if a.Slot != b.Slot {
				if got, want := keyedOrFallback(mode, b, a, kb, ka), Less(mode, b, a); got != want {
					t.Fatalf("mode %v ref %d: tie-break port-order mismatch for %+v vs %+v", mode, ref, a, b)
				}
			}
		}
	}
}

// TestKeyTieImpliesCascadeSlotOrder pins the theorem the tie-break rests on:
// masked-key equality implies the cascade resolves by RuleSlotID (every
// earlier rule tied), for random words — valid, invalid and mixed.
func TestKeyTieImpliesCascadeSlotOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	hits := 0
	for trial := 0; trial < 400000; trial++ {
		a := randWord(rng, attr.SlotID(rng.Intn(1024)))
		b := randWord(rng, attr.SlotID(rng.Intn(1024)))
		if rng.Intn(2) == 0 { // make masked equality reachable
			b.Deadline, b.Arrival, b.Valid = a.Deadline, a.Arrival, a.Valid
			if rng.Intn(2) == 0 {
				b.LossNum, b.LossDen = a.LossNum, a.LossDen
			}
		}
		ref := attr.Time16(rng.Intn(1 << 16))
		ka, kb := a.Key(ref), b.Key(ref)
		for _, mode := range []Mode{DWCS, TagOnly} {
			if !KeyTie(mode, ka, kb) {
				continue
			}
			hits++
			first, rule, _ := order(mode, a, b)
			if rule != RuleSlotID {
				t.Fatalf("mode %v: masked keys equal but cascade fired %v for %+v vs %+v", mode, rule, a, b)
			}
			if first != (a.Slot < b.Slot) {
				t.Fatalf("mode %v: cascade slot order %v != raw slot order for %+v vs %+v", mode, first, a, b)
			}
		}
	}
	if hits == 0 {
		t.Fatal("sweep never produced a masked-key tie; generator broken")
	}
}

// TestCompareKeyedTieCounters checks the counter split: a tie-break decision
// increments Compares and TieHits but no RuleHits entry, so post-fix hit
// rates (1 - ΣRuleHits/Compares) and pre-fix rates
// (1 - (ΣRuleHits+TieHits)/Compares) are both reconstructible from one run.
func TestCompareKeyedTieCounters(t *testing.T) {
	a := attr.Attributes{Deadline: 10, Arrival: 5, Slot: 300, Valid: true}
	b := attr.Attributes{Deadline: 10, Arrival: 5, Slot: 900, Valid: true}
	bl := &Block{Mode: DWCS}
	ka, kb := a.Key(0), b.Key(0)
	if ka != kb {
		t.Fatalf("saturated tied slots must share a key: %x vs %x", ka, kb)
	}
	if !bl.CompareKeyed(a, b, ka, kb) {
		t.Fatal("slot 300 must order before slot 900 on the tie path")
	}
	if bl.CompareKeyed(b, a, kb, ka) {
		t.Fatal("tie path must be antisymmetric")
	}
	if bl.Compares != 2 || bl.TieHits != 2 {
		t.Fatalf("counters: Compares=%d TieHits=%d, want 2/2", bl.Compares, bl.TieHits)
	}
	for r, n := range bl.RuleHits {
		if n != 0 {
			t.Fatalf("tie path charged RuleHits[%v]=%d", Rule(r), n)
		}
	}
}

// FuzzKeyTieDifferential is the fuzz-driven form: the full three-way
// composition must match the cascade for arbitrary word pairs, and whenever
// KeyTie fires the cascade must have resolved by slot ID.
func FuzzKeyTieDifferential(f *testing.F) {
	f.Add(uint16(10), uint8(0), uint8(0), uint16(5), uint16(300), true,
		uint16(10), uint8(0), uint8(0), uint16(5), uint16(900), true, uint16(0))
	f.Add(uint16(7), uint8(1), uint8(2), uint16(3), uint16(200), true,
		uint16(7), uint8(2), uint8(4), uint16(3), uint16(201), true, uint16(99))
	f.Add(uint16(0), uint8(0), uint8(0), uint16(0), uint16(127), false,
		uint16(1), uint8(9), uint8(9), uint16(2), uint16(128), false, uint16(0))
	f.Fuzz(func(t *testing.T, d1 uint16, n1, y1 uint8, a1, s1 uint16, v1 bool,
		d2 uint16, n2, y2 uint8, a2, s2 uint16, v2 bool, ref uint16) {
		a := attr.Attributes{Deadline: attr.Time16(d1), LossNum: n1, LossDen: y1,
			Arrival: attr.Time16(a1), Slot: attr.SlotID(s1), Valid: v1}
		b := attr.Attributes{Deadline: attr.Time16(d2), LossNum: n2, LossDen: y2,
			Arrival: attr.Time16(a2), Slot: attr.SlotID(s2), Valid: v2}
		ka, kb := a.Key(attr.Time16(ref)), b.Key(attr.Time16(ref))
		for _, mode := range []Mode{DWCS, TagOnly} {
			want, rule, _ := order(mode, a, b)
			if got := keyedOrFallback(mode, a, b, ka, kb); got != want {
				t.Fatalf("mode %v ref %d: composition %v, cascade %v for %+v vs %+v", mode, ref, got, want, a, b)
			}
			if KeyTie(mode, ka, kb) && rule != RuleSlotID {
				t.Fatalf("mode %v: key tie but cascade rule %v for %+v vs %+v", mode, rule, a, b)
			}
		}
	})
}
