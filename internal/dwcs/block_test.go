package dwcs

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

// crossValidateBlock runs the hardware model in BA configuration against
// the software block oracle over an identical workload and compares the
// full transmission order, lateness flags, circulated winner and counters
// every cycle.
func crossValidateBlock(t *testing.T, circ core.Circulate, cycles int) {
	t.Helper()
	const n = 4
	hw, err := core.New(core.Config{Slots: n, Routing: core.BlockRouting, Circulate: circ})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := New(n)
	for i := 0; i < n; i++ {
		spec := attr.Spec{Class: attr.EDF, Period: uint16(1 + i%3)}
		if err := hw.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
		if err := sw.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Start(); err != nil {
		t.Fatal(err)
	}
	sw.Start()
	maxFirst := circ == core.MaxFirst
	for c := 0; c < cycles; c++ {
		hr := hw.RunCycle()
		sr := sw.RunBlockCycle(maxFirst)
		if int(hr.Winner) != sr.Circulated {
			t.Fatalf("cycle %d: circulated hw=%d sw=%d", c, hr.Winner, sr.Circulated)
		}
		if len(hr.Transmissions) != len(sr.Order) {
			t.Fatalf("cycle %d: block sizes %d vs %d", c, len(hr.Transmissions), len(sr.Order))
		}
		for r, tx := range hr.Transmissions {
			if int(tx.Slot) != sr.Order[r] || tx.Late != sr.Late[r] {
				t.Fatalf("cycle %d rank %d: hw slot %d late %v vs sw slot %d late %v",
					c, r, tx.Slot, tx.Late, sr.Order[r], sr.Late[r])
			}
		}
	}
	for i := 0; i < n; i++ {
		if hw.SlotCounters(i) != sw.Stream(i).Counters {
			t.Fatalf("stream %d counters diverged:\nhw %+v\nsw %+v",
				i, hw.SlotCounters(i), sw.Stream(i).Counters)
		}
	}
}

func TestCrossValidateBlockMaxFirst(t *testing.T) {
	crossValidateBlock(t, core.MaxFirst, 3000)
}

func TestCrossValidateBlockMinFirst(t *testing.T) {
	crossValidateBlock(t, core.MinFirst, 3000)
}

func TestBlockCycleIdle(t *testing.T) {
	s, _ := New(2)
	s.Start()
	res := s.RunBlockCycle(true)
	if res.Circulated != -1 || len(res.Order) != 0 {
		t.Fatalf("idle block cycle: %+v", res)
	}
	if s.Decisions != 1 {
		t.Fatal("idle cycle not counted")
	}
}

// TestBlockOracleTable3 re-derives Table 3's block columns from the
// independent software oracle: max-first meets every deadline; min-first
// misses one per cycle on the earliest-deadline stream.
func TestBlockOracleTable3(t *testing.T) {
	run := func(maxFirst bool) *Scheduler {
		s, _ := New(4)
		for i := 0; i < 4; i++ {
			src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
			if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
				t.Fatal(err)
			}
		}
		s.Start()
		for c := 0; c < 4000; c++ {
			s.RunBlockCycle(maxFirst)
		}
		return s
	}
	maxF := run(true)
	var missed uint64
	for i := 0; i < 4; i++ {
		missed += maxF.Stream(i).Counters.Missed
	}
	if missed != 0 {
		t.Fatalf("oracle max-first missed %d", missed)
	}
	minF := run(false)
	if got := minF.Stream(0).Counters.Missed; got != 4000 {
		t.Fatalf("oracle min-first stream-1 missed %d, want 4000", got)
	}
}
