// Package dwcs is a processor-resident reference implementation of Dynamic
// Window-Constrained Scheduling (West & Poellabauer, RTSS 2000; West,
// Schwan & Poellabauer, RTAS 1999) — the software scheduler whose measured
// latency (≈50 µs on a 300 MHz UltraSPARC, ≈67 µs on a 66 MHz i960RD) §4.1
// cites to motivate the FPGA realization.
//
// The package serves two purposes in the reproduction:
//
//  1. It is the §4.1 software baseline: Pick is a straight O(N) scan with
//     the full Table 2 rule cascade, the shape of the host-based schedulers
//     the paper measured, and the §4.1 latency bench drives it.
//  2. It is an independent oracle for the hardware model: the ordering rules
//     are implemented here from the published algorithm, *not* by calling
//     package decision, and equivalence tests pin the two against each
//     other.
//
// Streams carry the same attribute classes as the hardware (EDF,
// window-constrained, static-priority, fair-tag) so mixed workloads can be
// cross-validated decision-for-decision against core.Scheduler.
package dwcs

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/regblock"
)

// Stream is one scheduled stream's software state.
type Stream struct {
	spec attr.Spec
	src  regblock.HeadSource

	valid    bool
	deadline uint64 // current head deadline / priority / service tag
	arrival  uint64 // current head arrival
	x, y     uint8  // current window-constraint registers

	// Counters mirror the hardware slot counters.
	Counters regblock.Counters
}

// Spec returns the stream's specification.
func (st *Stream) Spec() attr.Spec { return st.spec }

// Valid reports whether the stream is backlogged.
func (st *Stream) Valid() bool { return st.valid }

// Deadline returns the current head's deadline (or priority/tag).
func (st *Stream) Deadline() uint64 { return st.deadline }

// Constraint returns the current window-constraint registers.
func (st *Stream) Constraint() attr.Constraint { return attr.Constraint{Num: st.x, Den: st.y} }

// Scheduler is the software DWCS scheduler.
type Scheduler struct {
	streams []*Stream
	now     uint64
	// Decisions counts completed decision cycles.
	Decisions uint64
}

// New builds a scheduler with capacity for n streams (indices 0..n-1),
// initially empty.
func New(n int) (*Scheduler, error) {
	if n < 1 {
		return nil, fmt.Errorf("dwcs: need at least one stream, got %d", n)
	}
	return &Scheduler{streams: make([]*Stream, n)}, nil
}

// Admit binds a stream specification and packet source to index i.
func (s *Scheduler) Admit(i int, spec attr.Spec, src regblock.HeadSource) error {
	if i < 0 || i >= len(s.streams) {
		return fmt.Errorf("dwcs: stream %d out of range [0, %d)", i, len(s.streams))
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if src == nil {
		return fmt.Errorf("dwcs: nil source for stream %d", i)
	}
	s.streams[i] = &Stream{
		spec: spec,
		src:  src,
		x:    spec.Constraint.Num,
		y:    spec.Constraint.Den,
	}
	return nil
}

// Streams returns the number of stream indices.
func (s *Scheduler) Streams() int { return len(s.streams) }

// Stream returns stream i (nil if never admitted).
func (s *Scheduler) Stream(i int) *Stream { return s.streams[i] }

// Now returns the virtual time (decision-cycle units).
func (s *Scheduler) Now() uint64 { return s.now }

// load pulls the next head into the stream, synthesizing its deadline.
func (st *Stream) load(reanchor bool) {
	h, ok := st.src.NextHead()
	if !ok {
		st.valid = false
		return
	}
	switch st.spec.Class {
	case attr.StaticPriority:
		st.deadline = uint64(st.spec.Priority)
	case attr.FairTag:
		st.deadline = h.Tag
	default:
		next := st.deadline + uint64(st.spec.Period)
		if !reanchor {
			next = h.Arrival + uint64(st.spec.Period)
		} else if anchored := h.Arrival + uint64(st.spec.Period); anchored > next {
			next = anchored
		}
		st.deadline = next
	}
	st.arrival = h.Arrival
	st.valid = true
}

// refill revalidates an idle stream if traffic arrived.
func (st *Stream) refill() {
	if st == nil || st.valid {
		return
	}
	st.load(false)
}

// Less reports whether stream a orders strictly before stream b under the
// DWCS pairwise rules (Table 2), implemented independently of the hardware
// Decision block:
//
//  1. earliest deadline first;
//  2. equal deadlines: lowest window-constraint W = x/y first;
//  3. equal deadlines, both W zero: highest window-denominator first;
//  4. equal deadlines, equal non-zero W: lowest window-numerator first;
//  5. otherwise FCFS by arrival, then lowest index for determinism.
func Less(a, b *Stream, ia, ib int) bool {
	if a.valid != b.valid {
		return a.valid
	}
	if !a.valid {
		return ia < ib
	}
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	// Window-constraint value comparison by cross-multiplication. A zero
	// denominator makes W undefined; it orders as the loosest possible
	// constraint, and two undefined constraints compare equal (the same
	// convention as the hardware comparator).
	aUndef, bUndef := a.y == 0, b.y == 0
	switch {
	case aUndef && bUndef:
		// equal by value: fall through to rules 3/4
	case aUndef:
		return false
	case bUndef:
		return true
	default:
		av, bv := uint32(a.x)*uint32(b.y), uint32(b.x)*uint32(a.y)
		if av != bv {
			return av < bv
		}
	}
	if a.x == 0 && b.x == 0 {
		// Rule 3: zero constraints — highest denominator first.
		if a.y != b.y {
			return a.y > b.y
		}
	} else if a.x != b.x {
		// Rule 4: equal non-zero constraints — lowest numerator first.
		return a.x < b.x
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return ia < ib
}

// Pick scans all streams and returns the index of the highest-priority
// backlogged stream, or -1 if none. This is the O(N) software decision the
// §4.1 latency numbers are about.
func (s *Scheduler) Pick() int {
	best := -1
	for i, st := range s.streams {
		if st == nil || !st.valid {
			continue
		}
		if best == -1 || Less(st, s.streams[best], i, best) {
			best = i
		}
	}
	return best
}

// Result reports one software decision cycle.
type Result struct {
	Winner int // stream index, -1 when idle
	Late   bool
}

// RunCycle performs one decision cycle with the same semantics as the
// hardware model in winner-only (max-finding) configuration: refill idle
// streams, pick the winner, transmit its head (late if past deadline),
// apply the DWCS winner adjustment, then charge per-cycle misses to due
// losers (dropping window-constrained heads).
func (s *Scheduler) RunCycle() Result {
	for _, st := range s.streams {
		st.refill()
	}
	w := s.Pick()
	r := Result{Winner: w}
	if w >= 0 {
		st := s.streams[w]
		r.Late = st.deadline < s.now
		st.service(r.Late)
		for i, lo := range s.streams {
			if i == w || lo == nil {
				continue
			}
			lo.expire(s.now + 1)
		}
	}
	s.now++
	s.Decisions++
	return r
}

// service consumes the winner's head.
func (st *Stream) service(late bool) {
	st.Counters.Services++
	st.Counters.Wins++
	if late {
		st.Counters.Missed++
	} else {
		st.Counters.Met++
	}
	if st.spec.Class == attr.WindowConstrained {
		// Served before deadline: one fewer slot in the window.
		switch {
		case st.y > st.x:
			st.y--
		case st.x == st.y && st.x > 0:
			st.x--
			st.y--
		}
		if st.x == 0 && st.y == 0 {
			st.x, st.y = st.spec.Constraint.Num, st.spec.Constraint.Den
		}
	}
	st.load(true)
}

// expire charges a per-cycle miss to a due loser; window-constrained
// streams additionally drop the head and adjust the loss-tolerance.
func (st *Stream) expire(now uint64) {
	if !st.valid {
		return
	}
	switch st.spec.Class {
	case attr.StaticPriority, attr.FairTag:
		return
	default: // EDF, WindowConstrained: deadline-bearing, checked below
	}
	if st.deadline >= now {
		return
	}
	st.Counters.Missed++
	if st.spec.Class == attr.WindowConstrained {
		st.Counters.Drops++
		if st.x > 0 {
			st.x--
			st.y--
			if st.x == 0 && st.y == 0 {
				st.x, st.y = st.spec.Constraint.Num, st.spec.Constraint.Den
			}
		} else {
			if st.y < 255 {
				st.y++
			}
			st.Counters.Violations++
		}
		st.load(true)
	}
}

// BlockResult reports one block-mode decision cycle.
type BlockResult struct {
	// Order lists the transmitted stream indices in transmission order.
	Order []int
	// Late flags each transmission, parallel to Order.
	Late []bool
	// Circulated is the stream that received the winner update, or -1
	// when the cycle was idle.
	Circulated int
}

// RunBlockCycle performs one decision cycle with the hardware model's block
// (BA) semantics, as an independent oracle for cross-validation: all
// backlogged streams are sorted by the Table 2 rules and transmitted as one
// transaction — head-first under max-first, tail-first under min-first —
// with the member at rank r late iff its deadline precedes now+r; only the
// circulated end receives the winner adjustment.
func (s *Scheduler) RunBlockCycle(maxFirst bool) BlockResult {
	for _, st := range s.streams {
		st.refill()
	}
	// Selection sort by the pairwise rules (the reference need not be
	// fast, only obviously correct).
	var order []int
	for i, st := range s.streams {
		if st != nil && st.valid {
			order = append(order, i)
		}
	}
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			if Less(s.streams[order[j]], s.streams[order[best]], order[j], order[best]) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	res := BlockResult{Circulated: -1}
	if len(order) == 0 {
		s.now++
		s.Decisions++
		return res
	}
	if maxFirst {
		res.Circulated = order[0]
	} else {
		res.Circulated = order[len(order)-1]
		// Tail-first transaction.
		for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
			order[l], order[r] = order[r], order[l]
		}
	}
	for rank, idx := range order {
		st := s.streams[idx]
		late := st.deadline < s.now+uint64(rank)
		res.Order = append(res.Order, idx)
		res.Late = append(res.Late, late)
		st.Counters.Services++
		if late {
			st.Counters.Missed++
		} else {
			st.Counters.Met++
		}
		if idx == res.Circulated {
			st.Counters.Wins++
			if st.spec.Class == attr.WindowConstrained {
				// Reuse the winner window rules without the shared
				// service bookkeeping.
				switch {
				case st.y > st.x:
					st.y--
				case st.x == st.y && st.x > 0:
					st.x--
					st.y--
				}
				if st.x == 0 && st.y == 0 {
					st.x, st.y = st.spec.Constraint.Num, st.spec.Constraint.Den
				}
			}
		}
		st.load(true)
	}
	s.now++
	s.Decisions++
	return res
}

// Advance forwards timed sources to the scheduler clock (call before
// RunCycle when using gated traffic).
func (s *Scheduler) Advance() {
	type timed interface{ Advance(uint64) }
	for _, st := range s.streams {
		if st == nil {
			continue
		}
		if ts, ok := st.src.(timed); ok {
			ts.Advance(s.now)
		}
	}
}

// Start loads every admitted stream's first head.
func (s *Scheduler) Start() {
	s.Advance()
	for _, st := range s.streams {
		if st != nil {
			st.load(false)
		}
	}
}
