package dwcs

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/regblock"
	"repro/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted zero streams")
	}
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(5, attr.Spec{Class: attr.EDF, Period: 1}, &traffic.Periodic{Backlogged: true}); err == nil {
		t.Error("accepted out-of-range index")
	}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF}, &traffic.Periodic{Backlogged: true}); err == nil {
		t.Error("accepted invalid spec")
	}
	if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 1}, nil); err == nil {
		t.Error("accepted nil source")
	}
	if s.Streams() != 2 {
		t.Errorf("Streams() = %d", s.Streams())
	}
}

func TestPickIdle(t *testing.T) {
	s, _ := New(4)
	s.Start()
	if w := s.Pick(); w != -1 {
		t.Fatalf("Pick on empty scheduler = %d, want -1", w)
	}
	r := s.RunCycle()
	if r.Winner != -1 {
		t.Fatalf("RunCycle winner = %d, want -1", r.Winner)
	}
	if s.Now() != 1 || s.Decisions != 1 {
		t.Fatalf("clock did not advance on idle cycle")
	}
}

func TestEDFPickAndRotation(t *testing.T) {
	s, _ := New(4)
	for i := 0; i < 4; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	for i := 0; i < 4000; i++ {
		s.RunCycle()
	}
	for i := 0; i < 4; i++ {
		w := s.Stream(i).Counters.Wins
		if w < 900 || w > 1100 {
			t.Errorf("stream %d wins = %d, want ≈1000 (round-robin under backlog)", i, w)
		}
	}
}

func TestWindowAdjustmentsMatchHardware(t *testing.T) {
	// Drive one WC stream through wins and misses in both implementations
	// and compare the register trajectories.
	spec := attr.Spec{Class: attr.WindowConstrained, Period: 2, Constraint: attr.Constraint{Num: 2, Den: 5}}

	hw, err := regblock.New(0, spec, &traffic.Periodic{Gap: 2, Backlogged: true})
	if err != nil {
		t.Fatal(err)
	}
	hw.Load(0)

	sw, _ := New(1)
	if err := sw.Admit(0, spec, &traffic.Periodic{Gap: 2, Backlogged: true}); err != nil {
		t.Fatal(err)
	}
	sw.Start()
	st := sw.Stream(0)

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 500; step++ {
		if rng.Intn(2) == 0 {
			hw.Service(false, true)
			st.service(false)
		} else {
			now := hw.Deadline64() + 1
			hw.ExpireCheck(now)
			st.expire(now)
		}
		h := hw.Out()
		c := st.Constraint()
		if h.LossNum != c.Num || h.LossDen != c.Den {
			t.Fatalf("step %d: hw %d/%d vs sw %d/%d", step, h.LossNum, h.LossDen, c.Num, c.Den)
		}
		if hw.Deadline64() != st.Deadline() {
			t.Fatalf("step %d: hw deadline %d vs sw %d", step, hw.Deadline64(), st.Deadline())
		}
	}
}

// TestLessMatchesDecisionBlock pins the independent software rule cascade
// against the hardware Decision block on random attribute pairs.
func TestLessMatchesDecisionBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		mk := func(idx int) (*Stream, attr.Attributes) {
			d := uint64(rng.Intn(1 << 14))
			x := uint8(rng.Intn(5))
			y := uint8(rng.Intn(5))
			arr := uint64(rng.Intn(1 << 14))
			valid := rng.Intn(8) != 0
			st := &Stream{valid: valid, deadline: d, arrival: arr, x: x, y: y}
			a := attr.Attributes{
				Deadline: attr.WrapTime(d),
				LossNum:  x,
				LossDen:  y,
				Arrival:  attr.WrapTime(arr),
				Slot:     attr.SlotID(idx),
				Valid:    valid,
			}
			return st, a
		}
		s0, a0 := mk(0)
		s1, a1 := mk(1)
		swFirst := Less(s0, s1, 0, 1)
		hwFirst := decision.Less(decision.DWCS, a0, a1)
		if swFirst != hwFirst {
			t.Fatalf("trial %d: sw=%v hw=%v for\n%+v (x/y=%d/%d)\n%+v (x/y=%d/%d)",
				trial, swFirst, hwFirst, a0, s0.x, s0.y, a1, s1.x, s1.y)
		}
	}
}

// TestCrossValidateAgainstHardwareEDF runs the software scheduler and the
// hardware model (winner-only configuration) over identical EDF workloads
// and requires the same winner every decision cycle and identical counters.
func TestCrossValidateAgainstHardwareEDF(t *testing.T) {
	const n, cycles = 4, 5000
	hw, err := core.New(core.Config{Slots: n, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := New(n)
	for i := 0; i < n; i++ {
		spec := attr.Spec{Class: attr.EDF, Period: uint16(1 + i%2)}
		if err := hw.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
		if err := sw.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Start(); err != nil {
		t.Fatal(err)
	}
	sw.Start()
	for c := 0; c < cycles; c++ {
		hr := hw.RunCycle()
		sr := sw.RunCycle()
		if int(hr.Winner) != sr.Winner {
			t.Fatalf("cycle %d: hardware winner %d vs software %d", c, hr.Winner, sr.Winner)
		}
		if len(hr.Transmissions) > 0 && hr.Transmissions[0].Late != sr.Late {
			t.Fatalf("cycle %d: lateness diverged (hw %v sw %v)", c, hr.Transmissions[0].Late, sr.Late)
		}
	}
	for i := 0; i < n; i++ {
		if hw.SlotCounters(i) != sw.Stream(i).Counters {
			t.Fatalf("stream %d counters diverged:\nhw %+v\nsw %+v", i, hw.SlotCounters(i), sw.Stream(i).Counters)
		}
	}
}

// TestCrossValidateMixedClasses extends the oracle run to a mixed workload
// (EDF + window-constrained + static-priority).
func TestCrossValidateMixedClasses(t *testing.T) {
	const n, cycles = 4, 3000
	specs := []attr.Spec{
		{Class: attr.EDF, Period: 3},
		{Class: attr.WindowConstrained, Period: 2, Constraint: attr.Constraint{Num: 1, Den: 3}},
		{Class: attr.WindowConstrained, Period: 4, Constraint: attr.Constraint{Num: 2, Den: 4}},
		{Class: attr.StaticPriority, Priority: 20000},
	}
	hw, err := core.New(core.Config{Slots: n, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := New(n)
	for i, spec := range specs {
		if err := hw.Admit(i, spec, &traffic.Periodic{Gap: 2, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
		if err := sw.Admit(i, spec, &traffic.Periodic{Gap: 2, Phase: uint64(i), Backlogged: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Start(); err != nil {
		t.Fatal(err)
	}
	sw.Start()
	for c := 0; c < cycles; c++ {
		hr := hw.RunCycle()
		sr := sw.RunCycle()
		if int(hr.Winner) != sr.Winner {
			t.Fatalf("cycle %d: hardware winner %d vs software %d", c, hr.Winner, sr.Winner)
		}
	}
	for i := 0; i < n; i++ {
		if hw.SlotCounters(i) != sw.Stream(i).Counters {
			t.Fatalf("stream %d counters diverged:\nhw %+v\nsw %+v", i, hw.SlotCounters(i), sw.Stream(i).Counters)
		}
	}
}

func TestGatedTrafficIdleThenServe(t *testing.T) {
	s, _ := New(2)
	if err := s.Admit(0, attr.Spec{Class: attr.EDF, Period: 5}, &traffic.Periodic{Gap: 5, Phase: 3}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i := 0; i < 3; i++ {
		s.Advance()
		if r := s.RunCycle(); r.Winner != -1 {
			t.Fatalf("cycle %d: winner %d before first arrival", i, r.Winner)
		}
	}
	s.Advance()
	if r := s.RunCycle(); r.Winner != 0 {
		t.Fatal("stream not served after arrival")
	}
}

// BenchmarkPick measures the O(N) software decision — the §4.1
// processor-resident scheduler latency, to set against the paper's ≈50 µs
// (300 MHz UltraSPARC) and ≈67 µs (66 MHz i960RD) numbers.
func BenchmarkPick(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 128, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			s, _ := New(n)
			for i := 0; i < n; i++ {
				spec := attr.Spec{Class: attr.WindowConstrained, Period: uint16(1 + i%7),
					Constraint: attr.Constraint{Num: uint8(i % 3), Den: uint8(3 + i%5)}}
				if err := s.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
					b.Fatal(err)
				}
			}
			s.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunCycle()
			}
		})
	}
}

func sizeName(n int) string {
	return "N" + string(rune('0'+n/1000%10)) + string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}
