// Package endsystem assembles the ShareStreams Endsystem/Host-router
// realization (Figure 3): the Stream processor's Queue Manager and
// Transmission Engine around the FPGA scheduler, with the PCI/SRAM transfer
// substrate in between.
//
// Two drivers are provided:
//
//   - Throughput computes the §5.2 operating points: packets/second with
//     transfers excluded (the paper's 469,483 pps), with PIO transfers
//     (299,065 pps) and with DMA pulls (the peer-peer enhancement §5.2
//     anticipates). RunPipeline additionally drives a real three-stage
//     concurrent pipeline — producer → per-stream rings → scheduler → tx
//     ring → transmission engine — to validate the synchronization-free
//     structure end to end (frame conservation, no locks), while the
//     timing itself comes from the calibrated cost model so results stay
//     deterministic.
//
//   - RunAllocation drives the bandwidth-allocation experiments of Figures
//     8–10: backlogged or bursty streams with rate ratios enforced by EDF
//     request periods, an output link that serializes frames at a fixed
//     rate, and per-stream bandwidth/delay measurement.
package endsystem

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/regblock"
	"repro/internal/ringbuf"
	"repro/internal/traffic"
	"repro/internal/txengine"
)

// HostCostNs is the calibrated per-packet Stream-processor cost (Queue
// Manager dequeue + Transmission Engine DMA setup) on the paper's 500 MHz
// Pentium III host: 2130 ns per packet yields the §5.2 operating point of
// 469,483 packets/s when PCI transfer time is excluded.
const HostCostNs = 2130.0

// TransferBatch is the arrival-time/stream-ID batching factor used by the
// §5.2 calibration (32 packets per PIO/DMA batch).
const TransferBatch = 32

// schedulerBatchCycles is how many decision cycles the drivers hand the
// scheduler per core.RunCycles call: large enough to amortize the batch
// entry over the hoisted per-cycle work, small enough that completion and
// error conditions (checked in the visit callback) stop the run promptly.
const schedulerBatchCycles = 256

// OperatingPoint is one §5.2 throughput row.
type OperatingPoint struct {
	Mode        pci.Mode
	HostNs      float64 // per-packet host cost
	TransferNs  float64 // per-packet transfer cost under Mode
	PacketsPerS float64
}

// Throughput computes the endsystem operating point for a transfer mode.
func Throughput(mode pci.Mode) (OperatingPoint, error) {
	bus, err := pci.New(pci.DefaultConfig())
	if err != nil {
		return OperatingPoint{}, err
	}
	per, err := bus.PerPacketNs(mode, TransferBatch)
	if err != nil {
		return OperatingPoint{}, err
	}
	return OperatingPoint{
		Mode:        mode,
		HostNs:      HostCostNs,
		TransferNs:  per,
		PacketsPerS: 1e9 / (HostCostNs + per),
	}, nil
}

// PipelineResult reports a functional pipelined run.
type PipelineResult struct {
	Frames      uint64 // frames delivered to the network
	PerStream   []uint64
	VirtualNs   float64 // modeled time for the run (host + metered transfers)
	PacketsPerS float64
	// Metered transfer accounting from the actual pci.Bus driven by the
	// run's batch count (zero under ModeNone).
	TransferNs   float64
	BankSwitches uint64
	Batches      uint64
}

// RunPipeline pushes framesPerStream frames per stream through the full
// concurrent pipeline: a producer goroutine filling the Queue Manager's
// per-stream rings, the scheduler loop draining them through head-source
// adapters and pushing scheduled IDs into a tx ring, and a Transmission
// Engine goroutine consuming that ring — all over synchronization-free
// SPSC rings, no locks. Timing comes from the calibrated cost model.
func RunPipeline(slots, framesPerStream int, mode pci.Mode) (PipelineResult, error) {
	return RunPipelineInstrumented(slots, framesPerStream, mode, nil)
}

// RunPipelineInstrumented is RunPipeline with an observability registry
// attached: the scheduler records its core.* bundle (tracer depth 256) and
// the Queue Manager publishes its qm.* gauges on reg for the duration of the
// run. A nil reg degrades to the uninstrumented RunPipeline. Scrape reg live
// (atomic core counters, observer-safe backlog) or read the full snapshot
// after the run returns; the qm totals gauges are exact only once quiescent.
func RunPipelineInstrumented(slots, framesPerStream int, mode pci.Mode, reg *obs.Registry) (PipelineResult, error) {
	bus, err := pci.New(pci.DefaultConfig())
	if err != nil {
		return PipelineResult{}, err
	}
	return runPipeline(slots, framesPerStream, bus, bus.BatchMeter(mode), reg)
}

// runPipeline is RunPipeline with the transfer meter injected, so tests can
// force metering failures and assert the goroutine lifecycle.
func runPipeline(slots, framesPerStream int, bus *pci.Bus, meterBatch func(int) error, reg *obs.Registry) (PipelineResult, error) {
	if slots < 2 || framesPerStream < 1 {
		return PipelineResult{}, fmt.Errorf("endsystem: bad pipeline config (%d slots, %d frames)", slots, framesPerStream)
	}
	manager, err := qm.New(slots, 1024)
	if err != nil {
		return PipelineResult{}, err
	}
	sched, err := core.New(core.Config{Slots: slots, Routing: core.WinnerOnly})
	if err != nil {
		return PipelineResult{}, err
	}
	for i := 0; i < slots; i++ {
		spec := attr.Spec{Class: attr.EDF, Period: uint16(slots)}
		if err := manager.Describe(i, spec); err != nil {
			return PipelineResult{}, err
		}
		if err := sched.Admit(i, spec, manager.Source(i)); err != nil {
			return PipelineResult{}, err
		}
	}

	if reg != nil {
		manager.RegisterMetrics(reg, "qm")
		m, err := core.NewMetrics(reg, "core", 256)
		if err != nil {
			return PipelineResult{}, err
		}
		if err := sched.Instrument(m); err != nil {
			return PipelineResult{}, err
		}
	}

	txRing, err := ringbuf.New[core.Transmission](1024)
	if err != nil {
		return PipelineResult{}, err
	}

	// Cancellation: every spin loop below checks stop so an error on any
	// exit path unblocks the producer and transmission-engine goroutines
	// instead of leaving them spinning on Gosched forever.
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	fail := func(err error) (PipelineResult, error) {
		cancel()
		wg.Wait()
		return PipelineResult{}, err
	}

	// Producer: the application filling per-stream queues.
	go func() {
		defer wg.Done()
		for k := 0; k < framesPerStream; k++ {
			for i := 0; i < slots; i++ {
				f := qm.Frame{Size: 1500, Arrival: uint64(k)}
				for !manager.Submit(i, f) {
					if stopped() {
						return
					}
					runtime.Gosched() // ring full: wait for the consumer
				}
			}
		}
	}()

	// Transmission engine: drains scheduled IDs.
	perStream := make([]uint64, slots)
	var delivered uint64
	total := uint64(slots * framesPerStream)
	go func() {
		defer wg.Done()
		for delivered < total {
			tx, ok := txRing.Pop()
			if !ok {
				if stopped() {
					return
				}
				runtime.Gosched()
				continue
			}
			perStream[tx.Slot]++
			delivered++
		}
	}()

	// Scheduler loop (this goroutine): run decision cycles until every
	// frame has been scheduled; idle cycles occur when the producer is
	// momentarily behind and cost nothing in the model (the hardware
	// spins while the host catches up). Every TransferBatch scheduled
	// frames, the run drives the actual PCI bus model: a push of
	// arrival-time words in, a read of stream-ID words back — so the
	// transfer time below is metered from bank switches and word counts,
	// not assumed.
	if err := sched.Start(); err != nil {
		return fail(err)
	}
	var scheduled, sinceBatch uint64
	var meterErr error
	for scheduled < total && meterErr == nil {
		sched.RunCycles(schedulerBatchCycles, func(cr *core.CycleResult) bool {
			if cr.Idle {
				runtime.Gosched() // producer momentarily behind
			}
			for _, tx := range cr.Transmissions {
				for !txRing.Push(tx) {
					runtime.Gosched() // tx ring full: engine backpressure
				}
				scheduled++
				sinceBatch++
				if sinceBatch == TransferBatch {
					if err := meterBatch(TransferBatch); err != nil {
						meterErr = err
						return false
					}
					sinceBatch = 0
				}
			}
			return scheduled < total
		})
	}
	if meterErr != nil {
		return fail(meterErr)
	}
	if sinceBatch > 0 {
		if err := meterBatch(int(sinceBatch)); err != nil {
			return fail(err)
		}
	}
	wg.Wait()

	virtual := float64(total)*HostCostNs + bus.BusyNs
	res := PipelineResult{
		Frames:       delivered,
		PerStream:    perStream,
		VirtualNs:    virtual,
		PacketsPerS:  float64(total) / virtual * 1e9,
		TransferNs:   bus.BusyNs,
		BankSwitches: bus.BankSwitches,
		Batches:      bus.Batches,
	}
	return res, nil
}

// AllocationConfig parameterizes a bandwidth-allocation run (Figures 8–10).
type AllocationConfig struct {
	// RatesMBps is the per-slot target allocation; its sum is the output
	// link rate (the paper's Figure 8 uses 2:2:4:8 MB/s over a 16 MB/s
	// budget).
	RatesMBps []float64
	// FrameBytes is the fixed frame size (default 1000).
	FrameBytes int
	// FramesPerSlot bounds each slot's traffic (the paper transfers 64000
	// arrival-times per queue).
	FramesPerSlot uint64
	// Bursty switches the generators to the Figure 9 pattern: bursts of
	// BurstFrames at the stream's nominal spacing, separated by
	// InterBurstCycles of silence.
	Bursty           bool
	BurstFrames      uint64
	InterBurstCycles uint64
	// Sources, when non-nil, overrides the generated traffic for each slot
	// (Figure 10 passes streamlet aggregators here). Overridden slots
	// ignore Bursty/FramesPerSlot.
	Sources []regblock.HeadSource
	// MeterWindows is the number of measurement windows across the run
	// (default 64).
	MeterWindows int
	// Observer, when non-nil, sees every transmission with its wire
	// completion time (Figure 10 charges streamlets here).
	Observer func(slot int, tx core.Transmission, completionNs float64)
	// Obs, when non-nil, attaches the scheduler's core.* observability
	// bundle (tracer depth 256) to this registry for the run.
	Obs *obs.Registry
}

// AllocationResult reports a bandwidth-allocation run.
type AllocationResult struct {
	TE      *txengine.Engine
	Sched   *core.Scheduler
	CycleNs float64 // virtual duration of one decision cycle (one frame time)
	Cycles  uint64
	// Sent is the number of frames actually transmitted; Expected is the
	// number the configuration promised (slots × FramesPerSlot).
	Sent     uint64
	Expected uint64
	// Truncated reports that the runaway-cycle guard tripped before Sent
	// reached Expected — the results cover only part of the configured
	// run and must not be read as a complete figure.
	Truncated bool
}

// RunAllocation executes the run: an N-slot winner-only scheduler in EDF
// mode with request periods inversely proportional to the target rates
// (deadline synthesis then yields service frequencies proportional to the
// rates), over an output link whose frame time equals one decision cycle.
func RunAllocation(cfg AllocationConfig) (*AllocationResult, error) {
	n := len(cfg.RatesMBps)
	if n < 2 {
		return nil, fmt.Errorf("endsystem: need ≥2 slots, got %d", n)
	}
	if cfg.FrameBytes == 0 {
		cfg.FrameBytes = 1000
	}
	if cfg.FramesPerSlot == 0 {
		cfg.FramesPerSlot = 64000
	}
	if cfg.MeterWindows == 0 {
		cfg.MeterWindows = 64
	}
	slots := 1
	for slots < n {
		slots *= 2
	}

	var totalMBps float64
	for i, r := range cfg.RatesMBps {
		if r <= 0 {
			return nil, fmt.Errorf("endsystem: slot %d rate %v", i, r)
		}
		totalMBps += r
	}
	linkBps := totalMBps * 8e6
	cycleNs := float64(cfg.FrameBytes*8) / linkBps * 1e9

	// Request periods: T_i = total/rate_i decision cycles (integer).
	periods := make([]uint16, n)
	for i, r := range cfg.RatesMBps {
		p := totalMBps / r
		rounded := math.Round(p)
		if math.Abs(p-rounded) > 1e-9 || rounded < 1 || rounded > 65535 {
			return nil, fmt.Errorf("endsystem: rate ratio for slot %d yields non-integer period %v", i, p)
		}
		periods[i] = uint16(rounded)
	}

	sched, err := core.New(core.Config{Slots: slots, Routing: core.WinnerOnly})
	if err != nil {
		return nil, err
	}
	expected := uint64(n) * cfg.FramesPerSlot
	for i := 0; i < n; i++ {
		src := cfg.source(i, periods[i])
		if err := sched.Admit(i, attr.Spec{Class: attr.EDF, Period: periods[i]}, src); err != nil {
			return nil, err
		}
	}
	if cfg.Obs != nil {
		m, err := core.NewMetrics(cfg.Obs, "core", 256)
		if err != nil {
			return nil, err
		}
		if err := sched.Instrument(m); err != nil {
			return nil, err
		}
	}
	if err := sched.Start(); err != nil {
		return nil, err
	}

	// Run length estimate: every frame takes one cycle, plus slack for
	// gated arrivals (bursty gaps) — bounded by the last arrival.
	runNs := float64(expected) * cycleNs * 1.05
	windowNs := runNs / float64(cfg.MeterWindows)
	te, err := txengine.New(slots, linkBps, windowNs)
	if err != nil {
		return nil, err
	}

	res := &AllocationResult{TE: te, Sched: sched, CycleNs: cycleNs, Expected: expected}
	var sent uint64
	var txErr error
	idleStreak := 0
	drained := false
	maxCycles := expected*4 + 1000
	for !drained && txErr == nil && sent < expected && res.Cycles < maxCycles {
		sched.RunCycles(schedulerBatchCycles, func(cr *core.CycleResult) bool {
			res.Cycles++
			if cr.Idle {
				idleStreak++
				if uint64(idleStreak) > cfg.InterBurstCycles+1000 {
					drained = true // sources exhausted
					return false
				}
				return sent < expected && res.Cycles < maxCycles
			}
			idleStreak = 0
			for _, tx := range cr.Transmissions {
				readyNs := float64(cr.Time) * cycleNs
				arrivalNs := float64(tx.Arrival64) * cycleNs
				end, err := te.Transmit(int(tx.Slot), cfg.FrameBytes, readyNs, arrivalNs)
				if err != nil {
					txErr = err
					return false
				}
				if cfg.Observer != nil {
					cfg.Observer(int(tx.Slot), tx, end)
				}
				sent++
			}
			return sent < expected && res.Cycles < maxCycles
		})
	}
	if txErr != nil {
		return nil, txErr
	}
	te.Finish()
	res.Sent = sent
	// The guard tripping with frames outstanding means the sources kept
	// trickling without ever draining — partial results that would
	// otherwise look complete.
	res.Truncated = sent < expected && res.Cycles >= maxCycles
	return res, nil
}

// source builds slot i's generator.
func (cfg AllocationConfig) source(i int, period uint16) regblock.HeadSource {
	if cfg.Sources != nil && i < len(cfg.Sources) && cfg.Sources[i] != nil {
		return cfg.Sources[i]
	}
	if cfg.Bursty {
		// Within a burst, packets arrive ~33% faster than the stream's
		// fair share drains them (gap = ceil(3T/4)), so backlog and
		// queuing delay ramp across each burst and drain during the
		// inter-burst silence — Figure 9's zig-zag. The highest-rate
		// stream's gap rounds back to its period, which is why stream 4
		// shows the flattest, lowest delay, consistent with the figure.
		gap := (uint64(period)*3 + 3) / 4
		if gap < 1 {
			gap = 1
		}
		return &traffic.Bursty{
			BurstLen:   cfg.BurstFrames,
			Gap:        gap,
			InterBurst: cfg.InterBurstCycles,
			Phase:      uint64(i),
			Limit:      cfg.FramesPerSlot,
		}
	}
	return &traffic.Periodic{
		Gap:        uint64(period),
		Phase:      uint64(i),
		Limit:      cfg.FramesPerSlot,
		Backlogged: true,
	}
}
