package endsystem

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pci"
	"repro/internal/regblock"
)

func TestOperatingPoints(t *testing.T) {
	// §5.2: 469,483 pps excluding transfers; 299,065 pps with PIO.
	none, err := Throughput(pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	if int(none.PacketsPerS) != 469483 {
		t.Errorf("no-transfer rate = %d pps, want 469483", int(none.PacketsPerS))
	}
	pio, err := Throughput(pci.ModePIO)
	if err != nil {
		t.Fatal(err)
	}
	if int(pio.PacketsPerS) != 299065 {
		t.Errorf("PIO rate = %d pps, want 299065", int(pio.PacketsPerS))
	}
	dma, err := Throughput(pci.ModeDMA)
	if err != nil {
		t.Fatal(err)
	}
	if dma.PacketsPerS <= pio.PacketsPerS || dma.PacketsPerS >= none.PacketsPerS {
		t.Errorf("DMA rate %v should sit between PIO %v and no-transfer %v",
			dma.PacketsPerS, pio.PacketsPerS, none.PacketsPerS)
	}
}

func TestRunPipelineConservesFrames(t *testing.T) {
	res, err := RunPipeline(4, 2000, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 8000 {
		t.Fatalf("delivered %d frames, want 8000", res.Frames)
	}
	for i, n := range res.PerStream {
		if n != 2000 {
			t.Errorf("stream %d delivered %d, want 2000", i, n)
		}
	}
	if res.PacketsPerS <= 0 || res.VirtualNs <= 0 {
		t.Fatalf("degenerate timing: %+v", res)
	}
	if math.Abs(res.VirtualNs-8000*HostCostNs) > 1e-6 {
		t.Errorf("virtual time = %v, want %v", res.VirtualNs, 8000*HostCostNs)
	}
}

func TestRunPipelineValidation(t *testing.T) {
	if _, err := RunPipeline(1, 10, pci.ModeNone); err == nil {
		t.Error("accepted 1 slot")
	}
	if _, err := RunPipeline(4, 0, pci.ModeNone); err == nil {
		t.Error("accepted 0 frames")
	}
}

func TestRunAllocationRatios(t *testing.T) {
	// The Figure 8 scenario scaled down: 1:1:2:4 over 16 MB/s.
	res, err := RunAllocation(AllocationConfig{
		RatesMBps:     []float64{2, 2, 4, 8},
		FramesPerSlot: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Equal per-queue frame budgets mean the high-rate streams finish
	// first, so the allocation shows while all streams are active: average
	// the first fifth of the windows.
	want := []float64{2, 2, 4, 8}
	for i, w := range want {
		pts := res.TE.Bandwidth(i)
		n := len(pts) / 5
		if n == 0 {
			t.Fatalf("slot %d: only %d windows", i, len(pts))
		}
		var got float64
		for _, p := range pts[:n] {
			got += p.Y
		}
		got /= float64(n)
		if math.Abs(got-w)/w > 0.1 {
			t.Errorf("slot %d bandwidth = %.2f MB/s, want ≈%.1f", i, got, w)
		}
	}
	// The link runs at essentially full utilization under backlog.
	horizon := float64(res.Cycles) * res.CycleNs
	if u := res.TE.Link().Utilization(horizon); u < 0.9 {
		t.Errorf("link utilization = %.2f, want ≈1 under backlog", u)
	}
}

func TestRunAllocationValidation(t *testing.T) {
	if _, err := RunAllocation(AllocationConfig{RatesMBps: []float64{1}}); err == nil {
		t.Error("accepted a single slot")
	}
	if _, err := RunAllocation(AllocationConfig{RatesMBps: []float64{1, -1}}); err == nil {
		t.Error("accepted a negative rate")
	}
	if _, err := RunAllocation(AllocationConfig{RatesMBps: []float64{3, 7}}); err == nil {
		t.Error("accepted a non-integer period ratio")
	}
}

func TestRunAllocationBurstyDelaysRampAndReset(t *testing.T) {
	res, err := RunAllocation(AllocationConfig{
		RatesMBps:        []float64{2, 2, 4, 8},
		FramesPerSlot:    3000,
		Bursty:           true,
		BurstFrames:      1000,
		InterBurstCycles: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 0 (lowest share, overdriven during bursts) must show a
	// sawtooth: a peak well above its trough.
	d0 := res.TE.Delays(0)
	if len(d0) < 2000 {
		t.Fatalf("stream 0 delay points = %d", len(d0))
	}
	var peak float64
	for _, p := range d0 {
		if p.Y > peak {
			peak = p.Y
		}
	}
	mean0, _ := res.TE.DelayStats(0)
	if peak < 2*mean0 {
		t.Errorf("stream 0 delay peak %.2f ms vs mean %.2f ms — no zig-zag", peak, mean0)
	}
	// Stream 4 (highest share, rate-matched) shows the lowest delay, as
	// in Figure 9.
	mean3, _ := res.TE.DelayStats(3)
	if mean3 >= mean0 {
		t.Errorf("stream 4 mean delay %.2f ms not below stream 1's %.2f ms", mean3, mean0)
	}
}

func TestRunAllocationObserver(t *testing.T) {
	seen := make(map[int]int)
	var lastNs float64
	_, err := RunAllocation(AllocationConfig{
		RatesMBps:     []float64{1, 1},
		FramesPerSlot: 100,
		Observer: func(slot int, tx core.Transmission, endNs float64) {
			seen[slot]++
			if endNs < lastNs {
				t.Errorf("completions went backwards: %v after %v", endNs, lastNs)
			}
			lastNs = endNs
			if int(tx.Slot) != slot {
				t.Errorf("observer slot %d vs tx slot %d", slot, tx.Slot)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen[0] != 100 || seen[1] != 100 {
		t.Fatalf("observer saw %v, want 100 per slot", seen)
	}
}

func TestRunPipelineMeteredPIOMatchesAnalytic(t *testing.T) {
	// 4 streams x 1600 frames = 6400 = 200 exact batches of 32: the
	// metered bus must land exactly on the calibrated §5.2 operating
	// point.
	res, err := RunPipeline(4, 1600, pci.ModePIO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 400 { // 200 pushes + 200 reads
		t.Fatalf("bus batches = %d, want 400", res.Batches)
	}
	if res.BankSwitches != 800 {
		t.Fatalf("bank switches = %d, want 800", res.BankSwitches)
	}
	if int(res.PacketsPerS) != 299065 {
		t.Fatalf("metered rate = %d pps, want 299065", int(res.PacketsPerS))
	}
	wantTransfer := 1213.75 * 6400
	if math.Abs(res.TransferNs-wantTransfer) > 1 {
		t.Fatalf("metered transfer = %v ns, want %v", res.TransferNs, wantTransfer)
	}
}

func TestRunPipelineDMABetweenPIOAndNone(t *testing.T) {
	pio, err := RunPipeline(4, 800, pci.ModePIO)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := RunPipeline(4, 800, pci.ModeDMA)
	if err != nil {
		t.Fatal(err)
	}
	none, err := RunPipeline(4, 800, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	if !(pio.PacketsPerS < dma.PacketsPerS && dma.PacketsPerS < none.PacketsPerS) {
		t.Fatalf("ordering: pio %v dma %v none %v", pio.PacketsPerS, dma.PacketsPerS, none.PacketsPerS)
	}
	if none.TransferNs != 0 || none.Batches != 0 {
		t.Fatalf("ModeNone metered transfers: %+v", none)
	}
}

// TestRunPipelineMeterErrorUnblocksPipeline forces a transfer-metering
// failure mid-run and asserts the error path cancels the producer and
// transmission-engine goroutines instead of leaving them spinning on
// Gosched forever (a goroutine + CPU leak).
func TestRunPipelineMeterErrorUnblocksPipeline(t *testing.T) {
	before := runtime.NumGoroutine()
	bus, err := pci.New(pci.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transfer meter failure")
	if _, err := runPipeline(4, 8000, bus, func(int) error { return boom }, nil); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	// The error return waits for the pipeline goroutines; allow a moment
	// for unrelated runtime goroutines to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("pipeline goroutines leaked: %d running, %d before", g, before)
	}
}

// trickle releases one head every gap decision cycles, forever — slow
// enough that an allocation run never completes, frequent enough that the
// idle-streak exhaustion exit never fires. It drives RunAllocation into its
// runaway-cycle guard.
type trickle struct {
	gap      uint64
	now      uint64
	released uint64
}

func (s *trickle) Advance(now uint64) { s.now = now }

func (s *trickle) NextHead() (regblock.Head, bool) {
	due := s.released * s.gap
	if s.now < due {
		return regblock.Head{}, false
	}
	s.released++
	return regblock.Head{Arrival: due}, true
}

func TestRunAllocationSurfacesTruncation(t *testing.T) {
	res, err := RunAllocation(AllocationConfig{
		RatesMBps:     []float64{8, 8},
		FramesPerSlot: 100,
		Sources:       []regblock.HeadSource{&trickle{gap: 600}, &trickle{gap: 600}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("truncated run not flagged: sent %d of %d in %d cycles",
			res.Sent, res.Expected, res.Cycles)
	}
	if res.Expected != 200 {
		t.Fatalf("Expected = %d, want 200", res.Expected)
	}
	if res.Sent >= res.Expected {
		t.Fatalf("guard should have tripped with frames outstanding: sent %d of %d",
			res.Sent, res.Expected)
	}
}

func TestRunAllocationCompletenessAccounting(t *testing.T) {
	res, err := RunAllocation(AllocationConfig{
		RatesMBps:     []float64{2, 2, 4, 8},
		FramesPerSlot: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("complete run flagged truncated: %d of %d", res.Sent, res.Expected)
	}
	if res.Sent != res.Expected || res.Expected != 4000 {
		t.Fatalf("sent %d of expected %d, want 4000/4000", res.Sent, res.Expected)
	}
}

func TestRunShardedReproducesOperatingPoint(t *testing.T) {
	// One shard must land exactly on the §5.2 ModeNone operating point.
	res1, err := RunSharded(1, 4, 500, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e9 / HostCostNs // 469,483 pps
	if math.Abs(res1.PacketsPerS-want) > 1 {
		t.Fatalf("1-shard pps = %v, want ≈%v", res1.PacketsPerS, want)
	}
	if res1.Frames != 4*500 {
		t.Fatalf("1-shard delivered %d frames, want %d", res1.Frames, 4*500)
	}

	// K evenly loaded shards complete in the same modeled time, so the
	// aggregate modeled throughput is K× the single-pipeline rate.
	res4, err := RunSharded(4, 4, 500, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res4.PacketsPerS-4*want) > 4 {
		t.Fatalf("4-shard pps = %v, want ≈%v", res4.PacketsPerS, 4*want)
	}
	if res4.VirtualNs != res1.VirtualNs {
		t.Fatalf("evenly loaded shards changed modeled completion: %v vs %v",
			res4.VirtualNs, res1.VirtualNs)
	}
}

func TestRunShardedPIOSlowerThanModeNone(t *testing.T) {
	none, err := RunSharded(2, 4, 320, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	pio, err := RunSharded(2, 4, 320, pci.ModePIO)
	if err != nil {
		t.Fatal(err)
	}
	if pio.PacketsPerS >= none.PacketsPerS {
		t.Fatalf("PIO (%v pps) not slower than ModeNone (%v pps)",
			pio.PacketsPerS, none.PacketsPerS)
	}
}
