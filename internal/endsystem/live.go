package endsystem

import (
	"io"

	"repro/internal/ctlplane"
	"repro/internal/decision"
	"repro/internal/qm"
)

// ServiceConfig parameterizes the live supervised endsystem a daemon hosts:
// the sharded scheduler fabric sized for service operation, fronted by the
// epoch-fenced control plane. Zero fields take service defaults — a 4×16
// fabric with the delay-driven shared buffer pool and head-drop overload
// handling, which is the configuration the soak and smoke gates pin.
type ServiceConfig struct {
	Shards        int
	SlotsPerShard int
	// Program is the rank program every shard runs (default ProgramDWCS,
	// the full Table-2 datapath — every attribute class admits).
	Program decision.Program
	// Policy is the overload policy (default DropOldest: a service sheds
	// the stalest work first rather than wedging producers).
	Policy qm.Policy
	// BufferPool configures the per-shard shared buffer pool; a zero value
	// takes the service default (reservation 8, burst 64, delay target 64).
	// Set Reservation negative to force fixed private rings instead.
	BufferPool qm.SharedConfig
	// RingCapacity sizes fixed private rings when the pool is disabled.
	RingCapacity int
	// CyclesPerEpoch is each shard's decision budget per control epoch.
	CyclesPerEpoch int
	// FramesPerStream is the synthetic per-slot load offered each epoch.
	FramesPerStream int
	// Journal receives the control plane's transition journal (optional).
	Journal io.Writer
	// CheckpointEvery is the journal's checkpoint cadence in epoch fences
	// (0 takes the control plane's default; negative disables checkpoints).
	CheckpointEvery int
}

// NewService builds the live supervised endsystem: a ctlplane.Engine over a
// sharded router in live mode, under the service defaults. The caller owns
// stepping (one goroutine; see ctlplane.Engine).
func NewService(cfg ServiceConfig) (*ctlplane.Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.SlotsPerShard == 0 {
		cfg.SlotsPerShard = 16
	}
	pool := cfg.BufferPool
	if pool.Reservation == 0 && pool.Burst == 0 {
		pool = qm.SharedConfig{Reservation: 8, Burst: 64, DelayTarget: 64}
	}
	if pool.Reservation < 0 {
		pool = qm.SharedConfig{}
	}
	if cfg.Policy == qm.Backpressure {
		// The zero value means "default", and a service's default is
		// DropOldest: shed the stalest work rather than wedge the offered
		// load. Backpressure is a batch-driver policy (the producer spins);
		// it is not reachable through this facade.
		cfg.Policy = qm.DropOldest
	}
	return ctlplane.New(ctlplane.Config{
		Shards:          cfg.Shards,
		SlotsPerShard:   cfg.SlotsPerShard,
		RingCapacity:    cfg.RingCapacity,
		BufferPool:      pool,
		Program:         cfg.Program,
		Policy:          cfg.Policy,
		CyclesPerEpoch:  cfg.CyclesPerEpoch,
		FramesPerStream: cfg.FramesPerStream,
		Journal:         cfg.Journal,
		CheckpointEvery: cfg.CheckpointEvery,
	})
}
