package endsystem

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/pci"
)

// TestPipelineInstrumented runs the full concurrent pipeline with the
// registry attached and checks the scraped view against the returned result.
// It runs under -race in CI, so it also proves the scrape path (atomic core
// counters, observer-safe backlog) does not race the pipeline goroutines.
func TestPipelineInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	const slots, frames = 8, 500
	res, err := RunPipelineInstrumented(slots, frames, pci.ModePIO, reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != slots*frames {
		t.Fatalf("delivered %d, want %d", res.Frames, slots*frames)
	}
	snap := reg.Snapshot()
	byName := map[string]obs.MetricSnap{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if got := byName["core.transmissions"].Value; got != float64(res.Frames) {
		t.Fatalf("core.transmissions = %v, want %v", got, res.Frames)
	}
	if byName["core.decisions"].Value <= 0 {
		t.Fatal("core.decisions not recorded")
	}
	// Quiescent now: the qm gauges must be exact — every frame submitted and
	// dequeued, nothing queued.
	if got := byName["qm.submitted"].Value; got != float64(slots*frames) {
		t.Fatalf("qm.submitted = %v, want %v", got, slots*frames)
	}
	if got := byName["qm.dequeued"].Value; got != float64(slots*frames) {
		t.Fatalf("qm.dequeued = %v, want %v", got, slots*frames)
	}
	if got := byName["qm.backlog"].Value; got != 0 {
		t.Fatalf("qm.backlog = %v, want 0 after drain", got)
	}
	// The tracer kept the tail of the run.
	if len(snap.Traces) != 1 || snap.Traces[0].Recorded == 0 {
		t.Fatalf("trace snap = %+v, want a populated core.cycles trace", snap.Traces)
	}
}

// TestShardedInstrumented checks the dispatcher metrics of a balanced
// sharded run: every frame counted, imbalance exactly 1.0 under even fill.
func TestShardedInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	const shards, slotsPer, frames = 4, 4, 200
	res, err := RunShardedInstrumented(shards, slotsPer, frames, pci.ModeNone, reg)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(shards * slotsPer * frames)
	if res.Frames != want {
		t.Fatalf("frames = %d, want %d", res.Frames, want)
	}
	snap := reg.Snapshot()
	byName := map[string]obs.MetricSnap{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if got := byName["shard.delivered"].Value; got != float64(want) {
		t.Fatalf("shard.delivered = %v, want %v", got, want)
	}
	for k := 0; k < shards; k++ {
		name := fmt.Sprintf("shard.shard%d.delivered", k)
		if got := byName[name].Value; got != float64(slotsPer*frames) {
			t.Fatalf("%s = %v, want %v", name, got, slotsPer*frames)
		}
	}
	if got := byName["shard.placement_imbalance"].Value; got != 1 {
		t.Fatalf("placement imbalance = %v, want 1 (balanced admission)", got)
	}
	if got := byName["shard.delivery_imbalance"].Value; got != 1 {
		t.Fatalf("delivery imbalance = %v, want 1 (even load, complete run)", got)
	}
}

// TestAllocationInstrumented attaches a registry to a Figure-8-style run and
// checks the scheduler bundle saw every transmission.
func TestAllocationInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunAllocation(AllocationConfig{
		RatesMBps:     []float64{2, 2, 4, 8},
		FramesPerSlot: 400,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("allocation run truncated")
	}
	snap := reg.Snapshot()
	for _, m := range snap.Metrics {
		if m.Name == "core.transmissions" {
			if m.Value != float64(res.Sent) {
				t.Fatalf("core.transmissions = %v, want %v", m.Value, res.Sent)
			}
			return
		}
	}
	t.Fatal("core.transmissions missing from snapshot")
}
