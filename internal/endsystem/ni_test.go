package endsystem

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/netio"
	"repro/internal/traffic"
)

// TestSchedulerDrivesNIDescriptorRing integrates the Figure 3 tail: the
// scheduler's winner stream IDs become NI transmit descriptors (the TE
// setting DMA registers), with ring backpressure throttling the scheduler
// and every frame completing on the wire in order.
func TestSchedulerDrivesNIDescriptorRing(t *testing.T) {
	sched, err := core.New(core.Config{Slots: 4, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true, Limit: 500}
		if err := sched.Admit(i, attr.Spec{Class: attr.EDF, Period: 4}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	ni, err := netio.New(netio.Config{RingSize: 8, DMASetupNs: 200, DMABytesPerSec: 200e6, LinkBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}

	const frameBytes = 1500
	cycleNs := 12000.0 // one 1500B frame time at 1 Gbps
	perStream := make([]uint64, 4)
	var posted uint64
	now := 0.0
	for posted < 2000 {
		cr := sched.RunCycle()
		now = float64(cr.Time) * cycleNs
		ni.Reap(now)
		for _, tx := range cr.Transmissions {
			for !ni.Post(int(tx.Slot), frameBytes, now) {
				// Ring full: the TE stalls until completions free slots
				// (virtual time advances to the next completion).
				now += cycleNs
				ni.Reap(now)
			}
			posted++
		}
	}
	for _, d := range ni.Reap(now + 1e9) {
		perStream[d.Stream]++
	}
	// Recount from totals (Reap during the loop also completed some).
	if ni.Completed != posted {
		t.Fatalf("completed %d of %d posted", ni.Completed, posted)
	}
	if ni.Posted != 2000 {
		t.Fatalf("posted = %d", ni.Posted)
	}
	// The wire must be the long-run bottleneck view: utilization high.
	if u := ni.Wire().Utilization(now); u < 0.5 {
		t.Errorf("wire utilization %.2f over the run", u)
	}
}
