package endsystem

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/shard"
)

// RunSharded drives the sharded endsystem: shards independent scheduler
// pipelines, each sized slotsPerShard, evenly loaded with shards×slotsPerShard
// streams via flow-hash-balanced admission, pushing framesPerStream frames
// per stream under the §5.2 calibration (HostCostNs per packet, TransferBatch
// frames per metered PCI batch). Modeled completion time is the maximum over
// shards, so the aggregate PacketsPerS of a 1-shard run reproduces the
// single-pipeline operating points (469,483 pps ModeNone) and K evenly
// loaded shards report ≈K× that.
func RunSharded(shards, slotsPerShard, framesPerStream int, mode pci.Mode) (*shard.Result, error) {
	return RunShardedInstrumented(shards, slotsPerShard, framesPerStream, mode, nil)
}

// RunShardedInstrumented is RunSharded with an observability registry
// attached: the router publishes its shard.* dispatcher and throughput
// metrics (per-shard delivered counters are atomic, so scraping mid-run is
// race-free). A nil reg degrades to the uninstrumented RunSharded.
func RunShardedInstrumented(shards, slotsPerShard, framesPerStream int, mode pci.Mode, reg *obs.Registry) (*shard.Result, error) {
	router, err := shard.New(shard.Config{
		Shards:        shards,
		SlotsPerShard: slotsPerShard,
		HostNs:        HostCostNs,
		Mode:          mode,
		TransferBatch: TransferBatch,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	spec := attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	if _, err := router.AdmitBalanced(streams, spec); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	if reg != nil {
		router.RegisterMetrics(reg, "shard")
	}
	return router.Run(framesPerStream)
}
