package endsystem

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/pci"
	"repro/internal/shard"
)

// RunSharded drives the sharded endsystem: shards independent scheduler
// pipelines, each sized slotsPerShard, evenly loaded with shards×slotsPerShard
// streams via flow-hash-balanced admission, pushing framesPerStream frames
// per stream under the §5.2 calibration (HostCostNs per packet, TransferBatch
// frames per metered PCI batch). Modeled completion time is the maximum over
// shards, so the aggregate PacketsPerS of a 1-shard run reproduces the
// single-pipeline operating points (469,483 pps ModeNone) and K evenly
// loaded shards report ≈K× that.
func RunSharded(shards, slotsPerShard, framesPerStream int, mode pci.Mode) (*shard.Result, error) {
	router, err := shard.New(shard.Config{
		Shards:        shards,
		SlotsPerShard: slotsPerShard,
		HostNs:        HostCostNs,
		Mode:          mode,
		TransferBatch: TransferBatch,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	spec := attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	if _, err := router.AdmitBalanced(streams, spec); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	return router.Run(framesPerStream)
}
