package endsystem

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/shard"
)

// RunSharded drives the sharded endsystem: shards independent scheduler
// pipelines, each sized slotsPerShard, evenly loaded with shards×slotsPerShard
// streams via flow-hash-balanced admission, pushing framesPerStream frames
// per stream under the §5.2 calibration (HostCostNs per packet, TransferBatch
// frames per metered PCI batch). Modeled completion time is the maximum over
// shards, so the aggregate PacketsPerS of a 1-shard run reproduces the
// single-pipeline operating points (469,483 pps ModeNone) and K evenly
// loaded shards report ≈K× that.
func RunSharded(shards, slotsPerShard, framesPerStream int, mode pci.Mode) (*shard.Result, error) {
	return RunShardedInstrumented(shards, slotsPerShard, framesPerStream, mode, nil)
}

// RunShardedRTC is RunSharded with the run-to-completion shard loop: each
// shard pipeline runs produce → schedule → transmit on one pinned OS thread
// in batched epochs instead of three goroutines spin-waiting on rings, with
// counters and bandwidth published per epoch. Results are equivalent; wall
// throughput is what changes.
func RunShardedRTC(shards, slotsPerShard, framesPerStream int, mode pci.Mode) (*shard.Result, error) {
	return RunShardedOpts(shards, slotsPerShard, framesPerStream, ShardedOptions{Mode: mode, RunToCompletion: true})
}

// RunShardedInstrumented is RunSharded with an observability registry
// attached: the router publishes its shard.* dispatcher and throughput
// metrics (per-shard delivered counters are atomic, so scraping mid-run is
// race-free). A nil reg degrades to the uninstrumented RunSharded.
func RunShardedInstrumented(shards, slotsPerShard, framesPerStream int, mode pci.Mode, reg *obs.Registry) (*shard.Result, error) {
	return RunShardedOpts(shards, slotsPerShard, framesPerStream, ShardedOptions{Mode: mode, Registry: reg})
}

// ShardedOptions selects the optional machinery of a sharded endsystem run:
// PCI metering mode, an observability registry, the run-to-completion shard
// loop, and the delay-driven shared buffer pool (a zero BufferPool keeps the
// historical fixed per-stream rings).
type ShardedOptions struct {
	Mode            pci.Mode
	Registry        *obs.Registry
	RunToCompletion bool
	BufferPool      qm.SharedConfig
}

// RunShardedOpts is the general sharded driver the named entry points wrap:
// the same evenly-loaded endsystem under the §5.2 calibration, with opts
// choosing metering, instrumentation, the shard loop, and the buffering
// organization.
func RunShardedOpts(shards, slotsPerShard, framesPerStream int, opts ShardedOptions) (*shard.Result, error) {
	router, err := shard.New(shard.Config{
		Shards:          shards,
		SlotsPerShard:   slotsPerShard,
		HostNs:          HostCostNs,
		Mode:            opts.Mode,
		TransferBatch:   TransferBatch,
		RunToCompletion: opts.RunToCompletion,
		BufferPool:      opts.BufferPool,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	spec := attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	if _, err := router.AdmitBalanced(streams, spec); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	if opts.Registry != nil {
		router.RegisterMetrics(opts.Registry, "shard")
	}
	return router.Run(framesPerStream)
}

// RunShardedSupervised is the chaos-mode counterpart of RunSharded: the
// same evenly-loaded sharded endsystem, run under a deterministic fault
// schedule with the self-healing supervisor — crashed pipelines restart
// with capped backoff, shards dead after the restart budget have their
// flows re-aggregated as streamlets onto survivors (§4.2), and the whole
// fault/recovery history lands in trace (byte-identical for a given seed).
// schedule may be nil (no faults), trace may be nil (discard), and a zero
// RecoveryConfig takes the defaults.
func RunShardedSupervised(shards, slotsPerShard, framesPerStream int, mode pci.Mode, schedule *fault.Schedule, rcfg shard.RecoveryConfig, trace *fault.Trace) (*shard.SupervisedResult, error) {
	// ProgramDWCS with EDF-class specs is bit-for-bit the pre-program
	// configuration (full datapath, conserved frames), keeping the chaos
	// traces byte-identical across the refactor.
	return RunShardedSupervisedProgram(shards, slotsPerShard, framesPerStream, mode,
		decision.ProgramDWCS, schedule, rcfg, trace)
}

// programSpec maps a rank program to the uniform stream spec the sharded
// chaos drivers admit under it. The window-constrained class never appears
// here: a regblock expiry drop is invisible to the Queue Manager's loss
// accounting, so it would break the supervisor's frame-conservation
// invariant — chaos runs stick to the non-dropping classes. The DWCS
// program therefore also drives EDF-class specs (full datapath, conserved
// frames), which is exactly how the pre-program chaos jobs ran it.
func programSpec(p decision.Program, slotsPerShard int) attr.Spec {
	switch p {
	case decision.ProgramDWCS, decision.ProgramEDF:
		return attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	case decision.ProgramTagOnly, decision.ProgramSTFQ:
		return attr.Spec{Class: attr.FairTag, Weight: 1}
	case decision.ProgramStrictPriority:
		return attr.Spec{Class: attr.StaticPriority, Priority: 5, Guard: 64}
	default:
		panic("endsystem: rank program with no chaos spec: " + p.String())
	}
}

// RunShardedSupervisedProgram is RunShardedSupervised generalized over the
// registered rank programs: every shard's scheduler runs program p, and the
// admitted streams carry p's natural spec (programSpec). The chaos CI job
// iterates this over decision.Programs() so fault recovery is exercised
// under every discipline, not just the EDF default.
func RunShardedSupervisedProgram(shards, slotsPerShard, framesPerStream int, mode pci.Mode, p decision.Program, schedule *fault.Schedule, rcfg shard.RecoveryConfig, trace *fault.Trace) (*shard.SupervisedResult, error) {
	router, err := shard.New(shard.Config{
		Shards:        shards,
		SlotsPerShard: slotsPerShard,
		HostNs:        HostCostNs,
		Mode:          mode,
		TransferBatch: TransferBatch,
		Program:       p,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	if _, err := router.AdmitBalanced(streams, programSpec(p, slotsPerShard)); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	return router.RunSupervised(framesPerStream, schedule, rcfg, trace)
}
