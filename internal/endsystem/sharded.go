package endsystem

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pci"
	"repro/internal/shard"
)

// RunSharded drives the sharded endsystem: shards independent scheduler
// pipelines, each sized slotsPerShard, evenly loaded with shards×slotsPerShard
// streams via flow-hash-balanced admission, pushing framesPerStream frames
// per stream under the §5.2 calibration (HostCostNs per packet, TransferBatch
// frames per metered PCI batch). Modeled completion time is the maximum over
// shards, so the aggregate PacketsPerS of a 1-shard run reproduces the
// single-pipeline operating points (469,483 pps ModeNone) and K evenly
// loaded shards report ≈K× that.
func RunSharded(shards, slotsPerShard, framesPerStream int, mode pci.Mode) (*shard.Result, error) {
	return RunShardedInstrumented(shards, slotsPerShard, framesPerStream, mode, nil)
}

// RunShardedInstrumented is RunSharded with an observability registry
// attached: the router publishes its shard.* dispatcher and throughput
// metrics (per-shard delivered counters are atomic, so scraping mid-run is
// race-free). A nil reg degrades to the uninstrumented RunSharded.
func RunShardedInstrumented(shards, slotsPerShard, framesPerStream int, mode pci.Mode, reg *obs.Registry) (*shard.Result, error) {
	router, err := shard.New(shard.Config{
		Shards:        shards,
		SlotsPerShard: slotsPerShard,
		HostNs:        HostCostNs,
		Mode:          mode,
		TransferBatch: TransferBatch,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	spec := attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	if _, err := router.AdmitBalanced(streams, spec); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	if reg != nil {
		router.RegisterMetrics(reg, "shard")
	}
	return router.Run(framesPerStream)
}

// RunShardedSupervised is the chaos-mode counterpart of RunSharded: the
// same evenly-loaded sharded endsystem, run under a deterministic fault
// schedule with the self-healing supervisor — crashed pipelines restart
// with capped backoff, shards dead after the restart budget have their
// flows re-aggregated as streamlets onto survivors (§4.2), and the whole
// fault/recovery history lands in trace (byte-identical for a given seed).
// schedule may be nil (no faults), trace may be nil (discard), and a zero
// RecoveryConfig takes the defaults.
func RunShardedSupervised(shards, slotsPerShard, framesPerStream int, mode pci.Mode, schedule *fault.Schedule, rcfg shard.RecoveryConfig, trace *fault.Trace) (*shard.SupervisedResult, error) {
	router, err := shard.New(shard.Config{
		Shards:        shards,
		SlotsPerShard: slotsPerShard,
		HostNs:        HostCostNs,
		Mode:          mode,
		TransferBatch: TransferBatch,
	})
	if err != nil {
		return nil, err
	}
	streams := shards * slotsPerShard
	spec := attr.Spec{Class: attr.EDF, Period: uint16(slotsPerShard)}
	if _, err := router.AdmitBalanced(streams, spec); err != nil {
		return nil, fmt.Errorf("endsystem: sharded admission: %w", err)
	}
	return router.RunSupervised(framesPerStream, schedule, rcfg, trace)
}
