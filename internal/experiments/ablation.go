package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fpga"
	"repro/internal/hwpq"
)

// AblationRow compares one queuing architecture at one capacity — the §3
// argument quantified.
type AblationRow struct {
	Architecture string
	Slots        int
	// Comparators is the number of Decision-block-grade comparators the
	// architecture replicates; Slices prices them at the paper's 190
	// slices per Decision block.
	Comparators int
	Slices      int
	// CyclesFair / CyclesWindow are clocks per decision without / with
	// per-cycle priority updates.
	CyclesFair   int
	CyclesWindow int
}

// Ablation runs the priority-queue architecture comparison at the given
// slot counts.
func Ablation(slotCounts []int) ([]AblationRow, error) {
	if len(slotCounts) == 0 {
		slotCounts = []int{4, 8, 16, 32, 64}
	}
	var rows []AblationRow
	for _, n := range slotCounts {
		sh := hwpq.ShuffleCost(n)
		rows = append(rows, AblationRow{
			Architecture: sh.Name,
			Slots:        n,
			Comparators:  sh.Comparators,
			Slices:       sh.Comparators * fpga.SlicesDecision,
			CyclesFair:   sh.CyclesFair,
			CyclesWindow: sh.CyclesWindow,
		})
		chain, err := hwpq.NewShiftChain(n)
		if err != nil {
			return nil, err
		}
		sys, err := hwpq.NewSystolic(n)
		if err != nil {
			return nil, err
		}
		heap, err := hwpq.NewPipelinedHeap(n)
		if err != nil {
			return nil, err
		}
		for _, q := range []hwpq.Queue{chain, sys, heap} {
			row, err := hwpq.Cost(q, n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Architecture: row.Name,
				Slots:        n,
				Comparators:  row.Comparators,
				Slices:       row.Comparators * fpga.SlicesDecision,
				CyclesFair:   row.CyclesFair,
				CyclesWindow: row.CyclesWindow,
			})
		}
	}
	return rows, nil
}

// FormatAblation renders the architecture comparison.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %12s %10s %12s %14s\n",
		"Architecture", "Slots", "Comparators", "Slices", "Cycles(fair)", "Cycles(window)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %6d %12d %10d %12d %14d\n",
			r.Architecture, r.Slots, r.Comparators, r.Slices, r.CyclesFair, r.CyclesWindow)
	}
	return b.String()
}

// Fig1Row is one point of Figure 1's architectural-solutions framework: the
// scheduling rate a (streams, frame size, link rate) point demands, and
// which realizations meet it.
type Fig1Row struct {
	Slots        int
	FrameBytes   int
	LinkGbps     float64
	RequiredRate float64 // decisions/s for per-packet wire-speed scheduling
	// Achievable rates.
	LineCardWR float64 // WR decision rate at this slot count
	LineCardBA float64 // BA block frame rate (block amortization)
	MeetsWR    bool
	MeetsBA    bool
}

// Fig1 sweeps the framework over slot counts, frame sizes and link rates.
func Fig1(slotCounts []int, frameSizes []int, linkGbps []float64) ([]Fig1Row, error) {
	if len(slotCounts) == 0 {
		slotCounts = []int{4, 8, 16, 32}
	}
	if len(frameSizes) == 0 {
		frameSizes = []int{64, 1500}
	}
	if len(linkGbps) == 0 {
		linkGbps = []float64{1, 10}
	}
	var rows []Fig1Row
	for _, n := range slotCounts {
		k := 0
		for 1<<k < n {
			k++
		}
		cycles := k + 2 + n
		wrMHz, err := fpga.ClockMHz(n, fpga.WR, fpga.VirtexI)
		if err != nil {
			return nil, err
		}
		baMHz, err := fpga.ClockMHz(n, fpga.BA, fpga.VirtexI)
		if err != nil {
			return nil, err
		}
		wrRate := fpga.DecisionRate(wrMHz, cycles)
		baRate := fpga.PacketRate(baMHz, cycles, n)
		for _, fb := range frameSizes {
			for _, g := range linkGbps {
				req := fpga.RequiredRate(fb, g*1e9)
				rows = append(rows, Fig1Row{
					Slots:        n,
					FrameBytes:   fb,
					LinkGbps:     g,
					RequiredRate: req,
					LineCardWR:   wrRate,
					LineCardBA:   baRate,
					MeetsWR:      wrRate >= req,
					MeetsBA:      baRate >= req,
				})
			}
		}
	}
	return rows, nil
}

// FormatFig1 renders the framework sweep.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %6s %14s %14s %14s %8s %8s\n",
		"Slots", "Frame B", "Gbps", "required/s", "WR rate/s", "BA frames/s", "WR ok", "BA ok")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %8d %6.0f %14.0f %14.0f %14.0f %8v %8v\n",
			r.Slots, r.FrameBytes, r.LinkGbps, r.RequiredRate, r.LineCardWR, r.LineCardBA, r.MeetsWR, r.MeetsBA)
	}
	return b.String()
}
