package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fpga"
)

func TestFig7DefaultsAndClaims(t *testing.T) {
	rows, err := Fig7(nil, fpga.VirtexI)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // BA and WR at 4/8/16/32
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Every synthesized design fits the prototype chip; decision time is
	// logarithmic (2,3,4,5 cycles).
	wantSort := map[int]int{4: 2, 8: 3, 16: 4, 32: 5}
	byCfg := map[string]map[int]Fig7Row{}
	for _, r := range rows {
		if !r.FitsChip {
			t.Errorf("%v N=%d does not fit", r.Routing, r.Slots)
		}
		if r.SortCycle != wantSort[r.Slots] {
			t.Errorf("N=%d sort cycles = %d, want %d", r.Slots, r.SortCycle, wantSort[r.Slots])
		}
		if byCfg[r.Routing.String()] == nil {
			byCfg[r.Routing.String()] = map[int]Fig7Row{}
		}
		byCfg[r.Routing.String()][r.Slots] = r
	}
	// BA ≈ WR area; BA clock ≈10% below WR at 32 slots.
	ba32, wr32 := byCfg["BA"][32], byCfg["WR"][32]
	if ratio := float64(ba32.Slices) / float64(wr32.Slices); ratio > 1.10 {
		t.Errorf("BA/WR area ratio at 32 = %.3f", ratio)
	}
	if gap := (wr32.ClockMHz - ba32.ClockMHz) / wr32.ClockMHz; gap < 0.05 || gap > 0.15 {
		t.Errorf("BA clock degradation at 32 = %.0f%%, paper says ≈10%%", gap*100)
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "BA") || !strings.Contains(out, "WR") {
		t.Error("formatted table incomplete")
	}
}

func TestFig7VirtexIIExtension(t *testing.T) {
	v1, _ := Fig7([]int{32}, fpga.VirtexI)
	v2, _ := Fig7([]int{32}, fpga.VirtexII)
	if v2[0].ClockMHz <= v1[0].ClockMHz {
		t.Error("Virtex-II rows not faster")
	}
}

func TestFig8Allocation(t *testing.T) {
	res, err := Fig8(Fig8Config{FramesPerSlot: 8000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	want := []float64{2, 2, 4, 8}
	for i, w := range want {
		if math.Abs(res.MeanActive[i]-w)/w > 0.1 {
			t.Errorf("stream %d = %.2f MB/s, want ≈%.1f", i+1, res.MeanActive[i], w)
		}
	}
	if len(res.Bandwidth) != 4 || len(res.Bandwidth[0]) == 0 {
		t.Fatal("missing bandwidth series")
	}
	if res.Sent != res.Expected || res.Expected != 4*8000 {
		t.Errorf("incomplete run: sent %d of expected %d", res.Sent, res.Expected)
	}
}

func TestFig9ZigZagAndStream4Lowest(t *testing.T) {
	res, err := Fig9(Fig9Config{FramesPerSlot: 12000, BurstFrames: 2000, InterBurstCycles: 6000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Zig-zag: stream 1's peak delay well above its mean.
	if res.Peak[0] < 2*res.Mean[0] {
		t.Errorf("stream 1 peak %.2f vs mean %.2f — no zig-zag", res.Peak[0], res.Mean[0])
	}
	// "the reduced delay for Stream 4 is consistent with Figure 8".
	if res.Mean[3] >= res.Mean[0] {
		t.Errorf("stream 4 mean delay %.2f not below stream 1's %.2f", res.Mean[3], res.Mean[0])
	}
	// Delay-jitter (the third QoS bound) follows the same ordering: the
	// rate-matched stream 4 is the smoothest.
	if res.Jitter[3] >= res.Jitter[0] {
		t.Errorf("stream 4 jitter %.3f not below stream 1's %.3f", res.Jitter[3], res.Jitter[0])
	}
	for i, j := range res.Jitter {
		if j < 0 {
			t.Errorf("stream %d negative jitter %v", i+1, j)
		}
	}
	if res.Sent != res.Expected || res.Expected != 4*12000 {
		t.Errorf("incomplete run: sent %d of expected %d", res.Sent, res.Expected)
	}
}

func TestFig10Aggregation(t *testing.T) {
	res, err := Fig10(Fig10Config{StreamletsPer: 20, FramesPerSlot: 6000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
	// Slot aggregates follow 2/2/4/8.
	want := []float64{2, 2, 4, 8}
	for i, w := range want {
		if math.Abs(res.SlotMBps[i]-w)/w > 0.15 {
			t.Errorf("slot %d = %.2f MB/s, want ≈%.1f", i+1, res.SlotMBps[i], w)
		}
	}
	// Slots 1-3: single set; per-streamlet bandwidth = slot/20.
	for i := 0; i < 3; i++ {
		wantSl := want[i] / 20
		if math.Abs(res.StreamletMBps[i][0]-wantSl)/wantSl > 0.15 {
			t.Errorf("slot %d streamlet = %.4f MB/s, want ≈%.4f", i+1, res.StreamletMBps[i][0], wantSl)
		}
	}
	// Slot 4: two sets, set 1 double share (2/3 vs 1/3 of the slot).
	if len(res.SetShare[3]) != 2 {
		t.Fatalf("slot 4 sets = %d", len(res.SetShare[3]))
	}
	if math.Abs(res.SetShare[3][0]-2.0/3) > 0.03 || math.Abs(res.SetShare[3][1]-1.0/3) > 0.03 {
		t.Errorf("slot 4 set shares = %v, want ≈[0.67 0.33]", res.SetShare[3])
	}
	// Per-streamlet: set 1 streamlets get double set 2's.
	r := res.StreamletMBps[3][0] / res.StreamletMBps[3][1]
	if math.Abs(r-2.0) > 0.15 {
		t.Errorf("slot 4 per-streamlet ratio = %.2f, want ≈2", r)
	}
	if res.Sent != res.Expected || res.Expected != 4*6000 {
		t.Errorf("incomplete run: sent %d of expected %d", res.Sent, res.Expected)
	}
}

func TestSec52OperatingPoints(t *testing.T) {
	rows, err := Sec52()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatThroughput(rows))
	byName := func(substr string) ThroughputRow {
		for _, r := range rows {
			if strings.Contains(r.System, substr) {
				return r
			}
		}
		t.Fatalf("row %q missing", substr)
		return ThroughputRow{}
	}
	// §5.2 headline numbers.
	lc := byName("line-card")
	if lc.PacketsPerS < 7.4e6 || lc.PacketsPerS > 7.8e6 {
		t.Errorf("line-card = %.2fM pps, want ≈7.6M", lc.PacketsPerS/1e6)
	}
	if got := int(byName("none").PacketsPerS); got != 469483 {
		t.Errorf("endsystem = %d pps, want 469483", got)
	}
	if got := int(byName("pio").PacketsPerS); got != 299065 {
		t.Errorf("endsystem+PIO = %d pps, want 299065", got)
	}
	// Ordering claims: the hardware line-card beats every software
	// router; the endsystem with PIO is comparable to Click (within 2x
	// either way, per "this is comparable to the performance of the click
	// router").
	click := byName("Click modular")
	if lc.PacketsPerS < 10*click.PacketsPerS {
		t.Errorf("line-card %.0f not ≫ Click %.0f", lc.PacketsPerS, click.PacketsPerS)
	}
	pio := byName("pio")
	if r := pio.PacketsPerS / click.PacketsPerS; r < 0.5 || r > 2 {
		t.Errorf("endsystem+PIO/Click = %.2f, want comparable", r)
	}
}

func TestLineCardRatesScale(t *testing.T) {
	rows, err := LineCardRates()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Block frame rate at N slots ≈ N × decision rate.
	for i := 0; i < len(rows); i += 2 {
		n := []int{4, 8, 16, 32}[i/2]
		if math.Abs(rows[i+1].PacketsPerS/rows[i].PacketsPerS-float64(n)) > 1e-6 {
			t.Errorf("N=%d: block/decision ratio = %v", n, rows[i+1].PacketsPerS/rows[i].PacketsPerS)
		}
	}
}

func TestSec41Latency(t *testing.T) {
	rows, err := Sec41(32, 2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatLatency(rows))
	var measured, reference int
	for _, r := range rows {
		if r.Reference {
			reference++
			continue
		}
		measured++
		if r.PerDecisionNs <= 0 {
			t.Errorf("%s: non-positive latency", r.Scheduler)
		}
		// A modern host runs these in well under the paper's 50µs.
		if r.PerDecisionNs > 50000 {
			t.Errorf("%s: %v ns per decision — implausibly slow", r.Scheduler, r.PerDecisionNs)
		}
	}
	if measured < 6 || reference != 4 {
		t.Fatalf("rows: %d measured, %d reference", measured, reference)
	}
	if _, err := Sec41(1, 10); err == nil {
		t.Error("accepted 1 stream")
	}
}

func TestAblationShuffleWinsUnderUpdates(t *testing.T) {
	rows, err := Ablation([]int{32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatAblation(rows))
	var shuffle AblationRow
	others := []AblationRow{}
	for _, r := range rows {
		if r.Architecture == "recirculating-shuffle" {
			shuffle = r
		} else {
			others = append(others, r)
		}
	}
	if len(others) != 3 {
		t.Fatalf("expected 3 competing architectures, got %d", len(others))
	}
	for _, o := range others {
		if o.Comparators <= shuffle.Comparators {
			t.Errorf("%s replicates %d comparators, not more than shuffle's %d",
				o.Architecture, o.Comparators, shuffle.Comparators)
		}
		if o.CyclesWindow <= shuffle.CyclesWindow {
			t.Errorf("%s window cycles %d not worse than shuffle's %d",
				o.Architecture, o.CyclesWindow, shuffle.CyclesWindow)
		}
		if o.CyclesFair > shuffle.CyclesFair {
			t.Errorf("%s fair cycles %d worse than shuffle's %d — the trade-off should favor them without updates",
				o.Architecture, o.CyclesFair, shuffle.CyclesFair)
		}
	}
}

func TestFig1Framework(t *testing.T) {
	rows, err := Fig1(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFig1(rows))
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		// The paper's feasibility claims, as a function of the sweep:
		// 1500B at 1G and 10G always met with block amortization;
		// 64B at 10G out of reach for WR.
		if r.FrameBytes == 1500 && !r.MeetsBA {
			t.Errorf("N=%d 1500B@%vG: BA should meet wire speed", r.Slots, r.LinkGbps)
		}
		if r.FrameBytes == 64 && r.LinkGbps == 10 && r.MeetsWR {
			t.Errorf("N=%d 64B@10G: WR should NOT meet wire speed", r.Slots)
		}
		if r.FrameBytes == 64 && r.LinkGbps == 1 && !r.MeetsBA {
			t.Errorf("N=%d 64B@1G: BA should meet wire speed", r.Slots)
		}
	}
}
