package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/decision"
	"repro/internal/fpga"
	"repro/internal/regblock"
	"repro/internal/streamlet"
	"repro/internal/traffic"
)

// ExtensionRow is one design point of the §6 extensions ablation:
// compute-ahead Register Base blocks, the Virtex-II device with hard
// multipliers, and the exact-sort steering schedule.
type ExtensionRow struct {
	Label         string
	Slots         int
	Device        fpga.Device
	ComputeAhead  bool
	ExactSort     bool
	CyclesPerDec  int
	ClockMHz      float64
	DecisionsPerS float64
	FramesPerS    float64 // with block transactions
}

// Extensions sweeps the §6 microarchitectural extensions over the given
// slot counts (defaults 4..32), always in the BA configuration.
func Extensions(slotCounts []int) ([]ExtensionRow, error) {
	if len(slotCounts) == 0 {
		slotCounts = []int{4, 8, 16, 32}
	}
	variants := []struct {
		label string
		dev   fpga.Device
		ahead bool
		exact bool
	}{
		{"baseline (Virtex-I)", fpga.VirtexI, false, false},
		{"compute-ahead", fpga.VirtexI, true, false},
		{"exact-sort block", fpga.VirtexI, false, true},
		{"Virtex-II", fpga.VirtexII, false, false},
		{"Virtex-II + compute-ahead", fpga.VirtexII, true, false},
	}
	var rows []ExtensionRow
	for _, n := range slotCounts {
		for _, v := range variants {
			sched, err := core.New(core.Config{
				Slots:        n,
				Routing:      core.BlockRouting,
				ComputeAhead: v.ahead,
				ExactSort:    v.exact,
			})
			if err != nil {
				return nil, err
			}
			mhz, err := fpga.ClockMHz(n, fpga.BA, v.dev)
			if err != nil {
				return nil, err
			}
			cycles := sched.CyclesPerDecision()
			rows = append(rows, ExtensionRow{
				Label:         v.label,
				Slots:         n,
				Device:        v.dev,
				ComputeAhead:  v.ahead,
				ExactSort:     v.exact,
				CyclesPerDec:  cycles,
				ClockMHz:      mhz,
				DecisionsPerS: fpga.DecisionRate(mhz, cycles),
				FramesPerS:    fpga.PacketRate(mhz, cycles, n),
			})
		}
		// Pipelined fair-queuing (Table 1's concurrency row): the TagOnly
		// mapping has no winner-to-priority feedback, so successive
		// decisions pipeline down to the slowest FSM stage.
		tag, err := core.New(core.Config{Slots: n, Routing: core.BlockRouting, Mode: decision.TagOnly})
		if err != nil {
			return nil, err
		}
		mhz, err := fpga.ClockMHz(n, fpga.BA, fpga.VirtexI)
		if err != nil {
			return nil, err
		}
		ii := tag.PipelinedInitiationInterval()
		rows = append(rows, ExtensionRow{
			Label:         "pipelined fair-queuing",
			Slots:         n,
			Device:        fpga.VirtexI,
			CyclesPerDec:  ii,
			ClockMHz:      mhz,
			DecisionsPerS: fpga.DecisionRate(mhz, ii),
			FramesPerS:    fpga.PacketRate(mhz, ii, n),
		})
	}
	return rows, nil
}

// FormatExtensions renders the ablation table.
func FormatExtensions(rows []ExtensionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %12s %10s %14s %14s\n",
		"Variant", "Slots", "Clocks/dec", "MHz", "Mdecisions/s", "Mframes/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %6d %12d %10.0f %14.2f %14.2f\n",
			r.Label, r.Slots, r.CyclesPerDec, r.ClockMHz, r.DecisionsPerS/1e6, r.FramesPerS/1e6)
	}
	return b.String()
}

// ScaleResult reports the §6 "system with hundreds of streams"
// demonstration: a large direct design plus streamlet aggregation carrying
// many streams per slot, validated functionally.
type ScaleResult struct {
	DirectSlots       int
	AggregatedStreams int
	Cycles            uint64
	Services          uint64
	PerSlotFairness   float64 // max/min win ratio across slots (1 = perfect)
}

// Scale runs a large configuration: `slots` direct stream-slots (beyond the
// prototype's 32, exercising the extrapolated design space) each carrying
// `perSlot` aggregated streamlets, for the given number of decision cycles.
func Scale(slots, perSlot, cycles int) (*ScaleResult, error) {
	if slots < 2 || perSlot < 1 || cycles < slots {
		return nil, fmt.Errorf("experiments: bad scale config (%d slots, %d per slot, %d cycles)", slots, perSlot, cycles)
	}
	sched, err := core.New(core.Config{Slots: slots, Routing: core.WinnerOnly})
	if err != nil {
		return nil, err
	}
	for i := 0; i < slots; i++ {
		srcs := make([]regblock.HeadSource, perSlot)
		for k := range srcs {
			srcs[k] = &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		}
		set, err := streamlet.NewSet(1, srcs)
		if err != nil {
			return nil, err
		}
		agg, err := streamlet.New(set)
		if err != nil {
			return nil, err
		}
		if err := sched.Admit(i, attr.Spec{Class: attr.EDF, Period: uint16(slots)}, agg); err != nil {
			return nil, err
		}
	}
	if err := sched.Start(); err != nil {
		return nil, err
	}
	sched.RunFor(cycles)

	var minW, maxW uint64
	for i := 0; i < slots; i++ {
		w := sched.SlotCounters(i).Wins
		if i == 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	fair := 0.0
	if minW > 0 {
		fair = float64(maxW) / float64(minW)
	}
	return &ScaleResult{
		DirectSlots:       slots,
		AggregatedStreams: slots * perSlot,
		Cycles:            sched.Decisions(),
		Services:          sched.Totals().Services,
		PerSlotFairness:   fair,
	}, nil
}
