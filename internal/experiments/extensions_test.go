package experiments

import (
	"strings"
	"testing"
)

func TestExtensionsAblation(t *testing.T) {
	rows, err := Extensions([]int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatExtensions(rows))
	byLabel := func(n int, label string) ExtensionRow {
		for _, r := range rows {
			if r.Slots == n && r.Label == label {
				return r
			}
		}
		t.Fatalf("row %d/%s missing", n, label)
		return ExtensionRow{}
	}
	for _, n := range []int{4, 32} {
		base := byLabel(n, "baseline (Virtex-I)")
		ahead := byLabel(n, "compute-ahead")
		exact := byLabel(n, "exact-sort block")
		v2 := byLabel(n, "Virtex-II")
		both := byLabel(n, "Virtex-II + compute-ahead")

		// Compute-ahead saves exactly the PRIORITY_UPDATE clock.
		if ahead.CyclesPerDec != base.CyclesPerDec-1 {
			t.Errorf("N=%d: compute-ahead clocks %d, want %d", n, ahead.CyclesPerDec, base.CyclesPerDec-1)
		}
		if ahead.DecisionsPerS <= base.DecisionsPerS {
			t.Errorf("N=%d: compute-ahead not faster", n)
		}
		// Exact sort costs extra passes.
		if exact.CyclesPerDec <= base.CyclesPerDec {
			t.Errorf("N=%d: exact sort should cost extra clocks", n)
		}
		// Virtex-II raises the clock without changing the timeline.
		if v2.CyclesPerDec != base.CyclesPerDec || v2.ClockMHz <= base.ClockMHz {
			t.Errorf("N=%d: Virtex-II row inconsistent", n)
		}
		// Stacked extensions are the fastest.
		if both.DecisionsPerS <= v2.DecisionsPerS || both.DecisionsPerS <= ahead.DecisionsPerS {
			t.Errorf("N=%d: stacked extensions not fastest", n)
		}
		// Frame rate scales with the block.
		if base.FramesPerS != base.DecisionsPerS*float64(n) {
			t.Errorf("N=%d: frame rate not block-scaled", n)
		}
	}
	if !strings.Contains(FormatExtensions(rows), "compute-ahead") {
		t.Error("format incomplete")
	}
}

func TestExtensionsValidation(t *testing.T) {
	if _, err := Extensions([]int{3}); err == nil {
		t.Error("accepted non-power-of-two slots")
	}
}

func TestScaleHundredsOfStreams(t *testing.T) {
	// §6: "construct, demonstrate and run a system with hundreds of
	// streams" — 64 slots × 8 streamlets = 512 streams.
	res, err := Scale(64, 8, 6400)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregatedStreams != 512 {
		t.Fatalf("streams = %d", res.AggregatedStreams)
	}
	if res.Services != 6400 {
		t.Fatalf("services = %d, want one per WR cycle", res.Services)
	}
	// Equal periods: wins must be near-uniform across slots.
	if res.PerSlotFairness == 0 || res.PerSlotFairness > 1.25 {
		t.Fatalf("fairness ratio = %v, want ≈1", res.PerSlotFairness)
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := Scale(1, 1, 10); err == nil {
		t.Error("accepted 1 slot")
	}
	if _, err := Scale(4, 0, 10); err == nil {
		t.Error("accepted 0 streamlets")
	}
	if _, err := Scale(4, 1, 2); err == nil {
		t.Error("accepted too few cycles")
	}
}
