package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fpga"
)

// Fig7Row is one point of Figure 7: area and clock rate of one design
// variant at one stream-slot count.
type Fig7Row struct {
	Slots     int
	Routing   fpga.Routing
	Slices    int
	CLBs      int
	ClockMHz  float64
	FitsChip  bool
	Util      float64 // fraction of the Virtex-1000
	SortCycle int     // network passes per decision (log2 N)
}

// Fig7 regenerates Figure 7's area/clock-rate characteristics for the BA
// and WR configurations across the synthesized design space (4–32 slots on
// the Virtex-I prototype; pass larger powers of two for the extrapolated
// exploration).
func Fig7(slotCounts []int, dev fpga.Device) ([]Fig7Row, error) {
	if len(slotCounts) == 0 {
		slotCounts = []int{4, 8, 16, 32}
	}
	var rows []Fig7Row
	for _, routing := range []fpga.Routing{fpga.BA, fpga.WR} {
		for _, n := range slotCounts {
			area, err := fpga.EstimateArea(n, routing)
			if err != nil {
				return nil, err
			}
			mhz, err := fpga.ClockMHz(n, routing, dev)
			if err != nil {
				return nil, err
			}
			k := 0
			for 1<<k < n {
				k++
			}
			rows = append(rows, Fig7Row{
				Slots:     n,
				Routing:   routing,
				Slices:    area.TotalSlices(),
				CLBs:      area.CLBs(),
				ClockMHz:  mhz,
				FitsChip:  area.FitsVirtex1000(),
				Util:      area.Utilization(),
				SortCycle: k,
			})
		}
	}
	return rows, nil
}

// FormatFig7 renders the rows as the paper-style table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %8s %6s %10s %6s %10s %10s\n",
		"Cfg", "Slots", "Slices", "CLBs", "Clock MHz", "Sort", "Fits V1000", "Util")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %-6d %8d %6d %10.1f %6d %10v %9.1f%%\n",
			r.Routing, r.Slots, r.Slices, r.CLBs, r.ClockMHz, r.SortCycle, r.FitsChip, r.Util*100)
	}
	return b.String()
}
