package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/endsystem"
	"repro/internal/regblock"
	"repro/internal/stats"
	"repro/internal/streamlet"
	"repro/internal/traffic"
)

// Fig8Result holds the fair-bandwidth-allocation run of Figure 8: four
// streams allocated 1:1:2:4 (2/2/4/8 MB/s of a 16 MB/s budget), 64000
// frames per queue, no socket calls.
type Fig8Result struct {
	// Bandwidth is the per-stream MB/s series over the run.
	Bandwidth [][]stats.Point
	// MeanActive is the per-stream mean MB/s while all four streams were
	// still backlogged (the figure's plateau).
	MeanActive []float64
	// Targets are the configured allocations.
	Targets []float64
	CycleNs float64
	Cycles  uint64
	// Sent/Expected account for every configured frame; RunAllocation's
	// truncation guard turns into an error before a partial figure can be
	// mistaken for the real one.
	Sent, Expected uint64
}

// Fig8Config parameterizes the run; zero values take the paper's setup.
type Fig8Config struct {
	RatesMBps     []float64
	FramesPerSlot uint64
}

// Fig8 runs the fair-bandwidth experiment.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.RatesMBps == nil {
		cfg.RatesMBps = []float64{2, 2, 4, 8}
	}
	if cfg.FramesPerSlot == 0 {
		cfg.FramesPerSlot = 64000
	}
	res, err := endsystem.RunAllocation(endsystem.AllocationConfig{
		RatesMBps:     cfg.RatesMBps,
		FramesPerSlot: cfg.FramesPerSlot,
		MeterWindows:  128,
	})
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("experiments: Fig8 truncated: sent %d of %d frames in %d cycles",
			res.Sent, res.Expected, res.Cycles)
	}
	n := len(cfg.RatesMBps)
	out := &Fig8Result{
		Targets:  cfg.RatesMBps,
		CycleNs:  res.CycleNs,
		Cycles:   res.Cycles,
		Sent:     res.Sent,
		Expected: res.Expected,
	}
	for i := 0; i < n; i++ {
		out.Bandwidth = append(out.Bandwidth, res.TE.Bandwidth(i))
	}
	// Plateau: the first fifth of the windows, before high-rate queues
	// drain.
	for i := 0; i < n; i++ {
		pts := out.Bandwidth[i]
		k := len(pts) / 5
		if k == 0 {
			k = len(pts)
		}
		var sum float64
		for _, p := range pts[:k] {
			sum += p.Y
		}
		out.MeanActive = append(out.MeanActive, sum/float64(k))
	}
	return out, nil
}

// Format renders the Figure 8 summary.
func (r *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "Stream", "Target MB/s", "Measured MB/s")
	for i := range r.Targets {
		fmt.Fprintf(&b, "Stream %-2d %11.1f %14.2f\n", i+1, r.Targets[i], r.MeanActive[i])
	}
	fmt.Fprintf(&b, "(decision cycle %.1f µs, %d cycles)\n", r.CycleNs/1e3, r.Cycles)
	return b.String()
}

// Fig9Result holds the queuing-delay run of Figure 9: the Figure 8 workload
// driven by the bursty generator (multi-ms inter-burst delay after each
// 4000-frame burst), producing the zig-zag delay curves.
type Fig9Result struct {
	// Delays is the per-stream (packet index, delay ms) series.
	Delays [][]stats.Point
	// Mean, Peak and Jitter are per-stream delay statistics (ms).
	Mean, Peak, Jitter []float64
	CycleNs            float64
	// Sent/Expected account for every configured frame (see Fig8Result).
	Sent, Expected uint64
}

// Fig9Config parameterizes the run; zero values take the paper's setup.
type Fig9Config struct {
	RatesMBps        []float64
	FramesPerSlot    uint64
	BurstFrames      uint64
	InterBurstCycles uint64
}

// Fig9 runs the queuing-delay experiment.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	if cfg.RatesMBps == nil {
		cfg.RatesMBps = []float64{2, 2, 4, 8}
	}
	if cfg.FramesPerSlot == 0 {
		cfg.FramesPerSlot = 64000
	}
	if cfg.BurstFrames == 0 {
		cfg.BurstFrames = 4000
	}
	if cfg.InterBurstCycles == 0 {
		cfg.InterBurstCycles = 8000
	}
	res, err := endsystem.RunAllocation(endsystem.AllocationConfig{
		RatesMBps:        cfg.RatesMBps,
		FramesPerSlot:    cfg.FramesPerSlot,
		Bursty:           true,
		BurstFrames:      cfg.BurstFrames,
		InterBurstCycles: cfg.InterBurstCycles,
	})
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("experiments: Fig9 truncated: sent %d of %d frames in %d cycles",
			res.Sent, res.Expected, res.Cycles)
	}
	out := &Fig9Result{CycleNs: res.CycleNs, Sent: res.Sent, Expected: res.Expected}
	for i := range cfg.RatesMBps {
		out.Delays = append(out.Delays, res.TE.Delays(i))
		mean, peak := res.TE.DelayStats(i)
		out.Mean = append(out.Mean, mean)
		out.Peak = append(out.Peak, peak)
		out.Jitter = append(out.Jitter, res.TE.Jitter(i))
	}
	return out, nil
}

// Format renders the Figure 9 summary.
func (r *Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %10s\n", "Stream", "Mean delay ms", "Peak delay ms", "Jitter ms", "Packets")
	for i := range r.Mean {
		fmt.Fprintf(&b, "Stream %-2d %13.2f %14.2f %12.3f %10d\n",
			i+1, r.Mean[i], r.Peak[i], r.Jitter[i], len(r.Delays[i]))
	}
	return b.String()
}

// Fig10Result holds the streamlet-aggregation run of Figure 10: 100
// streamlets bound to each stream-slot, slots allocated 2/2/4/8 MB/s,
// slot 4 carrying two streamlet sets with set 1 at double set 2's
// bandwidth.
type Fig10Result struct {
	// SlotMBps is each slot's aggregate bandwidth (plateau mean).
	SlotMBps []float64
	// StreamletMBps[slot][set] is the mean per-streamlet bandwidth of that
	// set (every streamlet in a set receives an equal share).
	StreamletMBps [][]float64
	// SetShare[slot][set] is the fraction of the slot's bytes each set
	// received.
	SetShare [][]float64
	CycleNs  float64
	// Sent/Expected account for every configured frame (see Fig8Result).
	Sent, Expected uint64
}

// Fig10Config parameterizes the run.
type Fig10Config struct {
	RatesMBps     []float64
	StreamletsPer int    // streamlets per slot (paper: 100)
	FramesPerSlot uint64 // frames transferred per slot
}

// Fig10 runs the aggregation experiment: slots 1–3 carry one 100-streamlet
// set each; the last slot carries two sets (weight 2:1).
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	if cfg.RatesMBps == nil {
		cfg.RatesMBps = []float64{2, 2, 4, 8}
	}
	if cfg.StreamletsPer == 0 {
		cfg.StreamletsPer = 100
	}
	if cfg.FramesPerSlot == 0 {
		cfg.FramesPerSlot = 16000
	}
	n := len(cfg.RatesMBps)

	backlogged := func(count int) []regblock.HeadSource {
		srcs := make([]regblock.HeadSource, count)
		for i := range srcs {
			srcs[i] = &traffic.Periodic{Gap: 1, Backlogged: true}
		}
		return srcs
	}

	aggs := make([]*streamlet.Aggregator, n)
	sources := make([]regblock.HeadSource, n)
	for i := 0; i < n; i++ {
		var sets []*streamlet.Set
		if i == n-1 {
			// Slot 4: two sets, set 1 with double bandwidth.
			s1, err := streamlet.NewSet(2, backlogged(cfg.StreamletsPer/2))
			if err != nil {
				return nil, err
			}
			s2, err := streamlet.NewSet(1, backlogged(cfg.StreamletsPer-cfg.StreamletsPer/2))
			if err != nil {
				return nil, err
			}
			sets = []*streamlet.Set{s1, s2}
		} else {
			s, err := streamlet.NewSet(1, backlogged(cfg.StreamletsPer))
			if err != nil {
				return nil, err
			}
			sets = []*streamlet.Set{s}
		}
		agg, err := streamlet.New(sets...)
		if err != nil {
			return nil, err
		}
		aggs[i] = agg
		sources[i] = agg
	}

	frameBytes := 1000
	res, err := endsystem.RunAllocation(endsystem.AllocationConfig{
		RatesMBps:     cfg.RatesMBps,
		FrameBytes:    frameBytes,
		FramesPerSlot: cfg.FramesPerSlot,
		Sources:       sources,
		Observer: func(slot int, tx core.Transmission, _ float64) {
			// Charge the transmitted bytes to the streamlet that
			// supplied this head (FIFO within the aggregator).
			if _, _, err := aggs[slot].OnTransmit(frameBytes); err != nil {
				panic(err) // aggregator/scheduler head accounting desynchronized
			}
		},
	})
	if err != nil {
		return nil, err
	}

	if res.Truncated {
		return nil, fmt.Errorf("experiments: Fig10 truncated: sent %d of %d frames in %d cycles",
			res.Sent, res.Expected, res.Cycles)
	}
	runSeconds := float64(res.Cycles) * res.CycleNs / 1e9
	out := &Fig10Result{CycleNs: res.CycleNs, Sent: res.Sent, Expected: res.Expected}
	for i := 0; i < n; i++ {
		out.SlotMBps = append(out.SlotMBps, res.TE.MeanMBps(i))
		var perSet []float64
		var shares []float64
		var slotBytes float64
		setBytes := make([]float64, aggs[i].Sets())
		for s := 0; s < aggs[i].Sets(); s++ {
			set := aggs[i].Set(s)
			for k := 0; k < set.Size(); k++ {
				setBytes[s] += float64(set.Streamlet(k).Bytes)
			}
			slotBytes += setBytes[s]
		}
		for s := 0; s < aggs[i].Sets(); s++ {
			set := aggs[i].Set(s)
			perStreamlet := setBytes[s] / float64(set.Size()) / runSeconds / 1e6
			perSet = append(perSet, perStreamlet)
			if slotBytes > 0 {
				shares = append(shares, setBytes[s]/slotBytes)
			} else {
				shares = append(shares, 0)
			}
		}
		out.StreamletMBps = append(out.StreamletMBps, perSet)
		out.SetShare = append(out.SetShare, shares)
	}
	return out, nil
}

// Format renders the Figure 10 summary.
func (r *Fig10Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %22s %12s\n", "Slot", "Slot MB/s", "Streamlet MB/s (sets)", "Set shares")
	for i := range r.SlotMBps {
		var sl, sh []string
		for s := range r.StreamletMBps[i] {
			sl = append(sl, fmt.Sprintf("%.4f", r.StreamletMBps[i][s]))
			sh = append(sh, fmt.Sprintf("%.2f", r.SetShare[i][s]))
		}
		fmt.Fprintf(&b, "Slot %-3d %12.2f %22s %12s\n",
			i+1, r.SlotMBps[i], strings.Join(sl, " / "), strings.Join(sh, " / "))
	}
	return b.String()
}
