package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/fairqueue"
	"repro/internal/regblock"
)

// GSRRow summarizes one line-card architecture's behaviour under the §5.2
// comparison scenario: 32 flows with 1:…:4 weight spread, one flow
// misbehaving at 8x its share, on a congested port.
type GSRRow struct {
	System string
	// Queues is the per-port queue count the architecture provides.
	Queues int
	// HeavyShare is the service share the misbehaving flow captured
	// (its fair share is its weight over the total).
	HeavyShare float64
	// FairShare is what the flow was entitled to.
	FairShare float64
	// VictimLossPct is the drop/miss rate suffered by the well-behaved
	// flows that share a queue (or slot) with the misbehaving one.
	VictimLossPct float64
	Note          string
}

// GSRComparison reproduces §5.2's line-card contrast quantitatively:
//
//   - ShareStreams: 32 per-flow queues, every flow its own stream-slot
//     with an EDF request period encoding its share — the misbehaving
//     flow's excess stays in its own queue.
//   - GSR-style: 8 DRR queues with RED, so 4 flows share each queue — the
//     misbehaving flow's backlog inflicts RED drops on its queue-mates.
//   - Teracross-style: 4 service classes, FCFS within a class, no per-flow
//     queuing at all — 8 flows share each class queue.
//
// The scenario runs `cycles` decision cycles with every flow offering its
// fair share except flow 0, which offers 8x.
func GSRComparison(cycles int) ([]GSRRow, error) {
	if cycles < 1000 {
		return nil, fmt.Errorf("experiments: need ≥1000 cycles, got %d", cycles)
	}
	const flows = 32
	weights := make([]float64, flows)
	var totalW float64
	for i := range weights {
		weights[i] = float64(1 + i%4)
		totalW += weights[i]
	}
	// Offered load per cycle per flow: fair share, except flow 0 at 8x.
	offered := func(i int) float64 {
		s := weights[i] / totalW
		if i == 0 {
			return 8 * s
		}
		return s
	}

	var rows []GSRRow

	// --- ShareStreams: per-flow stream-slots, EDF periods ∝ 1/weight.
	ss, err := runShareStreamsGSR(flows, weights, offered, cycles)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ss)

	// --- GSR-style: 8 DRR queues + RED, 4 flows per queue.
	gsr, err := runDRRREDGSR(flows, 8, weights, offered, cycles)
	if err != nil {
		return nil, err
	}
	gsr.System = "GSR-style line-card (8 queues, DRR+RED)"
	rows = append(rows, gsr)

	// --- Teracross-style: 4 class queues, FCFS within class (DRR with
	// one queue per class and equal quantum behaves as class-FCFS here).
	tc, err := runDRRREDGSR(flows, 4, weights, offered, cycles)
	if err != nil {
		return nil, err
	}
	tc.System = "Teracross-style (4 service classes, no per-flow queuing)"
	tc.Note = "class FCFS; victims share fate with the hog"
	rows = append(rows, tc)

	return rows, nil
}

// runShareStreamsGSR drives the cycle-accurate scheduler with per-flow
// slots.
func runShareStreamsGSR(flows int, weights []float64, offered func(int) float64, cycles int) (GSRRow, error) {
	sched, err := core.New(core.Config{Slots: flows, Routing: core.WinnerOnly})
	if err != nil {
		return GSRRow{}, err
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	srcs := make([]*paced, flows)
	for i := 0; i < flows; i++ {
		// Period encodes the fair share; the misbehaving flow's extra
		// offered load backs up in its own queue.
		period := uint16(totalW/weights[i] + 0.5)
		srcs[i] = &paced{rate: offered(i)}
		if err := sched.Admit(i, attr.Spec{Class: attr.EDF, Period: period}, srcs[i]); err != nil {
			return GSRRow{}, err
		}
	}
	if err := sched.Start(); err != nil {
		return GSRRow{}, err
	}
	sched.RunFor(cycles)

	heavy := float64(sched.SlotCounters(0).Services) / float64(cycles)
	fair := weights[0] / totalW
	// Victims: the other flows — they have their own queues, so their
	// loss is only what EDF could not serve of their entitled share.
	var victimOffered, victimServed float64
	for i := 1; i < flows; i++ {
		victimOffered += float64(srcs[i].generated)
		victimServed += float64(sched.SlotCounters(i).Services)
	}
	loss := 0.0
	if victimOffered > 0 {
		loss = 100 * (1 - victimServed/victimOffered)
		if loss < 0 {
			loss = 0
		}
	}
	return GSRRow{
		System:        "ShareStreams (32 per-flow queues, DWCS/EDF)",
		Queues:        flows,
		HeavyShare:    heavy,
		FairShare:     fair,
		VictimLossPct: loss,
		Note:          "hog isolated in its own stream-slot",
	}, nil
}

// runDRRREDGSR drives a DRR scheduler with `queues` queues, flows hashed
// onto queues round-robin, RED at each queue.
func runDRRREDGSR(flows, queues int, weights []float64, offered func(int) float64, cycles int) (GSRRow, error) {
	qWeights := make([]float64, queues)
	for i := 0; i < flows; i++ {
		qWeights[i%queues] += weights[i]
	}
	drr, err := fairqueue.NewDRR(qWeights, 1000)
	if err != nil {
		return GSRRow{}, err
	}
	reds := make([]*fairqueue.RED, queues)
	for q := range reds {
		r, err := fairqueue.NewRED(8, 24, 0.2, 0.2, int64(q+1))
		if err != nil {
			return GSRRow{}, err
		}
		reds[q] = r
	}
	qLen := make([]int, queues)

	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	acc := make([]float64, flows) // fractional offered-load accumulators
	served := make([]float64, flows)
	dropped := make([]float64, flows)
	genCount := make([]float64, flows)
	flowOfPacket := make([]map[uint64]int, queues)
	for q := range flowOfPacket {
		flowOfPacket[q] = map[uint64]int{}
	}
	var seq uint64

	for c := 0; c < cycles; c++ {
		// Arrivals.
		for i := 0; i < flows; i++ {
			acc[i] += offered(i)
			for acc[i] >= 1 {
				acc[i]--
				genCount[i]++
				q := i % queues
				if reds[q].OnArrival(qLen[q]) {
					dropped[i]++
					continue
				}
				seq++
				flowOfPacket[q][seq] = i
				if err := drr.Enqueue(fairqueue.Packet{Stream: q, Size: 100, Arrival: seq}); err != nil {
					return GSRRow{}, err
				}
				qLen[q]++
			}
		}
		// One service per cycle.
		if p, ok := drr.Dequeue(); ok {
			q := p.Stream
			qLen[q]--
			i := flowOfPacket[q][p.Arrival]
			delete(flowOfPacket[q], p.Arrival)
			served[i]++
		}
	}

	heavy := served[0] / float64(cycles)
	fair := weights[0] / totalW
	var victimGen, victimDrop float64
	for i := 1; i < flows; i++ {
		victimGen += genCount[i]
		victimDrop += dropped[i]
	}
	loss := 0.0
	if victimGen > 0 {
		loss = 100 * victimDrop / victimGen
	}
	return GSRRow{
		Queues:        queues,
		HeavyShare:    heavy,
		FairShare:     fair,
		VictimLossPct: loss,
		Note:          "hog's backlog RED-drops its queue-mates",
	}, nil
}

// paced is an arrival-rate-driven source: `rate` packets per decision
// cycle, fractional rates accumulated.
type paced struct {
	rate      float64
	acc       float64
	now       uint64
	generated uint64
	released  uint64
}

// Advance implements core.TimedSource.
func (p *paced) Advance(now uint64) {
	for p.now < now {
		p.now++
		p.acc += p.rate
	}
	if p.now == 0 && now == 0 && p.acc == 0 {
		p.acc = p.rate // release the first packet at t=0
	}
}

// NextHead implements regblock.HeadSource.
func (p *paced) NextHead() (regblock.Head, bool) {
	if p.acc < 1 {
		return regblock.Head{}, false
	}
	p.acc--
	p.generated++
	p.released++
	return regblock.Head{Arrival: p.now}, true
}

// FormatGSR renders the comparison.
func FormatGSR(rows []GSRRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %7s %12s %11s %12s  %s\n",
		"System", "Queues", "Hog share", "Fair share", "Victim loss", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-52s %7d %11.3f %11.3f %11.2f%%  %s\n",
			r.System, r.Queues, r.HeavyShare, r.FairShare, r.VictimLossPct, r.Note)
	}
	return b.String()
}
