package experiments

import (
	"testing"

	"repro/internal/fairqueue"
)

func TestGSRComparisonIsolation(t *testing.T) {
	rows, err := GSRComparison(20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatGSR(rows))
	ss, gsr, tc := rows[0], rows[1], rows[2]
	// Per-flow queuing pins the hog to its fair share…
	if ss.HeavyShare > ss.FairShare*1.2 {
		t.Errorf("ShareStreams hog captured %.3f of the link (fair %.3f)", ss.HeavyShare, ss.FairShare)
	}
	// …and the victims barely lose anything.
	if ss.VictimLossPct > 1.0 {
		t.Errorf("ShareStreams victims lost %.2f%%", ss.VictimLossPct)
	}
	// Coarser queuing lets the hog overshoot and hurts queue-mates.
	for _, r := range []GSRRow{gsr, tc} {
		if r.HeavyShare < 2*r.FairShare {
			t.Errorf("%s: hog share %.3f did not overshoot fair %.3f", r.System, r.HeavyShare, r.FairShare)
		}
		if r.VictimLossPct < 2 {
			t.Errorf("%s: victims lost only %.2f%%", r.System, r.VictimLossPct)
		}
	}
	// Fewer queues, worse isolation.
	if tc.VictimLossPct < gsr.VictimLossPct {
		t.Errorf("4-class victims (%.2f%%) better off than 8-queue victims (%.2f%%)",
			tc.VictimLossPct, gsr.VictimLossPct)
	}
}

func TestGSRComparisonValidation(t *testing.T) {
	if _, err := GSRComparison(10); err == nil {
		t.Error("accepted tiny cycle count")
	}
}

// TestFig8SharesMatchWFQReference cross-checks the Fig 8 EDF-period
// allocation against package fairqueue's WFQ with equivalent weights: two
// entirely different mechanisms (hardware deadline synthesis vs software
// virtual finish times) must converge to the same 1:1:2:4 shares.
func TestFig8SharesMatchWFQReference(t *testing.T) {
	res, err := Fig8(Fig8Config{FramesPerSlot: 6000})
	if err != nil {
		t.Fatal(err)
	}
	wfq, err := fairqueue.NewWFQ([]float64{2, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	served := make([]float64, 4)
	top := func() {
		for i := 0; i < 4; i++ {
			for k := 0; k < 4; k++ {
				if err := wfq.Enqueue(fairqueue.Packet{Stream: i, Size: 1000}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	top()
	const rounds = 16000
	for r := 0; r < rounds; r++ {
		p, ok := wfq.Dequeue()
		if !ok {
			t.Fatal("wfq idle")
		}
		served[p.Stream]++
		if r%4 == 3 {
			top()
		}
	}
	var totalHW, totalWFQ float64
	for i := 0; i < 4; i++ {
		totalHW += res.MeanActive[i]
		totalWFQ += served[i]
	}
	for i := 0; i < 4; i++ {
		hw := res.MeanActive[i] / totalHW
		sw := served[i] / totalWFQ
		if d := hw - sw; d > 0.02 || d < -0.02 {
			t.Errorf("stream %d: hardware share %.3f vs WFQ share %.3f", i+1, hw, sw)
		}
	}
}
