package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/attr"
	"repro/internal/click"
	"repro/internal/dwcs"
	"repro/internal/fairqueue"
	"repro/internal/fpga"
	"repro/internal/hier"
	"repro/internal/traffic"
)

// LatencyRow is one row of the §4.1 processor-resident scheduler latency
// comparison.
type LatencyRow struct {
	Scheduler string
	Streams   int
	// PerDecisionNs is the measured (this host) or quoted (paper)
	// per-decision latency.
	PerDecisionNs float64
	Reference     bool
	Note          string
}

// PaperLatencyRows quotes the §4.1 published measurements.
func PaperLatencyRows() []LatencyRow {
	return []LatencyRow{
		{Scheduler: "DWCS software (UltraSPARC 300MHz)", PerDecisionNs: 50000, Reference: true, Note: "West et al. [27]"},
		{Scheduler: "DWCS software (i960RD 66MHz)", PerDecisionNs: 67000, Reference: true, Note: "Krishnamurthy et al. [12]"},
		{Scheduler: "DRR (Pentium 233MHz, NetBSD)", PerDecisionNs: 35000, Reference: true, Note: "Decasper et al. [5]"},
		{Scheduler: "H-FSC (Pentium 200MHz)", PerDecisionNs: 8500, Reference: true, Note: "Stoica et al. [23], 7–10µs"},
	}
}

// Sec41 measures this host's software scheduler decision latencies (DWCS
// scan, WFQ, SFQ, DRR) at the given stream count and appends the paper's
// quoted numbers plus the packet-time budgets they must meet.
func Sec41(streams, iterations int) ([]LatencyRow, error) {
	if streams < 2 || iterations < 1 {
		return nil, fmt.Errorf("experiments: bad sec41 config (%d streams, %d iterations)", streams, iterations)
	}
	var rows []LatencyRow

	// DWCS software scan.
	sw, err := dwcs.New(streams)
	if err != nil {
		return nil, err
	}
	for i := 0; i < streams; i++ {
		spec := attr.Spec{Class: attr.WindowConstrained, Period: uint16(1 + i%7),
			Constraint: attr.Constraint{Num: uint8(i % 3), Den: uint8(3 + i%5)}}
		if err := sw.Admit(i, spec, &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}); err != nil {
			return nil, err
		}
	}
	sw.Start()
	start := time.Now() //sslint:allow walltime — Table 3 measures real per-decision latency on this host
	for i := 0; i < iterations; i++ {
		sw.RunCycle()
	}
	rows = append(rows, LatencyRow{
		Scheduler:     "DWCS software (this host, Go)",
		Streams:       streams,
		PerDecisionNs: float64(time.Since(start).Nanoseconds()) / float64(iterations), //sslint:allow walltime — §4.1 latency harness measures real per-decision wall time by design
		Note:          "O(N) scan + window update",
	})

	// Fair-queuing baselines.
	weights := make([]float64, streams)
	for i := range weights {
		weights[i] = float64(1 + i%4)
	}
	mkRows := []struct {
		name string
		s    fairqueue.Scheduler
	}{}
	if w, err := fairqueue.NewWFQ(weights); err == nil {
		mkRows = append(mkRows, struct {
			name string
			s    fairqueue.Scheduler
		}{"WFQ software (this host, Go)", w})
	}
	if s, err := fairqueue.NewSFQ(weights); err == nil {
		mkRows = append(mkRows, struct {
			name string
			s    fairqueue.Scheduler
		}{"SFQ software (this host, Go)", s})
	}
	if d, err := fairqueue.NewDRR(weights, 1500); err == nil {
		mkRows = append(mkRows, struct {
			name string
			s    fairqueue.Scheduler
		}{"DRR software (this host, Go)", d})
	}
	for _, mk := range mkRows {
		for i := 0; i < 2*streams; i++ {
			if err := mk.s.Enqueue(fairqueue.Packet{Stream: i % streams, Size: 1000}); err != nil {
				return nil, err
			}
		}
		start := time.Now() //sslint:allow walltime — Table 3 measures real per-dequeue latency on this host
		for i := 0; i < iterations; i++ {
			p, ok := mk.s.Dequeue()
			if !ok {
				return nil, fmt.Errorf("experiments: %s went idle", mk.s.Name())
			}
			if err := mk.s.Enqueue(p); err != nil {
				return nil, err
			}
		}
		rows = append(rows, LatencyRow{
			Scheduler:     mk.name,
			Streams:       streams,
			PerDecisionNs: float64(time.Since(start).Nanoseconds()) / float64(iterations), //sslint:allow walltime — §4.1 latency harness measures real per-decision wall time by design
			Note:          "dequeue+enqueue",
		})
	}

	// Hierarchical link sharing (the H-FSC comparator class): a two-tier
	// tree with the streams as leaves under weighted org classes.
	tree := hier.New()
	orgs := 4
	for o := 0; o < orgs; o++ {
		org := fmt.Sprintf("org%d", o)
		if _, err := tree.AddClass("root", org, float64(o+1)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < streams; i++ {
		leaf := fmt.Sprintf("leaf%d", i)
		if _, err := tree.AddClass(fmt.Sprintf("org%d", i%orgs), leaf, 1); err != nil {
			return nil, err
		}
		for k := 0; k < 2; k++ {
			if err := tree.Enqueue(leaf, 1000, uint64(k)); err != nil {
				return nil, err
			}
		}
	}
	start = time.Now() //sslint:allow walltime — Table 3 measures real hierarchy-dequeue latency on this host
	for i := 0; i < iterations; i++ {
		p, ok := tree.Dequeue()
		if !ok {
			return nil, fmt.Errorf("experiments: hierarchy went idle")
		}
		if err := tree.Enqueue(p.Class.Name(), p.Size, p.Arrival); err != nil {
			return nil, err
		}
	}
	rows = append(rows, LatencyRow{
		Scheduler:     "hierarchical WFQ, H-FSC-style (this host, Go)",
		Streams:       streams,
		PerDecisionNs: float64(time.Since(start).Nanoseconds()) / float64(iterations), //sslint:allow walltime — §4.1 latency harness measures real per-decision wall time by design
		Note:          fmt.Sprintf("%d-level tree walk", tree.Walks()),
	})

	// Click-style element graph (classifier -> queues -> SFQ -> sink): the
	// modular-router forwarding path per packet.
	router, err := click.NewRouter(8, true)
	if err != nil {
		return nil, err
	}
	start = time.Now() //sslint:allow walltime — Table 3 measures real router push/pull latency on this host
	for i := 0; i < iterations; i++ {
		router.In.Push(click.Packet{Flow: i % streams, Size: 64, Arrival: uint64(i)})
		router.Out.Run(1)
	}
	rows = append(rows, LatencyRow{
		Scheduler:     "Click-style element graph + SFQ (this host, Go)",
		Streams:       streams,
		PerDecisionNs: float64(time.Since(start).Nanoseconds()) / float64(iterations), //sslint:allow walltime — §4.1 latency harness measures real per-decision wall time by design
		Note:          "push/pull through 8-bucket SFQ",
	})

	rows = append(rows, PaperLatencyRows()...)
	return rows, nil
}

// FormatLatency renders the §4.1 comparison with the packet-time budgets.
func FormatLatency(rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %14s %-6s %s\n", "Scheduler", "ns/decision", "src", "note")
	for _, r := range rows {
		src := "model"
		if r.Reference {
			src = "paper"
		}
		fmt.Fprintf(&b, "%-42s %14.0f %-6s %s\n", r.Scheduler, r.PerDecisionNs, src, r.Note)
	}
	fmt.Fprintf(&b, "\nPacket-time budgets: 64B@1G %.0fns, 1500B@1G %.0fns, 64B@10G %.0fns, 1500B@10G %.0fns\n",
		fpga.PacketTimeSeconds(64, fpga.Gigabit)*1e9,
		fpga.PacketTimeSeconds(1500, fpga.Gigabit)*1e9,
		fpga.PacketTimeSeconds(64, fpga.TenGigabit)*1e9,
		fpga.PacketTimeSeconds(1500, fpga.TenGigabit)*1e9)
	return b.String()
}
