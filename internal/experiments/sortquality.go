package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/attr"
	"repro/internal/decision"
	"repro/internal/shuffle"
)

// SortQualityRow quantifies how sorted the paper's log₂N-pass block really
// is, against the exact bitonic schedule — an honest look at §4.3's "a
// sorted list of streams is obtained after log₂(N) cycles".
type SortQualityRow struct {
	Slots    int
	Schedule shuffle.Schedule
	Passes   int
	// FullySorted is the fraction of random inputs whose block came out
	// perfectly sorted.
	FullySorted float64
	// MeanInversions is the average number of out-of-order adjacent-rank
	// pairs per block (0 for a perfect sort).
	MeanInversions float64
	// ExtremesExact is the fraction with both the head (winner) and tail
	// (min-first circulation target) correct — provably 1.0 for every
	// schedule (see package shuffle tests).
	ExtremesExact float64
}

// SortQuality measures block orderedness over `trials` random inputs per
// design point, deterministic under the given seed.
func SortQuality(slotCounts []int, trials int, seed int64) ([]SortQualityRow, error) {
	if len(slotCounts) == 0 {
		slotCounts = []int{4, 8, 16, 32}
	}
	if trials < 1 {
		return nil, fmt.Errorf("experiments: %d trials", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []SortQualityRow
	for _, n := range slotCounts {
		for _, schedule := range []shuffle.Schedule{shuffle.PaperLogN, shuffle.Bitonic} {
			nw, err := shuffle.New(n, decision.DWCS, schedule)
			if err != nil {
				return nil, err
			}
			var sorted, extremes int
			var inversions int
			for tr := 0; tr < trials; tr++ {
				in := make([]attr.Attributes, n)
				for i := range in {
					in[i] = attr.Attributes{
						Deadline: attr.Time16(rng.Intn(1 << 14)),
						Arrival:  attr.Time16(rng.Intn(1 << 14)),
						Slot:     attr.SlotID(i),
						Valid:    true,
					}
				}
				// The trial's "current time" is the center of the sampled
				// field range: passing it as the RunAt reference packs keys
				// exactly as the scheduler's hot path would mid-run, so the
				// ablation prices the decision blocks, not key renormalization.
				res := nw.RunAt(in, 1<<13)
				inv := 0
				for i := 1; i < n; i++ {
					if decision.Less(decision.DWCS, res.Block[i], res.Block[i-1]) {
						inv++
					}
				}
				inversions += inv
				if inv == 0 {
					sorted++
				}
				// Reference extremes.
				min, max := in[0], in[0]
				for _, x := range in[1:] {
					if decision.Less(decision.DWCS, x, min) {
						min = x
					}
					if decision.Less(decision.DWCS, max, x) {
						max = x
					}
				}
				if res.Block[0].Slot == min.Slot && res.Block[n-1].Slot == max.Slot {
					extremes++
				}
			}
			rows = append(rows, SortQualityRow{
				Slots:          n,
				Schedule:       schedule,
				Passes:         nw.PassesPerCycle(),
				FullySorted:    float64(sorted) / float64(trials),
				MeanInversions: float64(inversions) / float64(trials),
				ExtremesExact:  float64(extremes) / float64(trials),
			})
		}
	}
	return rows, nil
}

// FormatSortQuality renders the ablation.
func FormatSortQuality(rows []SortQualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %7s %13s %16s %15s\n",
		"Schedule", "Slots", "Passes", "Fully sorted", "Mean inversions", "Extremes exact")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %7d %12.1f%% %16.2f %14.1f%%\n",
			r.Schedule, r.Slots, r.Passes, r.FullySorted*100, r.MeanInversions, r.ExtremesExact*100)
	}
	return b.String()
}
