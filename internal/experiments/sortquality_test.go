package experiments

import (
	"testing"

	"repro/internal/shuffle"
)

func TestSortQuality(t *testing.T) {
	rows, err := SortQuality(nil, 2000, 99)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatSortQuality(rows))
	for _, r := range rows {
		// The winner and the tail are always exact under every schedule —
		// that's what Table 3's max-first/min-first circulation rests on.
		if r.ExtremesExact != 1.0 {
			t.Errorf("%v N=%d: extremes exact %.3f, want 1.0", r.Schedule, r.Slots, r.ExtremesExact)
		}
		switch r.Schedule {
		case shuffle.Bitonic:
			if r.FullySorted != 1.0 || r.MeanInversions != 0 {
				t.Errorf("bitonic N=%d not exact: %+v", r.Slots, r)
			}
		case shuffle.PaperLogN:
			// The paper's log₂N schedule does NOT fully sort arbitrary
			// inputs beyond the extremes…
			if r.Slots >= 8 && r.FullySorted > 0.9 {
				t.Errorf("paper schedule N=%d suspiciously exact: %.3f", r.Slots, r.FullySorted)
			}
			// …but it is far from random: inversions stay well below
			// the worst case of N-1 adjacent inversions.
			if r.MeanInversions > float64(r.Slots-1)/2 {
				t.Errorf("paper schedule N=%d too unsorted: %.2f mean inversions", r.Slots, r.MeanInversions)
			}
		}
	}
}

func TestSortQualityDeterministic(t *testing.T) {
	a, err := SortQuality([]int{8}, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SortQuality([]int{8}, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sort quality not reproducible under fixed seed")
		}
	}
}

func TestSortQualityValidation(t *testing.T) {
	if _, err := SortQuality(nil, 0, 1); err == nil {
		t.Error("accepted zero trials")
	}
	if _, err := SortQuality([]int{5}, 10, 1); err == nil {
		t.Error("accepted non-power-of-two slots")
	}
}
