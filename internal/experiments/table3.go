// Package experiments contains the paper's evaluation scenarios — one
// constructor per table/figure — shared by the benchmark harness
// (bench_test.go), the ssbench tool, and the test suite. Each experiment
// returns plain data (rows/series) so every consumer renders the same
// numbers.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

// Table3Row is one stream's row of Table 3.
type Table3Row struct {
	Stream         int
	MissedMax      uint64 // max-finding (winner-only) missed deadlines
	CyclesMax      uint64 // max-finding decision cycles won
	MissedMaxFirst uint64 // block, max-first mode
	MissedMinFirst uint64 // block, min-first mode
	CyclesBlock    uint64 // block decision cycles won (max-first run)
}

// Table3Result is the full table plus the run's cycle totals.
type Table3Result struct {
	Rows []Table3Row
	// TotalCyclesMax is the total decision cycles the max-finding run
	// needed (paper: 64000 for 64000 frames).
	TotalCyclesMax uint64
	// TotalCyclesBlock is the total decision cycles the block runs needed
	// (paper: 16000 for 64000 frames).
	TotalCyclesBlock uint64
	// FramesMax / FramesBlock are the frames actually transmitted.
	FramesMax, FramesBlock uint64
}

// Table3Config parameterizes the experiment; Default is the paper's setup.
type Table3Config struct {
	Streams int // stream-slots, one stream each (paper: 4)
	Frames  int // frames to schedule in total (paper: 64000)
}

// DefaultTable3 is the paper's configuration: four streams with successive
// deadlines one time unit apart, each requested every decision cycle
// (T_i = 1), EDF mode, 64000 frames scheduled.
func DefaultTable3() Table3Config { return Table3Config{Streams: 4, Frames: 64000} }

// buildEDF assembles an N-slot ShareStreams scheduler in EDF mode with the
// Table 3 workload: stream i fully backlogged, arrivals i, i+1, i+2, …
// (successive deadlines one unit apart), request period 1.
func buildEDF(cfg Table3Config, routing core.Routing, circ core.Circulate) (*core.Scheduler, error) {
	s, err := core.New(core.Config{Slots: cfg.Streams, Routing: routing, Circulate: circ})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Streams; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := s.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			return nil, err
		}
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	return s, nil
}

// Table3 runs the three architectural configurations of §5.1 (max-finding,
// block max-first, block min-first) over the same deadline-constrained
// workload and assembles the table.
func Table3(cfg Table3Config) (Table3Result, error) {
	if cfg.Streams < 2 || cfg.Frames < cfg.Streams {
		return Table3Result{}, fmt.Errorf("experiments: bad table 3 config %+v", cfg)
	}

	// Max-finding: one frame per decision cycle.
	maxFind, err := buildEDF(cfg, core.WinnerOnly, core.MaxFirst)
	if err != nil {
		return Table3Result{}, err
	}
	maxFind.RunFor(cfg.Frames)

	// Block: N frames per decision cycle.
	blockCycles := cfg.Frames / cfg.Streams
	maxFirst, err := buildEDF(cfg, core.BlockRouting, core.MaxFirst)
	if err != nil {
		return Table3Result{}, err
	}
	maxFirst.RunFor(blockCycles)

	minFirst, err := buildEDF(cfg, core.BlockRouting, core.MinFirst)
	if err != nil {
		return Table3Result{}, err
	}
	minFirst.RunFor(blockCycles)

	res := Table3Result{
		TotalCyclesMax:   maxFind.Decisions(),
		TotalCyclesBlock: maxFirst.Decisions(),
		FramesMax:        maxFind.Totals().Services,
		FramesBlock:      maxFirst.Totals().Services,
	}
	for i := 0; i < cfg.Streams; i++ {
		res.Rows = append(res.Rows, Table3Row{
			Stream:         i + 1,
			MissedMax:      maxFind.SlotCounters(i).Missed,
			CyclesMax:      maxFind.SlotCounters(i).Wins,
			MissedMaxFirst: maxFirst.SlotCounters(i).Missed,
			MissedMinFirst: minFirst.SlotCounters(i).Missed,
			CyclesBlock:    maxFirst.SlotCounters(i).Wins,
		})
	}
	return res, nil
}

// Table3WCRow is one stream's row of the window-constrained Table 3
// variant.
type Table3WCRow struct {
	Stream     int
	Wins       uint64
	Missed     uint64 // tolerated drops + per-cycle ticks
	Violations uint64 // misses beyond the window tolerance
}

// Table3WindowConstrained reruns the Table 3 max-finding overload with the
// streams declared window-constrained at tolerance x/y instead of EDF —
// the unified architecture absorbing the same 4x overload as *scheduled
// loss*: with W = 3/4 every stream's demand is (1−3/4)/1 = 1/4, the set is
// exactly feasible, and the misses Table 3 reports become tolerated drops
// with (near-)zero window violations. A tighter tolerance (e.g. 1/2) makes
// the set infeasible and the violation counters show it.
func Table3WindowConstrained(cfg Table3Config, x, y uint8) ([]Table3WCRow, error) {
	if cfg.Streams < 2 || cfg.Frames < cfg.Streams {
		return nil, fmt.Errorf("experiments: bad table 3 config %+v", cfg)
	}
	s, err := core.New(core.Config{Slots: cfg.Streams, Routing: core.WinnerOnly})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Streams; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		spec := attr.Spec{
			Class:      attr.WindowConstrained,
			Period:     1,
			Constraint: attr.Constraint{Num: x, Den: y},
		}
		if err := s.Admit(i, spec, src); err != nil {
			return nil, err
		}
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	s.RunFor(cfg.Frames)
	var rows []Table3WCRow
	for i := 0; i < cfg.Streams; i++ {
		c := s.SlotCounters(i)
		rows = append(rows, Table3WCRow{
			Stream:     i + 1,
			Wins:       c.Wins,
			Missed:     c.Missed,
			Violations: c.Violations,
		})
	}
	return rows, nil
}

// Format renders the result in the paper's Table 3 layout.
func (r Table3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %18s %16s | %18s %18s %16s\n",
		"Stream-Slot", "Max-find missed", "Decision cycles",
		"Max-first missed", "Min-first missed", "Cycles (winner)")
	var tm, tf, tn, cm, cb uint64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "Stream %-5d %18d %16d | %18d %18d %16d\n",
			row.Stream, row.MissedMax, row.CyclesMax,
			row.MissedMaxFirst, row.MissedMinFirst, row.CyclesBlock)
		tm += row.MissedMax
		tf += row.MissedMaxFirst
		tn += row.MissedMinFirst
		cm += row.CyclesMax
		cb += row.CyclesBlock
	}
	fmt.Fprintf(&b, "%-12s %18d %16d | %18d %18d %16d\n", "Total", tm, cm, tf, tn, cb)
	fmt.Fprintf(&b, "\nMax-finding: %d frames in %d decision cycles; Block: %d frames in %d decision cycles\n",
		r.FramesMax, r.TotalCyclesMax, r.FramesBlock, r.TotalCyclesBlock)
	return b.String()
}
