package experiments

import (
	"strings"
	"testing"
)

func TestTable3PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64000-frame run")
	}
	res, err := Table3(DefaultTable3())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())

	// Decision-cycle structure is exact (paper: 64000 vs 16000).
	if res.TotalCyclesMax != 64000 {
		t.Errorf("max-finding decision cycles = %d, want 64000", res.TotalCyclesMax)
	}
	if res.TotalCyclesBlock != 16000 {
		t.Errorf("block decision cycles = %d, want 16000", res.TotalCyclesBlock)
	}
	if res.FramesMax != 64000 || res.FramesBlock != 64000 {
		t.Errorf("frames = %d/%d, want 64000/64000", res.FramesMax, res.FramesBlock)
	}

	var missedMax, missedMaxFirst, missedMinFirst, winsMax uint64
	for _, row := range res.Rows {
		missedMax += row.MissedMax
		missedMaxFirst += row.MissedMaxFirst
		missedMinFirst += row.MissedMinFirst
		winsMax += row.CyclesMax
		// Max-finding: each stream misses nearly every deadline (paper:
		// 63986-63989 of 64000).
		if row.MissedMax < 63900 || row.MissedMax > 64000 {
			t.Errorf("stream %d max-finding missed = %d, want ≈63990", row.Stream, row.MissedMax)
		}
	}
	// Paper total: 255,950 of 256,000.
	if missedMax < 255600 || missedMax > 256000 {
		t.Errorf("max-finding total missed = %d, want ≈255950", missedMax)
	}
	// Block max-first meets every deadline (paper: 0).
	if missedMaxFirst != 0 {
		t.Errorf("block max-first total missed = %d, want 0", missedMaxFirst)
	}
	// Block min-first violates deadlines substantially (paper: 106,985;
	// our cleaner circulation semantics concentrate the misses on the
	// earliest-deadline stream — one per decision cycle).
	if missedMinFirst == 0 {
		t.Error("block min-first missed no deadlines")
	}
	if winsMax != 64000 {
		t.Errorf("max-finding wins sum = %d, want 64000", winsMax)
	}
}

func TestTable3WinsRotateEvenly(t *testing.T) {
	// The EDF backlog round-robins: each of the four streams wins 1/4 of
	// the max-finding cycles (paper: 16000 each) and 1/4 of the block
	// cycles (paper: 4000 each).
	res, err := Table3(Table3Config{Streams: 4, Frames: 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.CyclesMax < 1900 || row.CyclesMax > 2100 {
			t.Errorf("stream %d max-finding wins = %d, want ≈2000", row.Stream, row.CyclesMax)
		}
	}
}

func TestTable3ScalesToMoreStreams(t *testing.T) {
	res, err := Table3(Table3Config{Streams: 8, Frames: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	if res.TotalCyclesBlock != 1000 {
		t.Errorf("block cycles = %d, want 1000", res.TotalCyclesBlock)
	}
	var maxFirst uint64
	for _, row := range res.Rows {
		maxFirst += row.MissedMaxFirst
	}
	if maxFirst != 0 {
		t.Errorf("8-stream block max-first missed = %d, want 0", maxFirst)
	}
}

func TestTable3Validation(t *testing.T) {
	if _, err := Table3(Table3Config{Streams: 1, Frames: 100}); err == nil {
		t.Error("accepted 1 stream")
	}
	if _, err := Table3(Table3Config{Streams: 4, Frames: 2}); err == nil {
		t.Error("accepted fewer frames than streams")
	}
}

func TestTable3Format(t *testing.T) {
	res, err := Table3(Table3Config{Streams: 4, Frames: 400})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Stream-Slot", "Stream 1", "Stream 4", "Total", "decision cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestTable3WindowConstrainedFeasibleTolerance(t *testing.T) {
	// W = 3/4 at T=1 across 4 streams: demand Σ(1-3/4)/1 = 1.0 — exactly
	// feasible. The same 4x overload that misses ~every EDF deadline in
	// Table 3 becomes scheduled loss with (near-)zero window violations.
	rows, err := Table3WindowConstrained(Table3Config{Streams: 4, Frames: 16000}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	var totalViolations, totalWins uint64
	for _, r := range rows {
		totalViolations += r.Violations
		totalWins += r.Wins
		// Each stream still gets its quarter share.
		if r.Wins < 3500 || r.Wins > 4500 {
			t.Errorf("stream %d wins = %d, want ≈4000", r.Stream, r.Wins)
		}
	}
	if totalWins != 16000 {
		t.Fatalf("wins = %d", totalWins)
	}
	// Violations bounded to a startup transient (< 0.5% of frames).
	if totalViolations > 80 {
		t.Errorf("violations = %d under a feasible tolerance", totalViolations)
	}
}

func TestTable3WindowConstrainedInfeasibleTolerance(t *testing.T) {
	// W = 1/2: demand Σ(1-1/2)/1 = 2.0 — infeasible by 2x; violations
	// must accumulate in volume.
	rows, err := Table3WindowConstrained(Table3Config{Streams: 4, Frames: 16000}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var totalViolations uint64
	for _, r := range rows {
		totalViolations += r.Violations
	}
	if totalViolations < 10000 {
		t.Errorf("violations = %d, expected heavy violation under infeasible tolerance", totalViolations)
	}
}

func TestTable3WindowConstrainedValidation(t *testing.T) {
	if _, err := Table3WindowConstrained(Table3Config{Streams: 1, Frames: 10}, 1, 2); err == nil {
		t.Error("accepted bad config")
	}
}
