// Package fabric models the switch fabric a ShareStreams line card sits
// behind (Figure 2): input ports with virtual output queues (VOQs) and a
// crossbar scheduled by round-robin arbitration, delivering packets into
// the line cards' dual-ported SRAM queues.
//
// The fabric is environment, not contribution — the paper takes it as given
// ("packets arriving from the switch fabric [are] placed in per-stream SRAM
// queues") — but modeling it closes the line-card realization end to end:
// ingress port → VOQ → crossbar grant → output line card → stream-slot →
// scheduler → transceiver.
//
// The arbiter is single-iteration round-robin matching (iSLIP with one
// iteration): each output grants the first requesting input after its
// grant pointer; each input accepts the first grant after its accept
// pointer; matched pointers advance. One arbitration round runs per fabric
// cycle, moving at most one packet per input and per output.
package fabric

import (
	"fmt"
)

// Packet is one fabric packet: destination output port and the stream index
// within that output's line card, plus the ingress timestamp.
type Packet struct {
	Output  int
	Stream  int
	Arrival uint64
}

// Output is the fabric's delivery target — a line card ingress (the
// dual-ported SRAM's fabric port).
type Output interface {
	// FabricArrival deposits one packet's arrival time into the stream's
	// queue; false means the card dropped it (queue full).
	FabricArrival(stream int, arrival uint64) bool
}

// Fabric is one crossbar instance.
type Fabric struct {
	inputs  int
	outputs []Output

	// voq[i][o] is input i's queue toward output o.
	voq [][][]Packet

	// round-robin pointers.
	grantPtr  []int // per output
	acceptPtr []int // per input

	// Totals.
	Ingress   uint64
	Delivered uint64
	CardDrops uint64 // delivered to a full card queue
	cycles    uint64
}

// New builds a fabric with the given input port count and output line
// cards.
func New(inputs int, outputs []Output) (*Fabric, error) {
	if inputs < 1 {
		return nil, fmt.Errorf("fabric: %d inputs", inputs)
	}
	if len(outputs) < 1 {
		return nil, fmt.Errorf("fabric: no outputs")
	}
	for i, o := range outputs {
		if o == nil {
			return nil, fmt.Errorf("fabric: nil output %d", i)
		}
	}
	f := &Fabric{
		inputs:    inputs,
		outputs:   outputs,
		voq:       make([][][]Packet, inputs),
		grantPtr:  make([]int, len(outputs)),
		acceptPtr: make([]int, inputs),
	}
	for i := range f.voq {
		f.voq[i] = make([][]Packet, len(outputs))
	}
	return f, nil
}

// Inputs returns the input port count.
func (f *Fabric) Inputs() int { return f.inputs }

// Outputs returns the output port count.
func (f *Fabric) Outputs() int { return len(f.outputs) }

// Cycles returns the arbitration rounds run.
func (f *Fabric) Cycles() uint64 { return f.cycles }

// Ingest places a packet in its input port's VOQ.
func (f *Fabric) Ingest(input int, p Packet) error {
	if input < 0 || input >= f.inputs {
		return fmt.Errorf("fabric: input %d out of range", input)
	}
	if p.Output < 0 || p.Output >= len(f.outputs) {
		return fmt.Errorf("fabric: output %d out of range", p.Output)
	}
	f.voq[input][p.Output] = append(f.voq[input][p.Output], p)
	f.Ingress++
	return nil
}

// Backlog returns input i's total VOQ occupancy.
func (f *Fabric) Backlog(input int) int {
	n := 0
	for _, q := range f.voq[input] {
		n += len(q)
	}
	return n
}

// Step runs one arbitration round: grant, accept, transfer. It returns the
// number of packets moved (≤ min(inputs, outputs)).
func (f *Fabric) Step() int {
	nOut := len(f.outputs)
	grantTo := make([]int, nOut) // output -> granted input (-1 none)
	for o := range grantTo {
		grantTo[o] = -1
	}
	// Grant phase: each output picks the first requesting input at/after
	// its pointer.
	for o := 0; o < nOut; o++ {
		for k := 0; k < f.inputs; k++ {
			i := (f.grantPtr[o] + k) % f.inputs
			if len(f.voq[i][o]) > 0 {
				grantTo[o] = i
				break
			}
		}
	}
	// Accept phase: each input takes the first grant at/after its pointer.
	acceptOf := make([]int, f.inputs) // input -> accepted output (-1 none)
	for i := range acceptOf {
		acceptOf[i] = -1
	}
	for i := 0; i < f.inputs; i++ {
		for k := 0; k < nOut; k++ {
			o := (f.acceptPtr[i] + k) % nOut
			if grantTo[o] == i {
				acceptOf[i] = o
				break
			}
		}
	}
	// Transfer phase.
	moved := 0
	for i := 0; i < f.inputs; i++ {
		o := acceptOf[i]
		if o < 0 {
			continue
		}
		q := f.voq[i][o]
		p := q[0]
		f.voq[i][o] = q[1:]
		if f.outputs[o].FabricArrival(p.Stream, p.Arrival) {
			f.Delivered++
		} else {
			f.CardDrops++
		}
		moved++
		// Matched pointers advance past the partner (desynchronizing the
		// round robins, the iSLIP property).
		f.grantPtr[o] = (i + 1) % f.inputs
		f.acceptPtr[i] = (o + 1) % nOut
	}
	f.cycles++
	return moved
}
