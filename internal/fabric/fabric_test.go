package fabric

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/linecard"
)

// sink is a trivial output that accepts everything.
type sink struct {
	got   [][]uint64 // per stream
	limit int
}

func newSink(streams, limit int) *sink {
	return &sink{got: make([][]uint64, streams), limit: limit}
}

func (s *sink) FabricArrival(stream int, arrival uint64) bool {
	if stream < 0 || stream >= len(s.got) {
		return false
	}
	if s.limit > 0 && len(s.got[stream]) >= s.limit {
		return false
	}
	s.got[stream] = append(s.got[stream], arrival)
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, []Output{newSink(1, 0)}); err == nil {
		t.Error("accepted zero inputs")
	}
	if _, err := New(2, nil); err == nil {
		t.Error("accepted no outputs")
	}
	if _, err := New(2, []Output{nil}); err == nil {
		t.Error("accepted nil output")
	}
}

func TestIngestValidation(t *testing.T) {
	f, _ := New(2, []Output{newSink(4, 0)})
	if err := f.Ingest(-1, Packet{}); err == nil {
		t.Error("accepted bad input")
	}
	if err := f.Ingest(0, Packet{Output: 5}); err == nil {
		t.Error("accepted bad output")
	}
	if err := f.Ingest(0, Packet{Output: 0, Stream: 1}); err != nil {
		t.Fatal(err)
	}
	if f.Backlog(0) != 1 {
		t.Fatalf("backlog = %d", f.Backlog(0))
	}
}

func TestSinglePacketFlows(t *testing.T) {
	out := newSink(4, 0)
	f, _ := New(2, []Output{out})
	f.Ingest(0, Packet{Output: 0, Stream: 2, Arrival: 7})
	if moved := f.Step(); moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	if len(out.got[2]) != 1 || out.got[2][0] != 7 {
		t.Fatalf("delivery = %v", out.got[2])
	}
	if f.Delivered != 1 || f.Backlog(0) != 0 {
		t.Fatalf("counters: delivered %d backlog %d", f.Delivered, f.Backlog(0))
	}
}

func TestParallelTransfersAcrossOutputs(t *testing.T) {
	// Two inputs to two distinct outputs must both move in ONE round — a
	// crossbar, not a bus.
	o1, o2 := newSink(1, 0), newSink(1, 0)
	f, _ := New(2, []Output{o1, o2})
	f.Ingest(0, Packet{Output: 0})
	f.Ingest(1, Packet{Output: 1})
	if moved := f.Step(); moved != 2 {
		t.Fatalf("moved = %d, want 2 (parallel crossbar transfers)", moved)
	}
}

func TestOutputContentionSerializes(t *testing.T) {
	// Two inputs to the same output: one per round, no packet lost.
	out := newSink(1, 0)
	f, _ := New(2, []Output{out})
	f.Ingest(0, Packet{Output: 0, Arrival: 1})
	f.Ingest(1, Packet{Output: 0, Arrival: 2})
	if moved := f.Step(); moved != 1 {
		t.Fatalf("round 1 moved %d", moved)
	}
	if moved := f.Step(); moved != 1 {
		t.Fatalf("round 2 moved %d", moved)
	}
	if len(out.got[0]) != 2 {
		t.Fatalf("delivered %d", len(out.got[0]))
	}
}

func TestRoundRobinFairnessUnderSaturation(t *testing.T) {
	// Four inputs saturating one output: each must get ~1/4 of the grants.
	out := newSink(1, 0)
	f, _ := New(4, []Output{out})
	served := make([]int, 4)
	for c := 0; c < 4000; c++ {
		for i := 0; i < 4; i++ {
			if f.Backlog(i) < 4 {
				f.Ingest(i, Packet{Output: 0, Arrival: uint64(i)})
			}
		}
		before := f.Delivered
		f.Step()
		if f.Delivered > before {
			// Attribute the grant via the arrival tag (stream 0 holds
			// the input index in Arrival for this test).
			last := out.got[0][len(out.got[0])-1]
			served[last]++
		}
	}
	for i, n := range served {
		if n < 900 || n > 1100 {
			t.Errorf("input %d served %d of ~1000", i, n)
		}
	}
}

func TestCardDropCounted(t *testing.T) {
	out := newSink(1, 1) // card queue holds one
	f, _ := New(1, []Output{out})
	f.Ingest(0, Packet{Output: 0})
	f.Ingest(0, Packet{Output: 0})
	f.Step()
	f.Step()
	if f.Delivered != 1 || f.CardDrops != 1 {
		t.Fatalf("delivered %d drops %d", f.Delivered, f.CardDrops)
	}
}

// TestFabricFeedsLineCardEndToEnd closes the Figure 2 loop: ingress ports →
// VOQ crossbar → line card SRAM → scheduler → transceiver, with packet
// conservation.
func TestFabricFeedsLineCardEndToEnd(t *testing.T) {
	card, err := linecard.New(linecard.Config{Slots: 4, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := card.Admit(i, attr.Spec{Class: attr.EDF, Period: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := card.Start(); err != nil {
		t.Fatal(err)
	}
	f, err := New(2, []Output{card.SRAM()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	const total = 2000
	injected := 0
	for c := 0; injected < total || card.Scheduler().Totals().Services < total; c++ {
		if injected < total {
			in := rng.Intn(2)
			if err := f.Ingest(in, Packet{Output: 0, Stream: rng.Intn(4), Arrival: uint64(c)}); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		f.Step()
		card.RunCycle()
		if c > 100*total {
			t.Fatal("end-to-end flow wedged")
		}
	}
	card.DrainTransceiver()
	var drained uint64
	for i := 0; i < 4; i++ {
		drained += card.Drained(i)
	}
	if drained != total || f.Delivered != total || f.CardDrops != 0 {
		t.Fatalf("conservation: drained %d delivered %d drops %d, want %d",
			drained, f.Delivered, f.CardDrops, total)
	}
}
