package fairqueue_test

import (
	"fmt"

	"repro/internal/fairqueue"
)

// Example shares a link 1:3 between two backlogged streams under WFQ.
func Example() {
	wfq, _ := fairqueue.NewWFQ([]float64{1, 3})
	for k := 0; k < 8; k++ {
		_ = wfq.Enqueue(fairqueue.Packet{Stream: 0, Size: 100, Arrival: uint64(k)})
		_ = wfq.Enqueue(fairqueue.Packet{Stream: 1, Size: 100, Arrival: uint64(k)})
	}
	counts := [2]int{}
	for i := 0; i < 8; i++ {
		p, _ := wfq.Dequeue()
		counts[p.Stream]++
	}
	fmt.Printf("stream 0: %d, stream 1: %d\n", counts[0], counts[1])
	// Output: stream 0: 2, stream 1: 6
}
