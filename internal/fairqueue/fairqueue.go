// Package fairqueue implements the software fair-queuing schedulers the
// paper compares against and builds on:
//
//   - WFQ — weighted fair queuing (Demers, Keshav & Shenker [6]): per-packet
//     virtual finish times against a system virtual clock. The virtual
//     clock here is the standard self-clocked approximation (advanced from
//     the packet in service), avoiding the exact GPS simulation, which is
//     the form practical systems implement.
//   - SFQ — start-time fair queuing, the discipline behind Click's
//     Stochastic Fairness Queuing comparison point in §5.2.
//   - DRR — deficit round robin (Shreedhar & Varghese), the discipline the
//     router-plugins comparison point [5] measures.
//
// All three expose the same Scheduler interface over per-stream FIFO
// queues, so the fairness and throughput benches can sweep disciplines.
// Service tags computed by WFQ/SFQ are also what the Queue Manager loads
// into fair-tag stream-slots when mapping fair queuing onto the
// ShareStreams hardware ("the architecture can order N service-tags in
// log₂N cycles").
package fairqueue

import (
	"fmt"
)

// Packet is one frame owned by a fair-queuing scheduler.
type Packet struct {
	Stream  int
	Size    int // bytes
	Arrival uint64
	// Tag is the service tag the scheduler assigned at enqueue (WFQ:
	// virtual finish time; SFQ: virtual start time; DRR leaves it 0).
	Tag float64
}

// Scheduler is a work-conserving packet scheduler over per-stream queues.
type Scheduler interface {
	// Enqueue admits a packet to its stream's queue.
	Enqueue(p Packet) error
	// Dequeue picks and removes the next packet to transmit.
	Dequeue() (Packet, bool)
	// Backlogged returns the number of queued packets.
	Backlogged() int
	// Name returns the discipline name.
	Name() string
}

// fifo is a simple per-stream packet FIFO.
type fifo struct {
	pkts []Packet
	head int
}

func (q *fifo) push(p Packet) { q.pkts = append(q.pkts, p) }

func (q *fifo) empty() bool { return q.head >= len(q.pkts) }

func (q *fifo) front() *Packet { return &q.pkts[q.head] }

func (q *fifo) pop() Packet {
	p := q.pkts[q.head]
	q.head++
	if q.head == len(q.pkts) { // reset storage once drained
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p
}

func (q *fifo) len() int { return len(q.pkts) - q.head }

// ---------------------------------------------------------------------------
// WFQ

// WFQ is a weighted fair queuing scheduler with self-clocked virtual time.
type WFQ struct {
	weights []float64
	queues  []fifo
	finish  []float64 // last finish tag per stream
	vtime   float64
	backlog int
}

// NewWFQ builds a WFQ scheduler; weights[i] is stream i's share (> 0).
func NewWFQ(weights []float64) (*WFQ, error) {
	if err := checkWeights(weights); err != nil {
		return nil, err
	}
	return &WFQ{
		weights: append([]float64(nil), weights...),
		queues:  make([]fifo, len(weights)),
		finish:  make([]float64, len(weights)),
	}, nil
}

// Name implements Scheduler.
func (w *WFQ) Name() string { return "WFQ" }

// Enqueue stamps the packet with its virtual finish time
// F = max(F_prev, V) + size/weight and queues it.
func (w *WFQ) Enqueue(p Packet) error {
	if p.Stream < 0 || p.Stream >= len(w.queues) {
		return fmt.Errorf("fairqueue: stream %d out of range", p.Stream)
	}
	if p.Size <= 0 {
		return fmt.Errorf("fairqueue: packet size %d", p.Size)
	}
	start := w.finish[p.Stream]
	if w.vtime > start {
		start = w.vtime
	}
	w.finish[p.Stream] = start + float64(p.Size)/w.weights[p.Stream]
	p.Tag = w.finish[p.Stream]
	w.queues[p.Stream].push(p)
	w.backlog++
	return nil
}

// Dequeue transmits the packet with the least finish tag and advances the
// virtual clock to it (self-clocking).
func (w *WFQ) Dequeue() (Packet, bool) {
	best := -1
	for i := range w.queues {
		if w.queues[i].empty() {
			continue
		}
		if best == -1 || w.queues[i].front().Tag < w.queues[best].front().Tag {
			best = i
		}
	}
	if best == -1 {
		return Packet{}, false
	}
	p := w.queues[best].pop()
	w.vtime = p.Tag
	w.backlog--
	return p, true
}

// Backlogged implements Scheduler.
func (w *WFQ) Backlogged() int { return w.backlog }

// ---------------------------------------------------------------------------
// SFQ

// SFQ is a start-time fair queuing scheduler: packets are stamped with
// virtual start times S = max(v, F_prev); F = S + size/weight; the system
// virtual time v follows the start tag of the packet in service.
type SFQ struct {
	weights []float64
	queues  []fifo
	finish  []float64
	vtime   float64
	backlog int
}

// NewSFQ builds an SFQ scheduler.
func NewSFQ(weights []float64) (*SFQ, error) {
	if err := checkWeights(weights); err != nil {
		return nil, err
	}
	return &SFQ{
		weights: append([]float64(nil), weights...),
		queues:  make([]fifo, len(weights)),
		finish:  make([]float64, len(weights)),
	}, nil
}

// Name implements Scheduler.
func (s *SFQ) Name() string { return "SFQ" }

// Enqueue stamps the packet with its virtual start time and queues it.
func (s *SFQ) Enqueue(p Packet) error {
	if p.Stream < 0 || p.Stream >= len(s.queues) {
		return fmt.Errorf("fairqueue: stream %d out of range", p.Stream)
	}
	if p.Size <= 0 {
		return fmt.Errorf("fairqueue: packet size %d", p.Size)
	}
	start := s.finish[p.Stream]
	if s.vtime > start {
		start = s.vtime
	}
	s.finish[p.Stream] = start + float64(p.Size)/s.weights[p.Stream]
	p.Tag = start
	s.queues[p.Stream].push(p)
	s.backlog++
	return nil
}

// Dequeue transmits the packet with the least start tag.
func (s *SFQ) Dequeue() (Packet, bool) {
	best := -1
	for i := range s.queues {
		if s.queues[i].empty() {
			continue
		}
		if best == -1 || s.queues[i].front().Tag < s.queues[best].front().Tag {
			best = i
		}
	}
	if best == -1 {
		return Packet{}, false
	}
	p := s.queues[best].pop()
	s.vtime = p.Tag
	s.backlog--
	return p, true
}

// Backlogged implements Scheduler.
func (s *SFQ) Backlogged() int { return s.backlog }

// ---------------------------------------------------------------------------
// DRR

// DRR is a deficit round robin scheduler: each backlogged stream receives
// quantum·weight deficit per round and transmits head packets while its
// deficit covers them.
type DRR struct {
	weights []float64
	queues  []fifo
	deficit []float64
	quantum float64
	active  []int // round-robin list of backlogged streams
	cursor  int
	topped  bool // the stream at cursor already received this turn's quantum
	backlog int
}

// NewDRR builds a DRR scheduler; quantum is the base per-round byte
// allowance (scaled by each stream's weight). A quantum at least the MTU
// keeps the discipline O(1) per packet.
func NewDRR(weights []float64, quantum float64) (*DRR, error) {
	if err := checkWeights(weights); err != nil {
		return nil, err
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("fairqueue: quantum %v", quantum)
	}
	return &DRR{
		weights: append([]float64(nil), weights...),
		queues:  make([]fifo, len(weights)),
		deficit: make([]float64, len(weights)),
		quantum: quantum,
	}, nil
}

// Name implements Scheduler.
func (d *DRR) Name() string { return "DRR" }

// Enqueue queues the packet, activating its stream if needed.
func (d *DRR) Enqueue(p Packet) error {
	if p.Stream < 0 || p.Stream >= len(d.queues) {
		return fmt.Errorf("fairqueue: stream %d out of range", p.Stream)
	}
	if p.Size <= 0 {
		return fmt.Errorf("fairqueue: packet size %d", p.Size)
	}
	if d.queues[p.Stream].empty() {
		d.active = append(d.active, p.Stream)
	}
	d.queues[p.Stream].push(p)
	d.backlog++
	return nil
}

// Dequeue serves the round-robin list: when the cursor arrives at a stream
// its deficit is topped up by quantum·weight once; head packets are served
// while the deficit covers them; then the turn ends and the residual
// deficit carries to the next round (forfeited if the queue drains).
func (d *DRR) Dequeue() (Packet, bool) {
	if d.backlog == 0 {
		return Packet{}, false
	}
	for {
		if d.cursor >= len(d.active) {
			d.cursor = 0
		}
		i := d.active[d.cursor]
		q := &d.queues[i]
		if !d.topped {
			d.deficit[i] += d.quantum * d.weights[i]
			d.topped = true
		}
		if d.deficit[i] >= float64(q.front().Size) {
			p := q.pop()
			d.deficit[i] -= float64(p.Size)
			d.backlog--
			if q.empty() {
				// Stream leaves the active list; its residual
				// deficit is forfeited (standard DRR).
				d.deficit[i] = 0
				d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
				d.topped = false
				if d.cursor >= len(d.active) {
					d.cursor = 0
				}
			}
			return p, true
		}
		// Deficit exhausted: this stream's turn ends.
		d.cursor++
		d.topped = false
	}
}

// Backlogged implements Scheduler.
func (d *DRR) Backlogged() int { return d.backlog }

func checkWeights(weights []float64) error {
	if len(weights) == 0 {
		return fmt.Errorf("fairqueue: no streams")
	}
	for i, w := range weights {
		if w <= 0 {
			return fmt.Errorf("fairqueue: stream %d weight %v must be positive", i, w)
		}
	}
	return nil
}
