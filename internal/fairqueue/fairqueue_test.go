package fairqueue

import (
	"math"
	"math/rand"
	"testing"
)

func schedulers(t *testing.T, weights []float64) []Scheduler {
	t.Helper()
	w, err := NewWFQ(weights)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSFQ(weights)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDRR(weights, 1500)
	if err != nil {
		t.Fatal(err)
	}
	return []Scheduler{w, s, d}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewWFQ(nil); err == nil {
		t.Error("WFQ accepted no streams")
	}
	if _, err := NewSFQ([]float64{1, 0}); err == nil {
		t.Error("SFQ accepted zero weight")
	}
	if _, err := NewDRR([]float64{1, -2}, 1500); err == nil {
		t.Error("DRR accepted negative weight")
	}
	if _, err := NewDRR([]float64{1}, 0); err == nil {
		t.Error("DRR accepted zero quantum")
	}
}

func TestEnqueueValidation(t *testing.T) {
	for _, s := range schedulers(t, []float64{1, 1}) {
		if err := s.Enqueue(Packet{Stream: 5, Size: 100}); err == nil {
			t.Errorf("%s accepted out-of-range stream", s.Name())
		}
		if err := s.Enqueue(Packet{Stream: 0, Size: 0}); err == nil {
			t.Errorf("%s accepted zero-size packet", s.Name())
		}
	}
}

func TestEmptyDequeue(t *testing.T) {
	for _, s := range schedulers(t, []float64{1, 1}) {
		if _, ok := s.Dequeue(); ok {
			t.Errorf("%s dequeued from empty scheduler", s.Name())
		}
		if s.Backlogged() != 0 {
			t.Errorf("%s backlog nonzero", s.Name())
		}
	}
}

func TestFIFOWithinStream(t *testing.T) {
	// Packets of one stream must leave in arrival order under every
	// discipline.
	for _, s := range schedulers(t, []float64{1, 2}) {
		for k := 0; k < 10; k++ {
			if err := s.Enqueue(Packet{Stream: 0, Size: 100, Arrival: uint64(k)}); err != nil {
				t.Fatal(err)
			}
			if err := s.Enqueue(Packet{Stream: 1, Size: 100, Arrival: uint64(k)}); err != nil {
				t.Fatal(err)
			}
		}
		last := map[int]uint64{}
		for {
			p, ok := s.Dequeue()
			if !ok {
				break
			}
			if prev, seen := last[p.Stream]; seen && p.Arrival <= prev {
				t.Fatalf("%s: stream %d out of order (%d after %d)", s.Name(), p.Stream, p.Arrival, prev)
			}
			last[p.Stream] = p.Arrival
		}
	}
}

// serveRatio keeps all streams backlogged and measures the byte share each
// receives over many dequeues.
func serveRatio(t *testing.T, s Scheduler, weights []float64, size func(stream int) int, rounds int) []float64 {
	t.Helper()
	n := len(weights)
	bytes := make([]float64, n)
	queued := make([]int, n)
	top := func() {
		for i := 0; i < n; i++ {
			for queued[i] < 4 {
				if err := s.Enqueue(Packet{Stream: i, Size: size(i)}); err != nil {
					t.Fatal(err)
				}
				queued[i]++
			}
		}
	}
	top()
	var total float64
	for r := 0; r < rounds; r++ {
		p, ok := s.Dequeue()
		if !ok {
			t.Fatalf("%s went idle while backlogged", s.Name())
		}
		bytes[p.Stream] += float64(p.Size)
		total += float64(p.Size)
		queued[p.Stream]--
		top()
	}
	for i := range bytes {
		bytes[i] /= total
	}
	return bytes
}

func TestWeightedShares1124(t *testing.T) {
	// The paper's 1:1:2:4 allocation (Figure 8) must emerge from every
	// discipline under persistent backlog, equal packet sizes.
	weights := []float64{1, 1, 2, 4}
	wantShare := []float64{1.0 / 8, 1.0 / 8, 2.0 / 8, 4.0 / 8}
	for _, s := range schedulers(t, weights) {
		got := serveRatio(t, s, weights, func(int) int { return 1000 }, 8000)
		for i, w := range wantShare {
			if math.Abs(got[i]-w) > 0.02 {
				t.Errorf("%s: stream %d share = %.3f, want %.3f", s.Name(), i, got[i], w)
			}
		}
	}
}

func TestSharesWithMixedPacketSizes(t *testing.T) {
	// Byte shares (not packet counts) must follow the weights even when
	// streams use different packet sizes — the property DRR was invented
	// for.
	weights := []float64{1, 1}
	sizes := []int{1500, 300}
	for _, s := range schedulers(t, weights) {
		got := serveRatio(t, s, weights, func(i int) int { return sizes[i] }, 9000)
		if math.Abs(got[0]-0.5) > 0.03 {
			t.Errorf("%s: stream 0 byte share = %.3f, want 0.5 despite 5x packet size", s.Name(), got[0])
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// With only one stream backlogged it receives everything.
	for _, s := range schedulers(t, []float64{1, 100}) {
		for k := 0; k < 50; k++ {
			if err := s.Enqueue(Packet{Stream: 0, Size: 500}); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 50; k++ {
			p, ok := s.Dequeue()
			if !ok || p.Stream != 0 {
				t.Fatalf("%s: not work conserving (ok=%v stream=%d)", s.Name(), ok, p.Stream)
			}
		}
	}
}

func TestBacklogAccounting(t *testing.T) {
	for _, s := range schedulers(t, []float64{1, 1}) {
		for k := 0; k < 6; k++ {
			if err := s.Enqueue(Packet{Stream: k % 2, Size: 100}); err != nil {
				t.Fatal(err)
			}
		}
		if s.Backlogged() != 6 {
			t.Fatalf("%s backlog = %d, want 6", s.Name(), s.Backlogged())
		}
		s.Dequeue()
		s.Dequeue()
		if s.Backlogged() != 4 {
			t.Fatalf("%s backlog = %d, want 4", s.Name(), s.Backlogged())
		}
		for {
			if _, ok := s.Dequeue(); !ok {
				break
			}
		}
		if s.Backlogged() != 0 {
			t.Fatalf("%s backlog = %d, want 0", s.Name(), s.Backlogged())
		}
	}
}

func TestWFQTagsMonotonePerStream(t *testing.T) {
	w, _ := NewWFQ([]float64{1, 2})
	var prev [2]float64
	for k := 0; k < 20; k++ {
		for i := 0; i < 2; i++ {
			if err := w.Enqueue(Packet{Stream: i, Size: 100}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for {
		p, ok := w.Dequeue()
		if !ok {
			break
		}
		if p.Tag <= prev[p.Stream] {
			t.Fatalf("stream %d finish tags not increasing: %v after %v", p.Stream, p.Tag, prev[p.Stream])
		}
		prev[p.Stream] = p.Tag
	}
}

func TestSFQVirtualTimeFollowsService(t *testing.T) {
	s, _ := NewSFQ([]float64{1})
	if err := s.Enqueue(Packet{Stream: 0, Size: 100}); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Dequeue()
	if p.Tag != 0 {
		t.Fatalf("first start tag = %v, want 0", p.Tag)
	}
	// After an idle period, a new arrival's start tag continues from the
	// served packet's start tag (v = tag in service), not from zero.
	if err := s.Enqueue(Packet{Stream: 0, Size: 100}); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Dequeue()
	if p2.Tag <= p.Tag {
		t.Fatalf("second start tag %v not after first %v", p2.Tag, p.Tag)
	}
}

func TestDRRQuantumRespectsLargePackets(t *testing.T) {
	// A packet larger than one quantum must still be served after enough
	// rounds (deficit accumulation), without starving the other stream.
	d, _ := NewDRR([]float64{1, 1}, 500)
	if err := d.Enqueue(Packet{Stream: 0, Size: 1400}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if err := d.Enqueue(Packet{Stream: 1, Size: 400}); err != nil {
			t.Fatal(err)
		}
	}
	var order []int
	for {
		p, ok := d.Dequeue()
		if !ok {
			break
		}
		order = append(order, p.Stream)
	}
	if len(order) != 4 {
		t.Fatalf("served %d packets, want 4", len(order))
	}
	served0 := false
	for _, s := range order {
		if s == 0 {
			served0 = true
		}
	}
	if !served0 {
		t.Fatal("large packet never served")
	}
	// Stream 1 must get service before stream 0's jumbo accumulates 3
	// quanta.
	if order[0] == 0 {
		t.Fatalf("jumbo served first despite 1-quantum deficit: order %v", order)
	}
}

func TestRandomizedInvariants(t *testing.T) {
	// Fuzz all disciplines: conservation of packets, FIFO per stream.
	rng := rand.New(rand.NewSource(13))
	for _, s := range schedulers(t, []float64{1, 2, 3}) {
		in := make([]int, 3)
		out := make([]int, 3)
		seq := make([]uint64, 3)
		last := make([]uint64, 3)
		for step := 0; step < 5000; step++ {
			if rng.Intn(2) == 0 {
				i := rng.Intn(3)
				seq[i]++
				if err := s.Enqueue(Packet{Stream: i, Size: 64 + rng.Intn(1400), Arrival: seq[i]}); err != nil {
					t.Fatal(err)
				}
				in[i]++
			} else if p, ok := s.Dequeue(); ok {
				out[p.Stream]++
				if p.Arrival <= last[p.Stream] {
					t.Fatalf("%s: stream %d out of order", s.Name(), p.Stream)
				}
				last[p.Stream] = p.Arrival
			}
		}
		for {
			p, ok := s.Dequeue()
			if !ok {
				break
			}
			out[p.Stream]++
		}
		for i := 0; i < 3; i++ {
			if in[i] != out[i] {
				t.Fatalf("%s: stream %d lost packets (%d in, %d out)", s.Name(), i, in[i], out[i])
			}
		}
		if s.Backlogged() != 0 {
			t.Fatalf("%s: residual backlog %d", s.Name(), s.Backlogged())
		}
	}
}

// BenchmarkDequeue measures software fair-queuing decision cost (the §5.2
// Click/SFQ comparison point runs ≈300k packets/s on a 700 MHz PIII).
func BenchmarkDequeue(b *testing.B) {
	weights := make([]float64, 32)
	for i := range weights {
		weights[i] = float64(1 + i%4)
	}
	mk := map[string]func() Scheduler{
		"WFQ32": func() Scheduler { s, _ := NewWFQ(weights); return s },
		"SFQ32": func() Scheduler { s, _ := NewSFQ(weights); return s },
		"DRR32": func() Scheduler { s, _ := NewDRR(weights, 1500); return s },
	}
	for name, ctor := range mk {
		b.Run(name, func(b *testing.B) {
			s := ctor()
			for i := 0; i < 64; i++ {
				if err := s.Enqueue(Packet{Stream: i % 32, Size: 1000}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, _ := s.Dequeue()
				p.Arrival = uint64(i)
				if err := s.Enqueue(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
