package fairqueue

import (
	"fmt"
	"math/rand"
)

// RED implements Random Early Detection queue management (Floyd & Jacobson)
// — the active-queue-management policy §5.2's 10 Gbps line-card comparison
// point (Cisco GSR: DRR + RED) pairs with its scheduler. ShareStreams
// provides per-flow queuing and DWCS instead; the bench contrasts drop
// behaviour under congestion.
//
// The gentle variant is implemented: the drop probability ramps linearly
// from 0 at MinTh to MaxP at MaxTh, then from MaxP to 1 at 2·MaxTh, using
// an exponentially weighted moving average of the queue length and the
// standard count-since-last-drop correction.
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds (packets).
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue length (typ. 0.002).
	Wq float64

	avg   float64
	count int // packets since the last drop while in the random region
	rng   *rand.Rand
}

// NewRED builds a RED controller with a deterministic seed (the simulation
// is reproducible end to end).
func NewRED(minTh, maxTh, maxP, wq float64, seed int64) (*RED, error) {
	if minTh <= 0 || maxTh <= minTh {
		return nil, fmt.Errorf("fairqueue: RED thresholds %v/%v", minTh, maxTh)
	}
	if maxP <= 0 || maxP > 1 {
		return nil, fmt.Errorf("fairqueue: RED maxP %v", maxP)
	}
	if wq <= 0 || wq > 1 {
		return nil, fmt.Errorf("fairqueue: RED wq %v", wq)
	}
	return &RED{MinTh: minTh, MaxTh: maxTh, MaxP: maxP, Wq: wq, count: -1, rng: rand.New(rand.NewSource(seed))}, nil
}

// Avg returns the current average queue estimate.
func (r *RED) Avg() float64 { return r.avg }

// OnArrival updates the average with the instantaneous queue length and
// decides whether the arriving packet should be dropped.
func (r *RED) OnArrival(queueLen int) bool {
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(queueLen)
	switch {
	case r.avg < r.MinTh:
		r.count = -1
		return false
	case r.avg >= 2*r.MaxTh:
		r.count = 0
		return true
	}
	// Random-drop region (gentle above MaxTh).
	var pb float64
	if r.avg < r.MaxTh {
		pb = r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
	} else {
		pb = r.MaxP + (1-r.MaxP)*(r.avg-r.MaxTh)/r.MaxTh
	}
	r.count++
	pa := pb
	if denom := 1 - float64(r.count)*pb; denom > 0 {
		pa = pb / denom
	} else {
		pa = 1
	}
	if r.rng.Float64() < pa {
		r.count = 0
		return true
	}
	return false
}
