package fairqueue

import (
	"testing"
)

func TestREDValidation(t *testing.T) {
	cases := []struct{ min, max, p, wq float64 }{
		{0, 10, 0.1, 0.002},
		{10, 10, 0.1, 0.002},
		{5, 10, 0, 0.002},
		{5, 10, 1.5, 0.002},
		{5, 10, 0.1, 0},
		{5, 10, 0.1, 2},
	}
	for _, c := range cases {
		if _, err := NewRED(c.min, c.max, c.p, c.wq, 1); err == nil {
			t.Errorf("NewRED(%v) accepted", c)
		}
	}
	if _, err := NewRED(5, 15, 0.1, 0.002, 1); err != nil {
		t.Fatal(err)
	}
}

func TestREDNeverDropsBelowMinTh(t *testing.T) {
	r, _ := NewRED(10, 30, 0.1, 0.25, 1)
	for i := 0; i < 1000; i++ {
		if r.OnArrival(5) {
			t.Fatalf("dropped at avg %v below MinTh", r.Avg())
		}
	}
}

func TestREDAlwaysDropsAtHardLimit(t *testing.T) {
	r, _ := NewRED(10, 30, 0.1, 1, 1) // wq=1: avg == instantaneous
	if !r.OnArrival(100) {
		t.Fatal("no drop with avg at 100 ≥ 2*MaxTh")
	}
}

func TestREDProbabilityRamps(t *testing.T) {
	// Hold the instantaneous queue at fixed levels (wq=1 so avg tracks)
	// and compare empirical drop rates: deeper queue -> more drops.
	rate := func(q int) float64 {
		r, _ := NewRED(10, 50, 0.2, 1, 42)
		drops := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if r.OnArrival(q) {
				drops++
			}
		}
		return float64(drops) / n
	}
	low, mid, high := rate(15), rate(30), rate(45)
	if !(low < mid && mid < high) {
		t.Fatalf("drop rates not monotone: %v %v %v", low, mid, high)
	}
	if low == 0 || high > 0.9 {
		t.Fatalf("rates out of expected band: %v %v", low, high)
	}
}

func TestREDEWMASmoothsBursts(t *testing.T) {
	// With a small wq, one instantaneous spike must not push the average
	// past MinTh.
	r, _ := NewRED(10, 30, 0.1, 0.002, 1)
	for i := 0; i < 100; i++ {
		r.OnArrival(0)
	}
	if r.OnArrival(1000) {
		t.Fatal("single burst dropped despite smoothed average")
	}
	if r.Avg() >= 10 {
		t.Fatalf("avg %v jumped past MinTh after one sample", r.Avg())
	}
}

func TestREDDeterministicWithSeed(t *testing.T) {
	run := func() []bool {
		r, _ := NewRED(5, 20, 0.3, 0.5, 7)
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.OnArrival(15)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RED not reproducible with fixed seed")
		}
	}
}

// TestREDSeedDrivesDrops is the flip side of the reproducibility test: the
// drop coin must actually consume the constructor's seed, so two
// controllers seeded differently but fed the identical congested queue
// trace diverge somewhere in the random-drop region.
func TestREDSeedDrivesDrops(t *testing.T) {
	run := func(seed int64) []bool {
		r, err := NewRED(5, 20, 0.3, 0.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 400)
		for i := range out {
			out[i] = r.OnArrival(15)
		}
		return out
	}
	a, b := run(3), run(4)
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Fatal("seeds 3 and 4 produced identical drop traces: seed is not reaching the coin")
}
