package fault_test

// The chaos suite: end-to-end fault-injection runs through the public
// endsystem facade. Three properties hold for every scenario:
//
//  1. Determinism — the same seed produces a bit-identical fault and
//     recovery trace, run after run, goroutine interleaving be damned.
//  2. Conservation — every admitted frame is accounted for:
//     delivered + dropped-with-accounting == streams × framesPerStream.
//  3. Bounded recovery — the supervisor converges in a bounded number of
//     rounds (no retry-forever, no hang).
//
// And the zeroth property: with no injector, the supervised endsystem is
// figure-identical to the plain sharded run.

import (
	"strings"
	"testing"

	"repro/internal/decision"
	"repro/internal/endsystem"
	"repro/internal/fault"
	"repro/internal/pci"
	"repro/internal/qm"
	"repro/internal/shard"
)

// chaosScenarios is the shared scenario table: each entry is a distinct
// fault mix the recovery machinery must survive.
var chaosScenarios = []struct {
	name    string
	mode    pci.Mode
	profile fault.Profile
	rcfg    shard.RecoveryConfig
	frames  int
}{
	{
		name:    "crash and restart",
		mode:    pci.ModeNone,
		profile: fault.Profile{Seed: 11, Shards: 2, ShardCrashes: 1, Horizon: 300},
		frames:  100,
	},
	{
		name:    "dead shard reaggregates",
		mode:    pci.ModeNone,
		profile: fault.Profile{Seed: 3, Shards: 2, ShardCrashes: 4, Horizon: 200},
		rcfg:    shard.RecoveryConfig{MaxRestarts: 1},
		frames:  100,
	},
	{
		name: "pci stalls and giveups",
		mode: pci.ModePIO,
		profile: fault.Profile{
			Seed: 21, Shards: 2, PCIFails: 4, BankTimeouts: 2, Horizon: 40,
		},
		frames: 200,
	},
	{
		name: "qm saturation shed",
		mode: pci.ModeNone,
		profile: fault.Profile{
			Seed: 31, Shards: 2, QMSaturations: 3, SaturationBurst: 4, Horizon: 300,
		},
		rcfg:   shard.RecoveryConfig{Policy: qm.RejectNew},
		frames: 100,
	},
	{
		name: "everything at once",
		mode: pci.ModePIO,
		profile: fault.Profile{
			Seed: 7, Shards: 3, ShardCrashes: 2, PCIFails: 3,
			PCIStalls: 2, BankTimeouts: 1, QMSaturations: 2, Horizon: 250,
		},
		rcfg:   shard.RecoveryConfig{Policy: qm.DropOldest},
		frames: 150,
	},
}

func runScenario(t *testing.T, i int) (*shard.SupervisedResult, *fault.Trace) {
	t.Helper()
	sc := chaosScenarios[i]
	sched, err := fault.NewSchedule(sc.profile)
	if err != nil {
		t.Fatal(err)
	}
	var tr fault.Trace
	res, err := endsystem.RunShardedSupervised(
		sc.profile.Shards, 4, sc.frames, sc.mode, sched, sc.rcfg, &tr)
	if err != nil {
		t.Fatalf("%s: %v\n%s", sc.name, err, tr.String())
	}
	return res, &tr
}

// TestChaosDeterministicTrace reruns every scenario and demands the fault
// and recovery trace be byte-identical — the replay contract that makes a
// chaos failure debuggable from its seed alone.
func TestChaosDeterministicTrace(t *testing.T) {
	for i, sc := range chaosScenarios {
		t.Run(sc.name, func(t *testing.T) {
			_, first := runScenario(t, i)
			_, second := runScenario(t, i)
			if first.String() != second.String() {
				t.Fatalf("seed %d trace diverged between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
					sc.profile.Seed, first.String(), second.String())
			}
		})
	}
}

// TestChaosConservation checks the frame ledger in every scenario:
// delivered + dropped-with-accounting covers the full admitted load, with
// drops only under a shedding policy.
func TestChaosConservation(t *testing.T) {
	for i, sc := range chaosScenarios {
		t.Run(sc.name, func(t *testing.T) {
			res, tr := runScenario(t, i)
			if res.Delivered+res.Dropped != res.Target {
				t.Fatalf("delivered %d + dropped %d != target %d\n%s",
					res.Delivered, res.Dropped, res.Target, tr.String())
			}
			if sc.rcfg.Policy == qm.Backpressure && res.Dropped != 0 {
				t.Fatalf("backpressure must not drop: %d", res.Dropped)
			}
			if len(res.DeadShards) > 0 && res.ReaggregatedSlots == 0 {
				t.Fatalf("dead shards %v with no re-aggregated slots", res.DeadShards)
			}
		})
	}
}

// TestChaosAllPrograms runs the fault schedules under every registered rank
// program: crash/restart recovery and the frame-conservation ledger are
// properties of the supervisor, not of any one discipline, so a program that
// breaks them under faults is a program bug. Determinism holds per program
// too — the trace is replayed once for each.
func TestChaosAllPrograms(t *testing.T) {
	// "crash and restart" and "everything at once": one pure-crash scenario
	// and one mixing every fault class, under shedding.
	for _, i := range []int{0, 4} {
		sc := chaosScenarios[i]
		for _, p := range decision.Programs() {
			t.Run(sc.name+"/"+p.String(), func(t *testing.T) {
				run := func() (*shard.SupervisedResult, *fault.Trace) {
					sched, err := fault.NewSchedule(sc.profile)
					if err != nil {
						t.Fatal(err)
					}
					var tr fault.Trace
					res, err := endsystem.RunShardedSupervisedProgram(
						sc.profile.Shards, 4, sc.frames, sc.mode, p, sched, sc.rcfg, &tr)
					if err != nil {
						t.Fatalf("%s/%v: %v\n%s", sc.name, p, err, tr.String())
					}
					return res, &tr
				}
				res, tr := run()
				if res.Delivered+res.Dropped != res.Target {
					t.Fatalf("program %v: delivered %d + dropped %d != target %d\n%s",
						p, res.Delivered, res.Dropped, res.Target, tr.String())
				}
				if sc.rcfg.Policy == qm.Backpressure && res.Dropped != 0 {
					t.Fatalf("program %v: backpressure must not drop: %d", p, res.Dropped)
				}
				_, second := run()
				if tr.String() != second.String() {
					t.Fatalf("program %v: seed %d trace diverged between runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
						p, sc.profile.Seed, tr.String(), second.String())
				}
			})
		}
	}
}

// TestChaosBoundedRecovery bounds the supervision rounds: at worst one
// round per scheduled fault event plus the fault-free epilogue — the
// supervisor may never spin.
func TestChaosBoundedRecovery(t *testing.T) {
	for i, sc := range chaosScenarios {
		t.Run(sc.name, func(t *testing.T) {
			res, tr := runScenario(t, i)
			sched, err := fault.NewSchedule(sc.profile)
			if err != nil {
				t.Fatal(err)
			}
			bound := 3 + len(sched.Events())
			if res.Rounds > bound {
				t.Fatalf("recovery took %d rounds, bound %d\n%s", res.Rounds, bound, tr.String())
			}
			if res.Restarts > 0 || len(res.DeadShards) > 0 {
				if res.Rounds < 2 {
					t.Fatalf("recovery actions in a single round: %+v", res)
				}
			}
		})
	}
}

// TestChaosNilInjectorMatchesPlainRun pins the zeroth property: with no
// fault schedule, the supervised endsystem reproduces the plain sharded
// run's figures exactly — same frames, same hardware service count, no
// recovery actions, empty trace.
func TestChaosNilInjectorMatchesPlainRun(t *testing.T) {
	const shards, slots, frames = 2, 4, 200
	plain, err := endsystem.RunSharded(shards, slots, frames, pci.ModeNone)
	if err != nil {
		t.Fatal(err)
	}
	var tr fault.Trace
	supd, err := endsystem.RunShardedSupervised(
		shards, slots, frames, pci.ModeNone, nil, shard.RecoveryConfig{}, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if supd.Delivered != plain.Frames {
		t.Fatalf("supervised delivered %d, plain %d", supd.Delivered, plain.Frames)
	}
	if supd.Counters.Services != plain.Counters.Services {
		t.Fatalf("service counters diverge: %d vs %d", supd.Counters.Services, plain.Counters.Services)
	}
	if supd.Rounds != 1 || supd.Restarts != 0 || supd.Dropped != 0 || len(supd.DeadShards) != 0 {
		t.Fatalf("nil injector triggered recovery: %+v", supd)
	}
	if tr.Len() != 0 {
		t.Fatalf("nil injector wrote a trace:\n%s", tr.String())
	}
	if supd.VirtualNs <= 0 || supd.PacketsPerS <= 0 {
		t.Fatalf("figures missing: %+v", supd)
	}
}

// TestChaosDegradedServiceContinues is the §4.2 claim end to end: after a
// shard dies, its flows continue as streamlets on survivors' stream-slots —
// QoS degrades but every frame still gets service (or is accounted for).
func TestChaosDegradedServiceContinues(t *testing.T) {
	res, tr := runScenario(t, 1) // "dead shard reaggregates"
	if len(res.DeadShards) == 0 {
		t.Skipf("seed no longer kills a shard:\n%s", tr.String())
	}
	if res.Delivered == 0 {
		t.Fatal("no frames delivered after degradation")
	}
	if res.RebindEpochs == 0 {
		t.Fatal("re-aggregation must advance survivors' rebind epochs")
	}
	wantLines := []string{"dead after", "reaggregate -> shard="}
	for _, want := range wantLines {
		if !strings.Contains(tr.String(), want) {
			t.Fatalf("trace missing %q:\n%s", want, tr.String())
		}
	}
}
