package fault

import (
	"errors"
	"io"
	"math/rand"
	"sort"
)

// This file is the control-plane side of the fault framework: journal-sink
// faults (write errors and short writes at seeded line indices) and the
// crash-point machinery the recovery harness stands on — a writer that
// tears mid-buffer like a kill -9, and a seeded sampler of crash offsets.
// Everything here is deterministic in its seed, like the rest of the
// package: the chaos and crash gates re-run the same faults in the same
// places on every run.

// ErrSinkFault is the error an injected journal-sink write failure returns.
var ErrSinkFault = errors.New("fault: injected sink write error")

// ErrCrash is returned by a CrashWriter for every write after its budget is
// spent — the writer's owner is "dead" and nothing further persists.
var ErrCrash = errors.New("fault: simulated crash")

// SinkPlan declares seeded journal-sink faults: Errors write attempts fail
// outright and ShortWrites persist only half their buffer, each at a
// distinct line index drawn from [0, Horizon).
type SinkPlan struct {
	Seed        int64
	Errors      int
	ShortWrites int
	// Horizon is the line-index range faults scatter over (default 4096).
	Horizon uint64
}

// FaultySink wraps a journal sink and injects the plan's faults by line
// index: the I-th Write call is line I. A short write persists a prefix and
// reports the truncated count with no error — the silent data loss a
// strict daemon must catch through the engine's sink-error counter.
type FaultySink struct {
	w        io.Writer
	errs     map[uint64]bool
	shorts   map[uint64]bool
	line     uint64
	injected uint64
}

// NewFaultySink expands plan into a deterministic fault table over w.
func NewFaultySink(w io.Writer, plan SinkPlan) *FaultySink {
	if plan.Horizon == 0 {
		plan.Horizon = 4096
	}
	rng := rand.New(rand.NewSource(plan.Seed))
	s := &FaultySink{w: w, errs: map[uint64]bool{}, shorts: map[uint64]bool{}}
	draw := func(table map[uint64]bool, n int) {
		for len(table) < n && uint64(len(s.errs)+len(s.shorts)) < plan.Horizon {
			at := uint64(rng.Int63n(int64(plan.Horizon)))
			if !s.errs[at] && !s.shorts[at] {
				table[at] = true
			}
		}
	}
	draw(s.errs, plan.Errors)
	draw(s.shorts, plan.ShortWrites)
	return s
}

// Write implements io.Writer with the plan's faults injected.
func (s *FaultySink) Write(p []byte) (int, error) {
	line := s.line
	s.line++
	switch {
	case s.errs[line]:
		s.injected++
		return 0, ErrSinkFault
	case s.shorts[line]:
		s.injected++
		n, err := s.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, nil
	default:
		return s.w.Write(p)
	}
}

// Injected returns how many writes the sink has faulted so far.
func (s *FaultySink) Injected() uint64 { return s.injected }

// CrashWriter passes writes through to W until Budget bytes have been
// accepted, then tears exactly like a kill -9 mid-write: the write that
// crosses the budget persists only its first Budget-written bytes, and
// every write from then on fails with ErrCrash. Wrapping a journal sink in
// one simulates a crash at byte offset Budget — the torn tail the replay
// parser must truncate.
type CrashWriter struct {
	W       io.Writer
	Budget  int64
	written int64
	crashed bool
}

// Write implements io.Writer with the crash semantics above.
func (c *CrashWriter) Write(p []byte) (int, error) {
	if c.crashed {
		return 0, ErrCrash
	}
	if c.written+int64(len(p)) <= c.Budget {
		n, err := c.W.Write(p)
		c.written += int64(n)
		return n, err
	}
	keep := int(c.Budget - c.written)
	if keep > 0 {
		keep, _ = c.W.Write(p[:keep])
	}
	c.written += int64(keep)
	c.crashed = true
	return keep, ErrCrash
}

// Crashed reports whether the budget has been spent.
func (c *CrashWriter) Crashed() bool { return c.crashed }

// Written returns how many bytes actually persisted.
func (c *CrashWriter) Written() int64 { return c.written }

// CrashPoints samples n distinct byte offsets in [1, size) from a seeded
// source, ascending — the crash instants a recovery harness replays from.
// Offsets are uniform, so they land mid-line, mid-checksum, and on line
// boundaries in proportion; when size is too small to yield n distinct
// offsets, every offset in range is returned.
func CrashPoints(seed int64, n int, size int64) []int64 {
	if size <= 1 || n <= 0 {
		return nil
	}
	if int64(n) >= size-1 {
		out := make([]int64, 0, size-1)
		for k := int64(1); k < size; k++ {
			out = append(out, k)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		k := 1 + rng.Int63n(size-1)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
