package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultySinkInjectsDeterministically(t *testing.T) {
	write := func() (*FaultySink, *bytes.Buffer, []int) {
		var buf bytes.Buffer
		s := NewFaultySink(&buf, SinkPlan{Seed: 9, Errors: 3, ShortWrites: 3, Horizon: 32})
		var faulted []int
		line := []byte("0123456789abcdef\n")
		for i := 0; i < 32; i++ {
			n, err := s.Write(line)
			if err != nil || n != len(line) {
				faulted = append(faulted, i)
			}
		}
		return s, &buf, faulted
	}
	s1, b1, f1 := write()
	s2, b2, f2 := write()
	if s1.Injected() != 6 || s2.Injected() != 6 {
		t.Fatalf("injected %d/%d faults, want 6 each", s1.Injected(), s2.Injected())
	}
	if len(f1) != 6 || len(f1) != len(f2) {
		t.Fatalf("faulted lines %v vs %v, want 6 identical", f1, f2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same seed faulted different lines: %v vs %v", f1, f2)
		}
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed persisted different bytes")
	}
	// A short write persisted a strict prefix, so the sink text is shorter
	// than 32 full lines but not empty.
	if b1.Len() == 0 || b1.Len() >= 32*17 {
		t.Fatalf("sink persisted %d bytes, want a faulted subset of %d", b1.Len(), 32*17)
	}
}

func TestCrashWriterTearsMidWrite(t *testing.T) {
	var buf bytes.Buffer
	c := &CrashWriter{W: &buf, Budget: 25}
	line := []byte("0123456789\n") // 11 bytes
	if n, err := c.Write(line); n != 11 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	if n, err := c.Write(line); n != 11 || err != nil {
		t.Fatalf("second write: %d, %v", n, err)
	}
	// The third write crosses the budget: 3 bytes persist, then the crash.
	n, err := c.Write(line)
	if n != 3 || !errors.Is(err, ErrCrash) {
		t.Fatalf("crossing write: %d, %v; want 3, ErrCrash", n, err)
	}
	if !c.Crashed() || c.Written() != 25 || buf.Len() != 25 {
		t.Fatalf("crashed=%t written=%d buffered=%d, want true/25/25", c.Crashed(), c.Written(), buf.Len())
	}
	if n, err := c.Write(line); n != 0 || !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash write: %d, %v; want 0, ErrCrash", n, err)
	}
	if got := buf.String(); got != "0123456789\n0123456789\n012" {
		t.Fatalf("persisted %q", got)
	}
}

func TestCrashPoints(t *testing.T) {
	a := CrashPoints(3, 50, 10000)
	b := CrashPoints(3, 50, 10000)
	if len(a) != 50 {
		t.Fatalf("sampled %d points, want 50", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed sampled different points: %v vs %v", a, b)
		}
		if a[i] < 1 || a[i] >= 10000 {
			t.Fatalf("point %d out of range [1, 10000)", a[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("points not strictly ascending: %v", a)
		}
	}
	// Tiny ranges saturate: every offset in [1, size).
	if got := CrashPoints(1, 100, 5); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("saturated sample: %v", got)
	}
	if CrashPoints(1, 0, 100) != nil || CrashPoints(1, 10, 1) != nil {
		t.Fatal("degenerate samples must be empty")
	}
}
