// Package fault is the deterministic, modeled-time fault-injection framework
// for the ShareStreams endsystem. A seeded Profile expands into a Schedule of
// fault events — PCI transfer failures and stalls, SRAM bank-switch timeouts,
// shard pipeline crashes, and Queue-Manager ring saturation bursts — each
// pinned to a deterministic site-local index rather than wall-clock time:
//
//   - bus events fire at a pci.Bus operation index (the op counter the bus
//     advances per transfer),
//   - crashes fire when a shard's scheduler has scheduled its N-th frame,
//   - saturation bursts fire at a producer's N-th submit attempt.
//
// Because every trigger is an index in the modeled execution and the schedule
// is drawn from a seeded source, the same seed yields the same faults in the
// same places on every run — the property the chaos suite asserts as a
// bit-identical recovery trace.
//
// Every injection point is an interface with a no-op default: a nil *Injector
// or nil *ShardPlan answers "no fault" from a nil-receiver method, so the
// scheduler hot path pays one pointer check and zero allocations when chaos
// is disabled.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/pci"
)

// Kind classifies a scheduled fault event.
type Kind uint8

const (
	// PCIFail is a burst of failed PCI transfer attempts at one bus op; the
	// bus recovers through bounded retry with exponential backoff, or gives
	// up past its retry budget.
	PCIFail Kind = iota
	// PCIStall is a long transfer stall charged to one bus op, testing the
	// transfer deadline.
	PCIStall
	// BankTimeout is an SRAM bank-ownership-switch timeout ("generally the
	// bottleneck", §5.2) charged to one bus op.
	BankTimeout
	// ShardCrash kills a shard's scheduler pipeline after it has scheduled
	// its At-th frame; the supervisor restarts it with capped backoff and
	// re-aggregates its flows when it is declared dead.
	ShardCrash
	// QMSaturation forces a burst of submit attempts down the ring-full
	// path, exercising the Queue Manager's overload policy.
	QMSaturation
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case PCIFail:
		return "pci-fail"
	case PCIStall:
		return "pci-stall"
	case BankTimeout:
		return "bank-timeout"
	case ShardCrash:
		return "shard-crash"
	case QMSaturation:
		return "qm-saturation"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault: Kind at site-local index At on shard Shard,
// with a kind-specific magnitude Arg (fail count, stall/timeout ns, or burst
// length).
type Event struct {
	Kind  Kind
	Shard int
	At    uint64
	Arg   float64
}

// String renders the event in the fixed grammar the chaos trace uses:
// "kind shard=K at=N arg=A".
func (e Event) String() string {
	return fmt.Sprintf("%s shard=%d at=%d arg=%g", e.Kind, e.Shard, e.At, e.Arg)
}

// Profile declares how many events of each kind a schedule holds and the
// magnitudes they carry. Zero-valued magnitude fields take the defaults
// below; zero counts mean "none of that kind".
type Profile struct {
	Seed   int64
	Shards int
	// Horizon is the site-local index range [0, Horizon) events scatter
	// over. Default 4096.
	Horizon uint64

	// event counts
	PCIFails      int
	PCIStalls     int
	BankTimeouts  int
	ShardCrashes  int
	QMSaturations int

	// magnitudes
	FailBurst       int     // failed attempts per PCIFail event; default 2 (within the bus retry budget)
	StallNs         float64 // stall length per PCIStall event; default 20000
	TimeoutNs       float64 // timeout length per BankTimeout event; default 2×3310 (two bank switches)
	SaturationBurst uint64  // forced ring-full attempts per QMSaturation event; default 8
}

func (p Profile) withDefaults() Profile {
	if p.Horizon == 0 {
		p.Horizon = 4096
	}
	if p.FailBurst == 0 {
		p.FailBurst = 2
	}
	if p.StallNs == 0 {
		p.StallNs = 20000
	}
	if p.TimeoutNs == 0 {
		p.TimeoutNs = 2 * 3310
	}
	if p.SaturationBurst == 0 {
		p.SaturationBurst = 8
	}
	return p
}

// Schedule is the expanded fault plan: every event, plus per-shard views.
type Schedule struct {
	profile Profile
	events  []Event
	shards  []*ShardPlan
}

// NewSchedule expands a profile into a deterministic schedule: events are
// drawn from a source seeded with Profile.Seed, so equal profiles yield
// equal schedules.
func NewSchedule(p Profile) (*Schedule, error) {
	p = p.withDefaults()
	if p.Shards < 1 {
		return nil, fmt.Errorf("fault: schedule needs at least 1 shard, got %d", p.Shards)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var events []Event
	// Draw in a fixed kind order so the seed fully determines the stream of
	// (shard, at) pairs each kind consumes.
	add := func(kind Kind, n int, arg float64) {
		for i := 0; i < n; i++ {
			events = append(events, Event{
				Kind:  kind,
				Shard: rng.Intn(p.Shards),
				At:    uint64(rng.Int63n(int64(p.Horizon))),
				Arg:   arg,
			})
		}
	}
	add(PCIFail, p.PCIFails, float64(p.FailBurst))
	add(PCIStall, p.PCIStalls, p.StallNs)
	add(BankTimeout, p.BankTimeouts, p.TimeoutNs)
	add(ShardCrash, p.ShardCrashes, 0)
	add(QMSaturation, p.QMSaturations, float64(p.SaturationBurst))
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Shard != events[j].Shard {
			return events[i].Shard < events[j].Shard
		}
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Kind < events[j].Kind
	})

	s := &Schedule{profile: p, events: events, shards: make([]*ShardPlan, p.Shards)}
	for k := range s.shards {
		s.shards[k] = &ShardPlan{shard: k}
	}
	for _, e := range events {
		plan := s.shards[e.Shard]
		switch e.Kind {
		case PCIFail, PCIStall, BankTimeout:
			plan.bus.add(e)
		case ShardCrash:
			plan.crashes = append(plan.crashes, e.At)
		case QMSaturation:
			if plan.saturations == nil {
				plan.saturations = make(map[uint64]uint64)
			}
			plan.saturations[e.At] += uint64(e.Arg)
		default:
			return nil, fmt.Errorf("fault: unknown event kind %v", e.Kind)
		}
	}
	return s, nil
}

// Events returns the schedule's events ordered by (shard, index, kind).
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// String renders the whole schedule, one event per line, in deterministic
// order — the header of a chaos trace.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d shards=%d events=%d\n", s.profile.Seed, s.profile.Shards, len(s.events))
	for _, e := range s.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Shard returns shard k's view of the schedule, or nil (the no-op plan)
// when k is out of range.
func (s *Schedule) Shard(k int) *ShardPlan {
	if s == nil || k < 0 || k >= len(s.shards) {
		return nil
	}
	return s.shards[k]
}

// ShardPlan is one shard's slice of the schedule. All methods are nil-safe:
// a nil plan injects nothing.
type ShardPlan struct {
	shard       int
	bus         Injector
	crashes     []uint64
	saturations map[uint64]uint64
}

// Bus returns the shard's PCI-level injector (nil when the plan is nil or
// holds no bus events), ready to install as pci.Bus.Injector.
func (p *ShardPlan) Bus() *Injector {
	if p == nil || p.bus.faults == nil {
		return nil
	}
	return &p.bus
}

// CrashAt reports whether the shard's pipeline crashes once its scheduler
// has scheduled `frames` frames. Crash points are consumed in ascending
// order by the supervisor; this predicate answers the next unconsumed one.
func (p *ShardPlan) CrashAt(frames uint64) bool {
	if p == nil || len(p.crashes) == 0 {
		return false
	}
	return frames >= p.crashes[0]
}

// ConsumeCrash retires the shard's next crash point (after the supervisor
// has acted on it) and returns the index it fired at.
func (p *ShardPlan) ConsumeCrash() (uint64, bool) {
	if p == nil || len(p.crashes) == 0 {
		return 0, false
	}
	at := p.crashes[0]
	p.crashes = p.crashes[1:]
	return at, true
}

// BurstAt returns the saturation burst length due at submit attempt n
// (0 when none).
func (p *ShardPlan) BurstAt(n uint64) uint64 {
	if p == nil || p.saturations == nil {
		return 0
	}
	return p.saturations[n]
}

// Injector maps bus operation indices to injected pci.Fault values. The
// zero value and nil both inject nothing; OnTransfer is a map lookup, so it
// allocates nothing on the transfer path.
type Injector struct {
	faults map[uint64]pci.Fault
}

func (in *Injector) add(e Event) {
	if in.faults == nil {
		in.faults = make(map[uint64]pci.Fault)
	}
	f := in.faults[e.At]
	switch e.Kind {
	case PCIFail:
		f.Fails += int(e.Arg)
	case PCIStall:
		f.StallNs += e.Arg
	case BankTimeout:
		f.TimeoutNs += e.Arg
	case ShardCrash, QMSaturation:
		// not bus-level events; never routed here
	default:
	}
	in.faults[e.At] = f
}

// OnTransfer implements pci.FaultInjector. A nil *Injector is the no-op
// default.
func (in *Injector) OnTransfer(op uint64) pci.Fault {
	if in == nil {
		return pci.Fault{}
	}
	return in.faults[op]
}

// Fault returns the injected fault at op, if any — the test-facing view of
// the injector's table.
func (in *Injector) Fault(op uint64) (pci.Fault, bool) {
	if in == nil {
		return pci.Fault{}, false
	}
	f, ok := in.faults[op]
	return f, ok
}
