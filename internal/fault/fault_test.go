package fault

import (
	"strings"
	"testing"

	"repro/internal/pci"
)

func testProfile(seed int64) Profile {
	return Profile{
		Seed:          seed,
		Shards:        4,
		Horizon:       1024,
		PCIFails:      3,
		PCIStalls:     2,
		BankTimeouts:  2,
		ShardCrashes:  2,
		QMSaturations: 2,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a, err := NewSchedule(testProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(testProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	c, err := NewSchedule(testProfile(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
	if got := len(a.Events()); got != 11 {
		t.Fatalf("event count %d, want 11", got)
	}
}

func TestScheduleRejectsZeroShards(t *testing.T) {
	if _, err := NewSchedule(Profile{Seed: 1}); err == nil {
		t.Fatal("0-shard profile must be rejected")
	}
}

func TestEventGrammar(t *testing.T) {
	e := Event{Kind: BankTimeout, Shard: 2, At: 77, Arg: 6620}
	if got, want := e.String(), "bank-timeout shard=2 at=77 arg=6620"; got != want {
		t.Fatalf("event grammar %q, want %q", got, want)
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind renders %q", got)
	}
}

func TestShardPlanRouting(t *testing.T) {
	s, err := NewSchedule(testProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	// Every event must land on exactly the plan of its shard.
	var busEvents, crashes, bursts int
	for _, e := range s.Events() {
		plan := s.Shard(e.Shard)
		if plan == nil {
			t.Fatalf("no plan for shard %d", e.Shard)
		}
		switch e.Kind {
		case PCIFail, PCIStall, BankTimeout:
			f, ok := plan.Bus().Fault(e.At)
			if !ok {
				t.Fatalf("bus event %v missing from shard plan", e)
			}
			switch e.Kind {
			case PCIFail:
				if f.Fails == 0 {
					t.Fatalf("%v lost its fail burst: %+v", e, f)
				}
			case PCIStall:
				if f.StallNs == 0 {
					t.Fatalf("%v lost its stall: %+v", e, f)
				}
			case BankTimeout:
				if f.TimeoutNs == 0 {
					t.Fatalf("%v lost its timeout: %+v", e, f)
				}
			default:
			}
			busEvents++
		case ShardCrash:
			if !plan.CrashAt(e.At) {
				// earlier crash points may precede this one; consume until found
				found := false
				for {
					at, ok := plan.ConsumeCrash()
					if !ok {
						break
					}
					if at == e.At {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("crash event %v missing from shard plan", e)
				}
			}
			crashes++
		case QMSaturation:
			if plan.BurstAt(e.At) == 0 {
				t.Fatalf("saturation event %v missing from shard plan", e)
			}
			bursts++
		default:
			t.Fatalf("unknown kind in schedule: %v", e)
		}
	}
	if busEvents != 7 || crashes != 2 || bursts != 2 {
		t.Fatalf("routing counts bus=%d crash=%d burst=%d, want 7/2/2", busEvents, crashes, bursts)
	}
}

func TestNilPlanIsNoOp(t *testing.T) {
	var plan *ShardPlan
	if plan.Bus() != nil {
		t.Fatal("nil plan must expose a nil bus injector")
	}
	if plan.CrashAt(0) || plan.BurstAt(0) != 0 {
		t.Fatal("nil plan must inject nothing")
	}
	if _, ok := plan.ConsumeCrash(); ok {
		t.Fatal("nil plan has no crash points")
	}
	var in *Injector
	if f := in.OnTransfer(0); f != (pci.Fault{}) {
		t.Fatalf("nil injector returned %+v", f)
	}
	if _, ok := in.Fault(0); ok {
		t.Fatal("nil injector holds no faults")
	}
	s, err := NewSchedule(Profile{Seed: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shard(-1) != nil || s.Shard(2) != nil {
		t.Fatal("out-of-range shard views must be nil")
	}
}

func TestCrashPointsConsumeInOrder(t *testing.T) {
	p := Profile{Seed: 9, Shards: 1, ShardCrashes: 3, Horizon: 512}
	s, err := NewSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := s.Shard(0)
	var prev uint64
	for i := 0; i < 3; i++ {
		at, ok := plan.ConsumeCrash()
		if !ok {
			t.Fatalf("crash point %d missing", i)
		}
		if at < prev {
			t.Fatalf("crash points out of order: %d after %d", at, prev)
		}
		prev = at
	}
	if _, ok := plan.ConsumeCrash(); ok {
		t.Fatal("more crash points than scheduled")
	}
}

func TestInjectorDrivesBusRetry(t *testing.T) {
	s, err := NewSchedule(Profile{Seed: 3, Shards: 1, PCIFails: 1, Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	bus, err := pci.New(pci.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bus.Injector = s.Shard(0).Bus()
	for op := 0; op < 4; op++ {
		if _, err := bus.PushPIO(0, 8); err != nil {
			t.Fatalf("op %d: default FailBurst of 2 sits within the retry budget: %v", op, err)
		}
	}
	if bus.Retries != 2 || bus.Giveups != 0 {
		t.Fatalf("retries=%d giveups=%d, want 2/0", bus.Retries, bus.Giveups)
	}
}

func TestTrace(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Addf("dropped")
	if nilTrace.Len() != 0 || nilTrace.String() != "" || nilTrace.Lines() != nil {
		t.Fatal("nil trace must discard appends")
	}
	tr := &Trace{}
	tr.Addf("round=%d shard=%d crash at=%d", 0, 1, 17)
	tr.Addf("round=%d shard=%d restart backoff=%gns", 0, 1, 6620.0)
	if tr.Len() != 2 {
		t.Fatalf("len %d, want 2", tr.Len())
	}
	want := "round=0 shard=1 crash at=17\nround=0 shard=1 restart backoff=6620ns\n"
	if tr.String() != want {
		t.Fatalf("trace rendering:\n%q\nwant\n%q", tr.String(), want)
	}
	lines := tr.Lines()
	lines[0] = "mutated"
	if strings.Contains(tr.String(), "mutated") {
		t.Fatal("Lines must return a copy")
	}
}
