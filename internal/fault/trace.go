package fault

import (
	"fmt"
	"strings"
)

// Trace is the append-only record of fault and recovery actions a chaos run
// produces. Writers append fully-formatted lines in a deterministic order
// (the supervisor merges per-round records by (round, shard) before
// appending), so two runs with the same seed produce byte-identical
// String() output — the chaos suite's central assertion.
//
// A nil *Trace discards appends, so production paths can thread one through
// unconditionally.
type Trace struct {
	lines []string
}

// Addf appends one formatted line. No-op on a nil trace.
func (t *Trace) Addf(format string, args ...any) {
	if t == nil {
		return
	}
	t.lines = append(t.lines, fmt.Sprintf(format, args...))
}

// Len returns the number of recorded lines (0 for nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.lines)
}

// Lines returns a copy of the recorded lines.
func (t *Trace) Lines() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.lines))
	copy(out, t.lines)
	return out
}

// String joins the recorded lines, one per row, with a trailing newline
// when non-empty.
func (t *Trace) String() string {
	if t == nil || len(t.lines) == 0 {
		return ""
	}
	return strings.Join(t.lines, "\n") + "\n"
}
