// Package fpga models the Virtex-I realization of ShareStreams: area in
// slices, achievable clock rate, and the packet-time feasibility arithmetic
// behind Figure 1's architectural-solutions framework and Figure 7's
// area/clock-rate characteristics.
//
// # Calibration
//
// The paper states the synthesized block areas directly (§5.1): the
// Control/Steering logic block is 22 Virtex-I slices, a Decision block 190
// slices and a Register Base block 150 slices; a Virtex-1000 part has 64×96
// CLBs at 2 slices per CLB (12288 slices, ≈1M system gates); total area
// grows linearly in the stream-slot count for both the BA and WR
// configurations, with shuffle-network wiring and pass-through CLBs
// proportional to the slot count.
//
// The paper does not tabulate Figure 7's clock rates, so the model encodes a
// clock table satisfying every quantitative claim in the text:
//
//   - the Celoxica RC1000 card clocks designs up to 100 MHz;
//   - the WR (winner-only) variant shows less clock-rate variation from 4 to
//     32 slots than BA (routing only winners eases physical routing);
//   - BA degrades ≈20% from WR at 8 and 16 slots but only ≈10% at 32;
//   - a 4-slot BA design sustains the paper's 7.6 M decisions/s line-card
//     rate under the FSM cost model (8 clocks per decision at N=4);
//   - the Virtex-I implementation meets the packet-time of 64-byte and
//     1500-byte frames on 1 Gbps links, and of 1500-byte (but not 64-byte)
//     frames on 10 Gbps links.
//
// The Virtex-II extension (§6) models the hard 18×18 multipliers taking over
// the window-constraint cross-multiplication and the finer speed grade,
// lifting clock rates by a calibrated factor.
package fpga

import (
	"fmt"
	"math"
	"math/bits"
)

// Slice counts stated in §5.1 for the Virtex-I synthesis.
const (
	SlicesControl  = 22  // Control & Steering logic block
	SlicesDecision = 190 // one Decision block
	SlicesRegBase  = 150 // one Register Base block (stream-slot)

	// Virtex-1000: 64×96 CLB array, 2 slices per CLB.
	Virtex1000CLBRows = 64
	Virtex1000CLBCols = 96
	SlicesPerCLB      = 2
	Virtex1000Slices  = Virtex1000CLBRows * Virtex1000CLBCols * SlicesPerCLB

	// Shuffle wiring and pass-through CLB overhead per stream-slot. The
	// paper gives no number, only that area "grows linearly" with
	// slot count; BA routes winner and loser buses (53 bits each way)
	// while WR routes winners only, so BA carries more pass-through
	// fabric per slot.
	WiringSlicesPerSlotBA = 24
	WiringSlicesPerSlotWR = 14
)

// Routing mirrors core.Routing without importing it (fpga sits below core in
// the dependency order so both core and hwpq can use it).
type Routing uint8

const (
	// BA is the block (sorted-list) configuration.
	BA Routing = iota
	// WR is the winner-only (max-finding) configuration.
	WR
)

// String returns the paper's abbreviation.
func (r Routing) String() string {
	if r == WR {
		return "WR"
	}
	return "BA"
}

// Device selects the FPGA family model.
type Device uint8

const (
	// VirtexI is the prototype device (Celoxica RC1000, Virtex-1000).
	VirtexI Device = iota
	// VirtexII is the §6 extension: hard multipliers and a finer speed
	// grade.
	VirtexII
)

// virtexIIClockFactor is the modeled Virtex-II speedup: hard multipliers
// remove the LUT cross-multiplier from the critical path and the process
// shrink raises fabric speed.
const virtexIIClockFactor = 1.8

// String returns the device name.
func (d Device) String() string {
	if d == VirtexII {
		return "Virtex-II"
	}
	return "Virtex-I"
}

// Area is a design's slice budget broken down by component.
type Area struct {
	Slots          int
	Routing        Routing
	ControlSlices  int
	DecisionSlices int // N/2 Decision blocks
	RegBaseSlices  int // N Register Base blocks
	WiringSlices   int // shuffle wiring + pass-through CLBs
}

// TotalSlices returns the design's total slice count.
func (a Area) TotalSlices() int {
	return a.ControlSlices + a.DecisionSlices + a.RegBaseSlices + a.WiringSlices
}

// CLBs returns the design's CLB count (2 slices per Virtex-I CLB, rounded
// up).
func (a Area) CLBs() int { return (a.TotalSlices() + SlicesPerCLB - 1) / SlicesPerCLB }

// FitsVirtex1000 reports whether the design fits the prototype part.
func (a Area) FitsVirtex1000() bool { return a.TotalSlices() <= Virtex1000Slices }

// Utilization returns the fraction of the Virtex-1000 consumed.
func (a Area) Utilization() float64 { return float64(a.TotalSlices()) / Virtex1000Slices }

// EstimateArea computes the slice budget for an N-slot design. N must be a
// power of two ≥ 2.
func EstimateArea(slots int, routing Routing) (Area, error) {
	if slots < 2 || bits.OnesCount(uint(slots)) != 1 {
		return Area{}, fmt.Errorf("fpga: slot count %d is not a power of two ≥ 2", slots)
	}
	wiring := WiringSlicesPerSlotBA
	if routing == WR {
		wiring = WiringSlicesPerSlotWR
	}
	return Area{
		Slots:          slots,
		Routing:        routing,
		ControlSlices:  SlicesControl,
		DecisionSlices: slots / 2 * SlicesDecision,
		RegBaseSlices:  slots * SlicesRegBase,
		WiringSlices:   slots * wiring,
	}, nil
}

// Floorplan sketches how a design lays out on the CLB grid: Register Base
// blocks in a column per slot pair, Decision blocks in a center column, and
// the shuffle wiring crossing between them. It yields a critical-wire
// estimate that grounds the clock-rate calibration: BA routes winner AND
// loser buses back to the recirculation registers, roughly doubling the
// cross-column wiring WR needs, and wire length grows with the column
// height (∝ N), which is why clock rate falls as designs grow and why WR
// stays flatter.
type Floorplan struct {
	Slots   int
	Routing Routing
	// ColumnCLBs is the height of the Register Base column in CLBs.
	ColumnCLBs int
	// CriticalWireCLBs is the modeled longest shuffle wire, in CLB pitches.
	CriticalWireCLBs int
	// BusesRouted is the recirculation buses crossing the fabric (N for
	// BA — winners and losers — N/2 for WR).
	BusesRouted int
}

// PlanFloor sketches the layout for an N-slot design.
func PlanFloor(slots int, routing Routing) (Floorplan, error) {
	area, err := EstimateArea(slots, routing)
	if err != nil {
		return Floorplan{}, err
	}
	// Register Base column: one block is 150 slices = 75 CLBs; stacked in
	// a column of width ~8 CLBs.
	regCLBs := area.RegBaseSlices / SlicesPerCLB
	column := (regCLBs + 7) / 8
	// The perfect shuffle connects register i to comparator i/2: the
	// longest wire spans half the column.
	critical := column / 2
	if critical < 1 {
		critical = 1
	}
	buses := slots
	if routing == WR {
		buses = slots / 2
		// Winner-only routing also compacts the logic spread (§5.1),
		// shortening the worst wire.
		critical = critical * 2 / 3
		if critical < 1 {
			critical = 1
		}
	}
	return Floorplan{
		Slots:            slots,
		Routing:          routing,
		ColumnCLBs:       column,
		CriticalWireCLBs: critical,
		BusesRouted:      buses,
	}, nil
}

// clockTable holds the calibrated Figure 7 clock rates (MHz) for the
// synthesized slot counts.
var clockTable = map[Routing]map[int]float64{
	BA: {4: 61, 8: 54, 16: 47, 32: 44},
	WR: {4: 65, 8: 67, 16: 59, 32: 49},
}

// ClockMHz returns the modeled post-place-and-route clock rate for an
// N-slot design. For slot counts outside the synthesized 4–32 range the
// model extrapolates geometrically at the average per-doubling degradation
// of the table (clearly synthetic; used only for design-space exploration).
func ClockMHz(slots int, routing Routing, dev Device) (float64, error) {
	if slots < 2 || bits.OnesCount(uint(slots)) != 1 {
		return 0, fmt.Errorf("fpga: slot count %d is not a power of two ≥ 2", slots)
	}
	table := clockTable[routing]
	mhz, ok := table[slots]
	if !ok {
		mhz = extrapolate(table, slots)
	}
	if dev == VirtexII {
		mhz *= virtexIIClockFactor
	}
	return mhz, nil
}

// extrapolate extends the calibration table geometrically beyond its range.
func extrapolate(table map[int]float64, slots int) float64 {
	// Average per-doubling ratio across the table's 4→32 span.
	ratio := math.Pow(table[32]/table[4], 1.0/3.0)
	switch {
	case slots < 4:
		return table[4] / ratio // one doubling better than 4
	default:
		steps := math.Log2(float64(slots) / 32.0)
		return table[32] * math.Pow(ratio, steps)
	}
}

// DecisionRate returns decisions per second for a design clocked at mhz
// whose FSM consumes cyclesPerDecision clocks per decision cycle.
func DecisionRate(mhz float64, cyclesPerDecision int) float64 {
	if cyclesPerDecision <= 0 {
		return 0
	}
	return mhz * 1e6 / float64(cyclesPerDecision)
}

// PacketRate returns frames per second: in the BA configuration each
// decision cycle transmits a block of `block` frames ("the throughput of the
// scheduler increases by a factor equal to the block size").
func PacketRate(mhz float64, cyclesPerDecision, block int) float64 {
	if block < 1 {
		block = 1
	}
	return DecisionRate(mhz, cyclesPerDecision) * float64(block)
}

// PacketTimeSeconds returns the wire time of a frame: frame length over line
// speed (§1: "packet-length(in bits) / line-speed(bps)").
func PacketTimeSeconds(frameBytes int, linkBps float64) float64 {
	return float64(frameBytes*8) / linkBps
}

// MeetsPacketTime reports whether a design can decide within one packet
// time: the decision latency (cyclesPerDecision at mhz) must not exceed the
// frame's wire time, with effectiveBlock frames amortizing one decision in
// the BA configuration.
func MeetsPacketTime(mhz float64, cyclesPerDecision, effectiveBlock, frameBytes int, linkBps float64) bool {
	if effectiveBlock < 1 {
		effectiveBlock = 1
	}
	decisionSeconds := float64(cyclesPerDecision) / (mhz * 1e6)
	return decisionSeconds <= PacketTimeSeconds(frameBytes, linkBps)*float64(effectiveBlock)
}

// RequiredRate returns the scheduling rate (decisions/s) Figure 1's
// framework demands to serve a link at wire speed with the given frame
// size: one decision per packet time.
func RequiredRate(frameBytes int, linkBps float64) float64 {
	return 1 / PacketTimeSeconds(frameBytes, linkBps)
}

// MultiPortFit reports whether `ports` independent ShareStreams schedulers
// of slotsPerPort slots each fit on one Virtex-1000 — the design question
// behind the §5.2 line-card contrast (the Cisco GSR offers 8 queues *per
// port*; a multi-port ShareStreams card replicates the scheduler per port
// and shares only the chip). The control block is per scheduler; returns
// the total slice budget alongside the verdict.
func MultiPortFit(ports, slotsPerPort int, routing Routing) (bool, int, error) {
	if ports < 1 {
		return false, 0, fmt.Errorf("fpga: %d ports", ports)
	}
	area, err := EstimateArea(slotsPerPort, routing)
	if err != nil {
		return false, 0, err
	}
	total := ports * area.TotalSlices()
	return total <= Virtex1000Slices, total, nil
}

// Common link speeds and frame sizes used throughout the evaluation.
const (
	Gigabit    = 1e9
	TenGigabit = 1e10

	MinFrameBytes   = 64
	MTUFrameBytes   = 1500
	JumboFrameBytes = 9000
)
