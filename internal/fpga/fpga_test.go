package fpga

import (
	"math"
	"testing"
)

func TestEstimateAreaValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := EstimateArea(n, BA); err == nil {
			t.Errorf("EstimateArea accepted %d slots", n)
		}
	}
}

func TestAreaComponents(t *testing.T) {
	a, err := EstimateArea(4, BA)
	if err != nil {
		t.Fatal(err)
	}
	if a.ControlSlices != 22 {
		t.Errorf("control = %d, want 22", a.ControlSlices)
	}
	if a.DecisionSlices != 2*190 {
		t.Errorf("decision = %d, want %d (N/2 blocks)", a.DecisionSlices, 2*190)
	}
	if a.RegBaseSlices != 4*150 {
		t.Errorf("regbase = %d, want %d", a.RegBaseSlices, 4*150)
	}
	if a.TotalSlices() != 22+380+600+4*WiringSlicesPerSlotBA {
		t.Errorf("total = %d", a.TotalSlices())
	}
}

func TestAreaGrowsLinearly(t *testing.T) {
	// §5.1: "Our architecture grows linearly, in terms of area" — the
	// per-slot increment must be constant across doublings.
	for _, r := range []Routing{BA, WR} {
		prev, _ := EstimateArea(4, r)
		prevPerSlot := float64(prev.TotalSlices()-SlicesControl) / 4
		for _, n := range []int{8, 16, 32} {
			a, _ := EstimateArea(n, r)
			perSlot := float64(a.TotalSlices()-SlicesControl) / float64(n)
			if math.Abs(perSlot-prevPerSlot) > 1e-9 {
				t.Errorf("%v: per-slot slices changed %v -> %v at N=%d", r, prevPerSlot, perSlot, n)
			}
		}
	}
}

func TestBAandWRAreaClose(t *testing.T) {
	// §5.1: "The BA architecture maintains almost the same area with its
	// WR counterpart for all stream-slot sizes" — within a few percent.
	for _, n := range []int{4, 8, 16, 32} {
		ba, _ := EstimateArea(n, BA)
		wr, _ := EstimateArea(n, WR)
		ratio := float64(ba.TotalSlices()) / float64(wr.TotalSlices())
		if ratio < 1.0 || ratio > 1.10 {
			t.Errorf("N=%d: BA/WR area ratio = %.3f, want (1.0, 1.10]", n, ratio)
		}
	}
}

func TestAllPaperDesignsFitVirtex1000(t *testing.T) {
	// The prototype "easily scales from 4 to 32 stream-slots on a single
	// chip".
	for _, r := range []Routing{BA, WR} {
		for _, n := range []int{4, 8, 16, 32} {
			a, _ := EstimateArea(n, r)
			if !a.FitsVirtex1000() {
				t.Errorf("%v N=%d does not fit Virtex-1000: %d slices", r, n, a.TotalSlices())
			}
		}
	}
	// And the fit must be meaningful: 32-slot BA should consume a
	// substantial fraction of the chip.
	a, _ := EstimateArea(32, BA)
	if u := a.Utilization(); u < 0.5 || u > 1.0 {
		t.Errorf("32-slot BA utilization = %.2f, want a substantial fraction", u)
	}
	if a.CLBs() != (a.TotalSlices()+1)/2 {
		t.Errorf("CLBs = %d inconsistent with %d slices", a.CLBs(), a.TotalSlices())
	}
}

func TestClockClaims(t *testing.T) {
	// Every §5.1 textual claim about Figure 7's clock rates.
	for _, n := range []int{4, 8, 16, 32} {
		ba, err := ClockMHz(n, BA, VirtexI)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := ClockMHz(n, WR, VirtexI)
		if err != nil {
			t.Fatal(err)
		}
		if ba > 100 || wr > 100 {
			t.Errorf("N=%d exceeds the RC1000's 100 MHz ceiling (BA %.0f, WR %.0f)", n, ba, wr)
		}
		if wr < ba {
			t.Errorf("N=%d: WR (%.0f) slower than BA (%.0f)", n, wr, ba)
		}
		gap := (wr - ba) / wr
		switch n {
		case 8, 16:
			if gap < 0.15 || gap > 0.25 {
				t.Errorf("N=%d: BA degradation %.0f%%, paper says ≈20%%", n, gap*100)
			}
		case 32:
			if gap < 0.05 || gap > 0.15 {
				t.Errorf("N=32: BA degradation %.0f%%, paper says ≈10%%", gap*100)
			}
		}
	}
	// WR shows less clock-rate variation 4..32 than BA.
	baVar := variation(BA)
	wrVar := variation(WR)
	if wrVar >= baVar {
		t.Errorf("WR variation %.3f not less than BA %.3f", wrVar, baVar)
	}
}

func variation(r Routing) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range []int{4, 8, 16, 32} {
		c, _ := ClockMHz(n, r, VirtexI)
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return (hi - lo) / hi
}

func TestClockValidationAndExtrapolation(t *testing.T) {
	if _, err := ClockMHz(5, BA, VirtexI); err == nil {
		t.Error("accepted non-power-of-two slots")
	}
	c64, err := ClockMHz(64, BA, VirtexI)
	if err != nil {
		t.Fatal(err)
	}
	c32, _ := ClockMHz(32, BA, VirtexI)
	if c64 >= c32 || c64 <= 0 {
		t.Errorf("extrapolated 64-slot clock %.1f not below 32-slot %.1f", c64, c32)
	}
	c2, _ := ClockMHz(2, BA, VirtexI)
	c4, _ := ClockMHz(4, BA, VirtexI)
	if c2 <= c4 {
		t.Errorf("extrapolated 2-slot clock %.1f not above 4-slot %.1f", c2, c4)
	}
}

func TestVirtexIIFaster(t *testing.T) {
	v1, _ := ClockMHz(32, BA, VirtexI)
	v2, _ := ClockMHz(32, BA, VirtexII)
	if v2 <= v1 {
		t.Errorf("Virtex-II (%.0f) not faster than Virtex-I (%.0f)", v2, v1)
	}
}

func TestLineCardDecisionRate(t *testing.T) {
	// §5.2: "the scheduler throughput with four stream-slots is 7.6
	// million packets/second in the switch line-card realization". The
	// 4-slot BA FSM costs 8 clocks per decision (log2(4)+1+1+4).
	mhz, _ := ClockMHz(4, BA, VirtexI)
	rate := DecisionRate(mhz, 8)
	if rate < 7.4e6 || rate > 7.8e6 {
		t.Errorf("4-slot line-card rate = %.2fM, want ≈7.6M", rate/1e6)
	}
}

func TestPacketTimes(t *testing.T) {
	// §1: Ethernet frame time on a 10 Gbps link ranges from ≈0.05 µs
	// (64 B) to 1.2 µs (1500 B).
	if got := PacketTimeSeconds(64, TenGigabit); math.Abs(got-51.2e-9) > 1e-12 {
		t.Errorf("64B@10G = %v, want 51.2ns", got)
	}
	if got := PacketTimeSeconds(1500, TenGigabit); math.Abs(got-1.2e-6) > 1e-9 {
		t.Errorf("1500B@10G = %v, want 1.2µs", got)
	}
	// §4.1: 1500-byte frames on 1 Gbps take 12 µs; 64-byte take ≈500 ns.
	if got := PacketTimeSeconds(1500, Gigabit); math.Abs(got-12e-6) > 1e-9 {
		t.Errorf("1500B@1G = %v, want 12µs", got)
	}
	if got := PacketTimeSeconds(64, Gigabit); math.Abs(got-512e-9) > 1e-12 {
		t.Errorf("64B@1G = %v, want 512ns", got)
	}
}

func TestFeasibilityClaims(t *testing.T) {
	// §5.1: "Our Virtex I implementation can easily meet the packet-time
	// requirements of all frame sizes (64-byte and 1500-byte) on gigabit
	// links, and 1500-byte frames on 10Gbps links" — checked across the
	// synthesized design space, block transmission amortizing the BA
	// decision across N frames.
	for _, n := range []int{4, 8, 16, 32} {
		cycles := intLog2(n) + 2 + n
		mhz, _ := ClockMHz(n, BA, VirtexI)
		if !MeetsPacketTime(mhz, cycles, n, MinFrameBytes, Gigabit) {
			t.Errorf("N=%d BA misses 64B@1G", n)
		}
		if !MeetsPacketTime(mhz, cycles, n, MTUFrameBytes, Gigabit) {
			t.Errorf("N=%d BA misses 1500B@1G", n)
		}
		if !MeetsPacketTime(mhz, cycles, n, MTUFrameBytes, TenGigabit) {
			t.Errorf("N=%d BA misses 1500B@10G", n)
		}
	}
	// And the counter-claim: 64-byte frames at 10 Gbps are out of reach
	// for the 32-slot design even with block amortization at these
	// clock rates... winner-only certainly misses it.
	mhz, _ := ClockMHz(32, WR, VirtexI)
	if MeetsPacketTime(mhz, intLog2(32)+2+32, 1, MinFrameBytes, TenGigabit) {
		t.Error("32-slot WR claims 64B@10G; the paper does not")
	}
}

func intLog2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func TestRequiredRate(t *testing.T) {
	// Figure 1 framework: wire-speed 64B@10G needs ≈19.5M decisions/s.
	got := RequiredRate(64, TenGigabit)
	if math.Abs(got-1.953125e7) > 1 {
		t.Errorf("RequiredRate(64B, 10G) = %v, want 19.53M", got)
	}
	if r := RequiredRate(1500, Gigabit); math.Abs(r-1/12e-6) > 1 {
		t.Errorf("RequiredRate(1500B, 1G) = %v, want 83.3k", r)
	}
}

func TestRateHelpers(t *testing.T) {
	if DecisionRate(61, 0) != 0 {
		t.Error("zero cycles must yield zero rate")
	}
	if PacketRate(61, 8, 4) != 4*DecisionRate(61, 8) {
		t.Error("PacketRate must scale by block size")
	}
	if PacketRate(61, 8, 0) != DecisionRate(61, 8) {
		t.Error("PacketRate must clamp block to 1")
	}
}

func TestStrings(t *testing.T) {
	if BA.String() != "BA" || WR.String() != "WR" {
		t.Error("Routing.String misbehaved")
	}
	if VirtexI.String() != "Virtex-I" || VirtexII.String() != "Virtex-II" {
		t.Error("Device.String misbehaved")
	}
}

func TestFloorplanGroundsClockCalibration(t *testing.T) {
	if _, err := PlanFloor(3, BA); err == nil {
		t.Error("accepted non-power-of-two")
	}
	for _, n := range []int{4, 8, 16, 32} {
		ba, err := PlanFloor(n, BA)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := PlanFloor(n, WR)
		if err != nil {
			t.Fatal(err)
		}
		// BA routes winners AND losers: twice the buses.
		if ba.BusesRouted != 2*wr.BusesRouted {
			t.Errorf("N=%d: BA %d buses vs WR %d", n, ba.BusesRouted, wr.BusesRouted)
		}
		// WR's compacted spread shortens the critical wire.
		if wr.CriticalWireCLBs > ba.CriticalWireCLBs {
			t.Errorf("N=%d: WR wire %d longer than BA %d", n, wr.CriticalWireCLBs, ba.CriticalWireCLBs)
		}
		if ba.CriticalWireCLBs < 1 || ba.ColumnCLBs < 1 {
			t.Errorf("N=%d: degenerate floorplan %+v", n, ba)
		}
	}
	// Wire length grows with N (monotone) — the mechanism behind the
	// falling clock table.
	prev := 0
	for _, n := range []int{4, 8, 16, 32} {
		fp, _ := PlanFloor(n, BA)
		if fp.CriticalWireCLBs <= prev {
			t.Errorf("critical wire not growing at N=%d", n)
		}
		prev = fp.CriticalWireCLBs
	}
}

func TestMultiPortFit(t *testing.T) {
	if _, _, err := MultiPortFit(0, 4, BA); err == nil {
		t.Error("accepted zero ports")
	}
	if _, _, err := MultiPortFit(2, 5, BA); err == nil {
		t.Error("accepted bad slot count")
	}
	// The GSR comparison point: 8 ports of 8-slot per-flow schedulers do
	// NOT fit one Virtex-1000 (8 x 2174 slices), but 8 ports of 4-slot
	// (matching the GSR's 8 queues across... ) — check concrete budgets.
	ok8x8, total8x8, err := MultiPortFit(8, 8, BA)
	if err != nil {
		t.Fatal(err)
	}
	if ok8x8 {
		t.Errorf("8x8-slot schedulers claimed to fit: %d slices on %d", total8x8, Virtex1000Slices)
	}
	ok8x4, _, err := MultiPortFit(8, 4, BA)
	if err != nil {
		t.Fatal(err)
	}
	if !ok8x4 {
		t.Error("8 ports of 4-slot schedulers should fit a Virtex-1000")
	}
	// Single 32-slot port fits (the paper's single-port claim).
	ok1x32, _, _ := MultiPortFit(1, 32, BA)
	if !ok1x32 {
		t.Error("1x32 should fit")
	}
}
