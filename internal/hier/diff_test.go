package hier

import (
	"testing"

	"repro/internal/fairqueue"
)

// TestFlatTreeMatchesWFQShares differentially tests the hierarchy against
// package fairqueue: a single-level tree is plain WFQ, so long-run byte
// shares must agree between the two independent implementations.
func TestFlatTreeMatchesWFQShares(t *testing.T) {
	weights := []float64{1, 2, 3, 4}

	tr := New()
	for i, w := range weights {
		if _, err := tr.AddClass("root", leafName(i), w); err != nil {
			t.Fatal(err)
		}
	}
	wfq, err := fairqueue.NewWFQ(weights)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20000
	treeBytes := make([]float64, len(weights))
	wfqBytes := make([]float64, len(weights))

	topTree := func() {
		for i := range weights {
			c := tr.Class(leafName(i))
			for c.backlog < 4 {
				if err := tr.Enqueue(leafName(i), 100, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	topWFQ := func() {
		for i := range weights {
			// Keep ≥4 queued per stream.
			for n := 0; n < 4; n++ {
				if err := wfq.Enqueue(fairqueue.Packet{Stream: i, Size: 100}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	topTree()
	topWFQ()
	for r := 0; r < rounds; r++ {
		p1, ok := tr.Dequeue()
		if !ok {
			t.Fatal("tree idle")
		}
		treeBytes[indexOf(p1.Class.Name())] += float64(p1.Size)
		p2, ok := wfq.Dequeue()
		if !ok {
			t.Fatal("wfq idle")
		}
		wfqBytes[p2.Stream] += float64(p2.Size)
		if r%4 == 3 {
			topTree()
			topWFQ()
		}
	}
	var tTot, wTot float64
	for i := range weights {
		tTot += treeBytes[i]
		wTot += wfqBytes[i]
	}
	for i := range weights {
		ts := treeBytes[i] / tTot
		ws := wfqBytes[i] / wTot
		if diff := ts - ws; diff > 0.02 || diff < -0.02 {
			t.Errorf("stream %d: tree share %.3f vs WFQ share %.3f", i, ts, ws)
		}
	}
}

func leafName(i int) string { return "leaf" + string(rune('0'+i)) }

func indexOf(name string) int { return int(name[len(name)-1] - '0') }
