// Package hier implements hierarchical link sharing in the style of H-FSC
// (Stoica, Zhang & Ng [23]) — the §4.1/§5.2 comparator class the paper
// cites at 7–10 µs per packet on a 200 MHz Pentium. The service-curve
// machinery of full H-FSC is simplified to hierarchical weighted fair
// queuing: an arbitrary class tree whose interior nodes divide bandwidth
// among their children by weight, with WFQ virtual-time accounting at each
// level.
//
// It serves three purposes in the reproduction:
//
//   - a software baseline for the §4.1 latency bench (hierarchical
//     schedulers cost a tree walk per decision);
//   - link-sharing semantics to contrast with ShareStreams' flat
//     stream-slot model plus streamlet aggregation (which buys hierarchy's
//     common case — agency over groups of flows — with processor-side
//     round robin instead of tree arithmetic);
//   - a second reference implementation of fair-share allocation for
//     differential testing against package fairqueue.
package hier

import (
	"fmt"
)

// Class is a node in the link-sharing tree. Leaves own packet queues;
// interior nodes distribute service among their children.
type Class struct {
	name     string
	weight   float64
	parent   *Class
	children []*Class

	// WFQ state at this node's level: the node's finish tag within its
	// parent, advanced as the subtree transmits bytes, and the node's own
	// virtual clock (the finish tag of the child most recently selected),
	// used to re-anchor children returning from idle so they cannot burst
	// on stale credit.
	finish float64
	vtime  float64

	// Leaf state.
	queue   []Packet
	qHead   int
	backlog int // backlogged packets in this subtree
}

// Packet is one queued frame.
type Packet struct {
	Class   *Class
	Size    int
	Arrival uint64
}

// Tree is a hierarchical link-sharing scheduler.
type Tree struct {
	root    *Class
	classes map[string]*Class
	backlog int
}

// New builds a tree with a root class.
func New() *Tree {
	root := &Class{name: "root", weight: 1}
	return &Tree{root: root, classes: map[string]*Class{"root": root}}
}

// Root returns the root class.
func (t *Tree) Root() *Class { return t.root }

// Class looks up a class by name.
func (t *Tree) Class(name string) *Class { return t.classes[name] }

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Weight returns the class weight within its parent.
func (c *Class) Weight() float64 { return c.weight }

// Leaf reports whether the class has no children.
func (c *Class) Leaf() bool { return len(c.children) == 0 }

// AddClass creates a child class under parent with the given weight. A
// class that has queued packets cannot become interior.
func (t *Tree) AddClass(parent, name string, weight float64) (*Class, error) {
	p, ok := t.classes[parent]
	if !ok {
		return nil, fmt.Errorf("hier: unknown parent class %q", parent)
	}
	if weight <= 0 {
		return nil, fmt.Errorf("hier: class %q weight %v", name, weight)
	}
	if _, dup := t.classes[name]; dup {
		return nil, fmt.Errorf("hier: duplicate class %q", name)
	}
	if len(p.queue) > p.qHead {
		return nil, fmt.Errorf("hier: class %q already queues packets; cannot add children", parent)
	}
	c := &Class{name: name, weight: weight, parent: p}
	p.children = append(p.children, c)
	t.classes[name] = c
	return c, nil
}

// Enqueue queues a packet at a leaf class.
func (t *Tree) Enqueue(class string, size int, arrival uint64) error {
	c, ok := t.classes[class]
	if !ok {
		return fmt.Errorf("hier: unknown class %q", class)
	}
	if !c.Leaf() {
		return fmt.Errorf("hier: class %q is interior", class)
	}
	if size <= 0 {
		return fmt.Errorf("hier: packet size %d", size)
	}
	c.queue = append(c.queue, Packet{Class: c, Size: size, Arrival: arrival})
	for n := c; n != nil; n = n.parent {
		if n.backlog == 0 && n.parent != nil && n.parent.vtime > n.finish {
			// Returning from idle: re-anchor at the parent's virtual
			// time so the idle period is forfeited, not banked.
			n.finish = n.parent.vtime
		}
		n.backlog++
	}
	t.backlog++
	return nil
}

// Backlogged returns the queued packet count.
func (t *Tree) Backlogged() int { return t.backlog }

// Dequeue picks the next packet: at each level, the backlogged child with
// the least finish tag wins; the winning leaf's head transmits and finish
// tags along the path advance by size/weight (normalized per level).
func (t *Tree) Dequeue() (Packet, bool) {
	if t.backlog == 0 {
		return Packet{}, false
	}
	n := t.root
	for !n.Leaf() {
		var best *Class
		for _, ch := range n.children {
			if ch.backlog == 0 {
				continue
			}
			if best == nil || ch.finish < best.finish {
				best = ch
			}
		}
		if best == nil {
			// Inconsistent backlog accounting would loop forever;
			// surface it loudly.
			panic("hier: interior backlog with no backlogged child")
		}
		n.vtime = best.finish
		n = best
	}
	p := n.queue[n.qHead]
	n.qHead++
	if n.qHead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qHead = 0
	}
	for c := n; c != nil; c = c.parent {
		c.backlog--
		if c.parent != nil {
			c.finish += float64(p.Size) / c.weight
		}
	}
	t.backlog--
	return p, true
}

// Walks returns the number of tree levels a decision traverses for the
// deepest leaf — the §4.1 cost argument against hierarchical software
// schedulers at wire speed.
func (t *Tree) Walks() int {
	depth := 0
	var rec func(c *Class, d int)
	rec = func(c *Class, d int) {
		if d > depth {
			depth = d
		}
		for _, ch := range c.children {
			rec(ch, d+1)
		}
	}
	rec(t.root, 0)
	return depth
}
