package hier

import (
	"math"
	"testing"
)

func TestBuildValidation(t *testing.T) {
	tr := New()
	if _, err := tr.AddClass("nope", "a", 1); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := tr.AddClass("root", "a", 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := tr.AddClass("root", "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddClass("root", "a", 1); err == nil {
		t.Error("duplicate class accepted")
	}
	if err := tr.Enqueue("a", 100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddClass("a", "a1", 1); err == nil {
		t.Error("added a child under a queueing class")
	}
	if err := tr.Enqueue("root", 100, 0); err == nil {
		t.Error("enqueue at interior class accepted")
	}
	if err := tr.Enqueue("a", 0, 0); err == nil {
		t.Error("zero-size packet accepted")
	}
	if err := tr.Enqueue("zzz", 10, 0); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestEmptyDequeue(t *testing.T) {
	tr := New()
	if _, ok := tr.Dequeue(); ok {
		t.Fatal("dequeued from empty tree")
	}
}

// buildTwoTier creates the canonical link-sharing example:
//
//	root ── org A (weight 3) ── a1 (1), a2 (2)
//	     └─ org B (weight 1) ── b1 (1)
func buildTwoTier(t *testing.T) *Tree {
	t.Helper()
	tr := New()
	mustAdd := func(parent, name string, w float64) {
		if _, err := tr.AddClass(parent, name, w); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("root", "orgA", 3)
	mustAdd("root", "orgB", 1)
	mustAdd("orgA", "a1", 1)
	mustAdd("orgA", "a2", 2)
	mustAdd("orgB", "b1", 1)
	return tr
}

func shares(t *testing.T, tr *Tree, leaves []string, rounds int) map[string]float64 {
	t.Helper()
	top := func() {
		for _, l := range leaves {
			c := tr.Class(l)
			for c.backlog < 4 {
				if err := tr.Enqueue(l, 100, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	top()
	got := map[string]float64{}
	for i := 0; i < rounds; i++ {
		p, ok := tr.Dequeue()
		if !ok {
			t.Fatal("tree went idle while backlogged")
		}
		got[p.Class.Name()] += float64(p.Size)
		top()
	}
	for k := range got {
		got[k] /= float64(rounds * 100)
	}
	return got
}

func TestHierarchicalShares(t *testing.T) {
	tr := buildTwoTier(t)
	got := shares(t, tr, []string{"a1", "a2", "b1"}, 12000)
	// org A gets 3/4 of the link, split 1:2 inside -> a1=1/4, a2=1/2,
	// b1=1/4.
	want := map[string]float64{"a1": 0.25, "a2": 0.5, "b1": 0.25}
	for k, w := range want {
		if math.Abs(got[k]-w) > 0.02 {
			t.Errorf("%s share = %.3f, want %.3f", k, got[k], w)
		}
	}
}

func TestLinkSharingRedistribution(t *testing.T) {
	// With b1 idle, org A's leaves absorb the whole link at 1:2.
	tr := buildTwoTier(t)
	got := shares(t, tr, []string{"a1", "a2"}, 9000)
	if math.Abs(got["a1"]-1.0/3) > 0.02 || math.Abs(got["a2"]-2.0/3) > 0.02 {
		t.Errorf("idle-sibling redistribution: %v", got)
	}
}

func TestNoBankedCreditAfterIdle(t *testing.T) {
	// b1 idles while org A transmits heavily; when b1 returns it must get
	// its 1/4 share, not a catch-up burst.
	tr := buildTwoTier(t)
	for i := 0; i < 2000; i++ {
		tr.Enqueue("a1", 100, 0)
		tr.Dequeue()
	}
	// b1 wakes up: measure its share over the next window.
	got := shares(t, tr, []string{"a1", "a2", "b1"}, 4000)
	if got["b1"] > 0.30 {
		t.Errorf("b1 burst on banked credit: share %.3f", got["b1"])
	}
	if got["b1"] < 0.20 {
		t.Errorf("b1 under-served after idle: share %.3f", got["b1"])
	}
}

func TestFIFOWithinLeaf(t *testing.T) {
	tr := New()
	tr.AddClass("root", "x", 1)
	for k := 0; k < 10; k++ {
		tr.Enqueue("x", 100, uint64(k))
	}
	prev := int64(-1)
	for {
		p, ok := tr.Dequeue()
		if !ok {
			break
		}
		if int64(p.Arrival) <= prev {
			t.Fatal("leaf not FIFO")
		}
		prev = int64(p.Arrival)
	}
	if tr.Backlogged() != 0 {
		t.Fatal("backlog residue")
	}
}

func TestDeepTreeWalks(t *testing.T) {
	tr := New()
	parent := "root"
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		if _, err := tr.AddClass(parent, name, 1); err != nil {
			t.Fatal(err)
		}
		parent = name
	}
	if got := tr.Walks(); got != 5 {
		t.Fatalf("Walks = %d, want 5", got)
	}
	tr.Enqueue("e", 10, 0)
	p, ok := tr.Dequeue()
	if !ok || p.Class.Name() != "e" {
		t.Fatal("deep leaf not served")
	}
}

func TestAccessors(t *testing.T) {
	tr := buildTwoTier(t)
	if tr.Root().Name() != "root" || tr.Root().Leaf() {
		t.Error("root accessors")
	}
	c := tr.Class("orgA")
	if c.Weight() != 3 || c.Leaf() {
		t.Error("class accessors")
	}
}

// BenchmarkDequeue prices the tree walk per decision (the §4.1 argument:
// hierarchical software schedulers cost more per decision).
func BenchmarkDequeue(b *testing.B) {
	tr := New()
	// 4 orgs × 8 leaves.
	for o := 0; o < 4; o++ {
		org := "org" + string(rune('0'+o))
		if _, err := tr.AddClass("root", org, float64(o+1)); err != nil {
			b.Fatal(err)
		}
		for l := 0; l < 8; l++ {
			leaf := org + "leaf" + string(rune('0'+l))
			if _, err := tr.AddClass(org, leaf, 1); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 4; k++ {
				if err := tr.Enqueue(leaf, 100, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := tr.Dequeue()
		if !ok {
			b.Fatal("idle")
		}
		if err := tr.Enqueue(p.Class.Name(), p.Size, p.Arrival); err != nil {
			b.Fatal(err)
		}
	}
}
