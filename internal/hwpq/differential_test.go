package hwpq

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/traffic"
)

// TestChainSchedulerMatchesShuffleSchedule is the §3 functional tie-in: an
// EDF scheduler built on the shift-register chain (re-sorted every decision
// cycle, as window-constrained updates force) produces exactly the same
// winner sequence as the ShareStreams recirculating shuffle — the
// architectures differ in area and cycles, not in the schedule. The cost
// model difference (Ω(N) re-sort vs log₂N recirculation) is what
// TestCostRowsMatchPaperArgument and the ablation bench price.
func TestChainSchedulerMatchesShuffleSchedule(t *testing.T) {
	const n, cycles = 4, 4000

	// Reference: the cycle-accurate ShareStreams scheduler.
	ref, err := core.New(core.Config{Slots: n, Routing: core.WinnerOnly})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		src := &traffic.Periodic{Gap: 1, Phase: uint64(i), Backlogged: true}
		if err := ref.Admit(i, attr.Spec{Class: attr.EDF, Period: 1}, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}

	// Chain-based scheduler: per-stream head deadlines maintained in
	// software, re-inserted into the chain every cycle (the forced
	// re-sort), winner = extract-min. Keys combine deadline and arrival
	// to mirror the Decision block's EDF + FCFS + slot-ID cascade.
	chain, err := NewShiftChain(n)
	if err != nil {
		t.Fatal(err)
	}
	deadline := make([]uint64, n)
	arrival := make([]uint64, n)
	served := make([]uint64, n)
	for i := 0; i < n; i++ {
		arrival[i] = uint64(i)
		deadline[i] = uint64(i) + 1
	}
	var resortCycles uint64
	key := func(i int) uint64 {
		// deadline ≫ arrival ≫ slot, matching the rule cascade.
		return deadline[i]<<24 | arrival[i]<<4 | uint64(i)
	}

	for c := 0; c < cycles; c++ {
		rc := ref.RunCycle()

		// Re-sort: rebuild the chain from the current heads (the per-
		// decision-cycle penalty §3 charges these structures).
		for chain.Len() > 0 {
			chain.ExtractMin()
		}
		for i := 0; i < n; i++ {
			cy, err := chain.Insert(Entry{Key: key(i), ID: i})
			if err != nil {
				t.Fatal(err)
			}
			resortCycles += uint64(cy)
		}
		e, ok, _ := chain.ExtractMin()
		if !ok {
			t.Fatal("chain empty")
		}
		if attr.SlotID(e.ID) != rc.Winner {
			t.Fatalf("cycle %d: chain winner %d vs shuffle winner %d", c, e.ID, rc.Winner)
		}
		// Advance the winner's head (EDF service).
		served[e.ID]++
		deadline[e.ID]++
		arrival[e.ID]++
	}
	// The price: N inserts per cycle just for the re-sort, vs the
	// shuffle's log₂N recirculations built into its decision cycle.
	if resortCycles != uint64(cycles*n) {
		t.Fatalf("re-sort cycles = %d, want %d", resortCycles, cycles*n)
	}
}
