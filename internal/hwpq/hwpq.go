// Package hwpq implements the hardware priority-queue architectures §3
// contrasts with the ShareStreams recirculating shuffle — a shift-register
// chain, a systolic array queue (Moon, Rexford & Shin), and a pipelined
// binary heap (Ioannou & Katevenis) — as functional models with cycle and
// area cost accounting.
//
// The paper's argument, which the ablation bench quantifies:
//
//  1. These structures need a comparator (for ShareStreams, a full
//     multi-attribute Decision block) replicated in *every* element, where
//     the recirculating shuffle needs only N/2 (one tree level).
//  2. Window-constrained disciplines update stream priorities every decision
//     cycle, forcing a re-sort of the heap / systolic queue / shift-register
//     chain each cycle, while the shuffle re-sorts natively — that is its
//     decision cycle.
//
// Cycle costs model single-cycle element operations, as these structures are
// designed to achieve: a shift-register chain inserts in one cycle because
// every element compares in parallel; the systolic array takes one cycle at
// the head with the ripple proceeding in later cycles; the pipelined heap
// sustains one operation per cycle with log₂N latency. A global priority
// update invalidates the stored order, and the model charges the structure's
// bulk-reload cost.
package hwpq

import (
	"fmt"
	"math/bits"
	"sort"
)

// Entry is one queued element: a priority key (lower = served first) and an
// opaque stream/packet ID.
type Entry struct {
	Key uint64
	ID  int
}

// Queue is a hardware priority-queue model. Operations return the modeled
// hardware cycle cost alongside their results.
type Queue interface {
	// Name returns the architecture name.
	Name() string
	// Capacity returns the structure's element capacity.
	Capacity() int
	// Len returns the stored element count.
	Len() int
	// Insert adds an entry; it returns the cycle cost, or an error when
	// full.
	Insert(e Entry) (cycles int, err error)
	// ExtractMin removes and returns the least-key entry with its cycle
	// cost.
	ExtractMin() (e Entry, ok bool, cycles int)
	// GlobalUpdate applies f to every stored key (the per-decision-cycle
	// priority update of a window-constrained discipline) and returns the
	// cycle cost of restoring sorted order.
	GlobalUpdate(f func(Entry) uint64) (cycles int)
	// ComparatorBlocks returns how many comparator/Decision blocks the
	// architecture instantiates at this capacity — the §3 area argument.
	ComparatorBlocks() int
}

// ---------------------------------------------------------------------------
// Shift-register chain

// ShiftChain is the shift-register chain: a linear array of registers each
// holding one entry in sorted order. On insert, every element compares the
// new entry with its neighbour concurrently and shifts right where needed —
// one cycle, at the price of a comparator per element and global broadcast
// of the inserted entry.
type ShiftChain struct {
	cap     int
	entries []Entry // sorted ascending by key
}

// NewShiftChain builds a chain of the given capacity.
func NewShiftChain(capacity int) (*ShiftChain, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hwpq: capacity %d", capacity)
	}
	return &ShiftChain{cap: capacity}, nil
}

// Name implements Queue.
func (c *ShiftChain) Name() string { return "shift-register-chain" }

// Capacity implements Queue.
func (c *ShiftChain) Capacity() int { return c.cap }

// Len implements Queue.
func (c *ShiftChain) Len() int { return len(c.entries) }

// Insert implements Queue: one cycle (parallel compare + shift).
func (c *ShiftChain) Insert(e Entry) (int, error) {
	if len(c.entries) == c.cap {
		return 0, fmt.Errorf("hwpq: %s full", c.Name())
	}
	i := sort.Search(len(c.entries), func(j int) bool { return c.entries[j].Key > e.Key })
	c.entries = append(c.entries, Entry{})
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = e
	return 1, nil
}

// ExtractMin implements Queue: one cycle (pop head, shift left).
func (c *ShiftChain) ExtractMin() (Entry, bool, int) {
	if len(c.entries) == 0 {
		return Entry{}, false, 1
	}
	e := c.entries[0]
	c.entries = c.entries[1:]
	return e, true, 1
}

// GlobalUpdate implements Queue: every key changes, so the chain re-inserts
// all N entries — N cycles of its single-cycle insert.
func (c *ShiftChain) GlobalUpdate(f func(Entry) uint64) int {
	n := len(c.entries)
	for i := range c.entries {
		c.entries[i].Key = f(c.entries[i])
	}
	sort.SliceStable(c.entries, func(i, j int) bool { return c.entries[i].Key < c.entries[j].Key })
	return n
}

// ComparatorBlocks implements Queue: one comparator per element.
func (c *ShiftChain) ComparatorBlocks() int { return c.cap }

// ---------------------------------------------------------------------------
// Systolic array

// Systolic is the systolic array priority queue: like the chain it keeps
// sorted order in a register array, but elements exchange only with
// neighbours (no global broadcast), so the head responds in one cycle while
// the insertion ripple completes in the background over subsequent cycles.
type Systolic struct {
	cap     int
	entries []Entry
	ripple  int // background ripple cycles still outstanding
}

// NewSystolic builds a systolic queue of the given capacity.
func NewSystolic(capacity int) (*Systolic, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hwpq: capacity %d", capacity)
	}
	return &Systolic{cap: capacity}, nil
}

// Name implements Queue.
func (s *Systolic) Name() string { return "systolic-array" }

// Capacity implements Queue.
func (s *Systolic) Capacity() int { return s.cap }

// Len implements Queue.
func (s *Systolic) Len() int { return len(s.entries) }

// Insert implements Queue: one cycle at the head; the displacement ripple
// (depth of the insertion point) proceeds concurrently with later
// operations, modeled as outstanding background cycles.
func (s *Systolic) Insert(e Entry) (int, error) {
	if len(s.entries) == s.cap {
		return 0, fmt.Errorf("hwpq: %s full", s.Name())
	}
	i := sort.Search(len(s.entries), func(j int) bool { return s.entries[j].Key > e.Key })
	s.entries = append(s.entries, Entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	s.ripple = max(s.ripple-1, len(s.entries)-i-1)
	return 1, nil
}

// ExtractMin implements Queue: one cycle at the head.
func (s *Systolic) ExtractMin() (Entry, bool, int) {
	if len(s.entries) == 0 {
		return Entry{}, false, 1
	}
	e := s.entries[0]
	s.entries = s.entries[1:]
	if s.ripple > 0 {
		s.ripple--
	}
	return e, true, 1
}

// GlobalUpdate implements Queue: the array drains and refills — 2N cycles
// (N extracts + N neighbour-only inserts at the head).
func (s *Systolic) GlobalUpdate(f func(Entry) uint64) int {
	n := len(s.entries)
	for i := range s.entries {
		s.entries[i].Key = f(s.entries[i])
	}
	sort.SliceStable(s.entries, func(i, j int) bool { return s.entries[i].Key < s.entries[j].Key })
	s.ripple = 0
	return 2 * n
}

// ComparatorBlocks implements Queue: two comparators per element (one per
// neighbour link) is the common systolic design; the model charges one per
// element plus one per link ≈ 2N-1.
func (s *Systolic) ComparatorBlocks() int { return 2*s.cap - 1 }

// ---------------------------------------------------------------------------
// Pipelined heap

// PipelinedHeap is the Ioannou–Katevenis pipelined binary heap: log₂N
// levels, each with its own comparator stage, sustaining one operation per
// cycle of throughput with log₂N-cycle latency.
type PipelinedHeap struct {
	cap     int
	entries []Entry // binary min-heap
}

// NewPipelinedHeap builds a heap of the given capacity (rounded up to a
// power of two internally for level accounting).
func NewPipelinedHeap(capacity int) (*PipelinedHeap, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hwpq: capacity %d", capacity)
	}
	return &PipelinedHeap{cap: capacity}, nil
}

// Name implements Queue.
func (h *PipelinedHeap) Name() string { return "pipelined-heap" }

// Capacity implements Queue.
func (h *PipelinedHeap) Capacity() int { return h.cap }

// Len implements Queue.
func (h *PipelinedHeap) Len() int { return len(h.entries) }

// levels returns the heap's level count.
func (h *PipelinedHeap) levels() int {
	return bits.Len(uint(h.cap))
}

// Insert implements Queue: one cycle of issue (pipelined).
func (h *PipelinedHeap) Insert(e Entry) (int, error) {
	if len(h.entries) == h.cap {
		return 0, fmt.Errorf("hwpq: %s full", h.Name())
	}
	h.entries = append(h.entries, e)
	h.siftUp(len(h.entries) - 1)
	return 1, nil
}

// ExtractMin implements Queue: one cycle of issue (pipelined).
func (h *PipelinedHeap) ExtractMin() (Entry, bool, int) {
	if len(h.entries) == 0 {
		return Entry{}, false, 1
	}
	e := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if len(h.entries) > 0 {
		h.siftDown(0)
	}
	return e, true, 1
}

// GlobalUpdate implements Queue: every key changes, so the heap property is
// void; the hardware reloads and re-heapifies — N cycles of pipelined
// inserts.
func (h *PipelinedHeap) GlobalUpdate(f func(Entry) uint64) int {
	n := len(h.entries)
	for i := range h.entries {
		h.entries[i].Key = f(h.entries[i])
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return n
}

// ComparatorBlocks implements Queue: one comparator stage per level plus the
// per-element storage compare-swap — the Ioannou–Katevenis design charges a
// comparator per level per pipeline stage; the dominant replication is per
// element for the swap network, modeled as N + log₂N.
func (h *PipelinedHeap) ComparatorBlocks() int { return h.cap + h.levels() }

func (h *PipelinedHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].Key <= h.entries[i].Key {
			return
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *PipelinedHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.entries[l].Key < h.entries[small].Key {
			small = l
		}
		if r < n && h.entries[r].Key < h.entries[small].Key {
			small = r
		}
		if small == i {
			return
		}
		h.entries[i], h.entries[small] = h.entries[small], h.entries[i]
		i = small
	}
}

// ---------------------------------------------------------------------------
// Cost comparison

// CostRow summarizes one architecture's per-decision-cycle cost for the §3
// ablation.
type CostRow struct {
	Name string
	// Comparators is the Decision-block count the architecture replicates.
	Comparators int
	// CyclesFair is the per-decision cycle cost when priorities do not
	// change after enqueue (fair-queuing / priority-class disciplines).
	CyclesFair int
	// CyclesWindow is the per-decision cycle cost when every stream's
	// priority updates each decision cycle (window-constrained), including
	// the re-sort.
	CyclesWindow int
}

// ShuffleCost returns the ShareStreams recirculating shuffle's row for an
// N-slot design: N/2 Decision blocks, log₂N cycles per decision with the
// priority update folded into the decision cycle (one extra cycle).
func ShuffleCost(n int) CostRow {
	k := bits.Len(uint(n - 1)) // ceil(log2 n)
	return CostRow{
		Name:         "recirculating-shuffle",
		Comparators:  n / 2,
		CyclesFair:   k,
		CyclesWindow: k + 1,
	}
}

// Cost measures a queue architecture's row at capacity n by driving the
// functional model: a decision is one ExtractMin plus one Insert
// (steady-state), and the window-constrained variant adds a GlobalUpdate of
// all n entries.
func Cost(q Queue, n int) (CostRow, error) {
	for i := 0; i < n; i++ {
		if _, err := q.Insert(Entry{Key: uint64(i), ID: i}); err != nil {
			return CostRow{}, err
		}
	}
	e, ok, cx := q.ExtractMin()
	if !ok {
		return CostRow{}, fmt.Errorf("hwpq: %s empty after fill", q.Name())
	}
	ci, err := q.Insert(e)
	if err != nil {
		return CostRow{}, err
	}
	cu := q.GlobalUpdate(func(e Entry) uint64 { return e.Key + 1 })
	return CostRow{
		Name:         q.Name(),
		Comparators:  q.ComparatorBlocks(),
		CyclesFair:   cx + ci,
		CyclesWindow: cx + ci + cu,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
