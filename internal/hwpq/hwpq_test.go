package hwpq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func queues(t *testing.T, capacity int) []Queue {
	t.Helper()
	c, err := NewShiftChain(capacity)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystolic(capacity)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewPipelinedHeap(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return []Queue{c, s, h}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewShiftChain(0); err == nil {
		t.Error("chain accepted zero capacity")
	}
	if _, err := NewSystolic(-1); err == nil {
		t.Error("systolic accepted negative capacity")
	}
	if _, err := NewPipelinedHeap(0); err == nil {
		t.Error("heap accepted zero capacity")
	}
}

func TestExtractsSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, q := range queues(t, 64) {
		keys := make([]uint64, 64)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1000))
			if _, err := q.Insert(Entry{Key: keys[i], ID: i}); err != nil {
				t.Fatalf("%s: %v", q.Name(), err)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, want := range keys {
			e, ok, _ := q.ExtractMin()
			if !ok {
				t.Fatalf("%s: empty at %d", q.Name(), i)
			}
			if e.Key != want {
				t.Fatalf("%s: extract %d = key %d, want %d", q.Name(), i, e.Key, want)
			}
		}
		if _, ok, _ := q.ExtractMin(); ok {
			t.Fatalf("%s: extract from empty succeeded", q.Name())
		}
	}
}

func TestCapacityEnforced(t *testing.T) {
	for _, q := range queues(t, 4) {
		for i := 0; i < 4; i++ {
			if _, err := q.Insert(Entry{Key: uint64(i)}); err != nil {
				t.Fatalf("%s: %v", q.Name(), err)
			}
		}
		if _, err := q.Insert(Entry{Key: 9}); err == nil {
			t.Errorf("%s accepted an entry beyond capacity", q.Name())
		}
		if q.Len() != 4 || q.Capacity() != 4 {
			t.Errorf("%s: len/cap = %d/%d", q.Name(), q.Len(), q.Capacity())
		}
	}
}

func TestGlobalUpdatePreservesOrderUnderNewKeys(t *testing.T) {
	// After a global priority update (e.g. DWCS adjusting every stream),
	// extraction must follow the *new* keys.
	for _, q := range queues(t, 8) {
		for i := 0; i < 8; i++ {
			if _, err := q.Insert(Entry{Key: uint64(i), ID: i}); err != nil {
				t.Fatal(err)
			}
		}
		// Reverse the order: new key = 100 - old.
		q.GlobalUpdate(func(e Entry) uint64 { return 100 - e.Key })
		prev := uint64(0)
		for i := 0; i < 8; i++ {
			e, ok, _ := q.ExtractMin()
			if !ok {
				t.Fatalf("%s: empty at %d", q.Name(), i)
			}
			if i > 0 && e.Key < prev {
				t.Fatalf("%s: order violated after update", q.Name())
			}
			prev = e.Key
		}
	}
}

func TestSingleCycleOperations(t *testing.T) {
	// The headline property of these structures: constant-cycle insert and
	// extract regardless of occupancy.
	for _, q := range queues(t, 256) {
		for i := 0; i < 200; i++ {
			cy, err := q.Insert(Entry{Key: uint64(i * 7 % 101)})
			if err != nil {
				t.Fatal(err)
			}
			if cy != 1 {
				t.Fatalf("%s: insert cost %d cycles at occupancy %d", q.Name(), cy, i)
			}
		}
		_, _, cy := q.ExtractMin()
		if cy != 1 {
			t.Fatalf("%s: extract cost %d cycles", q.Name(), cy)
		}
	}
}

func TestCostRowsMatchPaperArgument(t *testing.T) {
	// §3: the recirculating shuffle needs N/2 Decision blocks; the
	// alternatives replicate comparators per element and pay a re-sort
	// every decision cycle under window-constrained updates.
	const n = 32
	shuffle := ShuffleCost(n)
	if shuffle.Comparators != n/2 {
		t.Fatalf("shuffle comparators = %d, want %d", shuffle.Comparators, n/2)
	}
	if shuffle.CyclesFair != 5 || shuffle.CyclesWindow != 6 {
		t.Fatalf("shuffle cycles = %d/%d, want 5/6", shuffle.CyclesFair, shuffle.CyclesWindow)
	}
	for _, q := range queues(t, n) {
		row, err := Cost(q, n)
		if err != nil {
			t.Fatal(err)
		}
		if row.Comparators < n {
			t.Errorf("%s: %d comparators — the §3 argument expects ≥N (per element)", row.Name, row.Comparators)
		}
		if row.Comparators <= shuffle.Comparators {
			t.Errorf("%s: %d comparators not more than shuffle's %d", row.Name, row.Comparators, shuffle.Comparators)
		}
		// Without updates these structures win (constant cycles vs log N)…
		if row.CyclesFair > shuffle.CyclesFair {
			t.Errorf("%s: fair-queuing cycles %d worse than shuffle %d — unexpected", row.Name, row.CyclesFair, shuffle.CyclesFair)
		}
		// …but per-cycle updates cost them ≥N cycles of re-sort, far
		// beyond the shuffle's log₂N+1.
		if row.CyclesWindow < n {
			t.Errorf("%s: window cycles %d — expected ≥N re-sort penalty", row.Name, row.CyclesWindow)
		}
		if row.CyclesWindow <= shuffle.CyclesWindow {
			t.Errorf("%s: window cycles %d not worse than shuffle %d", row.Name, row.CyclesWindow, shuffle.CyclesWindow)
		}
	}
}

func TestRandomizedHeapEquivalence(t *testing.T) {
	// Fuzz the three structures against a reference sorted multiset.
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, q := range queues(t, 64) {
			var ref []uint64
			for _, op := range ops {
				if rng.Intn(3) > 0 && len(ref) < 64 {
					k := uint64(op)
					if _, err := q.Insert(Entry{Key: k}); err != nil {
						return false
					}
					ref = append(ref, k)
					sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
				} else {
					e, ok, _ := q.ExtractMin()
					if ok != (len(ref) > 0) {
						return false
					}
					if ok {
						if e.Key != ref[0] {
							return false
						}
						ref = ref[1:]
					}
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSystolicRippleDrains(t *testing.T) {
	s, _ := NewSystolic(16)
	for i := 15; i >= 0; i-- { // worst case: every insert lands at the head
		if _, err := s.Insert(Entry{Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Ripple must never go negative or block extraction correctness.
	for i := 0; i < 16; i++ {
		e, ok, _ := s.ExtractMin()
		if !ok || e.Key != uint64(i) {
			t.Fatalf("extract %d: key %d ok %v", i, e.Key, ok)
		}
	}
}

func TestNames(t *testing.T) {
	for _, q := range queues(t, 2) {
		if q.Name() == "" {
			t.Error("empty name")
		}
	}
	if ShuffleCost(8).Name == "" {
		t.Error("empty shuffle name")
	}
}
