package hwpq

// Per-program differential: every registered rank program's packed key,
// pushed through each §3 priority-queue architecture, must serve streams in
// exactly the order the Decision-block cascade would. This is the PIFO
// contract from the other side — the rank program is the *only* discipline-
// specific piece, so any uint64 min-queue (chain, systolic, pipelined heap,
// or the recirculating shuffle) realizes the same schedule.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/decision"
)

// programWords draws n valid attribute words with distinct slots, fields
// small enough to stay clear of the 16-bit wrap window around ref=0 so the
// packed-key numeric order is exactly the cascade order.
func programWords(rng *rand.Rand, n int) []attr.Attributes {
	words := make([]attr.Attributes, n)
	for i := range words {
		words[i] = attr.Attributes{
			Deadline: attr.Time16(rng.Intn(4000)),
			LossNum:  uint8(rng.Intn(8)),
			LossDen:  uint8(1 + rng.Intn(8)),
			Arrival:  attr.Time16(rng.Intn(4000)),
			Slot:     attr.SlotID(i),
			Valid:    true,
		}
		if words[i].LossNum > words[i].LossDen {
			words[i].LossNum, words[i].LossDen = words[i].LossDen, words[i].LossNum
		}
	}
	return words
}

// TestProgramRankOrdersQueues extracts a full load of rank-keyed entries
// from each queue architecture and checks the service order against the
// cascade: the queue must never serve a stream that the Decision block,
// running the program's mode, would rank strictly behind one still waiting.
func TestProgramRankOrdersQueues(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(61))
	for _, p := range decision.Programs() {
		words := programWords(rng, n)
		ref := attr.Time16(0)
		for _, q := range queues(t, n) {
			name := fmt.Sprintf("%v/%s", p, q.Name())
			for i, a := range words {
				if _, err := q.Insert(Entry{Key: uint64(p.Rank(a, ref)), ID: i}); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			order := make([]attr.Attributes, 0, n)
			for i := 0; i < n; i++ {
				e, ok, _ := q.ExtractMin()
				if !ok {
					t.Fatalf("%s: empty at %d", name, i)
				}
				if e.Key != uint64(p.Rank(words[e.ID], ref)) {
					t.Fatalf("%s: extract %d returned key %#x for slot %d, want %#x",
						name, i, e.Key, e.ID, uint64(p.Rank(words[e.ID], ref)))
				}
				order = append(order, words[e.ID])
			}
			mode := p.Mode()
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if decision.Less(mode, order[j], order[i]) {
						t.Fatalf("%s: served slot %d before slot %d but the %v cascade prefers the latter",
							name, order[i].Slot, order[j].Slot, mode)
					}
				}
			}
		}
	}
}

// benchQueue builds the named architecture fresh — b.Run re-enters its body
// during calibration, so each entry must start from an empty queue.
func benchQueue(b *testing.B, name string, capacity int) Queue {
	b.Helper()
	var q Queue
	var err error
	switch name {
	case "chain":
		q, err = NewShiftChain(capacity)
	case "systolic":
		q, err = NewSystolic(capacity)
	case "heap":
		q, err = NewPipelinedHeap(capacity)
	default:
		b.Fatalf("unknown queue %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkProgramQueueDecision prices one steady-state decision per rank
// program per architecture: extract the winner, re-rank it, re-insert — and,
// when the program's class updates priorities every cycle (DWCS's window
// constraints), the full GlobalUpdate re-sort the §3 argument charges. The
// hwcycles/op metric is the modeled hardware cost; ns/op is this functional
// model's software cost.
func BenchmarkProgramQueueDecision(b *testing.B) {
	const n = 256
	for _, p := range decision.Programs() {
		windowed := p.Class() == attr.WindowConstrained
		for _, arch := range []string{"chain", "systolic", "heap"} {
			b.Run(fmt.Sprintf("%v/%s", p, arch), func(b *testing.B) {
				q := benchQueue(b, arch, n)
				rng := rand.New(rand.NewSource(7))
				words := programWords(rng, n)
				ref := attr.Time16(0)
				for i, a := range words {
					if _, err := q.Insert(Entry{Key: uint64(p.Rank(a, ref)), ID: i}); err != nil {
						b.Fatal(err)
					}
				}
				var hwCycles uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e, ok, cx := q.ExtractMin()
					if !ok {
						b.Fatal("queue drained")
					}
					words[e.ID].Deadline += attr.Time16(1 + e.ID%7)
					words[e.ID].Arrival++
					ci, err := q.Insert(Entry{Key: uint64(p.Rank(words[e.ID], ref)), ID: e.ID})
					if err != nil {
						b.Fatal(err)
					}
					hwCycles += uint64(cx + ci)
					if windowed {
						hwCycles += uint64(q.GlobalUpdate(func(e Entry) uint64 { return e.Key }))
					}
				}
				b.ReportMetric(float64(hwCycles)/float64(b.N), "hwcycles/op")
			})
		}
	}
}
