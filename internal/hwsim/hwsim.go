// Package hwsim is a minimal synchronous-logic simulation kernel used by the
// ShareStreams hardware model.
//
// The kernel models a single clock domain with two-phase semantics: on every
// cycle each registered Component first Evaluates (computes its next state
// purely from current-cycle outputs — combinational logic settling), then all
// components Commit (flip-flops latch on the clock edge). This ordering is
// what makes statements like "the winner ID is circulated to every Register
// Base block so that per-stream updates can be applied" behave like hardware:
// a value produced this cycle is not visible in stored state until the next
// edge.
//
// The kernel also carries a bounded trace buffer so the datapath can be
// inspected cycle-by-cycle in tests and in the sssim tool, loosely in the
// spirit of a VCD dump.
package hwsim

import (
	"fmt"
	"strings"
)

// Component is a clocked element in the design. Evaluate must read only
// current-cycle state (its own and other components') and stage next state
// internally; Commit makes the staged state current. The kernel guarantees
// every Evaluate in a cycle happens before any Commit in that cycle.
type Component interface {
	Evaluate()
	Commit()
}

// Clock drives a set of components through cycles and counts them.
type Clock struct {
	components []Component
	cycle      uint64
	trace      *Trace
}

// NewClock returns a clock with no attached components and no tracing.
func NewClock() *Clock { return &Clock{} }

// Attach registers components with the clock, in evaluation order. Order is
// irrelevant for correctness (two-phase), but deterministic order keeps
// traces stable.
func (c *Clock) Attach(comps ...Component) { c.components = append(c.components, comps...) }

// EnableTrace attaches a bounded trace buffer keeping at most limit events
// (older events are dropped). limit <= 0 disables tracing again.
func (c *Clock) EnableTrace(limit int) {
	if limit <= 0 {
		c.trace = nil
		return
	}
	c.trace = newTrace(limit)
}

// Trace returns the attached trace buffer, or nil when tracing is disabled.
func (c *Clock) Trace() *Trace { return c.trace }

// Cycle returns the number of completed cycles.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Step advances the design by one clock cycle: all Evaluates, then all
// Commits, then the cycle counter increments.
func (c *Clock) Step() {
	for _, comp := range c.components {
		comp.Evaluate()
	}
	for _, comp := range c.components {
		comp.Commit()
	}
	c.cycle++
}

// StepN advances n cycles.
func (c *Clock) StepN(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// Emit records a trace event for the current cycle if tracing is enabled.
// The signal name should be stable ("ctl.state", "slot3.deadline") so traces
// grep well.
func (c *Clock) Emit(signal string, value any) {
	if c.trace != nil {
		c.trace.add(Event{Cycle: c.cycle, Signal: signal, Value: fmt.Sprint(value)})
	}
}

// Event is one traced signal change.
type Event struct {
	Cycle  uint64
	Signal string
	Value  string
}

// String formats the event as "@cycle signal=value".
func (e Event) String() string { return fmt.Sprintf("@%d %s=%s", e.Cycle, e.Signal, e.Value) }

// Trace is a bounded ring of trace events.
type Trace struct {
	events []Event
	next   int
	full   bool
}

func newTrace(limit int) *Trace { return &Trace{events: make([]Event, limit)} }

// NewTrace builds a standalone bounded trace buffer for components that
// manage their own cycle counting (e.g. the scheduler control unit).
func NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = 1
	}
	return newTrace(limit)
}

// Add records an event directly (standalone-trace use).
func (t *Trace) Add(e Event) { t.add(e) }

func (t *Trace) add(e Event) {
	t.events[t.next] = e
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t.full {
		return len(t.events)
	}
	return t.next
}

// Dump renders the retained events one per line, optionally filtered to
// signals containing the substring filter (empty keeps everything).
func (t *Trace) Dump(filter string) string {
	var b strings.Builder
	for _, e := range t.Events() {
		if filter == "" || strings.Contains(e.Signal, filter) {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Reg is a generic clocked register: Set stages a next value during
// Evaluate; the value becomes visible through Get after Commit. The zero
// value holds the zero value of T.
type Reg[T any] struct {
	cur, next T
	loaded    bool
}

// Get returns the current (committed) value.
func (r *Reg[T]) Get() T { return r.cur }

// Set stages v as the next value; it takes effect at the next Commit.
func (r *Reg[T]) Set(v T) { r.next, r.loaded = v, true }

// Reset immediately forces both current and staged value (out-of-band
// initialization, like a global reset line).
func (r *Reg[T]) Reset(v T) { r.cur, r.next, r.loaded = v, v, false }

// Evaluate is a no-op: registers stage through Set calls made by the logic
// that owns them.
func (r *Reg[T]) Evaluate() {}

// Commit latches the staged value if one was set this cycle.
func (r *Reg[T]) Commit() {
	if r.loaded {
		r.cur = r.next
		r.loaded = false
	}
}
