package hwsim

import (
	"fmt"
	"strings"
	"testing"
)

// counter is a toy component: next = cur + in, where in is sampled from
// another counter's *current* output, proving two-phase ordering.
type counter struct {
	reg Reg[int]
	in  func() int
}

func (c *counter) Evaluate() { c.reg.Set(c.reg.Get() + c.in()) }
func (c *counter) Commit()   { c.reg.Commit() }

func TestTwoPhaseOrdering(t *testing.T) {
	// b samples a's current value; a increments by 1 each cycle. If commit
	// leaked into the same cycle, b would see a's *next* value.
	a := &counter{in: func() int { return 1 }}
	var b *counter
	b = &counter{in: func() int { return a.reg.Get() }}
	clk := NewClock()
	clk.Attach(a, b)

	// cycle 1: a: 0->1, b: 0+a.cur(0)=0
	clk.Step()
	if a.reg.Get() != 1 || b.reg.Get() != 0 {
		t.Fatalf("after cycle 1: a=%d b=%d, want 1 0", a.reg.Get(), b.reg.Get())
	}
	// cycle 2: a: 1->2, b: 0+a.cur(1)=1
	clk.Step()
	if a.reg.Get() != 2 || b.reg.Get() != 1 {
		t.Fatalf("after cycle 2: a=%d b=%d, want 2 1", a.reg.Get(), b.reg.Get())
	}
}

func TestTwoPhaseOrderIndependent(t *testing.T) {
	// Attaching components in the opposite order must give identical
	// behaviour — that's the point of two-phase simulation.
	run := func(swap bool) (int, int) {
		a := &counter{in: func() int { return 1 }}
		b := &counter{}
		b.in = func() int { return a.reg.Get() }
		clk := NewClock()
		if swap {
			clk.Attach(b, a)
		} else {
			clk.Attach(a, b)
		}
		clk.StepN(10)
		return a.reg.Get(), b.reg.Get()
	}
	a1, b1 := run(false)
	a2, b2 := run(true)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("attachment order changed results: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestRegSetWithoutCommitInvisible(t *testing.T) {
	var r Reg[string]
	r.Set("staged")
	if r.Get() != "" {
		t.Fatalf("staged value visible before commit: %q", r.Get())
	}
	r.Commit()
	if r.Get() != "staged" {
		t.Fatalf("value not visible after commit: %q", r.Get())
	}
}

func TestRegCommitWithoutSetKeepsValue(t *testing.T) {
	var r Reg[int]
	r.Set(7)
	r.Commit()
	r.Commit() // no Set in between: must hold
	if r.Get() != 7 {
		t.Fatalf("register lost value on idle commit: %d", r.Get())
	}
}

func TestRegReset(t *testing.T) {
	var r Reg[int]
	r.Set(3)
	r.Reset(42)
	r.Commit() // a pending Set must not survive Reset
	if r.Get() != 42 {
		t.Fatalf("Reset did not clear pending Set: %d", r.Get())
	}
}

func TestClockCycleCount(t *testing.T) {
	clk := NewClock()
	clk.StepN(17)
	if clk.Cycle() != 17 {
		t.Fatalf("Cycle() = %d, want 17", clk.Cycle())
	}
}

func TestTraceBoundedAndOrdered(t *testing.T) {
	clk := NewClock()
	clk.EnableTrace(4)
	for i := 0; i < 10; i++ {
		clk.Emit("sig", i)
		clk.Step()
	}
	ev := clk.Trace().Events()
	if len(ev) != 4 {
		t.Fatalf("trace retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := fmt.Sprint(6 + i); e.Value != want {
			t.Errorf("event %d value = %s, want %s", i, e.Value, want)
		}
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, 6+i)
		}
	}
	if clk.Trace().Len() != 4 {
		t.Errorf("Len() = %d, want 4", clk.Trace().Len())
	}
}

func TestTraceUnfilled(t *testing.T) {
	clk := NewClock()
	clk.EnableTrace(100)
	clk.Emit("a", 1)
	clk.Step()
	clk.Emit("b", 2)
	if got := clk.Trace().Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	ev := clk.Trace().Events()
	if ev[0].Signal != "a" || ev[1].Signal != "b" {
		t.Fatalf("events out of order: %v", ev)
	}
	if ev[1].Cycle != 1 {
		t.Fatalf("second event cycle = %d, want 1", ev[1].Cycle)
	}
}

func TestTraceDumpFilter(t *testing.T) {
	clk := NewClock()
	clk.EnableTrace(10)
	clk.Emit("ctl.state", "LOAD")
	clk.Emit("slot0.deadline", 5)
	clk.Emit("ctl.state", "SCHEDULE")
	dump := clk.Trace().Dump("ctl")
	if strings.Contains(dump, "slot0") {
		t.Errorf("filter leaked unrelated signal:\n%s", dump)
	}
	if n := strings.Count(dump, "ctl.state"); n != 2 {
		t.Errorf("filtered dump has %d ctl.state lines, want 2:\n%s", n, dump)
	}
}

func TestEmitWithoutTraceIsNoop(t *testing.T) {
	clk := NewClock()
	clk.Emit("sig", 1) // must not panic
	if clk.Trace() != nil {
		t.Fatal("Trace() should be nil when tracing is disabled")
	}
	clk.EnableTrace(2)
	clk.EnableTrace(0) // disable again
	clk.Emit("sig", 2)
	if clk.Trace() != nil {
		t.Fatal("EnableTrace(0) should disable tracing")
	}
}
