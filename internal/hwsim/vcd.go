package hwsim

// VCD export: render a Trace as a Value Change Dump file, the standard
// waveform interchange format (IEEE 1364), so captured control-unit and
// datapath activity can be inspected in GTKWave and friends — the software
// counterpart of probing the FPGA prototype with ChipScope.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVCD renders the trace to w. Each distinct signal becomes a VCD
// string-valued variable (real hardware values stay numeric strings);
// timescale is one time unit per simulated clock cycle. moduleName labels
// the enclosing scope.
func (t *Trace) WriteVCD(w io.Writer, moduleName string) error {
	if moduleName == "" {
		moduleName = "sharestreams"
	}
	events := t.Events()

	// Collect the signal set in deterministic order.
	signals := map[string]string{} // name -> id code
	var names []string
	for _, e := range events {
		if _, ok := signals[e.Signal]; !ok {
			signals[e.Signal] = ""
			names = append(names, e.Signal)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		signals[n] = idCode(i)
	}

	var b strings.Builder
	b.WriteString("$date ShareStreams simulation $end\n")
	b.WriteString("$version repro hwsim $end\n")
	b.WriteString("$timescale 1ns $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", sanitize(moduleName))
	for _, n := range names {
		// String-valued "real" signals carry arbitrary values; width 1
		// with the string extension keeps viewers happy enough; numeric
		// values could be declared wider, but the string form is
		// universally renderable.
		fmt.Fprintf(&b, "$var string 1 %s %s $end\n", signals[n], sanitize(n))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	lastCycle := uint64(0)
	first := true
	for _, e := range events {
		if first || e.Cycle != lastCycle {
			fmt.Fprintf(&b, "#%d\n", e.Cycle)
			lastCycle = e.Cycle
			first = false
		}
		fmt.Fprintf(&b, "s%s %s\n", vcdEscape(e.Value), signals[e.Signal])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// idCode generates the compact VCD identifier for variable i using the
// printable ASCII range ! to ~.
func idCode(i int) string {
	const lo, hi = 33, 127 // '!' .. '~'
	n := hi - lo
	var sb strings.Builder
	for {
		sb.WriteByte(byte(lo + i%n))
		i /= n
		if i == 0 {
			return sb.String()
		}
		i--
	}
}

// sanitize converts names to VCD-safe identifiers.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '[', r == ']':
			return r
		default:
			return '_'
		}
	}, s)
}

// vcdEscape strips whitespace from string values (VCD string changes are
// whitespace-delimited).
func vcdEscape(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
