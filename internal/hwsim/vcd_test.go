package hwsim

import (
	"strings"
	"testing"
)

func TestWriteVCDStructure(t *testing.T) {
	tr := NewTrace(16)
	tr.Add(Event{Cycle: 0, Signal: "ctl.state", Value: "LOAD"})
	tr.Add(Event{Cycle: 1, Signal: "ctl.state", Value: "SCHEDULE"})
	tr.Add(Event{Cycle: 1, Signal: "ctl.winner", Value: "3"})
	tr.Add(Event{Cycle: 4, Signal: "ctl.state", Value: "PRIORITY UPDATE"})

	var sb strings.Builder
	if err := tr.WriteVCD(&sb, "sched"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module sched $end",
		"$var string 1 ! ctl.state $end",
		"$var string 1 \" ctl.winner $end",
		"$enddefinitions $end",
		"#0\nsLOAD !",
		"#1\nsSCHEDULE !",
		"s3 \"",
		"#4\nsPRIORITY_UPDATE !", // whitespace escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Timestamps must appear once per cycle, not per event.
	if strings.Count(out, "#1\n") != 1 {
		t.Errorf("duplicate timestamp markers:\n%s", out)
	}
}

func TestWriteVCDDefaultModuleAndSanitize(t *testing.T) {
	tr := NewTrace(4)
	tr.Add(Event{Cycle: 0, Signal: "a b/c", Value: "x"})
	var sb strings.Builder
	if err := tr.WriteVCD(&sb, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$scope module sharestreams $end") {
		t.Error("default module name missing")
	}
	if !strings.Contains(out, "a_b_c") {
		t.Errorf("signal name not sanitized:\n%s", out)
	}
}

func TestIDCodeUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("idCode collision at %d: %q", i, c)
		}
		seen[c] = true
		for _, r := range c {
			if r < 33 || r > 126 {
				t.Fatalf("idCode(%d) contains non-printable %q", i, c)
			}
		}
	}
}

func TestVCDFromSchedulerTraceShape(t *testing.T) {
	// A realistic trace through the Clock facility round-trips.
	clk := NewClock()
	clk.EnableTrace(32)
	for i := 0; i < 5; i++ {
		clk.Emit("slot0.deadline", i*3)
		clk.Step()
	}
	var sb strings.Builder
	if err := clk.Trace().WriteVCD(&sb, "dp"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slot0.deadline") {
		t.Error("datapath signal missing from VCD")
	}
}
