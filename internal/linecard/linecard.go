// Package linecard implements the ShareStreams switch line-card realization
// (Figure 2): the configuration for backbone switches and routers where
// meeting per-packet times at 10 Gbps is critical and no host processor
// sits in the scheduling loop.
//
// Structure, as in the figure:
//
//   - packets arriving from the switch fabric land in per-stream queues in
//     dual-ported SRAM; their arrival times are read by the SRAM interface
//     concurrently (dual porting — no bank-ownership switching, unlike the
//     endsystem's Celoxica card);
//   - the Scheduler control unit (package core) orders the stream-slots and
//     produces winner Stream IDs;
//   - winner Stream IDs are written into the SRAM partition for the network
//     transceiver, which drains the corresponding frames onto the wire.
//
// The model runs the cycle-accurate scheduler against fabric-fed queues and
// converts hardware clock counts into wall-clock rates with the package
// fpga clock model, reproducing §5.2's "7.6 million packets/second with
// four stream-slots … packet arrival-times are supplied in dual-ported
// memory by action of the switch fabric".
package linecard

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/regblock"
	"repro/internal/ringbuf"
)

// Config parameterizes a line card.
type Config struct {
	// Slots is the stream-slot count (power of two; the paper's prototype
	// supports up to 32 per-flow queues on a Virtex-1000, against the
	// Cisco GSR line-card's 8 queues per port).
	Slots int
	// Routing selects BA (block) or WR (winner-only).
	Routing core.Routing
	// Circulate selects the block circulation mode (BA only).
	Circulate core.Circulate
	// Device selects the clock model (Virtex-I prototype or the §6
	// Virtex-II extension).
	Device fpga.Device
	// QueueDepth is the per-stream SRAM queue capacity in frames
	// (power of two; default 256).
	QueueDepth int
}

// Card is one line card instance.
type Card struct {
	cfg   Config
	sched *core.Scheduler
	sram  *DualPortSRAM
	out   *ringbuf.Ring[attr.SlotID] // winner Stream IDs to the transceiver

	clockMHz float64
	drained  []uint64 // frames taken by the transceiver, per stream
}

// DualPortSRAM models the card's dual-ported per-stream queues: the switch
// fabric writes arrival times on one port while the SRAM interface reads
// them on the other, concurrently and without ownership arbitration.
type DualPortSRAM struct {
	queues []*ringbuf.Ring[uint64] // arrival times per stream

	// FabricWrites and InterfaceReads count the port operations;
	// FabricDrops counts fabric arrivals that found a full queue.
	FabricWrites   uint64
	InterfaceReads uint64 //sslint:ledger
	FabricDrops    uint64
}

// newSRAM builds per-stream queues.
func newSRAM(streams, depth int) (*DualPortSRAM, error) {
	s := &DualPortSRAM{queues: make([]*ringbuf.Ring[uint64], streams)}
	for i := range s.queues {
		r, err := ringbuf.New[uint64](depth)
		if err != nil {
			return nil, err
		}
		s.queues[i] = r
	}
	return s, nil
}

// FabricArrival deposits a frame's arrival time into stream i's queue (the
// switch-fabric port). It reports false — and counts a drop — when the
// queue is full.
func (s *DualPortSRAM) FabricArrival(i int, arrival uint64) bool {
	if i < 0 || i >= len(s.queues) {
		return false
	}
	if !s.queues[i].Push(arrival) {
		s.FabricDrops++
		return false
	}
	s.FabricWrites++
	return true
}

// Backlog returns stream i's queued frame count.
func (s *DualPortSRAM) Backlog(i int) int { return s.queues[i].Len() }

// source adapts one SRAM queue to the Register Base block head interface
// (the SRAM-interface port).
type source struct {
	s *DualPortSRAM
	i int
}

// NextHead implements regblock.HeadSource.
func (src *source) NextHead() (regblock.Head, bool) {
	arrival, ok := src.s.queues[src.i].Pop()
	if !ok {
		return regblock.Head{}, false
	}
	src.s.InterfaceReads++
	return regblock.Head{Arrival: arrival}, true
}

// New builds a line card; admit streams with Admit, then Start.
func New(cfg Config) (*Card, error) {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 256
	}
	sched, err := core.New(core.Config{
		Slots:     cfg.Slots,
		Routing:   cfg.Routing,
		Circulate: cfg.Circulate,
	})
	if err != nil {
		return nil, err
	}
	sram, err := newSRAM(cfg.Slots, cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	out, err := ringbuf.New[attr.SlotID](4096)
	if err != nil {
		return nil, err
	}
	routing := fpga.BA
	if cfg.Routing == core.WinnerOnly {
		routing = fpga.WR
	}
	mhz, err := fpga.ClockMHz(cfg.Slots, routing, cfg.Device)
	if err != nil {
		return nil, err
	}
	return &Card{
		cfg:      cfg,
		sched:    sched,
		sram:     sram,
		out:      out,
		clockMHz: mhz,
		drained:  make([]uint64, cfg.Slots),
	}, nil
}

// Admit binds a stream specification to slot i; the head source is the
// slot's SRAM queue.
func (c *Card) Admit(i int, spec attr.Spec) error {
	return c.sched.Admit(i, spec, &source{s: c.sram, i: i})
}

// Start runs the scheduler's LOAD state.
func (c *Card) Start() error { return c.sched.Start() }

// SRAM exposes the dual-ported queue array (the fabric writes through it).
func (c *Card) SRAM() *DualPortSRAM { return c.sram }

// Scheduler exposes the underlying scheduler (counters, diagnostics).
func (c *Card) Scheduler() *core.Scheduler { return c.sched }

// RunCycle executes one decision cycle: the scheduler orders the slots and
// each transmitted frame's Stream ID is written to the transceiver
// partition. It returns the cycle result.
func (c *Card) RunCycle() core.CycleResult {
	cr := c.sched.RunCycle()
	for _, tx := range cr.Transmissions {
		if !c.out.Push(tx.Slot) {
			// Transceiver partition full: drain synchronously (the
			// transceiver runs at wire speed and cannot actually fall
			// behind a correctly provisioned card; this keeps the
			// model robust to tiny partitions in tests).
			c.DrainTransceiver()
			c.out.Push(tx.Slot)
		}
	}
	return cr
}

// DrainTransceiver consumes all pending Stream IDs as the network
// transceiver would, returning how many frames left the card.
func (c *Card) DrainTransceiver() int {
	n := 0
	for {
		id, ok := c.out.Pop()
		if !ok {
			return n
		}
		c.drained[id]++
		n++
	}
}

// Drained returns the frames the transceiver took from stream i.
func (c *Card) Drained(i int) uint64 { return c.drained[i] }

// Rates converts the card's hardware cycle accounting into wall-clock
// scheduling rates under the modeled clock.
type Rates struct {
	ClockMHz      float64
	CyclesPerDec  int
	DecisionsPerS float64
	FramesPerS    float64 // block transactions amortize the decision in BA
}

// Rates returns the card's modeled rates.
func (c *Card) Rates() Rates {
	cycles := c.sched.CyclesPerDecision()
	block := 1
	if c.cfg.Routing == core.BlockRouting {
		block = c.cfg.Slots
	}
	return Rates{
		ClockMHz:      c.clockMHz,
		CyclesPerDec:  cycles,
		DecisionsPerS: fpga.DecisionRate(c.clockMHz, cycles),
		FramesPerS:    fpga.PacketRate(c.clockMHz, cycles, block),
	}
}

// MeetsWireSpeed reports whether the card keeps up with back-to-back frames
// of the given size on a link of the given rate.
func (c *Card) MeetsWireSpeed(frameBytes int, linkBps float64) bool {
	block := 1
	if c.cfg.Routing == core.BlockRouting {
		block = c.cfg.Slots
	}
	return fpga.MeetsPacketTime(c.clockMHz, c.sched.CyclesPerDecision(), block, frameBytes, linkBps)
}

// String summarizes the card.
func (c *Card) String() string {
	r := c.Rates()
	return fmt.Sprintf("linecard[%s %d slots, %s @ %.0f MHz, %.2fM dec/s, %.2fM frames/s]",
		c.cfg.Routing, c.cfg.Slots, c.cfg.Device, r.ClockMHz, r.DecisionsPerS/1e6, r.FramesPerS/1e6)
}
