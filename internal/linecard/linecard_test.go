package linecard

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/fpga"
)

func mkCard(t *testing.T, cfg Config) *Card {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Slots; i++ {
		if err := c.Admit(i, attr.Spec{Class: attr.EDF, Period: uint16(cfg.Slots)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFabricToTransceiverConservation(t *testing.T) {
	c := mkCard(t, Config{Slots: 4, Routing: core.WinnerOnly})
	// Fabric deposits 100 frames per stream.
	for k := 0; k < 100; k++ {
		for i := 0; i < 4; i++ {
			if !c.SRAM().FabricArrival(i, uint64(k)) {
				t.Fatalf("fabric drop at backlog %d", k)
			}
		}
	}
	// 400 WR decision cycles drain everything.
	for n := 0; n < 400; n++ {
		c.RunCycle()
	}
	drained := c.DrainTransceiver()
	if drained != 400 {
		t.Fatalf("transceiver took %d frames, want 400", drained)
	}
	for i := 0; i < 4; i++ {
		if c.Drained(i) != 100 {
			t.Errorf("stream %d drained %d, want 100", i, c.Drained(i))
		}
		if c.SRAM().Backlog(i) != 0 {
			t.Errorf("stream %d residual backlog %d", i, c.SRAM().Backlog(i))
		}
	}
	if c.SRAM().FabricWrites != 400 || c.SRAM().InterfaceReads != 400 {
		t.Errorf("port counters: %d writes, %d reads", c.SRAM().FabricWrites, c.SRAM().InterfaceReads)
	}
}

func TestFabricDropOnFullQueue(t *testing.T) {
	c := mkCard(t, Config{Slots: 2, Routing: core.WinnerOnly, QueueDepth: 4})
	for k := 0; k < 4; k++ {
		if !c.SRAM().FabricArrival(0, uint64(k)) {
			t.Fatalf("premature drop at %d", k)
		}
	}
	if c.SRAM().FabricArrival(0, 99) {
		t.Fatal("full queue accepted a frame")
	}
	if c.SRAM().FabricDrops != 1 {
		t.Fatalf("drops = %d", c.SRAM().FabricDrops)
	}
	if c.SRAM().FabricArrival(-1, 0) || c.SRAM().FabricArrival(5, 0) {
		t.Fatal("out-of-range stream accepted")
	}
}

func TestBlockConfigurationTransmitsBlocks(t *testing.T) {
	c := mkCard(t, Config{Slots: 4, Routing: core.BlockRouting})
	for k := 0; k < 10; k++ {
		for i := 0; i < 4; i++ {
			c.SRAM().FabricArrival(i, uint64(k))
		}
	}
	cr := c.RunCycle()
	if len(cr.Transmissions) != 4 {
		t.Fatalf("block transaction carried %d frames, want 4", len(cr.Transmissions))
	}
	if got := c.DrainTransceiver(); got != 4 {
		t.Fatalf("transceiver got %d stream IDs", got)
	}
}

func TestPaperLineCardRate(t *testing.T) {
	// §5.2: 7.6 M packets/second with four stream-slots.
	c := mkCard(t, Config{Slots: 4, Routing: core.BlockRouting})
	r := c.Rates()
	if r.DecisionsPerS < 7.4e6 || r.DecisionsPerS > 7.8e6 {
		t.Fatalf("4-slot decision rate = %.2fM/s, want ≈7.6M", r.DecisionsPerS/1e6)
	}
	if r.FramesPerS != 4*r.DecisionsPerS {
		t.Fatalf("BA frame rate %v != 4x decision rate %v", r.FramesPerS, r.DecisionsPerS)
	}
	if !strings.Contains(c.String(), "7.62M dec/s") {
		t.Errorf("String() = %s", c.String())
	}
}

func TestWireSpeedClaims(t *testing.T) {
	// The paper's §5.1 feasibility statements, on the functional card.
	for _, n := range []int{4, 8, 16, 32} {
		c := mkCard(t, Config{Slots: n, Routing: core.BlockRouting})
		if !c.MeetsWireSpeed(64, fpga.Gigabit) {
			t.Errorf("N=%d misses 64B@1G", n)
		}
		if !c.MeetsWireSpeed(1500, fpga.TenGigabit) {
			t.Errorf("N=%d misses 1500B@10G", n)
		}
	}
	wr := mkCard(t, Config{Slots: 32, Routing: core.WinnerOnly})
	if wr.MeetsWireSpeed(64, fpga.TenGigabit) {
		t.Error("32-slot WR claims 64B@10G")
	}
}

func TestVirtexIICardFaster(t *testing.T) {
	v1 := mkCard(t, Config{Slots: 32, Routing: core.BlockRouting, Device: fpga.VirtexI})
	v2 := mkCard(t, Config{Slots: 32, Routing: core.BlockRouting, Device: fpga.VirtexII})
	if v2.Rates().DecisionsPerS <= v1.Rates().DecisionsPerS {
		t.Error("Virtex-II card not faster")
	}
}

func TestPerFlowQoSOnCard(t *testing.T) {
	// Per-flow queuing with differentiated periods: service frequencies
	// follow 1/T under sustained fabric load.
	cfg := Config{Slots: 4, Routing: core.WinnerOnly}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	periods := []uint16{8, 8, 4, 2}
	for i, p := range periods {
		if err := c.Admit(i, attr.Spec{Class: attr.EDF, Period: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	const cycles = 8000
	for n := 0; n < cycles; n++ {
		for i := 0; i < 4; i++ {
			c.SRAM().FabricArrival(i, uint64(n)) // keep all queues hot
		}
		c.RunCycle()
	}
	c.DrainTransceiver()
	// Shares 1/8 : 1/8 : 1/4 : 1/2.
	want := []float64{0.125, 0.125, 0.25, 0.5}
	for i, w := range want {
		got := float64(c.Drained(i)) / cycles
		if got < w*0.9 || got > w*1.1 {
			t.Errorf("stream %d share = %.3f, want ≈%.3f", i, got, w)
		}
	}
}

func TestTinyTransceiverPartitionDoesNotWedge(t *testing.T) {
	// Force the synchronous-drain path by never draining manually; the
	// out ring fills and RunCycle must self-drain rather than deadlock.
	// Fabric arrivals are interleaved with cycles so the depth-bounded
	// SRAM queues never overflow.
	c := mkCard(t, Config{Slots: 4, Routing: core.BlockRouting})
	for n := 0; n < 3000; n++ {
		for i := 0; i < 4; i++ {
			if !c.SRAM().FabricArrival(i, uint64(n)) {
				t.Fatalf("fabric drop at cycle %d", n)
			}
		}
		c.RunCycle()
	}
	c.DrainTransceiver()
	var total uint64
	for i := 0; i < 4; i++ {
		total += c.Drained(i)
	}
	if total != 12000 {
		t.Fatalf("drained %d frames, want 12000", total)
	}
}
