// Package link models the outgoing network link of the endsystem: a
// serializing resource with a fixed line rate. Frames occupy the wire for
// their packet time (frame bits over line speed, §1), transmissions queue
// behind one another, and the model tracks utilization — the property
// wire-speed schedulers exist to protect.
package link

import "fmt"

// Link is one output link. Times are virtual nanoseconds.
type Link struct {
	bps       float64
	busyUntil float64
	busySum   float64
	bytes     uint64
	frames    uint64
}

// New builds a link with the given line rate in bits per second.
func New(bps float64) (*Link, error) {
	if bps <= 0 {
		return nil, fmt.Errorf("link: rate %v bps", bps)
	}
	return &Link{bps: bps}, nil
}

// Bps returns the line rate.
func (l *Link) Bps() float64 { return l.bps }

// FrameNs returns the wire time of a frame in nanoseconds.
func (l *Link) FrameNs(bytes int) float64 {
	return float64(bytes*8) / l.bps * 1e9
}

// Transmit serializes a frame that becomes ready at readyNs: it starts when
// both the frame and the wire are ready and occupies the wire for its packet
// time. It returns the start and end times.
func (l *Link) Transmit(bytes int, readyNs float64) (startNs, endNs float64, err error) {
	if bytes <= 0 {
		return 0, 0, fmt.Errorf("link: frame size %d", bytes)
	}
	start := readyNs
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := l.FrameNs(bytes)
	l.busyUntil = start + dur
	l.busySum += dur
	l.bytes += uint64(bytes)
	l.frames++
	return start, l.busyUntil, nil
}

// BusyUntil returns the time the wire frees up.
func (l *Link) BusyUntil() float64 { return l.busyUntil }

// Frames returns the number of frames transmitted.
func (l *Link) Frames() uint64 { return l.frames }

// Bytes returns the bytes transmitted.
func (l *Link) Bytes() uint64 { return l.bytes }

// Utilization returns the fraction of [0, horizonNs] the wire was busy.
func (l *Link) Utilization(horizonNs float64) float64 {
	if horizonNs <= 0 {
		return 0
	}
	u := l.busySum / horizonNs
	if u > 1 {
		u = 1
	}
	return u
}
