package link

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted zero rate")
	}
	l, err := New(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bps() != 1e9 {
		t.Errorf("Bps = %v", l.Bps())
	}
}

func TestFrameNs(t *testing.T) {
	l, _ := New(1e9)
	if got := l.FrameNs(1500); math.Abs(got-12000) > 1e-9 {
		t.Fatalf("1500B@1G = %v ns, want 12000", got)
	}
	l10, _ := New(1e10)
	if got := l10.FrameNs(64); math.Abs(got-51.2) > 1e-9 {
		t.Fatalf("64B@10G = %v ns, want 51.2", got)
	}
}

func TestTransmitSerializes(t *testing.T) {
	l, _ := New(1e9)
	s1, e1, err := l.Transmit(1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 || math.Abs(e1-12000) > 1e-9 {
		t.Fatalf("first frame [%v, %v]", s1, e1)
	}
	// Second frame ready at 1000 must wait for the wire.
	s2, e2, _ := l.Transmit(1500, 1000)
	if s2 != e1 {
		t.Fatalf("second frame started at %v, want %v (wire busy)", s2, e1)
	}
	if math.Abs(e2-24000) > 1e-9 {
		t.Fatalf("second frame end %v", e2)
	}
	// A frame ready after an idle gap starts immediately.
	s3, _, _ := l.Transmit(64, 100000)
	if s3 != 100000 {
		t.Fatalf("third frame start %v, want 100000", s3)
	}
	if l.Frames() != 3 || l.Bytes() != 3064 {
		t.Fatalf("counters: %d frames %d bytes", l.Frames(), l.Bytes())
	}
}

func TestTransmitValidation(t *testing.T) {
	l, _ := New(1e9)
	if _, _, err := l.Transmit(0, 0); err == nil {
		t.Error("accepted zero-size frame")
	}
}

func TestUtilization(t *testing.T) {
	l, _ := New(1e9)
	l.Transmit(1500, 0) // 12 µs busy
	if got := l.Utilization(24000); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := l.Utilization(0); got != 0 {
		t.Fatalf("zero horizon utilization = %v", got)
	}
	if got := l.Utilization(6000); got != 1 {
		t.Fatalf("clamped utilization = %v, want 1", got)
	}
}
