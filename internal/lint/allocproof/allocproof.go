// Package allocproof proves the hot set allocation-free along every warm
// control-flow path — the flow-sensitive upgrade of hotpathalloc.
//
// hotpathalloc rejects allocation-inducing syntax anywhere in a hot
// function, with one blunt exemption (panic arguments). This analyzer walks
// the function's CFG instead and distinguishes paths:
//
//   - warm blocks — reachable from entry AND able to reach the normal
//     return — must be allocation-free: a conditional alloc behind an
//     unlikely branch is still a steady-state alloc the cycle budget pays
//     for when the branch hits;
//   - doomed blocks — every continuation panics — are cold by definition,
//     so a wiring-error path may format its message
//     (`msg := fmt.Sprintf(...); panic(msg)` is accepted whole, not just
//     the panic's own arguments);
//   - calls from a warm block to a same-package function outside the hot
//     set are followed: if the callee (transitively) reaches an allocation
//     on one of its own warm paths, the call site is a finding. This closes
//     the "hide the make() in a helper" hole that syntactic checking leaves
//     open. Cross-package and interface calls stay the runtime allocation
//     tests' job.
//
// The allocation classifier itself is shared with hotpathalloc
// (WalkAllocs), so the two analyzers can never disagree about what
// allocates — only about where it is reachable from.
package allocproof

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/hotset"
)

// Analyzer is the allocproof check.
var Analyzer = &analysis.Analyzer{
	Name: "allocproof",
	Doc:  "prove hot-set functions allocation-free on every warm control-flow path, through same-package helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	p := &prover{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*types.Func][]site{},
	}
	var hots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				p.decls[fn] = fd
			}
			if hotset.IsHot(pass.Pkg.Path(), fd) {
				hots = append(hots, fd)
			}
		}
	}
	for _, fd := range hots {
		p.checkHot(fd)
	}
	return nil
}

// site is one allocation discovered on a callee's warm path.
type site struct {
	pos token.Pos
	msg string
}

type prover struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]site
}

// checkHot reports every allocation construct in fd's warm blocks and
// follows warm calls into same-package helpers.
func (p *prover) checkHot(fd *ast.FuncDecl) {
	for _, n := range warmNodes(fd, p.pass.Info) {
		hotpathalloc.WalkAllocs(p.pass, n, p.pass.Report)
		p.checkCalls(n)
	}
}

// warmNodes returns the CFG nodes of fd's warm blocks: reachable from entry
// and able to reach the normal return.
func warmNodes(fd *ast.FuncDecl, info *types.Info) []ast.Node {
	g := analysis.NewCFG(fd, info)
	reach := g.ReachableFromEntry()
	warm := g.CanReachExit()
	var nodes []ast.Node
	for _, blk := range g.Blocks {
		if !reach[blk] || !warm[blk] {
			continue
		}
		nodes = append(nodes, blk.Nodes...)
	}
	return nodes
}

// checkCalls flags warm calls whose same-package callee reaches an
// allocation.
func (p *prover) checkCalls(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(p.pass.Info, call)
		if fn == nil || fn.Pkg() != p.pass.Pkg {
			return true
		}
		fd, hasDecl := p.decls[fn]
		if !hasDecl {
			return true // interface dispatch or missing body
		}
		if hotset.IsHot(p.pass.Pkg.Path(), fd) {
			return true // hot callees are proven on their own
		}
		if sites := p.allocSites(fn, fd); len(sites) > 0 {
			first := sites[0]
			p.pass.Reportf(call.Pos(), "call to %s on the hot path reaches an allocation at %s: %s",
				fn.Name(), p.pass.Fset.Position(first.pos), first.msg)
		}
		return true
	})
}

// allocSites proves one non-hot callee, memoized. A function currently on
// the proof stack reports no sites of its own — recursion contributes
// nothing new to the sites its first frame finds.
func (p *prover) allocSites(fn *types.Func, fd *ast.FuncDecl) []site {
	if sites, seen := p.memo[fn]; seen {
		return sites
	}
	p.memo[fn] = nil // in-progress marker for recursive call chains
	var sites []site
	for _, n := range warmNodes(fd, p.pass.Info) {
		hotpathalloc.WalkAllocs(p.pass, n, func(pos token.Pos, msg string) {
			sites = append(sites, site{pos, msg})
		})
		ast.Inspect(n, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			inner := callee(p.pass.Info, call)
			if inner == nil || inner.Pkg() != p.pass.Pkg {
				return true
			}
			innerDecl, hasDecl := p.decls[inner]
			if !hasDecl || hotset.IsHot(p.pass.Pkg.Path(), innerDecl) {
				return true
			}
			if sub := p.allocSites(inner, innerDecl); len(sub) > 0 {
				sites = append(sites, site{call.Pos(), "call to " + inner.Name() + " reaches " + sub[0].msg})
			}
			return true
		})
	}
	p.memo[fn] = sites
	return sites
}

// callee resolves a call to its static *types.Func, if any.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
