package allocproof_test

import (
	"testing"

	"repro/internal/lint/allocproof"
	"repro/internal/lint/linttest"
)

func TestAllocProof(t *testing.T) {
	linttest.Run(t, "testdata/src/a", allocproof.Analyzer)
}
