// Fixture for the allocproof analyzer: warm-path allocations are findings —
// even behind conditionals or hidden in same-package helpers — while
// panic-doomed paths may format their message in peace.
package a

import "fmt"

type sched struct {
	buf []int
	n   int
}

//sslint:hotpath
func (s *sched) runCycle() {
	if s.n > len(s.buf) {
		s.grow() // want `call to grow on the hot path reaches an allocation`
	}
	for i := 0; i < s.n; i++ {
		s.buf[i] = i
	}
	if s.n < 0 {
		// Doomed block: every continuation panics, so the formatting is
		// cold and accepted.
		msg := fmt.Sprintf("impossible n %d", s.n)
		panic(msg)
	}
}

// grow is not hot itself; it is reached from the hot path.
func grow(n int) []int {
	return make([]int, n)
}

func (s *sched) grow() {
	s.buf = make([]int, 2*s.n)
}

//sslint:hotpath
func condAlloc(flag bool, n int) []int {
	var out []int
	if flag {
		out = make([]int, n) // want `make in the hot path allocates`
	}
	return out
}

//sslint:hotpath
func closureCapture(n int) func() int {
	f := func() int { return n } // want `closure literal in the hot path`
	return f
}

//sslint:hotpath
func transitive(n int) int {
	xs := helper(n) // want `call to helper on the hot path reaches an allocation`
	return len(xs)
}

// helper launders the allocation through a second hop.
func helper(n int) []int {
	return deeper(n)
}

func deeper(n int) []int {
	return grow(n)
}

//sslint:hotpath
func cleanCallee(s *sched) int {
	return peek(s) // accepted: callee allocates nothing on any warm path
}

func peek(s *sched) int {
	if s.n == 0 {
		return 0
	}
	return s.buf[0]
}

//sslint:hotpath
func calleePanicPath(s *sched) {
	guard(s) // accepted: guard's only allocation is panic-doomed
}

func guard(s *sched) {
	if s.n < 0 {
		panic(fmt.Sprintf("negative n %d", s.n))
	}
	s.n++
}

//sslint:hotpath
func boxed(v int) {
	sink(v) // want `implicit conversion of int to interface`
}

func sink(any interface{}) { _ = any }

// recurse proves the memoization does not diverge on cycles.
//
//sslint:hotpath
func mutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return stepB(n)
}

func stepB(n int) int { return stepC(n - 1) }
func stepC(n int) int {
	if n <= 0 {
		return 0
	}
	return stepB(n - 1)
}
