package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"strings"
)

// The //sslint:allow annotation grammar: an analyzer name, an em dash (or
// ASCII "--"), and a mandatory human-readable reason. A trailing annotation
// suppresses findings of that analyzer on its own line; an annotation on a
// line by itself suppresses findings on the next line. Annotations with no
// reason, naming an analyzer that did not run, or suppressing nothing are
// themselves findings — there are no silent suppressions.
//
//	wallNs := float64(time.Since(start)) //sslint:allow walltime — wall-clock scaling experiment
//
//	//sslint:allow retainalias — snapshot is copied two lines below
//	blk := res.Block
const allowPrefix = "sslint:allow"

var allowRE = regexp.MustCompile(`^sslint:allow\s+([a-z][a-z0-9]*)\s+(?:—|--)\s*(.*)$`)

// allow is one parsed //sslint:allow annotation.
type allow struct {
	name   string // analyzer being suppressed
	reason string
	pos    token.Pos
	file   string
	line   int // source line the annotation covers
	used   bool
}

// collectAllows parses every //sslint:allow annotation in the package,
// reporting malformed ones as problems.
func collectAllows(pkg *Package) (allows []*allow, problems []Diagnostic) {
	lineCache := map[string][]string{}
	sourceLine := func(file string, line int) string {
		lines, ok := lineCache[file]
		if !ok {
			if data, err := os.ReadFile(file); err == nil {
				lines = strings.Split(string(data), "\n")
			}
			lineCache[file] = lines
		}
		if line-1 < 0 || line-1 >= len(lines) {
			return ""
		}
		return lines[line-1]
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry annotations
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					problems = append(problems, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "sslint",
						Message:  "malformed annotation: want //sslint:allow <analyzer> — <reason>",
					})
					continue
				}
				target := p.Line
				if line := sourceLine(p.Filename, p.Line); p.Column-1 <= len(line) &&
					strings.TrimSpace(line[:p.Column-1]) == "" {
					target = p.Line + 1 // standalone comment covers the next line
				}
				allows = append(allows, &allow{
					name:   m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    c.Pos(),
					file:   p.Filename,
					line:   target,
				})
			}
		}
	}
	return allows, problems
}

// filterAllowed drops diagnostics covered by a matching //sslint:allow
// annotation and reports annotation problems: malformed annotations,
// annotations naming an analyzer that did not run on this package, and
// annotations that suppressed nothing.
func filterAllowed(pkg *Package, diags []Diagnostic, ran map[string]bool) (kept, problems []Diagnostic) {
	allows, problems := collectAllows(pkg)
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.name == d.Analyzer && a.file == p.Filename && a.line == p.Line {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case !ran[a.name]:
			problems = append(problems, Diagnostic{
				Pos:      a.pos,
				Analyzer: "sslint",
				Message:  fmt.Sprintf("annotation allows %q, which did not run on this package", a.name),
			})
		case !a.used:
			problems = append(problems, Diagnostic{
				Pos:      a.pos,
				Analyzer: "sslint",
				Message:  fmt.Sprintf("unused //sslint:allow %s — the line it covers has no %s finding", a.name, a.name),
			})
		}
	}
	return kept, problems
}

// AllowInfo is one well-formed //sslint:allow annotation, for suppression
// auditing (`sslint -stats`).
type AllowInfo struct {
	Analyzer string
	Reason   string
	File     string
	Line     int
}

// Allows returns the package's parsed //sslint:allow annotations plus the
// malformed ones (missing analyzer, dash, or reason) as diagnostics. It does
// not check usage — that is Run's job — so it is safe on packages whose
// analyzers have not run.
func Allows(pkg *Package) ([]AllowInfo, []Diagnostic) {
	allows, problems := collectAllows(pkg)
	infos := make([]AllowInfo, 0, len(allows))
	for _, a := range allows {
		infos = append(infos, AllowInfo{Analyzer: a.name, Reason: a.reason, File: a.file, Line: a.line})
	}
	return infos, problems
}

// Marker is one //sslint:<name> source marker with its optional argument
// text and the source line it covers (its own line, or the next line for a
// standalone comment — the same targeting rule as //sslint:allow).
type Marker struct {
	Arg  string
	File string
	Line int
	Pos  token.Pos
}

// Markers collects every //sslint:<name> marker in the files, keyed by
// file then covered line. Marker grammars with arguments (//sslint:bounded
// <reason>) read Arg; bare markers leave it empty. It takes the pieces a
// Pass already holds so analyzers can consume marker grammars directly.
func Markers(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]Marker {
	want := "sslint:" + name
	out := map[string]map[int]Marker{}
	lineCache := map[string][]string{}
	sourceLine := func(file string, line int) string {
		lines, ok := lineCache[file]
		if !ok {
			if data, err := os.ReadFile(file); err == nil {
				lines = strings.Split(string(data), "\n")
			}
			lineCache[file] = lines
		}
		if line-1 < 0 || line-1 >= len(lines) {
			return ""
		}
		return lines[line-1]
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if text != want && !strings.HasPrefix(text, want+" ") {
					continue
				}
				p := fset.Position(c.Pos())
				target := p.Line
				if line := sourceLine(p.Filename, p.Line); p.Column-1 <= len(line) &&
					strings.TrimSpace(line[:p.Column-1]) == "" {
					target = p.Line + 1 // standalone comment covers the next line
				}
				if out[p.Filename] == nil {
					out[p.Filename] = map[int]Marker{}
				}
				out[p.Filename][target] = Marker{
					Arg:  strings.TrimSpace(strings.TrimPrefix(text, want)),
					File: p.Filename,
					Line: target,
					Pos:  c.Pos(),
				}
			}
		}
	}
	return out
}

// MarkerAt returns the marker covering the position's line, if any.
func MarkerAt(markers map[string]map[int]Marker, p token.Position) (Marker, bool) {
	m, ok := markers[p.Filename][p.Line]
	return m, ok
}

// CommentHasMarker reports whether any comment attached via doc or line
// comment groups contains the given //sslint:<marker> directive. Analyzers
// use markers (//sslint:hotpath, //sslint:aliased, //sslint:spsc,
// //sslint:enum) to extend their built-in target sets from source
// annotations — fixtures rely on this, and future code can opt in without
// touching the analyzer.
func CommentHasMarker(groups []*ast.CommentGroup, marker string) bool {
	want := "sslint:" + marker
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			text = strings.TrimSpace(text)
			if text == want || strings.HasPrefix(text, want+" ") {
				return true
			}
		}
	}
	return false
}
