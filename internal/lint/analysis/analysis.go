// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver surface, sized for this repository's
// sslint suite. The container build deliberately carries no module
// dependencies beyond the standard library, so instead of importing x/tools
// the suite defines the same three-piece contract — an Analyzer with a Run
// function, a Pass giving it one type-checked package, and Diagnostics
// reported against token positions — plus the project-specific
// //sslint:allow suppression grammar shared by the cmd/sslint driver and the
// linttest fixture runner.
//
// Analyzers written against this package port to the real go/analysis API by
// changing only the import path and the Pass field names they touch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sslint:allow annotations. It must be a single lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `sslint -help`.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: message})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies the analyzers to pkg, filters the findings through the
// package's //sslint:allow annotations, and returns the surviving
// diagnostics sorted by position. Suppression problems (malformed or unused
// annotations) come back as ordinary diagnostics under the analyzer name
// "sslint", so a stale annotation fails the lint gate exactly like a real
// finding — the "no silent suppressions" rule.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	kept, problems := filterAllowed(pkg, diags, names)
	kept = append(kept, problems...)
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// WalkStack traverses root in source order, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false prunes the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
