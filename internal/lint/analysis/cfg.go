package analysis

// This file builds per-function control-flow graphs over go/ast — the
// flow-sensitive substrate the sslint suite's proving analyzers (allocproof,
// conserve, spscflow) run on. The graph is statement-granular: every basic
// block holds the simple statements and branch/loop conditions that execute
// straight-line within it, in evaluation order, and edges carry the branch
// condition they are taken under (Cond/Branch), which is what lets a
// dataflow client refine facts per path — the "path-condition-lite" API.
//
// Two sinks are distinguished: Exit collects every return and the implicit
// fall-off-the-end return, while Panic collects blocks that end in a call to
// the panic builtin. A block from which Exit is unreachable is *doomed* —
// every continuation panics — and analyses that prove steady-state
// properties (allocation freedom, counter conservation) treat doomed blocks
// as cold: a wiring-error panic path is allowed to format its message.
//
// Function literals are opaque: the builder never descends into a FuncLit
// body, because that body belongs to a different function's flow.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockKind distinguishes the synthetic entry/exit/panic blocks from
// ordinary body blocks.
type BlockKind uint8

const (
	// BlockBody is an ordinary straight-line block.
	BlockBody BlockKind = iota
	// BlockEntry is the function's unique entry (no statements).
	BlockEntry
	// BlockExit is the unique normal-return sink.
	BlockExit
	// BlockPanic is the unique panicking sink.
	BlockPanic
)

// Block is one basic block: simple statements and condition expressions in
// evaluation order, plus the edges in and out.
type Block struct {
	Index int
	Kind  BlockKind
	// Nodes holds the block's statements and standalone condition/tag
	// expressions in execution order. Compound statements never appear —
	// only their atomic parts do — so a client walking each node's subtree
	// visits every expression of the function exactly once.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control-flow edge. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to Branch; unconditional edges have Cond nil.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
}

// Graph is one function's control-flow graph.
type Graph struct {
	Fn     *ast.FuncDecl
	Entry  *Block
	Exit   *Block
	Panic  *Block
	Blocks []*Block
}

// NewCFG builds the control-flow graph of fn's body. info resolves the
// panic builtin (nil degrades to matching the identifier name). fn must
// have a body.
func NewCFG(fn *ast.FuncDecl, info *types.Info) *Graph {
	g := &Graph{Fn: fn}
	b := &cfgBuilder{g: g, info: info, labels: map[string]*Block{}}
	g.Entry = b.newBlock(BlockEntry)
	g.Exit = b.newBlock(BlockExit)
	g.Panic = b.newBlock(BlockPanic)
	first := b.newBlock(BlockBody)
	b.link(g.Entry, first, nil, false)
	b.cur = first
	b.stmt(fn.Body)
	b.link(b.cur, g.Exit, nil, false) // implicit return
	for _, gt := range b.gotos {
		if target, ok := b.labels[gt.label]; ok {
			b.link(gt.from, target, nil, false)
		}
	}
	return g
}

// ReachableFromEntry returns the blocks reachable from Entry — statements in
// any other block are dead code.
func (g *Graph) ReachableFromEntry() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

// CanReachExit returns the blocks from which the normal-return sink is
// reachable. Blocks outside this set are doomed — every continuation panics
// — and steady-state analyses treat them as cold.
func (g *Graph) CanReachExit() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Preds {
			walk(e.From)
		}
	}
	walk(g.Exit)
	return seen
}

// jumpTarget pairs a jump destination with the loop/switch label it answers
// to ("" for unlabeled).
type jumpTarget struct {
	label string
	block *Block
}

type gotoRef struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g    *Graph
	info *types.Info
	cur  *Block

	breaks       []jumpTarget
	continues    []jumpTarget
	fallthroughs []*Block
	labels       map[string]*Block
	gotos        []gotoRef
	// pendingLabel is the label of the LabeledStmt being built, consumed by
	// the next loop/switch/select so labeled break/continue resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind BlockKind) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// detach starts a fresh unreachable block — the continuation after a jump.
func (b *cfgBuilder) detach() {
	b.cur = b.newBlock(BlockBody)
}

func (b *cfgBuilder) link(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		lb := b.newBlock(BlockBody)
		b.link(b.cur, lb, nil, false)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit, nil, false)
		b.detach()
	case *ast.ExprStmt:
		b.add(s)
		if b.isPanic(s.X) {
			b.link(b.cur, b.g.Panic, nil, false)
			b.detach()
		}
	default:
		// Simple statements: assignments, inc/dec, sends, declarations,
		// defers, go statements, empty statements.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock(BlockBody)
	b.link(cond, then, s.Cond, true)
	b.cur = then
	b.stmt(s.Body)
	afterThen := b.cur
	join := b.newBlock(BlockBody)
	if s.Else != nil {
		els := b.newBlock(BlockBody)
		b.link(cond, els, s.Cond, false)
		b.cur = els
		b.stmt(s.Else)
		b.link(b.cur, join, nil, false)
	} else {
		b.link(cond, join, s.Cond, false)
	}
	b.link(afterThen, join, nil, false)
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock(BlockBody)
	b.link(b.cur, head, nil, false)
	body := b.newBlock(BlockBody)
	exit := b.newBlock(BlockBody)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.link(head, body, s.Cond, true)
		b.link(head, exit, s.Cond, false)
	} else {
		b.link(head, body, nil, false)
	}
	cont := head
	if s.Post != nil {
		post := b.newBlock(BlockBody)
		b.cur = post
		b.add(s.Post)
		b.link(post, head, nil, false)
		cont = post
	}
	b.breaks = append(b.breaks, jumpTarget{label, exit})
	b.continues = append(b.continues, jumpTarget{label, cont})
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, cont, nil, false)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock(BlockBody)
	b.link(b.cur, head, nil, false)
	body := b.newBlock(BlockBody)
	exit := b.newBlock(BlockBody)
	b.link(head, body, nil, false)
	b.link(head, exit, nil, false)
	b.breaks = append(b.breaks, jumpTarget{label, exit})
	b.continues = append(b.continues, jumpTarget{label, head})
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, head, nil, false)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

// switchStmt covers expression and type switches (tag nil for the latter;
// a type switch's assign statement is passed through init by the caller).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	cond := b.cur
	exit := b.newBlock(BlockBody)
	b.breaks = append(b.breaks, jumpTarget{label, exit})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock(BlockBody)
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.link(cond, bodies[i], nil, false)
		b.cur = bodies[i]
		for _, e := range cc.List {
			// Guard expressions count as executed at the case's head. Type
			// switches carry type expressions here; they evaluate nothing.
			if !isTypeExpr(b.info, e) {
				b.add(e)
			}
		}
		next := exit
		if i+1 < len(bodies) {
			next = bodies[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		b.link(b.cur, exit, nil, false)
	}
	if !hasDefault {
		b.link(cond, exit, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	cond := b.cur
	exit := b.newBlock(BlockBody)
	b.breaks = append(b.breaks, jumpTarget{label, exit})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock(BlockBody)
		b.link(cond, cb, nil, false)
		b.cur = cb
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.link(b.cur, exit, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	find := func(stack []jumpTarget) *Block {
		if s.Label == nil {
			if len(stack) > 0 {
				return stack[len(stack)-1].block
			}
			return nil
		}
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].label == s.Label.Name {
				return stack[i].block
			}
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		if t := find(b.breaks); t != nil {
			b.link(b.cur, t, nil, false)
		}
		b.detach()
	case token.CONTINUE:
		if t := find(b.continues); t != nil {
			b.link(b.cur, t, nil, false)
		}
		b.detach()
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, gotoRef{b.cur, s.Label.Name})
		}
		b.detach()
	case token.FALLTHROUGH:
		if n := len(b.fallthroughs); n > 0 {
			b.link(b.cur, b.fallthroughs[n-1], nil, false)
		}
		b.detach()
	}
}

// isPanic reports whether e is a call to the panic builtin.
func (b *cfgBuilder) isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isTypeExpr reports whether e denotes a type (a type-switch case guard).
func isTypeExpr(info *types.Info, e ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.IsType()
}
