package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/analysis"
)

// buildCFG type-checks a small dependency-free source and returns the CFG of
// its first function declaration.
func buildCFG(t *testing.T, src string) (*analysis.Graph, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return analysis.NewCFG(fd, info), info, fset
		}
	}
	t.Fatal("no function declaration in source")
	return nil, nil, nil
}

// blockWith finds the unique block whose Nodes contain a node matched by
// pred.
func blockWith(t *testing.T, g *analysis.Graph, what string, pred func(ast.Node) bool) *analysis.Block {
	t.Helper()
	var found *analysis.Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if pred(n) {
				if found != nil && found != blk {
					t.Fatalf("%s appears in two blocks (%d and %d)", what, found.Index, blk.Index)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatalf("%s not found in any block", what)
	}
	return found
}

// addAssignTo matches `name += ...`.
func addAssignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 || as.Tok != token.ADD_ASSIGN {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGIfElseBranchEdges(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	var trueEdge, falseEdge *analysis.Edge
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond == nil {
				continue
			}
			if e.Branch {
				trueEdge = e
			} else {
				falseEdge = e
			}
		}
	}
	if trueEdge == nil || falseEdge == nil {
		t.Fatal("want one true-branch and one false-branch conditional edge")
	}
	if trueEdge.From != falseEdge.From {
		t.Error("both conditional edges should leave the condition block")
	}
	reach := g.ReachableFromEntry()
	if !reach[g.Exit] {
		t.Error("exit must be reachable")
	}
}

func TestCFGNodeExactness(t *testing.T) {
	// Every simple statement of the function must land in exactly one block,
	// and statements inside function literals in none.
	g, _, _ := buildCFG(t, `
func f(n int, m map[int]int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	for k, v := range m {
		s += k + v
	}
	switch {
	case s > 10:
		s = 10
	default:
		s++
	}
	h := func() {
		inner := 1
		_ = inner
	}
	h()
	return s
}`)
	seen := map[ast.Node]int{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			seen[n]++
		}
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("node %T appears %d times across blocks", n, c)
		}
	}
	inFuncLit := false
	ast.Inspect(g.Fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			inFuncLit = true
			return true
		}
		if inFuncLit {
			if as, ok := n.(*ast.AssignStmt); ok {
				if seen[as] != 0 {
					t.Error("function-literal statement leaked into the outer CFG")
				}
			}
		}
		return true
	})
	var stmts int
	for _, blk := range g.Blocks {
		stmts += len(blk.Nodes)
	}
	if stmts == 0 {
		t.Fatal("CFG holds no nodes")
	}
}

func TestCFGPanicDoomsBlock(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(bad bool) {
	if bad {
		msg := "boom"
		panic(msg)
	}
	work()
}

func work() {}`)
	isPanicStmt := func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	isWorkStmt := func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "work"
	}
	panicBlk := blockWith(t, g, "panic call", isPanicStmt)
	workBlk := blockWith(t, g, "work call", isWorkStmt)

	reach := g.ReachableFromEntry()
	warm := g.CanReachExit()
	if !reach[panicBlk] {
		t.Error("panic block must be reachable from entry")
	}
	if warm[panicBlk] {
		t.Error("panic block must be doomed: no continuation returns normally")
	}
	if !reach[workBlk] || !warm[workBlk] {
		t.Error("work() block must be both reachable and able to reach exit")
	}
	if !reach[g.Panic] {
		t.Error("panic sink must be reachable")
	}
}

func TestCFGInfiniteLoopNeverExits(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f() {
	for {
		spin()
	}
}

func spin() {}`)
	if g.ReachableFromEntry()[g.Exit] {
		t.Error("exit must be unreachable past a condition-free for loop")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
			s += j
		}
	}
	return s
}`)
	reach := g.ReachableFromEntry()
	warm := g.CanReachExit()
	inner := blockWith(t, g, "s += j", addAssignTo("s"))
	if !reach[inner] || !warm[inner] {
		t.Error("inner loop body must be reachable and exitable")
	}
	for _, blk := range g.Blocks {
		if len(blk.Nodes) > 0 && !reach[blk] {
			t.Errorf("block %d with %d nodes is unreachable", blk.Index, len(blk.Nodes))
		}
	}
	if !warm[g.Entry] || !reach[g.Exit] {
		t.Error("function must flow entry to exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r = 2
	default:
		r = 3
	}
	return r
}`)
	// The fallthrough must link case 1's body to case 2's body: find the two
	// blocks via their distinct assignments and require a direct edge.
	var c1, c2 *analysis.Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if bl, ok := as.Rhs[0].(*ast.BasicLit); ok {
				switch bl.Value {
				case "1":
					c1 = blk
				case "2":
					c2 = blk
				}
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("case bodies not found")
	}
	linked := false
	for _, e := range c1.Succs {
		if e.To == c2 {
			linked = true
		}
	}
	if !linked {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestCFGGotoLoop(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	reach := g.ReachableFromEntry()
	warm := g.CanReachExit()
	inc := blockWith(t, g, "i++", func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})
	if !reach[inc] || !warm[inc] {
		t.Error("goto loop body must be reachable and exitable")
	}
	// i++ must eventually cycle back: the goto edge leads to the label block
	// whose condition re-tests i < n.
	if !reach[g.Exit] {
		t.Error("exit must be reachable when the goto loop terminates")
	}
}

func TestCFGSelect(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 0
	}
}`)
	reach := g.ReachableFromEntry()
	if !reach[g.Exit] {
		t.Error("both select arms return; exit must be reachable")
	}
	comms := 0
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt:
				comms++
			}
		}
	}
	if comms != 2 {
		t.Errorf("want 2 comm statements across arm blocks, got %d", comms)
	}
}
