package analysis

// This file is the generic forward-dataflow half of the flow-sensitive
// layer: a worklist fixpoint over a Graph with a pluggable fact lattice.
// Clients describe their lattice with FlowOps — how to seed the entry fact,
// transfer a fact across one node, refine it along a conditional edge, and
// join facts where paths meet — and Forward returns the fixpoint in-fact of
// every reachable block. Union lattices (conserve's obligation sets) and
// intersection lattices (spscflow's must-have-loaded sets) both fit: the
// first fact to arrive at a block seeds it, and Join folds later arrivals.
//
// The Edge hook is the path-condition-lite piece: an edge taken only when
// `ok` is false can kill the facts an `ok`-guarded operation created, and
// CondVar is the helper that resolves an edge's condition to that boolean
// variable identity through negation and parentheses.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowOps describes one forward-dataflow problem over fact type F.
type FlowOps[F any] struct {
	// Entry produces the fact entering the function.
	Entry func() F
	// Clone deep-copies a fact so transfer on one path cannot alias
	// another's state.
	Clone func(F) F
	// Transfer folds one block node (simple statement or condition
	// expression) into the fact.
	Transfer func(n ast.Node, f F) F
	// Edge, when non-nil, refines the fact along one control edge; ok=false
	// drops the edge as infeasible. The fact passed in is already a clone.
	Edge func(e *Edge, f F) (F, bool)
	// Join merges src into dst, reporting whether dst changed. It is only
	// called once dst exists; the first fact to reach a block seeds it.
	Join func(dst, src F) (F, bool)
}

// Forward runs the fixpoint and returns each reachable block's in-fact.
// Blocks unreachable from Entry have no entry in the result.
func Forward[F any](g *Graph, ops FlowOps[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: ops.Entry()}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}

	// The fact domains are finite and Join is monotone, so the fixpoint
	// terminates; the step cap is a belt-and-braces guard against a
	// misbehaving client lattice taking the linter down with it.
	maxSteps := (len(g.Blocks) + 1) * 256
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := ops.Clone(in[blk])
		for _, n := range blk.Nodes {
			out = ops.Transfer(n, out)
		}
		for _, e := range blk.Succs {
			ef := ops.Clone(out)
			if ops.Edge != nil {
				var ok bool
				if ef, ok = ops.Edge(e, ef); !ok {
					continue
				}
			}
			cur, seen := in[e.To]
			changed := true
			if seen {
				in[e.To], changed = ops.Join(cur, ef)
			} else {
				in[e.To] = ef
			}
			if changed && !queued[e.To] {
				work = append(work, e.To)
				queued[e.To] = true
			}
		}
	}
	return in
}

// CondVar resolves a branch condition to the boolean variable it tests,
// through parentheses and negation: for an edge taken when Cond == branch,
// it returns the variable and the value the variable must have on that
// edge. ok is false when the condition is anything richer than a (possibly
// negated) plain boolean variable.
func CondVar(info *types.Info, cond ast.Expr, branch bool) (v *types.Var, sense bool, ok bool) {
	for {
		switch x := cond.(type) {
		case *ast.ParenExpr:
			cond = x.X
		case *ast.UnaryExpr:
			if x.Op != token.NOT {
				return nil, false, false
			}
			branch = !branch
			cond = x.X
		case *ast.Ident:
			if info == nil {
				return nil, false, false
			}
			if vv, isVar := info.Uses[x].(*types.Var); isVar {
				return vv, branch, true
			}
			return nil, false, false
		default:
			return nil, false, false
		}
	}
}

// CondCall resolves a branch condition to the method/function call it tests,
// through parentheses and negation — `if r.Push(v) { ... }` and
// `for !r.Push(v) { ... }` both resolve to the Push call, with sense
// reporting the call's result on the edge. Richer conditions return ok
// false.
func CondCall(cond ast.Expr, branch bool) (call *ast.CallExpr, sense bool, ok bool) {
	for {
		switch x := cond.(type) {
		case *ast.ParenExpr:
			cond = x.X
		case *ast.UnaryExpr:
			if x.Op != token.NOT {
				return nil, false, false
			}
			branch = !branch
			cond = x.X
		case *ast.CallExpr:
			return x, branch, true
		default:
			return nil, false, false
		}
	}
}
