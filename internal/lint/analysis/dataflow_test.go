package analysis_test

import (
	"go/ast"
	"go/parser"
	"testing"

	"repro/internal/lint/analysis"
)

// assignedOps is a string-set lattice tracking variable names that have been
// assigned; join is injected so one fixture covers may (union) and must
// (intersection) flavors.
func assignedOps(join func(dst, src map[string]bool) (map[string]bool, bool)) analysis.FlowOps[map[string]bool] {
	return analysis.FlowOps[map[string]bool]{
		Entry: func() map[string]bool { return map[string]bool{} },
		Clone: func(f map[string]bool) map[string]bool {
			c := make(map[string]bool, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Transfer: func(n ast.Node, f map[string]bool) map[string]bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						f[id.Name] = true
					}
				}
			}
			return f
		},
		Join: join,
	}
}

func union(dst, src map[string]bool) (map[string]bool, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

func intersect(dst, src map[string]bool) (map[string]bool, bool) {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return dst, changed
}

const branchySrc = `
func f(a bool) (int, int) {
	var x, y int
	if a {
		x = 1
		y = 1
	} else {
		x = 2
	}
	return x, y
}`

// returnBlock finds the block holding the function's final return.
func returnBlock(t *testing.T, g *analysis.Graph) *analysis.Block {
	t.Helper()
	return blockWith(t, g, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
}

func TestForwardMayAnalysis(t *testing.T) {
	g, _, _ := buildCFG(t, branchySrc)
	in := analysis.Forward(g, assignedOps(union))
	fact := in[returnBlock(t, g)]
	if fact == nil {
		t.Fatal("return block has no in-fact")
	}
	if !fact["x"] || !fact["y"] {
		t.Errorf("may-assigned at return: want x and y, got %v", fact)
	}
}

func TestForwardMustAnalysis(t *testing.T) {
	g, _, _ := buildCFG(t, branchySrc)
	in := analysis.Forward(g, assignedOps(intersect))
	fact := in[returnBlock(t, g)]
	if fact == nil {
		t.Fatal("return block has no in-fact")
	}
	if !fact["x"] {
		t.Errorf("x is assigned on every path; must-fact %v should contain it", fact)
	}
	if fact["y"] {
		t.Errorf("y is assigned on one path only; must-fact %v should drop it", fact)
	}
}

func TestForwardLoopConverges(t *testing.T) {
	g, _, _ := buildCFG(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	in := analysis.Forward(g, assignedOps(union))
	fact := in[returnBlock(t, g)]
	if !fact["s"] || !fact["i"] {
		t.Errorf("loop facts must reach the return block, got %v", fact)
	}
	if len(in) == 0 {
		t.Fatal("fixpoint returned no facts")
	}
}

func TestForwardEdgeRefinement(t *testing.T) {
	// An obligation created by `v, ok := get()` is killed along the ok=false
	// edge — the shape conserve uses for guard-sensitive borrow tracking.
	g, info, _ := buildCFG(t, `
func f() int {
	v, ok := get()
	if ok {
		return v
	}
	return -1
}

func get() (int, bool) { return 1, true }`)
	ops := assignedOps(union)
	ops.Transfer = func(n ast.Node, f map[string]bool) map[string]bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 2 {
			f["pending"] = true
		}
		return f
	}
	ops.Edge = func(e *analysis.Edge, f map[string]bool) (map[string]bool, bool) {
		if e.Cond == nil {
			return f, true
		}
		if cv, sense, ok := analysis.CondVar(info, e.Cond, e.Branch); ok && cv.Name() == "ok" && !sense {
			delete(f, "pending")
		}
		return f, true
	}
	in := analysis.Forward(g, ops)

	okReturn := blockWith(t, g, "return v", func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		return ok && len(rs.Results) == 1 && isIdent(rs.Results[0], "v")
	})
	failReturn := blockWith(t, g, "return -1", func(n ast.Node) bool {
		rs, ok := n.(*ast.ReturnStmt)
		return ok && (len(rs.Results) != 1 || !isIdent(rs.Results[0], "v"))
	})
	if !in[okReturn]["pending"] {
		t.Error("ok=true path must carry the obligation")
	}
	if in[failReturn]["pending"] {
		t.Error("ok=false edge must kill the obligation")
	}
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func TestCondVarNegation(t *testing.T) {
	g, info, _ := buildCFG(t, `
func f(ok bool) int {
	if !(!(ok)) {
		return 1
	}
	return 0
}`)
	var tested int
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond == nil {
				continue
			}
			v, sense, ok := analysis.CondVar(info, e.Cond, e.Branch)
			if !ok {
				t.Fatalf("CondVar failed on %v", e.Cond)
			}
			if v.Name() != "ok" {
				t.Fatalf("resolved wrong variable %s", v.Name())
			}
			// Double negation cancels: sense tracks the edge's branch.
			if sense != e.Branch {
				t.Errorf("double negation must preserve sense: edge branch %v, sense %v", e.Branch, sense)
			}
			tested++
		}
	}
	if tested != 2 {
		t.Fatalf("want 2 conditional edges, tested %d", tested)
	}
}

func TestCondCall(t *testing.T) {
	e, err := parser.ParseExpr("!(r.Push(v))")
	if err != nil {
		t.Fatal(err)
	}
	call, sense, ok := analysis.CondCall(e, true)
	if !ok || call == nil {
		t.Fatal("CondCall must resolve through negation and parens")
	}
	if sense {
		t.Error("negated call taken on the true branch means the call returned false")
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Push" {
		t.Error("resolved the wrong call")
	}
	if _, _, ok := analysis.CondCall(e, false); !ok {
		t.Error("CondCall must resolve for either branch")
	}
	if _, _, ok := analysis.CondCall(ast.NewIdent("x"), true); ok {
		t.Error("a bare identifier is not a call")
	}
}
