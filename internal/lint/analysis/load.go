package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir), parses their
// non-test sources, and type-checks them against compiler export data for
// their dependencies. It shells out to `go list -export`, so it works with
// nothing but the toolchain and its build cache — no network, no x/tools.
//
// Test files are deliberately out of scope: the sslint contracts guard the
// production scheduler code, and tests legitimately use wall clocks, retain
// buffers to probe aliasing, and so on.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	metas := map[string]*listPackage{}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		q := p
		metas[q.ImportPath] = &q
		if !q.DepOnly {
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		m, ok := metas[path]
		if !ok || m.Export == "" {
			return nil, fmt.Errorf("no export data for %q (does the package build?)", path)
		}
		return os.Open(m.Export)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, r := range roots {
		if r.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", r.ImportPath, r.Error.Err)
		}
		if len(r.GoFiles) == 0 {
			continue // test-only or empty package
		}
		pkg, err := typeCheck(fset, imp, r.ImportPath, r.Dir, r.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheckDir parses and type-checks a single directory of Go files as one
// package (the linttest fixture path). deps supplies export data for the
// fixture's imports, obtained from a prior Load-style `go list` over them;
// resolve maps an import path to its export file.
func TypeCheckDir(fset *token.FileSet, dir, pkgPath string, resolve func(path string) (io.ReadCloser, error)) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imp := importer.ForCompiler(fset, "gc", resolve)
	return typeCheck(fset, imp, pkgPath, dir, names)
}

// typeCheck parses the named files in dir and type-checks them as one
// package.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		Path:  pkgPath,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ExportResolver runs `go list -export -deps` over the given import paths
// and returns a resolve function serving their export data, for use with
// TypeCheckDir. dir anchors the go invocation (any directory inside the
// module works).
func ExportResolver(dir string, importPaths []string) (func(path string) (io.ReadCloser, error), error) {
	if len(importPaths) == 0 {
		return func(path string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no export data for %q", path)
		}, nil
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Error",
		"--",
	}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", importPaths, err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}, nil
}
