package analysis_test

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// The loader's failure modes must come back as diagnosable errors naming the
// offending package — never panics, never silent empty results.

func TestLoadNonexistentPattern(t *testing.T) {
	_, err := analysis.Load("../../..", []string{"./does/not/exist"})
	if err == nil {
		t.Fatal("loading a nonexistent pattern must fail")
	}
	if !strings.Contains(err.Error(), "does/not/exist") {
		t.Errorf("error should name the bad pattern, got: %v", err)
	}
}

func TestLoadKnownGoodPattern(t *testing.T) {
	pkgs, err := analysis.Load("../../..", []string{"./internal/ringbuf"})
	if err != nil {
		t.Fatalf("loading ringbuf: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/ringbuf" {
		t.Fatalf("want exactly repro/internal/ringbuf, got %+v", pkgs)
	}
	if pkgs[0].Types == nil || pkgs[0].Info == nil || len(pkgs[0].Files) == 0 {
		t.Error("loaded package must carry types, info, and files")
	}
}

func TestTypeCheckDirTypeError(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nfunc f() int {\n\treturn \"not an int\"\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := analysis.TypeCheckDir(token.NewFileSet(), dir, "bad", failResolve)
	if err == nil {
		t.Fatal("type error must surface as an error")
	}
	if !strings.Contains(err.Error(), "type-checking bad") {
		t.Errorf("error should name the package being checked, got: %v", err)
	}
}

func TestTypeCheckDirParseError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package {{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := analysis.TypeCheckDir(token.NewFileSet(), dir, "broken", failResolve)
	if err == nil {
		t.Fatal("parse error must surface as an error")
	}
}

func TestTypeCheckDirEmpty(t *testing.T) {
	_, err := analysis.TypeCheckDir(token.NewFileSet(), t.TempDir(), "empty", failResolve)
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("empty fixture dir must be a 'no Go files' error, got: %v", err)
	}
}

func TestTypeCheckDirMissingExportData(t *testing.T) {
	dir := t.TempDir()
	src := "package uses\n\nimport \"fmt\"\n\nfunc f() { fmt.Println() }\n"
	if err := os.WriteFile(filepath.Join(dir, "uses.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// An ExportResolver built over no import paths resolves nothing: the
	// import must fail with a "no export data" explanation, not a panic.
	resolve, err := analysis.ExportResolver(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = analysis.TypeCheckDir(token.NewFileSet(), dir, "uses", resolve)
	if err == nil {
		t.Fatal("missing export data must surface as an error")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("error should explain the missing export data, got: %v", err)
	}
}

// failResolve stands in for export data that is never needed; importing
// anything through it surfaces as a readable error rather than a panic.
func failResolve(path string) (io.ReadCloser, error) {
	return nil, fmt.Errorf("no export data for %q", path)
}
