// Package boundedloop proves that every loop in the decision hot path has a
// bounded trip count, so a cycle stays O(N log N) no matter what the inputs
// do.
//
// A loop is accepted when its bound is visible in its header:
//
//   - a three-clause for with a relational condition and a post statement
//     (`for i := 0; i < n; i++` — constant, slice-len, or N-derived bounds
//     all take this shape);
//   - a range over anything except a channel or an iterator function, whose
//     trip count is the operand's length.
//
// Everything else — `for {}` spinners, condition-only retry loops, channel
// drains — needs an //sslint:bounded <reason> annotation stating what bounds
// the trip count (a CAS retry bounded by the pool burst, say). A bare
// //sslint:bounded with no reason is itself a finding: the bound must be
// argued, not asserted. The hot set is the shared hotset package's list plus
// //sslint:hotpath-annotated functions; function literals are skipped — they
// run on someone else's schedule.
package boundedloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/hotset"
)

// Analyzer is the boundedloop check.
var Analyzer = &analysis.Analyzer{
	Name: "boundedloop",
	Doc:  "require provably bounded trip counts for every loop in the decision hot path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	markers := analysis.Markers(pass.Fset, pass.Files, "bounded")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotset.IsHot(pass.Pkg.Path(), fd) {
				continue
			}
			analysis.WalkStack(fd.Body, func(n ast.Node, _ []ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ForStmt:
					if !boundedFor(x) {
						check(pass, markers, x.Pos(), "loop without a header bound")
					}
				case *ast.RangeStmt:
					if k := unboundedRangeKind(pass, x); k != "" {
						check(pass, markers, x.Pos(), k)
					}
				}
				return true
			})
		}
	}
	return nil
}

// check reports the loop unless an //sslint:bounded annotation with a
// non-empty reason covers its line.
func check(pass *analysis.Pass, markers map[string]map[int]analysis.Marker, pos token.Pos, kind string) {
	if m, ok := analysis.MarkerAt(markers, pass.Fset.Position(pos)); ok {
		if strings.TrimSpace(m.Arg) == "" {
			pass.Report(pos, "//sslint:bounded needs a reason: state what bounds the trip count")
		}
		return
	}
	pass.Reportf(pos, "%s in the hot path is not provably bounded; give it a `for i := 0; i < n; i++` header or annotate //sslint:bounded <reason>", kind)
}

// boundedFor accepts the three-clause shape whose condition is relational:
// the induction variable marches toward a header-visible bound.
func boundedFor(s *ast.ForStmt) bool {
	return s.Cond != nil && s.Post != nil && relational(s.Cond)
}

// relational reports whether e compares two values (possibly inside a
// boolean combination — `i < n && live` still bounds the loop by i).
func relational(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return relational(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			return true
		case token.LAND, token.LOR:
			return relational(x.X) || relational(x.Y)
		}
	}
	return false
}

// unboundedRangeKind classifies ranges whose trip count is not a length:
// channels block on the producer and iterator functions yield at their own
// discretion. Everything else (slice, array, map, string, integer) is
// bounded by construction.
func unboundedRangeKind(pass *analysis.Pass, s *ast.RangeStmt) string {
	tv, ok := pass.Info.Types[s.X]
	if !ok || tv.Type == nil {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Chan:
		return "range over a channel"
	case *types.Signature:
		return "range over an iterator function"
	}
	return ""
}
