package boundedloop_test

import (
	"testing"

	"repro/internal/lint/boundedloop"
	"repro/internal/lint/linttest"
)

func TestBoundedLoop(t *testing.T) {
	linttest.Run(t, "testdata/src/a", boundedloop.Analyzer)
}
