// Fixture for the boundedloop analyzer: header-bounded loops and annotated
// retries are accepted; spinners, condition-only loops, channel drains, and
// reason-free annotations are findings.
package a

type w struct{ buf []int }

//sslint:hotpath
func (x *w) scan(n int) int {
	s := 0
	for i := 0; i < n; i++ { // bounded: three-clause relational header
		s += i
	}
	for i := n; i > 0; i-- { // bounded: downward march
		s += i
	}
	for i := 0; i < n && s < 100; i++ { // bounded: relational conjunct
		s += i
	}
	for _, v := range x.buf { // bounded: slice length
		s += v
	}
	for { // want `loop without a header bound in the hot path is not provably bounded`
		if s > 10 {
			break
		}
		s++
	}
	for s < 100 { // want `loop without a header bound`
		s *= 2
	}
	//sslint:bounded CAS retry converges within Burst attempts
	for !try() {
	}
	//sslint:bounded
	for !try() { // want `needs a reason`
	}
	return s
}

//sslint:hotpath
func drain(c chan int) int {
	t := 0
	for v := range c { // want `range over a channel`
		t += v
	}
	return t
}

//sslint:hotpath
func sweep(it func(func(int) bool)) int {
	t := 0
	for v := range it { // want `range over an iterator function`
		t += v
	}
	return t
}

// cold is not in the hot set: its loops answer to no one.
func cold() {
	for {
		break
	}
}

func try() bool { return true }
