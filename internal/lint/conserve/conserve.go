// Package conserve verifies counter conservation structurally: a frame that
// leaves a ring, and a buffer borrowed from a pool, must both be accounted
// for on every path to the function's normal return.
//
// Two obligation kinds flow through the function's CFG:
//
//   - frame — created by a successful ringbuf Ring.Pop: the frame left the
//     queue, so some ledger must record its fate before the function
//     returns. A ledger is any counter whose declaration carries
//     //sslint:ledger (struct fields and locals alike); updating one
//     (x++, x += n, x = ..., x.Add(n)) discharges the frames in flight.
//   - credit — created by calling an //sslint:borrows function (the pool's
//     admit): the borrow must reach an //sslint:reclaims call (release /
//     reclaim) before the return.
//
// Both kinds are also discharged by handing the value to Ring.Push — the
// frame is back in a queue, conservation holds downstream — or by returning
// the popped/borrowed value to the caller, which transfers the obligation
// with it. Obligations guarded by the call's ok result stay pending until a
// branch proves the removal happened: the ok=false edge kills them, the
// ok=true edge activates them, and `if r.Push(v)`-style conditions discharge
// along the success edge. Pending obligations whose guard is never examined
// are not reported — the removal was never proven to happen.
//
// Paths that end in panic owe nothing (the process is done counting), and a
// deliberate leak is declared at the creation site with //sslint:leaked
// <reason>, which is expected to be rare and audited.
package conserve

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the conserve check.
var Analyzer = &analysis.Analyzer{
	Name: "conserve",
	Doc:  "require every ring removal to reach a ledger update and every pool borrow to reach a reclaim, on all paths",
	Run:  run,
}

const (
	frameOb = iota
	creditOb
)

// ob is one in-flight obligation. Facts map creation position to ob, so an
// obligation created in a loop folds onto itself.
type ob struct {
	kind   int
	guard  *types.Var // ok result gating the removal; nil means proven
	val    *types.Var // the popped/borrowed value, for return-transfer
	active bool       // removal proven (unguarded, or guard-true edge taken)
}

type facts map[token.Pos]ob

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		ledgers: analysis.Markers(pass.Fset, pass.Files, "ledger"),
		leaked:  analysis.Markers(pass.Fset, pass.Files, "leaked"),
		borrows: map[*types.Func]bool{},
		reclaim: map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if analysis.CommentHasMarker([]*ast.CommentGroup{fd.Doc}, "borrows") {
				c.borrows[fn] = true
			}
			if analysis.CommentHasMarker([]*ast.CommentGroup{fd.Doc}, "reclaims") {
				c.reclaim[fn] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	ledgers map[string]map[int]analysis.Marker
	leaked  map[string]map[int]analysis.Marker
	borrows map[*types.Func]bool
	reclaim map[*types.Func]bool
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	g := analysis.NewCFG(fd, c.pass.Info)
	ops := analysis.FlowOps[facts]{
		Entry: func() facts { return facts{} },
		Clone: func(f facts) facts {
			n := make(facts, len(f))
			for k, v := range f {
				n[k] = v
			}
			return n
		},
		Transfer: c.transfer,
		Edge:     c.edge,
		Join: func(dst, src facts) (facts, bool) {
			changed := false
			for pos, o := range src {
				d, seen := dst[pos]
				if !seen {
					dst[pos] = o
					changed = true
					continue
				}
				if o.active && !d.active {
					d.active = true
					dst[pos] = d
					changed = true
				}
			}
			return dst, changed
		},
	}
	in := analysis.Forward(g, ops)
	atExit, reached := in[g.Exit]
	if !reached {
		return // every path panics or spins; nothing returns normally
	}
	for pos, o := range atExit {
		if !o.active {
			continue
		}
		switch o.kind {
		case frameOb:
			c.pass.Report(pos, "frame removed from the ring here can reach return with no ledger update on some path; count it in an //sslint:ledger counter, push it onward, or mark the line //sslint:leaked <reason>")
		case creditOb:
			c.pass.Report(pos, "pool borrow here can reach return with no reclaim on some path; release it through an //sslint:reclaims function, push it onward, or mark the line //sslint:leaked <reason>")
		}
	}
}

// transfer folds one CFG node into the facts: creations at removal/borrow
// statements, discharges at ledger updates, reclaim calls, pushes, and
// ownership-transferring returns.
func (c *checker) transfer(n ast.Node, f facts) facts {
	c.create(n, f)
	_, isStmt := n.(ast.Stmt)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		switch s := x.(type) {
		case *ast.IncDecStmt:
			if c.isLedger(baseVar(c.pass.Info, s.X)) {
				discharge(f, frameOb)
			}
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if c.isLedger(baseVar(c.pass.Info, l)) {
					discharge(f, frameOb)
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Add" || name == "Store" {
					if c.isLedger(baseVar(c.pass.Info, sel.X)) {
						discharge(f, frameOb)
					}
				}
			}
			fn := callee(c.pass.Info, s)
			if fn == nil {
				return true
			}
			if c.reclaim[fn] {
				discharge(f, creditOb)
			}
			// A push rooted in a statement re-queues the frame whatever its
			// result; pushes tested in a condition discharge on the success
			// edge instead (see edge).
			if isStmt && isRingMethod(fn, "Push") {
				discharge(f, frameOb)
				discharge(f, creditOb)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				id, ok := res.(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := c.pass.Info.Uses[id].(*types.Var)
				if v == nil {
					continue
				}
				for pos, o := range f {
					if o.val == v {
						delete(f, pos) // ownership moves to the caller
					}
				}
			}
		}
		return true
	})
	return f
}

// create recognizes obligation-creating statements: `v, ok := r.Pop()` /
// `buf, ok := admit(...)` (pending on ok), and the same calls with the
// result discarded (active at once — the removal is unconditional).
func (c *checker) create(n ast.Node, f facts) {
	var call *ast.CallExpr
	var guard, val *types.Var
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return
		}
		call, _ = s.Rhs[0].(*ast.CallExpr)
		if call == nil {
			return
		}
		if len(s.Lhs) >= 1 {
			val = identVar(c.pass.Info, s.Lhs[0])
		}
		if len(s.Lhs) >= 2 {
			guard = identVar(c.pass.Info, s.Lhs[len(s.Lhs)-1])
		}
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	}
	if call == nil {
		return
	}
	fn := callee(c.pass.Info, call)
	if fn == nil {
		return
	}
	kind := -1
	switch {
	case isRingMethod(fn, "Pop"):
		kind = frameOb
	case c.borrows[fn]:
		kind = creditOb
	}
	if kind < 0 {
		return
	}
	if _, ok := analysis.MarkerAt(c.leaked, c.pass.Fset.Position(call.Pos())); ok {
		return // declared leak: audited via lint-stats, not reported
	}
	f[call.Pos()] = ob{kind: kind, guard: guard, val: val, active: guard == nil}
}

// edge refines facts along conditional edges: guard outcomes prove or
// disprove pending removals, and a Push tested in the condition discharges
// along its success edge.
func (c *checker) edge(e *analysis.Edge, f facts) (facts, bool) {
	if e.Cond == nil {
		return f, true
	}
	if v, sense, ok := analysis.CondVar(c.pass.Info, e.Cond, e.Branch); ok {
		for pos, o := range f {
			if o.guard != v {
				continue
			}
			if sense {
				o.active = true
				o.guard = nil
				f[pos] = o
			} else {
				delete(f, pos) // removal never happened on this edge
			}
		}
		return f, true
	}
	if call, sense, ok := analysis.CondCall(e.Cond, e.Branch); ok && sense {
		if fn := callee(c.pass.Info, call); fn != nil && isRingMethod(fn, "Push") {
			discharge(f, frameOb)
			discharge(f, creditOb)
		}
	}
	return f, true
}

// discharge drops every obligation of the kind, pending or active.
func discharge(f facts, kind int) {
	for pos, o := range f {
		if o.kind == kind {
			delete(f, pos)
		}
	}
}

// isLedger reports whether v's declaration line carries //sslint:ledger.
func (c *checker) isLedger(v *types.Var) bool {
	if v == nil {
		return false
	}
	_, ok := analysis.MarkerAt(c.ledgers, c.pass.Fset.Position(v.Pos()))
	return ok
}

// baseVar resolves the variable (or struct field) at the base of an lvalue
// expression: u.delivered[slot] resolves to the delivered field.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			v, _ := info.Uses[x.Sel].(*types.Var)
			return v
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			v, _ := info.Defs[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// identVar resolves a plain identifier to its variable, nil for `_` and
// non-identifiers.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// callee resolves a call to its static *types.Func.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isRingMethod reports whether fn is the named method on ringbuf's Ring.
func isRingMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/ringbuf" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Ring"
}
