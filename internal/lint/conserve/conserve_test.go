package conserve_test

import (
	"testing"

	"repro/internal/lint/conserve"
	"repro/internal/lint/linttest"
)

func TestConserve(t *testing.T) {
	linttest.Run(t, "testdata/src/a", conserve.Analyzer)
}

// TestConserveReplayFixture pins the recovery path's accounting: replayed
// drains and settle loops remove frames from live rings, and every removal
// must still reach a ledger — recovery that loses accounting rebuilds an
// engine whose books no longer close.
func TestConserveReplayFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/replay", conserve.Analyzer)
}
