package conserve_test

import (
	"testing"

	"repro/internal/lint/conserve"
	"repro/internal/lint/linttest"
)

func TestConserve(t *testing.T) {
	linttest.Run(t, "testdata/src/a", conserve.Analyzer)
}
