// Fixture for the conserve analyzer: every proven ring removal reaches a
// ledger update (or a push onward, or the caller), every borrow reaches a
// reclaim, and paths that skip the accounting on one branch are findings.
package a

import "repro/internal/ringbuf"

type tx struct{ n int }

type ledgers struct {
	delivered uint64 //sslint:ledger
	dropped   uint64 //sslint:ledger
}

// drainGood is the canonical consumer: pop, bail on empty, count.
func drainGood(r *ringbuf.Ring[tx], l *ledgers) {
	for {
		_, ok := r.Pop()
		if !ok {
			break
		}
		l.delivered++
	}
}

// localLedger counts into an annotated local, the shard/endsystem pattern.
func localLedger(r *ringbuf.Ring[tx]) uint64 {
	var delivered uint64 //sslint:ledger
	for {
		_, ok := r.Pop()
		if !ok {
			break
		}
		delivered++
	}
	return delivered
}

// drainBranchMiss counts only when flag is set: the other branch loses the
// frame.
func drainBranchMiss(r *ringbuf.Ring[tx], l *ledgers, flag bool) {
	v, ok := r.Pop() // want `frame removed from the ring here can reach return with no ledger update`
	if !ok {
		return
	}
	if flag {
		l.delivered++
	}
	_ = v.n
}

// popIgnored discards the result outright: the removal is unconditional and
// never counted.
func popIgnored(r *ringbuf.Ring[tx]) {
	r.Pop() // want `frame removed from the ring`
}

// transferGood re-queues the frame; the failure branch counts the drop.
func transferGood(src, dst *ringbuf.Ring[tx], l *ledgers) {
	v, ok := src.Pop()
	if !ok {
		return
	}
	if !dst.Push(v) {
		l.dropped++
	}
}

// transferDrop forgets the push-failure branch.
func transferDrop(src, dst *ringbuf.Ring[tx], l *ledgers) {
	v, ok := src.Pop() // want `frame removed from the ring`
	if !ok {
		return
	}
	if !dst.Push(v) {
	}
}

// next hands the frame (and the obligation) to its caller.
func next(r *ringbuf.Ring[tx]) (tx, bool) {
	v, ok := r.Pop()
	return v, ok
}

// popPanics owes nothing on the panicking continuation.
func popPanics(r *ringbuf.Ring[tx]) {
	_, ok := r.Pop()
	if !ok {
		return
	}
	panic("fatal wiring error")
}

//sslint:borrows
func borrow() (*tx, bool) { return &tx{}, true }

//sslint:reclaims
func reclaim(*tx) {}

// borrowGood: every borrow reaches the reclaim.
func borrowGood() {
	b, ok := borrow()
	if !ok {
		return
	}
	reclaim(b)
}

// borrowLeak never reclaims.
func borrowLeak() {
	b, ok := borrow() // want `pool borrow here can reach return with no reclaim`
	if !ok {
		return
	}
	_ = b
}

// borrowDeclared leaks on purpose and says so.
func borrowDeclared() {
	b, _ := borrow() //sslint:leaked — handed to the DMA engine, reclaimed out of band
	_ = b
}

// borrowToRing hands the buffer to a ring on success and reclaims on
// failure: both arms conserve.
func borrowToRing(dst *ringbuf.Ring[*tx]) {
	b, ok := borrow()
	if !ok {
		return
	}
	if !dst.Push(b) {
		reclaim(b)
	}
}
