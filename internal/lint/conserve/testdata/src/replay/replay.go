// Package replay is the conserve fixture for the recovery path: journal
// replay re-executes fences against live rings, and every frame a replayed
// drain or settle loop removes must still land in a ledger — recovery that
// loses accounting would "recover" to books that no longer close. The
// patterns here mirror ctlplane's replay/settle code shapes.
package replay

import "repro/internal/ringbuf"

type frame struct{ seq uint64 }

type books struct {
	delivered uint64 //sslint:ledger
	evicted   uint64 //sslint:ledger
}

// replayDrainGood is the replayed evict: pop the slot's ring dry and count
// every frame as evicted, exactly as the original execution did.
func replayDrainGood(r *ringbuf.Ring[frame], b *books) {
	for {
		_, ok := r.Pop()
		if !ok {
			break
		}
		b.evicted++
	}
}

// settleGood is the shutdown/settle loop shape: run the backlog out with
// every pop counted as delivered.
func settleGood(r *ringbuf.Ring[frame], b *books) uint64 {
	var n uint64
	for {
		_, ok := r.Pop()
		if !ok {
			break
		}
		b.delivered++
		n++
	}
	return n
}

// replayDiscard is the recovery bug this fixture pins: flushing the
// journal's recorded drain count without counting the frames rebuilds an
// engine whose ledger diverges from the journal's — the frames existed,
// the books forgot them.
func replayDiscard(r *ringbuf.Ring[frame], drained int) {
	for i := 0; i < drained; i++ {
		r.Pop() // want `frame removed from the ring`
	}
}

// replayConditional counts only frames past the torn-tail boundary; the
// early-seq branch loses its frame.
func replayConditional(r *ringbuf.Ring[frame], b *books, committed uint64) {
	v, ok := r.Pop() // want `frame removed from the ring here can reach return with no ledger update`
	if !ok {
		return
	}
	if v.seq > committed {
		b.delivered++
	}
}

// requeueGood re-executes a transfer: the frame moves onward, and the
// overflow branch counts the drop into an annotated local — conserved on
// both arms.
func requeueGood(src, dst *ringbuf.Ring[frame]) uint64 {
	var dropped uint64 //sslint:ledger
	for {
		v, ok := src.Pop()
		if !ok {
			break
		}
		if !dst.Push(v) {
			dropped++
		}
	}
	return dropped
}

// handoff passes the frame and the accounting obligation to the caller —
// the replayer's fence loop owns the ledger there.
func handoff(r *ringbuf.Ring[frame]) (frame, bool) {
	return r.Pop()
}
