// Package exhaustdisc requires switches over the scheduling-discipline and
// configuration enums to be exhaustive or carry an explicit default.
//
// The unified canonical architecture's whole point is that one datapath
// serves every discipline; the discipline is threaded through the code as
// small enums (attr.Class, decision.Mode, core.Routing, core.Circulate,
// shuffle.Schedule). A new discipline or configuration landing without every
// dispatch site taking a position is exactly how partial support slips in —
// a switch that silently falls through for attr.FairTag compiles fine and
// mis-schedules. The analyzer makes the compiler-shaped gap visible: every
// switch over a registered enum must either name every declared constant of
// the type or carry an explicit default clause (an empty `default:` is an
// accepted, auditable statement that the remaining cases need nothing).
//
// Enums are registered two ways: the built-in list below, and — within the
// defining package — an //sslint:enum marker on the type declaration.
package exhaustdisc

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the exhaustdisc check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustdisc",
	Doc:  "require switches over discipline/configuration enums to be exhaustive or carry an explicit default",
	Run:  run,
}

// builtin registers the discipline/configuration enums by defining package
// path and type name.
var builtin = map[string]map[string]bool{
	"repro/internal/attr":     {"Class": true},
	"repro/internal/decision": {"Mode": true, "Program": true},
	"repro/internal/core":     {"Routing": true, "Circulate": true},
	"repro/internal/shuffle":  {"Schedule": true},
}

func run(pass *analysis.Pass) error {
	marked := markedEnums(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if !builtin[obj.Pkg().Path()][obj.Name()] && !marked[obj] {
				return true
			}
			checkSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

// markedEnums collects same-package types annotated //sslint:enum.
func markedEnums(pass *analysis.Pass) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if analysis.CommentHasMarker([]*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment}, "enum") {
					if obj := pass.Info.Defs[ts.Name]; obj != nil {
						marked[obj] = true
					}
				}
			}
		}
	}
	return marked
}

// checkSwitch verifies one switch over the enum type named.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named) {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the author took a position
		}
		for _, e := range clause.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if pass.Pkg != named.Obj().Pkg() {
		typeName = fmt.Sprintf("%s.%s", named.Obj().Pkg().Name(), typeName)
	}
	pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default: cover every discipline or add an explicit default clause",
		typeName, strings.Join(missing, ", "))
}
