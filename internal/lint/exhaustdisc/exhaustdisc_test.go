package exhaustdisc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestExhaustdisc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}
