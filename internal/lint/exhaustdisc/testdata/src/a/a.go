// Package a is the exhaustdisc fixture: a marked discipline enum whose
// switches must be exhaustive or carry an explicit default.
package a

import "fmt"

// Discipline selects the scheduling discipline.
//
//sslint:enum
type Discipline uint8

// The disciplines.
const (
	DWCS Discipline = iota
	EDF
	FairQueue
	Priority
)

// Unmarked is an ordinary type whose switches are not checked.
type Unmarked uint8

// Unmarked values.
const (
	U0 Unmarked = iota
	U1
)

// BadPartial misses two disciplines and has no default.
func BadPartial(d Discipline) string {
	switch d { // want `switch over Discipline misses FairQueue, Priority`
	case DWCS:
		return "dwcs"
	case EDF:
		return "edf"
	}
	return ""
}

// GoodExhaustive names every discipline.
func GoodExhaustive(d Discipline) string {
	switch d {
	case DWCS:
		return "dwcs"
	case EDF, FairQueue:
		return "deadline-ish"
	case Priority:
		return "priority"
	}
	return ""
}

// GoodDefault takes an explicit position on the rest.
func GoodDefault(d Discipline) string {
	switch d {
	case DWCS:
		return "dwcs"
	default:
		return fmt.Sprintf("discipline(%d)", uint8(d))
	}
}

// GoodUnmarked switches over an unregistered enum without constraint.
func GoodUnmarked(u Unmarked) bool {
	switch u {
	case U0:
		return true
	}
	return false
}

// GoodTagless is a condition switch, not an enum dispatch.
func GoodTagless(d Discipline) bool {
	switch {
	case d == DWCS:
		return true
	}
	return false
}

// RankProgram mirrors the decision.Program rank-program enum: a registry
// of programmable rank functions whose dispatch switches must take a
// position on every registered program.
//
//sslint:enum
type RankProgram uint8

// The registered rank programs.
const (
	ProgDWCS RankProgram = iota
	ProgTagOnly
	ProgSTFQ
	ProgEDF
	ProgStrict
)

// BadProgramPartial adds a program but forgets a dispatch site: the switch
// predates ProgStrict and silently mis-ranks it.
func BadProgramPartial(p RankProgram) uint64 {
	switch p { // want `switch over RankProgram misses ProgStrict`
	case ProgDWCS:
		return 1
	case ProgTagOnly, ProgSTFQ, ProgEDF:
		return 2
	}
	return 0
}

// GoodProgramPanicDefault is the production idiom: exhaustive today, and an
// unregistered program fails loudly instead of ranking as garbage.
func GoodProgramPanicDefault(p RankProgram) uint64 {
	switch p {
	case ProgDWCS:
		return 1
	case ProgTagOnly, ProgSTFQ, ProgEDF:
		return 2
	case ProgStrict:
		return 3
	default:
		panic("unregistered rank program")
	}
}

// AllowedPartial documents a deliberate two-case probe.
func AllowedPartial(d Discipline) bool {
	//sslint:allow exhaustdisc — fixture: deliberate partial probe
	switch d {
	case DWCS:
		return true
	}
	return false
}
