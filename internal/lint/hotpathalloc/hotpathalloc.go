// Package hotpathalloc flags allocation-inducing constructs in the
// scheduler's designated decision hot path.
//
// TestZeroAllocSteadyState pins the steady-state decision cycle at zero
// allocations per cycle, but a runtime guard only fires for the
// configurations it samples. This analyzer is the compile-time backstop: in
// the functions that make up the hot path — core's cycle driver, the whole
// shuffle pass machinery, decision's comparators, attr's key packers, and
// regblock's per-cycle methods — it rejects the constructs that create
// garbage:
//
//   - make/new, slice and map literals, and heap-escaping &T{...} literals;
//   - append outside the reused-buffer pattern `buf = append(buf, ...)`;
//   - closures, go and defer statements, and method-value bindings;
//   - fmt/errors/strconv formatting calls (panic arguments are exempt:
//     wiring-error panics are cold by definition);
//   - implicit or explicit conversions to interface types, and
//     string<->[]byte conversions and string concatenation.
//
// The check is intraprocedural by design — calls out of the hot set are the
// allocation test's job — and the hot set is the shared hotset package's
// built-in list plus any function annotated //sslint:hotpath. The
// flow-sensitive allocproof analyzer reuses WalkAllocs to prove the same
// contracts per control-flow path.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/hotset"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-inducing constructs in the designated decision hot path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hotset.IsHot(pass.Pkg.Path(), fd) {
				WalkAllocs(pass, fd.Body, pass.Report)
			}
		}
	}
	return nil
}

// WalkAllocs walks the subtree rooted at root, reporting every
// allocation-inducing construct through report. Subtrees under panic(...)
// are exempt (wiring-error panics are cold by definition). It is the shared
// classifier: hotpathalloc applies it to whole hot-function bodies, and the
// flow-sensitive allocproof applies it node-by-node along the warm paths of
// a function's control-flow graph.
func WalkAllocs(pass *analysis.Pass, root ast.Node, report func(pos token.Pos, message string)) {
	reportf := func(pos token.Pos, format string, args ...any) {
		report(pos, fmt.Sprintf(format, args...))
	}
	analysis.WalkStack(root, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			report(x.Pos(), "go statement in the hot path: goroutine launch allocates")
		case *ast.DeferStmt:
			report(x.Pos(), "defer in the hot path: deferred frames cost on every cycle")
		case *ast.FuncLit:
			report(x.Pos(), "closure literal in the hot path: the closure (and its captures) may allocate per cycle")
			return false
		case *ast.CompositeLit:
			checkCompositeLit(pass, x, stack, report)
		case *ast.BinaryExpr:
			if x.Op.String() == "+" && isString(pass, x.X) {
				report(x.Pos(), "string concatenation in the hot path allocates")
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.MethodVal && !isCallFun(stack, x) {
				report(x.Pos(), "method-value binding in the hot path allocates a bound-method closure")
			}
		case *ast.CallExpr:
			return checkCall(pass, x, stack, report, reportf)
		}
		return true
	})
}

// checkCall inspects one call in the hot path. It returns false to prune
// traversal (panic arguments).
func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, report func(token.Pos, string), reportf func(token.Pos, string, ...any)) bool {
	// Builtins and panic.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // wiring-error panics are cold; their args don't count
			case "make", "new":
				reportf(call.Pos(), "%s in the hot path allocates; hoist the buffer into the owning struct", b.Name())
			case "append":
				checkAppend(call, stack, report)
			}
			return true
		}
	}

	// Conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type, report, reportf)
		return true
	}

	// Known-allocating formatting helpers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "fmt", "errors", "strconv":
				reportf(call.Pos(), "%s.%s in the hot path allocates; move formatting off the per-cycle path",
					obj.Pkg().Name(), sel.Sel.Name)
				return true
			}
		}
	}

	// Implicit interface conversions at the call boundary.
	sig, ok := funcSignature(pass, call)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) || isNil(at) {
			continue
		}
		reportf(arg.Pos(), "implicit conversion of %s to interface %s in the hot path may allocate (escaping interface box)",
			at.Type, pt)
	}
	return true
}

// checkAppend allows only the reused-buffer pattern buf = append(buf, ...):
// the result written straight back to the first argument, so growth is
// amortized into a persistent buffer.
func checkAppend(call *ast.CallExpr, stack []ast.Node, report func(token.Pos, string)) {
	if len(call.Args) > 0 && len(stack) > 0 {
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok &&
			len(as.Lhs) == 1 && len(as.Rhs) == 1 && as.Rhs[0] == call &&
			as.Tok.String() == "=" &&
			types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			return
		}
	}
	report(call.Pos(), "append outside the reused-buffer pattern `buf = append(buf, ...)` in the hot path: growing a fresh slice allocates")
}

// checkCompositeLit flags slice/map literals and heap-escaping &T{...}.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, stack []ast.Node, report func(token.Pos, string)) {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal in the hot path allocates a fresh backing array")
		return
	case *types.Map:
		report(lit.Pos(), "map literal in the hot path allocates")
		return
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" && u.X == lit {
			report(lit.Pos(), "&composite literal in the hot path heap-allocates")
		}
	}
}

// checkConversion flags conversions that copy or box.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type, report func(token.Pos, string), reportf func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	at, ok := pass.Info.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return
	}
	from := at.Type.Underlying()
	toU := to.Underlying()
	if types.IsInterface(to) && !types.IsInterface(at.Type) && !isNil(at) {
		reportf(call.Pos(), "conversion of %s to interface %s in the hot path may allocate", at.Type, to)
		return
	}
	if isStringByte(from, toU) {
		report(call.Pos(), "string<->[]byte conversion in the hot path copies and allocates")
	}
}

// isStringByte reports a string <-> []byte/[]rune conversion pair.
func isStringByte(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteSlice(to)) || (isByteSlice(from) && isStr(to))
}

// funcSignature extracts the callee signature, if n is a plain call.
func funcSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the effective parameter type for argument i.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !ellipsis {
		last := params.At(n - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// isString reports whether e has string type.
func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isNil reports an untyped nil argument.
func isNil(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isCallFun reports whether sel is the Fun of its parent call.
func isCallFun(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && call.Fun == sel
}
