package hotpathalloc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}

// TestHotPathAllocFaultFixture pins the injector contract: the disabled
// fault check on the PCI transfer path is a nil check plus a map probe;
// per-operation events, formatting, or fresh slices are findings.
func TestHotPathAllocFaultFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/fault", Analyzer)
}
