package hotpathalloc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}
