// Package a is the hotpathalloc fixture: functions marked //sslint:hotpath
// must not contain allocation-inducing constructs; unmarked functions are
// unconstrained.
package a

import "fmt"

// Item is a value-typed record, cheap to copy.
type Item struct {
	Slot int
	Rank int
}

// Engine owns the reused buffers of its hot path.
type Engine struct {
	buf   []Item
	txBuf []Item
	n     int
}

// GoodCycle is the sanctioned shape: indexing, value copies, and appends
// back into reused buffers.
//
//sslint:hotpath
func (e *Engine) GoodCycle(x Item) Item {
	e.txBuf = e.txBuf[:0]
	for i := range e.buf {
		e.buf[i].Rank = i
	}
	e.txBuf = append(e.txBuf, x)
	e.txBuf = append(e.txBuf, Item{Slot: 1, Rank: 2})
	if e.n < 0 {
		panic(fmt.Sprintf("engine wired with %d slots", e.n))
	}
	return e.buf[0]
}

// BadMake allocates a fresh buffer per cycle.
//
//sslint:hotpath
func BadMake(n int) []Item {
	return make([]Item, n) // want `make in the hot path allocates`
}

// BadNew heap-allocates per cycle.
//
//sslint:hotpath
func BadNew() *Item {
	return new(Item) // want `new in the hot path allocates`
}

// BadAppendFresh grows a slice that is not a reused buffer.
//
//sslint:hotpath
func BadAppendFresh(dst, src []Item) []Item {
	out := append(dst, src...) // want `append outside the reused-buffer pattern`
	return out
}

// BadSliceLit allocates a backing array per cycle.
//
//sslint:hotpath
func BadSliceLit() []Item {
	return []Item{{Slot: 1}} // want `slice literal in the hot path`
}

// BadEscape takes the address of a literal, forcing a heap allocation.
//
//sslint:hotpath
func BadEscape() *Item {
	return &Item{Slot: 1} // want `&composite literal in the hot path heap-allocates`
}

// BadFmt formats on the hot path.
//
//sslint:hotpath
func BadFmt(i Item) string {
	return fmt.Sprintf("%d", i.Slot) // want `fmt.Sprintf in the hot path allocates`
}

// BadClosure builds a closure per cycle.
//
//sslint:hotpath
func BadClosure(k int) func() int {
	return func() int { return k } // want `closure literal in the hot path`
}

// BadDefer pays a deferred frame per cycle.
//
//sslint:hotpath
func BadDefer(e *Engine) {
	defer func() {}() // want `defer in the hot path` // want `closure literal in the hot path`
	e.n++
}

// BadGo launches a goroutine per cycle.
//
//sslint:hotpath
func BadGo(e *Engine) {
	go e.GoodCycle(Item{}) // want `go statement in the hot path`
}

// BadBox converts a concrete value to an interface argument.
//
//sslint:hotpath
func BadBox(i Item) {
	sink(i) // want `implicit conversion of .* to interface`
}

// BadStringConv copies byte slices per cycle.
//
//sslint:hotpath
func BadStringConv(b []byte) string {
	return string(b) // want `string<->\[\]byte conversion in the hot path`
}

// BadConcat builds strings per cycle.
//
//sslint:hotpath
func BadConcat(a, b string) string {
	return a + b // want `string concatenation in the hot path`
}

// Pool mirrors the Queue Manager's shared-buffer credit ledger: lend and
// reclaim run per frame on the producer/consumer hot paths, so the whole
// family is marked and must stay allocation-free.
type Pool struct {
	free int64
	lent []uint64
}

// GoodLend is the sanctioned lend/reclaim shape: counter arithmetic and
// indexed loads/stores only.
//
//sslint:hotpath
func (p *Pool) GoodLend(i int) bool {
	if p.free <= 0 {
		return false
	}
	p.free--
	p.lent[i]++
	return true
}

// BadLendObserve boxes the lend decision into an interface sink per frame.
//
//sslint:hotpath
func (p *Pool) BadLendObserve(i int) {
	sink(p.lent[i]) // want `implicit conversion of .* to interface`
}

// BadReclaimSnapshot copies the ledger per reclaim (stats belong on the
// cold scrape path, not in the per-frame credit return).
//
//sslint:hotpath
func (p *Pool) BadReclaimSnapshot() []uint64 {
	out := make([]uint64, len(p.lent)) // want `make in the hot path allocates`
	copy(out, p.lent)
	return out
}

// sink is an interface-taking helper.
func sink(v any) { _ = v }

// ColdAllocates is unmarked: the same constructs pass untouched.
func ColdAllocates(n int) []Item {
	out := make([]Item, 0, n)
	out = append(out, Item{Slot: 1})
	_ = fmt.Sprintf("%d", n)
	return out
}

// AllowedAlloc is a sanctioned exception inside the hot set.
//
//sslint:hotpath
func AllowedAlloc() []Item {
	return make([]Item, 1) //sslint:allow hotpathalloc — fixture: one-time warmup path
}
