// Package fault is the hotpathalloc fixture for the fault-injection layer:
// the injector's per-operation check sits on the PCI transfer hot path, so
// with no fault scheduled it must cost a nil check and a map probe — zero
// allocations. Building events, formatting trace lines, or growing fresh
// slices per operation would put garbage on every transfer; each is a
// finding here.
package fault

import "fmt"

// Fault is the injected outcome for one bus operation (value-typed: a map
// probe returns it without allocating).
type Fault struct {
	StallNs uint64
	Fails   int
}

// Event is a schedule entry.
type Event struct {
	Kind  int
	At    uint64
	Shard int
}

// Injector maps bus-operation indices to faults.
type Injector struct {
	faults  map[uint64]Fault
	trace   []Event
	scratch []byte
}

// GoodOnTransfer is the sanctioned shape: nil-receiver no-op plus a map
// probe, value result, nothing allocated.
//
//sslint:hotpath
func (inj *Injector) GoodOnTransfer(op uint64) Fault {
	if inj == nil {
		return Fault{}
	}
	return inj.faults[op]
}

// GoodRecordReused appends into the injector's own reused buffer.
//
//sslint:hotpath
func (inj *Injector) GoodRecordReused(e Event) {
	inj.trace = append(inj.trace, e)
}

// BadEventPerOp heap-allocates an event on every bus operation.
//
//sslint:hotpath
func (inj *Injector) BadEventPerOp(op uint64) *Event {
	return &Event{At: op} // want `&composite literal in the hot path heap-allocates`
}

// BadTracePerOp formats a trace line on every bus operation.
//
//sslint:hotpath
func (inj *Injector) BadTracePerOp(op uint64) string {
	return fmt.Sprintf("op=%d", op) // want `fmt.Sprintf in the hot path allocates`
}

// BadFreshLog grows a slice that is not one of the injector's reused
// buffers.
//
//sslint:hotpath
func (inj *Injector) BadFreshLog(dst []Event, e Event) []Event {
	out := append(dst, e) // want `append outside the reused-buffer pattern`
	return out
}

// BadScheduleRebuild rebuilds the fault map per operation.
//
//sslint:hotpath
func (inj *Injector) BadScheduleRebuild(op uint64) map[uint64]Fault {
	return map[uint64]Fault{op: {}} // want `map literal in the hot path allocates`
}

// BadDeferredRecovery defers cleanup on the per-operation path.
//
//sslint:hotpath
func (inj *Injector) BadDeferredRecovery(release func()) {
	defer release() // want `defer in the hot path`
	_ = inj.faults
}
