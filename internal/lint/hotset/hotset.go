// Package hotset names the decision hot path — the functions that run on
// every cycle and are therefore held to the fixed-cycle contracts (zero
// allocations, bounded loops). It is the one shared definition the
// allocation analyzers (hotpathalloc, allocproof) and the trip-count
// analyzer (boundedloop) agree on: the built-in per-package lists below plus
// any function annotated //sslint:hotpath in its doc comment.
package hotset

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// builtin names the hot-path functions per package path. Methods are
// qualified by their receiver's base type ("Network.Run") so same-named
// functions on other types — shuffle's gate-level Structural.Run, say — stay
// out of the hot set.
var builtin = map[string]map[string]bool{
	"repro/internal/core": {
		"Scheduler.runCycle": true, "Scheduler.RunCycles": true, "Scheduler.RunFor": true,
		"Scheduler.runWinnerOnly": true, "Scheduler.runBlock": true, "Scheduler.observe": true,
	},
	"repro/internal/shuffle": {
		"Network.run": true, "Network.runPaperLogN": true, "Network.runBitonic": true,
		"Network.runTournament": true, "Network.emitBlock": true, "Network.compareAt": true,
		"Network.Run": true, "Network.RunAt": true, "Network.RunKeyed": true,
		"Network.RunLoaded": true, "Network.RunLoadedLight": true,
		"Network.SetInput": true, "Network.SetInputKey": true, "perfectShuffle": true,
		// The SoA key plane: the branch-free pass kernels, the per-key
		// window-safety bookkeeping, and the dense-lane credit fold.
		"Network.runPaperLogNSoA": true, "Network.runTournamentSoA": true,
		"Network.runBitonicSoA": true, "Network.lightFromFiles": true,
		"Network.keyUnsafe": true, "Network.noteKey": true, "Network.rebase": true,
		"Network.creditCompares": true, "Network.flushCredits": true,
	},
	"repro/internal/qm": {
		// The shared buffer pool's lend/reclaim/measure path runs on every
		// Offer and card-side dequeue past the reservation.
		"pool.admit": true, "pool.release": true, "pool.reclaim": true, "pool.measure": true,
	},
	"repro/internal/decision": {
		"FastOrder": true, "KeyTie": true, "Compare": true, "Block.Compare": true,
		"Block.CompareKeyed": true, "compare": true, "order": true, "Less": true,
		"Program.Rank": true,
	},
	"repro/internal/attr": {
		"Attributes.Key": true, "Attributes.KeyWith": true, "KeyConstraint": true,
	},
	"repro/internal/regblock": {
		"Block.Out": true, "Block.Key": true, "Block.Gen": true, "Block.Valid": true,
		"Block.SetKeyRef": true, "Block.rekey": true, "Block.rekeyConstraint": true,
		"Block.setHead": true, "Block.deadlineFor": true, "Block.Load": true,
		"Block.advance": true, "Block.Service": true, "Block.winnerWindowAdjust": true,
		"Block.ExpireCheck": true, "Block.loserWindowAdjust": true, "Block.Refill": true,
		"Block.guardCheck":    true,
		"previewWinnerWindow": true, "previewLoserWindow": true,
	},
}

// Functions returns the built-in hot-function names for the package at
// path (nil when the package has none).
func Functions(path string) map[string]bool { return builtin[path] }

// QualifiedName returns "Recv.Name" for methods and "Name" for functions,
// unwrapping pointer and generic receivers.
func QualifiedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// IsHot reports whether fd belongs to the hot set of the package at
// pkgPath: on the built-in list, or carrying the //sslint:hotpath marker.
func IsHot(pkgPath string, fd *ast.FuncDecl) bool {
	return builtin[pkgPath][QualifiedName(fd)] ||
		analysis.CommentHasMarker([]*ast.CommentGroup{fd.Doc}, "hotpath")
}
