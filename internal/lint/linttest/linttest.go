// Package linttest is the fixture runner for the sslint analyzers — a
// stdlib-only stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of ordinary Go files (conventionally
// testdata/src/<name> next to the analyzer) compiled as one package.
// Expected findings are declared in the source with trailing comments:
//
//	t := time.Now() // want `wall clock`
//
// Each `// want` comment holds one backquoted regular expression that must
// match a diagnostic reported on that line; diagnostics with no matching
// want, and wants with no matching diagnostic, fail the test. Because the
// runner pushes findings through the same //sslint:allow filter as
// cmd/sslint, fixtures exercise the suppression grammar too (an allowed line
// simply carries no want).
package linttest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture package in dir, applies the analyzers, filters
// through //sslint:allow, and compares the surviving diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()

	// Resolve the fixture's imports from compiler export data.
	imports, err := fixtureImports(dir)
	if err != nil {
		t.Fatalf("scanning fixture imports in %s: %v", dir, err)
	}
	resolve, err := analysis.ExportResolver(".", imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	pkg, err := analysis.TypeCheckDir(fset, dir, "fixture", resolve)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// fixtureImports lists the distinct import paths of the fixture's files.
func fixtureImports(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	return paths, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts the // want expectations from the fixture's
// comments.
func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "// want ") {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(c.Text, -1)
				if ms == nil {
					t.Errorf("%s:%d: malformed want comment %q (need a backquoted regexp)", p.Filename, p.Line, c.Text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, m[1], err)
						continue
					}
					wants = append(wants, want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants
}
