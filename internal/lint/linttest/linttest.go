// Package linttest is the fixture runner for the sslint analyzers — a
// stdlib-only stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of ordinary Go files (conventionally
// testdata/src/<name> next to the analyzer) compiled as one package.
// Expected findings are declared in the source with trailing comments:
//
//	t := time.Now() // want `wall clock`
//
// Each `// want` comment holds one backquoted regular expression that must
// match a diagnostic reported on that line, optionally pinned to a column
// (`// want col=17 `...“); diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test — and every failure includes
// the full got-diagnostics list so the fixture can be repaired in one pass.
// Running the tests with -linttest.update prints that list as a unified
// diff against the current expectations instead of failing piecemeal.
// Because the runner pushes findings through the same //sslint:allow filter
// as cmd/sslint, fixtures exercise the suppression grammar too (an allowed
// line simply carries no want).
package linttest

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

var update = flag.Bool("linttest.update", false,
	"print the got-diagnostics diff for each fixture instead of per-want errors")

var wantRE = regexp.MustCompile("// want (?:col=([0-9]+) )?`([^`]*)`")

// Run loads the fixture package in dir, applies the analyzers, filters
// through //sslint:allow, and compares the surviving diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()

	// Resolve the fixture's imports from compiler export data.
	imports, err := fixtureImports(dir)
	if err != nil {
		t.Fatalf("scanning fixture imports in %s: %v", dir, err)
	}
	resolve, err := analysis.ExportResolver(".", imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	pkg, err := analysis.TypeCheckDir(fset, dir, "fixture", resolve)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	var unexpected []string
	for _, d := range diags {
		p := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == p.Filename && w.line == p.Line &&
				(w.col == 0 || w.col == p.Column) && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			unexpected = append(unexpected,
				fmt.Sprintf("%s:%d:%d: [%s] %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message))
		}
	}
	var unmatched []string
	for i, w := range wants {
		if !matched[i] {
			at := fmt.Sprintf("%s:%d", w.file, w.line)
			if w.col != 0 {
				at += fmt.Sprintf(" col=%d", w.col)
			}
			unmatched = append(unmatched, fmt.Sprintf("%s: no diagnostic matching %q", at, w.re))
		}
	}

	if *update {
		if len(unexpected) > 0 || len(unmatched) > 0 {
			var diff strings.Builder
			for _, u := range unmatched {
				fmt.Fprintf(&diff, "- %s\n", u)
			}
			for _, u := range unexpected {
				fmt.Fprintf(&diff, "+ %s\n", u)
			}
			t.Errorf("fixture %s diagnostics diff (-stale want, +missing want):\n%s\n%s",
				dir, diff.String(), gotList(fset, diags))
		}
		return
	}
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic %s", u)
	}
	for _, u := range unmatched {
		t.Error(u)
	}
	if len(unexpected) > 0 || len(unmatched) > 0 {
		t.Log(gotList(fset, diags))
	}
}

// gotList renders every surviving diagnostic, for failure messages and
// -linttest.update output.
func gotList(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "full diagnostic list (%d):\n", len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(&sb, "  %s:%d:%d: [%s] %s\n", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	return sb.String()
}

// fixtureImports lists the distinct import paths of the fixture's files.
func fixtureImports(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	return paths, nil
}

type want struct {
	file string
	line int
	col  int // 0 when the expectation does not pin a column
	re   *regexp.Regexp
}

// collectWants extracts the // want expectations from the fixture's
// comments.
func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "// want ") {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(c.Text, -1)
				if ms == nil {
					t.Errorf("%s:%d: malformed want comment %q (need a backquoted regexp)", p.Filename, p.Line, c.Text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, m[2], err)
						continue
					}
					col := 0
					if m[1] != "" {
						col, _ = strconv.Atoi(m[1])
					}
					wants = append(wants, want{file: p.Filename, line: p.Line, col: col, re: re})
				}
			}
		}
	}
	return wants
}
