// Package retainalias enforces the scheduler's copy-on-retain contract.
//
// The zero-allocation decision hot path hands results out as slices that
// alias buffers the next cycle overwrites: shuffle.Result.Block is the
// network's recirculation block buffer, and core.CycleResult.Transmissions
// is the scheduler's reused transmission buffer. Reading them inside the
// cycle is free; *retaining* them — storing the slice in a field or global,
// returning it, sending it on a channel, or tucking it into another data
// structure — silently yields data that mutates one cycle later. The
// analyzer flags exactly those retention points: an aliased slice (or a
// sub-slice of one, or a local variable holding one) may be ranged over,
// indexed, and passed down the stack, but any store that can outlive the
// cycle must go through a copy (append(dst[:0], blk...),
// append([]T(nil), blk...), copy(dst, blk), slices.Clone — anything whose
// result is a fresh backing array).
//
// Aliased fields are the two built-ins above plus — within the defining
// package — any struct field annotated //sslint:aliased.
package retainalias

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the retainalias check.
var Analyzer = &analysis.Analyzer{
	Name: "retainalias",
	Doc:  "flag retention of cycle-aliased result slices (Result.Block, CycleResult.Transmissions) without a copy",
	Run:  run,
}

// builtinFields registers the aliased fields as owner-package path → owner
// type name → field name.
var builtinFields = map[string]map[string]map[string]bool{
	"repro/internal/shuffle": {"Result": {"Block": true}},
	"repro/internal/core":    {"CycleResult": {"Transmissions": true}},
}

func run(pass *analysis.Pass) error {
	marked := markedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, marked)
		}
	}
	return nil
}

// markedFields collects same-package struct fields annotated
// //sslint:aliased.
func markedFields(pass *analysis.Pass) map[*types.Var]bool {
	marked := map[*types.Var]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if !analysis.CommentHasMarker([]*ast.CommentGroup{fld.Doc, fld.Comment}, "aliased") {
						continue
					}
					for _, name := range fld.Names {
						if fv, ok := pass.Info.Defs[name].(*types.Var); ok {
							marked[fv] = true
						}
					}
				}
			}
		}
	}
	return marked
}

// checker tracks, within one function, which local variables hold an
// aliased slice.
type checker struct {
	pass    *analysis.Pass
	marked  map[*types.Var]bool
	tainted map[types.Object]bool
}

// checkFunc runs the retention check over one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, marked map[*types.Var]bool) {
	c := &checker{pass: pass, marked: marked, tainted: map[types.Object]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			c.assign(x.Lhs, x.Rhs)
		case *ast.ValueSpec: // var b = res.Block
			for i, name := range x.Names {
				if i < len(x.Values) && c.aliased(x.Values[i]) {
					if obj := c.pass.Info.Defs[name]; obj != nil {
						c.tainted[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if c.aliased(r) {
					c.report(r, "returned")
				}
			}
		case *ast.SendStmt:
			if c.aliased(x.Value) {
				c.report(x.Value, "sent on a channel")
			}
		case *ast.CallExpr:
			c.call(x)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.aliased(v) {
					c.report(v, "stored into a composite literal")
				}
			}
		}
		return true
	})
}

// assign processes one assignment statement: taint propagation into locals,
// retention findings for every other destination.
func (c *checker) assign(lhs, rhs []ast.Expr) {
	for i, l := range lhs {
		if i >= len(rhs) { // x, y := f() — calls never yield tainted values
			return
		}
		if !c.aliased(rhs[i]) {
			continue
		}
		switch dst := l.(type) {
		case *ast.Ident:
			if dst.Name == "_" {
				continue
			}
			obj := c.pass.Info.Defs[dst]
			if obj == nil {
				obj = c.pass.Info.Uses[dst]
			}
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == c.pass.Pkg.Scope() {
				c.report(rhs[i], "stored in a package-level variable")
				continue
			}
			c.tainted[obj] = true // a local holding the alias: fine until retained
		default: // x.F = blk, m[k] = blk, *p = blk, a[i] = blk
			c.report(rhs[i], "stored beyond the cycle")
		}
	}
}

// call flags append(dst, aliasedSlice) — storing the slice header itself
// into another slice. append(dst, aliasedSlice...) copies elements and is
// the sanctioned snapshot idiom.
func (c *checker) call(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || call.Ellipsis.IsValid() {
		return
	}
	if b, ok := c.pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	for _, arg := range call.Args[1:] {
		if c.aliased(arg) {
			c.report(arg, "stored into another slice via append")
		}
	}
}

// aliased reports whether e evaluates to an aliased slice: a registered
// field selection, a sub-slice of one, or a tainted local.
func (c *checker) aliased(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.aliased(x.X)
	case *ast.SliceExpr:
		return c.aliased(x.X)
	case *ast.Ident:
		obj := c.pass.Info.Uses[x]
		return obj != nil && c.tainted[obj]
	case *ast.SelectorExpr:
		sel, ok := c.pass.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return false
		}
		fv, ok := sel.Obj().(*types.Var)
		if !ok {
			return false
		}
		if c.marked[fv.Origin()] {
			return true
		}
		recv := sel.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		return builtinFields[obj.Pkg().Path()][obj.Name()][fv.Name()]
	}
	return false
}

// report emits one retention finding.
func (c *checker) report(at ast.Expr, how string) {
	c.pass.Reportf(at.Pos(), "cycle-aliased slice %s without a copy: the next decision cycle overwrites its backing buffer (copy-on-retain contract; snapshot with append(dst[:0], s...) first)", how)
}
