package retainalias

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestRetainAlias(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}
