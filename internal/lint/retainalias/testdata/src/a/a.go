// Package a is the retainalias fixture: a result type whose slice field
// aliases a reused buffer under the copy-on-retain contract.
package a

// Item is one element of a result block.
type Item struct {
	Slot int
	Rank int
}

// Result is one cycle's outcome.
type Result struct {
	Winner Item
	// Block aliases a buffer the next cycle overwrites.
	Block []Item //sslint:aliased
}

// Engine produces results against a reused buffer.
type Engine struct {
	buf      []Item
	retained []Item
	history  [][]Item
}

// Run produces the cycle result; Block aliases e.buf. Assigning the buffer
// INTO the aliased field is the producer side of the contract and is fine.
func (e *Engine) Run() Result {
	return Result{Winner: e.buf[0], Block: e.buf}
}

// GoodReaders consume the block inside the cycle.
func GoodReaders(e *Engine) int {
	res := e.Run()
	sum := 0
	for _, it := range res.Block {
		sum += it.Slot
	}
	sum += res.Block[0].Rank
	return sum
}

// GoodSnapshot copies before retaining — every sanctioned idiom.
func GoodSnapshot(e *Engine) []Item {
	res := e.Run()
	snap := append([]Item(nil), res.Block...)
	e.retained = append(e.retained[:0], res.Block...)
	dst := make([]Item, len(res.Block))
	copy(dst, res.Block)
	e.history = append(e.history, snap)
	return dst
}

// BadStoreField retains the alias in a field.
func BadStoreField(e *Engine) {
	res := e.Run()
	e.retained = res.Block // want `stored beyond the cycle`
}

// BadReturn leaks the alias to an unknowing caller.
func BadReturn(e *Engine) []Item {
	res := e.Run()
	return res.Block // want `returned without a copy`
}

// BadSubslice retains a sub-slice — same backing buffer.
func BadSubslice(e *Engine) []Item {
	res := e.Run()
	return res.Block[1:] // want `returned without a copy`
}

// BadViaLocal launders the alias through a local variable.
func BadViaLocal(e *Engine) {
	res := e.Run()
	b := res.Block
	e.retained = b // want `stored beyond the cycle`
}

// BadSend ships the alias to another goroutine's cycle.
func BadSend(e *Engine, ch chan []Item) {
	res := e.Run()
	ch <- res.Block // want `sent on a channel`
}

// BadAppendHeader stores the slice header, not the elements.
func BadAppendHeader(e *Engine) {
	res := e.Run()
	e.history = append(e.history, res.Block) // want `stored into another slice via append`
}

// BadComposite tucks the alias into a struct that may escape.
func BadComposite(e *Engine) Result {
	res := e.Run()
	return Result{Block: res.Block} // want `stored into a composite literal`
}

// globalBlock is a package-level retention target.
var globalBlock []Item

// BadGlobal parks the alias in a package-level variable.
func BadGlobal(e *Engine) {
	res := e.Run()
	globalBlock = res.Block // want `stored in a package-level variable`
}

// AllowedRetention documents a sanctioned alias hand-off.
func AllowedRetention(e *Engine) []Item {
	res := e.Run()
	return res.Block //sslint:allow retainalias — fixture: caller consumes before the next cycle
}
