// Package spscatomic guards the SPSC ring's lock-free pointer fields.
//
// The endsystem's rings (internal/ringbuf) are single-producer/
// single-consumer queues whose head/tail indices are shared between two
// spinning goroutines with no lock — correctness rests entirely on every
// access being an atomic load/store with the right ordering, performed by
// the ring's own methods (PR 1 fixed exactly this class of bug by hand in
// Len's load ordering). The analyzer enforces the convention structurally:
//
//   - a guarded field must be declared with a sync/atomic type
//     (atomic.Uint64 and friends), never a bare integer;
//   - every mention of a guarded field must be an immediate atomic method
//     call (r.head.Load(), r.tail.Store(...)) — copying the value, taking
//     its address, or naming it in a composite literal is a finding;
//   - the mention must occur inside a method of the owning struct — helper
//     functions and other types reaching into the pointers cannot uphold
//     the pairing contract.
//
// Guarded fields are the built-in ringbuf.Ring head/tail plus — within the
// defining package — any struct field annotated //sslint:spsc.
package spscatomic

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the spscatomic check.
var Analyzer = &analysis.Analyzer{
	Name: "spscatomic",
	Doc:  "require atomic, method-confined access to SPSC ring head/tail fields",
	Run:  run,
}

// builtinFields names the guarded fields per package path and struct name.
var builtinFields = map[string]map[string][]string{
	"repro/internal/ringbuf": {"Ring": {"head", "tail"}},
}

// guarded maps a field object (generic origin) to its owning type.
type guarded map[*types.Var]*types.TypeName

func run(pass *analysis.Pass) error {
	fields := GuardedFields(pass)
	if len(fields) == 0 {
		return nil
	}
	// Declaration check: guarded fields must be sync/atomic types.
	for fv, owner := range fields {
		if !isAtomicType(fv.Type()) {
			pass.Reportf(fv.Pos(), "SPSC pointer field %s.%s must be a sync/atomic type, not %s: plain loads and stores race between producer and consumer",
				owner.Name(), fv.Name(), fv.Type())
		}
	}
	for _, f := range pass.Files {
		checkFile(pass, f, fields)
	}
	return nil
}

// GuardedFields resolves the guarded field set for the package: built-ins
// plus //sslint:spsc-annotated struct fields, keyed by field object (generic
// origin) with the owning type as value. It reports nothing — the
// flow-sensitive spscflow analyzer shares the same field set without
// re-raising spscatomic's declaration findings.
func GuardedFields(pass *analysis.Pass) map[*types.Var]*types.TypeName {
	fields := guarded{}
	add := func(owner *types.TypeName, names ...string) {
		st, ok := owner.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		want := map[string]bool{}
		for _, n := range names {
			want[n] = true
		}
		for i := 0; i < st.NumFields(); i++ {
			if fv := st.Field(i); want[fv.Name()] {
				fields[fv.Origin()] = owner
			}
		}
	}
	for owner, names := range builtinFields[pass.Pkg.Path()] {
		if tn, ok := pass.Pkg.Scope().Lookup(owner).(*types.TypeName); ok {
			add(tn, names...)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				owner, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
				if owner == nil {
					continue
				}
				for _, fld := range st.Fields.List {
					if !analysis.CommentHasMarker([]*ast.CommentGroup{fld.Doc, fld.Comment}, "spsc") {
						continue
					}
					for _, name := range fld.Names {
						add(owner, name.Name)
					}
				}
			}
		}
	}
	return fields
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkFile flags every non-atomic or non-method-confined mention of a
// guarded field.
func checkFile(pass *analysis.Pass, f *ast.File, fields guarded) {
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		fv, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		owner, isGuarded := fields[fv.Origin()]
		if !isGuarded {
			return true
		}

		if fd := enclosingFuncDecl(stack); fd == nil || !IsMethodOn(pass, fd, owner) {
			pass.Reportf(id.Pos(), "%s.%s accessed outside %s's own methods: the SPSC contract confines head/tail to the owning ring",
				owner.Name(), fv.Name(), owner.Name())
			return true
		}

		// The mention must be r.<field>.<AtomicMethod>(...): stack ends
		// ... CallExpr > SelectorExpr(method) > SelectorExpr(field) > id.
		if len(stack) >= 3 {
			fieldSel, ok1 := stack[len(stack)-1].(*ast.SelectorExpr)
			methodSel, ok2 := stack[len(stack)-2].(*ast.SelectorExpr)
			call, ok3 := stack[len(stack)-3].(*ast.CallExpr)
			if ok1 && ok2 && ok3 && fieldSel.Sel == id && methodSel.X == fieldSel && call.Fun == methodSel {
				return true // r.head.Load() and friends
			}
		}
		pass.Reportf(id.Pos(), "non-atomic use of %s.%s: access it only through its sync/atomic methods (Load/Store/...)",
			owner.Name(), fv.Name())
		return true
	})
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// IsMethodOn reports whether fd is a method whose receiver's base type is
// owner.
func IsMethodOn(pass *analysis.Pass, fd *ast.FuncDecl, owner *types.TypeName) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // Ring[T]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return pass.Info.Uses[x] == owner || pass.Info.Defs[x] == owner
		default:
			return false
		}
	}
}
