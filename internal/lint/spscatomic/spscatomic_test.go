package spscatomic

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestSPSCAtomic(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}
