// Package a is the spscatomic fixture: a guarded SPSC ring whose pointer
// fields must be sync/atomic typed and touched only by the ring's own
// methods, atomically.
package a

import "sync/atomic"

// Ring is an SPSC queue with guarded pointer fields.
type Ring struct {
	buf  []int
	mask uint64

	head atomic.Uint64 //sslint:spsc
	tail atomic.Uint64 //sslint:spsc
}

// Len is the sanctioned access pattern: atomic methods, inside a method.
func (r *Ring) Len() int {
	head := r.head.Load()
	tail := r.tail.Load()
	return int(tail - head)
}

// Push stores atomically.
func (r *Ring) Push(v int) {
	t := r.tail.Load()
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
}

// BadCopy copies the atomic value instead of calling its methods.
func (r *Ring) BadCopy() atomic.Uint64 {
	return r.head // want `non-atomic use of Ring.head`
}

// BadOutside reaches into the pointers from a free function.
func BadOutside(r *Ring) uint64 {
	return r.tail.Load() // want `Ring.tail accessed outside Ring's own methods`
}

// Other is a different type; its method may not touch the ring's pointers.
type Other struct{ r *Ring }

// BadForeignMethod is a method, but on the wrong type.
func (o *Other) BadForeignMethod() uint64 {
	return o.r.head.Load() // want `Ring.head accessed outside Ring's own methods`
}

// Unguarded has the same shape but no markers: unconstrained.
type Unguarded struct {
	head uint64
	tail uint64
}

// GoodUnguarded touches unguarded fields freely.
func GoodUnguarded(u *Unguarded) uint64 {
	u.head++
	return u.tail
}

// Bare is a guarded field declared with a racy bare type.
type Bare struct {
	head uint64 //sslint:spsc // want `must be a sync/atomic type`
}

// BadBareAccess compounds it with a plain increment.
func (b *Bare) BadBareAccess() {
	b.head++ // want `non-atomic use of Bare.head`
}
