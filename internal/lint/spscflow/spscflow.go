// Package spscflow proves the SPSC rings' load-before-store discipline on
// every control-flow path.
//
// spscatomic guarantees the head/tail indices are only ever touched through
// their sync/atomic methods inside the owning type's methods — a syntactic
// property. This analyzer adds the flow-sensitive half of the contract: a
// Store (or Swap) to a guarded field must be dominated by a Load of that
// same field, on every path that reaches it. A producer that publishes a
// tail it never observed, or that loads only inside one branch, is
// overwriting an index the consumer may have advanced past — exactly the
// Len-ordering race PR 1 fixed by hand.
//
// The proof is a must-analysis over the function's CFG: the fact at a point
// is the set of guarded fields loaded on *all* paths into it (intersection
// at joins), and every Store/Swap checks membership. CompareAndSwap and Add
// are read-modify-write and carry their own observation; Load seeds the
// fact. The guarded field set is shared with spscatomic: the built-in
// ringbuf head/tail plus //sslint:spsc-annotated fields.
package spscflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/spscatomic"
)

// Analyzer is the spscflow check.
var Analyzer = &analysis.Analyzer{
	Name: "spscflow",
	Doc:  "require every SPSC head/tail store to be dominated by a load of the same field on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	fields := spscatomic.GuardedFields(pass)
	if len(fields) == 0 {
		return nil
	}
	owners := map[*types.TypeName]bool{}
	for _, o := range fields {
		owners[o] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for o := range owners {
				if spscatomic.IsMethodOn(pass, fd, o) {
					checkMethod(pass, fd, fields)
					break
				}
			}
		}
	}
	return nil
}

// loaded is the must-fact: guarded fields observed on every path here.
type loaded map[*types.Var]bool

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, fields map[*types.Var]*types.TypeName) {
	g := analysis.NewCFG(fd, pass.Info)
	ops := analysis.FlowOps[loaded]{
		Entry: func() loaded { return loaded{} },
		Clone: func(f loaded) loaded {
			c := make(loaded, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Transfer: func(n ast.Node, f loaded) loaded {
			replay(pass, n, fields, f, nil)
			return f
		},
		Join: func(dst, src loaded) (loaded, bool) {
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return dst, changed
		},
	}
	in := analysis.Forward(g, ops)

	// Reporting pass: replay each reachable block's in-fact through its
	// nodes in source order, flagging undominated stores as they appear.
	for _, blk := range g.Blocks {
		f, reachable := in[blk]
		if !reachable {
			continue
		}
		cur := ops.Clone(f)
		for _, n := range blk.Nodes {
			replay(pass, n, fields, cur, func(call *ast.CallExpr, fv *types.Var, method string) {
				owner := fields[fv]
				pass.Reportf(call.Pos(), "%s.%s.%s() is not dominated by %s.Load() on all paths: the index being overwritten was never observed",
					owner.Name(), fv.Name(), method, fv.Name())
			})
		}
	}
}

// replay folds one block node into the loaded-set, calling bad for each
// Store/Swap whose field is not yet loaded. Call arguments are processed
// before the call itself — `tail.Store(tail.Load()+1)` observes before it
// publishes — and function literals belong to another flow.
func replay(pass *analysis.Pass, n ast.Node, fields map[*types.Var]*types.TypeName, f loaded, bad func(*ast.CallExpr, *types.Var, string)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fv, method := guardedCall(pass, call, fields)
		if fv == nil {
			return true
		}
		for _, a := range call.Args {
			replay(pass, a, fields, f, bad)
		}
		switch method {
		case "Load":
			f[fv] = true
		case "Store", "Swap":
			if !f[fv] && bad != nil {
				bad(call, fv, method)
			}
		}
		return false // args already replayed
	})
}

// guardedCall matches r.<field>.<Method>(...) where field is guarded,
// returning the field's origin object and the atomic method name.
func guardedCall(pass *analysis.Pass, call *ast.CallExpr, fields map[*types.Var]*types.TypeName) (*types.Var, string) {
	msel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fsel, ok := msel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fv, ok := pass.Info.Uses[fsel.Sel].(*types.Var)
	if !ok {
		return nil, ""
	}
	if _, guarded := fields[fv.Origin()]; !guarded {
		return nil, ""
	}
	return fv.Origin(), msel.Sel.Name
}
