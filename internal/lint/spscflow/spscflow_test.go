package spscflow_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/spscflow"
)

func TestSPSCFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/a", spscflow.Analyzer)
}
