// Fixture for the spscflow analyzer: stores dominated by a load of the same
// field on every path are accepted; blind stores, one-branch loads, and
// wrong-field observations are findings.
package a

import "sync/atomic"

type ring struct {
	head atomic.Uint64 //sslint:spsc
	tail atomic.Uint64 //sslint:spsc
	buf  [8]int
}

// goodPush is the canonical producer: observe tail (and head for the full
// check), then publish.
func (r *ring) goodPush(v int) bool {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h == uint64(len(r.buf)) {
		return false
	}
	r.buf[t%8] = v
	r.tail.Store(t + 1)
	return true
}

// goodPop loads head on the straight line; the store is dominated.
func (r *ring) goodPop() (int, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	v := r.buf[h%8]
	r.head.Store(h + 1)
	return v, true
}

// inlineObserve loads inside the store's own argument — args run first.
func (r *ring) inlineObserve() {
	r.tail.Store(r.tail.Load() + 1)
}

// blindStore publishes an index it never observed.
func (r *ring) blindStore(v uint64) {
	r.tail.Store(v) // want col=2 `ring.tail.Store\(\) is not dominated by tail.Load\(\) on all paths`
}

// branchMiss only observes on one path: the else path stores blind.
func (r *ring) branchMiss(v uint64, flag bool) {
	if flag {
		_ = r.tail.Load()
	}
	r.tail.Store(v) // want `tail.Store\(\) is not dominated`
}

// wrongField observes head but publishes tail.
func (r *ring) wrongField(v uint64) {
	_ = r.head.Load()
	r.tail.Store(v) // want `tail.Store\(\) is not dominated`
}

// loopCarried observes before the loop; every iteration's store is
// dominated by that load (facts survive the back edge).
func (r *ring) loopCarried(n int) {
	t := r.tail.Load()
	for i := 0; i < n; i++ {
		r.tail.Store(t + uint64(i))
	}
}

// bothBranches loads on every path into the store.
func (r *ring) bothBranches(flag bool) {
	if flag {
		_ = r.tail.Load()
	} else {
		_ = r.tail.Load()
	}
	r.tail.Store(1)
}

// swapNeedsLoad: Swap publishes too.
func (r *ring) swapNeedsLoad(v uint64) {
	_ = r.head.Swap(v) // want `head.Swap\(\) is not dominated`
}

// rmwSelfContained: CompareAndSwap and Add carry their own observation.
func (r *ring) rmwSelfContained() {
	r.head.CompareAndSwap(0, 1)
	r.tail.Add(1)
}
