// Package a is the walltime fixture: wall-clock and global-rand escapes are
// flagged, explicitly seeded generators and annotated measurement sites are
// accepted.
package a

import (
	"math/rand"
	"time"

	"repro/internal/obs"
)

// BadWallClock reads the host clock inside modeled-time code.
func BadWallClock() int64 {
	t := time.Now()              // want `time.Now: wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep: wall-clock sleep`
	return t.UnixNano()
}

// BadGlobalRand draws from the process-global source.
func BadGlobalRand() int {
	rand.Seed(42)                 // want `process-global rand source`
	f := rand.Float64()           // want `process-global rand source`
	return rand.Intn(10) + int(f) // want `process-global rand source`
}

// BadTimers covers the timer-construction surface: timers and tickers are
// host-clock machinery however they are wrapped.
func BadTimers() {
	t := time.NewTimer(time.Second)  // want `time.NewTimer: wall-clock timer`
	k := time.NewTicker(time.Second) // want `time.NewTicker: wall-clock ticker`
	t.Stop()
	k.Stop()
}

// BadChannelClocks covers the channel-returning clock helpers.
func BadChannelClocks() {
	<-time.After(time.Millisecond) // want `time.After: wall-clock timer`
	<-time.Tick(time.Millisecond)  // want `time.Tick: wall-clock ticker`
}

// AllowedTimer: even timer construction can be sanctioned at measurement
// boundaries.
func AllowedTimer() *time.Timer {
	return time.NewTimer(time.Second) //sslint:allow walltime — fixture: scrape-loop timer outside modeled time
}

// GoodSeeded uses the sanctioned explicit-seed pattern.
func GoodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodDuration manipulates time.Duration values without touching the clock.
func GoodDuration(d time.Duration) time.Duration {
	return d * 2
}

// AllowedMeasurement is a sanctioned wall-clock site.
func AllowedMeasurement() time.Time {
	return time.Now() //sslint:allow walltime — fixture: sanctioned measurement site
}

// AllowedAbove uses the standalone-annotation form.
func AllowedAbove() {
	//sslint:allow walltime — fixture: standalone annotation covers the next line
	time.Sleep(time.Nanosecond)
}

// BadDelaySince measures a "queueing delay" by host-clock elapsed time —
// the exact escape the delay-driven buffer pool must never make: lending
// decisions are driven by modeled service rounds, so a wall-clock duration
// here would couple buffering (and drop accounting) to host load.
func BadDelaySince(enqueued time.Time) bool {
	return time.Since(enqueued) > time.Millisecond // want `time.Since: wall-clock duration`
}

// BadDelayUntil is the deadline-flavored variant of the same escape.
func BadDelayUntil(deadline time.Time) bool {
	return time.Until(deadline) < 0 // want `time.Until: wall-clock duration`
}

// GoodModeledDelay measures delay the sanctioned way: arrival stamps
// against a modeled dequeue clock, no host time anywhere.
func GoodModeledDelay(rounds, arrival uint64) uint64 {
	if rounds > arrival {
		return rounds - arrival
	}
	return 0
}

// BadObsWallClock launders a wall-clock reading through the observability
// layer's scrape stamp: obs timestamps in modeled-time code are cycle
// counts, so the sanctioned wrapper is just as forbidden as time.Now here.
func BadObsWallClock() uint64 {
	return obs.WallClock() // want `obs.WallClock: wall-clock scrape stamp`
}

// GoodObsRecording uses the obs recording primitives, which carry no clock.
func GoodObsRecording(c *obs.Counter) {
	c.Inc()
}
