// Package fault is the walltime fixture for the fault-injection layer: a
// deterministic fault schedule must be driven entirely by seeded draws and
// virtual (modeled-ns) arithmetic. Wall-clock jitter, host-clock deadlines,
// real sleeps for backoff, and process-global rand draws would all make a
// chaos run unreproducible from its seed, so each is a finding here.
package fault

import (
	"math/rand"
	"time"
)

// Fault is a modeled fault: when it fires and how long it costs, in
// virtual nanoseconds.
type Fault struct {
	At     uint64
	CostNs uint64
}

// GoodSeededSchedule draws every fault point from an explicitly seeded
// generator — the sanctioned pattern: the seed alone replays the schedule.
func GoodSeededSchedule(seed int64, n int, horizon uint64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		out[i] = Fault{At: rng.Uint64() % horizon, CostNs: 6620}
	}
	return out
}

// GoodVirtualBackoff doubles a restart backoff in modeled nanoseconds —
// pure arithmetic, no clock.
func GoodVirtualBackoff(prev, cap uint64) uint64 {
	next := prev * 2
	if next > cap {
		next = cap
	}
	return next
}

// BadJitteredFault stamps a fault with the host clock: the schedule now
// differs on every run and every machine.
func BadJitteredFault() Fault {
	return Fault{At: uint64(time.Now().UnixNano())} // want `time.Now: wall clock`
}

// BadBackoffSleep burns real time for a modeled backoff.
func BadBackoffSleep(ns uint64) {
	time.Sleep(time.Duration(ns)) // want `time.Sleep: wall-clock sleep`
}

// BadGlobalFaultPoints draws fault points from the process-global source:
// the schedule depends on whatever else drew from it first.
func BadGlobalFaultPoints(n int, horizon uint64) []Fault {
	out := make([]Fault, n)
	for i := range out {
		out[i] = Fault{At: rand.Uint64() % horizon} // want `process-global rand source`
	}
	return out
}

// BadDeadlineTimer arms a wall-clock timer for a transfer deadline that is
// specified in virtual nanoseconds.
func BadDeadlineTimer(ns uint64) <-chan time.Time {
	return time.After(time.Duration(ns)) // want `time.After: wall-clock timer`
}

// AllowedChaosWallClock is the sanctioned escape: measuring how long the
// chaos harness itself runs is a wall-clock job, and says so.
func AllowedChaosWallClock() time.Time {
	return time.Now() //sslint:allow walltime — fixture: harness wall-clock measurement
}
