// Package syncpolicy is the walltime fixture for journal-durability code:
// checkpoint cadence, sync decisions, and crash-point sampling are all
// defined in epochs, journaled bytes, and seeded draws — never host time.
// Replay determinism is the whole contract (DESIGN.md §12): the same
// journal must rebuild the same engine on any machine at any speed, so a
// wall-clock reading anywhere in the durability path is a finding. The
// daemon's epoch ticker and fsync latency measurements live in cmd/, which
// the driver exempts by design.
package syncpolicy

import (
	"math/rand"
	"time"
)

// GoodEpochCadence decides checkpoint emission by fence count — pure
// modulo arithmetic on the epoch counter, the sanctioned cadence.
func GoodEpochCadence(epoch uint64, every uint64) bool {
	return every > 0 && epoch%every == 0
}

// GoodSeededCrashPoints samples crash offsets from an explicitly seeded
// generator: the seed alone replays the same simulated kill -9 sequence.
func GoodSeededCrashPoints(seed int64, n int, size int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, 0, n)
	for len(out) < n {
		out = append(out, 1+rng.Int63n(size-1))
	}
	return out
}

// BadTimedCheckpoint gates checkpoint emission on host-clock elapsed time:
// two replays of the same journal would checkpoint at different records.
func BadTimedCheckpoint(last time.Time) bool {
	return time.Since(last) > time.Second // want `time.Since: wall-clock duration`
}

// BadSyncStamp stamps a durability decision with the host clock; the
// journal text now differs across runs and the replay hash with it.
func BadSyncStamp() int64 {
	return time.Now().UnixNano() // want `time.Now: wall clock`
}

// BadSyncTicker drives fsync off a wall-clock ticker instead of the epoch
// fence: durability would depend on host load, not on what was committed.
func BadSyncTicker() *time.Ticker {
	return time.NewTicker(5 * time.Millisecond) // want `time.NewTicker: wall-clock ticker`
}

// BadGlobalCrashPoints draws crash offsets from the process-global source:
// the sampled points depend on whatever else drew first, so a recovery
// failure is not reproducible from the seed.
func BadGlobalCrashPoints(n int, size int64) []int64 {
	out := make([]int64, 0, n)
	for len(out) < n {
		out = append(out, 1+rand.Int63n(size-1)) // want `process-global rand source`
	}
	return out
}

// AllowedReplayStopwatch is the sanctioned escape: reporting how long a
// recovery took on this host is a wall-clock job, and says so.
func AllowedReplayStopwatch(start time.Time) time.Duration {
	return time.Since(start) //sslint:allow walltime — fixture: operator-facing recovery stopwatch
}
