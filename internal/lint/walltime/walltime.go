// Package walltime flags wall-clock and global-randomness escapes in
// modeled-time code.
//
// The scheduler's clock is virtual — one time unit per decision cycle — and
// every experiment output is required to be bit-identical across runs and
// hosts (DESIGN.md "Determinism"). A stray time.Now, time.Sleep, or draw
// from math/rand's process-global source silently couples modeled results to
// the host's clock or to test execution order. The analyzer forbids:
//
//   - time.Now, time.Sleep, time.Tick, time.After, time.AfterFunc,
//     time.NewTimer, time.NewTicker — wall-clock sources and timers;
//   - time.Since and time.Until — wall-clock *durations*. These are the
//     escape a latency-driven mechanism reaches for first: the Queue
//     Manager's delay-driven shared buffer pool lends capacity by measured
//     queueing delay, and that delay is defined in modeled service rounds
//     (frame arrival stamps against the dequeue clock), never host-clock
//     elapsed time — a time.Since there would couple lending decisions, and
//     through them drop accounting, to host load;
//   - every math/rand top-level function that draws from the global source
//     (Int, Intn, Float64, Perm, Shuffle, Seed, ...). Explicitly seeded
//     generators — rand.New(rand.NewSource(seed)) — are the sanctioned
//     pattern and pass;
//   - obs.WallClock, the observability layer's scrape stamp: obs timestamps
//     inside modeled-time packages are cycle counts, and reaching for the
//     sanctioned wall-clock wrapper from such code is the same escape as
//     calling time.Now directly.
//
// Legitimate wall-clock sites (the §4.1 latency harness, the sharded
// wall-clock scaling experiment) carry //sslint:allow walltime annotations;
// the cmd/sslint driver additionally scopes this analyzer away from
// repro/cmd/..., whose benchmark harnesses measure wall time by design.
package walltime

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Sleep and global math/rand in modeled-time code",
	Run:  run,
}

// forbidden maps package path → function names whose call (or mention) is a
// finding.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "wall clock in modeled-time code",
		"Since":     "wall-clock duration in modeled-time code (measured delays are modeled service rounds)",
		"Until":     "wall-clock duration in modeled-time code (measured delays are modeled service rounds)",
		"Sleep":     "wall-clock sleep in modeled-time code",
		"Tick":      "wall-clock ticker in modeled-time code",
		"After":     "wall-clock timer in modeled-time code",
		"AfterFunc": "wall-clock timer in modeled-time code",
		"NewTimer":  "wall-clock timer in modeled-time code",
		"NewTicker": "wall-clock ticker in modeled-time code",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "", "ExpFloat64": "",
		"NormFloat64": "", "Perm": "", "Shuffle": "", "Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "", "ExpFloat64": "",
		"NormFloat64": "", "Perm": "", "Shuffle": "", "N": "", "Uint32N": "", "Uint64N": "",
	},
	// The observability layer's scrape stamp is the one sanctioned wall-clock
	// reading in the tree; obs timestamps are otherwise modeled time (cycle
	// counts). Calling WallClock from modeled-time code would launder a
	// time.Now through the obs package, so it is forbidden exactly like the
	// source it wraps (repro/cmd/... stays exempt via the driver's scoping).
	"repro/internal/obs": {
		"WallClock": "wall-clock scrape stamp in modeled-time code",
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an explicitly seeded *rand.Rand) are fine
			}
			names, ok := forbidden[obj.Pkg().Path()]
			if !ok {
				return true
			}
			why, ok := names[sel.Sel.Name]
			if !ok {
				return true
			}
			if why == "" {
				why = "draw from the process-global rand source (unseeded, test-order dependent)"
			}
			pass.Reportf(sel.Pos(), "%s.%s: %s; thread virtual time / an explicit seed through instead, or annotate //sslint:allow walltime — <reason>",
				obj.Pkg().Path(), sel.Sel.Name, why)
			return true
		})
	}
	return nil
}
