package walltime

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}
