package walltime

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}

// TestWalltimeFaultFixture pins the fault-injection contract: schedules
// are seeded draws and backoffs are virtual-ns arithmetic; host clocks,
// real sleeps, and global rand in fault code are findings.
func TestWalltimeFaultFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/fault", Analyzer)
}
