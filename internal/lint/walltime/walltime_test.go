package walltime

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/src/a", Analyzer)
}

// TestWalltimeFaultFixture pins the fault-injection contract: schedules
// are seeded draws and backoffs are virtual-ns arithmetic; host clocks,
// real sleeps, and global rand in fault code are findings.
func TestWalltimeFaultFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/fault", Analyzer)
}

// TestWalltimeSyncPolicyFixture pins the journal-durability contract:
// checkpoint cadence is epoch arithmetic, crash-point sampling is a seeded
// draw, and any host-clock reading in the durability path would break
// replay determinism (DESIGN.md §12).
func TestWalltimeSyncPolicyFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/syncpolicy", Analyzer)
}
