// Package netio models the Network Interface of the endsystem (Figure 3):
// a descriptor-ring DMA engine. The Transmission Engine sets DMA registers
// on the NI to enable DMA pulls — each scheduled frame becomes a transmit
// descriptor; the NI pulls the payload from processor memory by DMA and
// serializes it onto the wire, posting a completion the TE reaps.
//
// The model is virtual-time based like the rest of the substrate: each pull
// costs a per-descriptor setup plus payload/bandwidth, and wire
// serialization queues behind the link. It exposes the occupancy/completion
// dynamics real TE threads contend with (ring full ⇒ backpressure), which
// the concurrency-focused §4.2 design discussion is about.
package netio

import (
	"fmt"

	"repro/internal/link"
)

// Descriptor is one transmit descriptor.
type Descriptor struct {
	Stream  int
	Bytes   int
	PostNs  float64 // when the TE posted it
	doneNs  float64 // wire completion
	pulled  bool
	addrLen int // payload fragments (model detail, 1 for contiguous frames)
}

// Config parameterizes the NI.
type Config struct {
	// RingSize is the descriptor ring capacity (power of two not
	// required here; hardware rings vary).
	RingSize int
	// DMASetupNs is the per-descriptor engine cost.
	DMASetupNs float64
	// DMABytesPerSec is the host-memory pull bandwidth.
	DMABytesPerSec float64
	// LinkBps is the wire rate.
	LinkBps float64
}

// DefaultConfig models a gigabit NI of the paper's era.
func DefaultConfig() Config {
	return Config{
		RingSize:       64,
		DMASetupNs:     500,
		DMABytesPerSec: 200e6,
		LinkBps:        1e9,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RingSize < 1 {
		return fmt.Errorf("netio: ring size %d", c.RingSize)
	}
	if c.DMASetupNs < 0 || c.DMABytesPerSec <= 0 || c.LinkBps <= 0 {
		return fmt.Errorf("netio: bad rates %+v", c)
	}
	return nil
}

// NI is one network interface instance.
type NI struct {
	cfg  Config
	ring []Descriptor
	head int // next descriptor to complete (reap point)
	tail int // next free slot (post point)
	used int

	wire       *link.Link
	engineBusy float64 // DMA engine frees at this virtual time

	// Totals.
	Posted    uint64
	Completed uint64
	Rejected  uint64 // posts refused because the ring was full
}

// New builds an NI.
func New(cfg Config) (*NI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l, err := link.New(cfg.LinkBps)
	if err != nil {
		return nil, err
	}
	return &NI{cfg: cfg, ring: make([]Descriptor, cfg.RingSize), wire: l}, nil
}

// Free returns the number of free descriptor slots.
func (n *NI) Free() int { return n.cfg.RingSize - n.used }

// Post places a transmit descriptor on the ring at virtual time nowNs (the
// TE writing the NI's DMA registers). It reports false when the ring is
// full (TE backpressure).
func (n *NI) Post(stream, bytes int, nowNs float64) bool {
	if bytes <= 0 {
		return false
	}
	if n.used == n.cfg.RingSize {
		n.Rejected++
		return false
	}
	// DMA pull: engine serializes descriptor setups and payload pulls;
	// the wire serializes frames after the pull completes.
	start := nowNs
	if n.engineBusy > start {
		start = n.engineBusy
	}
	pullDone := start + n.cfg.DMASetupNs + float64(bytes)/n.cfg.DMABytesPerSec*1e9
	n.engineBusy = pullDone
	_, end, err := n.wire.Transmit(bytes, pullDone)
	if err != nil {
		return false
	}
	n.ring[n.tail] = Descriptor{
		Stream: stream, Bytes: bytes, PostNs: nowNs, doneNs: end, pulled: true, addrLen: 1,
	}
	n.tail = (n.tail + 1) % n.cfg.RingSize
	n.used++
	n.Posted++
	return true
}

// Reap completes descriptors whose frames have left the wire by nowNs, in
// ring order, returning them (the TE's completion processing).
func (n *NI) Reap(nowNs float64) []Descriptor {
	var done []Descriptor
	for n.used > 0 {
		d := n.ring[n.head]
		if d.doneNs > nowNs {
			break
		}
		done = append(done, d)
		n.head = (n.head + 1) % n.cfg.RingSize
		n.used--
		n.Completed++
	}
	return done
}

// Wire exposes the output link (utilization, totals).
func (n *NI) Wire() *link.Link { return n.wire }

// Latency returns a descriptor's post-to-wire-completion latency in ns.
func (d Descriptor) Latency() float64 { return d.doneNs - d.PostNs }

// CompletionNs returns the descriptor's wire completion time.
func (d Descriptor) CompletionNs() float64 { return d.doneNs }
