package netio

import (
	"math"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RingSize: 0, DMASetupNs: 1, DMABytesPerSec: 1, LinkBps: 1},
		{RingSize: 4, DMASetupNs: -1, DMABytesPerSec: 1, LinkBps: 1},
		{RingSize: 4, DMASetupNs: 1, DMABytesPerSec: 0, LinkBps: 1},
		{RingSize: 4, DMASetupNs: 1, DMABytesPerSec: 1, LinkBps: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPostReapLifecycle(t *testing.T) {
	ni, err := New(Config{RingSize: 4, DMASetupNs: 100, DMABytesPerSec: 1e9, LinkBps: 8e9})
	if err != nil {
		t.Fatal(err)
	}
	if !ni.Post(0, 1000, 0) {
		t.Fatal("post failed")
	}
	// pull: 100 + 1000ns = 1100; wire: 1000B@8Gbps = 1µs -> done 2100ns.
	if got := ni.Reap(2000); len(got) != 0 {
		t.Fatalf("reaped before completion: %v", got)
	}
	done := ni.Reap(2200)
	if len(done) != 1 {
		t.Fatalf("reaped %d", len(done))
	}
	if math.Abs(done[0].Latency()-2100) > 1e-9 {
		t.Fatalf("latency = %v, want 2100", done[0].Latency())
	}
	if ni.Free() != 4 || ni.Completed != 1 {
		t.Fatalf("ring state: free %d completed %d", ni.Free(), ni.Completed)
	}
}

func TestRingBackpressure(t *testing.T) {
	ni, _ := New(Config{RingSize: 2, DMASetupNs: 10, DMABytesPerSec: 1e9, LinkBps: 1e9})
	if !ni.Post(0, 100, 0) || !ni.Post(1, 100, 0) {
		t.Fatal("posts failed")
	}
	if ni.Post(2, 100, 0) {
		t.Fatal("post into a full ring succeeded")
	}
	if ni.Rejected != 1 || ni.Free() != 0 {
		t.Fatalf("rejected %d free %d", ni.Rejected, ni.Free())
	}
	// Drain and post again.
	ni.Reap(1e12)
	if !ni.Post(2, 100, 1e12) {
		t.Fatal("post after drain failed")
	}
}

func TestEngineAndWireSerialize(t *testing.T) {
	// Two frames posted at the same instant: the second's pull starts
	// after the first's; the wire also serializes.
	ni, _ := New(Config{RingSize: 8, DMASetupNs: 0, DMABytesPerSec: 1e9, LinkBps: 8e9})
	ni.Post(0, 1000, 0) // pull 1µs, wire 1µs -> done 2µs
	ni.Post(1, 1000, 0) // pull 1..2µs, wire 2..3µs
	done := ni.Reap(1e7)
	if len(done) != 2 {
		t.Fatalf("reaped %d", len(done))
	}
	if math.Abs(done[0].CompletionNs()-2000) > 1e-9 {
		t.Fatalf("first completion %v", done[0].CompletionNs())
	}
	if math.Abs(done[1].CompletionNs()-3000) > 1e-9 {
		t.Fatalf("second completion %v", done[1].CompletionNs())
	}
	if ni.Wire().Frames() != 2 {
		t.Fatalf("wire frames %d", ni.Wire().Frames())
	}
}

func TestReapInOrder(t *testing.T) {
	ni, _ := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		if !ni.Post(i, 500, float64(i)*100) {
			t.Fatalf("post %d failed", i)
		}
	}
	done := ni.Reap(1e12)
	for i, d := range done {
		if d.Stream != i {
			t.Fatalf("completion %d out of order: stream %d", i, d.Stream)
		}
	}
}

func TestInvalidPost(t *testing.T) {
	ni, _ := New(DefaultConfig())
	if ni.Post(0, 0, 0) {
		t.Fatal("zero-size post succeeded")
	}
}
