package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i holds values whose
// bit length is i, i.e. bucket 0 is exactly 0 and bucket i (i ≥ 1) spans
// [2^(i-1), 2^i). 65 buckets cover the whole uint64 range, so Observe never
// clamps and never branches on range.
const histBuckets = 65

// Histogram is a fixed-bucket log₂-scale histogram for latency and
// occupancy distributions. All storage is in the struct — one allocation at
// construction, none per Observe — and every cell is atomic, so recording
// and snapshotting may run concurrently.
//
// Log-scale buckets trade value resolution (one bit: each bucket spans a
// power of two) for a recording path that is two atomic adds and a
// bits.Len64. Quantiles are therefore estimates, exact to the bucket and
// linearly interpolated within it.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
//
//sslint:hotpath
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// bucketBounds returns bucket i's value range [lo, hi] (inclusive).
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, math.MaxUint64
	}
	return lo, (uint64(1) << i) - 1
}

// Quantile estimates the q-th quantile (q in [0, 1]) by walking the bucket
// counts and interpolating linearly inside the landing bucket. An empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	// Load a consistent-enough view: counts may advance between loads, but
	// each cell is individually atomic and the estimate is log-scale anyway.
	var cells [histBuckets]uint64
	var total uint64
	for i := range cells {
		cells[i] = h.buckets[i].Load()
		total += cells[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range cells {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next || i == histBuckets-1 {
			lo, hi := bucketBounds(i)
			frac := 0.0
			if c > 0 {
				frac = (rank - seen) / float64(c)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return float64(lo) + frac*float64(hi-lo)
		}
		seen = next
	}
	return 0
}

// Max returns the upper bound of the highest non-empty bucket (an estimate
// of the maximum observed value, exact to its power-of-two bucket).
func (h *Histogram) Max() uint64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}

// Bucket is one non-empty histogram cell in a snapshot.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty cells in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}
