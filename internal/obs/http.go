package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WallClock returns the host clock in nanoseconds since the Unix epoch. It
// exists for the harnesses under cmd/ to stamp metric scrapes; instrumented
// modeled-time packages must record virtual time instead, and the walltime
// analyzer rejects obs.WallClock there exactly as it rejects time.Now.
func WallClock() uint64 {
	return uint64(time.Now().UnixNano()) //sslint:allow walltime — the one sanctioned wall-clock source for scrape stamping; modeled-time packages are barred from calling WallClock by the walltime analyzer itself
}

// scrape is the JSON document served by Handler: the registry snapshot plus
// a wall-clock stamp so successive scrapes can be rated. Snapshot embeds
// flat, so the document reads {"wall_ns": ..., "metrics": [...], ...}.
type scrape struct {
	WallNs uint64 `json:"wall_ns"`
	Snapshot
}

// Handler serves the registry as a JSON snapshot (an expvar-style view, but
// structured: histograms carry quantiles and buckets, tracers their ring
// dumps).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(scrape{WallNs: WallClock(), Snapshot: r.Snapshot()})
	})
}

// NewMux builds the observability mux: the JSON snapshot on /metrics and
// the standard pprof handlers under /debug/pprof/ (mounted explicitly so the
// endpoint works on any mux, not just http.DefaultServeMux).
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (e.g. ":9090") in a
// background goroutine and returns the bound address plus a closer. Callers
// that want graceful lifecycle management should use ServeHandler; this is
// the one-call path for the cmd/ harnesses' -metrics flag.
func Serve(addr string, r *Registry) (bound string, close func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// ServeHandler starts h on addr in a background goroutine and returns the
// bound address plus a graceful shutdown function: in-flight requests are
// allowed to finish up to the caller's context deadline, new connections
// are refused immediately — the lifecycle a daemon wants, where Serve's
// abrupt Close fits fire-and-forget harnesses. Extend the handler before
// calling (NewMux returns a mutable *http.ServeMux admin routes can be
// added to).
func ServeHandler(addr string, h http.Handler) (bound string, shutdown func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Shutdown, nil
}
