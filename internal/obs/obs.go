// Package obs is the runtime observability layer: allocation-free metric
// primitives usable from the decision hot path, a registry that names them,
// and cold-path views (JSON snapshots, an expvar-style HTTP endpoint, a text
// summary) for the running system to observe itself.
//
// The paper instruments ShareStreams from the outside — Tables 1–3 and
// Figures 8–10 are measured by the harness around the scheduler — but a
// production endsystem needs self-observation: per-queue occupancy and delay
// telemetry is the control input for programmable-scheduler and
// buffer-sharing work alike. This package provides that layer under the
// repository's standing invariants:
//
//   - Zero allocations on the recording path. Counter.Add, Gauge.Set,
//     Histogram.Observe and CycleTracer.Record allocate nothing; all storage
//     is laid out at construction time. The hotpathalloc analyzer checks
//     these functions structurally and core's TestZeroAllocInstrumented
//     pins the end-to-end guarantee (0 allocs/cycle with instrumentation
//     enabled).
//
//   - Modeled time only. Timestamps recorded by instrumented packages are
//     virtual (decision cycles, modeled nanoseconds), never the host clock.
//     The one wall-clock source here, WallClock, exists for harnesses under
//     cmd/ to stamp scrapes; the walltime analyzer rejects it in
//     modeled-time packages exactly as it rejects time.Now.
//
//   - Race-clean scraping. Counters and gauges are atomics; histograms are
//     per-bucket atomics; the cycle tracer takes an uncontended mutex per
//     record. Snapshot may therefore run concurrently with the workload.
//     Func gauges are the exception: they run on the scraping goroutine at
//     snapshot time, so register only functions that are safe to call
//     concurrently (atomic reads, observer-safe ring lengths) or scrape the
//     system quiesced.
//
// Metric names are dotted lowercase paths ("core.decisions",
// "shard.0.frames"); units are free-form strings carried alongside the name
// ("1", "cycles", "frames", "ns"). DESIGN.md §6 lists the canonical names
// emitted by the instrumented packages.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//sslint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//sslint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (signed: depths, balances, deltas).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
//
//sslint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
//
//sslint:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
