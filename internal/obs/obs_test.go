package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(-7)
	g.Add(10)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 0 lands in bucket 0; 1 in [1,1]; 2,3 in [2,3]; 1000 in [512,1023].
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1006 {
		t.Fatalf("sum = %d, want 1006", h.Sum())
	}
	bs := h.Buckets()
	wantBuckets := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 512, Hi: 1023, Count: 1},
	}
	if len(bs) != len(wantBuckets) {
		t.Fatalf("buckets = %+v, want %+v", bs, wantBuckets)
	}
	for i, b := range bs {
		if b != wantBuckets[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, wantBuckets[i])
		}
	}
	if got, want := h.Mean(), 1006.0/5; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// The median of {0,1,2,3,1000} must land in a low bucket, the p99 in
	// the top one; log-scale quantiles are estimates, so assert ranges.
	if p50 := h.Quantile(0.5); p50 > 3 {
		t.Fatalf("p50 = %v, want ≤ 3", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512 || p99 > 1023 {
		t.Fatalf("p99 = %v, want within [512, 1023]", p99)
	}
	if mx := h.Max(); mx != 1023 {
		t.Fatalf("max = %d, want 1023 (bucket upper bound)", mx)
	}
	// Quantile inputs are clamped.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxUint64)
	if got := h.Max(); got != math.MaxUint64 {
		t.Fatalf("max = %d, want MaxUint64", got)
	}
	if q := h.Quantile(1); q <= 0 {
		t.Fatalf("q1 = %v, want > 0", q)
	}
}

func TestCycleTracerWrap(t *testing.T) {
	if _, err := NewCycleTracer(0); err == nil {
		t.Fatal("depth 0 must fail")
	}
	tr, err := NewCycleTracer(3) // rounds up to 4
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", tr.Cap())
	}
	for i := uint64(0); i < 10; i++ {
		tr.Record(CycleRecord{Decision: i, Time: i, Winner: uint32(i % 4), Occupancy: 1})
	}
	if tr.Len() != 4 || tr.Recorded() != 10 {
		t.Fatalf("len=%d recorded=%d, want 4/10", tr.Len(), tr.Recorded())
	}
	dump := tr.Dump()
	if len(dump) != 4 {
		t.Fatalf("dump len = %d, want 4", len(dump))
	}
	for i, rec := range dump {
		if want := uint64(6 + i); rec.Decision != want {
			t.Fatalf("dump[%d].Decision = %d, want %d (oldest first)", i, rec.Decision, want)
		}
	}
}

func TestTracerConcurrentDump(t *testing.T) {
	tr, err := NewCycleTracer(64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 5000; i++ {
			tr.Record(CycleRecord{Decision: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, rec := range tr.Dump() {
				_ = rec.Decision
			}
		}
	}()
	wg.Wait()
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("core.decisions", "1")
	c2 := reg.Counter("core.decisions", "1")
	if c1 != c2 {
		t.Fatal("re-registration must return the same counter")
	}
	c1.Add(3)
	reg.Gauge("qm.depth", "frames").Set(17)
	reg.GaugeFunc("shard.imbalance", "ratio", func() float64 { return 1.5 })
	h := reg.Histogram("core.block_occupancy", "slots")
	h.Observe(4)
	tr, err := reg.Tracer("core.cycles", 8)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(CycleRecord{Decision: 9, Winner: 2, Occupancy: 4, WinnerKey: 0xbeef})

	snap := reg.Snapshot()
	byName := map[string]MetricSnap{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	if m := byName["core.decisions"]; m.Kind != "counter" || m.Value != 3 {
		t.Fatalf("core.decisions snap = %+v", m)
	}
	if m := byName["qm.depth"]; m.Kind != "gauge" || m.Value != 17 {
		t.Fatalf("qm.depth snap = %+v", m)
	}
	if m := byName["shard.imbalance"]; m.Kind != "func" || m.Value != 1.5 {
		t.Fatalf("shard.imbalance snap = %+v", m)
	}
	if m := byName["core.block_occupancy"]; m.Kind != "histogram" || m.Count != 1 || m.Value != 4 {
		t.Fatalf("core.block_occupancy snap = %+v", m)
	}
	// Names come out sorted.
	for i := 1; i < len(snap.Metrics); i++ {
		if snap.Metrics[i-1].Name >= snap.Metrics[i].Name {
			t.Fatalf("snapshot not name-ordered: %q before %q", snap.Metrics[i-1].Name, snap.Metrics[i].Name)
		}
	}
	if len(snap.Traces) != 1 || snap.Traces[0].Name != "core.cycles" ||
		len(snap.Traces[0].Records) != 1 || snap.Traces[0].Records[0].WinnerKey != 0xbeef {
		t.Fatalf("trace snap = %+v", snap.Traces)
	}

	// JSON round-trip.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != len(snap.Metrics) {
		t.Fatalf("round-trip lost metrics: %d vs %d", len(back.Metrics), len(snap.Metrics))
	}

	// Text summary mentions every metric and the trace.
	buf.Reset()
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"core.decisions", "qm.depth", "core.block_occupancy", "trace core.cycles"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("text summary missing %q:\n%s", name, buf.String())
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "1")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("x", "1")
}

// TestRecordingPathAllocs pins the package-level contract: the recording
// primitives allocate nothing. Core's TestZeroAllocInstrumented pins the
// same property end to end through the scheduler.
func TestRecordingPathAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram()
	tr, err := NewCycleTracer(256)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(2)
		g.Set(5)
		h.Observe(12345)
		tr.Record(CycleRecord{Decision: c.Load(), Occupancy: 3})
	})
	if allocs != 0 {
		t.Fatalf("recording path allocated %.2f times per run (want 0)", allocs)
	}
}

func TestHTTPEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.decisions", "1").Add(11)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var doc struct {
		WallNs  uint64       `json:"wall_ns"`
		Metrics []MetricSnap `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.WallNs == 0 {
		t.Fatal("scrape missing wall-clock stamp")
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "core.decisions" || doc.Metrics[0].Value != 11 {
		t.Fatalf("scrape = %+v", doc.Metrics)
	}

	// pprof is mounted on the same mux.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", pp.StatusCode)
	}
}
