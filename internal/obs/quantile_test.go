package obs

// Quantile edge cases: the top bucket (whose upper bound is MaxUint64, where
// a naive 1<<i bound would overflow to zero), single-observation histograms,
// exactness at q=0 and q=1, and a randomized comparison against a sorted-
// slice reference — the estimate must land in (or adjacent to) the log₂
// bucket that holds the true quantile.

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileTopBucket(t *testing.T) {
	// bucketBounds(64) is the overflow-prone cell: [2^63, MaxUint64].
	lo, hi := bucketBounds(64)
	if lo != uint64(1)<<63 || hi != math.MaxUint64 {
		t.Fatalf("bucketBounds(64) = [%d, %d], want [2^63, MaxUint64]", lo, hi)
	}

	h := NewHistogram()
	h.Observe(math.MaxUint64)
	h.Observe(uint64(1) << 63)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := h.Quantile(q)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Quantile(%v) = %v", q, v)
		}
		if v < float64(lo) || v > float64(hi) {
			t.Fatalf("Quantile(%v) = %v outside the top bucket [%d, %d]", q, v, lo, hi)
		}
	}
	if q1 := h.Quantile(1); q1 != float64(math.MaxUint64) {
		t.Fatalf("Quantile(1) = %v, want the top bucket's hi %v", q1, float64(math.MaxUint64))
	}
	if h.Max() != math.MaxUint64 {
		t.Fatalf("Max() = %d, want MaxUint64", h.Max())
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 100, 1 << 40, math.MaxUint64} {
		h := NewHistogram()
		h.Observe(v)
		lo, hi := bucketBounds(bits.Len64(v))
		prev := -1.0
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			got := h.Quantile(q)
			// One observation pins every quantile to its bucket: exactly lo
			// at q=0, exactly hi at q=1, monotone in between.
			if got < float64(lo) || got > float64(hi) {
				t.Fatalf("value %d: Quantile(%v) = %v outside bucket [%d, %d]", v, q, got, lo, hi)
			}
			if got < prev {
				t.Fatalf("value %d: Quantile(%v) = %v below Quantile at lower q (%v)", v, q, got, prev)
			}
			prev = got
		}
		if got := h.Quantile(0); got != float64(lo) {
			t.Fatalf("value %d: Quantile(0) = %v, want bucket lo %d", v, got, lo)
		}
		if got := h.Quantile(1); got != float64(hi) {
			t.Fatalf("value %d: Quantile(1) = %v, want bucket hi %d", v, got, hi)
		}
	}
}

func TestQuantileEndpointsExactToBucket(t *testing.T) {
	// q=0 must identify the minimum's bucket (returning its lo, a lower
	// bound on the true min) and q=1 the maximum's bucket (returning its hi,
	// an upper bound on the true max, == Max()).
	h := NewHistogram()
	vals := []uint64{9, 77, 300, 300, 5000, 123456}
	for _, v := range vals {
		h.Observe(v)
	}
	minLo, _ := bucketBounds(bits.Len64(9))
	_, maxHi := bucketBounds(bits.Len64(123456))
	if got := h.Quantile(0); got != float64(minLo) {
		t.Fatalf("Quantile(0) = %v, want min bucket lo %d", got, minLo)
	}
	if got := h.Quantile(1); got != float64(maxHi) {
		t.Fatalf("Quantile(1) = %v, want max bucket hi %d", got, maxHi)
	}
	if got := h.Quantile(1); got != float64(h.Max()) {
		t.Fatalf("Quantile(1) = %v disagrees with Max() = %d", got, h.Max())
	}
}

func TestQuantileMatchesSortedReference(t *testing.T) {
	// Randomized differential against the exact sorted-slice quantile: the
	// log₂-bucket estimate must land in the true quantile's bucket or an
	// adjacent one (boundary ranks may resolve to a neighbour).
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		vals := make([]uint64, n)
		h := NewHistogram()
		for i := range vals {
			// Mix magnitudes so many buckets populate.
			vals[i] = uint64(rng.Int63()) >> uint(rng.Intn(60))
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			idx := int(q * float64(n-1))
			refBucket := bits.Len64(vals[idx])
			got := h.Quantile(q)
			gotBucket := bits.Len64(uint64(got))
			if gotBucket < refBucket-1 || gotBucket > refBucket+1 {
				t.Fatalf("trial %d n=%d: Quantile(%v) = %v (bucket %d), reference %d (bucket %d)",
					trial, n, q, got, gotBucket, vals[idx], refBucket)
			}
		}
	}
}
