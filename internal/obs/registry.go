package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindFunc      = "func"
	kindHistogram = "histogram"
)

// metric is one registered instrument.
type metric struct {
	name, unit, kind string
	counter          *Counter
	gauge            *Gauge
	fn               func() float64
	hist             *Histogram
}

// Registry names a set of metrics and tracers so cold-path views (Snapshot,
// the HTTP endpoint, the text summary) can enumerate them. Registration is
// cold-path and idempotent by name: asking for an existing name of the same
// kind returns the already-registered instrument, so independent subsystems
// (or repeated runs in one process) can share a bundle without coordination.
// Asking for an existing name with a different kind panics — that is a
// wiring error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	tracers map[string]*CycleTracer
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		tracers: make(map[string]*CycleTracer),
	}
}

// intern registers (or returns) the named metric.
func (r *Registry) intern(name, unit, kind string, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := build()
	m.name, m.unit, m.kind = name, unit, kind
	r.metrics[name] = m
	return m
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, unit string) *Counter {
	return r.intern(name, unit, kindCounter, func() *metric { return &metric{counter: &Counter{}} }).counter
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, unit string) *Gauge {
	return r.intern(name, unit, kindGauge, func() *metric { return &metric{gauge: &Gauge{}} }).gauge
}

// Histogram registers (or returns) the named histogram.
func (r *Registry) Histogram(name, unit string) *Histogram {
	return r.intern(name, unit, kindHistogram, func() *metric { return &metric{hist: NewHistogram()} }).hist
}

// GaugeFunc registers a sampled gauge: fn runs at snapshot time on the
// scraping goroutine (see the package comment for the sampling discipline).
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name, unit string, fn func() float64) {
	m := r.intern(name, unit, kindFunc, func() *metric { return &metric{} })
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Tracer registers (or returns) the named cycle tracer with the given depth
// (the existing tracer's depth wins on re-registration).
func (r *Registry) Tracer(name string, depth int) (*CycleTracer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tracers[name]; ok {
		return t, nil
	}
	t, err := NewCycleTracer(depth)
	if err != nil {
		return nil, err
	}
	r.tracers[name] = t
	return t, nil
}

// MetricSnap is one metric's point-in-time view.
type MetricSnap struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`
	// Value carries the counter count, gauge value, func sample, or
	// histogram mean.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	P50     float64  `json:"p50,omitempty"`
	P90     float64  `json:"p90,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// TraceSnap is one tracer's dump.
type TraceSnap struct {
	Name     string        `json:"name"`
	Recorded uint64        `json:"recorded"`
	Records  []CycleRecord `json:"records"`
}

// Snapshot is a point-in-time view of every registered instrument, ordered
// by name. It is plain data: safe to marshal, diff, or hold after the
// workload moves on.
type Snapshot struct {
	Metrics []MetricSnap `json:"metrics"`
	Traces  []TraceSnap  `json:"traces,omitempty"`
}

// Snapshot captures every registered metric and tracer.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	type namedTracer struct {
		name string
		t    *CycleTracer
	}
	ts := make([]namedTracer, 0, len(r.tracers))
	for name, t := range r.tracers {
		ts = append(ts, namedTracer{name, t})
	}
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })

	var s Snapshot
	for _, m := range ms {
		snap := MetricSnap{Name: m.name, Kind: m.kind, Unit: m.unit}
		switch m.kind {
		case kindCounter:
			snap.Value = float64(m.counter.Load())
		case kindGauge:
			snap.Value = float64(m.gauge.Load())
		case kindFunc:
			if m.fn != nil {
				snap.Value = m.fn()
			}
		case kindHistogram:
			h := m.hist
			snap.Value = h.Mean()
			snap.Count = h.Count()
			snap.Sum = h.Sum()
			snap.P50 = h.Quantile(0.50)
			snap.P90 = h.Quantile(0.90)
			snap.P99 = h.Quantile(0.99)
			snap.Max = h.Max()
			snap.Buckets = h.Buckets()
		}
		s.Metrics = append(s.Metrics, snap)
	}
	for _, nt := range ts {
		s.Traces = append(s.Traces, TraceSnap{
			Name:     nt.name,
			Recorded: nt.t.Recorded(),
			Records:  nt.t.Dump(),
		})
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as an aligned text summary — the
// `ssreport -metrics` view.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-34s %-9s %-8s %14s %14s %14s %14s\n",
		"metric", "kind", "unit", "value", "p50", "p99", "max"); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case kindHistogram:
			if _, err := fmt.Fprintf(w, "%-34s %-9s %-8s %14.2f %14.1f %14.1f %14d\n",
				m.Name, m.Kind, m.Unit, m.Value, m.P50, m.P99, m.Max); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%-34s %-9s %-8s %14.2f\n",
				m.Name, m.Kind, m.Unit, m.Value); err != nil {
				return err
			}
		}
	}
	// The JSON view carries the full ring; the text summary shows only the
	// freshest tail so a 256-deep tracer doesn't drown the table.
	const textTraceTail = 16
	for _, t := range s.Traces {
		records := t.Records
		if len(records) > textTraceTail {
			records = records[len(records)-textTraceTail:]
		}
		if _, err := fmt.Fprintf(w, "\ntrace %s — last %d of %d cycles (oldest first):\n",
			t.Name, len(records), t.Recorded); err != nil {
			return err
		}
		for _, rec := range records {
			if rec.Idle {
				if _, err := fmt.Fprintf(w, "  decision %8d t=%8d idle\n", rec.Decision, rec.Time); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "  decision %8d t=%8d winner=%3d occ=%3d exp=%2d key=%#016x\n",
				rec.Decision, rec.Time, rec.Winner, rec.Occupancy, rec.Expiries, rec.WinnerKey); err != nil {
				return err
			}
		}
	}
	return nil
}
