package obs

import (
	"fmt"
	"math/bits"
	"sync"
)

// CycleRecord is one decision cycle's post-mortem record: what the tracer
// keeps about the cycle after its CycleResult buffer has been reused. All
// fields are scalars so records copy by value and the ring needs no
// per-record storage.
type CycleRecord struct {
	// Decision is the zero-based decision-cycle index.
	Decision uint64 `json:"decision"`
	// Time is the virtual time the cycle ran at.
	Time uint64 `json:"time"`
	// Winner is the circulated slot (meaningless when Idle).
	Winner uint32 `json:"winner"`
	// Idle marks a cycle with no backlogged slot.
	Idle bool `json:"idle"`
	// Occupancy is the cycle's block occupancy: transmissions in the block
	// transaction (BA) or 1 for the single winner (WR).
	Occupancy uint16 `json:"occupancy"`
	// Expiries counts loser heads that expired during PRIORITY_UPDATE.
	Expiries uint16 `json:"expiries"`
	// WinnerKey is the winner's packed rank key as latched for the decision
	// (attr.Key bits; the Table-2 cascade order flattened to one uint64).
	WinnerKey uint64 `json:"winner_key"`
}

// CycleTracer is a ring buffer over the last K decision cycles, for
// post-mortem dumps: when something looks wrong — a starved slot, a burst of
// expiries — Dump reconstructs the recent decision history without the
// scheduler having kept per-cycle results around. The ring storage is
// allocated once at construction; Record writes in place under an
// uncontended mutex (no allocation), so a tracer can stay enabled on the
// decision hot path.
type CycleTracer struct {
	mu   sync.Mutex
	buf  []CycleRecord
	mask uint64
	next uint64 // total records ever written; next&mask is the write slot
}

// NewCycleTracer builds a tracer holding the last depth cycles; depth is
// rounded up to a power of two (minimum 1).
func NewCycleTracer(depth int) (*CycleTracer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("obs: tracer depth %d", depth)
	}
	n := 1
	if depth > 1 {
		n = 1 << bits.Len(uint(depth-1))
	}
	return &CycleTracer{buf: make([]CycleRecord, n), mask: uint64(n - 1)}, nil
}

// Record appends one cycle record, overwriting the oldest once the ring is
// full.
//
//sslint:hotpath
func (t *CycleTracer) Record(r CycleRecord) {
	t.mu.Lock()
	t.buf[t.next&t.mask] = r
	t.next++
	t.mu.Unlock()
}

// Len returns the number of records currently held (≤ Cap).
func (t *CycleTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Cap returns the ring capacity.
func (t *CycleTracer) Cap() int { return len(t.buf) }

// Recorded returns the total number of records ever written (the ring keeps
// the last Cap of them).
func (t *CycleTracer) Recorded() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dump copies the held records out, oldest first.
func (t *CycleTracer) Dump() []CycleRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	size := uint64(len(t.buf))
	out := make([]CycleRecord, 0, min(n, size))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	for i := start; i < n; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}
