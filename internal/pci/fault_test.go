package pci

import (
	"strings"
	"testing"
)

// mapInjector injects a fixed fault at chosen operation indices.
type mapInjector map[uint64]Fault

func (m mapInjector) OnTransfer(op uint64) Fault { return m[op] }

func TestInjectorNilFastPath(t *testing.T) {
	clean, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	faulted.Injector = mapInjector{} // present but always zero-fault
	for _, b := range []*Bus{clean, faulted} {
		if _, err := b.PushPIO(0, 32); err != nil {
			t.Fatal(err)
		}
	}
	if clean.BusyNs != faulted.BusyNs {
		t.Fatalf("zero-fault injector changed the cost model: %v vs %v ns", clean.BusyNs, faulted.BusyNs)
	}
	if faulted.FaultNs != 0 || faulted.Retries != 0 || faulted.Giveups != 0 {
		t.Fatalf("zero-fault injector charged fault accounting: %+v", faulted)
	}
	if clean.Ops != 1 || faulted.Ops != 1 {
		t.Fatalf("op counters: clean %d faulted %d, want 1", clean.Ops, faulted.Ops)
	}
}

func TestInjectedStallAndTimeout(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := b.PushPIO(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	b.Injector = mapInjector{1: {StallNs: 20000, TimeoutNs: 3310}}
	ns, err := b.PushPIO(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := base + 20000 + 3310; ns != want {
		t.Fatalf("faulted op cost %v ns, want %v", ns, want)
	}
	if b.Stalls != 1 || b.Timeouts != 1 || b.FaultNs != 23310 {
		t.Fatalf("fault accounting: stalls=%d timeouts=%d faultNs=%v", b.Stalls, b.Timeouts, b.FaultNs)
	}
}

func TestRetryBackoffRecovers(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Injector = mapInjector{0: {Fails: 2}}
	base, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanNs, err := base.PushPIO(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := b.PushPIO(0, 8)
	if err != nil {
		t.Fatalf("2 failures within the default retry budget must recover: %v", err)
	}
	// Exponential backoff: first retry 2×BankSwitchNs, second doubles.
	backoff := 2*b.cfg.BankSwitchNs + 4*b.cfg.BankSwitchNs
	if want := cleanNs + backoff; ns != want {
		t.Fatalf("recovered op cost %v ns, want %v (base %v + backoffs %v)", ns, want, cleanNs, backoff)
	}
	if b.Retries != 2 || b.Giveups != 0 {
		t.Fatalf("retries=%d giveups=%d, want 2/0", b.Retries, b.Giveups)
	}
}

func TestRetryBudgetGiveup(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Injector = mapInjector{0: {Fails: 10}}
	before := b.BusyNs
	_, err = b.PushPIO(0, 8)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("10 failures must exhaust the default budget of 3: %v", err)
	}
	if b.Giveups != 1 || b.Retries != 3 {
		t.Fatalf("giveups=%d retries=%d, want 1/3", b.Giveups, b.Retries)
	}
	if b.BusyNs <= before {
		t.Fatal("an abandoned transfer must still charge the backoff time it burned")
	}
}

func TestTransferDeadlineGiveup(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Retry = RetryConfig{DeadlineNs: 10000}
	b.Injector = mapInjector{0: {StallNs: 50000}}
	if _, err := b.PushPIO(0, 8); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("stall past the deadline must give up: %v", err)
	}
	if b.Giveups != 1 {
		t.Fatalf("giveups=%d, want 1", b.Giveups)
	}

	// Backoffs count against the deadline too.
	b2, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b2.Retry = RetryConfig{MaxRetries: 8, DeadlineNs: 3 * b2.cfg.BankSwitchNs}
	b2.Injector = mapInjector{0: {Fails: 8}}
	if _, err := b2.PushPIO(0, 8); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("backoff past the deadline must give up: %v", err)
	}

	// Negative deadline disables the budget: enough retries always recover.
	b3, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b3.Retry = RetryConfig{MaxRetries: 20, DeadlineNs: -1}
	b3.Injector = mapInjector{0: {Fails: 18}}
	if _, err := b3.PushPIO(0, 8); err != nil {
		t.Fatalf("disabled deadline with a wide retry budget must recover: %v", err)
	}
}

func TestInjectorCoversDMA(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Injector = mapInjector{0: {Fails: 10}}
	if _, err := b.PullDMA(0, 128); err == nil {
		t.Fatal("PullDMA must consult the injector")
	}
	if b.Giveups != 1 {
		t.Fatalf("giveups=%d, want 1", b.Giveups)
	}
}
