package pci

import "repro/internal/obs"

// RegisterMetrics publishes the bus's transfer and fault/recovery accounting
// on reg under prefix (canonically "pci", or "shardK.pci" in sharded runs):
// prefix.ops / prefix.batches / prefix.bank_switches / prefix.busy_ns for
// the transfer totals, and prefix.retries / prefix.giveups / prefix.stalls /
// prefix.timeouts / prefix.fault_ns for the injected-fault recovery view.
//
// The counters are plain fields owned by the goroutine driving the bus, so
// per the obs sampling discipline they are exact only when that pipeline is
// quiescent; a live scrape sees an approximate in-flight value.
func (b *Bus) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".ops", "transfers", func() float64 { return float64(b.Ops) })
	reg.GaugeFunc(prefix+".batches", "batches", func() float64 { return float64(b.Batches) })
	reg.GaugeFunc(prefix+".bank_switches", "switches", func() float64 { return float64(b.BankSwitches) })
	reg.GaugeFunc(prefix+".busy_ns", "ns", func() float64 { return b.BusyNs })
	reg.GaugeFunc(prefix+".retries", "attempts", func() float64 { return float64(b.Retries) })
	reg.GaugeFunc(prefix+".giveups", "transfers", func() float64 { return float64(b.Giveups) })
	reg.GaugeFunc(prefix+".stalls", "transfers", func() float64 { return float64(b.Stalls) })
	reg.GaugeFunc(prefix+".timeouts", "switches", func() float64 { return float64(b.Timeouts) })
	reg.GaugeFunc(prefix+".fault_ns", "ns", func() float64 { return b.FaultNs })
}
