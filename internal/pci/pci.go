// Package pci models the transfer substrate between the Stream processor
// and the FPGA PCI card in the ShareStreams endsystem: the Celoxica RC1000's
// 32-bit/33 MHz PCI interface, its 8 MB of banked SRAM shared between the
// host and the FPGA with exclusive bank ownership, and the two transfer
// styles the paper uses — *push* PIO writes for small transfers and *pull*
// DMA for bulk transfers (§4.3, §5.1).
//
// Two things matter to the evaluation and are modeled carefully:
//
//   - Bank-ownership switching. "The Celoxica card has a SRAM bank which
//     needs to switch ownership between FPGA and Stream processor each time
//     a transfer is made, which is generally the bottleneck for
//     high-performance PCI transfers" (§5.2). Every batch pays two ownership
//     switches (host acquires, FPGA re-acquires), so small batches are
//     dominated by switching.
//   - Cost per word. ShareStreams exchanges 16-bit arrival-time offsets and
//     5-bit stream IDs, "much less than the size of a packet with header and
//     payload" — the reason a host-based router can afford the round trip.
//
// Costs are virtual nanoseconds; the calibration lands the endsystem
// pipeline on the paper's measured operating points (§5.2): 469,483
// packets/s with transfers excluded and 299,065 packets/s including PIO
// transfers. All constants are per-instance fields so ablations can sweep
// them.
package pci

import "fmt"

// DefaultConfig holds the calibrated RC1000-era constants.
func DefaultConfig() Config {
	return Config{
		PIOWordNs:      400,  // one 32-bit programmed-I/O transaction
		DMASetupNs:     2000, // descriptor + doorbell per DMA burst
		DMABytesPerSec: 80e6, // sustained PCI burst bandwidth (of 133 MB/s theoretical)
		BankSwitchNs:   3310, // SRAM bank ownership arbitration, per switch
		BankBytes:      2 << 20,
		Banks:          4, // 8 MB in four banks
	}
}

// Config parameterizes the transfer cost model.
type Config struct {
	PIOWordNs      float64 // cost of one 32-bit PIO word (ns)
	DMASetupNs     float64 // fixed cost of initiating one DMA burst (ns)
	DMABytesPerSec float64 // DMA burst bandwidth (bytes/s)
	BankSwitchNs   float64 // one SRAM bank ownership switch (ns)
	BankBytes      int     // bytes per SRAM bank
	Banks          int     // bank count
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PIOWordNs <= 0 || c.DMASetupNs < 0 || c.DMABytesPerSec <= 0 || c.BankSwitchNs < 0 {
		return fmt.Errorf("pci: non-positive cost constants: %+v", c)
	}
	if c.BankBytes <= 0 || c.Banks <= 0 {
		return fmt.Errorf("pci: bad SRAM geometry: %+v", c)
	}
	return nil
}

// Owner identifies which side currently owns an SRAM bank.
type Owner uint8

const (
	// OwnerFPGA: the scheduler hardware may access the bank.
	OwnerFPGA Owner = iota
	// OwnerHost: the Stream processor (PCI peer) may access the bank.
	OwnerHost
)

// String returns the owner name.
func (o Owner) String() string {
	if o == OwnerHost {
		return "host"
	}
	return "fpga"
}

// Fault describes what an injected fault does to one transfer operation.
// All costs are virtual nanoseconds; the zero value is "no fault".
type Fault struct {
	// StallNs is extra transfer time: the PCI burst stalls but completes.
	StallNs float64
	// TimeoutNs is extra SRAM bank-arbitration time: the ownership switch
	// times out and is re-arbitrated ("generally the bottleneck", §5.2).
	TimeoutNs float64
	// Fails is how many consecutive attempts of this operation fail before
	// one succeeds. The bus retries with exponential backoff; when Fails
	// exceeds the retry budget the operation gives up with an error.
	Fails int
}

// FaultInjector is consulted once per transfer operation (PushPIO, ReadPIO,
// PullDMA), keyed by the bus's monotone operation index. Implementations
// must be deterministic in the index — the chaos suite's bit-identical
// fault/recovery traces depend on it. A nil injector is the no-fault fast
// path: a single pointer check per operation, no allocation.
type FaultInjector interface {
	OnTransfer(op uint64) Fault
}

// RetryConfig bounds how a bus recovers from injected transfer failures.
// The zero value takes defaults at the first faulted operation.
type RetryConfig struct {
	// MaxRetries is the retry budget after the first failed attempt
	// (default 3).
	MaxRetries int
	// BackoffNs is the first retry's backoff in virtual ns, doubling on
	// every subsequent retry (default 2×BankSwitchNs).
	BackoffNs float64
	// DeadlineNs is the per-operation fault budget: when stalls, timeouts
	// and backoffs exceed it the operation gives up even with retries left
	// (default 1e6 ns; negative disables the deadline).
	DeadlineNs float64
}

// withDefaults fills zero fields from the bus configuration.
func (r RetryConfig) withDefaults(cfg Config) RetryConfig {
	if r.MaxRetries == 0 {
		r.MaxRetries = 3
	}
	if r.BackoffNs == 0 {
		r.BackoffNs = 2 * cfg.BankSwitchNs
	}
	if r.DeadlineNs == 0 {
		r.DeadlineNs = 1e6
	}
	return r
}

// Bus is one card's transfer engine and SRAM arbitration state. It
// accumulates the virtual time spent on transfers and counts the traffic,
// so the endsystem can convert per-packet overheads into throughput.
type Bus struct {
	cfg    Config
	owners []Owner

	// Injector, when non-nil, is consulted once per transfer operation;
	// Retry bounds the recovery from the failures it injects. Both are
	// plain fields owned by the single goroutine driving the bus.
	Injector FaultInjector
	Retry    RetryConfig

	// Totals (virtual).
	BusyNs       float64 // cumulative transfer + arbitration time
	PIOWords     uint64
	DMABytes     uint64
	BankSwitches uint64
	Batches      uint64

	// Fault/recovery accounting (zero while Injector is nil).
	Ops      uint64  // transfer operations issued (the injector's index)
	Retries  uint64  // failed attempts recovered by backoff + retry
	Giveups  uint64  // operations abandoned (retry budget or deadline)
	Stalls   uint64  // operations that stalled but completed
	Timeouts uint64  // bank-switch timeouts re-arbitrated
	FaultNs  float64 // virtual ns added by stalls, timeouts and backoffs
}

// New builds a bus; banks start owned by the FPGA, as after configuration.
func New(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg, owners: make([]Owner, cfg.Banks)}, nil
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Owner returns bank i's current owner.
func (b *Bus) Owner(bank int) Owner { return b.owners[bank] }

// acquire switches bank ownership if needed and returns the arbitration
// cost.
func (b *Bus) acquire(bank int, who Owner) (float64, error) {
	if bank < 0 || bank >= len(b.owners) {
		return 0, fmt.Errorf("pci: bank %d out of range [0,%d)", bank, len(b.owners))
	}
	if b.owners[bank] == who {
		return 0, nil
	}
	b.owners[bank] = who
	b.BankSwitches++
	return b.cfg.BankSwitchNs, nil
}

// inject consults the injector for the operation about to run. It returns
// the extra virtual nanoseconds the fault model adds (stall + timeout +
// retry backoffs), or an error when the operation gives up: injected
// failures exhausted the retry budget or blew the transfer deadline. The
// time spent before giving up is still charged to BusyNs — a failed
// transfer is not free.
func (b *Bus) inject() (float64, error) {
	op := b.Ops
	b.Ops++
	if b.Injector == nil {
		return 0, nil
	}
	f := b.Injector.OnTransfer(op)
	if f == (Fault{}) {
		return 0, nil
	}
	if f.StallNs > 0 {
		b.Stalls++
	}
	if f.TimeoutNs > 0 {
		b.Timeouts++
	}
	r := b.Retry.withDefaults(b.cfg)
	extra := f.StallNs + f.TimeoutNs
	giveup := func(retries int, why string) (float64, error) {
		b.Retries += uint64(retries)
		b.Giveups++
		b.FaultNs += extra
		b.BusyNs += extra // an abandoned transfer is not free
		return 0, fmt.Errorf("pci: op %d gave up: %s", op, why)
	}
	if r.DeadlineNs >= 0 && extra > r.DeadlineNs {
		return giveup(0, fmt.Sprintf("stalled past the %v ns transfer deadline", r.DeadlineNs))
	}
	backoff := r.BackoffNs
	for attempt := 1; attempt <= f.Fails; attempt++ {
		if attempt > r.MaxRetries {
			return giveup(attempt-1, fmt.Sprintf("retry budget %d exhausted (injected failure burst %d)",
				r.MaxRetries, f.Fails))
		}
		extra += backoff
		backoff *= 2
		if r.DeadlineNs >= 0 && extra > r.DeadlineNs {
			return giveup(attempt, fmt.Sprintf("exceeded the %v ns transfer deadline after %d retries",
				r.DeadlineNs, attempt))
		}
	}
	b.Retries += uint64(f.Fails)
	b.FaultNs += extra
	return extra, nil
}

// PushPIO models the host push-writing words 32-bit values into an SRAM
// bank (small transfers: arrival-time offsets) and handing the bank back to
// the FPGA. It returns the virtual nanoseconds consumed.
func (b *Bus) PushPIO(bank, words int) (float64, error) {
	if words < 0 {
		return 0, fmt.Errorf("pci: negative word count %d", words)
	}
	ns, err := b.inject()
	if err != nil {
		return 0, err
	}
	acq, err := b.acquire(bank, OwnerHost)
	if err != nil {
		return 0, err
	}
	ns += acq
	ns += float64(words) * b.cfg.PIOWordNs
	back, err := b.acquire(bank, OwnerFPGA)
	if err != nil {
		return 0, err
	}
	ns += back
	b.PIOWords += uint64(words)
	b.Batches++
	b.BusyNs += ns
	return ns, nil
}

// ReadPIO models the host reading words 32-bit values (scheduled stream
// IDs) out of a bank and handing it back.
func (b *Bus) ReadPIO(bank, words int) (float64, error) {
	return b.PushPIO(bank, words) // symmetric cost
}

// PullDMA models a bulk transfer: the host sets the card's DMA engine
// registers and asserts pull-start; the card bursts bytes across PCI. Bank
// ownership switches around the burst as with PIO.
func (b *Bus) PullDMA(bank, bytes int) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("pci: negative byte count %d", bytes)
	}
	if bytes > b.cfg.BankBytes {
		return 0, fmt.Errorf("pci: %d bytes exceeds the %d-byte bank", bytes, b.cfg.BankBytes)
	}
	ns, err := b.inject()
	if err != nil {
		return 0, err
	}
	acq, err := b.acquire(bank, OwnerHost)
	if err != nil {
		return 0, err
	}
	ns += acq
	ns += b.cfg.DMASetupNs + float64(bytes)/b.cfg.DMABytesPerSec*1e9
	back, err := b.acquire(bank, OwnerFPGA)
	if err != nil {
		return 0, err
	}
	ns += back
	b.DMABytes += uint64(bytes)
	b.Batches++
	b.BusyNs += ns
	return ns, nil
}

// Mode selects how the endsystem exchanges arrival-times and stream IDs
// with the card.
type Mode uint8

const (
	// ModeNone excludes transfer costs (the paper's 469,483 pps
	// operating point: "We do not include the PCI transfer time").
	ModeNone Mode = iota
	// ModePIO uses push/read programmed I/O ("using PCI PIO transfers
	// rather than DMAs" — the 299,065 pps operating point).
	ModePIO
	// ModeDMA uses pull DMA bursts — the peer-peer enhancement §5.2
	// expects to improve performance.
	ModeDMA
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModePIO:
		return "pio"
	case ModeDMA:
		return "dma"
	default:
		return "none"
	}
}

// PerPacketNs returns the modeled transfer cost per scheduled packet under
// the given mode with the given batching factor: each batch carries one
// 32-bit arrival-time word per packet in and one stream-ID word per packet
// out (PIO), or the equivalent bytes by DMA.
func (b *Bus) PerPacketNs(mode Mode, batch int) (float64, error) {
	if batch < 1 {
		return 0, fmt.Errorf("pci: batch %d", batch)
	}
	switch mode {
	case ModeNone:
		return 0, nil
	case ModePIO:
		in, err := b.PushPIO(0, batch)
		if err != nil {
			return 0, err
		}
		out, err := b.ReadPIO(1, batch)
		if err != nil {
			return 0, err
		}
		return (in + out) / float64(batch), nil
	case ModeDMA:
		in, err := b.PullDMA(0, batch*4)
		if err != nil {
			return 0, err
		}
		out, err := b.PullDMA(1, batch*4)
		if err != nil {
			return 0, err
		}
		return (in + out) / float64(batch), nil
	default:
		return 0, fmt.Errorf("pci: unknown mode %d", mode)
	}
}

// BatchMeter returns the per-batch metering function an endsystem pipeline
// drives every transfer batch: a push of n arrival-time words into bank 0
// and a read of n stream-ID words back from bank 1 (PIO), the equivalent
// pull-DMA bursts (DMA), or nothing (ModeNone). Sharded runs hold one bus —
// and so one meter — per shard, the model counterpart of per-shard cards.
func (b *Bus) BatchMeter(mode Mode) func(n int) error {
	return func(n int) error {
		switch mode {
		case ModePIO:
			if _, err := b.PushPIO(0, n); err != nil {
				return err
			}
			_, err := b.ReadPIO(1, n)
			return err
		case ModeDMA:
			if _, err := b.PullDMA(0, n*4); err != nil {
				return err
			}
			_, err := b.PullDMA(1, n*4)
			return err
		default:
			return nil
		}
	}
}
