package pci

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PIOWordNs = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero PIO cost")
	}
	bad = good
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero banks")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted bad config")
	}
}

func TestBankOwnershipSwitching(t *testing.T) {
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Owner(0) != OwnerFPGA {
		t.Fatal("banks must start FPGA-owned")
	}
	ns, err := b.PushPIO(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// host acquire + 10 words + FPGA re-acquire.
	want := 2*b.Config().BankSwitchNs + 10*b.Config().PIOWordNs
	if math.Abs(ns-want) > 1e-9 {
		t.Fatalf("PushPIO = %v ns, want %v", ns, want)
	}
	if b.BankSwitches != 2 {
		t.Fatalf("switches = %d, want 2", b.BankSwitches)
	}
	if b.Owner(0) != OwnerFPGA {
		t.Fatal("bank not returned to FPGA after push")
	}
	if b.PIOWords != 10 || b.Batches != 1 {
		t.Fatalf("counters: %d words %d batches", b.PIOWords, b.Batches)
	}
}

func TestPushPIOValidation(t *testing.T) {
	b, _ := New(DefaultConfig())
	if _, err := b.PushPIO(0, -1); err == nil {
		t.Error("accepted negative word count")
	}
	if _, err := b.PushPIO(99, 1); err == nil {
		t.Error("accepted out-of-range bank")
	}
}

func TestPullDMACost(t *testing.T) {
	b, _ := New(DefaultConfig())
	cfg := b.Config()
	ns, err := b.PullDMA(2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*cfg.BankSwitchNs + cfg.DMASetupNs + 1e6/cfg.DMABytesPerSec*1e9
	if math.Abs(ns-want) > 1e-6 {
		t.Fatalf("PullDMA = %v, want %v", ns, want)
	}
	if _, err := b.PullDMA(0, cfg.BankBytes+1); err == nil {
		t.Error("accepted a transfer larger than a bank")
	}
	if _, err := b.PullDMA(0, -1); err == nil {
		t.Error("accepted negative bytes")
	}
}

func TestDMABeatsPIOForBulk(t *testing.T) {
	// The paper's rule: push for small transfers, pull DMA for bulk.
	b, _ := New(DefaultConfig())
	const words = 4096
	pio, _ := b.PushPIO(0, words)
	dma, _ := b.PullDMA(1, words*4)
	if dma >= pio {
		t.Fatalf("bulk DMA (%v ns) not faster than PIO (%v ns)", dma, pio)
	}
	// And for tiny transfers PIO wins (no setup).
	b2, _ := New(DefaultConfig())
	pio1, _ := b2.PushPIO(0, 1)
	dma1, _ := b2.PullDMA(1, 4)
	if pio1 >= dma1 {
		t.Fatalf("tiny PIO (%v) not cheaper than DMA (%v)", pio1, dma1)
	}
}

func TestBatchingAmortizesBankSwitch(t *testing.T) {
	// §5.1: arrival-times are batched to exploit burst bandwidth; the
	// per-packet cost must fall as the batch grows.
	b, _ := New(DefaultConfig())
	small, err := b.PerPacketNs(ModePIO, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := b.PerPacketNs(ModePIO, 128)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("batch 128 per-packet %v not below batch 2 %v", large, small)
	}
}

func TestPerPacketCalibration(t *testing.T) {
	// The §5.2 operating point: with 32-packet batches the PIO round trip
	// costs ≈1213.75 ns per packet, which together with the 2130 ns host
	// cost yields the paper's 299,065 pps.
	b, _ := New(DefaultConfig())
	got, err := b.PerPacketNs(ModePIO, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1213.75) > 0.01 {
		t.Fatalf("PIO per-packet = %v ns, want 1213.75", got)
	}
	pps := 1e9 / (2130 + got)
	if int(pps) != 299065 {
		t.Fatalf("modeled endsystem+PIO = %d pps, want 299065", int(pps))
	}
	none, _ := b.PerPacketNs(ModeNone, 32)
	if none != 0 {
		t.Fatalf("ModeNone cost = %v", none)
	}
	dma, err := b.PerPacketNs(ModeDMA, 32)
	if err != nil {
		t.Fatal(err)
	}
	if dma >= got {
		t.Fatalf("DMA per-packet %v not below PIO %v", dma, got)
	}
}

func TestPerPacketValidation(t *testing.T) {
	b, _ := New(DefaultConfig())
	if _, err := b.PerPacketNs(ModePIO, 0); err == nil {
		t.Error("accepted zero batch")
	}
	if _, err := b.PerPacketNs(Mode(9), 4); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestBusyAccounting(t *testing.T) {
	b, _ := New(DefaultConfig())
	a, _ := b.PushPIO(0, 4)
	c, _ := b.PullDMA(1, 64)
	if math.Abs(b.BusyNs-(a+c)) > 1e-9 {
		t.Fatalf("BusyNs = %v, want %v", b.BusyNs, a+c)
	}
}

func TestStrings(t *testing.T) {
	if OwnerFPGA.String() != "fpga" || OwnerHost.String() != "host" {
		t.Error("Owner.String misbehaved")
	}
	if ModeNone.String() != "none" || ModePIO.String() != "pio" || ModeDMA.String() != "dma" {
		t.Error("Mode.String misbehaved")
	}
}
